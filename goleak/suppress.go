package goleak

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/stack"
)

// Suppression is one entry of the deployment's suppression list: a leaking
// goroutine location recorded during the offline trial run, keyed by
// function name as Section IV-A describes, so that pre-existing leaks do
// not block unrelated PRs while owners fix them gradually.
type Suppression struct {
	// Function is the fully qualified function name to suppress; a leak
	// matches if this appears as its leaf function or creation function.
	Function string
	// Reason is free-form commentary (ticket id, owner, date).
	Reason string
}

// SuppressionList is a concurrency-safe set of suppressions. The zero
// value is empty and ready to use.
type SuppressionList struct {
	mu      sync.RWMutex
	entries map[string]Suppression
}

// NewSuppressionList builds a list from initial entries.
func NewSuppressionList(entries ...Suppression) *SuppressionList {
	l := &SuppressionList{entries: make(map[string]Suppression, len(entries))}
	for _, e := range entries {
		l.entries[e.Function] = e
	}
	return l
}

// Add inserts or replaces an entry.
func (l *SuppressionList) Add(s Suppression) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.entries == nil {
		l.entries = make(map[string]Suppression)
	}
	l.entries[s.Function] = s
}

// Remove deletes the entry for function, reporting whether it was present.
// Owners remove entries as they fix the underlying leaks.
func (l *SuppressionList) Remove(function string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[function]
	delete(l.entries, function)
	return ok
}

// Len returns the number of entries (the paper tracks this over time:
// initially 1040, later 1056).
func (l *SuppressionList) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Match returns the suppression covering the goroutine, or nil. A
// goroutine is covered when its leaf function or its creation function is
// listed.
func (l *SuppressionList) Match(g *stack.Goroutine) *Suppression {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if s, ok := l.entries[g.Leaf().Function]; ok {
		return &s
	}
	if s, ok := l.entries[g.CreatedBy.Function]; ok {
		return &s
	}
	return nil
}

// Functions returns the suppressed function names in sorted order.
func (l *SuppressionList) Functions() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.entries))
	for f := range l.entries {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Save writes the list in the text format accepted by LoadSuppressions:
// one "function # reason" line per entry, sorted for stable diffs.
func (l *SuppressionList) Save(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fns := make([]string, 0, len(l.entries))
	for f := range l.entries {
		fns = append(fns, f)
	}
	sort.Strings(fns)
	for _, f := range fns {
		e := l.entries[f]
		if e.Reason != "" {
			if _, err := fmt.Fprintf(w, "%s # %s\n", e.Function, e.Reason); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, e.Function); err != nil {
			return err
		}
	}
	return nil
}

// LoadSuppressions parses the text format written by Save. Blank lines and
// lines starting with '#' are skipped.
func LoadSuppressions(r io.Reader) (*SuppressionList, error) {
	l := NewSuppressionList()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var s Suppression
		if i := strings.Index(text, "#"); i >= 0 {
			s.Function = strings.TrimSpace(text[:i])
			s.Reason = strings.TrimSpace(text[i+1:])
		} else {
			s.Function = text
		}
		if s.Function == "" {
			return nil, fmt.Errorf("goleak: suppression line %d has no function", line)
		}
		l.Add(s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("goleak: reading suppressions: %w", err)
	}
	return l, nil
}
