package goleak

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stack"
)

func TestSuppressionMatch(t *testing.T) {
	list := NewSuppressionList(
		Suppression{Function: "svc.leafLeak"},
		Suppression{Function: "svc.Spawner"},
	)
	byLeaf := &stack.Goroutine{Frames: []stack.Frame{{Function: "svc.leafLeak"}}}
	if list.Match(byLeaf) == nil {
		t.Error("leaf-function match failed")
	}
	byCreator := &stack.Goroutine{
		Frames:    []stack.Frame{{Function: "svc.worker"}},
		CreatedBy: stack.Frame{Function: "svc.Spawner"},
	}
	if list.Match(byCreator) == nil {
		t.Error("creator-function match failed")
	}
	miss := &stack.Goroutine{Frames: []stack.Frame{{Function: "svc.other"}}}
	if list.Match(miss) != nil {
		t.Error("unrelated goroutine matched")
	}
}

func TestSuppressionAddRemoveLen(t *testing.T) {
	var list SuppressionList // zero value usable
	if list.Len() != 0 {
		t.Fatalf("zero list len = %d", list.Len())
	}
	list.Add(Suppression{Function: "a"})
	list.Add(Suppression{Function: "b"})
	list.Add(Suppression{Function: "a", Reason: "updated"}) // replace
	if list.Len() != 2 {
		t.Errorf("len = %d, want 2", list.Len())
	}
	if !list.Remove("a") || list.Remove("a") {
		t.Error("Remove semantics wrong")
	}
	if got := list.Functions(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Functions = %v", got)
	}
}

func TestSuppressionSaveLoadRoundTrip(t *testing.T) {
	alphabet := []string{"pkg.F", "a/b.G", "x/y/z.(*T).M", "main.main.func1"}
	reasons := []string{"", "JIRA-1", "owner: infra", "fixed in Q3"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := NewSuppressionList()
		for i := 0; i < int(n)%len(alphabet)+1; i++ {
			in.Add(Suppression{
				Function: alphabet[r.Intn(len(alphabet))],
				Reason:   reasons[r.Intn(len(reasons))],
			})
		}
		var buf bytes.Buffer
		if err := in.Save(&buf); err != nil {
			return false
		}
		out, err := LoadSuppressions(&buf)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(in.Functions(), out.Functions()) {
			return false
		}
		for _, fn := range in.Functions() {
			a := in.entries[fn]
			b := out.entries[fn]
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSuppressionsFormat(t *testing.T) {
	in := `
# full-line comment

svc.A
svc.B # reason text
  svc.C   #   padded
`
	list, err := LoadSuppressions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if list.Len() != 3 {
		t.Fatalf("len = %d, want 3", list.Len())
	}
	if got := list.entries["svc.B"].Reason; got != "reason text" {
		t.Errorf("reason = %q", got)
	}
	if got := list.entries["svc.C"].Reason; got != "padded" {
		t.Errorf("padded reason = %q", got)
	}
}

func TestLoadSuppressionsConcurrentUse(t *testing.T) {
	// The CI pipeline reads the list from many test shards while the
	// trial-run tooling appends; exercise races under -race.
	list := NewSuppressionList()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			list.Add(Suppression{Function: "f"})
			list.Remove("f")
		}
	}()
	g := &stack.Goroutine{Frames: []stack.Frame{{Function: "f"}}}
	for i := 0; i < 1000; i++ {
		list.Match(g)
		list.Len()
	}
	<-done
}
