package goleak

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stack"
)

// fakeTB records Error calls.
type fakeTB struct {
	errors []string
}

func (f *fakeTB) Error(args ...any) {
	var parts []string
	for _, a := range args {
		switch v := a.(type) {
		case string:
			parts = append(parts, v)
		case error:
			parts = append(parts, v.Error())
		}
	}
	f.errors = append(f.errors, strings.Join(parts, " "))
}
func (f *fakeTB) Helper() {}

// leakSend blocks a goroutine on a channel send and returns a release
// function that unblocks it.
func leakSend(t testing.TB) (release func()) {
	t.Helper()
	ch := make(chan int)
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case ch <- 1:
		case <-stop:
		}
	}()
	waitUntilBlocked(t, "select")
	return func() {
		close(stop)
		<-done
	}
}

func waitUntilBlocked(t testing.TB, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		gs, err := stack.Current()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gs {
			if strings.HasPrefix(g.State, state) && !isStdLibGoroutine(g) {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no goroutine reached state %q", state)
}

func TestVerifyNoneCleanProcess(t *testing.T) {
	tb := &fakeTB{}
	VerifyNone(tb)
	if len(tb.errors) != 0 {
		t.Errorf("clean process reported leaks: %v", tb.errors)
	}
}

func TestFindDetectsLiveLeak(t *testing.T) {
	release := leakSend(t)
	leaks, err := Find(MaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	var found *Leak
	for _, l := range leaks {
		if strings.Contains(l.CreationContext().Function, "leakSend") {
			found = l
		}
	}
	if found == nil {
		t.Fatalf("leak not found among %d candidates", len(leaks))
	}
	if found.Kind != stack.KindSelect {
		t.Errorf("kind = %v, want select", found.Kind)
	}
	if !strings.Contains(found.String(), "created by") {
		t.Errorf("report missing creation context:\n%s", found.String())
	}
	release()
	// After release the leak disappears (with retries to let it exit).
	leaks, err = Find()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaks {
		if strings.Contains(l.CreationContext().Function, "leakSend") {
			t.Errorf("released goroutine still reported: %s", l)
		}
	}
}

func TestRetryToleratesSlowExit(t *testing.T) {
	// A goroutine that finishes shortly after the test body must not be
	// reported thanks to the retry loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
	}()
	leaks, err := Find() // default 20 retries, ample for 20ms
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaks {
		if strings.Contains(l.CreationContext().Function, "TestRetryToleratesSlowExit") {
			t.Errorf("slow-but-healthy goroutine reported as leak: %s", l)
		}
	}
	<-done
}

func TestMaxRetriesZeroReportsImmediately(t *testing.T) {
	var slept []time.Duration
	dump := `goroutine 8 [chan send]:
main.leaky()
	/src/x.go:5 +0x1
`
	leaks, err := Find(WithDump(dump), MaxRetries(0),
		withSleeper(func(d time.Duration) { slept = append(slept, d) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 {
		t.Fatalf("got %d leaks, want 1", len(leaks))
	}
	if len(slept) != 0 {
		t.Errorf("MaxRetries(0) slept %v", slept)
	}
}

func TestRetryScheduleIsBoundedAndExhausts(t *testing.T) {
	var slept []time.Duration
	dump := "goroutine 8 [chan receive]:\nmain.leaky()\n\t/src/x.go:5 +0x1\n"
	leaks, err := Find(WithDump(dump), MaxRetries(5),
		withSleeper(func(d time.Duration) { slept = append(slept, d) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 {
		t.Fatalf("got %d leaks, want 1", len(leaks))
	}
	if len(slept) != 5 {
		t.Fatalf("retried %d times, want 5", len(slept))
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1] {
			t.Errorf("backoff not monotone: %v", slept)
		}
	}
	for _, d := range slept {
		if d > 50*time.Millisecond {
			t.Errorf("backoff %v exceeds cap", d)
		}
	}
}

func TestIgnoreTopFunction(t *testing.T) {
	dump := `goroutine 8 [chan send]:
main.allowed()
	/src/x.go:5 +0x1

goroutine 9 [chan send]:
main.notAllowed()
	/src/x.go:9 +0x1
`
	leaks, err := Find(WithDump(dump), MaxRetries(0), IgnoreTopFunction("main.allowed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 || leaks[0].CodeContext().Function != "main.notAllowed" {
		t.Errorf("leaks = %v", leaks)
	}
}

func TestIgnoreCreatedByAndAnyFunction(t *testing.T) {
	dump := `goroutine 8 [select]:
main.inner()
	/src/x.go:5 +0x1
main.middle()
	/src/x.go:15 +0x1
created by main.spawner
	/src/x.go:3 +0x1

goroutine 9 [select]:
main.other()
	/src/x.go:9 +0x1
`
	leaks, err := Find(WithDump(dump), MaxRetries(0), IgnoreCreatedBy("main.spawner"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 || leaks[0].CodeContext().Function != "main.other" {
		t.Errorf("IgnoreCreatedBy: leaks = %v", leaks)
	}

	leaks, err = Find(WithDump(dump), MaxRetries(0), IgnoreAnyFunction("main.middle"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 || leaks[0].CodeContext().Function != "main.other" {
		t.Errorf("IgnoreAnyFunction: leaks = %v", leaks)
	}
}

func TestIgnoreCurrent(t *testing.T) {
	release := leakSend(t)
	defer release()
	opt := IgnoreCurrent() // snapshots the leak as pre-existing
	leaks, err := Find(opt, MaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaks {
		if strings.Contains(l.CreationContext().Function, "leakSend") {
			t.Errorf("pre-existing goroutine reported: %s", l)
		}
	}
}

func TestFilterOption(t *testing.T) {
	dump := "goroutine 3 [chan receive]:\npkg.f()\n\t/s.go:2 +0x1\n"
	leaks, err := Find(WithDump(dump), MaxRetries(0),
		Filter(func(g *stack.Goroutine) bool { return g.ID == 3 }))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 0 {
		t.Errorf("filtered goroutine still reported: %v", leaks)
	}
}

func TestStdlibGoroutinesIgnored(t *testing.T) {
	dump := `goroutine 2 [force gc (idle)]:
runtime.forcegchelper()
	/go/src/runtime/proc.go:1 +0x1

goroutine 3 [chan receive]:
testing.(*T).Run()
	/go/src/testing/testing.go:1 +0x1

goroutine 4 [syscall]:
os/signal.signal_recv()
	/go/src/runtime/sigqueue.go:1 +0x1

goroutine 5 [IO wait]:
internal/poll.runtime_pollWait()
	/go/src/runtime/netpoll.go:1 +0x1
`
	leaks, err := Find(WithDump(dump), MaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 0 {
		t.Errorf("stdlib goroutines reported as leaks: %v", leaks)
	}
}

func TestVerifyNoneReportsLeak(t *testing.T) {
	release := leakSend(t)
	tb := &fakeTB{}
	VerifyNone(tb, MaxRetries(2), RetryInterval(time.Millisecond))
	release()
	if len(tb.errors) == 0 {
		t.Fatal("VerifyNone missed a live leak")
	}
	if !strings.Contains(tb.errors[0], "found unexpected goroutine") {
		t.Errorf("unexpected error text: %q", tb.errors[0])
	}
}

func TestCountsAndDedupe(t *testing.T) {
	dump := `goroutine 1 [chan send]:
a.f()
	/s.go:2 +0x1

goroutine 2 [chan send]:
a.f()
	/s.go:2 +0x1

goroutine 3 [select]:
a.g()
	/s.go:9 +0x1
`
	leaks, err := Find(WithDump(dump), MaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(leaks)
	if counts[stack.KindChanSend] != 2 || counts[stack.KindSelect] != 1 {
		t.Errorf("counts = %v", counts)
	}
	uniq := DedupeBySource(leaks)
	if len(uniq) != 2 {
		t.Errorf("dedupe kept %d, want 2", len(uniq))
	}
}
