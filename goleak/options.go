package goleak

import (
	"strings"
	"time"

	"repro/internal/stack"
)

// Option configures Find, VerifyNone and VerifyTestMain.
type Option interface{ apply(*opts) }

type optionFunc func(*opts)

func (f optionFunc) apply(o *opts) { f(o) }

type opts struct {
	filters    []func(*stack.Goroutine) bool
	maxRetries int
	sleep      func(int) time.Duration
	sleeper    func(time.Duration)
	capture    func() ([]*stack.Goroutine, error)
	cleanup    func(exitCode int)
}

func buildOpts(options []Option) *opts {
	o := &opts{
		maxRetries: 20,
		sleep:      defaultRetrySchedule,
		sleeper:    time.Sleep,
		capture:    stack.Current,
	}
	o.filters = append(o.filters, isStdLibGoroutine)
	for _, opt := range options {
		opt.apply(o)
	}
	return o
}

// retry reports whether another attempt should be made after attempt, and
// sleeps for the scheduled backoff if so.
func (o *opts) retry(attempt int) bool {
	if attempt >= o.maxRetries {
		return false
	}
	o.sleeper(o.sleep(attempt))
	return true
}

func (o *opts) ignored(g *stack.Goroutine) bool {
	for _, f := range o.filters {
		if f(g) {
			return true
		}
	}
	return false
}

// IgnoreTopFunction ignores goroutines whose leaf (innermost non-runtime)
// function equals name. This is the primary knob behind the paper's
// suppression list: pre-existing leaks are keyed by function name.
func IgnoreTopFunction(name string) Option {
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, func(g *stack.Goroutine) bool {
			return g.Leaf().Function == name
		})
	})
}

// IgnoreAnyFunction ignores goroutines with name anywhere on the stack.
func IgnoreAnyFunction(name string) Option {
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, func(g *stack.Goroutine) bool {
			for _, f := range g.Frames {
				if f.Function == name {
					return true
				}
			}
			return false
		})
	})
}

// IgnoreCreatedBy ignores goroutines created by the named function.
func IgnoreCreatedBy(name string) Option {
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, func(g *stack.Goroutine) bool {
			return g.CreatedBy.Function == name
		})
	})
}

// IgnoreCurrent snapshots the goroutines alive at option-construction time
// and ignores them in later verifications: the mechanism used when retro-
// fitting GOLEAK onto test targets with long-lived package-level workers.
func IgnoreCurrent() Option {
	existing := map[int64]bool{}
	if gs, err := stack.Current(); err == nil {
		for _, g := range gs {
			existing[g.ID] = true
		}
	}
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, func(g *stack.Goroutine) bool {
			return existing[g.ID]
		})
	})
}

// Filter installs an arbitrary predicate; goroutines for which it returns
// true are ignored.
func Filter(pred func(*stack.Goroutine) bool) Option {
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, pred)
	})
}

// WithSuppressions ignores goroutines matched by the suppression list
// (Section IV-A: the deployment seeds a list from an offline trial run so
// pre-existing leaks do not block unrelated PRs).
func WithSuppressions(list *SuppressionList) Option {
	return optionFunc(func(o *opts) {
		o.filters = append(o.filters, func(g *stack.Goroutine) bool {
			return list.Match(g) != nil
		})
	})
}

// MaxRetries bounds the retry loop; 0 disables retries entirely (used by
// the overhead benchmarks to measure a single sweep).
func MaxRetries(n int) Option {
	return optionFunc(func(o *opts) { o.maxRetries = n })
}

// RetryInterval fixes a constant backoff instead of the default exponential
// schedule.
func RetryInterval(d time.Duration) Option {
	return optionFunc(func(o *opts) {
		o.sleep = func(int) time.Duration { return d }
	})
}

// Cleanup registers a function to run with the exit code before
// VerifyTestMain terminates the process.
func Cleanup(f func(exitCode int)) Option {
	return optionFunc(func(o *opts) { o.cleanup = f })
}

// withCapture substitutes the stack source; tests and the monorepo
// simulator feed synthetic dumps through the production filtering and
// classification path.
func withCapture(f func() ([]*stack.Goroutine, error)) Option {
	return optionFunc(func(o *opts) { o.capture = f })
}

// WithDump runs the detector against a pre-captured stack dump instead of
// the live process: this is how the retroactive Fig-5 analysis replays
// historical test runs.
func WithDump(dump string) Option {
	return withCapture(func() ([]*stack.Goroutine, error) {
		return stack.Parse(dump)
	})
}

// withSleeper substitutes the retry sleeper (tests avoid real delays).
func withSleeper(f func(time.Duration)) Option {
	return optionFunc(func(o *opts) { o.sleeper = f })
}

// isStdLibGoroutine recognises goroutines that belong to the Go runtime,
// the testing framework, or other stdlib machinery that legitimately
// outlives a test body. Reporting these would make every test fail, so
// they form the tool's built-in allowlist.
func isStdLibGoroutine(g *stack.Goroutine) bool {
	leaf := g.Leaf()
	switch {
	case leaf.Function == "":
		// Entirely runtime frames: GC workers, sysmon, etc.
		return true
	case strings.HasPrefix(leaf.Function, "testing."):
		return true
	case strings.HasPrefix(leaf.Function, "runtime."):
		return true
	case leaf.Function == "os/signal.signal_recv", leaf.Function == "os/signal.loop":
		return true
	case strings.HasPrefix(leaf.Function, "net/http.(*persistConn)"),
		strings.HasPrefix(leaf.Function, "net/http.(*Transport)"),
		strings.HasPrefix(leaf.Function, "internal/poll."):
		// HTTP keep-alive connections owned by the default transport.
		return true
	}
	switch g.Kind() {
	case stack.KindGC, stack.KindFinalizer:
		return true
	}
	if strings.HasPrefix(g.CreatedBy.Function, "testing.") && g.Kind() == stack.KindRunning {
		// The testing framework's own runner goroutines.
		return true
	}
	return false
}
