package goleak

import (
	"fmt"
	"io"
	"os"
)

// testMainRunner is the subset of *testing.M that VerifyTestMain needs.
type testMainRunner interface {
	Run() int
}

// exit is swapped out in tests.
var exit = os.Exit

// output is where VerifyTestMain writes leak reports; swapped in tests.
var output io.Writer = os.Stderr

// VerifyTestMain runs the test suite and then checks for leaked
// goroutines, marking the whole target as failed when any are found. It is
// the hook the paper's build-pipeline instrumentation injects into every
// test target's TestMain (Section IV-A):
//
//	func TestMain(m *testing.M) {
//		goleak.VerifyTestMain(m)
//	}
//
// The process exits with the suite's exit code, or 1 if the suite passed
// but leaks were detected.
func VerifyTestMain(m testMainRunner, options ...Option) {
	exitCode := m.Run()
	opts := buildOpts(options)

	if exitCode == 0 {
		leaks, err := Find(options...)
		switch {
		case err != nil:
			fmt.Fprintf(output, "goleak: error on successful test run: %v\n", err)
			exitCode = 1
		case len(leaks) > 0:
			fmt.Fprintf(output, "goleak: tests passed but found %d leaked goroutine(s):\n", len(leaks))
			for _, l := range leaks {
				fmt.Fprint(output, l.String())
			}
			exitCode = 1
		}
	}
	if opts.cleanup != nil {
		opts.cleanup(exitCode)
	}
	exit(exitCode)
}
