package goleak

import (
	"bytes"
	"strings"
	"testing"
)

type fakeM struct{ code int }

func (m fakeM) Run() int { return m.code }

// withStubbedExit swaps the process-exit and output hooks for the duration
// of f and returns the observed exit code and report text.
func withStubbedExit(f func()) (code int, report string) {
	var buf bytes.Buffer
	oldExit, oldOut := exit, output
	code = -1
	exit = func(c int) { code = c }
	output = &buf
	defer func() { exit, output = oldExit, oldOut }()
	f()
	return code, buf.String()
}

func TestVerifyTestMainCleanSuite(t *testing.T) {
	code, report := withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 0})
	})
	if code != 0 {
		t.Errorf("exit code = %d, want 0; report: %s", code, report)
	}
}

func TestVerifyTestMainPropagatesFailure(t *testing.T) {
	code, _ := withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 3})
	})
	if code != 3 {
		t.Errorf("exit code = %d, want 3", code)
	}
}

func TestVerifyTestMainFlagsLeaks(t *testing.T) {
	dump := "goroutine 5 [chan send]:\nsvc.leak()\n\t/svc/a.go:3 +0x1\n"
	var cleanupCode = -1
	code, report := withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 0},
			WithDump(dump), MaxRetries(0),
			Cleanup(func(c int) { cleanupCode = c }))
	})
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if cleanupCode != 1 {
		t.Errorf("cleanup saw code %d, want 1", cleanupCode)
	}
	if !strings.Contains(report, "svc.leak") {
		t.Errorf("report does not name the leak:\n%s", report)
	}
}

func TestVerifyTestMainSkipsLeakCheckOnFailure(t *testing.T) {
	// A failing suite exits with its own code; the leak check (which
	// would also fail here) must not mask the original failure.
	dump := "goroutine 5 [chan send]:\nsvc.leak()\n\t/svc/a.go:3 +0x1\n"
	code, report := withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 2}, WithDump(dump), MaxRetries(0))
	})
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if report != "" {
		t.Errorf("unexpected leak report on failing suite: %s", report)
	}
}

func TestVerifyTestMainSuppressionWorkflow(t *testing.T) {
	// The deployment flow: a pre-existing leak is suppressed, the PR
	// passes; removing the suppression blocks it again.
	dump := "goroutine 5 [chan send]:\nsvc.legacyLeak()\n\t/svc/a.go:3 +0x1\n"
	list := NewSuppressionList(Suppression{Function: "svc.legacyLeak", Reason: "JIRA-123"})

	code, _ := withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 0}, WithDump(dump), MaxRetries(0), WithSuppressions(list))
	})
	if code != 0 {
		t.Errorf("suppressed leak should pass; exit = %d", code)
	}

	list.Remove("svc.legacyLeak")
	code, _ = withStubbedExit(func() {
		VerifyTestMain(fakeM{code: 0}, WithDump(dump), MaxRetries(0), WithSuppressions(list))
	})
	if code != 1 {
		t.Errorf("unsuppressed leak should fail; exit = %d", code)
	}
}
