// Package goleak detects goroutine leaks (partial deadlocks) at the end of
// test execution, reproducing the GOLEAK tool from "Unveiling and
// Vanquishing Goroutine Leaks in Enterprise Microservices" (CGO 2024),
// Section IV.
//
// The tool rests on the paper's Fact 1 and Corollary 1: a partially
// deadlocked goroutine remains in the process address space until program
// termination, so any goroutine still present when a test target finishes
// may be a partial deadlock. Find captures all goroutines via the runtime
// Stacks API, filters known-benign ones (the test runner itself, runtime
// helpers), retries briefly to let straggling-but-healthy goroutines
// finish, and reports the rest with their blocking classification, code
// context (leaf frame), and creation context.
//
// Typical use in a test:
//
//	func TestMain(m *testing.M) {
//		goleak.VerifyTestMain(m)
//	}
//
// or per test:
//
//	defer goleak.VerifyNone(t)
package goleak

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stack"
)

// Leak is one lingering goroutine found at verification time.
type Leak struct {
	// Goroutine is the full parsed record.
	Goroutine *stack.Goroutine
	// Kind is the blocking classification (chan send, select, ...).
	Kind stack.Kind
}

// CodeContext returns the leaf non-runtime function of the leaked
// goroutine, the "code context" field of the paper's report format.
func (l *Leak) CodeContext() stack.Frame { return l.Goroutine.Leaf() }

// CreationContext returns where the leaked goroutine was created.
func (l *Leak) CreationContext() stack.Frame { return l.Goroutine.CreatedBy }

// String renders a single-leak report: classification, code context and
// creation context, followed by the raw stack.
func (l *Leak) String() string {
	var b strings.Builder
	leaf := l.CodeContext()
	fmt.Fprintf(&b, "leaked goroutine %d [%s]\n", l.Goroutine.ID, l.Kind)
	fmt.Fprintf(&b, "  code context: %s at %s\n", leaf.Function, leaf.SourceLocation())
	if cb := l.CreationContext(); cb.Function != "" {
		fmt.Fprintf(&b, "  created by:   %s at %s\n", cb.Function, cb.SourceLocation())
	}
	b.WriteString(indent(l.Goroutine.String(), "  | "))
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Find returns all goroutines the detector considers leaked at the time of
// the call. It snapshots the address space, filters benign goroutines, and
// retries (options control the schedule) while the set is non-empty, so
// goroutines that are merely slow to exit are not reported.
func Find(options ...Option) ([]*Leak, error) {
	opts := buildOpts(options)
	var leaks []*Leak
	for attempt := 0; ; attempt++ {
		var err error
		leaks, err = findOnce(opts)
		if err != nil {
			return nil, err
		}
		if len(leaks) == 0 || !opts.retry(attempt) {
			return leaks, nil
		}
	}
}

func findOnce(opts *opts) ([]*Leak, error) {
	gs, err := opts.capture()
	if err != nil {
		return nil, fmt.Errorf("goleak: capturing stacks: %w", err)
	}
	var leaks []*Leak
	for _, g := range gs {
		if opts.ignored(g) {
			continue
		}
		leaks = append(leaks, &Leak{Goroutine: g, Kind: g.Kind()})
	}
	return leaks, nil
}

// TB is the subset of testing.TB that goleak needs; it is satisfied by
// *testing.T and *testing.B and by the simulators' fake test handles.
type TB interface {
	Error(args ...any)
	Helper()
}

// VerifyNone fails t if any leaked goroutines are found. Use it as the last
// deferred call of a test.
func VerifyNone(t TB, options ...Option) {
	t.Helper()
	leaks, err := Find(options...)
	if err != nil {
		t.Error(err)
		return
	}
	for _, l := range leaks {
		t.Error("found unexpected goroutine:\n" + l.String())
	}
}

// Counts aggregates leaks by blocking kind; this is the measurement behind
// Table IV of the paper.
func Counts(leaks []*Leak) map[stack.Kind]int {
	m := make(map[stack.Kind]int)
	for _, l := range leaks {
		m[l.Kind]++
	}
	return m
}

// DedupeBySource collapses leaks that block at the same source location,
// keeping the first representative: the paper counts "unique leaks" by
// unique source location (Section VI).
func DedupeBySource(leaks []*Leak) []*Leak {
	seen := make(map[string]bool, len(leaks))
	var out []*Leak
	for _, l := range leaks {
		key := l.CodeContext().SourceLocation()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, l)
	}
	return out
}

// defaultRetrySchedule mirrors the production deployment: goroutines still
// winding down after test completion get ~20 chances over ~500ms before
// being declared leaked.
func defaultRetrySchedule(attempt int) time.Duration {
	d := time.Duration(1<<uint(attempt)) * time.Microsecond * 100
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}
