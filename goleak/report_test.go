package goleak

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stack"
)

func TestLeakStringFormat(t *testing.T) {
	g := &stack.Goroutine{
		ID:    42,
		State: "chan send",
		Frames: []stack.Frame{
			{Function: "runtime.gopark", File: "/go/runtime/proc.go", Line: 1},
			{Function: "svc.producer", File: "/svc/p.go", Line: 17},
		},
		CreatedBy: stack.Frame{Function: "svc.Start", File: "/svc/s.go", Line: 4},
	}
	l := &Leak{Goroutine: g, Kind: g.Kind()}
	out := l.String()
	for _, want := range []string{
		"goroutine 42",
		"chan send (non-nil chan)",
		"code context: svc.producer at /svc/p.go:17",
		"created by:   svc.Start at /svc/s.go:4",
		"  | goroutine 42 [chan send]:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if l.CodeContext().Function != "svc.producer" {
		t.Errorf("code context skipped runtime frame incorrectly: %v", l.CodeContext())
	}
}

func TestFindPropagatesCaptureError(t *testing.T) {
	boom := errors.New("stacks unavailable")
	_, err := Find(withCapture(func() ([]*stack.Goroutine, error) { return nil, boom }))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	tb := &fakeTB{}
	VerifyNone(tb, withCapture(func() ([]*stack.Goroutine, error) { return nil, boom }))
	if len(tb.errors) != 1 || !strings.Contains(tb.errors[0], "stacks unavailable") {
		t.Errorf("VerifyNone errors = %v", tb.errors)
	}
}

func TestOptionsCompose(t *testing.T) {
	dump := `goroutine 1 [chan send]:
a.suppressed()
	/a.go:1 +0x1

goroutine 2 [chan send]:
a.ignoredTop()
	/a.go:2 +0x1

goroutine 3 [chan send]:
a.kept()
	/a.go:3 +0x1
created by a.ignoredCreator
	/a.go:30 +0x1

goroutine 4 [chan send]:
a.survivor()
	/a.go:4 +0x1
`
	list := NewSuppressionList(Suppression{Function: "a.suppressed"})
	leaks, err := Find(WithDump(dump), MaxRetries(0),
		WithSuppressions(list),
		IgnoreTopFunction("a.ignoredTop"),
		IgnoreCreatedBy("a.ignoredCreator"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 || leaks[0].CodeContext().Function != "a.survivor" {
		t.Fatalf("leaks = %v", leaks)
	}
}

func TestCountsEmpty(t *testing.T) {
	if m := Counts(nil); len(m) != 0 {
		t.Errorf("Counts(nil) = %v", m)
	}
	if d := DedupeBySource(nil); d != nil {
		t.Errorf("DedupeBySource(nil) = %v", d)
	}
}
