// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`).
// Each benchmark both times the underlying pipeline and reports the
// headline quantity of its table/figure as a custom metric, so
// bench_output.txt doubles as the reproduction record. EXPERIMENTS.md
// maps each benchmark to the paper's numbers.
package repro

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/goleak"
	"repro/internal/astcheck"
	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/gprofile"
	"repro/internal/metrics"
	"repro/internal/monorepo"
	"repro/internal/patterns"
	"repro/internal/stack"
	"repro/internal/staticbase"
	"repro/internal/synth"
	"repro/leakprof"
)

// corpusForBench builds the standard labelled corpus once per benchmark.
func corpusForBench(packages int) *synth.Corpus {
	cfg := synth.DefaultConfig()
	cfg.Packages = packages
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.20, 0.10, 0.10
	return synth.Generate(cfg)
}

func corpusFiles(c *synth.Corpus) []features.SourceFile {
	var out []features.SourceFile
	for _, f := range c.Files() {
		out = append(out, features.SourceFile{Path: f.Path, Content: f.Content, Test: f.Test})
	}
	return out
}

// BenchmarkTable1PackageSplit regenerates Table I: the paradigm split of
// packages in the (synthetic) monorepo.
func BenchmarkTable1PackageSplit(b *testing.B) {
	corpus := corpusForBench(300)
	files := corpusFiles(corpus)
	sc := &features.Scanner{Wrappers: []string{"asyncRun"}}
	var t1 *features.TableI
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, t1, _ = sc.Scan(files)
	}
	b.ReportMetric(float64(t1.RowMP().Packages), "mp-packages")
	b.ReportMetric(float64(t1.RowBoth().Packages), "both-packages")
	b.ReportMetric(float64(t1.RowAll().Packages), "total-packages")
}

// BenchmarkTable2Features regenerates Table II: per-construct counts and
// select-arm percentiles.
func BenchmarkTable2Features(b *testing.B) {
	corpus := corpusForBench(300)
	files := corpusFiles(corpus)
	sc := &features.Scanner{Wrappers: []string{"asyncRun"}}
	var t2 *features.TableII
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2, _, _ = sc.Scan(files)
	}
	s := t2.Source
	b.ReportMetric(float64(s.TotalGoroutineCreation()), "goroutine-creations")
	b.ReportMetric(100*float64(s.ChanUnbuffered)/float64(s.TotalChanAllocs()), "unbuffered-pct")
	b.ReportMetric(float64(s.ArmPercentile(50)), "select-p50-arms")
	b.ReportMetric(float64(s.ArmMax()), "select-max-arms")
}

// BenchmarkTable3ToolComparison regenerates Table III: the three static
// baselines against the labelled corpus (precision band ~1/3..1/2),
// GOLEAK's row coming from the monorepo simulation at 100% by
// construction of its detection criterion.
func BenchmarkTable3ToolComparison(b *testing.B) {
	corpus := corpusForBench(300)
	var outcomes []staticbase.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes = staticbase.EvaluateAll(corpus)
	}
	for _, o := range outcomes {
		b.ReportMetric(100*o.Precision(), o.Tool+"-precision-pct")
		b.ReportMetric(float64(o.Reports), o.Tool+"-reports")
	}
}

// BenchmarkTable4BlockingTypes regenerates Table IV: the census of
// lingering goroutines after the full test-suite run, classified through
// the real parse/classify pipeline.
func BenchmarkTable4BlockingTypes(b *testing.B) {
	var census *monorepo.Census
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		census, err = monorepo.RunCensus(10, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	total := float64(census.Total)
	b.ReportMetric(100*float64(census.Counts[stack.KindSelect])/total, "select-pct")
	b.ReportMetric(100*float64(census.Counts[stack.KindChanReceive])/total, "recv-pct")
	b.ReportMetric(100*float64(census.Counts[stack.KindChanSend])/total, "send-pct")
	b.ReportMetric(100*census.MessagePassingShare(), "message-passing-pct")
}

// BenchmarkFig1RSSReduction regenerates Fig 1: the RSS collapse after the
// fix (paper: ≈9.2×).
func BenchmarkFig1RSSReduction(b *testing.B) {
	origin := time.Unix(0, 0).UTC()
	var reduction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before, after := metrics.Fig1Series(origin)
		reduction = before.Max() / after[len(after)-1].V
	}
	b.ReportMetric(reduction, "rss-reduction-x")
}

// BenchmarkFig2CPUReduction regenerates Fig 2: max/mean CPU cuts after
// the fix (paper: −34% max, −16.5% mean).
func BenchmarkFig2CPUReduction(b *testing.B) {
	origin := time.Unix(0, 0).UTC()
	var maxCut, meanCut float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxB, maxA, meanB, meanA := metrics.Fig2Impact(origin)
		maxCut = 100 * (maxB - maxA) / maxB
		meanCut = 100 * (meanB - meanA) / meanB
	}
	b.ReportMetric(maxCut, "max-cpu-cut-pct")
	b.ReportMetric(meanCut, "mean-cpu-cut-pct")
}

// BenchmarkFig5WeeklyInflow regenerates Fig 5: the weekly leak inflow
// before/after GOLEAK's CI deployment, detection running through the real
// goleak path for every PR.
func BenchmarkFig5WeeklyInflow(b *testing.B) {
	var res *monorepo.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = monorepo.Run(monorepo.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	var preMerged, postMerged int
	for _, w := range res.Weeks {
		if w.Week < monorepo.DefaultConfig().DeployWeek {
			preMerged += w.Merged
		} else {
			postMerged += w.Merged
		}
	}
	b.ReportMetric(float64(preMerged), "pre-deploy-leaks")
	b.ReportMetric(float64(postMerged), "post-deploy-leaks")
	b.ReportMetric(float64(res.PreventedEstimate), "prevented-per-year")
}

// BenchmarkFig6LeakFootprint regenerates Fig 6: the blocked-goroutine
// ramp (representative instance toward 16K; fleet toward ~3M) with daily
// LEAKPROF sweeps over the 800-instance service.
func BenchmarkFig6LeakFootprint(b *testing.B) {
	var series []fleet.Fig6Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = fleet.RunFig6(6)
	}
	last := series[len(series)-1]
	b.ReportMetric(float64(last.Representative), "representative-blocked")
	b.ReportMetric(float64(last.FleetTotal), "fleet-blocked")
	detected := 0.0
	for _, p := range series {
		if p.Detected {
			detected = float64(p.Day)
			break
		}
	}
	b.ReportMetric(detected, "detected-on-day")
}

// BenchmarkTable5ServiceImpact regenerates Table V: per-service memory
// savings re-derived through the resource model.
func BenchmarkTable5ServiceImpact(b *testing.B) {
	var rows []metrics.ServiceImpact
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = metrics.SimulateTableV(72 * time.Hour)
	}
	for _, r := range rows[:3] {
		b.ReportMetric(r.SavedPct(), r.Name+"-saved-pct")
	}
}

// BenchmarkSectionVIIYear regenerates the §VII headline: 33 reports, 24
// acknowledged (72.7% precision), 21 fixed over a simulated year.
func BenchmarkSectionVIIYear(b *testing.B) {
	var y fleet.YearOutcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y = fleet.RunYear(1)
	}
	b.ReportMetric(float64(y.Reports), "reports")
	b.ReportMetric(float64(y.Acknowledged), "acknowledged")
	b.ReportMetric(float64(y.Fixed), "fixed")
	b.ReportMetric(100*y.Precision(), "precision-pct")
}

// ---- §IV-B: GOLEAK overhead ----

// BenchmarkGoleakFindClean measures one detection sweep on a healthy
// process: the common case every CI test pays.
func BenchmarkGoleakFindClean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leaks, err := goleak.Find(goleak.MaxRetries(0))
		if err != nil {
			b.Fatal(err)
		}
		if len(leaks) != 0 {
			b.Fatalf("unexpected leaks in benchmark process: %v", leaks)
		}
	}
}

// BenchmarkGoleakFindPathological reproduces the paper's worst case: a
// test that leaks a large number of goroutines and does nothing else.
// The paper measures 4.6–7.4× slowdown (overhead grows with the leak
// count, so this sweeps it) and 200–400µs per additional leaked stack.
func BenchmarkGoleakFindPathological(b *testing.B) {
	for _, leaked := range []int{32, 64, 128, 512} {
		leaked := leaked
		b.Run(fmt.Sprintf("leaked-%d", leaked), func(b *testing.B) {
			baseline := measureFind(b, 10) // healthy-process cost, before the leaks
			inst := patterns.ContractDone.Trigger(leaked)
			defer inst.Release()
			if err := patterns.AwaitKind(stack.KindSelect, leaked, 10*time.Second); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				leaks, err := goleak.Find(goleak.MaxRetries(0))
				if err != nil {
					b.Fatal(err)
				}
				if len(leaks) < leaked {
					b.Fatalf("found %d leaks, want >= %d", len(leaks), leaked)
				}
			}
			b.StopTimer()
			perOp := b.Elapsed() / time.Duration(b.N)
			if baseline > 0 {
				b.ReportMetric(float64(perOp)/float64(baseline), "x-overhead")
			}
			b.ReportMetric(float64(perOp.Microseconds())/float64(leaked), "us-per-leaked-stack")
		})
	}
}

// measureFind times a handful of Find sweeps (used to compute the
// pathological overhead ratio against the current process state).
func measureFind(b *testing.B, n int) time.Duration {
	b.Helper()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := goleak.Find(goleak.MaxRetries(0)); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(n)
}

// ---- §V-B: LEAKPROF analysis throughput ----

// BenchmarkLeakprofAnalysisThroughput measures the detection stage over a
// platform sweep (the paper analyzes ~200K profiles in under a minute;
// this scales 1:40 and reports profiles/second).
func BenchmarkLeakprofAnalysisThroughput(b *testing.B) {
	configs := []fleet.ServiceConfig{}
	for s := 0; s < 50; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        100,
			BenignGoroutines: 30,
			Seed:             int64(s),
		}
		if s%5 == 0 {
			cfg.Pattern = patterns.TimeoutLeak
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/h.go", s)
			cfg.LeakLine = 10
			cfg.LeakPerDay = 15000
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Unix(0, 0).UTC(), configs)
	f.AdvanceDay()
	snaps := f.SnapshotsAggregated()
	analyzer := &leakprof.Analyzer{}
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		found = len(analyzer.Analyze(snaps))
	}
	b.StopTimer()
	if found != 10 {
		b.Fatalf("findings = %d, want 10", found)
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(len(snaps))/perOp.Seconds(), "profiles/sec")
	}
}

// ---- Micro-benchmarks of the substrate hot paths ----

// BenchmarkStackParse measures dump parsing, the cost LEAKPROF pays per
// collected profile.
func BenchmarkStackParse(b *testing.B) {
	gs := patterns.ContractDone.Stacks(1, 200)
	dump := stack.Format(gs)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, err := stack.Parse(dump)
		if err != nil || len(parsed) != 200 {
			b.Fatalf("parse: %v (%d)", err, len(parsed))
		}
	}
}

// BenchmarkScanDump measures the streaming scanner against the
// materialize-then-parse baseline (the old collector flow: buffer the
// body, Parse, walk the slice) on a production-shaped synthetic dump of
// >=10K goroutines. The headline is allocs/op: streaming must stay
// strictly below the Parse baseline (the PR-1 acceptance bound).
func BenchmarkScanDump(b *testing.B) {
	cfg := synth.DumpConfig{Benign: 250, LeakClusters: 4, ClusterSize: 2500, Seed: 1}
	dump := synth.Dump(cfg)
	want := cfg.Goroutines()
	countBlocked := func(gs ...*stack.Goroutine) int {
		n := 0
		for _, g := range gs {
			if _, ok := g.BlockedChannelOp(); ok {
				n++
			}
		}
		return n
	}
	b.Run("scanner-stream", func(b *testing.B) {
		b.SetBytes(int64(len(dump)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := stack.NewScanner(strings.NewReader(dump))
			total, blocked := 0, 0
			for sc.Scan() {
				total++
				blocked += countBlocked(sc.Goroutine())
			}
			if sc.Err() != nil || total != want || blocked != 4*2500 {
				b.Fatalf("scan: %v (%d/%d)", sc.Err(), total, blocked)
			}
		}
	})
	b.Run("parse-baseline", func(b *testing.B) {
		b.SetBytes(int64(len(dump)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body, err := io.ReadAll(strings.NewReader(dump)) // the old fetch path buffers the body
			if err != nil {
				b.Fatal(err)
			}
			gs, err := stack.Parse(string(body))
			if err != nil || len(gs) != want {
				b.Fatalf("parse: %v (%d)", err, len(gs))
			}
			if blocked := countBlocked(gs...); blocked != 4*2500 {
				b.Fatalf("blocked = %d", blocked)
			}
		}
	})
}

// BenchmarkAggregateFleet measures the sharded streaming aggregation over
// a platform-scale sweep: 5K instances folded one at a time, findings
// ranked at the end, peak state O(locations) instead of O(fleet).
func BenchmarkAggregateFleet(b *testing.B) {
	configs := []fleet.ServiceConfig{}
	for s := 0; s < 50; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        100,
			BenignGoroutines: 30,
			Seed:             int64(s),
		}
		if s%5 == 0 {
			cfg.Pattern = patterns.TimeoutLeak
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/h.go", s)
			cfg.LeakLine = 10
			cfg.LeakPerDay = 15000
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Unix(0, 0).UTC(), configs)
	f.AdvanceDay()
	analyzer := &leakprof.Analyzer{}
	b.ReportAllocs()
	b.ResetTimer()
	var swept, found int
	for i := 0; i < b.N; i++ {
		agg := analyzer.NewAggregator()
		swept = f.SweepInto(agg)
		found = len(agg.Findings(analyzer.Ranking))
	}
	b.StopTimer()
	if swept != 5000 || found != 10 {
		b.Fatalf("swept %d instances, %d findings; want 5000, 10", swept, found)
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(swept)/perOp.Seconds(), "profiles/sec")
	}
}

// BenchmarkClassify measures blocking-kind classification per goroutine.
func BenchmarkClassify(b *testing.B) {
	gs := patterns.TimeoutLeak.Stacks(1, 1)
	g := gs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Kind() != stack.KindChanSend {
			b.Fatal("misclassified")
		}
	}
}

// ---- Ablations (design choices DESIGN.md calls out) ----

// BenchmarkAblationThresholdSweep sweeps the LEAKPROF concentration
// threshold, reporting findings at each setting: the precision/recall
// trade the paper tuned to 10K.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	f := fleet.New(time.Unix(0, 0).UTC(), []fleet.ServiceConfig{fleet.Fig6Config()})
	for d := 0; d < 4; d++ {
		f.AdvanceDay()
	}
	snaps := f.SnapshotsAggregated()
	for _, threshold := range []int{100, 1000, 10000, 100000} {
		threshold := threshold
		b.Run(fmt.Sprintf("threshold-%d", threshold), func(b *testing.B) {
			analyzer := &leakprof.Analyzer{Threshold: threshold}
			var n int
			for i := 0; i < b.N; i++ {
				n = len(analyzer.Analyze(snaps))
			}
			b.ReportMetric(float64(n), "findings")
		})
	}
}

// BenchmarkAblationRanking compares the fleet-wide impact statistics
// (paper: RMS chosen for concentration sensitivity).
func BenchmarkAblationRanking(b *testing.B) {
	f := fleet.New(time.Unix(0, 0).UTC(), []fleet.ServiceConfig{fleet.Fig6Config()})
	for d := 0; d < 4; d++ {
		f.AdvanceDay()
	}
	snaps := f.SnapshotsAggregated()
	for _, r := range []leakprof.Ranking{leakprof.RankRMS, leakprof.RankMean, leakprof.RankMax, leakprof.RankTotal} {
		r := r
		b.Run(r.String(), func(b *testing.B) {
			analyzer := &leakprof.Analyzer{Ranking: r}
			var impact float64
			for i := 0; i < b.N; i++ {
				if fs := analyzer.Analyze(snaps); len(fs) > 0 {
					impact = fs[0].Impact
				}
			}
			b.ReportMetric(impact, "top-impact")
		})
	}
}

// BenchmarkAblationASTFilter measures the criterion-2 AST filter's
// effect: a fleet where half the big clusters sit at a provably transient
// select (timer heartbeat). Without the filter they are reported; with it
// only the true leak survives.
func BenchmarkAblationASTFilter(b *testing.B) {
	heartbeatSrc := `package svc
import ("time"; "context")
func heartbeat(ctx context.Context) {
	select {
	case <-time.After(time.Minute):
	case <-ctx.Done():
	}
}
`
	file, err := astcheck.ParseSource("services/svc/heartbeat.go", heartbeatSrc)
	if err != nil {
		b.Fatal(err)
	}
	// Build snapshots by hand: a transient cluster and a leak cluster.
	mkSnap := func(fn, loc string, line, n int) *gprofile.Snapshot {
		s := &gprofile.Snapshot{Service: "svc", Instance: "i1"}
		op := stack.BlockedOp{Op: "select", Function: fn, Location: loc}
		s.PreAggregated = map[stack.BlockedOp]int{op: n}
		return s
	}
	snaps := []*gprofile.Snapshot{
		mkSnap("svc.heartbeat", "services/svc/heartbeat.go:4", 4, 20000),
		mkSnap("svc.worker", "services/svc/worker.go:9", 9, 20000),
	}
	for _, withFilter := range []bool{false, true} {
		withFilter := withFilter
		name := "filter-off"
		if withFilter {
			name = "filter-on"
		}
		b.Run(name, func(b *testing.B) {
			analyzer := &leakprof.Analyzer{}
			if withFilter {
				analyzer.Filters = []leakprof.OpFilter{
					leakprof.FilterTransientSelects([]*astcheck.File{file}),
				}
			}
			var n int
			for i := 0; i < b.N; i++ {
				n = len(analyzer.Analyze(snaps))
			}
			b.ReportMetric(float64(n), "findings")
		})
	}
}

// BenchmarkAblationMinWaitFilter measures the wait-duration extension: a
// profile mixing freshly blocked goroutines with long-stuck ones.
func BenchmarkAblationMinWaitFilter(b *testing.B) {
	snap := &gprofile.Snapshot{Service: "svc", Instance: "i1"}
	for i := 0; i < 20000; i++ {
		wait := time.Duration(0)
		fn, file, line := "svc.leak", "/svc/l.go", 5
		if i%2 == 0 {
			wait = 2 * time.Second // transient blockers
			fn, file, line = "svc.busy", "/svc/b.go", 9
		} else {
			wait = time.Hour
		}
		snap.Goroutines = append(snap.Goroutines, &stack.Goroutine{
			ID: int64(i), State: "chan send", WaitTime: wait,
			Frames: []stack.Frame{{Function: fn, File: file, Line: line}},
		})
	}
	for _, minWait := range []time.Duration{0, 10 * time.Minute} {
		minWait := minWait
		b.Run(fmt.Sprintf("minwait-%s", minWait), func(b *testing.B) {
			analyzer := &leakprof.Analyzer{Threshold: 5000}
			if minWait > 0 {
				analyzer.Filters = []leakprof.OpFilter{leakprof.FilterMinWait(minWait)}
			}
			var n int
			for i := 0; i < b.N; i++ {
				n = len(analyzer.Analyze([]*gprofile.Snapshot{snap}))
			}
			b.ReportMetric(float64(n), "findings")
		})
	}
}

// BenchmarkAblationTrendTracker measures the cross-sweep trend extension
// on a fleet with one genuine leak and one oscillating congestion source.
func BenchmarkAblationTrendTracker(b *testing.B) {
	configs := []fleet.ServiceConfig{
		{
			Name: "leaky", Instances: 10, Pattern: patterns.TimeoutLeak,
			LeakFile: "services/leaky/h.go", LeakLine: 3,
			LeakPerDay: 3000, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 10, Seed: 4,
		},
		{
			Name: "bursty", Instances: 10, Pattern: patterns.ContractOutsideLoop,
			LeakFile: "services/bursty/pool.go", LeakLine: 8,
			LeakPerDay: 6000, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 2, BenignGoroutines: 10, Seed: 5,
		},
	}
	b.ResetTimer()
	var growing int
	for i := 0; i < b.N; i++ {
		f := fleet.New(time.Unix(0, 0).UTC(), configs)
		analyzer := &leakprof.Analyzer{Threshold: 1000}
		tr := &leakprof.TrendTracker{}
		at := time.Unix(0, 0)
		for day := 0; day < 6; day++ {
			f.AdvanceDay()
			tr.Observe(at, analyzer.Analyze(f.SnapshotsAggregated()))
			at = at.Add(24 * time.Hour)
		}
		growing = len(tr.Growing())
	}
	b.ReportMetric(float64(growing), "growing-locations")
}

// BenchmarkAblationGoleakRetry compares the detector with and without its
// retry loop on a process with a slow-exiting goroutine: without retries
// the sweep is fast but would flag healthy code.
func BenchmarkAblationGoleakRetry(b *testing.B) {
	for _, retries := range []int{0, 20} {
		retries := retries
		b.Run(fmt.Sprintf("retries-%d", retries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := goleak.Find(goleak.MaxRetries(retries)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
