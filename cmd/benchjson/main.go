// Command benchjson converts `go test -bench` output on stdin into a
// JSON array of benchmark results on stdout — name, iterations, ns/op,
// B/op, allocs/op, and any custom ReportMetric units — so CI can upload
// the perf trajectory as a machine-readable artifact (BENCH_N.json)
// instead of a text blob:
//
//	go test -bench=. -benchtime=1x ./... | benchjson > BENCH_5.json
//
// With -require, benchjson exits non-zero unless every named benchmark
// (comma-separated prefixes) appears in the input, so a renamed or
// skipped acceptance benchmark fails the pipeline instead of silently
// vanishing from the trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	require := flag.String("require", "", "comma-separated benchmark name prefixes that must be present in the input")
	flag.Parse()

	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, r := range results {
			if strings.HasPrefix(r.Name, want) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: required benchmark %q missing from input (%d results parsed)\n", want, len(results))
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
