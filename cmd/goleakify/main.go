// Command goleakify applies the paper's build-pipeline instrumentation
// (Section IV-A) to a source tree: every test package gains a TestMain
// that invokes goleak.VerifyTestMain, so lingering goroutines fail the
// target.
//
// Usage:
//
//	goleakify [-dry-run] [-import path/to/goleak] path/to/tree
//
// Packages with a custom TestMain are reported as conflicts for manual
// amendment; canonical `os.Exit(m.Run())` TestMains are rewritten in
// place.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/instrument"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "report what would change without writing")
	importPath := flag.String("import", "repro/goleak", "goleak import path to inject")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: goleakify [-dry-run] [-import path] <tree>")
		os.Exit(2)
	}
	in := &instrument.Instrumenter{GoleakImport: *importPath, DryRun: *dryRun}
	results, err := in.Tree(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "goleakify:", err)
		os.Exit(1)
	}
	conflicts := 0
	for _, r := range results {
		switch r.Status {
		case instrument.StatusNoTests:
			continue
		case instrument.StatusConflict:
			conflicts++
			fmt.Printf("%-22s %s: %s\n", r.Status, r.Dir, r.Detail)
		default:
			fmt.Printf("%-22s %s\n", r.Status, r.Dir)
		}
	}
	if conflicts > 0 {
		os.Exit(1)
	}
}
