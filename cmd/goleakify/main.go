// Command goleakify applies the paper's build-pipeline instrumentation
// (Section IV-A) to a source tree: every test package gains a TestMain
// that invokes goleak.VerifyTestMain, so lingering goroutines fail the
// target.
//
// Usage:
//
//	goleakify [-dry-run] [-import path/to/goleak] path/to/tree
//
// Packages with a custom TestMain are reported as conflicts for manual
// amendment; canonical `os.Exit(m.Run())` TestMains are rewritten in
// place.
//
// Exit status: 0 when every package was instrumented (or already was),
// 1 when any package conflicted or the tree could not be processed, 2 on
// usage errors. -dry-run reports the same statuses and exit codes but
// writes nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/instrument"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted, so the exit-status
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("goleakify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dryRun := fs.Bool("dry-run", false, "report what would change without writing")
	importPath := fs.String("import", "repro/goleak", "goleak import path to inject")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: goleakify [-dry-run] [-import path] <tree>")
		return 2
	}
	in := &instrument.Instrumenter{GoleakImport: *importPath, DryRun: *dryRun}
	results, err := in.Tree(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "goleakify:", err)
		return 1
	}
	conflicts := 0
	for _, r := range results {
		switch r.Status {
		case instrument.StatusNoTests:
			continue
		case instrument.StatusConflict:
			conflicts++
			fmt.Fprintf(stdout, "%-22s %s: %s\n", r.Status, r.Dir, r.Detail)
		default:
			fmt.Fprintf(stdout, "%-22s %s\n", r.Status, r.Dir)
		}
	}
	if conflicts > 0 {
		return 1
	}
	return 0
}
