package main

// CLI-level tests of the exit-status contract: conflicts exit 1,
// -dry-run writes nothing, clean trees exit 0 and write the companion
// file.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/instrument"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const plainTest = `package pkg

import "testing"

func TestOK(t *testing.T) {}
`

const customTestMain = `package pkg

import (
	"os"
	"testing"
)

func setup() {}

func TestMain(m *testing.M) {
	setup()
	code := m.Run()
	os.Exit(code)
}
`

func TestRunInjectsAndExitsZero(t *testing.T) {
	root := writeTree(t, map[string]string{"a/x_test.go": plainTest})
	var out, errOut bytes.Buffer
	if code := run([]string{root}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	gen := filepath.Join(root, "a", instrument.GeneratedFileName)
	if _, err := os.Stat(gen); err != nil {
		t.Fatalf("companion file not written: %v", err)
	}
	if !strings.Contains(out.String(), "a") {
		t.Fatalf("stdout did not report the package: %q", out.String())
	}
}

func TestRunConflictExitsOne(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/x_test.go": plainTest,
		"b/y_test.go": customTestMain,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{root}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 for a tree with a conflicting TestMain (stdout %q)", code, out.String())
	}
	if !strings.Contains(out.String(), "amend manually") {
		t.Fatalf("conflict detail missing from output: %q", out.String())
	}
	// The conflict in b must not block instrumentation of a.
	if _, err := os.Stat(filepath.Join(root, "a", instrument.GeneratedFileName)); err != nil {
		t.Fatalf("clean sibling package not instrumented: %v", err)
	}
}

func TestDryRunWritesNothing(t *testing.T) {
	root := writeTree(t, map[string]string{"a/x_test.go": plainTest})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dry-run", root}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(root, "a", instrument.GeneratedFileName)); !os.IsNotExist(err) {
		t.Fatalf("-dry-run wrote the companion file (stat err = %v)", err)
	}
	// And the dry-run of a conflict still exits 1: CI can gate on it.
	root2 := writeTree(t, map[string]string{"b/y_test.go": customTestMain})
	if code := run([]string{"-dry-run", root2}, &out, &errOut); code != 1 {
		t.Fatalf("dry-run conflict exit = %d, want 1", code)
	}
}

func TestUsageExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2 with no tree argument", code)
	}
}
