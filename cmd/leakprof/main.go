// Command leakprof runs the production-side leak detector against a fleet
// of goroutine-profile endpoints, or against saved profile files.
//
// Usage:
//
//	leakprof -endpoints svc1=http://h1:6060,svc1=http://h2:6060,...
//	leakprof -dir /path/to/profiles    # files named <service>_<instance>.txt
//
// Flags tune the paper's knobs: -threshold (default 10000), -rank
// (rms|mean|max|total), -top (alerts per sweep), -parallelism (concurrent
// fetches). Endpoint sweeps stream: each profile body flows through the
// stack scanner into a sharded fleet aggregator as its fetch completes,
// so memory stays flat regardless of fleet and profile size. SIGINT
// cancels an in-flight sweep cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/leakprof"
)

func main() {
	endpoints := flag.String("endpoints", "", "comma-separated service=url pairs of goroutine profile endpoints")
	dir := flag.String("dir", "", "directory of saved debug=2 profiles named <service>_<instance>.txt")
	threshold := flag.Int("threshold", leakprof.DefaultThreshold, "per-instance blocked-goroutine threshold")
	rank := flag.String("rank", "rms", "impact ranking: rms, mean, max, total")
	top := flag.Int("top", 10, "alerts per sweep")
	timeout := flag.Duration("timeout", 30*time.Second, "per-endpoint fetch timeout")
	parallelism := flag.Int("parallelism", 32, "concurrent profile fetches")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	analyzer := &leakprof.Analyzer{Threshold: *threshold, Ranking: parseRank(*rank)}
	var findings []*leakprof.Finding
	switch {
	case *endpoints != "":
		var eps []leakprof.Endpoint
		for i, pair := range strings.Split(*endpoints, ",") {
			svc, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fatal(fmt.Errorf("malformed endpoint %q (want service=url)", pair))
			}
			eps = append(eps, leakprof.Endpoint{
				Service: svc, Instance: fmt.Sprintf("i%03d", i), URL: url,
			})
		}
		c := &leakprof.Collector{Timeout: *timeout, Parallelism: *parallelism}
		agg := analyzer.NewAggregator()
		for _, err := range c.CollectInto(ctx, eps, agg) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "warn: %v\n", err)
			}
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "leakprof: sweep interrupted")
		}
		fmt.Printf("collected %d profiles\n", agg.Profiles())
		findings = agg.Findings(analyzer.Ranking)
	case *dir != "":
		loaded, errs, err := gprofile.LoadDir(*dir, time.Now())
		if err != nil {
			fatal(err)
		}
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "warn: %v\n", e)
		}
		fmt.Printf("collected %d profiles\n", len(loaded))
		findings = analyzer.Analyze(loaded)
	default:
		flag.Usage()
		os.Exit(2)
	}

	reporter := &leakprof.Reporter{DB: report.NewDB(), TopN: *top}
	alerts := reporter.Report(findings)
	if len(alerts) == 0 {
		fmt.Println("no suspicious blocking operations above threshold")
		return
	}
	for _, a := range alerts {
		fmt.Print(a.Render())
	}
}

func parseRank(s string) leakprof.Ranking {
	switch s {
	case "mean":
		return leakprof.RankMean
	case "max":
		return leakprof.RankMax
	case "total":
		return leakprof.RankTotal
	default:
		return leakprof.RankRMS
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakprof:", err)
	os.Exit(1)
}
