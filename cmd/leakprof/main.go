// Command leakprof runs the production-side leak detector against a fleet
// of goroutine-profile endpoints, or against saved profile files.
//
// Usage:
//
//	leakprof -endpoints svc1=http://h1:6060,svc1=http://h2:6060,...
//	leakprof -dir /path/to/profiles    # files named <service>_<instance>.txt
//
// Flags tune the paper's knobs: -threshold (default 10000), -rank
// (rms|mean|max|total), -top (alerts per sweep), -parallelism (concurrent
// fetches). Production-collection knobs ride the Pipeline engine:
// -retries enables bounded per-endpoint retry with jittered backoff,
// -error-budget short-circuits a service's remaining instances once that
// many of its instances failed, and -archive records each sweep
// write-through into its own manifested sweep-NNNN subdirectory,
// replayable with -dir (a rerun appends new sweeps to the history;
// -archive-keep bounds the history to the newest N sweeps). With
// -state-dir the run is durable: the bug DB, cross-sweep trend history,
// and error-budget seeds journal to disk — as an append-only segment log
// whose per-sweep cost is the sweep's delta, compacted past
// -state-segments live segments, with -trend-keep bounding per-key trend
// history and -bug-keep aging closed bugs out — so repeated invocations
// dedup against every bug ever filed, resume trend verdicts, and probe
// yesterday's failing services with a reduced budget. -fsync picks the
// journal's durability policy (sweep, close, or N[/duration] group
// commit), and -detached-sinks lets sink lag span sweeps instead of
// barriering each one (both drain at exit). A -dir pointing at
// a multi-sweep archive (one sweep-NNNN subdirectory per sweep) replays
// every recorded sweep at its manifested timestamp. Both input kinds
// drive the same streaming pipeline: each profile flows through the
// stack scanner into a sharded fleet aggregator as it arrives, so memory
// stays flat regardless of fleet and profile size. SIGINT cancels an
// in-flight sweep cleanly. With -static-index pointing at a findings
// index written by leakrank, every filed bug is decorated with the
// static alarm for its site ("static: gcatch-like,goat-like: ..." in
// the alert) — the static↔dynamic loop's production half.
//
// Distributed sweeps split one fleet across processes. A worker runs
// with -shard K/N: it sweeps only the endpoints whose services hash to
// shard K of N and, instead of filing findings, emits a folded shard
// report — moments, not profiles — to a file (-report-out) or a
// coordinator inbox URL (-report-url). A coordinator runs with
// -merge-reports file1,file2,...: it merges the workers' reports into
// one sweep carrying exactly the moments a single-process sweep of the
// whole fleet would fold, and runs the normal alerting, sinks, and
// state journal on the result. -merge-deadline bounds the merge: a
// shard that has not reported when the deadline passes is written off
// as one failed instance instead of holding the sweep open.
//
// Streaming ingestion inverts the pull model entirely: -ingest :6061
// serves a push endpoint where instances POST their own debug=2 dump
// bodies (plain or gzip), each body streaming through the scanner on
// arrival. Arrivals fold into tumbling windows (-window, default 1m);
// each closed window emits one normal sweep through the same alerting,
// archive, and state-journal tail the pull modes use. Admission is
// bounded (-ingest-queue): overflow POSTs get 429 + Retry-After and the
// rejection is charged to the service's error accounting; -ingest-quota
// additionally caps any one service's share of the queue so a noisy
// fleet cannot crowd the others out. Scanned dumps fold into the window
// concurrently (-fold-workers, default min(GOMAXPROCS, 8)) — the
// aggregator is order-independent, so worker count never changes a
// sweep's findings. SIGINT drains everything admitted into a final
// partial window before exiting. -ingest-token arms shared-secret
// admission: a POST without the matching X-Leakprof-Token is a 401
// (compared constant-time) before its ?service= claim can touch any
// accounting; the same flag makes a -shard worker send the token with
// its -report-url handoff.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/report"
	"repro/internal/staticindex"
	"repro/leakprof"
)

func main() {
	endpoints := flag.String("endpoints", "", "comma-separated service=url pairs of goroutine profile endpoints")
	dir := flag.String("dir", "", "directory of saved debug=2 profiles named <service>_<instance>.txt (single- or multi-sweep archive)")
	threshold := flag.Int("threshold", leakprof.DefaultThreshold, "per-instance blocked-goroutine threshold")
	rank := flag.String("rank", "rms", "impact ranking: rms, mean, max, total")
	top := flag.Int("top", 10, "alerts per sweep")
	timeout := flag.Duration("timeout", 30*time.Second, "per-endpoint fetch timeout")
	parallelism := flag.Int("parallelism", 32, "concurrent profile fetches")
	retries := flag.Int("retries", 1, "fetch attempts per endpoint (1 = no retry)")
	errorBudget := flag.Int("error-budget", 0, "failed instances per service before skipping the rest (0 = unlimited)")
	archive := flag.String("archive", "", "base directory to archive sweeps into, write-through: one manifested sweep-NNNN subdirectory per sweep, replayable with -dir")
	archiveKeep := flag.Int("archive-keep", 0, "with -archive: keep only the newest N finalised sweeps, pruning older sweep-NNNN directories (0 = keep all)")
	stateDir := flag.String("state-dir", "", "directory for the durable state journal: bug-DB dedup, trend history, and error-budget seeds survive restarts")
	stateSegments := flag.Int("state-segments", 0, "with -state-dir: compact the segmented journal once more than N segments are live (0 = default)")
	trendKeep := flag.Int("trend-keep", 0, "with -state-dir: retain only the last N trend observations per finding key, in memory and in the journal (0 = unlimited)")
	bugKeep := flag.Duration("bug-keep", 0, "with -state-dir: age closed (fixed/rejected) bugs out of the bug DB and journal once unseen for this long (0 = keep forever)")
	fsync := flag.String("fsync", "sweep", "state journal fsync policy: sweep (every sweep), close (only at exit), or N[/duration] group commit (one fsync per window)")
	detached := flag.Bool("detached-sinks", false, "let sink lag span sweeps (bounded by the sink queue) instead of draining every sink before each sweep returns; sinks drain at exit")
	shard := flag.String("shard", "", "worker mode: sweep partition K/N of the -endpoints fleet (services hashed across N shards) and emit a shard report instead of findings; requires -report-out or -report-url")
	shardName := flag.String("shard-name", "", "worker mode: shard name in the report and in coordinator failure accounting (default shard-<K>)")
	reportOut := flag.String("report-out", "", "worker mode: write the binary shard report to this file (atomic rename), for a coordinator's -merge-reports")
	reportURL := flag.String("report-url", "", "worker mode: POST the binary shard report to this coordinator inbox URL")
	mergeReports := flag.String("merge-reports", "", "coordinator mode: comma-separated shard report files to merge into one sweep, run through the normal sinks and state journal")
	mergeDeadline := flag.Duration("merge-deadline", 0, "coordinator mode: close the merge after this wait, counting each unreported shard as one failed instance (0 = wait for the slowest shard)")
	ingest := flag.String("ingest", "", "push-ingestion mode: serve an ingest endpoint on this address (e.g. :6061); instances POST debug=2 dump bodies, windowed sweeps run until SIGINT")
	window := flag.Duration("window", 0, "with -ingest: tumbling-window duration between emitted sweeps (0 = 1m default)")
	ingestQueue := flag.Int("ingest-queue", 0, "with -ingest: bound on dumps in flight before POSTs are rejected with 429 (0 = 1024 default)")
	ingestQuota := flag.Int("ingest-quota", 0, "with -ingest: per-service bound on concurrently held admission slots; a service over its quota gets 429 without crowding others out (0 = no quota)")
	foldWorkers := flag.Int("fold-workers", 0, "with -ingest: goroutines folding scanned dumps into each window (0 = min(GOMAXPROCS, 8); 1 = serial)")
	ingestToken := flag.String("ingest-token", "", "shared-secret X-Leakprof-Token: -ingest POSTs without it get 401 (compared constant-time); worker -report-url POSTs send it")
	staticIndex := flag.String("static-index", "", "findings index written by leakrank: filed bugs and alerts are decorated with the static alarm for their site")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	syncPolicy, err := leakprof.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	opts := []leakprof.Option{
		leakprof.WithThreshold(*threshold),
		leakprof.WithRanking(parseRank(*rank)),
		leakprof.WithTimeout(*timeout),
		leakprof.WithParallelism(*parallelism),
		leakprof.WithRetry(leakprof.RetryPolicy{MaxAttempts: *retries}),
		leakprof.WithErrorBudget(*errorBudget),
		leakprof.WithSharedIntern(0),
	}
	if *detached {
		opts = append(opts, leakprof.WithDetachedSinks())
	}
	if *window > 0 {
		opts = append(opts, leakprof.WithWindow(*window))
	}
	// Ingest mode's sweeps are emitted by the window loop, not returned
	// from a Sweep call; collect them through the observer so the summary
	// and alert rendering below work unchanged.
	var winMu sync.Mutex
	var winSweeps []*leakprof.Sweep
	if *ingest != "" {
		opts = append(opts, leakprof.WithOnSweep(func(s *leakprof.Sweep) {
			winMu.Lock()
			winSweeps = append(winSweeps, s)
			winMu.Unlock()
		}))
	}
	if *stateDir != "" {
		opts = append(opts,
			leakprof.WithStateDir(*stateDir),
			leakprof.WithStateCompaction(0, *stateSegments),
			leakprof.WithTrendRetention(*trendKeep),
			leakprof.WithBugRetention(*bugKeep),
			leakprof.WithStateSync(syncPolicy),
		)
	}
	if *shard != "" {
		// Worker mode bypasses findings, sinks, and the journal entirely:
		// the shard's contribution is its folded report, and the
		// coordinator owns everything downstream of the merge.
		runShardWorker(ctx, opts, *shard, *shardName, *endpoints, *reportOut, *reportURL, *ingestToken)
		return
	}
	pipe := leakprof.New(opts...)

	// Durable runs wire the sinks to the journal-backed DB and tracker;
	// ephemeral runs get fresh ones.
	db := report.NewDB()
	var tracker *leakprof.TrendTracker
	store, err := pipe.State()
	if err != nil {
		fatal(err)
	}
	var reportSink *leakprof.ReportSink
	if store != nil {
		db = store.BugDB()
		tracker = store.Tracker()
		if last := store.LastSweep(); last != nil {
			fmt.Fprintf(os.Stderr, "state: resuming after sweep of %s at %s (%d profiles, %d errors)\n",
				last.Source, last.At.Format(time.RFC3339), last.Profiles, last.Errors)
		}
	}
	reporter := &leakprof.Reporter{DB: db, TopN: *top}
	if *staticIndex != "" {
		idx, err := staticindex.Load(*staticIndex)
		if err != nil {
			fatal(err)
		}
		reporter.StaticAlarm = idx.AlarmFunc()
	}
	reportSink = &leakprof.ReportSink{Reporter: reporter}
	pipe.AddSinks(reportSink)
	if tracker != nil {
		pipe.AddSinks(&leakprof.TrendSink{Tracker: tracker})
	}
	if *archive != "" {
		// Rotating mode: each sweep lands in its own manifested
		// subdirectory, so replaying a multi-sweep -dir through -archive
		// re-records every sweep instead of flattening them into one.
		archiveSink, err := leakprof.NewSweepArchiveSink(*archive, leakprof.KeepSweeps(*archiveKeep))
		if err != nil {
			fatal(err)
		}
		pipe.AddSinks(archiveSink)
	}

	var sweeps []*leakprof.Sweep
	switch {
	case *mergeReports != "":
		// Coordinator mode: merge the workers' handoff files into one
		// sweep and run it through the normal sink fan-out and journal. A
		// missing or corrupt file costs exactly that shard's contribution,
		// surfaced as a per-endpoint failure named after the file.
		var fetches []leakprof.ShardFetch
		for _, path := range strings.Split(*mergeReports, ",") {
			fetches = append(fetches, leakprof.ShardReportFromFile("", strings.TrimSpace(path)))
		}
		var sweep *leakprof.Sweep
		if *mergeDeadline > 0 {
			sweep, err = pipe.Sweep(ctx, leakprof.MergedReportsWithin(*mergeDeadline, fetches...))
		} else {
			sweep, err = pipe.Sweep(ctx, leakprof.MergedReports(fetches...))
		}
		sweeps = []*leakprof.Sweep{sweep}
	case *ingest != "":
		err = runIngest(ctx, pipe, *ingest, *ingestQueue, *ingestQuota, *foldWorkers, *ingestToken)
		winMu.Lock()
		sweeps = winSweeps
		winMu.Unlock()
	case *endpoints != "":
		var sweep *leakprof.Sweep
		sweep, err = pipe.Sweep(ctx, leakprof.StaticEndpoints(parseEndpoints(*endpoints)...))
		sweeps = []*leakprof.Sweep{sweep}
	case *dir != "":
		// Replay handles both layouts: a flat archive is one sweep, a
		// multi-sweep archive replays every recorded sweep at its
		// manifested timestamp.
		sweeps, err = pipe.Replay(ctx, *dir)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if len(sweeps) == 0 {
		fatal(err)
	}
	// The exit barrier: detached sinks drain here (their errors join
	// err), group-commit and on-close fsync windows land on disk, and
	// pending journal deltas append. Synchronous runs close trivially.
	if cerr := pipe.Close(); err == nil {
		err = cerr
	} else if cerr != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", cerr)
	}

	profiles := 0
	for _, sweep := range sweeps {
		profiles += sweep.Profiles
		for _, f := range sweep.Failures {
			fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "leakprof: sweep interrupted")
	} else if err != nil {
		// Source-, sink-, or state-level failure (unreadable archive,
		// failed write-through or journal save) — distinct from the
		// per-endpoint warnings above.
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	if len(sweeps) > 1 {
		fmt.Printf("collected %d profiles across %d sweeps\n", profiles, len(sweeps))
	} else {
		fmt.Printf("collected %d profiles\n", profiles)
	}

	// Alerts accumulate across a multi-sweep replay; reading them after
	// the Close barrier also covers detached-sink runs, where a sweep
	// returns before its alerts are filed.
	alerts := reportSink.Alerts()
	if len(alerts) == 0 {
		fmt.Println("no new suspicious blocking operations above threshold")
	}
	for _, a := range alerts {
		fmt.Print(a.Render())
	}
	if tracker != nil {
		for _, key := range tracker.Growing() {
			fmt.Printf("trend: growing across sweeps: %q\n", key)
		}
	}
}

// runIngest is -ingest mode: serve the push endpoint and run the window
// loop until the context is cancelled (SIGINT), then drain — everything
// admitted folds into a final partial-window sweep before the listener
// and pipeline shut down.
func runIngest(ctx context.Context, pipe *leakprof.Pipeline, addr string, queue, quota, workers int, token string) error {
	var iopts []leakprof.IngestOption
	if queue > 0 {
		iopts = append(iopts, leakprof.IngestQueue(queue))
	}
	if quota > 0 {
		iopts = append(iopts, leakprof.IngestServiceQuota(quota))
	}
	if workers > 0 {
		iopts = append(iopts, leakprof.IngestFoldWorkers(workers))
	}
	if token != "" {
		iopts = append(iopts, leakprof.IngestAuthToken(token))
	}
	srv := leakprof.NewIngestServer(pipe, iopts...)
	hs := &http.Server{Addr: addr, Handler: srv}
	// A listener that dies (port in use, NIC gone) must stop the window
	// loop too — otherwise the process sits headless until SIGINT.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()
	serveErr := make(chan error, 1)
	go func() {
		err := hs.ListenAndServe()
		serveErr <- err
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			icancel()
		}
	}()
	w := pipe.Config().Window
	if w <= 0 {
		w = leakprof.DefaultWindow
	}
	fmt.Fprintf(os.Stderr, "ingest: listening on %s, one sweep per %s window; POST debug=2 bodies with ?service= (Ctrl-C drains and exits)\n", addr, w)
	runErr := srv.Run(ictx)
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "ingest: %d admitted (%d folded), %d rejected (%d over quota), %d auth 401s, %d scan errors, %d windows closed\n",
		st.Admitted, st.Folded, st.Rejected+st.QuotaRejected, st.QuotaRejected, st.AuthRejected, st.ScanErrors, st.Windows)
	// ListenAndServe returns exactly once; after Shutdown this receive
	// is immediate.
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if errors.Is(runErr, context.Canceled) && ctx.Err() != nil {
		return nil // SIGINT is the intended shutdown path
	}
	return runErr
}

// runShardWorker is -shard mode: sweep partition K of the fleet's N
// service-hash shards and hand the folded report off (file, HTTP, or
// both) instead of filing findings.
func runShardWorker(ctx context.Context, opts []leakprof.Option, spec, name, endpoints, out, url, token string) {
	if endpoints == "" {
		fatal(errors.New("-shard requires -endpoints"))
	}
	if out == "" && url == "" {
		fatal(errors.New("-shard requires -report-out or -report-url"))
	}
	k, n, err := parseShardSpec(spec)
	if err != nil {
		fatal(err)
	}
	if name == "" {
		name = fmt.Sprintf("shard-%d", k)
	}
	part := leakprof.PartitionEndpoints(parseEndpoints(endpoints), n)[k]
	pipe := leakprof.New(opts...)
	rep, err := pipe.ShardSweep(ctx, leakprof.StaticEndpoints(part...), name, nil)
	if cerr := pipe.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", cerr)
	}
	// A source-level error still ships the partial report (it carries the
	// error for the coordinator); only a failed handoff is fatal.
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
	}
	if out != "" {
		if err := leakprof.WriteShardReportFile(out, rep); err != nil {
			fatal(err)
		}
	}
	if url != "" {
		if err := leakprof.PostShardReportAuth(ctx, nil, url, token, rep); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("shard %s (%d of %d): %d endpoints, %d profiles, %d errors, %d moment groups\n",
		name, k, n, len(part), rep.Profiles, rep.Errors, len(rep.Moments))
}

// parseShardSpec decodes -shard's K/N.
func parseShardSpec(s string) (k, n int, err error) {
	ks, ns, ok := strings.Cut(s, "/")
	if ok {
		k, err = strconv.Atoi(strings.TrimSpace(ks))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(ns))
		}
	}
	if !ok || err != nil || n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("malformed -shard %q (want K/N with 0 <= K < N, e.g. 0/4)", s)
	}
	return k, n, nil
}

// parseEndpoints decodes the -endpoints flag.
func parseEndpoints(s string) []leakprof.Endpoint {
	var eps []leakprof.Endpoint
	for i, pair := range strings.Split(s, ",") {
		svc, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fatal(fmt.Errorf("malformed endpoint %q (want service=url)", pair))
		}
		eps = append(eps, leakprof.Endpoint{
			Service: svc, Instance: fmt.Sprintf("i%03d", i), URL: url,
		})
	}
	return eps
}

func parseRank(s string) leakprof.Ranking {
	switch s {
	case "mean":
		return leakprof.RankMean
	case "max":
		return leakprof.RankMax
	case "total":
		return leakprof.RankTotal
	default:
		return leakprof.RankRMS
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakprof:", err)
	os.Exit(1)
}
