// Command leakprof runs the production-side leak detector against a fleet
// of goroutine-profile endpoints, or against saved profile files.
//
// Usage:
//
//	leakprof -endpoints svc1=http://h1:6060,svc1=http://h2:6060,...
//	leakprof -dir /path/to/profiles    # files named <service>_<instance>.txt
//
// Flags tune the paper's knobs: -threshold (default 10000), -rank
// (rms|mean|max|total), -top (alerts per sweep), -parallelism (concurrent
// fetches). Production-collection knobs ride the Pipeline engine:
// -retries enables bounded per-endpoint retry with jittered backoff,
// -error-budget short-circuits a service's remaining instances once that
// many of its instances failed, and -archive records the sweep
// write-through to a directory replayable with -dir. Both input kinds
// drive the same streaming pipeline: each profile flows through the
// stack scanner into a sharded fleet aggregator as it arrives, so memory
// stays flat regardless of fleet and profile size. SIGINT cancels an
// in-flight sweep cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/report"
	"repro/leakprof"
)

func main() {
	endpoints := flag.String("endpoints", "", "comma-separated service=url pairs of goroutine profile endpoints")
	dir := flag.String("dir", "", "directory of saved debug=2 profiles named <service>_<instance>.txt")
	threshold := flag.Int("threshold", leakprof.DefaultThreshold, "per-instance blocked-goroutine threshold")
	rank := flag.String("rank", "rms", "impact ranking: rms, mean, max, total")
	top := flag.Int("top", 10, "alerts per sweep")
	timeout := flag.Duration("timeout", 30*time.Second, "per-endpoint fetch timeout")
	parallelism := flag.Int("parallelism", 32, "concurrent profile fetches")
	retries := flag.Int("retries", 1, "fetch attempts per endpoint (1 = no retry)")
	errorBudget := flag.Int("error-budget", 0, "failed instances per service before skipping the rest (0 = unlimited)")
	archive := flag.String("archive", "", "directory to archive collected profiles into, write-through")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pipe := leakprof.New(
		leakprof.WithThreshold(*threshold),
		leakprof.WithRanking(parseRank(*rank)),
		leakprof.WithTimeout(*timeout),
		leakprof.WithParallelism(*parallelism),
		leakprof.WithRetry(leakprof.RetryPolicy{MaxAttempts: *retries}),
		leakprof.WithErrorBudget(*errorBudget),
		leakprof.WithSharedIntern(0),
	)
	reportSink := &leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: report.NewDB(), TopN: *top}}
	pipe.AddSinks(reportSink)
	if *archive != "" {
		archiveSink, err := leakprof.NewArchiveSink(*archive)
		if err != nil {
			fatal(err)
		}
		pipe.AddSinks(archiveSink)
	}

	var src leakprof.Source
	switch {
	case *endpoints != "":
		src = leakprof.StaticEndpoints(parseEndpoints(*endpoints)...)
	case *dir != "":
		src = leakprof.Archive(*dir)
	default:
		flag.Usage()
		os.Exit(2)
	}

	sweep, err := pipe.Sweep(ctx, src)
	for _, f := range sweep.Failures {
		fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "leakprof: sweep interrupted")
	} else if err != nil {
		// Source- or sink-level failure (unreadable archive, failed
		// write-through) — distinct from the per-endpoint warnings above.
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	fmt.Printf("collected %d profiles\n", sweep.Profiles)

	alerts := reportSink.LastAlerts()
	if len(alerts) == 0 {
		fmt.Println("no suspicious blocking operations above threshold")
		return
	}
	for _, a := range alerts {
		fmt.Print(a.Render())
	}
}

// parseEndpoints decodes the -endpoints flag.
func parseEndpoints(s string) []leakprof.Endpoint {
	var eps []leakprof.Endpoint
	for i, pair := range strings.Split(s, ",") {
		svc, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fatal(fmt.Errorf("malformed endpoint %q (want service=url)", pair))
		}
		eps = append(eps, leakprof.Endpoint{
			Service: svc, Instance: fmt.Sprintf("i%03d", i), URL: url,
		})
	}
	return eps
}

func parseRank(s string) leakprof.Ranking {
	switch s {
	case "mean":
		return leakprof.RankMean
	case "max":
		return leakprof.RankMax
	case "total":
		return leakprof.RankTotal
	default:
		return leakprof.RankRMS
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakprof:", err)
	os.Exit(1)
}
