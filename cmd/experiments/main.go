// Command experiments regenerates every table and figure of the paper's
// evaluation and prints paper-reported versus measured values.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|table4|table5|fig1|fig2|fig5|fig6|year|categories]
//	            [-scale N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/monorepo"
	"repro/internal/patterns"
	"repro/internal/staticbase"
	"repro/internal/synth"
	"repro/internal/textplot"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, table1..table5, fig1, fig2, fig5, fig6, year, categories)")
	scale := flag.Int("scale", 300, "synthetic corpus size in packages")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	experiments := map[string]func(int, int64){
		"table1":     table1,
		"table2":     table2,
		"table3":     table3,
		"table4":     table4,
		"table5":     table5,
		"fig1":       fig1,
		"fig2":       fig2,
		"fig5":       fig5,
		"fig6":       fig6,
		"year":       year,
		"categories": categories,
	}
	if *run == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			experiments[n](*scale, *seed)
		}
		return
	}
	fn, ok := experiments[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
	fn(*scale, *seed)
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

func corpus(scale int, seed int64) *synth.Corpus {
	cfg := synth.DefaultConfig()
	cfg.Packages = scale
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.20, 0.10, 0.10
	cfg.Seed = seed
	return synth.Generate(cfg)
}

func scan(c *synth.Corpus) (*features.TableII, *features.TableI) {
	var files []features.SourceFile
	for _, f := range c.Files() {
		files = append(files, features.SourceFile{Path: f.Path, Content: f.Content, Test: f.Test})
	}
	sc := &features.Scanner{Wrappers: []string{"asyncRun"}}
	t2, t1, _ := sc.Scan(files)
	return t2, t1
}

func table1(scale int, seed int64) {
	header("Table I — package paradigm split (synthetic corpus, scaled)")
	_, t1 := scan(corpus(scale, seed))
	fmt.Print(features.FormatTableI(t1))
	fmt.Println("paper (full monorepo): MP 4,699 / SM 6,627 / both 2,416 / total 119,816 packages")
}

func table2(scale int, seed int64) {
	header("Table II — concurrency feature counts")
	t2, _ := scan(corpus(scale, seed))
	fmt.Print(features.FormatTableII(t2))
	s := t2.Source
	fmt.Printf("shape vs paper: unbuffered %.0f%% of allocs (paper 45%%), wrappers %.0f%% of goroutine creation (paper 32%%), blocking selects %.0f%% (paper 74%%), P50 arms %d (paper 2)\n",
		100*float64(s.ChanUnbuffered)/float64(s.TotalChanAllocs()),
		100*float64(s.WrapperGoroutines)/float64(s.TotalGoroutineCreation()),
		100*float64(s.SelectBlocking)/float64(s.TotalSelects()),
		s.ArmPercentile(50))
}

func table3(scale int, seed int64) {
	header("Table III — analysis tool comparison")
	outcomes := staticbase.EvaluateAll(corpus(scale, seed))
	fmt.Print(staticbase.FormatTable(outcomes))
	fmt.Println("goleak          (dynamic)  precision 100.0% by detection criterion (see fig5 run)")
	fmt.Println("leakprof        (dynamic)  precision  72.7% (see year run)")
	fmt.Println("paper: GCatch 938 @51%, GOAT 450 @47%, GOMELA 389 @34%, GOLEAK 857 @100%, LEAKPROF 33 @72.7%")
}

func table4(scale int, seed int64) {
	header("Table IV — blocking-type census of lingering goroutines")
	c, err := monorepo.RunCensus(10, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(c.Format())
	fmt.Printf("message-passing share: %.1f%% (paper: >80%%)\n", 100*c.MessagePassingShare())
}

func table5(scale int, seed int64) {
	header("Table V — per-service memory impact of fixes")
	rows := metrics.SimulateTableV(72 * time.Hour)
	fmt.Print(metrics.FormatTableV(rows))
}

func fig1(scale int, seed int64) {
	header("Fig 1 — RSS before/after fixing a partial deadlock")
	origin := time.Unix(0, 0).UTC()
	before, after := metrics.Fig1Series(origin)
	fmt.Print(textplot.Chart{Rows: 10, Cols: 70, YLabel: "RSS bytes"}.Render(
		textplot.Series{Label: "leaking", Values: values(before)},
		textplot.Series{Label: "fix deployed day 4", Values: values(after)},
	))
	reduction := before.Max() / after[len(after)-1].V
	fmt.Printf("peak-vs-fixed reduction: %.1fx (paper: 9.2x)\n", reduction)
}

func values(s metrics.Series) []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

func fig2(scale int, seed int64) {
	header("Fig 2 — CPU utilization before/after the fix")
	origin := time.Unix(0, 0).UTC()
	beforeS, afterS := metrics.Fig2Series(origin)
	fmt.Print(textplot.Chart{Rows: 10, Cols: 70, YLabel: "CPU fraction"}.Render(
		textplot.Series{Label: "leaking", Values: values(beforeS)},
		textplot.Series{Label: "fix deployed day 4", Values: values(afterS)},
	))
	maxB, maxA, meanB, meanA := metrics.Fig2Impact(origin)
	fmt.Printf("max CPU:  %.1f%% -> %.1f%%  (cut %.1f%%; paper 26.8%% -> 17.7%%, -34%%)\n",
		100*maxB, 100*maxA, 100*(maxB-maxA)/maxB)
	fmt.Printf("mean CPU: %.1f%% -> %.1f%%  (cut %.1f%%; paper 12.29%% -> 10.36%%, -16.5%%)\n",
		100*meanB, 100*meanA, 100*(meanB-meanA)/meanB)
}

func fig5(scale int, seed int64) {
	header("Fig 5 — weekly inflow of new goroutine leaks")
	cfg := monorepo.DefaultConfig()
	cfg.Seed = seed
	res, err := monorepo.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var labels []string
	var merged []int
	for _, w := range res.Weeks {
		label := fmt.Sprintf("w%d", w.Week)
		if w.Week == cfg.DeployWeek {
			label = "DEPLOY"
		}
		labels = append(labels, label)
		merged = append(merged, w.Merged)
	}
	fmt.Print(textplot.Bars(labels, merged, 50))
	fmt.Println("week  introduced  merged  blocked  suppressions")
	for _, w := range res.Weeks {
		marker := ""
		if w.Week == cfg.DeployWeek {
			marker = "  <- goleak deployed"
		}
		fmt.Printf("%4d %11d %7d %8d %13d%s\n", w.Week, w.Introduced, w.Merged, w.Blocked, w.SuppressionSize, marker)
	}
	fmt.Printf("prevented estimate: ~%d/year (paper: ~260)\n", res.PreventedEstimate)
}

func fig6(scale int, seed int64) {
	header("Fig 6 — blocked-goroutine footprint of a leaky service")
	series := fleet.RunFig6(6)
	var rep, tot []float64
	for _, p := range series {
		rep = append(rep, float64(p.Representative))
		tot = append(tot, float64(p.FleetTotal))
	}
	fmt.Print(textplot.Chart{Rows: 8, Cols: 60, YLabel: "blocked"}.Render(
		textplot.Series{Label: "representative instance", Values: rep}))
	fmt.Print(textplot.Chart{Rows: 8, Cols: 60, YLabel: "blocked"}.Render(
		textplot.Series{Label: "entire fleet", Values: tot}))
	fmt.Println("day  representative-instance  fleet-total  detected")
	for _, p := range series {
		fmt.Printf("%3d %24d %12d %9v\n", p.Day, p.Representative, p.FleetTotal, p.Detected)
	}
	fmt.Println("paper: representative spikes to ~16K; fleet ~3M over 800 instances")
}

func year(scale int, seed int64) {
	header("§VII — one-year LEAKPROF deployment")
	y := fleet.RunYear(seed)
	fmt.Printf("reports %d (paper 33), acknowledged %d (24), fixed %d (21), rejected %d (9), precision %.1f%% (72.7%%)\n",
		y.Reports, y.Acknowledged, y.Fixed, y.Rejected, 100*y.Precision())
	names := make([]string, 0, len(y.ByPattern))
	for n := range y.ByPattern {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, y.ByPattern[n]))
	}
	fmt.Println("pattern mix:", strings.Join(parts, " "))
}

func categories(scale int, seed int64) {
	header("§VI-A/B/C — GOLEAK leak-category taxonomy")
	d := patterns.GoleakTaxonomy()
	r := rand.New(rand.NewSource(seed))
	counts := map[patterns.Category]int{}
	byPattern := map[string]int{}
	const n = 857 // the paper's pre-existing leak count
	for i := 0; i < n; i++ {
		p := d.Sample(r)
		counts[p.Category]++
		byPattern[p.Name]++
	}
	for _, c := range []patterns.Category{patterns.CatSend, patterns.CatReceive, patterns.CatSelect} {
		fmt.Printf("%-8s %4d (%.0f%%)\n", c, counts[c], 100*float64(counts[c])/n)
	}
	fmt.Println("paper: send 15%, receive 40%, select 45%")
	names := make([]string, 0, len(byPattern))
	for name := range byPattern {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-22s %4d\n", name, byPattern[name])
	}
}
