// Command rangelint is the paper's Section-VIII future-work linter, built:
// it reports local, lexically scoped channels used with the range
// construct that may never be closed (the Listing-3 defect class), plus
// the companion double-send check.
//
// Usage:
//
//	rangelint [-checks rangelint,doublesend] path/to/src [more paths...]
//
// Exit status 1 when findings exist.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/astcheck"
)

func main() {
	checks := flag.String("checks", "rangelint,doublesend,timerloop", "comma-separated checks to run")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rangelint [-checks ...] <path> [path...]")
		os.Exit(2)
	}
	enabled := map[string]bool{}
	for _, c := range strings.Split(*checks, ",") {
		enabled[strings.TrimSpace(c)] = true
	}

	exit := 0
	for _, root := range flag.Args() {
		files, err := astcheck.ParseDir(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangelint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range files {
			var findings []astcheck.Finding
			if enabled["rangelint"] {
				findings = append(findings, astcheck.RangeLint(f)...)
			}
			if enabled["doublesend"] {
				findings = append(findings, astcheck.DoubleSendLint(f)...)
			}
			if enabled["timerloop"] {
				findings = append(findings, astcheck.TimerLoopLint(f)...)
			}
			if enabled["transient-select"] {
				findings = append(findings, astcheck.TransientSelects(f)...)
			}
			for _, finding := range findings {
				fmt.Println(finding)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
