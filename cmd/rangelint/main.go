// Command rangelint is the paper's Section-VIII future-work linter, built:
// it reports local, lexically scoped channels used with the range
// construct that may never be closed (the Listing-3 defect class), plus
// the companion double-send and timer-loop checks.
//
// Usage:
//
//	rangelint [-checks rangelint,doublesend,timerloop] [-json] path/to/src [more paths...]
//
// The default -checks set is exactly the defect-claiming lints. The
// transient-select analysis is deliberately NOT in it: it is an
// annotation, not a defect — it marks select sites whose blocking arms
// are all provably transient (time.After, ctx.Done), i.e. sites where a
// blocked goroutine in a profile is expected and harmless. Its consumers
// are machines (the staticindex cross-linker treats it as exculpatory
// evidence when joining production sightings), not humans reading lint
// output, so it is opt-in: add transient-select to -checks to see the
// annotations. Whatever -checks says, transient-select findings never
// affect the exit status.
//
// -json emits the findings as a JSON array ({check, file, line, column,
// message}) for toolchain consumers; the exit-status contract is
// unchanged.
//
// Exit status 1 when defect findings exist, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/astcheck"
)

// jsonFinding is the -json output shape, one object per finding.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func main() {
	checks := flag.String("checks", "rangelint,doublesend,timerloop", "comma-separated checks to run (add transient-select for the opt-in annotation pass)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rangelint [-checks ...] [-json] <path> [path...]")
		os.Exit(2)
	}
	enabled := map[string]bool{}
	for _, c := range strings.Split(*checks, ",") {
		enabled[strings.TrimSpace(c)] = true
	}

	exit := 0
	var all []astcheck.Finding
	for _, root := range flag.Args() {
		files, err := astcheck.ParseDir(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangelint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range files {
			var findings []astcheck.Finding
			if enabled["rangelint"] {
				findings = append(findings, astcheck.RangeLint(f)...)
			}
			if enabled["doublesend"] {
				findings = append(findings, astcheck.DoubleSendLint(f)...)
			}
			if enabled["timerloop"] {
				findings = append(findings, astcheck.TimerLoopLint(f)...)
			}
			if enabled["transient-select"] {
				findings = append(findings, astcheck.TransientSelects(f)...)
			}
			for _, finding := range findings {
				all = append(all, finding)
				// Annotations inform tools; only defect claims gate CI.
				if finding.Check != "transient-select" {
					exit = 1
				}
			}
		}
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(all))
		for _, f := range all {
			out = append(out, jsonFinding{
				Check: f.Check, File: f.Pos.Filename, Line: f.Pos.Line,
				Column: f.Pos.Column, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "rangelint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, finding := range all {
			fmt.Println(finding)
		}
	}
	os.Exit(exit)
}
