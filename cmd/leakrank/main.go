// Command leakrank is the static↔dynamic join surface: it runs the full
// static detector suite over a source tree (or loads a saved findings
// index), links the alarms against a leakprof state journal's bug
// database and trend verdicts, and emits evidence-ranked findings,
// machine-generated goleak suppressions, and CI baselines.
//
// Usage:
//
//	leakrank -root path/to/src [-index findings.idx]      # scan (and save)
//	leakrank -index findings.idx                          # load a saved scan
//	leakrank -root . -state /var/leakprof/state -top 20   # rank by evidence
//	leakrank -root . -state ... -suppress goleak.supp     # emit suppressions
//	leakrank -root . -write-baseline lint/selfscan-baseline
//	leakrank -root . -baseline lint/selfscan-baseline     # CI self-scan gate
//
// Exit status: 0 clean, 1 when -baseline is given and the scan has
// findings the baseline does not cover, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/staticindex"
	"repro/leakprof"
)

func main() {
	root := flag.String("root", "", "source tree to scan with the full detector suite")
	indexPath := flag.String("index", "", "findings index file: written after a -root scan, loaded when no -root is given")
	statePath := flag.String("state", "", "leakprof state journal directory to join production evidence from")
	suppress := flag.String("suppress", "", "write machine-generated goleak suppressions here (requires -state)")
	baseline := flag.String("baseline", "", "diff the scan against this baseline; new findings print and exit 1")
	writeBaseline := flag.String("write-baseline", "", "write the scan's line-free baseline here and exit")
	top := flag.Int("top", 10, "ranked findings to print with -state")
	flag.Parse()

	var idx *staticindex.Index
	var err error
	switch {
	case *root != "":
		if idx, err = staticindex.ScanTree(*root); err != nil {
			fatal(err)
		}
		if *indexPath != "" {
			if err := idx.Save(*indexPath); err != nil {
				fatal(err)
			}
		}
	case *indexPath != "":
		if idx, err = staticindex.Load(*indexPath); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: leakrank (-root <tree> | -index <file>) [-state <dir>] [-suppress <file>] [-baseline <file>] [-write-baseline <file>]")
		os.Exit(2)
	}

	byDetector := map[string]int{}
	for _, f := range idx.Findings {
		byDetector[f.Detector]++
	}
	fmt.Printf("scanned %s: %d findings", idx.Root, len(idx.Findings))
	for _, det := range []string{
		staticindex.DetectorGCatch, staticindex.DetectorGoat, staticindex.DetectorGomela,
		staticindex.DetectorRangeLint, staticindex.DetectorDblSend, staticindex.DetectorTimerLoop,
		staticindex.DetectorTransient,
	} {
		if n := byDetector[det]; n > 0 {
			fmt.Printf(" %s=%d", det, n)
		}
	}
	fmt.Println()

	if *writeBaseline != "" {
		if err := staticindex.SaveBaseline(*writeBaseline, idx); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline written to %s\n", *writeBaseline)
		return
	}

	exit := 0
	if *baseline != "" {
		bl, err := staticindex.LoadBaselineFile(*baseline)
		if err != nil {
			fatal(err)
		}
		fresh := bl.NewFindings(idx)
		if len(fresh) > 0 {
			fmt.Fprintf(os.Stderr, "%d findings not covered by %s:\n", len(fresh), *baseline)
			for _, f := range fresh {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			exit = 1
		} else {
			fmt.Printf("clean against baseline %s (%d entries)\n", *baseline, bl.Len())
		}
	}

	if *statePath != "" {
		store, err := leakprof.OpenStateStore(*statePath)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		rep := staticindex.Link(idx, store.BugDB(), store.Tracker().Verdict)
		fmt.Printf("linked against %s: %d confirmed, %d never sighted, %d dynamic-only\n",
			*statePath, len(rep.Confirmed), len(rep.Unsighted), len(rep.DynamicOnly))
		act := rep.Actionable()
		for i, rf := range act {
			if i >= *top {
				fmt.Printf("  ... and %d more\n", len(act)-i)
				break
			}
			fmt.Printf("  %2d. %s\n", i+1, rf.Render())
		}
		if *suppress != "" {
			if err := rep.WriteSuppressions(*suppress); err != nil {
				fatal(err)
			}
			fmt.Printf("suppressions written to %s (%d entries)\n", *suppress, rep.Suppressions().Len())
		}
	} else if *suppress != "" {
		fatal(fmt.Errorf("-suppress requires -state: without production evidence every alarm would be suppressed"))
	}

	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakrank:", err)
	os.Exit(2)
}
