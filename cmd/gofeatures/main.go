// Command gofeatures scans a Go source tree and prints the paper's
// Table I (package paradigm split) and Table II (concurrency feature
// counts) for it.
//
// Usage:
//
//	gofeatures [-wrappers name1,name2] path/to/src
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/features"
)

func main() {
	wrappers := flag.String("wrappers", "asyncRun", "comma-separated goroutine-wrapper function names")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gofeatures [-wrappers ...] <path>")
		os.Exit(2)
	}
	root := flag.Arg(0)
	var files []features.SourceFile
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		files = append(files, features.SourceFile{
			Path:    filepath.ToSlash(rel),
			Content: string(src),
			Test:    strings.HasSuffix(path, "_test.go"),
		})
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gofeatures: %v\n", err)
		os.Exit(1)
	}
	sc := &features.Scanner{Wrappers: strings.Split(*wrappers, ",")}
	t2, t1, err := sc.Scan(files)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gofeatures: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(features.FormatTableI(t1))
	fmt.Println()
	fmt.Print(features.FormatTableII(t2))
}
