// Command fleetsim stands up a simulated microservice fleet with injected
// goroutine leaks and serves a real goroutine-profile endpoint per
// instance, for driving cmd/leakprof end to end:
//
//	fleetsim -services 3 -instances 4 -days 3
//
// prints one service=url pair per instance (paste into leakprof
// -endpoints) and blocks until interrupted. With -sweep it instead runs
// one in-process collection sweep over its own endpoints — HTTP fetch,
// streaming scan, sharded aggregation, all through the unified leakprof
// Pipeline — prints the findings, and exits. With -sweep -direct the
// same pipeline pulls from the fleet simulator source directly (no
// HTTP), demonstrating that both origins drive the identical engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/patterns"
	"repro/leakprof"
)

func main() {
	services := flag.Int("services", 3, "number of services")
	instances := flag.Int("instances", 4, "instances per service")
	days := flag.Int("days", 3, "leak growth days to simulate before serving")
	leakRate := flag.Int("rate", 6000, "blocked goroutines per affected instance per day")
	sweep := flag.Bool("sweep", false, "run one in-process leakprof sweep over the fleet, print findings, and exit")
	direct := flag.Bool("direct", false, "with -sweep: pull from the simulator directly instead of over HTTP")
	stateDir := flag.String("state-dir", "", "with -sweep: journal bug DB, trend history, and budget seeds under this directory so repeated sweeps dedup and resume")
	stateSegments := flag.Int("state-segments", 0, "with -state-dir: compact the segmented state journal once more than N segments are live (0 = default)")
	trendKeep := flag.Int("trend-keep", 0, "with -state-dir: retain only the last N trend observations per finding key (0 = unlimited)")
	bugKeep := flag.Duration("bug-keep", 0, "with -state-dir: age closed (fixed/rejected) bugs out once unseen for this long (0 = keep forever)")
	fsync := flag.String("fsync", "sweep", "with -state-dir: journal fsync policy — sweep, close, or N[/duration] group commit")
	detached := flag.Bool("detached-sinks", false, "with -sweep: detach sink draining from the sweep (sinks drain at exit)")
	flag.Parse()

	pats := []*patterns.Pattern{
		patterns.TimeoutLeak, patterns.UnclosedRange, patterns.ContractDone,
		patterns.NCast, patterns.PrematureReturn,
	}
	var configs []fleet.ServiceConfig
	for s := 0; s < *services; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        *instances,
			BenignGoroutines: 30,
			Seed:             int64(s + 1),
		}
		if s%2 == 0 { // every other service carries a defect
			p := pats[s/2%len(pats)]
			cfg.Pattern = p
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/handler.go", s)
			cfg.LeakLine = 42
			cfg.LeakPerDay = *leakRate
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
			cfg.DeployEveryDays = 1000
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Now(), configs)
	for d := 0; d < *days; d++ {
		f.AdvanceDay()
	}

	syncPolicy, err := leakprof.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	var extra []leakprof.Option
	if *detached {
		extra = append(extra, leakprof.WithDetachedSinks())
	}
	if *stateDir != "" {
		extra = append(extra,
			leakprof.WithStateDir(*stateDir),
			leakprof.WithStateCompaction(0, *stateSegments),
			leakprof.WithTrendRetention(*trendKeep),
			leakprof.WithBugRetention(*bugKeep),
			leakprof.WithStateSync(syncPolicy),
		)
	}

	if *sweep && *direct {
		runSweep(f.Source(), *leakRate/2, *stateDir, extra)
		return
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()

	if *sweep {
		runSweep(leakprof.StaticEndpoints(endpoints...), *leakRate/2, *stateDir, extra)
		return
	}

	var pairs []string
	for _, ep := range endpoints {
		pairs = append(pairs, ep.Service+"="+ep.URL)
	}
	fmt.Println("fleet is live; run:")
	fmt.Printf("  leakprof -threshold %d -endpoints %s\n", *leakRate/2, strings.Join(pairs, ","))
	fmt.Println("press Ctrl-C to stop")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
}

// runSweep drives the unified pipeline over the given profile origin:
// snapshots stream through the scanner into the sharded aggregator, and
// a metrics sink tallies the pass. With a state dir, the sweep journals
// through a StateStore: findings file into the durable bug DB (a repeat
// run deduplicates instead of re-alerting) and the sweep outcome seeds
// the next run's error budget. The extra options carry the durability
// and detachment knobs; Close is the exit barrier that drains detached
// sinks and lands deferred fsync windows.
func runSweep(src leakprof.Source, threshold int, stateDir string, extra []leakprof.Option) {
	metrics := &leakprof.MetricsSink{}
	opts := append([]leakprof.Option{
		leakprof.WithThreshold(threshold),
		leakprof.WithParallelism(8),
		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
		leakprof.WithSharedIntern(0),
	}, extra...)
	pipe := leakprof.New(opts...).AddSinks(metrics)
	var reportSink *leakprof.ReportSink
	store, err := pipe.State()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	if store != nil {
		reportSink = &leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB(), TopN: 10}}
		pipe.AddSinks(reportSink, &leakprof.TrendSink{Tracker: store.Tracker()})
	}
	sweep, err := pipe.Sweep(context.Background(), src)
	// Close is where detached sinks drain and deferred fsync windows
	// land; its failure must surface even when the sweep also failed.
	if cerr := pipe.Close(); err == nil {
		err = cerr
	} else if cerr != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", cerr)
	}
	for _, f := range sweep.Failures {
		fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	totals := metrics.Totals()
	fmt.Printf("swept %d instances via %s (%d goroutines scanned), %d suspicious locations (threshold %d)\n",
		sweep.Profiles, sweep.Source, totals.Goroutines, len(sweep.Findings), threshold)
	for _, f := range sweep.Findings {
		fmt.Printf("  %-8s %-7s %-32s blocked=%-8d instances=%d/%d max=%d@%s impact=%.1f\n",
			f.Service, f.Op, f.Location, f.TotalBlocked,
			f.SuspiciousInstances, f.Instances, f.MaxCount, f.MaxInstance, f.Impact)
	}
	if reportSink != nil {
		fmt.Printf("state: %d new alerts this sweep; previously filed findings deduplicate against %s\n",
			len(reportSink.LastAlerts()), stateDir)
	}
}
