// Command fleetsim stands up a simulated microservice fleet with injected
// goroutine leaks and serves a real goroutine-profile endpoint per
// instance, for driving cmd/leakprof end to end:
//
//	fleetsim -services 3 -instances 4 -days 3
//
// prints one service=url pair per instance (paste into leakprof
// -endpoints) and blocks until interrupted. With -sweep it instead runs
// one in-process collection sweep over its own endpoints — HTTP fetch,
// streaming scan, sharded aggregation, all through the unified leakprof
// Pipeline — prints the findings, and exits. With -sweep -direct the
// same pipeline pulls from the fleet simulator source directly (no
// HTTP), demonstrating that both origins drive the identical engine.
//
// With -post http://host:6061 fleetsim becomes a load generator for a
// push-ingestion endpoint (cmd/leakprof -ingest): it renders the
// fleet's current-day debug=2 dump bodies once, then -posters
// concurrent posters each POST -posts of them (round-robin, optionally
// -gzip compressed) and the run prints accepted/rejected counts,
// posts/sec, and admission-latency percentiles. A 429 is not dropped
// on the floor: posters honour the endpoint's Retry-After with capped,
// jittered backoff for up to -post-retries attempts before shedding
// the dump, and the run reports retried-vs-shed counts. -post-token
// sends the X-Leakprof-Token the endpoint's -ingest-token expects.
//
// With -matrix fleetsim runs the chaos scenario matrix instead: every
// named fleet-config × fault-set × pipeline-mode scenario from
// internal/chaos (or just those named by -scenario), rendering the
// pass/fail table with per-scenario precision, recall, latency, and
// fault evidence, and exiting non-zero if any scenario misses its
// floors. This is the CI robustness gate.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/leakprof"
)

func main() {
	services := flag.Int("services", 3, "number of services")
	instances := flag.Int("instances", 4, "instances per service")
	days := flag.Int("days", 3, "leak growth days to simulate before serving")
	leakRate := flag.Int("rate", 6000, "blocked goroutines per affected instance per day")
	sweep := flag.Bool("sweep", false, "run one in-process leakprof sweep over the fleet, print findings, and exit")
	direct := flag.Bool("direct", false, "with -sweep: pull from the simulator directly instead of over HTTP")
	stateDir := flag.String("state-dir", "", "with -sweep: journal bug DB, trend history, and budget seeds under this directory so repeated sweeps dedup and resume")
	stateSegments := flag.Int("state-segments", 0, "with -state-dir: compact the segmented state journal once more than N segments are live (0 = default)")
	trendKeep := flag.Int("trend-keep", 0, "with -state-dir: retain only the last N trend observations per finding key (0 = unlimited)")
	bugKeep := flag.Duration("bug-keep", 0, "with -state-dir: age closed (fixed/rejected) bugs out once unseen for this long (0 = keep forever)")
	fsync := flag.String("fsync", "sweep", "with -state-dir: journal fsync policy — sweep, close, or N[/duration] group commit")
	detached := flag.Bool("detached-sinks", false, "with -sweep: detach sink draining from the sweep (sinks drain at exit)")
	post := flag.String("post", "", "load-generator mode: POST the fleet's dump bodies to this ingest endpoint URL (cmd/leakprof -ingest) instead of serving or sweeping")
	posters := flag.Int("posters", 256, "with -post: concurrent posting goroutines")
	posts := flag.Int("posts", 10, "with -post: POSTs per poster")
	gz := flag.Bool("gzip", false, "with -post: gzip-compress each dump body (Content-Encoding: gzip)")
	postRetries := flag.Int("post-retries", 3, "with -post: attempts per dump when the endpoint answers 429 (Retry-After honoured with capped jittered backoff)")
	postToken := flag.String("post-token", "", "with -post: X-Leakprof-Token to send (the endpoint's -ingest-token)")
	matrix := flag.Bool("matrix", false, "run the chaos scenario matrix, print the pass/fail table, and exit non-zero on any miss")
	scenario := flag.String("scenario", "", "with -matrix: comma-separated scenario names to run (default: all)")
	flag.Parse()

	if *matrix {
		runMatrix(*scenario)
		return
	}

	// Rotate planted defects through the full simulatable pattern
	// catalogue, so a bigger -services covers more leak shapes.
	pats := patterns.Simulatable()
	var configs []fleet.ServiceConfig
	for s := 0; s < *services; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        *instances,
			BenignGoroutines: 30,
			Seed:             int64(s + 1),
		}
		if s%2 == 0 { // every other service carries a defect
			p := pats[s/2%len(pats)]
			cfg.Pattern = p
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/handler.go", s)
			cfg.LeakLine = 42
			cfg.LeakPerDay = *leakRate
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
			cfg.DeployEveryDays = 1000
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Now(), configs)
	for d := 0; d < *days; d++ {
		f.AdvanceDay()
	}

	syncPolicy, err := leakprof.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	var extra []leakprof.Option
	if *detached {
		extra = append(extra, leakprof.WithDetachedSinks())
	}
	if *stateDir != "" {
		extra = append(extra,
			leakprof.WithStateDir(*stateDir),
			leakprof.WithStateCompaction(0, *stateSegments),
			leakprof.WithTrendRetention(*trendKeep),
			leakprof.WithBugRetention(*bugKeep),
			leakprof.WithStateSync(syncPolicy),
		)
	}

	if *post != "" {
		if err := runLoadGen(f, *post, *posters, *posts, *gz, *postRetries, *postToken); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		return
	}

	if *sweep && *direct {
		runSweep(f.Source(), *leakRate/2, *stateDir, extra)
		return
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()

	if *sweep {
		runSweep(leakprof.StaticEndpoints(endpoints...), *leakRate/2, *stateDir, extra)
		return
	}

	var pairs []string
	for _, ep := range endpoints {
		pairs = append(pairs, ep.Service+"="+ep.URL)
	}
	fmt.Println("fleet is live; run:")
	fmt.Printf("  leakprof -threshold %d -endpoints %s\n", *leakRate/2, strings.Join(pairs, ","))
	fmt.Println("press Ctrl-C to stop")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
}

// runMatrix executes the chaos scenario catalogue (or the named subset)
// and renders the pass/fail table. Any scenario missing its floors, its
// latency SLO, or its expected fault evidence fails the run.
func runMatrix(names string) {
	var want []string
	if names != "" {
		want = strings.Split(names, ",")
	}
	scs, err := chaos.Lookup(want)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	results := chaos.RunAll(context.Background(), scs)
	fmt.Print(chaos.RenderTable(results))
	failed := 0
	for _, r := range results {
		if !r.Pass {
			failed++
		}
	}
	fmt.Printf("%d/%d scenarios passed\n", len(results)-failed, len(results))
	if failed > 0 {
		os.Exit(1)
	}
}

// runSweep drives the unified pipeline over the given profile origin:
// snapshots stream through the scanner into the sharded aggregator, and
// a metrics sink tallies the pass. With a state dir, the sweep journals
// through a StateStore: findings file into the durable bug DB (a repeat
// run deduplicates instead of re-alerting) and the sweep outcome seeds
// the next run's error budget. The extra options carry the durability
// and detachment knobs; Close is the exit barrier that drains detached
// sinks and lands deferred fsync windows.
func runSweep(src leakprof.Source, threshold int, stateDir string, extra []leakprof.Option) {
	metrics := &leakprof.MetricsSink{}
	opts := append([]leakprof.Option{
		leakprof.WithThreshold(threshold),
		leakprof.WithParallelism(8),
		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
		leakprof.WithSharedIntern(0),
	}, extra...)
	pipe := leakprof.New(opts...).AddSinks(metrics)
	var reportSink *leakprof.ReportSink
	store, err := pipe.State()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	if store != nil {
		reportSink = &leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB(), TopN: 10}}
		pipe.AddSinks(reportSink, &leakprof.TrendSink{Tracker: store.Tracker()})
	}
	sweep, err := pipe.Sweep(context.Background(), src)
	// Close is where detached sinks drain and deferred fsync windows
	// land; its failure must surface even when the sweep also failed.
	if cerr := pipe.Close(); err == nil {
		err = cerr
	} else if cerr != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", cerr)
	}
	for _, f := range sweep.Failures {
		fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	totals := metrics.Totals()
	fmt.Printf("swept %d instances via %s (%d goroutines scanned), %d suspicious locations (threshold %d)\n",
		sweep.Profiles, sweep.Source, totals.Goroutines, len(sweep.Findings), threshold)
	for _, f := range sweep.Findings {
		fmt.Printf("  %-8s %-7s %-32s blocked=%-8d instances=%d/%d max=%d@%s impact=%.1f\n",
			f.Service, f.Op, f.Location, f.TotalBlocked,
			f.SuspiciousInstances, f.Instances, f.MaxCount, f.MaxInstance, f.Impact)
	}
	if reportSink != nil {
		fmt.Printf("state: %d new alerts this sweep; previously filed findings deduplicate against %s\n",
			len(reportSink.LastAlerts()), stateDir)
	}
}

// captureSource wraps a Source and records every emitted snapshot, so
// the load generator can render the fleet's dump bodies once instead of
// re-simulating them per POST. Emission still reaches the pipeline so
// the capture sweep completes normally.
type captureSource struct {
	inner leakprof.Source
	mu    sync.Mutex
	snaps []*gprofile.Snapshot
}

func (c *captureSource) Name() string { return c.inner.Name() }

func (c *captureSource) Sweep(ctx context.Context, env *leakprof.SweepEnv) error {
	orig := env.Emit
	env.Emit = func(s *gprofile.Snapshot) {
		c.mu.Lock()
		c.snaps = append(c.snaps, s)
		c.mu.Unlock()
		orig(s)
	}
	return c.inner.Sweep(ctx, env)
}

// dumpBody is one pre-rendered POST payload: the debug=2 text (possibly
// gzipped) plus the origin headers the ingest endpoint reads.
type dumpBody struct {
	service, instance string
	body              []byte
}

// runLoadGen renders the fleet's current-day dump bodies and hammers
// the ingest endpoint with them: posters×posts concurrent POSTs,
// round-robin over the bodies. Overload is deliberate — 429s measure
// the endpoint's shedding, not a failure of the run. Each 429 is
// retried up to retries attempts, honouring the endpoint's Retry-After
// (capped, with jitter so the herd does not re-arrive in lockstep);
// a dump still rejected after its last attempt is shed.
func runLoadGen(f *fleet.Fleet, url string, posters, posts int, gz bool, retries int, token string) error {
	if posters < 1 {
		posters = 1
	}
	if posts < 1 {
		posts = 1
	}
	if retries < 1 {
		retries = 1
	}

	// Render every instance's dump once, up front, so the posting loop
	// measures the endpoint and not the simulator.
	capture := &captureSource{inner: f.Source()}
	pipe := leakprof.New(leakprof.WithThreshold(1 << 30))
	if _, err := pipe.Sweep(context.Background(), capture); err != nil {
		return fmt.Errorf("rendering fleet dumps: %w", err)
	}
	bodies := make([]dumpBody, 0, len(capture.snaps))
	for _, s := range capture.snaps {
		var buf bytes.Buffer
		var w io.Writer = &buf
		var zw *gzip.Writer
		if gz {
			zw = gzip.NewWriter(&buf)
			w = zw
		}
		if err := gprofile.WriteSnapshot(w, s); err != nil {
			return fmt.Errorf("rendering %s/%s: %w", s.Service, s.Instance, err)
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				return err
			}
		}
		bodies = append(bodies, dumpBody{service: s.Service, instance: s.Instance, body: buf.Bytes()})
	}
	if len(bodies) == 0 {
		return fmt.Errorf("fleet rendered no dump bodies")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var accepted, retried, shed, quotaShed, other, errs atomic.Int64
	latencies := make([][]time.Duration, posters)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			lat := make([]time.Duration, 0, posts)
			for i := 0; i < posts; i++ {
				d := bodies[(p*posts+i)%len(bodies)]
			attempts:
				for attempt := 1; ; attempt++ {
					req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(d.body))
					if err != nil {
						errs.Add(1)
						break
					}
					req.Header.Set("X-Leakprof-Service", d.service)
					req.Header.Set("X-Leakprof-Instance", fmt.Sprintf("%s-p%d", d.instance, p))
					if gz {
						req.Header.Set("Content-Encoding", "gzip")
					}
					if token != "" {
						req.Header.Set("X-Leakprof-Token", token)
					}
					t0 := time.Now()
					resp, err := client.Do(req)
					if err != nil {
						errs.Add(1)
						break
					}
					// The 429 body names the reason: a full queue (global
					// backpressure) or a per-service quota. Only the first
					// few bytes matter for the classification.
					head := make([]byte, 128)
					n, _ := io.ReadFull(resp.Body, head)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					lat = append(lat, time.Since(t0))
					switch resp.StatusCode {
					case http.StatusAccepted:
						accepted.Add(1)
						break attempts
					case http.StatusTooManyRequests:
						if attempt >= retries {
							// Out of attempts: the dump is shed.
							if bytes.Contains(head[:n], []byte("quota")) {
								quotaShed.Add(1)
							} else {
								shed.Add(1)
							}
							break attempts
						}
						retried.Add(1)
						time.Sleep(backoffDelay(resp.Header.Get("Retry-After"), rng))
					default:
						other.Add(1)
						break attempts
					}
				}
			}
			latencies[p] = lat
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}

	total := int64(posters) * int64(posts)
	fmt.Printf("posted %d dumps (%d bodies, %d posters × %d posts, gzip=%v, retries=%d) in %v\n",
		total, len(bodies), posters, posts, gz, retries, wall.Round(time.Millisecond))
	fmt.Printf("  accepted=%d retried-429=%d shed=%d quota-shed=%d other=%d errors=%d\n",
		accepted.Load(), retried.Load(), shed.Load(), quotaShed.Load(), other.Load(), errs.Load())
	fmt.Printf("  %.0f posts/sec, admission latency p50=%v p99=%v\n",
		float64(total)/wall.Seconds(), pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	if errs.Load() > 0 {
		return fmt.Errorf("%d POSTs failed outright", errs.Load())
	}
	return nil
}

// backoffDelay turns a 429's Retry-After into the actual wait: the
// server's ask, capped at 2s so an aggressive hint cannot park the
// poster, with ±25% jitter so the shed herd does not re-arrive in
// lockstep at the exact same instant.
func backoffDelay(retryAfter string, rng *rand.Rand) time.Duration {
	const capDelay = 2 * time.Second
	d := 100 * time.Millisecond // server gave no hint
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > capDelay {
		d = capDelay
	}
	jitter := 0.75 + 0.5*rng.Float64()
	return time.Duration(float64(d) * jitter)
}
