// Command fleetsim stands up a simulated microservice fleet with injected
// goroutine leaks and serves a real goroutine-profile endpoint per
// instance, for driving cmd/leakprof end to end:
//
//	fleetsim -services 3 -instances 4 -days 3
//
// prints one service=url pair per instance (paste into leakprof
// -endpoints) and blocks until interrupted. With -sweep it instead runs
// one in-process collection sweep over its own endpoints — HTTP fetch,
// streaming scan, sharded aggregation, all through the unified leakprof
// Pipeline — prints the findings, and exits. With -sweep -direct the
// same pipeline pulls from the fleet simulator source directly (no
// HTTP), demonstrating that both origins drive the identical engine.
//
// With -post http://host:6061 fleetsim becomes a load generator for a
// push-ingestion endpoint (cmd/leakprof -ingest): it renders the
// fleet's current-day debug=2 dump bodies once, then -posters
// concurrent posters each POST -posts of them (round-robin, optionally
// -gzip compressed) and the run prints accepted/rejected counts,
// posts/sec, and admission-latency percentiles. Rejections (429) are
// expected under deliberate overload — the point of the mode is to
// watch the endpoint shed load without stalling admitted dumps.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/leakprof"
)

func main() {
	services := flag.Int("services", 3, "number of services")
	instances := flag.Int("instances", 4, "instances per service")
	days := flag.Int("days", 3, "leak growth days to simulate before serving")
	leakRate := flag.Int("rate", 6000, "blocked goroutines per affected instance per day")
	sweep := flag.Bool("sweep", false, "run one in-process leakprof sweep over the fleet, print findings, and exit")
	direct := flag.Bool("direct", false, "with -sweep: pull from the simulator directly instead of over HTTP")
	stateDir := flag.String("state-dir", "", "with -sweep: journal bug DB, trend history, and budget seeds under this directory so repeated sweeps dedup and resume")
	stateSegments := flag.Int("state-segments", 0, "with -state-dir: compact the segmented state journal once more than N segments are live (0 = default)")
	trendKeep := flag.Int("trend-keep", 0, "with -state-dir: retain only the last N trend observations per finding key (0 = unlimited)")
	bugKeep := flag.Duration("bug-keep", 0, "with -state-dir: age closed (fixed/rejected) bugs out once unseen for this long (0 = keep forever)")
	fsync := flag.String("fsync", "sweep", "with -state-dir: journal fsync policy — sweep, close, or N[/duration] group commit")
	detached := flag.Bool("detached-sinks", false, "with -sweep: detach sink draining from the sweep (sinks drain at exit)")
	post := flag.String("post", "", "load-generator mode: POST the fleet's dump bodies to this ingest endpoint URL (cmd/leakprof -ingest) instead of serving or sweeping")
	posters := flag.Int("posters", 256, "with -post: concurrent posting goroutines")
	posts := flag.Int("posts", 10, "with -post: POSTs per poster")
	gz := flag.Bool("gzip", false, "with -post: gzip-compress each dump body (Content-Encoding: gzip)")
	flag.Parse()

	pats := []*patterns.Pattern{
		patterns.TimeoutLeak, patterns.UnclosedRange, patterns.ContractDone,
		patterns.NCast, patterns.PrematureReturn,
	}
	var configs []fleet.ServiceConfig
	for s := 0; s < *services; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        *instances,
			BenignGoroutines: 30,
			Seed:             int64(s + 1),
		}
		if s%2 == 0 { // every other service carries a defect
			p := pats[s/2%len(pats)]
			cfg.Pattern = p
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/handler.go", s)
			cfg.LeakLine = 42
			cfg.LeakPerDay = *leakRate
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
			cfg.DeployEveryDays = 1000
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Now(), configs)
	for d := 0; d < *days; d++ {
		f.AdvanceDay()
	}

	syncPolicy, err := leakprof.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	var extra []leakprof.Option
	if *detached {
		extra = append(extra, leakprof.WithDetachedSinks())
	}
	if *stateDir != "" {
		extra = append(extra,
			leakprof.WithStateDir(*stateDir),
			leakprof.WithStateCompaction(0, *stateSegments),
			leakprof.WithTrendRetention(*trendKeep),
			leakprof.WithBugRetention(*bugKeep),
			leakprof.WithStateSync(syncPolicy),
		)
	}

	if *post != "" {
		if err := runLoadGen(f, *post, *posters, *posts, *gz); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		return
	}

	if *sweep && *direct {
		runSweep(f.Source(), *leakRate/2, *stateDir, extra)
		return
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()

	if *sweep {
		runSweep(leakprof.StaticEndpoints(endpoints...), *leakRate/2, *stateDir, extra)
		return
	}

	var pairs []string
	for _, ep := range endpoints {
		pairs = append(pairs, ep.Service+"="+ep.URL)
	}
	fmt.Println("fleet is live; run:")
	fmt.Printf("  leakprof -threshold %d -endpoints %s\n", *leakRate/2, strings.Join(pairs, ","))
	fmt.Println("press Ctrl-C to stop")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
}

// runSweep drives the unified pipeline over the given profile origin:
// snapshots stream through the scanner into the sharded aggregator, and
// a metrics sink tallies the pass. With a state dir, the sweep journals
// through a StateStore: findings file into the durable bug DB (a repeat
// run deduplicates instead of re-alerting) and the sweep outcome seeds
// the next run's error budget. The extra options carry the durability
// and detachment knobs; Close is the exit barrier that drains detached
// sinks and lands deferred fsync windows.
func runSweep(src leakprof.Source, threshold int, stateDir string, extra []leakprof.Option) {
	metrics := &leakprof.MetricsSink{}
	opts := append([]leakprof.Option{
		leakprof.WithThreshold(threshold),
		leakprof.WithParallelism(8),
		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
		leakprof.WithSharedIntern(0),
	}, extra...)
	pipe := leakprof.New(opts...).AddSinks(metrics)
	var reportSink *leakprof.ReportSink
	store, err := pipe.State()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	if store != nil {
		reportSink = &leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB(), TopN: 10}}
		pipe.AddSinks(reportSink, &leakprof.TrendSink{Tracker: store.Tracker()})
	}
	sweep, err := pipe.Sweep(context.Background(), src)
	// Close is where detached sinks drain and deferred fsync windows
	// land; its failure must surface even when the sweep also failed.
	if cerr := pipe.Close(); err == nil {
		err = cerr
	} else if cerr != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", cerr)
	}
	for _, f := range sweep.Failures {
		fmt.Fprintf(os.Stderr, "warn: %s/%s: %v\n", f.Service, f.Instance, f.Err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: %v\n", err)
	}
	totals := metrics.Totals()
	fmt.Printf("swept %d instances via %s (%d goroutines scanned), %d suspicious locations (threshold %d)\n",
		sweep.Profiles, sweep.Source, totals.Goroutines, len(sweep.Findings), threshold)
	for _, f := range sweep.Findings {
		fmt.Printf("  %-8s %-7s %-32s blocked=%-8d instances=%d/%d max=%d@%s impact=%.1f\n",
			f.Service, f.Op, f.Location, f.TotalBlocked,
			f.SuspiciousInstances, f.Instances, f.MaxCount, f.MaxInstance, f.Impact)
	}
	if reportSink != nil {
		fmt.Printf("state: %d new alerts this sweep; previously filed findings deduplicate against %s\n",
			len(reportSink.LastAlerts()), stateDir)
	}
}

// captureSource wraps a Source and records every emitted snapshot, so
// the load generator can render the fleet's dump bodies once instead of
// re-simulating them per POST. Emission still reaches the pipeline so
// the capture sweep completes normally.
type captureSource struct {
	inner leakprof.Source
	mu    sync.Mutex
	snaps []*gprofile.Snapshot
}

func (c *captureSource) Name() string { return c.inner.Name() }

func (c *captureSource) Sweep(ctx context.Context, env *leakprof.SweepEnv) error {
	orig := env.Emit
	env.Emit = func(s *gprofile.Snapshot) {
		c.mu.Lock()
		c.snaps = append(c.snaps, s)
		c.mu.Unlock()
		orig(s)
	}
	return c.inner.Sweep(ctx, env)
}

// dumpBody is one pre-rendered POST payload: the debug=2 text (possibly
// gzipped) plus the origin headers the ingest endpoint reads.
type dumpBody struct {
	service, instance string
	body              []byte
}

// runLoadGen renders the fleet's current-day dump bodies and hammers
// the ingest endpoint with them: posters×posts concurrent POSTs,
// round-robin over the bodies. Overload is deliberate — 429s measure
// the endpoint's shedding, not a failure of the run.
func runLoadGen(f *fleet.Fleet, url string, posters, posts int, gz bool) error {
	if posters < 1 {
		posters = 1
	}
	if posts < 1 {
		posts = 1
	}

	// Render every instance's dump once, up front, so the posting loop
	// measures the endpoint and not the simulator.
	capture := &captureSource{inner: f.Source()}
	pipe := leakprof.New(leakprof.WithThreshold(1 << 30))
	if _, err := pipe.Sweep(context.Background(), capture); err != nil {
		return fmt.Errorf("rendering fleet dumps: %w", err)
	}
	bodies := make([]dumpBody, 0, len(capture.snaps))
	for _, s := range capture.snaps {
		var buf bytes.Buffer
		var w io.Writer = &buf
		var zw *gzip.Writer
		if gz {
			zw = gzip.NewWriter(&buf)
			w = zw
		}
		if err := gprofile.WriteSnapshot(w, s); err != nil {
			return fmt.Errorf("rendering %s/%s: %w", s.Service, s.Instance, err)
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				return err
			}
		}
		bodies = append(bodies, dumpBody{service: s.Service, instance: s.Instance, body: buf.Bytes()})
	}
	if len(bodies) == 0 {
		return fmt.Errorf("fleet rendered no dump bodies")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var accepted, rejected, quotaRejected, other, errs atomic.Int64
	latencies := make([][]time.Duration, posters)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, posts)
			for i := 0; i < posts; i++ {
				d := bodies[(p*posts+i)%len(bodies)]
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(d.body))
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("X-Leakprof-Service", d.service)
				req.Header.Set("X-Leakprof-Instance", fmt.Sprintf("%s-p%d", d.instance, p))
				if gz {
					req.Header.Set("Content-Encoding", "gzip")
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				// The 429 body names the reason: a full queue (global
				// backpressure) or a per-service quota. Only the first
				// few bytes matter for the classification.
				head := make([]byte, 128)
				n, _ := io.ReadFull(resp.Body, head)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					if bytes.Contains(head[:n], []byte("quota")) {
						quotaRejected.Add(1)
					} else {
						rejected.Add(1)
					}
				default:
					other.Add(1)
				}
			}
			latencies[p] = lat
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}

	total := int64(posters) * int64(posts)
	fmt.Printf("posted %d dumps (%d bodies, %d posters × %d posts, gzip=%v) in %v\n",
		total, len(bodies), posters, posts, gz, wall.Round(time.Millisecond))
	fmt.Printf("  accepted=%d rejected-429=%d quota-429=%d other=%d errors=%d\n",
		accepted.Load(), rejected.Load(), quotaRejected.Load(), other.Load(), errs.Load())
	fmt.Printf("  %.0f posts/sec, admission latency p50=%v p99=%v\n",
		float64(total)/wall.Seconds(), pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	if errs.Load() > 0 {
		return fmt.Errorf("%d POSTs failed outright", errs.Load())
	}
	return nil
}
