// Command fleetsim stands up a simulated microservice fleet with injected
// goroutine leaks and serves a real goroutine-profile endpoint per
// instance, for driving cmd/leakprof end to end:
//
//	fleetsim -services 3 -instances 4 -days 3
//
// prints one service=url pair per instance (paste into leakprof
// -endpoints) and blocks until interrupted. With -sweep it instead runs
// one in-process collection sweep over its own endpoints — HTTP fetch,
// streaming scan, sharded aggregation — prints the findings, and exits:
// a self-contained end-to-end exercise of the streaming pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/patterns"
	"repro/leakprof"
)

func main() {
	services := flag.Int("services", 3, "number of services")
	instances := flag.Int("instances", 4, "instances per service")
	days := flag.Int("days", 3, "leak growth days to simulate before serving")
	leakRate := flag.Int("rate", 6000, "blocked goroutines per affected instance per day")
	sweep := flag.Bool("sweep", false, "run one in-process leakprof sweep over the fleet, print findings, and exit")
	flag.Parse()

	pats := []*patterns.Pattern{
		patterns.TimeoutLeak, patterns.UnclosedRange, patterns.ContractDone,
		patterns.NCast, patterns.PrematureReturn,
	}
	var configs []fleet.ServiceConfig
	for s := 0; s < *services; s++ {
		cfg := fleet.ServiceConfig{
			Name:             fmt.Sprintf("svc%02d", s),
			Instances:        *instances,
			BenignGoroutines: 30,
			Seed:             int64(s + 1),
		}
		if s%2 == 0 { // every other service carries a defect
			p := pats[s/2%len(pats)]
			cfg.Pattern = p
			cfg.LeakFile = fmt.Sprintf("services/svc%02d/handler.go", s)
			cfg.LeakLine = 42
			cfg.LeakPerDay = *leakRate
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
			cfg.DeployEveryDays = 1000
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(time.Now(), configs)
	for d := 0; d < *days; d++ {
		f.AdvanceDay()
	}
	endpoints, shutdown := f.Serve()
	defer shutdown()

	if *sweep {
		runSweep(endpoints, *leakRate/2)
		return
	}

	var pairs []string
	for _, ep := range endpoints {
		pairs = append(pairs, ep.Service+"="+ep.URL)
	}
	fmt.Println("fleet is live; run:")
	fmt.Printf("  leakprof -threshold %d -endpoints %s\n", *leakRate/2, strings.Join(pairs, ","))
	fmt.Println("press Ctrl-C to stop")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
}

// runSweep drives the streaming pipeline over the fleet's own endpoints:
// bodies stream from HTTP through the scanner into the aggregator.
func runSweep(endpoints []leakprof.Endpoint, threshold int) {
	analyzer := &leakprof.Analyzer{Threshold: threshold}
	agg := analyzer.NewAggregator()
	c := &leakprof.Collector{Parallelism: 8}
	for _, err := range c.CollectInto(context.Background(), endpoints, agg) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "warn: %v\n", err)
		}
	}
	findings := agg.Findings(analyzer.Ranking)
	fmt.Printf("swept %d instances, %d suspicious locations (threshold %d)\n",
		agg.Profiles(), len(findings), threshold)
	for _, f := range findings {
		fmt.Printf("  %-8s %-7s %-32s blocked=%-8d instances=%d/%d max=%d@%s impact=%.1f\n",
			f.Service, f.Op, f.Location, f.TotalBlocked,
			f.SuspiciousInstances, f.Instances, f.MaxCount, f.MaxInstance, f.Impact)
	}
}
