package leakprof

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/gprofile"
)

// SweepEnv is what the engine hands a Source for one sweep.
type SweepEnv struct {
	// Config exposes the pipeline's resolved collection knobs —
	// parallelism, retry policy, error budgets, clock, intern pool —
	// so every profile origin honours them uniformly.
	Config *Config
	// Emit folds one successfully collected instance snapshot into the
	// sweep; safe for concurrent use.
	Emit func(*gprofile.Snapshot)
	// Fail records one instance's collection failure; safe for
	// concurrent use. Every instance a sweep attempts must reach
	// exactly one of Emit or Fail — with one carve-out: a source that
	// salvages partial data from a corrupt record (archive replay of a
	// torn member) reports the member through Fail and still Emits the
	// salvaged snapshot, so such an instance counts in both Profiles
	// and Errors.
	Fail func(service, instance string, err error)
	// SetTime overrides the sweep's timestamp. Sources replaying
	// recorded data (an archive with a manifest) call it — before
	// emitting — so cross-sweep consumers like trend tracking see the
	// original collection time, not the replay time. Nil-safe to skip;
	// live sources never call it.
	SetTime func(at time.Time)
	// MergeReport folds one shard worker's report into the sweep: its
	// moments merge into the aggregator (profiled-instance denominators
	// included) and its error accounting — Errors, FailedByService, the
	// capped failure detail — adds to the sweep's, so a coordinator
	// source assembling a distributed sweep needs no private engine
	// hooks. Safe for concurrent use alongside Emit and Fail.
	MergeReport func(*ShardReport)

	// prevFailures carries the previous sweep's journaled per-service
	// failure counts into this sweep's error budget (set by the engine
	// when a state store is attached).
	prevFailures map[string]int
}

// PrevFailures returns the previous sweep's journaled per-service failure
// counts, nil when the pipeline has no state store (or no history). A
// coordinator hands these to its shard workers so per-shard error budgets
// are seeded from the global journal, not per-shard state.
func (env *SweepEnv) PrevFailures() map[string]int { return env.prevFailures }

// Source is one origin of goroutine-profile snapshots: an HTTP fleet, an
// on-disk archive, a simulated fleet, a synthetic dump. A Source streams
// one collection pass per Sweep call — it must never buffer the whole
// sweep — and may call Emit/Fail from concurrent workers. The returned
// error is for failures of the sweep as a whole (an unlistable archive
// directory); per-instance failures go through Fail.
type Source interface {
	// Name identifies the source kind in sweep results and logs.
	Name() string
	// Sweep performs one collection pass.
	Sweep(ctx context.Context, env *SweepEnv) error
}

// Endpoints returns a Source collecting over HTTP from the fleet the
// enumerator returns. Enumeration runs at each sweep because deployments
// churn between sweeps. Fetches honour the pipeline's parallelism,
// timeout, retry policy, and per-service error budget, and each response
// body streams straight through the stack scanner — this is the
// production collection path.
func Endpoints(enumerate func() []Endpoint) Source {
	return endpointSource{enumerate: enumerate}
}

// StaticEndpoints is Endpoints over a fixed fleet.
func StaticEndpoints(eps ...Endpoint) Source {
	return Endpoints(func() []Endpoint { return eps })
}

type endpointSource struct {
	enumerate func() []Endpoint
}

func (endpointSource) Name() string { return "endpoints" }

func (s endpointSource) Sweep(ctx context.Context, env *SweepEnv) error {
	eps := s.enumerate()
	fetchFleet(ctx, env.Config, env.prevFailures, eps, func(i int, snap *gprofile.Snapshot, err error) {
		if err != nil {
			env.Fail(eps[i].Service, eps[i].Instance, err)
			return
		}
		reportSalvage(env, eps[i].Service, eps[i].Instance, snap)
		env.Emit(snap)
	})
	return ctx.Err()
}

// reportSalvage routes a scanned-but-resynced snapshot's malformed-member
// count through Fail, mirroring the archive replay path: the instance is
// still emitted (it counts in Profiles), but an instance chronically
// serving partially corrupt dumps must show up in the sweep's error
// accounting, not have its undercounted goroutines pass silently. The
// error wraps gprofile.ErrSalvaged, which the engine exempts from
// FailedByService: the instance was reachable, so salvage noise must
// not eat a healthy service's error budget on the next sweep.
func reportSalvage(env *SweepEnv, service, instance string, snap *gprofile.Snapshot) {
	if snap.Malformed > 0 {
		env.Fail(service, instance,
			fmt.Errorf("leakprof: %w: skipped %d malformed goroutine members", gprofile.ErrSalvaged, snap.Malformed))
	}
}

// Archive returns a Source replaying an on-disk sweep archive (the
// <service>_<instance>.txt layout ArchiveSink and gprofile.SaveDir
// write). Files stream through the scanner one at a time; corrupt
// members fail individually — with any salvageable prefix records still
// emitted — without aborting the replay. When the archive carries a
// manifest (every ArchiveSink finalisation writes one), the sweep
// replays at its recorded timestamp, so trend verdicts over replayed
// history match the verdicts the original sweeps produced. For a
// multi-sweep archive (NewSweepArchiveSink's layout), use
// Pipeline.Replay, which runs one timestamped sweep per recorded sweep.
func Archive(dir string) Source {
	return archiveSource{dir: dir}
}

type archiveSource struct {
	dir string
}

func (archiveSource) Name() string { return "archive" }

func (s archiveSource) Sweep(ctx context.Context, env *SweepEnv) error {
	if env.SetTime != nil {
		// A readable manifest pins the sweep's time before anything is
		// emitted; a corrupt one is reported by ScanDir below.
		if m, err := gprofile.ReadManifest(s.dir); err == nil && m != nil && !m.SweepAt.IsZero() {
			env.SetTime(m.SweepAt)
		}
	}
	return gprofile.ScanDir(ctx, s.dir, env.Config.now(),
		func(snap *gprofile.Snapshot) { env.Emit(snap) },
		func(name string, err error) { env.Fail("archive", name, err) })
}

// FromSnapshots returns a Source over already-materialised snapshots
// (simulations, tests, archived sweeps loaded elsewhere).
func FromSnapshots(snaps []*gprofile.Snapshot) Source {
	return snapshotSource(snaps)
}

type snapshotSource []*gprofile.Snapshot

func (snapshotSource) Name() string { return "snapshots" }

func (s snapshotSource) Sweep(ctx context.Context, env *SweepEnv) error {
	for _, snap := range s {
		if err := ctx.Err(); err != nil {
			return err
		}
		env.Emit(snap)
	}
	return nil
}

// Dump names one raw debug=2 profile body to scan — the synth-dump
// origin for pipeline benchmarks and offline analysis of dumps captured
// out of band.
type Dump struct {
	Service  string
	Instance string
	Body     io.Reader
}

// Dumps returns a Source scanning raw profile bodies through the same
// streaming scanner the HTTP path uses.
func Dumps(dumps ...Dump) Source {
	return dumpSource(dumps)
}

type dumpSource []Dump

func (dumpSource) Name() string { return "dumps" }

func (s dumpSource) Sweep(ctx context.Context, env *SweepEnv) error {
	for _, d := range s {
		if err := ctx.Err(); err != nil {
			return err
		}
		snap, err := gprofile.ScanSnapshotWith(d.Service, d.Instance, env.Config.now(), d.Body, env.Config.Intern)
		if err != nil {
			env.Fail(d.Service, d.Instance, err)
			continue
		}
		reportSalvage(env, d.Service, d.Instance, snap)
		env.Emit(snap)
	}
	return nil
}
