package leakprof

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Trend analysis extends the single-sweep threshold heuristic of the
// paper with the cross-sweep signal visible in Fig 6: a true leak's
// blocked count grows monotonically between deploys, while benign
// congestion oscillates with load. The paper discusses this distinction
// qualitatively ("diurnal crests and troughs are common"); TrendTracker
// makes it a classifier, reducing the false positives the paper's
// 72.7%-precision reporting pays for.

// TrendVerdict classifies a location's cross-sweep behaviour.
type TrendVerdict int

const (
	// TrendUnknown means too few observations.
	TrendUnknown TrendVerdict = iota
	// TrendGrowing means the count grows sweep over sweep: a leak.
	TrendGrowing
	// TrendOscillating means the count rises and falls: congestion.
	TrendOscillating
	// TrendStable means the count is roughly flat: a steady-state pool.
	TrendStable
)

// String names the verdict.
func (v TrendVerdict) String() string {
	switch v {
	case TrendGrowing:
		return "growing"
	case TrendOscillating:
		return "oscillating"
	case TrendStable:
		return "stable"
	}
	return "unknown"
}

// observation is one sweep's fleet-wide count for a finding key, plus —
// when fed from aggregator moments — the per-instance dispersion that
// lets the verdict separate growth from sampling noise.
type observation struct {
	at    time.Time
	total int
	// profiles and sumSquares carry the service's profiled-instance
	// count and the sum of squared per-instance counts; zero for legacy
	// finding-total observations (no variance available).
	profiles   int
	sumSquares float64
}

// noise returns the expected relative fluctuation of the observation's
// total under per-instance dispersion: the standard deviation of a
// re-sampled total (sigma * sqrt(n) for n instances with per-instance
// std sigma) relative to the total itself. Zero when no variance
// information was recorded.
func (o observation) noise() float64 {
	if o.profiles <= 0 || o.total <= 0 {
		return 0
	}
	n := float64(o.profiles)
	mean := float64(o.total) / n
	variance := o.sumSquares/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance*n) / float64(o.total)
}

// TrendTracker accumulates per-location counts across sweeps. Its
// observation, export, and verdict methods are safe for concurrent use —
// a detached TrendSink may still be recording sweep N's moments while the
// state journal drains sweep N+1's delta — but the exported tuning
// fields (MinObservations, StableBand, Retention) must be set before the
// first observation.
type TrendTracker struct {
	// MinObservations before a verdict is issued; default 3.
	MinObservations int
	// StableBand is the relative fluctuation treated as flat; default
	// 0.15 (±15%).
	StableBand float64
	// Retention bounds the history kept per key: only the most recent
	// Retention observations survive an append, a restore, or a journal
	// compaction, so daily sweeps stop growing tracker state (and the
	// journal) without bound. Zero means unlimited. Verdicts, Export,
	// and TakeNew all operate on the retained window — set it before
	// the first observation or restore.
	Retention int

	mu      sync.Mutex
	history map[string][]observation
	// pending holds the observations recorded since the last TakeNew:
	// the per-sweep delta an append-only journal persists. Restored
	// history is never pending — it came from the journal. Tracking is
	// armed by the first TakeNew call (pendingArmed): a tracker no
	// journal ever drains must not accumulate an unbounded second copy
	// of every observation.
	pending      map[string][]observation
	pendingArmed bool
}

// retain trims obs to the tracker's retention window.
func (t *TrendTracker) retain(obs []observation) []observation {
	if t.Retention > 0 && len(obs) > t.Retention {
		// Copy the tail so the backing array does not pin trimmed
		// observations (and repeated appends do not grow it forever).
		trimmed := make([]observation, t.Retention)
		copy(trimmed, obs[len(obs)-t.Retention:])
		return trimmed
	}
	return obs
}

// record appends one observation to a key's history, honouring retention,
// and — once delta tracking is armed — tracks it as pending for the next
// TakeNew.
func (t *TrendTracker) record(key string, o observation) {
	if t.history == nil {
		t.history = map[string][]observation{}
	}
	t.history[key] = t.retain(append(t.history[key], o))
	if !t.pendingArmed {
		return
	}
	if t.pending == nil {
		t.pending = map[string][]observation{}
	}
	t.pending[key] = append(t.pending[key], o)
}

// Observe records one sweep's findings (typically the analyzer output
// before thresholding decisions are acted on). Findings carry only
// totals; prefer ObserveMoments, which records per-instance variance and
// pre-threshold groups as well.
func (t *TrendTracker) Observe(at time.Time, findings []*Finding) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range findings {
		t.record(f.Key(), observation{at: at, total: f.TotalBlocked})
	}
}

// ObserveMoments records one sweep's aggregator moments — the feed the
// pipeline's TrendSink uses. Compared to Observe it sees every observed
// group (not just above-threshold findings, so a leak's early growth is
// on record before it first crosses the threshold) and retains the
// per-instance dispersion, making verdicts variance-aware: a fleet whose
// instances disagree wildly about a location needs a bigger sweep-over-
// sweep change to be called growing.
func (t *TrendTracker) ObserveMoments(at time.Time, moments []Moment) {
	// Aggregation groups by the full operation (Function, NilChannel
	// included) while the trend key — like Finding.Key — folds those
	// away, so one sweep can hand us several moments per key. Merge
	// them first: appending two same-timestamp observations would read
	// as a bogus sweep-over-sweep transition.
	merged := make(map[string]observation, len(moments))
	for _, m := range moments {
		if m.Total <= 0 {
			continue
		}
		o := merged[m.Key()]
		o.at = at
		o.total += m.Total
		o.sumSquares += m.SumSquares
		if m.ServiceProfiles > o.profiles {
			o.profiles = m.ServiceProfiles
		}
		merged[m.Key()] = o
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, o := range merged {
		t.record(key, o)
	}
}

// TrendObservation is the exported form of one recorded sweep
// observation: what StateStore journals so trend history — including the
// per-instance moments behind variance-aware verdicts — survives a
// restart.
type TrendObservation struct {
	// At is the sweep timestamp the observation was recorded under.
	At time.Time `json:"at"`
	// Total is the fleet-wide blocked count for the key.
	Total int `json:"total"`
	// Profiles and SumSquares carry the per-instance dispersion; zero for
	// observations recorded without variance (legacy Observe feed).
	Profiles   int     `json:"profiles,omitempty"`
	SumSquares float64 `json:"sum_squares,omitempty"`
}

// Export returns the tracker's full cross-sweep history — already trimmed
// to the retention window — in journalable form, keyed by finding key.
// This is what a journal snapshot (compaction) persists; per-sweep deltas
// come from TakeNew.
func (t *TrendTracker) Export() map[string][]TrendObservation {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.history) == 0 {
		return nil
	}
	out := make(map[string][]TrendObservation, len(t.history))
	for key, obs := range t.history {
		out[key] = exportObservations(obs)
	}
	return out
}

// Keys returns every tracked key, unordered. With ExportStable it forms
// the incremental-export pair the journal's concurrent fold uses:
// capture the cheap key set inside the caller's critical section, fetch
// the histories later in bounded chunks off it.
func (t *TrendTracker) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.history))
	for k := range t.history {
		out = append(out, k)
	}
	return out
}

// trendExportChunk bounds how many keys ExportStable copies per lock
// acquisition, so a concurrent observer never waits on a full-history
// export.
const trendExportChunk = 1024

// ExportStable exports the history for keys in journalable form,
// excluding observations still pending for the next TakeNew. The
// exclusion is what makes the export safe to fetch concurrently with
// recording: a pending observation rides its own delta frame, which a
// replay applies by appending after the snapshot — including it here
// too would replay it twice. Pending observations are always a suffix
// of their key's history (record appends to both, and retention only
// trims the front), so dropping min(pending, len(history)) entries off
// the tail removes exactly the unjournaled ones.
func (t *TrendTracker) ExportStable(keys []string) map[string][]TrendObservation {
	out := make(map[string][]TrendObservation, len(keys))
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > trendExportChunk {
			chunk = chunk[:trendExportChunk]
		}
		keys = keys[len(chunk):]
		t.mu.Lock()
		for _, key := range chunk {
			obs, ok := t.history[key]
			if !ok {
				continue
			}
			stable := len(obs) - min(len(t.pending[key]), len(obs))
			if stable == 0 {
				continue
			}
			out[key] = exportObservations(obs[:stable])
		}
		t.mu.Unlock()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TakeNew returns the observations recorded since the last TakeNew and
// clears the pending set: the per-sweep delta an append-only journal
// persists instead of re-writing every key's history. The first call
// arms delta tracking — observations recorded before it are never
// pending, so a tracker nothing drains (a non-durable pipeline's
// TrendSink) carries no second copy of its history. StateStore arms its
// tracker at open. Restored observations are never returned — they came
// from the journal in the first place.
func (t *TrendTracker) TakeNew() map[string][]TrendObservation {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pendingArmed = true
	if len(t.pending) == 0 {
		return nil
	}
	out := make(map[string][]TrendObservation, len(t.pending))
	for key, obs := range t.pending {
		out[key] = exportObservations(obs)
	}
	t.pending = nil
	return out
}

func exportObservations(obs []observation) []TrendObservation {
	exported := make([]TrendObservation, len(obs))
	for i, o := range obs {
		exported[i] = TrendObservation{At: o.at, Total: o.total, Profiles: o.profiles, SumSquares: o.sumSquares}
	}
	return exported
}

// Restore loads previously exported history, replacing any existing
// observations for the restored keys: the restart path StateStore uses
// so verdicts resume with yesterday's moments instead of starting blind.
// Histories longer than the retention window are trimmed to their most
// recent Retention observations. Restored observations are not pending
// for TakeNew.
func (t *TrendTracker) Restore(history map[string][]TrendObservation) {
	if len(history) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.history == nil {
		t.history = make(map[string][]observation, len(history))
	}
	for key, obs := range history {
		t.history[key] = t.retain(importObservations(obs))
	}
}

// requeueNew hands a TakeNew delta back to the pending set — the undo
// hook for a journal whose append failed after the drain. The returned
// observations precede anything recorded since, preserving export order.
func (t *TrendTracker) requeueNew(delta map[string][]TrendObservation) {
	if len(delta) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		t.pending = make(map[string][]observation, len(delta))
	}
	for key, obs := range delta {
		t.pending[key] = append(importObservations(obs), t.pending[key]...)
	}
}

// reset drops all history and pending observations while keeping the
// tracker's configuration — the journal-replay path uses it when a
// snapshot record replaces accumulated state.
func (t *TrendTracker) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.history = nil
	t.pending = nil
}

// hasPending reports whether observations await the next TakeNew — what
// a journal Flush checks before deciding a delta frame is needed.
func (t *TrendTracker) hasPending() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending) > 0
}

// restoreDelta appends previously exported observations to the existing
// history — the journal-replay path for delta records, where each frame
// carries only what one sweep added and replay must accumulate frames in
// order rather than replace.
func (t *TrendTracker) restoreDelta(history map[string][]TrendObservation) {
	if len(history) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.history == nil {
		t.history = make(map[string][]observation, len(history))
	}
	for key, obs := range history {
		t.history[key] = t.retain(append(t.history[key], importObservations(obs)...))
	}
}

func importObservations(obs []TrendObservation) []observation {
	restored := make([]observation, len(obs))
	for i, o := range obs {
		restored[i] = observation{at: o.At, total: o.Total, profiles: o.Profiles, sumSquares: o.SumSquares}
	}
	return restored
}

// Verdict classifies one finding key's history.
func (t *TrendTracker) Verdict(key string) TrendVerdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.verdictLocked(key)
}

func (t *TrendTracker) verdictLocked(key string) TrendVerdict {
	min := t.MinObservations
	if min == 0 {
		min = 3
	}
	obs := t.history[key]
	if len(obs) < min {
		return TrendUnknown
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].at.Before(obs[j].at) })

	band := t.StableBand
	if band == 0 {
		band = 0.15
	}
	grows, shrinks := 0, 0
	for i := 1; i < len(obs); i++ {
		prev, cur := obs[i-1].total, obs[i].total
		base := prev
		if base == 0 {
			base = 1
		}
		// Variance-aware band: a step must clear both the configured
		// stable band and twice the sampling noise implied by the
		// previous sweep's per-instance dispersion. Legacy observations
		// carry no variance, so their band is exactly StableBand.
		eff := band
		if noise := 2 * obs[i-1].noise(); noise > eff {
			eff = noise
		}
		switch rel := float64(cur-prev) / float64(base); {
		case rel > eff:
			grows++
		case rel < -eff:
			shrinks++
		}
	}
	switch {
	case grows > 0 && shrinks == 0:
		return TrendGrowing
	case shrinks > 0:
		return TrendOscillating
	default:
		return TrendStable
	}
}

// Growing returns the keys currently classified as growing, sorted.
func (t *TrendTracker) Growing() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for key := range t.history {
		if t.verdictLocked(key) == TrendGrowing {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
