package leakprof

import (
	"sort"
	"time"
)

// Trend analysis extends the single-sweep threshold heuristic of the
// paper with the cross-sweep signal visible in Fig 6: a true leak's
// blocked count grows monotonically between deploys, while benign
// congestion oscillates with load. The paper discusses this distinction
// qualitatively ("diurnal crests and troughs are common"); TrendTracker
// makes it a classifier, reducing the false positives the paper's
// 72.7%-precision reporting pays for.

// TrendVerdict classifies a location's cross-sweep behaviour.
type TrendVerdict int

const (
	// TrendUnknown means too few observations.
	TrendUnknown TrendVerdict = iota
	// TrendGrowing means the count grows sweep over sweep: a leak.
	TrendGrowing
	// TrendOscillating means the count rises and falls: congestion.
	TrendOscillating
	// TrendStable means the count is roughly flat: a steady-state pool.
	TrendStable
)

// String names the verdict.
func (v TrendVerdict) String() string {
	switch v {
	case TrendGrowing:
		return "growing"
	case TrendOscillating:
		return "oscillating"
	case TrendStable:
		return "stable"
	}
	return "unknown"
}

// observation is one sweep's fleet-wide count for a finding key.
type observation struct {
	at    time.Time
	total int
}

// TrendTracker accumulates per-location counts across sweeps.
type TrendTracker struct {
	// MinObservations before a verdict is issued; default 3.
	MinObservations int
	// StableBand is the relative fluctuation treated as flat; default
	// 0.15 (±15%).
	StableBand float64

	history map[string][]observation
}

// Observe records one sweep's findings (typically the analyzer output
// before thresholding decisions are acted on).
func (t *TrendTracker) Observe(at time.Time, findings []*Finding) {
	if t.history == nil {
		t.history = map[string][]observation{}
	}
	for _, f := range findings {
		t.history[f.Key()] = append(t.history[f.Key()], observation{at: at, total: f.TotalBlocked})
	}
}

// Verdict classifies one finding key's history.
func (t *TrendTracker) Verdict(key string) TrendVerdict {
	min := t.MinObservations
	if min == 0 {
		min = 3
	}
	obs := t.history[key]
	if len(obs) < min {
		return TrendUnknown
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].at.Before(obs[j].at) })

	band := t.StableBand
	if band == 0 {
		band = 0.15
	}
	grows, shrinks := 0, 0
	for i := 1; i < len(obs); i++ {
		prev, cur := obs[i-1].total, obs[i].total
		base := prev
		if base == 0 {
			base = 1
		}
		switch rel := float64(cur-prev) / float64(base); {
		case rel > band:
			grows++
		case rel < -band:
			shrinks++
		}
	}
	switch {
	case grows > 0 && shrinks == 0:
		return TrendGrowing
	case shrinks > 0:
		return TrendOscillating
	default:
		return TrendStable
	}
}

// Growing returns the keys currently classified as growing, sorted.
func (t *TrendTracker) Growing() []string {
	var out []string
	for key := range t.history {
		if t.Verdict(key) == TrendGrowing {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
