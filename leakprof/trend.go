package leakprof

import (
	"math"
	"sort"
	"time"
)

// Trend analysis extends the single-sweep threshold heuristic of the
// paper with the cross-sweep signal visible in Fig 6: a true leak's
// blocked count grows monotonically between deploys, while benign
// congestion oscillates with load. The paper discusses this distinction
// qualitatively ("diurnal crests and troughs are common"); TrendTracker
// makes it a classifier, reducing the false positives the paper's
// 72.7%-precision reporting pays for.

// TrendVerdict classifies a location's cross-sweep behaviour.
type TrendVerdict int

const (
	// TrendUnknown means too few observations.
	TrendUnknown TrendVerdict = iota
	// TrendGrowing means the count grows sweep over sweep: a leak.
	TrendGrowing
	// TrendOscillating means the count rises and falls: congestion.
	TrendOscillating
	// TrendStable means the count is roughly flat: a steady-state pool.
	TrendStable
)

// String names the verdict.
func (v TrendVerdict) String() string {
	switch v {
	case TrendGrowing:
		return "growing"
	case TrendOscillating:
		return "oscillating"
	case TrendStable:
		return "stable"
	}
	return "unknown"
}

// observation is one sweep's fleet-wide count for a finding key, plus —
// when fed from aggregator moments — the per-instance dispersion that
// lets the verdict separate growth from sampling noise.
type observation struct {
	at    time.Time
	total int
	// profiles and sumSquares carry the service's profiled-instance
	// count and the sum of squared per-instance counts; zero for legacy
	// finding-total observations (no variance available).
	profiles   int
	sumSquares float64
}

// noise returns the expected relative fluctuation of the observation's
// total under per-instance dispersion: the standard deviation of a
// re-sampled total (sigma * sqrt(n) for n instances with per-instance
// std sigma) relative to the total itself. Zero when no variance
// information was recorded.
func (o observation) noise() float64 {
	if o.profiles <= 0 || o.total <= 0 {
		return 0
	}
	n := float64(o.profiles)
	mean := float64(o.total) / n
	variance := o.sumSquares/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance*n) / float64(o.total)
}

// TrendTracker accumulates per-location counts across sweeps.
type TrendTracker struct {
	// MinObservations before a verdict is issued; default 3.
	MinObservations int
	// StableBand is the relative fluctuation treated as flat; default
	// 0.15 (±15%).
	StableBand float64

	history map[string][]observation
}

// Observe records one sweep's findings (typically the analyzer output
// before thresholding decisions are acted on). Findings carry only
// totals; prefer ObserveMoments, which records per-instance variance and
// pre-threshold groups as well.
func (t *TrendTracker) Observe(at time.Time, findings []*Finding) {
	if t.history == nil {
		t.history = map[string][]observation{}
	}
	for _, f := range findings {
		t.history[f.Key()] = append(t.history[f.Key()], observation{at: at, total: f.TotalBlocked})
	}
}

// ObserveMoments records one sweep's aggregator moments — the feed the
// pipeline's TrendSink uses. Compared to Observe it sees every observed
// group (not just above-threshold findings, so a leak's early growth is
// on record before it first crosses the threshold) and retains the
// per-instance dispersion, making verdicts variance-aware: a fleet whose
// instances disagree wildly about a location needs a bigger sweep-over-
// sweep change to be called growing.
func (t *TrendTracker) ObserveMoments(at time.Time, moments []Moment) {
	if t.history == nil {
		t.history = map[string][]observation{}
	}
	// Aggregation groups by the full operation (Function, NilChannel
	// included) while the trend key — like Finding.Key — folds those
	// away, so one sweep can hand us several moments per key. Merge
	// them first: appending two same-timestamp observations would read
	// as a bogus sweep-over-sweep transition.
	merged := make(map[string]observation, len(moments))
	for _, m := range moments {
		if m.Total <= 0 {
			continue
		}
		o := merged[m.Key()]
		o.at = at
		o.total += m.Total
		o.sumSquares += m.SumSquares
		if m.ServiceProfiles > o.profiles {
			o.profiles = m.ServiceProfiles
		}
		merged[m.Key()] = o
	}
	for key, o := range merged {
		t.history[key] = append(t.history[key], o)
	}
}

// TrendObservation is the exported form of one recorded sweep
// observation: what StateStore journals so trend history — including the
// per-instance moments behind variance-aware verdicts — survives a
// restart.
type TrendObservation struct {
	// At is the sweep timestamp the observation was recorded under.
	At time.Time `json:"at"`
	// Total is the fleet-wide blocked count for the key.
	Total int `json:"total"`
	// Profiles and SumSquares carry the per-instance dispersion; zero for
	// observations recorded without variance (legacy Observe feed).
	Profiles   int     `json:"profiles,omitempty"`
	SumSquares float64 `json:"sum_squares,omitempty"`
}

// Export returns the tracker's full cross-sweep history in journalable
// form, keyed by finding key. Not safe to call concurrently with
// Observe/ObserveMoments.
func (t *TrendTracker) Export() map[string][]TrendObservation {
	if len(t.history) == 0 {
		return nil
	}
	out := make(map[string][]TrendObservation, len(t.history))
	for key, obs := range t.history {
		exported := make([]TrendObservation, len(obs))
		for i, o := range obs {
			exported[i] = TrendObservation{At: o.at, Total: o.total, Profiles: o.profiles, SumSquares: o.sumSquares}
		}
		out[key] = exported
	}
	return out
}

// Restore loads previously exported history, replacing any existing
// observations for the restored keys: the restart path StateStore uses
// so verdicts resume with yesterday's moments instead of starting blind.
func (t *TrendTracker) Restore(history map[string][]TrendObservation) {
	if len(history) == 0 {
		return
	}
	if t.history == nil {
		t.history = make(map[string][]observation, len(history))
	}
	for key, obs := range history {
		restored := make([]observation, len(obs))
		for i, o := range obs {
			restored[i] = observation{at: o.At, total: o.Total, profiles: o.Profiles, sumSquares: o.SumSquares}
		}
		t.history[key] = restored
	}
}

// Verdict classifies one finding key's history.
func (t *TrendTracker) Verdict(key string) TrendVerdict {
	min := t.MinObservations
	if min == 0 {
		min = 3
	}
	obs := t.history[key]
	if len(obs) < min {
		return TrendUnknown
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].at.Before(obs[j].at) })

	band := t.StableBand
	if band == 0 {
		band = 0.15
	}
	grows, shrinks := 0, 0
	for i := 1; i < len(obs); i++ {
		prev, cur := obs[i-1].total, obs[i].total
		base := prev
		if base == 0 {
			base = 1
		}
		// Variance-aware band: a step must clear both the configured
		// stable band and twice the sampling noise implied by the
		// previous sweep's per-instance dispersion. Legacy observations
		// carry no variance, so their band is exactly StableBand.
		eff := band
		if noise := 2 * obs[i-1].noise(); noise > eff {
			eff = noise
		}
		switch rel := float64(cur-prev) / float64(base); {
		case rel > eff:
			grows++
		case rel < -eff:
			shrinks++
		}
	}
	switch {
	case grows > 0 && shrinks == 0:
		return TrendGrowing
	case shrinks > 0:
		return TrendOscillating
	default:
		return TrendStable
	}
}

// Growing returns the keys currently classified as growing, sorted.
func (t *TrendTracker) Growing() []string {
	var out []string
	for key := range t.history {
		if t.Verdict(key) == TrendGrowing {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
