package leakprof

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/report"
)

// BenchmarkStateJournal contrasts the two durability models at a
// 100K-key steady state — the scale ROADMAP flags as the v1 journal's
// wall. Each iteration persists one sweep that touched 10 keys out of
// 100K tracked:
//
//   - delta-append is the segmented journal's RecordSweep: one frame
//     carrying the 10 dirty bugs and 10 new observations. Bytes and
//     allocations per op scale with the sweep's delta.
//   - full-rewrite is the v1 cost model (rewrite the whole state every
//     sweep), expressed as a forced snapshot: bytes and allocations per
//     op scale with the 100K tracked keys.
//
// The journal-KB/op metric is the store's own append accounting, so the
// two models are directly comparable in one bench run.
func BenchmarkStateJournal(b *testing.B) {
	const (
		trackedKeys = 100_000
		deltaKeys   = 10
	)
	baseTime := time.Unix(0, 0)

	seed := func(b *testing.B) *StateStore {
		b.Helper()
		store, err := OpenStateStore(b.TempDir(), StateTrendRetention(30))
		if err != nil {
			b.Fatal(err)
		}
		findings := make([]*Finding, trackedKeys)
		for i := range findings {
			findings[i] = &Finding{
				Service: "svc", Op: "send",
				Location:     fmt.Sprintf("/svc/f%05d.go:1", i),
				TotalBlocked: 1000,
			}
			store.BugDB().File(report.Bug{
				Key: findings[i].Key(), Service: "svc", Op: "send",
				Location: findings[i].Location, FiledAt: baseTime,
				BlockedGoroutines: 1000,
			})
		}
		store.Tracker().Observe(baseTime, findings)
		// Fold the seed into one snapshot segment: the steady state a
		// long-running daily sweep sits at.
		if err := store.Save(); err != nil {
			b.Fatal(err)
		}
		return store
	}

	// sweepDelta touches deltaKeys existing keys — re-sightings plus new
	// observations, the shape of a quiet production day.
	sweepDelta := func(store *StateStore, day int) {
		at := baseTime.Add(time.Duration(day) * 24 * time.Hour)
		findings := make([]*Finding, deltaKeys)
		for k := range findings {
			findings[k] = &Finding{
				Service: "svc", Op: "send",
				Location:     fmt.Sprintf("/svc/f%05d.go:1", k),
				TotalBlocked: 1000 + day,
			}
			store.BugDB().File(report.Bug{
				Key: findings[k].Key(), Service: "svc", Op: "send",
				Location: findings[k].Location, FiledAt: at,
				BlockedGoroutines: 1000 + day,
			})
		}
		store.Tracker().Observe(at, findings)
	}

	b.Run("delta-append", func(b *testing.B) {
		store := seed(b)
		defer store.Close()
		start := store.journalBytesAppended()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweepDelta(store, i+1)
			if err := store.RecordSweep(&Sweep{At: baseTime.Add(time.Duration(i+1) * 24 * time.Hour), Source: "bench", Profiles: 100}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(store.journalBytesAppended()-start)/float64(b.N)/1024, "journal-KB/op")
	})

	b.Run("full-rewrite", func(b *testing.B) {
		store := seed(b)
		defer store.Close()
		start := store.journalBytesAppended()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweepDelta(store, i+1)
			// The v1 model: every sweep rewrites the whole journal.
			if err := store.Save(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(store.journalBytesAppended()-start)/float64(b.N)/1024, "journal-KB/op")
	})
}
