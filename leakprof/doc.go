// Package leakprof analyzes goroutine profiles collected from production
// service instances to pinpoint goroutine leaks, reproducing the LEAKPROF
// tool from "Unveiling and Vanquishing Goroutine Leaks in Enterprise
// Microservices" (CGO 2024), Section V.
//
// # The Pipeline API
//
// The package exposes one composable entry point: a Pipeline built from
// functional options, pulling snapshots from a Source and fanning results
// out to Sinks.
//
//	pipe := leakprof.New(
//		leakprof.WithThreshold(10000),           // paper's concentration bound
//		leakprof.WithParallelism(64),            // concurrent fetches
//		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
//		leakprof.WithErrorBudget(3),             // per-service failure budget
//	)
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: reporter}, // dedup + top-N alerts
//		&leakprof.TrendSink{Tracker: tracker},    // cross-sweep verdicts
//	)
//	sweep, err := pipe.Sweep(ctx, leakprof.Endpoints(enumerateFleet))
//	// or: pipe.Run(ctx, src) for the paper's daily cadence
//
// Every profile origin drives the identical engine:
//
//   - Endpoints / StaticEndpoints — HTTP fleet collection with bounded
//     parallelism, bounded jittered retry, and per-service error
//     budgets; response bodies stream through the incremental stack
//     scanner, never materialised.
//   - Archive — replay of an on-disk sweep archive, one file at a time.
//   - fleet.(*Fleet).Source — a simulated platform (internal/fleet).
//   - FromSnapshots / Dumps — materialised snapshots or raw debug=2
//     bodies (synthetic dumps, out-of-band captures).
//
// Sinks receive each snapshot as it is collected plus the completed
// Sweep (ranked findings and the aggregator's raw per-group moments):
// ReportSink files alerts, TrendSink feeds variance-aware cross-sweep
// classification, MetricsSink accumulates telemetry, and ArchiveSink
// writes the sweep through to disk as it happens. The fan-out is
// concurrent: every sink consumes its own bounded event queue
// (WithSinkQueue) on its own goroutine, so a slow sink — a remote
// metrics push, a cold archive disk — cannot delay another sink's
// alerting; the sweep drains all queues before returning, so sink
// errors still join the sweep result.
//
// The three stages mirror the paper, and they stream: no stage ever
// holds a whole profile body, a parsed goroutine slice, or a full sweep
// of snapshots in memory. Peak sweep state is O(shards x locations),
// not O(fleet x profile).
//
// # Durability & state
//
// The paper's workflow is a daily fleet-wide sweep whose value is
// history: bugs are filed once, trends span days, and budgets are
// informed by yesterday. WithStateDir makes that history durable. The
// pipeline opens a StateStore there holding three things:
//
//   - the bug database of filed findings, so ReportSink dedup survives
//     a restart instead of re-alerting every owner;
//   - the cross-sweep trend history, including the aggregator moments
//     behind variance-aware verdicts, so TrendTracker resumes where it
//     left off;
//   - the previous sweep's outcome, whose per-service failure counts
//     seed the next sweep's error budget — a service that was down
//     yesterday is probed with a reduced budget today (never zero: a
//     recovered service always gets at least one probe).
//
// On disk the store is a segmented append-only log (format version 2).
// Each recorded sweep appends one frame — a length-prefixed,
// CRC-32-checksummed JSON record — to the active segment-NNNN.log. The
// frame is a delta: the bugs the sweep filed or re-sighted
// (report.DB.TakeDirty), the trend observations it added
// (TrendTracker.TakeNew), and the sweep outcome. Persisting a sweep
// therefore costs O(what the sweep changed); at a 100K-key steady state
// the v1 rewrite-everything model paid ~10,000x more bytes per sweep
// (see BenchmarkStateJournal). Recovery replays the live segments in
// order; a torn tail frame — a crash mid-append — is truncated rather
// than failing the open, so a crash loses at most the in-flight sweep.
//
// The log is kept bounded by compaction. The active segment rolls over
// past a size bound, and once more than a bounded number of segments are
// live (WithStateCompaction) the store folds them: the full state is
// written as one snapshot frame into a fresh segment, the journal.json
// manifest pointer swings to that segment atomically (temp file +
// rename), and the old segments are deleted. Snapshot frames replay by
// replacement, so a crash anywhere in that sequence recovers cleanly:
// before the pointer swing the old segments are still live and the
// half-written snapshot is a torn tail; after it, the leftovers below
// the pointer are swept up on open. WithTrendRetention bounds the other
// growth axis, keeping only the last N trend observations per key — in
// verdicts, in exports, and through compaction — so neither the tracker
// nor the journal grows with the age of the deployment.
//
// A state dir written by the v1 format (one monolithic state.json,
// rewritten atomically every sweep) opens seamlessly: the v1 journal is
// loaded, and the next recorded sweep folds everything into the first
// snapshot segment and removes the old file.
//
// Wire the store's journal-backed components into the sinks at startup:
//
//	pipe := leakprof.New(leakprof.WithStateDir(dir), ...)
//	store, err := pipe.State()
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB()}},
//		&leakprof.TrendSink{Tracker: store.Tracker()},
//	)
//
// Archives are durable too: every ArchiveSink finalisation writes a
// manifest.json (sweep timestamp, snapshot index, format version), and
// NewSweepArchiveSink rotates one manifested subdirectory per sweep,
// pruning the oldest finalised sweeps beyond a KeepSweeps bound.
// Pipeline.Replay walks a multi-sweep archive in recorded order,
// replaying each sweep at its manifested timestamp, so trend verdicts
// over replayed history match what the live sweeps produced.
//
// # Migrating from the pre-Pipeline API
//
// The original five loosely-coupled structs remain as thin deprecated
// wrappers over the engine; existing code keeps working. New code should
// use the Pipeline surface:
//
//	old API                            Pipeline equivalent
//	-------------------------------    ----------------------------------------
//	Collector{Parallelism: n}          New(WithParallelism(n), ...)
//	Collector{Timeout: d}              New(WithTimeout(d), ...)
//	Collector.Collect(ctx, eps)        Sweep(ctx, StaticEndpoints(eps...))
//	Collector.CollectInto(ctx, e, a)   Sweep(ctx, Endpoints(enum)) — the
//	                                   engine owns the aggregator
//	Analyzer{Threshold, Filters,       New(WithThreshold(t), WithFilters(f...),
//	  Ranking}                           WithRanking(r))
//	Analyzer.Analyze(snaps)            Sweep(ctx, FromSnapshots(snaps)).Findings
//	gprofile.LoadDir + Analyze         Sweep(ctx, Archive(dir))
//	Reporter.Report(findings)          AddSinks(&ReportSink{Reporter: rep})
//	TrendTracker.Observe(at, fs)       AddSinks(&TrendSink{Tracker: tr})
//	gprofile.SaveDir after sweep       AddSinks(archiveSink) — write-through
//	Scheduler{Interval: d}.Run(ctx)    New(WithInterval(d), ...).Run(ctx, src)
//	Scheduler.Sweep(ctx)               Pipeline.Sweep(ctx, src)
//
// New capabilities have no old-API equivalent: WithRetry (bounded
// attempts with jittered exponential backoff), WithErrorBudget (a
// fleet-wide outage costs the sweep a bounded number of timeouts per
// service), WithSharedIntern (one bounded string pool across all of a
// sweep's profile scans), WithStateDir (the durable segmented journal
// described under "Durability & state"), WithStateCompaction and
// WithTrendRetention (the journal's bounds), and WithSinkQueue (the
// concurrent sink fan-out's per-sink queue bound).
package leakprof
