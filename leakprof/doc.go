// Package leakprof analyzes goroutine profiles collected from production
// service instances to pinpoint goroutine leaks, reproducing the LEAKPROF
// tool from "Unveiling and Vanquishing Goroutine Leaks in Enterprise
// Microservices" (CGO 2024), Section V.
//
// # The Pipeline API
//
// The package exposes one composable entry point: a Pipeline built from
// functional options, pulling snapshots from a Source and fanning results
// out to Sinks.
//
//	pipe := leakprof.New(
//		leakprof.WithThreshold(10000),           // paper's concentration bound
//		leakprof.WithParallelism(64),            // concurrent fetches
//		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
//		leakprof.WithErrorBudget(3),             // per-service failure budget
//	)
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: reporter}, // dedup + top-N alerts
//		&leakprof.TrendSink{Tracker: tracker},    // cross-sweep verdicts
//	)
//	sweep, err := pipe.Sweep(ctx, leakprof.Endpoints(enumerateFleet))
//	// or: pipe.Run(ctx, src) for the paper's daily cadence
//
// Every profile origin drives the identical engine:
//
//   - Endpoints / StaticEndpoints — HTTP fleet collection with bounded
//     parallelism, bounded jittered retry, and per-service error
//     budgets; response bodies stream through the incremental stack
//     scanner, never materialised.
//   - Archive — replay of an on-disk sweep archive, one file at a time.
//   - fleet.(*Fleet).Source — a simulated platform (internal/fleet).
//   - FromSnapshots / Dumps — materialised snapshots or raw debug=2
//     bodies (synthetic dumps, out-of-band captures).
//
// Sinks receive each snapshot as it is collected plus the completed
// Sweep (ranked findings and the aggregator's raw per-group moments):
// ReportSink files alerts, TrendSink feeds variance-aware cross-sweep
// classification, MetricsSink accumulates telemetry, and ArchiveSink
// writes the sweep through to disk as it happens. The fan-out is
// concurrent: every sink consumes its own bounded event queue
// (WithSinkQueue) on its own goroutine, so a slow sink — a remote
// metrics push, a cold archive disk — cannot delay another sink's
// alerting. By default the sweep drains all queues before returning, so
// sink errors join the sweep result; WithDetachedSinks removes that
// barrier — Sweep returns once the sweep is enqueued everywhere, sink
// lag may span sweeps (bounded by the queue depth, which backpressures
// the next sweep's collection), and Pipeline.Flush / Pipeline.Close are
// the explicit drain barriers where the accumulated sink errors surface.
// Detached mode is what lets a periodic Run start sweep N+1 while a cold
// archive disk is still writing sweep N.
//
// The three stages mirror the paper, and they stream: no stage ever
// holds a whole profile body, a parsed goroutine slice, or a full sweep
// of snapshots in memory. Peak sweep state is O(shards x locations),
// not O(fleet x profile).
//
// # Durability & state
//
// The paper's workflow is a daily fleet-wide sweep whose value is
// history: bugs are filed once, trends span days, and budgets are
// informed by yesterday. WithStateDir makes that history durable. The
// pipeline opens a StateStore there holding three things:
//
//   - the bug database of filed findings, so ReportSink dedup survives
//     a restart instead of re-alerting every owner;
//   - the cross-sweep trend history, including the aggregator moments
//     behind variance-aware verdicts, so TrendTracker resumes where it
//     left off;
//   - the previous sweep's outcome, whose per-service failure counts
//     seed the next sweep's error budget — a service that was down
//     yesterday is probed with a reduced budget today (never zero: a
//     recovered service always gets at least one probe).
//
// On disk the store is a segmented append-only log. Each recorded sweep
// appends one frame — a length-prefixed, CRC-32-checksummed record — to
// the active segment-NNNN.log. The frame is a delta: the bugs the sweep
// filed or re-sighted (report.DB.TakeDirty), the trend observations it
// added (TrendTracker.TakeNew), and the sweep outcome. Persisting a
// sweep therefore costs O(what the sweep changed); at a 100K-key steady
// state the v1 rewrite-everything model paid ~10,000x more bytes per
// sweep (see BenchmarkStateJournal), and BenchmarkSweepCriticalPath
// measures the end-to-end sweep latency the remaining knobs buy back.
//
// Frame encoding is negotiated per journal (format version 3). New
// journals write the binary codec — varint-packed fields, a string
// table for the keys a record repeats, flate-compressed snapshot
// bodies — several-fold smaller than the JSON it replaces at a
// 100K-key steady state. JSON remains the v2-compatible fallback
// (WithStateCodec), every frame self-describes in its first payload
// byte, and recovery accepts both in one pass, so a journal whose
// history mixes codecs — JSON deltas from an old binary, binary frames
// appended after an upgrade — replays seamlessly. The journal.json
// manifest records the negotiated codec; a reopened store keeps the
// journal's dialect unless explicitly switched, and a journal that
// stays pure JSON keeps the version-2 manifest so v2-era readers can
// still open it.
//
// Durability is a policy, not a tax (WithStateSync). SyncEverySweep,
// the default, fsyncs inside every RecordSweep: no recorded sweep is
// ever lost, one fsync per sweep. SyncEvery(n, d) is group commit: the
// append returns after the buffered write, and one Sync — issued inline
// when the window fills, or by a background committer when its timer
// fires — covers every frame of the window, which is what sub-daily
// sweep cadences want. SyncOnClose defers every sync to Flush/Close.
// The loss window on a crash follows the policy: recovery truncates a
// torn tail frame and loses at most the unsynced window — never a
// frame synced before it (under fail-stop; a power loss that reorders
// unflushed pages can corrupt a mid-window frame, which recovery
// refuses to truncate silently because durable frames follow it).
// StateStore.Flush is the explicit barrier: it journals pending state,
// fsyncs the window, and surfaces background errors.
//
// The log is kept bounded by compaction, and compaction is concurrent.
// The active segment rolls over past a size bound, and once more than a
// bounded number of segments are live (WithStateCompaction) the store
// folds them: the full state is copied under the lock, encoded and
// written as one snapshot frame into a fresh segment off it, the
// journal.json manifest pointer swings to that segment atomically (temp
// file + rename), and the old segments are deleted. Sweeps recorded
// while the fold runs append to an in-memory side buffer and land right
// behind the snapshot — no sweep ever blocks on the fold. Snapshot
// frames replay by replacement, so a crash anywhere in that sequence
// recovers cleanly: before the pointer swing the old segments are still
// live and the half-written snapshot is a torn tail; after it, the
// leftovers below the pointer are swept up on open.
//
// Two retention windows keep state from growing with the age of the
// deployment. WithTrendRetention keeps only the last N trend
// observations per key — in verdicts, in exports, and through
// compaction. WithBugRetention ages closed (fixed or rejected) bugs out
// of memory, delta frames, and compaction folds once unseen for the
// window; open bugs never age out, so dedup against a still-open report
// holds forever.
//
// A state dir written by the v1 format (one monolithic state.json,
// rewritten atomically every sweep) opens seamlessly: the v1 journal is
// loaded, and the next recorded sweep folds everything into the first
// snapshot segment and removes the old file.
//
// Wire the store's journal-backed components into the sinks at startup:
//
//	pipe := leakprof.New(leakprof.WithStateDir(dir), ...)
//	store, err := pipe.State()
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB()}},
//		&leakprof.TrendSink{Tracker: store.Tracker()},
//	)
//
// Archives are durable too: every ArchiveSink finalisation writes a
// manifest.json (sweep timestamp, snapshot index, format version), and
// NewSweepArchiveSink rotates one manifested subdirectory per sweep,
// pruning the oldest finalised sweeps beyond a KeepSweeps bound.
// Pipeline.Replay walks a multi-sweep archive in recorded order,
// replaying each sweep at its manifested timestamp, so trend verdicts
// over replayed history match what the live sweeps produced.
//
// # Distributed sweeps
//
// One process sweeping a very large fleet is bounded by its own fetch
// parallelism and NIC. The distributed plane splits the fleet across
// shard workers and a coordinator, without changing anything downstream
// of the merge:
//
//	// worker k of n: sweep the partition, ship folded moments
//	part := leakprof.PartitionEndpoints(fleet, n)[k]
//	rep, _ := pipe.ShardSweep(ctx, leakprof.StaticEndpoints(part...), name, prev)
//	leakprof.PostShardReport(ctx, nil, coordinatorURL, rep) // or WriteShardReportFile
//
//	// coordinator: merge the reports and run the normal pipeline
//	sweep, err := pipe.Sweep(ctx, leakprof.MergedReports(fetches...))
//
// Partitioning is by service (ShardOfService, FNV-1a) — never by
// instance — so every aggregation group and every service's error
// budget lives entirely within one shard. That is what makes the merge
// exact: a ShardReport carries the shard's per-group streaming moments
// (Moment, mergeable via Moment.Merge and Aggregator.MergeMoments) plus
// the per-service profiled-instance counts that form the RMS/mean
// denominators, and the coordinator's merged sweep is byte-for-byte the
// moments, findings, and ranking a single-process sweep of the whole
// fleet would produce. Reports are O(services x locations), independent
// of fleet and profile size — shards ship statistics, not dumps.
//
// Transport is pluggable through ShardFetch: ShardReportFromFile reads
// a worker's atomic file handoff (WriteShardReportFile), ShardInbox
// accepts HTTP POSTs (PostShardReport) with natural backpressure, and
// an in-process closure drives nested or test topologies
// (internal/fleet.NewTopology). On the wire a report is one framed,
// CRC-checksummed binary payload sharing the journal codec's
// primitives, with one string table amortising every repeated service,
// location, and function name across the report; bodies past a size
// floor are flate-compressed.
//
// Failure semantics follow the existing sweep model. A shard whose
// report is lost — worker crash, torn file, timed-out POST — costs
// exactly that shard's contribution: the merged sweep completes, with
// the loss recorded as one failed instance named after the shard. A
// report that arrives carrying a shard-level sweep error merges its
// partial moments and surfaces the error the same way. Error budgets
// stay globally correct: each report's uncapped FailedByService tallies
// are summed by the coordinator and journaled (WithStateDir), and the
// next sweep's workers receive the journaled counts through
// SweepEnv.PrevFailures, so a service that burned its budget yesterday
// is probed gently today regardless of which worker owns it.
//
// Two refinements harden the merge against real networks. Reports are
// sequenced: each worker stamps ShardReport.Seq from a per-pipeline
// counter, and ShardInbox rejects a (shard, seq) pair it has already
// accepted with 409 Conflict, so a worker that retries a POST whose
// response was lost cannot double-count its moments. And the merge can
// be deadlined: MergedReportsWithin(wait, fetches...) closes the sweep
// after the wait, writing off each shard still fetching as one failed
// instance — a straggler costs its shard's contribution, exactly like
// a crash, instead of holding every other shard's findings hostage.
//
// # Streaming ingestion
//
// Both modes above pull: a sweep visits every endpoint on the
// collector's schedule. IngestServer inverts that into push — each
// instance POSTs its own debug=2 dump body (plain or gzip, origin named
// by ?service=/?instance= or the X-Leakprof-* headers) whenever its own
// trigger fires, which suits fleets behind NAT, short-lived batch jobs
// that exit before any puller arrives, and crash handlers dumping on
// the way down:
//
//	srv := leakprof.NewIngestServer(pipe, leakprof.IngestQueue(4096))
//	go http.ListenAndServe(addr, srv)  // instances POST dump bodies
//	err := srv.Run(ctx)                // one Sweep per closed window
//
// Every body streams through the same stack scanner on arrival and
// folds straight into the sharded aggregator — no dump is ever
// buffered whole, so ingest memory is bounded by the admission queue
// times the per-dump folded state (O(locations)), not by fleet size or
// dump length. Arrivals accumulate into clock-driven tumbling windows
// (WithWindow; a late arrival credits the next window), and each window
// close emits one ordinary Sweep: alerting, trend tracking, archives,
// and the state journal run unchanged, they simply see "windows"
// instead of "collection rounds".
//
// Backpressure is first-class rather than emergent. Admission is
// bounded by IngestQueue: a POST past the bound is rejected immediately
// with 429 and a Retry-After hint — never queued, never blocking the
// dumps already admitted — and the rejection is charged to the
// service's failure accounting in the closing window, where it feeds
// the same error budgets a pull sweep's fetch failures feed. Closing
// the server (context cancellation) drains: everything admitted folds
// into a final partial window before Run returns.
//
// Durability interacts with windows through the fsync policy
// (WithStateSync), and the loss bound on a crash is per-policy exactly
// as in batch mode, with "window" substituted for "sweep":
// SyncEverySweep loses at most the arrivals of the current, not yet
// closed window; SyncEvery(n, w) loses at most the n most recent closed
// windows (or the fsync interval w, whichever lands first); SyncOnClose
// loses everything since the server started. Rejected POSTs are not a
// durability loss — the instance still holds its dump and the 429
// tells it to retry after the hint.
//
// # Hot-path tuning
//
// The ingest-to-journal path is built to hold its throughput and its
// pause behaviour at fleet scale; four mechanisms carry that, each with
// a knob or a metric:
//
// Parallel window folds. Admitted dumps are folded into the sharded
// aggregator by a bounded worker pool (IngestFoldWorkers, default
// min(GOMAXPROCS, 8)) instead of one goroutine, so scan-and-fold keeps
// up with burst arrival. A window close quiesces the pool — every
// in-flight fold completes before the Sweep is emitted — so the window
// a sweep reports is exactly the set of dumps folded into it, and the
// aggregator's order-independent shards make the parallel fold
// byte-identical to the serial one.
//
// Per-service admission quotas. IngestServiceQuota bounds how many
// dumps one service may hold in the admission queue at once; a POST
// past the quota is rejected with 429 + Retry-After before it touches
// the shared queue, so one misbehaving service cannot starve the rest
// of the fleet. Quota rejections are charged to that service's failure
// accounting (ErrIngestQuota) in the closing window, distinct from
// whole-queue overflow (ErrIngestOverflow).
//
// Pooled decompression and scan state. Gzip ingest bodies decompress
// through a pooled inflater (Reset instead of a fresh allocator per
// POST), and profile scans draw their scanner — line buffer, interning
// and location caches — from a pool as well, so steady-state ingest
// allocation tracks the novel strings in a dump, not its byte size.
// stack.Current scans its capture buffer in place for the same reason:
// no whole-dump string copy on the goleak verification path.
//
// Dictionary-compressed segments. The binary journal codec writes a
// per-segment string dictionary: the first frame after a segment roll
// seeds the hot strings (keys, locations, service names), and
// subsequent frames reference them by ordinal instead of repeating
// them, which shrinks steady-state journal bytes by over a third.
// Compaction folds capture keys under the lock but fetch and encode
// values off it; the remaining under-lock pause is visible as
// fold-pause-us/fold in BenchmarkSweepCriticalPath. Drain-on-close
// grace adapts to observed fold latency (EWMA of window maxima) rather
// than a fixed timeout, so a slow disk gets more grace and an idle
// server closes fast.
//
// # Chaos & fault injection
//
// Every robustness mechanism above — retries, error budgets, scanner
// salvage, straggler deadlines, sequence dedup, admission backpressure
// — exists because production misbehaves. internal/chaos is the layer
// that proves they compose: it wraps the pull path (fleet.ServeWith
// mounts an Injector between the sweep and each honest endpoint) and
// the push path (posters corrupt their own POSTed bodies) with
// independently seeded, freely combinable faults:
//
//   - slow and hung endpoints (exercising WithTimeout and WithRetry),
//   - flapping instances answering 503 (retry recovery),
//   - torn dump bodies cut mid-frame (silent undercount — a dump that
//     simply ends scans as complete) and corrupted goroutine headers
//     (scanner resync + Malformed(), surfacing as ErrSalvaged failures),
//   - corrupt gzip streams (hard scan error, 400 + ScanErrors),
//   - rolling deploys firing mid-sweep (version skew: rolled instances
//     report empty backlogs while the rest still carry theirs),
//   - poster clock skew (dumps crediting the next window),
//   - crashed and straggling shards (MergedReportsWithin write-offs),
//   - replayed shard reports (409 sequence dedup) and unauthenticated
//     posts (401 token rejection).
//
// Every fault decision is a pure hash of (seed, fault kind, instance,
// attempt ordinal) — never of goroutine scheduling — so a failing
// scenario replays identically under -race and -count=100.
//
// Authentication is part of the fault surface. IngestAuthToken (flag
// -ingest-token) arms shared-secret admission on IngestServer, and
// ShardInbox.Token does the same for report POSTs
// (PostShardReportAuth sends it): a POST without the matching
// X-Leakprof-Token dies with 401 — compared constant-time, counted in
// IngestStats.AuthRejected / ShardInbox.AuthRejected, and deliberately
// not charged to the claimed service's failure accounting, since an
// unauthenticated claim is exactly what cannot be trusted.
//
// chaos.Catalogue is the scenario matrix: named fleet-config × fault-set
// × mode (batch pull, sharded topology, streaming ingest) combinations,
// each planting leaks through the live pattern catalogue
// (patterns.Simulatable) and asserting a precision floor, a recall
// floor, and a sweep-latency SLO, plus evidence checks that the
// configured faults actually fired. cmd/fleetsim -matrix runs it and
// renders the pass/fail table; CI runs both the race-enabled matrix
// test and the CLI gate, so a regression in any of the mechanisms above
// fails a named scenario rather than an abstract unit test.
//
// # Static↔dynamic loop
//
// The paper's two halves — production profiling (this package) and
// static leak detection (internal/staticbase, internal/astcheck, the
// goleak suppressions) — meet in internal/staticindex. A scan persists
// every static alarm in a findings index with stable keys (file,
// function, line, detector, reason), and the cross-linker joins that
// index against this package's production evidence:
//
//	idx, _ := staticindex.ScanTree(srcRoot)       // or cmd/leakrank
//	rep := staticindex.Link(idx, store.BugDB(), store.Tracker().Verdict)
//	actionable := rep.Actionable()                // evidence-ranked alarms
//	rep.WriteSuppressions("goleak.supp")          // demoted false positives
//
// The join partitions the alarm space by evidence. A static alarm the
// bug DB has sighted, with a growing or stable trend verdict, is
// near-certainly real and ranks by sightings and blocked-goroutine
// counts. An alarm production has never sighted across the journal's
// history is a suppression candidate: the emitted goleak.SuppressionList
// carries a machine-generated Reason line with the evidence, so owners
// reviewing the file see why each alarm was demoted. A confirmed site
// whose trend oscillates is congestion, not a leak, and is demoted the
// same way. Sightings with no static alarm stay ranked on dynamic
// evidence alone.
//
// The loop closes in both directions. Reporter.StaticAlarm (wired from
// staticindex.Index.AlarmFunc, or cmd/leakprof's -static-index flag)
// decorates every filed report.Bug with the static annotation for its
// site, which the alert renders as a "static:" line — an owner reading
// a production alert sees immediately that three analyzers also flagged
// the function. The precision/recall harness over the synth corpus
// (internal/staticindex's TestCombinedRankerDominatesEitherHalf) shows
// the combined ranker strictly beating either half alone on precision
// at equal recall: static pays for hard negatives, dynamic pays for
// congestion, and the join dismisses both failure modes.
//
// # Migrating from the pre-Pipeline API
//
// The original five loosely-coupled structs remain as thin deprecated
// wrappers over the engine; existing code keeps working. New code should
// use the Pipeline surface:
//
//	old API                            Pipeline equivalent
//	-------------------------------    ----------------------------------------
//	Collector{Parallelism: n}          New(WithParallelism(n), ...)
//	Collector{Timeout: d}              New(WithTimeout(d), ...)
//	Collector.Collect(ctx, eps)        Sweep(ctx, StaticEndpoints(eps...))
//	Collector.CollectInto(ctx, e, a)   Sweep(ctx, Endpoints(enum)) — the
//	                                   engine owns the aggregator
//	Analyzer{Threshold, Filters,       New(WithThreshold(t), WithFilters(f...),
//	  Ranking}                           WithRanking(r))
//	Analyzer.Analyze(snaps)            Sweep(ctx, FromSnapshots(snaps)).Findings
//	gprofile.LoadDir + Analyze         Sweep(ctx, Archive(dir))
//	Reporter.Report(findings)          AddSinks(&ReportSink{Reporter: rep})
//	TrendTracker.Observe(at, fs)       AddSinks(&TrendSink{Tracker: tr})
//	gprofile.SaveDir after sweep       AddSinks(archiveSink) — write-through
//	Scheduler{Interval: d}.Run(ctx)    New(WithInterval(d), ...).Run(ctx, src)
//	Scheduler.Sweep(ctx)               Pipeline.Sweep(ctx, src)
//
// New capabilities have no old-API equivalent: WithRetry (bounded
// attempts with jittered exponential backoff), WithErrorBudget (a
// fleet-wide outage costs the sweep a bounded number of timeouts per
// service), WithSharedIntern (one bounded string pool across all of a
// sweep's profile scans), WithStateDir (the durable segmented journal
// described under "Durability & state"), WithStateSync and
// WithStateCodec (the journal's fsync policy and frame codec),
// WithStateCompaction, WithTrendRetention, and WithBugRetention (the
// journal's bounds), WithSinkQueue (the concurrent sink fan-out's
// per-sink queue bound), and WithDetachedSinks (sink lag spanning
// sweeps, drained at Pipeline.Flush/Close).
package leakprof
