// Package leakprof analyzes goroutine profiles collected from production
// service instances to pinpoint goroutine leaks, reproducing the LEAKPROF
// tool from "Unveiling and Vanquishing Goroutine Leaks in Enterprise
// Microservices" (CGO 2024), Section V.
//
// # The Pipeline API
//
// The package exposes one composable entry point: a Pipeline built from
// functional options, pulling snapshots from a Source and fanning results
// out to Sinks.
//
//	pipe := leakprof.New(
//		leakprof.WithThreshold(10000),           // paper's concentration bound
//		leakprof.WithParallelism(64),            // concurrent fetches
//		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
//		leakprof.WithErrorBudget(3),             // per-service failure budget
//	)
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: reporter}, // dedup + top-N alerts
//		&leakprof.TrendSink{Tracker: tracker},    // cross-sweep verdicts
//	)
//	sweep, err := pipe.Sweep(ctx, leakprof.Endpoints(enumerateFleet))
//	// or: pipe.Run(ctx, src) for the paper's daily cadence
//
// Every profile origin drives the identical engine:
//
//   - Endpoints / StaticEndpoints — HTTP fleet collection with bounded
//     parallelism, bounded jittered retry, and per-service error
//     budgets; response bodies stream through the incremental stack
//     scanner, never materialised.
//   - Archive — replay of an on-disk sweep archive, one file at a time.
//   - fleet.(*Fleet).Source — a simulated platform (internal/fleet).
//   - FromSnapshots / Dumps — materialised snapshots or raw debug=2
//     bodies (synthetic dumps, out-of-band captures).
//
// Sinks receive each snapshot as it is collected plus the completed
// Sweep (ranked findings and the aggregator's raw per-group moments):
// ReportSink files alerts, TrendSink feeds variance-aware cross-sweep
// classification, MetricsSink accumulates telemetry, and ArchiveSink
// writes the sweep through to disk as it happens.
//
// The three stages mirror the paper, and they stream: no stage ever
// holds a whole profile body, a parsed goroutine slice, or a full sweep
// of snapshots in memory. Peak sweep state is O(shards x locations),
// not O(fleet x profile).
//
// # Migrating from the pre-Pipeline API
//
// The original five loosely-coupled structs remain as thin deprecated
// wrappers over the engine; existing code keeps working. New code should
// use the Pipeline surface:
//
//	old API                            Pipeline equivalent
//	-------------------------------    ----------------------------------------
//	Collector{Parallelism: n}          New(WithParallelism(n), ...)
//	Collector{Timeout: d}              New(WithTimeout(d), ...)
//	Collector.Collect(ctx, eps)        Sweep(ctx, StaticEndpoints(eps...))
//	Collector.CollectInto(ctx, e, a)   Sweep(ctx, Endpoints(enum)) — the
//	                                   engine owns the aggregator
//	Analyzer{Threshold, Filters,       New(WithThreshold(t), WithFilters(f...),
//	  Ranking}                           WithRanking(r))
//	Analyzer.Analyze(snaps)            Sweep(ctx, FromSnapshots(snaps)).Findings
//	gprofile.LoadDir + Analyze         Sweep(ctx, Archive(dir))
//	Reporter.Report(findings)          AddSinks(&ReportSink{Reporter: rep})
//	TrendTracker.Observe(at, fs)       AddSinks(&TrendSink{Tracker: tr})
//	gprofile.SaveDir after sweep       AddSinks(archiveSink) — write-through
//	Scheduler{Interval: d}.Run(ctx)    New(WithInterval(d), ...).Run(ctx, src)
//	Scheduler.Sweep(ctx)               Pipeline.Sweep(ctx, src)
//
// New capabilities have no old-API equivalent: WithRetry (bounded
// attempts with jittered exponential backoff), WithErrorBudget (a
// fleet-wide outage costs the sweep a bounded number of timeouts per
// service), and WithSharedIntern (one bounded string pool across all of
// a sweep's profile scans).
package leakprof
