package leakprof

import (
	"compress/gzip"
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gprofile"
)

// Always-on streaming ingestion. The pull plane (Endpoints, the paper's
// daily sweep) fans a fetch out to every instance, so fleet growth
// multiplies per-sweep fan-out and peak collection latency. The push
// plane inverts it: instances POST their own debug=2 dumps to an
// IngestServer whenever they like (on a timer, on a deploy, on an SLO
// breach), each body streams through the stack scanner on arrival, and
// the compact per-location snapshot folds into clock-driven tumbling
// windows. When a window closes, the server emits one normal Sweep
// through the owning Pipeline — ReportSink dedup, TrendSink verdicts,
// ArchiveSink manifests, and the StateStore journal all run unchanged,
// one delta frame per window. No dump is ever buffered whole: peak
// memory is O(queue x distinct blocked locations), independent of fleet
// size and dump size.

// DefaultIngestQueue bounds the admission queue (in-flight scans plus
// scanned-but-unfolded snapshots) when IngestQueue is unset.
const DefaultIngestQueue = 1024

// Shutdown drain bounds. The grace period is adaptive: the observed
// tail fold latency times the outstanding work per worker, clamped to
// [minDrainGrace, maxDrainGrace]. Before any fold has been timed the
// drain falls back to defaultDrainGrace.
const (
	defaultDrainGrace = 2 * time.Second
	minDrainGrace     = 100 * time.Millisecond
	maxDrainGrace     = 5 * time.Second
)

// ErrIngestOverflow is the admission failure recorded for each dump
// rejected with 429 because the ingest queue was full. The rejections
// are credited to the window that closes next, per service, so the
// existing error accounting (Sweep.FailedByService, journaled budget
// seeds) sees push-plane loss exactly as it sees pull-plane fetch
// failures.
var ErrIngestOverflow = errors.New("leakprof: ingest queue full")

// ErrIngestQuota is the admission failure recorded for each dump
// rejected with 429 because its service exceeded the per-service
// admission quota (IngestServiceQuota). Distinct from ErrIngestOverflow
// so the window accounting separates one noisy service from global
// pressure.
var ErrIngestQuota = errors.New("leakprof: per-service ingest quota exceeded")

// gzipReaderPool recycles gzip inflate state across POSTed bodies. A
// gzip.Reader holds a ~32KiB sliding window plus Huffman tables;
// resetting one onto the next request's body is dramatically cheaper
// than rebuilding that state per request on the hot ingest path.
var gzipReaderPool sync.Pool

// pooledGzipReader returns a gzip.Reader positioned over r, reusing
// pooled inflate state when available.
func pooledGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, ok := gzipReaderPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			gzipReaderPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

// putGzipReader retires zr to the pool. Close only checks the trailing
// CRC — it does not invalidate the reader for a future Reset — so even
// readers from failed scans are safe to recycle.
func putGzipReader(zr *gzip.Reader) {
	zr.Close()
	gzipReaderPool.Put(zr)
}

// ingestItem is one admitted dump: the compact scanned snapshot plus
// the salvage diagnostic, if the scan resynced past malformed members.
type ingestItem struct {
	snap *gprofile.Snapshot
}

// pendingFail is one admission-time failure (scan error, salvage,
// over-limit body) awaiting the next window close.
type pendingFail struct {
	service, instance string
	err               error
}

// IngestServer is the push-ingestion endpoint: an http.Handler
// accepting POSTed goroutine-profile dump bodies (?debug=2 text, plain
// or gzip Content-Encoding), and a Run loop folding admissions into
// windowed sweeps on the owning pipeline.
//
//	pipe := leakprof.New(leakprof.WithWindow(time.Minute), leakprof.WithStateDir(dir))
//	pipe.AddSinks(&leakprof.ReportSink{Reporter: rep})
//	srv := leakprof.NewIngestServer(pipe)
//	go http.ListenAndServe(addr, srv)   // instances POST here
//	srv.Run(ctx)                        // one Sweep per closed window
//
// Requests carry the profile's origin as ?service= and ?instance=
// query parameters (or X-Leakprof-Service / X-Leakprof-Instance
// headers). Admission is bounded: once IngestQueue dumps are in flight
// or queued, further POSTs are rejected with 429 and a Retry-After
// hint instead of buffering — admitted dumps keep folding, rejected
// ones are counted against their service in the closing window. An
// optional per-service quota (IngestServiceQuota) bounds any one
// service's share of those slots the same way. A body that fails to
// scan is a 400 and a recorded failure; a salvaged body (scanner
// resynced past malformed members) is admitted and the salvage
// diagnostic rides the window's error accounting, mirroring the pull
// path.
//
// Inside a window, queued snapshots are folded by a small pool of
// worker goroutines (IngestFoldWorkers) appending concurrently to the
// sweep's sharded aggregator; the window close quiesces the pool
// before the Sweep is emitted, so every sweep still observes a
// consistent fold frontier.
type IngestServer struct {
	pipe  *Pipeline
	queue chan ingestItem
	slots chan struct{} // admission bound: in-flight scans + queued items
	ticks <-chan time.Time

	// foldWorkers is the per-window fold pool size; quota the per-service
	// admission bound (0 = unlimited).
	foldWorkers int
	quota       int

	// token, when non-empty, is the shared secret every POST must carry
	// in X-Leakprof-Token; mismatches are 401s counted in AuthRejected.
	token string

	// inflight tracks per-service admissions currently holding a slot
	// (service -> *atomic.Int64), charged before the slot is taken and
	// released when the dump folds or its request fails.
	inflight sync.Map

	// foldNotify wakes the window loop after a worker folds, so the
	// deadline is re-evaluated on fold progress exactly as it was when
	// folding was inline.
	foldNotify chan struct{}

	// retryAfter is the 429 Retry-After hint in seconds: half a window,
	// when the queue has likely drained.
	retryAfter string

	mu            sync.Mutex
	rejected      map[string]int // per-service queue-full 429 counts awaiting the next window
	quotaRejected map[string]int // per-service quota 429 counts awaiting the next window
	fails         []pendingFail  // admission failures awaiting the next window, capped
	dropped       map[string]int // per-service failures beyond the fails cap

	// closeStart marks when the current window began closing, for the
	// window-close pause statistic (real time, not the pipeline clock:
	// it measures this process's fold unavailability).
	closeStart atomic.Int64

	// windowMaxNS is the slowest fold observed in the current window;
	// tailNS is the EWMA of those per-window maxima — a cheap tail
	// latency estimate that sizes the shutdown drain grace.
	windowMaxNS atomic.Int64
	tailNS      atomic.Int64

	closed       atomic.Bool
	authRejects  atomic.Uint64
	admitted     atomic.Uint64
	folded       atomic.Uint64
	rejects      atomic.Uint64
	quotaRejects atomic.Uint64
	scanFails    atomic.Uint64
	windows      atomic.Uint64
	pauseNS      atomic.Int64
	lastPause    atomic.Int64
}

// IngestOption tunes an IngestServer.
type IngestOption func(*IngestServer)

// IngestQueue bounds admission: at most n dumps may be in flight
// (scanning) or scanned-and-queued at once; POSTs beyond the bound get
// 429. Default DefaultIngestQueue.
func IngestQueue(n int) IngestOption {
	return func(s *IngestServer) {
		if n > 0 {
			s.queue = make(chan ingestItem, n)
			s.slots = make(chan struct{}, n)
		}
	}
}

// IngestFoldWorkers sets how many goroutines fold queued snapshots into
// each window's aggregator. The default is min(GOMAXPROCS, 8); 1
// restores strictly serial folding (useful as a parity baseline — the
// aggregator is order-independent, so worker count never changes a
// sweep's findings or moments, only its fold throughput).
func IngestFoldWorkers(n int) IngestOption {
	return func(s *IngestServer) {
		if n > 0 {
			s.foldWorkers = n
		}
	}
}

// IngestServiceQuota bounds any single service to n concurrently held
// admission slots (in-flight scans plus queued snapshots). POSTs beyond
// the quota get 429 with the same Retry-After hint, recorded as
// ErrIngestQuota against the service in the closing window — so one
// misbehaving fleet saturating its own quota cannot crowd every other
// service out of the shared queue. 0 (the default) disables the quota.
func IngestServiceQuota(n int) IngestOption {
	return func(s *IngestServer) {
		if n > 0 {
			s.quota = n
		}
	}
}

// IngestAuthToken requires every POST to carry tok in an
// X-Leakprof-Token header. The ingest path otherwise trusts the
// ?service= claim, so any client can charge an arbitrary service's
// quota and failure accounting; a shared secret closes that to holders
// of the fleet's token. Comparison is constant-time; a mismatch is a
// 401 counted in IngestStats.AuthRejected and deliberately NOT charged
// to the claimed service — an unauthenticated claim is untrusted, and
// charging it would let outsiders burn a service's error budget.
// Empty tok (the default) disables the check.
func IngestAuthToken(tok string) IngestOption {
	return func(s *IngestServer) { s.token = tok }
}

// IngestTicks overrides the window wake-up channel — the test seam that
// makes window closing deterministic under a fake pipeline clock. Each
// receive re-evaluates the window deadline against the pipeline clock;
// without arrivals or ticks a window never closes. Unset, Run wakes
// itself on a real-time ticker.
func IngestTicks(ticks <-chan time.Time) IngestOption {
	return func(s *IngestServer) { s.ticks = ticks }
}

// NewIngestServer builds the push endpoint over pipe. The pipeline's
// options govern ingestion the way they govern pull sweeps: WithWindow
// paces window closes on the pipeline clock, WithMaxProfileBytes bounds
// one POSTed body, WithSharedIntern dedups strings across bodies, and
// WithThreshold/WithRanking/sinks/state shape every emitted Sweep.
func NewIngestServer(pipe *Pipeline, opts ...IngestOption) *IngestServer {
	s := &IngestServer{
		pipe:          pipe,
		queue:         make(chan ingestItem, DefaultIngestQueue),
		slots:         make(chan struct{}, DefaultIngestQueue),
		foldWorkers:   defaultFoldWorkers(),
		foldNotify:    make(chan struct{}, 1),
		rejected:      make(map[string]int),
		quotaRejected: make(map[string]int),
		dropped:       make(map[string]int),
	}
	retry := int(pipe.cfg.window().Seconds() / 2)
	if retry < 1 {
		retry = 1
	}
	s.retryAfter = strconv.Itoa(retry)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

func defaultFoldWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// chargeService reserves one unit of the service's admission quota.
// Lock-free on the hot path: one sync.Map lookup plus an atomic add per
// admission.
func (s *IngestServer) chargeService(service string) bool {
	if s.quota <= 0 {
		return true
	}
	v, ok := s.inflight.Load(service)
	if !ok {
		v, _ = s.inflight.LoadOrStore(service, new(atomic.Int64))
	}
	c := v.(*atomic.Int64)
	if c.Add(1) > int64(s.quota) {
		c.Add(-1)
		return false
	}
	return true
}

// releaseService returns one unit of the service's admission quota.
func (s *IngestServer) releaseService(service string) {
	if s.quota <= 0 {
		return
	}
	if v, ok := s.inflight.Load(service); ok {
		v.(*atomic.Int64).Add(-1)
	}
}

// releaseAdmission undoes one full admission (queue slot plus service
// quota) for a request that failed after being admitted.
func (s *IngestServer) releaseAdmission(service string) {
	<-s.slots
	s.releaseService(service)
}

// ServeHTTP admits one POSTed dump: charge the service quota, reserve a
// queue slot (429 + Retry-After when either is exhausted), stream the
// body through the scanner, and queue the compact snapshot for the
// current window. 202 on admission; the fold itself is asynchronous.
func (s *IngestServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a goroutine-profile dump body (?debug=2 text)", http.StatusMethodNotAllowed)
		return
	}
	if s.closed.Load() {
		http.Error(w, "ingest server draining", http.StatusServiceUnavailable)
		return
	}
	if s.token != "" &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get("X-Leakprof-Token")), []byte(s.token)) != 1 {
		s.authRejects.Add(1)
		http.Error(w, "missing or invalid X-Leakprof-Token", http.StatusUnauthorized)
		return
	}
	service := firstOf(r.URL.Query().Get("service"), r.Header.Get("X-Leakprof-Service"))
	if service == "" {
		http.Error(w, "missing service (?service= or X-Leakprof-Service)", http.StatusBadRequest)
		return
	}
	instance := firstOf(r.URL.Query().Get("instance"), r.Header.Get("X-Leakprof-Instance"))
	if instance == "" {
		instance = r.RemoteAddr
	}

	// Admission control comes before the body is read: a full queue (or
	// an exhausted service quota) must shed load at the door, not after
	// paying for a scan.
	if !s.chargeService(service) {
		s.quotaRejects.Add(1)
		s.mu.Lock()
		s.quotaRejected[service]++
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, ErrIngestQuota.Error(), http.StatusTooManyRequests)
		return
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.releaseService(service)
		s.rejects.Add(1)
		s.mu.Lock()
		s.rejected[service]++
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, ErrIngestOverflow.Error(), http.StatusTooManyRequests)
		return
	}

	body := io.Reader(r.Body)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := pooledGzipReader(body)
		if err != nil {
			s.releaseAdmission(service)
			s.noteScanFail(service, instance, fmt.Errorf("leakprof: ingest %s/%s: bad gzip body: %w", service, instance, err))
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer putGzipReader(zr)
		body = zr
	}
	// Stream straight through the scanner — the dump is never
	// materialised. One byte past the limit means the profile is over
	// budget and must fail rather than fold truncated counts.
	limit := s.pipe.cfg.MaxProfileBytes
	if limit <= 0 {
		limit = DefaultMaxProfileBytes
	}
	lr := &io.LimitedReader{R: body, N: limit + 1}
	snap, err := gprofile.ScanSnapshotWith(service, instance, s.pipe.cfg.now(), lr, s.pipe.cfg.Intern)
	switch {
	case err != nil:
		s.releaseAdmission(service)
		s.noteScanFail(service, instance, err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case lr.N <= 0:
		s.releaseAdmission(service)
		err := fmt.Errorf("leakprof: ingest %s/%s: dump exceeds %d bytes", service, instance, limit)
		s.noteScanFail(service, instance, err)
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if snap.Malformed > 0 {
		// Salvage is a diagnostic, not a rejection: the snapshot folds,
		// and the window's error accounting records the resync exactly
		// as the pull path does (ErrSalvaged exempts it from budget
		// seeding).
		s.notePending(pendingFail{service, instance,
			fmt.Errorf("leakprof: %w: skipped %d malformed goroutine members", gprofile.ErrSalvaged, snap.Malformed)})
	}
	s.queue <- ingestItem{snap: snap} // cannot block: a slot is held
	s.admitted.Add(1)
	w.WriteHeader(http.StatusAccepted)
}

func firstOf(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// noteScanFail records an admission-time scan failure for the closing
// window.
func (s *IngestServer) noteScanFail(service, instance string, err error) {
	s.scanFails.Add(1)
	s.notePending(pendingFail{service, instance, err})
}

func (s *IngestServer) notePending(f pendingFail) {
	s.mu.Lock()
	if len(s.fails) < maxSweepFailures {
		s.fails = append(s.fails, f)
	} else {
		s.dropped[f.service]++
	}
	s.mu.Unlock()
}

// flushAccounting credits the failures and rejections recorded since
// the previous window close to env — the per-service admission
// accounting that feeds Sweep.FailedByService and, through the journal,
// the next sweep's error budgets.
func (s *IngestServer) flushAccounting(env *SweepEnv) {
	s.mu.Lock()
	fails := s.fails
	dropped := s.dropped
	rejected := s.rejected
	quotaRejected := s.quotaRejected
	s.fails = nil
	s.dropped = make(map[string]int)
	s.rejected = make(map[string]int)
	s.quotaRejected = make(map[string]int)
	s.mu.Unlock()
	for _, f := range fails {
		env.Fail(f.service, f.instance, f.err)
	}
	for svc, n := range dropped {
		err := fmt.Errorf("leakprof: ingest %s: further dumps failed to scan", svc)
		for i := 0; i < n; i++ {
			env.Fail(svc, "ingest", err)
		}
	}
	for svc, n := range rejected {
		for i := 0; i < n; i++ {
			env.Fail(svc, "ingest", ErrIngestOverflow)
		}
	}
	for svc, n := range quotaRejected {
		for i := 0; i < n; i++ {
			env.Fail(svc, "ingest", ErrIngestQuota)
		}
	}
}

// Run is the window loop: it folds admitted dumps into tumbling windows
// paced by the pipeline clock and emits one normal Sweep per closed
// window until ctx is cancelled. Cancellation is the drain barrier:
// admission stops (further POSTs get 503), everything already admitted
// is folded into one final partial-window sweep — delivered to sinks
// and journal like any other — and Run returns ctx's error. Callers
// still own the usual pipeline barriers (Pipeline.Flush/Close) for
// detached sinks and deferred fsync windows, exactly as after pull
// sweeps.
func (s *IngestServer) Run(ctx context.Context) error {
	ticks := s.ticks
	if ticks == nil {
		period := s.pipe.cfg.window() / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		ticks = ticker.C
	}
	for {
		if start := s.closeStart.Swap(0); start != 0 {
			pause := time.Since(time.Unix(0, start))
			s.pauseNS.Add(int64(pause))
			s.lastPause.Store(int64(pause))
		}
		s.pipe.Sweep(ctx, ingestWindow{s: s, ticks: ticks})
		s.windows.Add(1)
		if ctx.Err() != nil {
			s.closed.Store(true)
			// A window that closed normally in the same instant the
			// context was cancelled leaves its late arrivals queued; one
			// final sweep — the source goes straight to its shutdown
			// drain under the cancelled context — folds them so nothing
			// admitted is lost.
			if len(s.slots) > 0 {
				s.pipe.Sweep(ctx, ingestWindow{s: s, ticks: ticks})
				s.windows.Add(1)
			}
			return ctx.Err()
		}
	}
}

// foldLoop is one window-scoped fold worker: it drains queued snapshots
// into the sweep's aggregator until stop closes. The two-phase select
// gives stop priority, so quiescing never races a worker into folding
// items meant for the next window once the barrier has begun.
func (s *IngestServer) foldLoop(stop <-chan struct{}, env *SweepEnv) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		select {
		case <-stop:
			return
		case item := <-s.queue:
			<-s.slots
			start := time.Now()
			env.Emit(item.snap)
			s.releaseService(item.snap.Service)
			s.folded.Add(1)
			s.noteFold(time.Since(start))
			select {
			case s.foldNotify <- struct{}{}:
			default:
			}
		}
	}
}

// noteFold records one fold's latency into the current window's
// running maximum (CAS max — workers race benignly).
func (s *IngestServer) noteFold(d time.Duration) {
	for {
		cur := s.windowMaxNS.Load()
		if int64(d) <= cur || s.windowMaxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// closeFoldTail folds the closing window's max fold latency into the
// tail estimate: an EWMA (α=1/4) over per-window maxima approximates a
// high fold-latency percentile without histograms.
func (s *IngestServer) closeFoldTail() {
	m := s.windowMaxNS.Swap(0)
	if m <= 0 {
		return
	}
	cur := s.tailNS.Load()
	if cur == 0 {
		s.tailNS.Store(m)
		return
	}
	s.tailNS.Store(cur + (m-cur)/4)
}

// adaptiveDrainGrace bounds the shutdown drain: long enough for workers
// to fold everything outstanding at twice the observed tail fold
// latency, clamped to [minDrainGrace, maxDrainGrace]. With no fold
// samples yet (tail == 0) it falls back to the fixed default — there is
// nothing to adapt to.
func adaptiveDrainGrace(tail time.Duration, outstanding, workers int) time.Duration {
	if tail <= 0 {
		return defaultDrainGrace
	}
	if workers < 1 {
		workers = 1
	}
	perWorker := outstanding/workers + 1
	g := tail * time.Duration(2*perWorker)
	if g < minDrainGrace {
		return minDrainGrace
	}
	if g > maxDrainGrace {
		return maxDrainGrace
	}
	return g
}

// ingestWindow is the Source one window sweep drains: queued snapshots
// are folded by the worker pool until the pipeline clock crosses the
// window deadline, then the pool is quiesced and the source returns —
// closing the window — leaving later arrivals queued for the next
// window. Context cancellation drains whatever is already queued (the
// shutdown barrier) and returns.
type ingestWindow struct {
	s     *IngestServer
	ticks <-chan time.Time
}

func (ingestWindow) Name() string { return "ingest" }

func (w ingestWindow) Sweep(ctx context.Context, env *SweepEnv) error {
	s := w.s
	deadline := env.Config.now().Add(env.Config.window())

	// The fold pool: workers append concurrently to the sharded
	// aggregator (Emit is safe for concurrent use, and findings/moments
	// are deterministically ordered at close, so fold order never
	// changes a sweep). quiesce is the window-close barrier: after it
	// returns, no fold is in flight and none will start, so the sweep
	// the engine emits observes a frozen aggregator.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < s.foldWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.foldLoop(stop, env)
		}()
	}
	quiesce := func() {
		close(stop)
		wg.Wait()
		s.closeFoldTail()
	}

	for {
		select {
		case <-s.foldNotify:
		case <-w.ticks:
		case <-ctx.Done():
			// Shutdown: stop admitting, then let the pool fold
			// everything already admitted so no accepted dump is lost. A
			// held slot without a queued item is a scan still in flight —
			// wait for it to land (or fail, releasing the slot), bounded
			// by the adaptive grace so a stalled client cannot pin
			// shutdown.
			s.closed.Store(true)
			grace := adaptiveDrainGrace(time.Duration(s.tailNS.Load()), len(s.slots), s.foldWorkers)
			giveUp := time.After(grace)
			poll := time.NewTicker(time.Millisecond)
			defer poll.Stop()
		drain:
			for len(s.slots) > 0 {
				select {
				case <-s.foldNotify:
				case <-poll.C:
				case <-giveUp:
					break drain
				}
			}
			quiesce()
			s.flushAccounting(env)
			return nil
		}
		if !env.Config.now().Before(deadline) {
			quiesce()
			s.closeStart.Store(time.Now().UnixNano())
			s.flushAccounting(env)
			return nil
		}
	}
}

// IngestStats is a point-in-time snapshot of the server's counters.
type IngestStats struct {
	// Admitted counts dumps accepted (202) and queued; Folded counts
	// those already folded into a window's aggregator.
	Admitted, Folded uint64
	// Rejected counts queue-full 429s; QuotaRejected counts per-service
	// quota 429s; ScanErrors counts bodies that failed to scan or
	// exceeded the byte limit.
	Rejected, QuotaRejected, ScanErrors uint64
	// AuthRejected counts POSTs refused with 401 for a missing or wrong
	// X-Leakprof-Token (IngestAuthToken). Not charged to any service:
	// the service claim of an unauthenticated request is untrusted.
	AuthRejected uint64
	// Windows counts closed windows (sweeps emitted).
	Windows uint64
	// QueueLen is the current number of scanned-but-unfolded snapshots.
	QueueLen int
	// WindowPause is the cumulative real time the fold loop spent
	// between closing one window (sink handoff, journal append) and
	// draining the next; LastWindowPause is the most recent close's.
	// Admission continues during the pause — only folding waits.
	WindowPause, LastWindowPause time.Duration
	// FoldTail is the adaptive tail fold-latency estimate (EWMA of
	// per-window fold maxima) that sizes the shutdown drain grace.
	FoldTail time.Duration
}

// Stats returns current counters; safe for concurrent use.
func (s *IngestServer) Stats() IngestStats {
	return IngestStats{
		Admitted:        s.admitted.Load(),
		Folded:          s.folded.Load(),
		Rejected:        s.rejects.Load(),
		QuotaRejected:   s.quotaRejects.Load(),
		ScanErrors:      s.scanFails.Load(),
		AuthRejected:    s.authRejects.Load(),
		Windows:         s.windows.Load(),
		QueueLen:        len(s.queue),
		WindowPause:     time.Duration(s.pauseNS.Load()),
		LastWindowPause: time.Duration(s.lastPause.Load()),
		FoldTail:        time.Duration(s.tailNS.Load()),
	}
}
