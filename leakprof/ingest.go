package leakprof

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gprofile"
)

// Always-on streaming ingestion. The pull plane (Endpoints, the paper's
// daily sweep) fans a fetch out to every instance, so fleet growth
// multiplies per-sweep fan-out and peak collection latency. The push
// plane inverts it: instances POST their own debug=2 dumps to an
// IngestServer whenever they like (on a timer, on a deploy, on an SLO
// breach), each body streams through the stack scanner on arrival, and
// the compact per-location snapshot folds into clock-driven tumbling
// windows. When a window closes, the server emits one normal Sweep
// through the owning Pipeline — ReportSink dedup, TrendSink verdicts,
// ArchiveSink manifests, and the StateStore journal all run unchanged,
// one delta frame per window. No dump is ever buffered whole: peak
// memory is O(queue x distinct blocked locations), independent of fleet
// size and dump size.

// DefaultIngestQueue bounds the admission queue (in-flight scans plus
// scanned-but-unfolded snapshots) when IngestQueue is unset.
const DefaultIngestQueue = 1024

// ingestDrainGrace bounds how long the shutdown drain waits for scans
// still in flight when Run's context is cancelled; dumps already queued
// always fold.
const ingestDrainGrace = 2 * time.Second

// ErrIngestOverflow is the admission failure recorded for each dump
// rejected with 429 because the ingest queue was full. The rejections
// are credited to the window that closes next, per service, so the
// existing error accounting (Sweep.FailedByService, journaled budget
// seeds) sees push-plane loss exactly as it sees pull-plane fetch
// failures.
var ErrIngestOverflow = errors.New("leakprof: ingest queue full")

// ingestItem is one admitted dump: the compact scanned snapshot plus
// the salvage diagnostic, if the scan resynced past malformed members.
type ingestItem struct {
	snap *gprofile.Snapshot
}

// pendingFail is one admission-time failure (scan error, salvage,
// over-limit body) awaiting the next window close.
type pendingFail struct {
	service, instance string
	err               error
}

// IngestServer is the push-ingestion endpoint: an http.Handler
// accepting POSTed goroutine-profile dump bodies (?debug=2 text, plain
// or gzip Content-Encoding), and a Run loop folding admissions into
// windowed sweeps on the owning pipeline.
//
//	pipe := leakprof.New(leakprof.WithWindow(time.Minute), leakprof.WithStateDir(dir))
//	pipe.AddSinks(&leakprof.ReportSink{Reporter: rep})
//	srv := leakprof.NewIngestServer(pipe)
//	go http.ListenAndServe(addr, srv)   // instances POST here
//	srv.Run(ctx)                        // one Sweep per closed window
//
// Requests carry the profile's origin as ?service= and ?instance=
// query parameters (or X-Leakprof-Service / X-Leakprof-Instance
// headers). Admission is bounded: once IngestQueue dumps are in flight
// or queued, further POSTs are rejected with 429 and a Retry-After
// hint instead of buffering — admitted dumps keep folding, rejected
// ones are counted against their service in the closing window. A body
// that fails to scan is a 400 and a recorded failure; a salvaged body
// (scanner resynced past malformed members) is admitted and the
// salvage diagnostic rides the window's error accounting, mirroring
// the pull path.
type IngestServer struct {
	pipe  *Pipeline
	queue chan ingestItem
	slots chan struct{} // admission bound: in-flight scans + queued items
	ticks <-chan time.Time

	// retryAfter is the 429 Retry-After hint in seconds: half a window,
	// when the queue has likely drained.
	retryAfter string

	mu       sync.Mutex
	rejected map[string]int // per-service 429 counts awaiting the next window
	fails    []pendingFail  // admission failures awaiting the next window, capped
	dropped  map[string]int // per-service failures beyond the fails cap

	// closeStart marks when the current window began closing, for the
	// window-close pause statistic (real time, not the pipeline clock:
	// it measures this process's fold unavailability).
	closeStart atomic.Int64

	closed    atomic.Bool
	admitted  atomic.Uint64
	folded    atomic.Uint64
	rejects   atomic.Uint64
	scanFails atomic.Uint64
	windows   atomic.Uint64
	pauseNS   atomic.Int64
	lastPause atomic.Int64
}

// IngestOption tunes an IngestServer.
type IngestOption func(*IngestServer)

// IngestQueue bounds admission: at most n dumps may be in flight
// (scanning) or scanned-and-queued at once; POSTs beyond the bound get
// 429. Default DefaultIngestQueue.
func IngestQueue(n int) IngestOption {
	return func(s *IngestServer) {
		if n > 0 {
			s.queue = make(chan ingestItem, n)
			s.slots = make(chan struct{}, n)
		}
	}
}

// IngestTicks overrides the window wake-up channel — the test seam that
// makes window closing deterministic under a fake pipeline clock. Each
// receive re-evaluates the window deadline against the pipeline clock;
// without arrivals or ticks a window never closes. Unset, Run wakes
// itself on a real-time ticker.
func IngestTicks(ticks <-chan time.Time) IngestOption {
	return func(s *IngestServer) { s.ticks = ticks }
}

// NewIngestServer builds the push endpoint over pipe. The pipeline's
// options govern ingestion the way they govern pull sweeps: WithWindow
// paces window closes on the pipeline clock, WithMaxProfileBytes bounds
// one POSTed body, WithSharedIntern dedups strings across bodies, and
// WithThreshold/WithRanking/sinks/state shape every emitted Sweep.
func NewIngestServer(pipe *Pipeline, opts ...IngestOption) *IngestServer {
	s := &IngestServer{
		pipe:     pipe,
		queue:    make(chan ingestItem, DefaultIngestQueue),
		slots:    make(chan struct{}, DefaultIngestQueue),
		rejected: make(map[string]int),
		dropped:  make(map[string]int),
	}
	retry := int(pipe.cfg.window().Seconds() / 2)
	if retry < 1 {
		retry = 1
	}
	s.retryAfter = strconv.Itoa(retry)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ServeHTTP admits one POSTed dump: reserve a queue slot (429 +
// Retry-After when none is free), stream the body through the scanner,
// and queue the compact snapshot for the current window. 202 on
// admission; the fold itself is asynchronous.
func (s *IngestServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a goroutine-profile dump body (?debug=2 text)", http.StatusMethodNotAllowed)
		return
	}
	if s.closed.Load() {
		http.Error(w, "ingest server draining", http.StatusServiceUnavailable)
		return
	}
	service := firstOf(r.URL.Query().Get("service"), r.Header.Get("X-Leakprof-Service"))
	if service == "" {
		http.Error(w, "missing service (?service= or X-Leakprof-Service)", http.StatusBadRequest)
		return
	}
	instance := firstOf(r.URL.Query().Get("instance"), r.Header.Get("X-Leakprof-Instance"))
	if instance == "" {
		instance = r.RemoteAddr
	}

	// Admission control comes before the body is read: a full queue
	// must shed load at the door, not after paying for a scan.
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejects.Add(1)
		s.mu.Lock()
		s.rejected[service]++
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, ErrIngestOverflow.Error(), http.StatusTooManyRequests)
		return
	}

	body := io.Reader(r.Body)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			<-s.slots
			s.noteScanFail(service, instance, fmt.Errorf("leakprof: ingest %s/%s: bad gzip body: %w", service, instance, err))
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer zr.Close()
		body = zr
	}
	// Stream straight through the scanner — the dump is never
	// materialised. One byte past the limit means the profile is over
	// budget and must fail rather than fold truncated counts.
	limit := s.pipe.cfg.MaxProfileBytes
	if limit <= 0 {
		limit = DefaultMaxProfileBytes
	}
	lr := &io.LimitedReader{R: body, N: limit + 1}
	snap, err := gprofile.ScanSnapshotWith(service, instance, s.pipe.cfg.now(), lr, s.pipe.cfg.Intern)
	switch {
	case err != nil:
		<-s.slots
		s.noteScanFail(service, instance, err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case lr.N <= 0:
		<-s.slots
		err := fmt.Errorf("leakprof: ingest %s/%s: dump exceeds %d bytes", service, instance, limit)
		s.noteScanFail(service, instance, err)
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if snap.Malformed > 0 {
		// Salvage is a diagnostic, not a rejection: the snapshot folds,
		// and the window's error accounting records the resync exactly
		// as the pull path does (ErrSalvaged exempts it from budget
		// seeding).
		s.notePending(pendingFail{service, instance,
			fmt.Errorf("leakprof: %w: skipped %d malformed goroutine members", gprofile.ErrSalvaged, snap.Malformed)})
	}
	s.queue <- ingestItem{snap: snap} // cannot block: a slot is held
	s.admitted.Add(1)
	w.WriteHeader(http.StatusAccepted)
}

func firstOf(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// noteScanFail records an admission-time scan failure for the closing
// window.
func (s *IngestServer) noteScanFail(service, instance string, err error) {
	s.scanFails.Add(1)
	s.notePending(pendingFail{service, instance, err})
}

func (s *IngestServer) notePending(f pendingFail) {
	s.mu.Lock()
	if len(s.fails) < maxSweepFailures {
		s.fails = append(s.fails, f)
	} else {
		s.dropped[f.service]++
	}
	s.mu.Unlock()
}

// flushAccounting credits the failures and rejections recorded since
// the previous window close to env — the per-service admission
// accounting that feeds Sweep.FailedByService and, through the journal,
// the next sweep's error budgets.
func (s *IngestServer) flushAccounting(env *SweepEnv) {
	s.mu.Lock()
	fails := s.fails
	dropped := s.dropped
	rejected := s.rejected
	s.fails = nil
	s.dropped = make(map[string]int)
	s.rejected = make(map[string]int)
	s.mu.Unlock()
	for _, f := range fails {
		env.Fail(f.service, f.instance, f.err)
	}
	for svc, n := range dropped {
		err := fmt.Errorf("leakprof: ingest %s: further dumps failed to scan", svc)
		for i := 0; i < n; i++ {
			env.Fail(svc, "ingest", err)
		}
	}
	for svc, n := range rejected {
		for i := 0; i < n; i++ {
			env.Fail(svc, "ingest", ErrIngestOverflow)
		}
	}
}

// Run is the window loop: it folds admitted dumps into tumbling windows
// paced by the pipeline clock and emits one normal Sweep per closed
// window until ctx is cancelled. Cancellation is the drain barrier:
// admission stops (further POSTs get 503), everything already admitted
// is folded into one final partial-window sweep — delivered to sinks
// and journal like any other — and Run returns ctx's error. Callers
// still own the usual pipeline barriers (Pipeline.Flush/Close) for
// detached sinks and deferred fsync windows, exactly as after pull
// sweeps.
func (s *IngestServer) Run(ctx context.Context) error {
	ticks := s.ticks
	if ticks == nil {
		period := s.pipe.cfg.window() / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		ticks = ticker.C
	}
	for {
		if start := s.closeStart.Swap(0); start != 0 {
			pause := time.Since(time.Unix(0, start))
			s.pauseNS.Add(int64(pause))
			s.lastPause.Store(int64(pause))
		}
		s.pipe.Sweep(ctx, ingestWindow{s: s, ticks: ticks})
		s.windows.Add(1)
		if ctx.Err() != nil {
			s.closed.Store(true)
			// A window that closed normally in the same instant the
			// context was cancelled leaves its late arrivals queued; one
			// final sweep — the source goes straight to its shutdown
			// drain under the cancelled context — folds them so nothing
			// admitted is lost.
			if len(s.slots) > 0 {
				s.pipe.Sweep(ctx, ingestWindow{s: s, ticks: ticks})
				s.windows.Add(1)
			}
			return ctx.Err()
		}
	}
}

// ingestWindow is the Source one window sweep drains: queued snapshots
// are emitted until the pipeline clock crosses the window deadline,
// then the source returns — closing the window — leaving later arrivals
// queued for the next window. Context cancellation drains whatever is
// already queued (the shutdown barrier) and returns.
type ingestWindow struct {
	s     *IngestServer
	ticks <-chan time.Time
}

func (ingestWindow) Name() string { return "ingest" }

func (w ingestWindow) Sweep(ctx context.Context, env *SweepEnv) error {
	s := w.s
	deadline := env.Config.now().Add(env.Config.window())
	for {
		select {
		case item := <-s.queue:
			<-s.slots
			env.Emit(item.snap)
			s.folded.Add(1)
		case <-w.ticks:
		case <-ctx.Done():
			// Shutdown: stop admitting, then fold everything already
			// admitted so no accepted dump is lost. A held slot without
			// a queued item is a scan still in flight — wait for it to
			// land (or fail, releasing the slot), bounded by a grace
			// period so a stalled client cannot pin shutdown.
			s.closed.Store(true)
			deadline := time.After(ingestDrainGrace)
			poll := time.NewTicker(time.Millisecond)
			defer poll.Stop()
		drain:
			for len(s.slots) > 0 {
				select {
				case item := <-s.queue:
					<-s.slots
					env.Emit(item.snap)
					s.folded.Add(1)
				case <-poll.C:
				case <-deadline:
					break drain
				}
			}
			s.flushAccounting(env)
			return nil
		}
		if !env.Config.now().Before(deadline) {
			s.closeStart.Store(time.Now().UnixNano())
			s.flushAccounting(env)
			return nil
		}
	}
}

// IngestStats is a point-in-time snapshot of the server's counters.
type IngestStats struct {
	// Admitted counts dumps accepted (202) and queued; Folded counts
	// those already folded into a window's aggregator.
	Admitted, Folded uint64
	// Rejected counts 429s (queue full); ScanErrors counts bodies that
	// failed to scan or exceeded the byte limit.
	Rejected, ScanErrors uint64
	// Windows counts closed windows (sweeps emitted).
	Windows uint64
	// QueueLen is the current number of scanned-but-unfolded snapshots.
	QueueLen int
	// WindowPause is the cumulative real time the fold loop spent
	// between closing one window (sink handoff, journal append) and
	// draining the next; LastWindowPause is the most recent close's.
	// Admission continues during the pause — only folding waits.
	WindowPause, LastWindowPause time.Duration
}

// Stats returns current counters; safe for concurrent use.
func (s *IngestServer) Stats() IngestStats {
	return IngestStats{
		Admitted:        s.admitted.Load(),
		Folded:          s.folded.Load(),
		Rejected:        s.rejects.Load(),
		ScanErrors:      s.scanFails.Load(),
		Windows:         s.windows.Load(),
		QueueLen:        len(s.queue),
		WindowPause:     time.Duration(s.pauseNS.Load()),
		LastWindowPause: time.Duration(s.lastPause.Load()),
	}
}
