package leakprof

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/frame"
	"repro/internal/report"
)

// StateCodec names a journal frame payload encoding. The codec applies to
// frames a store writes; reading is always codec-agnostic, because every
// frame self-describes in its first payload byte (JSON records open with
// '{', binary records with the binary magic). A journal may therefore mix
// codecs freely — a store that upgraded to the binary codec mid-log, or a
// binary store appending behind JSON segments, replays in one pass.
type StateCodec string

const (
	// StateCodecJSON writes frames as the v2 JSON records. It is the
	// compatibility fallback: journals written with it are readable by
	// v2-era stores.
	StateCodecJSON StateCodec = "json"
	// StateCodecBinary writes frames as versioned binary records:
	// varint-packed integers, a string table deduplicating the stack and
	// service keys that repeat across a record, and flate compression for
	// snapshot bodies. At a 100K-key steady state a snapshot segment is
	// several-fold smaller than its JSON form (see
	// TestBinarySnapshotSmallerThanJSON), and delta frames allocate
	// materially less than json.Marshal (see BenchmarkStateJournal).
	StateCodecBinary StateCodec = "binary"
)

// valid reports whether c names a known codec.
func (c StateCodec) valid() bool {
	return c == StateCodecJSON || c == StateCodecBinary
}

// Binary frame layout. The payload (what the length prefix and CRC in the
// frame header cover) is:
//
//	byte 0: binaryFrameMagic (0xB1 — never '{', so JSON frames are
//	        unambiguous)
//	byte 1: binaryFrameVersion
//	byte 2: flags (binaryFlagFlate: the body is a flate stream)
//	rest:   body (see encodeBinaryBody), flate-compressed when flagged
//
// The body packs integers as varints (zigzag for signed), floats as
// 8-byte little-endian IEEE bits, timestamps as a presence byte plus a
// zigzag varint of UnixNano (so the zero time survives a round trip),
// and strings as uvarint references into a deduplicating string table
// serialized ahead of the sections that reference it — the shared
// internal/frame primitives.
//
// Version history: 1 carried bugs through Sightings; 2 appends the
// bug's StaticAlarm (the static-analysis annotation the cross-linker
// decorates filed bugs with); 3 changes the string table's scope from
// one frame to one segment. A version-3 frame's leading table lists
// only the strings it *appends* to the segment's cumulative dictionary
// (taking the next consecutive indices), and its references index that
// dictionary — so steady-state delta frames that keep naming the same
// hot stack locations stop re-encoding them. Version 3 also adds the
// dictionary record kind (binaryKindDict): a seed of carried-over
// strings written at a segment's head, decoding to no journal record.
// Older frames (and whole older segments) decode unchanged: a
// version-1/2 frame's table is still self-contained, and a reader just
// resolves against it instead of the dictionary. The other direction
// is refused — a version-2 reader errors on version-3 frames, which is
// the intended "journal written by a newer build" signal.
const (
	binaryFrameMagic   = 0xB1
	binaryFrameVersion = 3
	binaryFlagFlate    = 1 << 0
)

// Binary record kinds (the first body field after the string table).
const (
	binaryKindDelta    = 1
	binaryKindSnapshot = 2
	binaryKindDict     = 3 // version 3: segment dictionary seed, no record
)

// stringRef abstracts the two string-table writers the binary body can
// target: the legacy per-frame StringTable and the segment-scoped
// DictTable.
type stringRef interface{ Ref(string) uint64 }

// encodePayload renders one journal record under the given codec. The
// binary form is a self-contained version-3 frame (a fresh dictionary,
// so every reference resolves within the frame); journal appends that
// share a segment dictionary go through encodeBinaryRecordDict instead.
func encodePayload(rec *journalRecord, codec StateCodec) ([]byte, error) {
	switch codec {
	case StateCodecBinary:
		return encodeBinaryRecord(rec)
	default:
		return json.Marshal(rec)
	}
}

// decodePayload decodes one frame payload, dispatching on the codec the
// frame self-describes with. It decodes without a segment dictionary,
// which suffices for JSON frames, version-1/2 frames, and self-contained
// version-3 frames; segment replay threads a dictionary via segDecoder.
// A dictionary-seed frame decodes to (nil, nil): callers skip it.
func decodePayload(payload []byte) (*journalRecord, error) {
	var d segDecoder
	return d.decodePayload(payload)
}

// segDecoder threads one segment's cumulative string dictionary through
// frame decoding. Each version-3 frame's leading table extends the
// dictionary before the frame's references resolve against it, keeping
// the reader in lockstep with the writer. The zero segDecoder decodes
// dictionary-free inputs (a nil dictionary is created on first need).
type segDecoder struct {
	dict *frame.Dict
}

func (d *segDecoder) decodePayload(payload []byte) (*journalRecord, error) {
	if len(payload) > 0 && payload[0] == binaryFrameMagic {
		return d.decodeBinaryRecord(payload)
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// encodeBinaryRecord renders rec as a self-contained binary frame
// payload: a fresh dictionary makes the frame's appended-strings table
// carry every string it references, exactly the shape fold snapshots
// use for their single-frame segments.
func encodeBinaryRecord(rec *journalRecord) ([]byte, error) {
	return encodeBinaryRecordDict(rec, frame.NewDictTable(frame.NewDict()))
}

// encodeBinaryRecordDict renders rec as a version-3 binary frame payload
// whose references index dt's segment dictionary; strings the dictionary
// lacks ride the frame's leading table as appends. The caller owns the
// commit protocol: dt.Commit() only after the frame is written, so the
// in-memory dictionary never runs ahead of the on-disk segment. Snapshot
// bodies are flate-compressed: they carry the whole journal's state, and
// their string-heavy sections (locations, keys) compress several-fold.
func encodeBinaryRecordDict(rec *journalRecord, dt *frame.DictTable) ([]byte, error) {
	body := encodeBinaryBody(rec, dt)
	// The appended-strings table precedes the sections that reference
	// the dictionary so decoding is one pass.
	full := dt.AppendTo(make([]byte, 0, len(body)+64))
	full = append(full, body...)
	return finishBinaryPayload(full, rec.Kind == recordSnapshot)
}

// encodeDictSeedPayload renders a dictionary-seed frame payload: the
// seed strings as the frame's appends, then the dict record kind. It is
// written at a rolled segment's head so hot strings carried over from
// the previous segment keep resolving as references.
func encodeDictSeedPayload(seed []string) ([]byte, error) {
	dt := frame.NewDictTable(frame.NewDict())
	for _, s := range seed {
		dt.Ref(s)
	}
	body := binary.AppendUvarint(make([]byte, 0, 8), binaryKindDict)
	full := dt.AppendTo(make([]byte, 0, 64))
	full = append(full, body...)
	return finishBinaryPayload(full, false)
}

// finishBinaryPayload prepends the payload header and optionally flate-
// compresses the body.
func finishBinaryPayload(full []byte, compress bool) ([]byte, error) {
	payload := []byte{binaryFrameMagic, binaryFrameVersion, 0}
	if compress {
		payload[2] |= binaryFlagFlate
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if _, err := zw.Write(full); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		return append(payload, buf.Bytes()...), nil
	}
	return append(payload, full...), nil
}

// encodeBinaryRecordLegacy renders rec exactly as version-2 stores did:
// a per-frame self-contained string table and the version-2 header
// byte. Nothing on the write path uses it anymore; it exists so the
// fallback-decode tests can manufacture genuine old-codec segments.
func encodeBinaryRecordLegacy(rec *journalRecord) ([]byte, error) {
	var tbl frame.StringTable
	body := encodeBinaryBody(rec, &tbl)
	full := tbl.AppendTo(make([]byte, 0, len(body)+64))
	full = append(full, body...)

	payload := []byte{binaryFrameMagic, 2, 0}
	if rec.Kind == recordSnapshot {
		payload[2] |= binaryFlagFlate
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if _, err := zw.Write(full); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		return append(payload, buf.Bytes()...), nil
	}
	return append(payload, full...), nil
}

func encodeBinaryBody(rec *journalRecord, tbl stringRef) []byte {
	b := make([]byte, 0, 256)
	kind := uint64(binaryKindDelta)
	if rec.Kind == recordSnapshot {
		kind = binaryKindSnapshot
	}
	b = binary.AppendUvarint(b, kind)
	b = frame.AppendTime(b, rec.SavedAt)

	b = binary.AppendUvarint(b, uint64(len(rec.Bugs)))
	for i := range rec.Bugs {
		bug := &rec.Bugs[i]
		b = binary.AppendUvarint(b, tbl.Ref(bug.Key))
		b = binary.AppendUvarint(b, tbl.Ref(bug.Service))
		b = binary.AppendUvarint(b, tbl.Ref(bug.Op))
		b = binary.AppendUvarint(b, tbl.Ref(bug.Location))
		b = binary.AppendUvarint(b, tbl.Ref(bug.Function))
		b = binary.AppendUvarint(b, tbl.Ref(bug.Owner))
		b = binary.AppendVarint(b, int64(bug.BlockedGoroutines))
		b = frame.AppendFloat(b, bug.Impact)
		b = frame.AppendTime(b, bug.FiledAt)
		b = frame.AppendTime(b, bug.LastSeen)
		b = binary.AppendUvarint(b, uint64(bug.Status))
		b = binary.AppendVarint(b, int64(bug.Sightings))
		b = binary.AppendUvarint(b, tbl.Ref(bug.StaticAlarm)) // version 2
	}

	b = binary.AppendUvarint(b, uint64(len(rec.Trend)))
	for key, obs := range rec.Trend {
		b = binary.AppendUvarint(b, tbl.Ref(key))
		b = binary.AppendUvarint(b, uint64(len(obs)))
		for _, o := range obs {
			b = frame.AppendTime(b, o.At)
			b = binary.AppendVarint(b, int64(o.Total))
			b = binary.AppendVarint(b, int64(o.Profiles))
			b = frame.AppendFloat(b, o.SumSquares)
		}
	}

	if rec.Sweep == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	sw := rec.Sweep
	b = frame.AppendTime(b, sw.At)
	b = binary.AppendUvarint(b, tbl.Ref(sw.Source))
	b = binary.AppendVarint(b, int64(sw.Profiles))
	b = binary.AppendVarint(b, int64(sw.Errors))
	b = binary.AppendVarint(b, int64(sw.Findings))
	b = binary.AppendUvarint(b, uint64(len(sw.FailedByService)))
	for svc, n := range sw.FailedByService {
		b = binary.AppendUvarint(b, tbl.Ref(svc))
		b = binary.AppendVarint(b, int64(n))
	}
	return b
}

// errBinaryTruncated aliases the shared primitive's truncation error so
// in-package codec paths (and their tests) keep one name for it.
var errBinaryTruncated = frame.ErrTruncated

// decodeBinaryRecord decodes one binary frame payload. Version-1/2
// frames resolve references against their own embedded table; version-3
// frames first extend the decoder's segment dictionary with their
// appended strings, then resolve against the whole dictionary. A
// dictionary-seed frame contributes its strings and decodes to
// (nil, nil).
func (d *segDecoder) decodeBinaryRecord(payload []byte) (*journalRecord, error) {
	if len(payload) < 3 {
		return nil, errBinaryTruncated
	}
	ver := payload[1]
	if ver > binaryFrameVersion {
		return nil, fmt.Errorf("leakprof: binary record version %d, newer than supported %d", ver, binaryFrameVersion)
	}
	flags, body := payload[2], payload[3:]
	if flags&binaryFlagFlate != 0 {
		var err error
		if body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body))); err != nil {
			return nil, fmt.Errorf("leakprof: inflating binary record: %w", err)
		}
	}
	r := frame.NewReader(body)

	tbl, err := r.StringTable()
	if err != nil {
		return nil, err
	}
	if ver >= 3 {
		if d.dict == nil {
			d.dict = frame.NewDict()
		}
		d.dict.Extend(tbl)
		tbl = d.dict.Strings()
	}

	rec := &journalRecord{}
	kind, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch kind {
	case binaryKindDelta:
		rec.Kind = recordDelta
	case binaryKindSnapshot:
		rec.Kind = recordSnapshot
	case binaryKindDict:
		if ver < 3 {
			return nil, fmt.Errorf("leakprof: dictionary record in version-%d frame", ver)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("leakprof: binary record kind %d unknown", kind)
	}
	if rec.SavedAt, err = r.Time(); err != nil {
		return nil, err
	}

	nBugs, err := r.Count(10)
	if err != nil {
		return nil, err
	}
	if nBugs > 0 {
		rec.Bugs = make([]report.Bug, nBugs)
	}
	for i := range rec.Bugs {
		bug := &rec.Bugs[i]
		if bug.Key, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if bug.Service, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if bug.Op, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if bug.Location, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if bug.Function, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if bug.Owner, err = r.Str(tbl); err != nil {
			return nil, err
		}
		var blocked, sightings int64
		if blocked, err = r.Varint(); err != nil {
			return nil, err
		}
		bug.BlockedGoroutines = int(blocked)
		if bug.Impact, err = r.Float64(); err != nil {
			return nil, err
		}
		if bug.FiledAt, err = r.Time(); err != nil {
			return nil, err
		}
		if bug.LastSeen, err = r.Time(); err != nil {
			return nil, err
		}
		status, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		bug.Status = report.Status(status)
		if sightings, err = r.Varint(); err != nil {
			return nil, err
		}
		bug.Sightings = int(sightings)
		if ver >= 2 {
			if bug.StaticAlarm, err = r.Str(tbl); err != nil {
				return nil, err
			}
		}
	}

	nKeys, err := r.Count(3)
	if err != nil {
		return nil, err
	}
	if nKeys > 0 {
		rec.Trend = make(map[string][]TrendObservation, nKeys)
	}
	for i := 0; i < nKeys; i++ {
		key, err := r.Str(tbl)
		if err != nil {
			return nil, err
		}
		nObs, err := r.Count(11)
		if err != nil {
			return nil, err
		}
		obs := make([]TrendObservation, nObs)
		for j := range obs {
			if obs[j].At, err = r.Time(); err != nil {
				return nil, err
			}
			var total, profiles int64
			if total, err = r.Varint(); err != nil {
				return nil, err
			}
			obs[j].Total = int(total)
			if profiles, err = r.Varint(); err != nil {
				return nil, err
			}
			obs[j].Profiles = int(profiles)
			if obs[j].SumSquares, err = r.Float64(); err != nil {
				return nil, err
			}
		}
		rec.Trend[key] = obs
	}

	present, err := r.Take(1)
	if err != nil {
		return nil, err
	}
	if present[0] == 0 {
		return rec, nil
	}
	sw := &SweepRecord{}
	if sw.At, err = r.Time(); err != nil {
		return nil, err
	}
	if sw.Source, err = r.Str(tbl); err != nil {
		return nil, err
	}
	var profiles, errCount, findings int64
	if profiles, err = r.Varint(); err != nil {
		return nil, err
	}
	sw.Profiles = int(profiles)
	if errCount, err = r.Varint(); err != nil {
		return nil, err
	}
	sw.Errors = int(errCount)
	if findings, err = r.Varint(); err != nil {
		return nil, err
	}
	sw.Findings = int(findings)
	nFailed, err := r.Count(2)
	if err != nil {
		return nil, err
	}
	if nFailed > 0 {
		sw.FailedByService = make(map[string]int, nFailed)
	}
	for i := 0; i < nFailed; i++ {
		svc, err := r.Str(tbl)
		if err != nil {
			return nil, err
		}
		n, err := r.Varint()
		if err != nil {
			return nil, err
		}
		sw.FailedByService[svc] = int(n)
	}
	rec.Sweep = sw
	return rec, nil
}
