package leakprof

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/report"
)

// StateCodec names a journal frame payload encoding. The codec applies to
// frames a store writes; reading is always codec-agnostic, because every
// frame self-describes in its first payload byte (JSON records open with
// '{', binary records with the binary magic). A journal may therefore mix
// codecs freely — a store that upgraded to the binary codec mid-log, or a
// binary store appending behind JSON segments, replays in one pass.
type StateCodec string

const (
	// StateCodecJSON writes frames as the v2 JSON records. It is the
	// compatibility fallback: journals written with it are readable by
	// v2-era stores.
	StateCodecJSON StateCodec = "json"
	// StateCodecBinary writes frames as versioned binary records:
	// varint-packed integers, a string table deduplicating the stack and
	// service keys that repeat across a record, and flate compression for
	// snapshot bodies. At a 100K-key steady state a snapshot segment is
	// several-fold smaller than its JSON form (see
	// TestBinarySnapshotSmallerThanJSON), and delta frames allocate
	// materially less than json.Marshal (see BenchmarkStateJournal).
	StateCodecBinary StateCodec = "binary"
)

// valid reports whether c names a known codec.
func (c StateCodec) valid() bool {
	return c == StateCodecJSON || c == StateCodecBinary
}

// Binary frame layout. The payload (what the length prefix and CRC in the
// frame header cover) is:
//
//	byte 0: binaryFrameMagic (0xB1 — never '{', so JSON frames are
//	        unambiguous)
//	byte 1: binaryFrameVersion
//	byte 2: flags (binaryFlagFlate: the body is a flate stream)
//	rest:   body (see encodeBinaryBody), flate-compressed when flagged
//
// The body packs integers as varints (zigzag for signed), floats as
// 8-byte little-endian IEEE bits, timestamps as a presence byte plus a
// zigzag varint of UnixNano (so the zero time survives a round trip),
// and strings as uvarint references into a deduplicating string table
// serialized ahead of the sections that reference it.
const (
	binaryFrameMagic   = 0xB1
	binaryFrameVersion = 1
	binaryFlagFlate    = 1 << 0
)

// encodePayload renders one journal record under the given codec.
func encodePayload(rec *journalRecord, codec StateCodec) ([]byte, error) {
	switch codec {
	case StateCodecBinary:
		return encodeBinaryRecord(rec)
	default:
		return json.Marshal(rec)
	}
}

// decodePayload decodes one frame payload, dispatching on the codec the
// frame self-describes with.
func decodePayload(payload []byte) (*journalRecord, error) {
	if len(payload) > 0 && payload[0] == binaryFrameMagic {
		return decodeBinaryRecord(payload)
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// stringTable deduplicates strings across one record: the service, op,
// and stack-key strings a 100K-bug snapshot repeats thousands of times
// are stored once and referenced by index.
type stringTable struct {
	index map[string]uint64
	strs  []string
}

func (t *stringTable) ref(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	if t.index == nil {
		t.index = make(map[string]uint64)
	}
	i := uint64(len(t.strs))
	t.index[s] = i
	t.strs = append(t.strs, s)
	return i
}

func (t *stringTable) appendTo(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.strs)))
	for _, s := range t.strs {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func appendTime(b []byte, at time.Time) []byte {
	if at.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendVarint(b, at.UnixNano())
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// encodeBinaryRecord renders rec as a binary frame payload. Snapshot
// bodies are flate-compressed: they carry the whole journal's state, and
// their string-heavy sections (locations, keys) compress several-fold.
func encodeBinaryRecord(rec *journalRecord) ([]byte, error) {
	var tbl stringTable
	body := encodeBinaryBody(rec, &tbl)
	// The table precedes the sections that reference it so decoding is
	// one pass.
	full := tbl.appendTo(make([]byte, 0, len(body)+64))
	full = append(full, body...)

	payload := []byte{binaryFrameMagic, binaryFrameVersion, 0}
	if rec.Kind == recordSnapshot {
		payload[2] |= binaryFlagFlate
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if _, err := zw.Write(full); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("leakprof: binary codec: %w", err)
		}
		return append(payload, buf.Bytes()...), nil
	}
	return append(payload, full...), nil
}

func encodeBinaryBody(rec *journalRecord, tbl *stringTable) []byte {
	b := make([]byte, 0, 256)
	kind := uint64(1)
	if rec.Kind == recordSnapshot {
		kind = 2
	}
	b = binary.AppendUvarint(b, kind)
	b = appendTime(b, rec.SavedAt)

	b = binary.AppendUvarint(b, uint64(len(rec.Bugs)))
	for i := range rec.Bugs {
		bug := &rec.Bugs[i]
		b = binary.AppendUvarint(b, tbl.ref(bug.Key))
		b = binary.AppendUvarint(b, tbl.ref(bug.Service))
		b = binary.AppendUvarint(b, tbl.ref(bug.Op))
		b = binary.AppendUvarint(b, tbl.ref(bug.Location))
		b = binary.AppendUvarint(b, tbl.ref(bug.Function))
		b = binary.AppendUvarint(b, tbl.ref(bug.Owner))
		b = binary.AppendVarint(b, int64(bug.BlockedGoroutines))
		b = appendFloat(b, bug.Impact)
		b = appendTime(b, bug.FiledAt)
		b = appendTime(b, bug.LastSeen)
		b = binary.AppendUvarint(b, uint64(bug.Status))
		b = binary.AppendVarint(b, int64(bug.Sightings))
	}

	b = binary.AppendUvarint(b, uint64(len(rec.Trend)))
	for key, obs := range rec.Trend {
		b = binary.AppendUvarint(b, tbl.ref(key))
		b = binary.AppendUvarint(b, uint64(len(obs)))
		for _, o := range obs {
			b = appendTime(b, o.At)
			b = binary.AppendVarint(b, int64(o.Total))
			b = binary.AppendVarint(b, int64(o.Profiles))
			b = appendFloat(b, o.SumSquares)
		}
	}

	if rec.Sweep == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	sw := rec.Sweep
	b = appendTime(b, sw.At)
	b = binary.AppendUvarint(b, tbl.ref(sw.Source))
	b = binary.AppendVarint(b, int64(sw.Profiles))
	b = binary.AppendVarint(b, int64(sw.Errors))
	b = binary.AppendVarint(b, int64(sw.Findings))
	b = binary.AppendUvarint(b, uint64(len(sw.FailedByService)))
	for svc, n := range sw.FailedByService {
		b = binary.AppendUvarint(b, tbl.ref(svc))
		b = binary.AppendVarint(b, int64(n))
	}
	return b
}

// binReader walks a binary body with bounds checking: a corrupt frame
// (which the CRC should have caught, but defense costs little) must
// produce an error, never a panic or an absurd allocation.
type binReader struct {
	b   []byte
	off int
}

var errBinaryTruncated = fmt.Errorf("leakprof: binary record truncated")

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinaryTruncated
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinaryTruncated
	}
	r.off += n
	return v, nil
}

func (r *binReader) count(elemMin int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	// A count cannot exceed the bytes left to encode its elements.
	if max := len(r.b) - r.off; elemMin > 0 && v > uint64(max/elemMin)+1 {
		return 0, fmt.Errorf("leakprof: binary record claims %d elements with %d bytes left", v, max)
	}
	return int(v), nil
}

func (r *binReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, errBinaryTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *binReader) float64() (float64, error) {
	raw, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
}

func (r *binReader) time() (time.Time, error) {
	flag, err := r.take(1)
	if err != nil {
		return time.Time{}, err
	}
	if flag[0] == 0 {
		return time.Time{}, nil
	}
	n, err := r.varint()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, n).UTC(), nil
}

func (r *binReader) str(tbl []string) (string, error) {
	i, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if i >= uint64(len(tbl)) {
		return "", fmt.Errorf("leakprof: binary record references string %d of %d", i, len(tbl))
	}
	return tbl[i], nil
}

func decodeBinaryRecord(payload []byte) (*journalRecord, error) {
	if len(payload) < 3 {
		return nil, errBinaryTruncated
	}
	if payload[1] > binaryFrameVersion {
		return nil, fmt.Errorf("leakprof: binary record version %d, newer than supported %d", payload[1], binaryFrameVersion)
	}
	flags, body := payload[2], payload[3:]
	if flags&binaryFlagFlate != 0 {
		var err error
		if body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body))); err != nil {
			return nil, fmt.Errorf("leakprof: inflating binary record: %w", err)
		}
	}
	r := &binReader{b: body}

	nStrs, err := r.count(1)
	if err != nil {
		return nil, err
	}
	tbl := make([]string, nStrs)
	for i := range tbl {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		tbl[i] = string(raw)
	}

	rec := &journalRecord{}
	kind, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	switch kind {
	case 1:
		rec.Kind = recordDelta
	case 2:
		rec.Kind = recordSnapshot
	default:
		return nil, fmt.Errorf("leakprof: binary record kind %d unknown", kind)
	}
	if rec.SavedAt, err = r.time(); err != nil {
		return nil, err
	}

	nBugs, err := r.count(10)
	if err != nil {
		return nil, err
	}
	if nBugs > 0 {
		rec.Bugs = make([]report.Bug, nBugs)
	}
	for i := range rec.Bugs {
		bug := &rec.Bugs[i]
		if bug.Key, err = r.str(tbl); err != nil {
			return nil, err
		}
		if bug.Service, err = r.str(tbl); err != nil {
			return nil, err
		}
		if bug.Op, err = r.str(tbl); err != nil {
			return nil, err
		}
		if bug.Location, err = r.str(tbl); err != nil {
			return nil, err
		}
		if bug.Function, err = r.str(tbl); err != nil {
			return nil, err
		}
		if bug.Owner, err = r.str(tbl); err != nil {
			return nil, err
		}
		var blocked, sightings int64
		if blocked, err = r.varint(); err != nil {
			return nil, err
		}
		bug.BlockedGoroutines = int(blocked)
		if bug.Impact, err = r.float64(); err != nil {
			return nil, err
		}
		if bug.FiledAt, err = r.time(); err != nil {
			return nil, err
		}
		if bug.LastSeen, err = r.time(); err != nil {
			return nil, err
		}
		status, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		bug.Status = report.Status(status)
		if sightings, err = r.varint(); err != nil {
			return nil, err
		}
		bug.Sightings = int(sightings)
	}

	nKeys, err := r.count(3)
	if err != nil {
		return nil, err
	}
	if nKeys > 0 {
		rec.Trend = make(map[string][]TrendObservation, nKeys)
	}
	for i := 0; i < nKeys; i++ {
		key, err := r.str(tbl)
		if err != nil {
			return nil, err
		}
		nObs, err := r.count(11)
		if err != nil {
			return nil, err
		}
		obs := make([]TrendObservation, nObs)
		for j := range obs {
			if obs[j].At, err = r.time(); err != nil {
				return nil, err
			}
			var total, profiles int64
			if total, err = r.varint(); err != nil {
				return nil, err
			}
			obs[j].Total = int(total)
			if profiles, err = r.varint(); err != nil {
				return nil, err
			}
			obs[j].Profiles = int(profiles)
			if obs[j].SumSquares, err = r.float64(); err != nil {
				return nil, err
			}
		}
		rec.Trend[key] = obs
	}

	present, err := r.take(1)
	if err != nil {
		return nil, err
	}
	if present[0] == 0 {
		return rec, nil
	}
	sw := &SweepRecord{}
	if sw.At, err = r.time(); err != nil {
		return nil, err
	}
	if sw.Source, err = r.str(tbl); err != nil {
		return nil, err
	}
	var profiles, errCount, findings int64
	if profiles, err = r.varint(); err != nil {
		return nil, err
	}
	sw.Profiles = int(profiles)
	if errCount, err = r.varint(); err != nil {
		return nil, err
	}
	sw.Errors = int(errCount)
	if findings, err = r.varint(); err != nil {
		return nil, err
	}
	sw.Findings = int(findings)
	nFailed, err := r.count(2)
	if err != nil {
		return nil, err
	}
	if nFailed > 0 {
		sw.FailedByService = make(map[string]int, nFailed)
	}
	for i := 0; i < nFailed; i++ {
		svc, err := r.str(tbl)
		if err != nil {
			return nil, err
		}
		n, err := r.varint()
		if err != nil {
			return nil, err
		}
		sw.FailedByService[svc] = int(n)
	}
	rec.Sweep = sw
	return rec, nil
}
