package leakprof

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// durableFleet serves a leaky service over HTTP plus a service whose
// every instance fails, returning the endpoints and a hit counter for
// the failing service.
func durableFleet(t *testing.T) (eps []Endpoint, flakyHits *atomic.Int64, shutdown func()) {
	t.Helper()
	leaky := make([]*stack.Goroutine, 300)
	for i := range leaky {
		leaky[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "pay.leak", File: "/pay/l.go", Line: 5}},
		}
	}
	pay := profileServer(leaky)
	flakyHits = &atomic.Int64{}
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flakyHits.Add(1)
		http.Error(w, "deploying", http.StatusServiceUnavailable)
	}))
	eps = []Endpoint{
		{Service: "pay", Instance: "i1", URL: pay.URL + "?debug=2"},
		{Service: "pay", Instance: "i2", URL: pay.URL + "?debug=2"},
		{Service: "flaky", Instance: "i1", URL: flaky.URL},
		{Service: "flaky", Instance: "i2", URL: flaky.URL},
		{Service: "flaky", Instance: "i3", URL: flaky.URL},
		{Service: "flaky", Instance: "i4", URL: flaky.URL},
	}
	return eps, flakyHits, func() { pay.Close(); flaky.Close() }
}

// durablePipeline builds a pipeline wired to the state dir the way a
// restart-safe monitor boots: sinks backed by the store's journal.
func durablePipeline(t *testing.T, dir string, day int) (*Pipeline, *ReportSink, *StateStore) {
	t.Helper()
	pipe := New(
		WithThreshold(100),
		WithParallelism(1), // deterministic budget accounting
		WithErrorBudget(3),
		WithStateDir(dir),
		WithClock(func() time.Time { return time.Unix(0, 0).Add(time.Duration(day) * 24 * time.Hour) }),
	)
	store, err := pipe.State()
	if err != nil {
		t.Fatal(err)
	}
	store.Tracker().MinObservations = 2
	reportSink := &ReportSink{Reporter: &Reporter{DB: store.BugDB(), TopN: 5}}
	pipe.AddSinks(reportSink, &TrendSink{Tracker: store.Tracker()})
	return pipe, reportSink, store
}

// TestStateStoreCrashRecovery is the restart integration test: run a
// sweep, throw the whole pipeline away, rebuild it from the same state
// dir, and require that bug dedup, trend history, and error-budget
// seeding all carry over through the journal.
func TestStateStoreCrashRecovery(t *testing.T) {
	eps, flakyHits, shutdown := durableFleet(t)
	defer shutdown()
	dir := t.TempDir()

	// Day one.
	pipe1, report1, _ := durablePipeline(t, dir, 1)
	sweep1, err := pipe1.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	if sweep1.Profiles != 2 || sweep1.Errors != 4 {
		t.Fatalf("sweep1 = %d profiles, %d errors", sweep1.Profiles, sweep1.Errors)
	}
	if len(report1.LastAlerts()) != 1 {
		t.Fatalf("day-one alerts = %d, want 1", len(report1.LastAlerts()))
	}
	// Budget 3: three real fetches fail, the fourth instance
	// short-circuits without touching the network.
	if got := flakyHits.Load(); got != 3 {
		t.Fatalf("day-one flaky fetches = %d, want 3 (budget)", got)
	}
	if sweep1.FailedByService["flaky"] != 4 {
		t.Fatalf("FailedByService = %+v", sweep1.FailedByService)
	}

	// "Crash": build everything anew from the journal alone.
	flakyHits.Store(0)
	pipe2, report2, store2 := durablePipeline(t, dir, 2)
	last := store2.LastSweep()
	if last == nil || last.Profiles != 2 || last.FailedByService["flaky"] != 4 {
		t.Fatalf("journaled last sweep = %+v", last)
	}

	sweep2, err := pipe2.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	// Dedup survives the restart: the same defect files as a re-sighting,
	// not a new alert.
	if got := len(report2.LastAlerts()); got != 0 {
		t.Errorf("post-restart alerts = %d, want 0 (deduplicated via journal)", got)
	}
	if bug, ok := store2.BugDB().Get((&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()); !ok || bug.Sightings != 2 {
		t.Errorf("journaled bug = %+v, ok=%v (want 2 sightings)", bug, ok)
	}
	// Trend history resumes with day one's observation: two observations
	// of an identical total classify as stable, not unknown.
	key := (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()
	if v := store2.Tracker().Verdict(key); v != TrendStable {
		t.Errorf("post-restart verdict = %v, want stable (history resumed)", v)
	}
	// Budget seeding: flaky burned its budget yesterday, so today it is
	// probed once (seed = budget-1 leaves a single probe) and the rest
	// short-circuit.
	if got := flakyHits.Load(); got != 1 {
		t.Errorf("post-restart flaky fetches = %d, want 1 (reduced probe budget)", got)
	}
	exhausted := 0
	for _, f := range sweep2.Failures {
		if errors.Is(f.Err, ErrBudgetExhausted) {
			exhausted++
		}
	}
	if exhausted != 3 {
		t.Errorf("short-circuited instances = %d, want 3", exhausted)
	}
}

// TestErrorBudgetSeeding pins the seeding rule: yesterday's failures
// pre-spend today's budget but always leave at least one probe.
func TestErrorBudgetSeeding(t *testing.T) {
	b := newErrorBudget(3, map[string]int{"down": 10, "blip": 1, "ok": 0})
	if b.exhausted("down") {
		t.Error("seeded service must keep at least one probe")
	}
	b.spend("down")
	if !b.exhausted("down") {
		t.Error("one failure after a heavy seed should exhaust the budget")
	}
	b.spend("blip")
	if b.exhausted("blip") { // 1 seeded + 1 new = 2 < 3
		t.Error("light seed exhausted too early")
	}
	if b.exhausted("ok") || b.exhausted("fresh") {
		t.Error("unseeded services must start with a full budget")
	}
	if seeded := newErrorBudget(1, map[string]int{"down": 5}); seeded.exhausted("down") {
		t.Error("budget of 1 cannot be pre-spent")
	}
}

// blockingSink stalls in SweepDone until released — the pathological
// slow sink (a hung metrics push) the concurrent fan-out must isolate.
type blockingSink struct {
	release chan struct{}
	done    atomic.Bool
}

func (s *blockingSink) Snapshot(*gprofile.Snapshot) {}
func (s *blockingSink) SweepDone(*Sweep) error {
	<-s.release
	s.done.Store(true)
	return errors.New("metrics push failed")
}

// TestSinkFanOutConcurrent proves the fan-out decouples sinks: the
// report sink files its alerts while another sink is stalled mid-
// SweepDone, and the stalled sink's error still joins the sweep result
// once the drain barrier completes.
func TestSinkFanOutConcurrent(t *testing.T) {
	leaky := &gprofile.Snapshot{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}
	stalled := &blockingSink{release: make(chan struct{})}
	reportSink := &ReportSink{Reporter: &Reporter{DB: report.NewDB(), TopN: 5}}
	pipe := New(WithThreshold(100)).AddSinks(stalled, reportSink)

	type result struct {
		sweep *Sweep
		err   error
	}
	sweepDone := make(chan result, 1)
	go func() {
		sweep, err := pipe.Sweep(context.Background(), FromSnapshots([]*gprofile.Snapshot{leaky}))
		sweepDone <- result{sweep, err}
	}()

	// The report sink must complete while the other sink is still
	// stalled: alerting does not wait for the slowest sink.
	deadline := time.Now().Add(5 * time.Second)
	for len(reportSink.LastAlerts()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("report sink did not complete while another sink was stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if stalled.done.Load() {
		t.Fatal("stalled sink finished first; test proves nothing")
	}
	select {
	case <-sweepDone:
		t.Fatal("Sweep returned before the drain barrier: stalled sink was not drained")
	default:
	}

	close(stalled.release)
	res := <-sweepDone
	if res.err == nil || !strings.Contains(res.err.Error(), "metrics push failed") {
		t.Errorf("sweep error = %v, want the stalled sink's error joined in", res.err)
	}
	if len(res.sweep.Findings) != 1 {
		t.Errorf("findings = %+v", res.sweep.Findings)
	}
}

// TestSweepArchiveReplayUsesManifestTimestamps drives the multi-sweep
// archive round trip: two sweeps recorded on different (fake) days
// rotate into manifested subdirectories, and a later replay reconstructs
// both sweeps at their recorded times — so the trend tracker sees the
// original two-day history, not two sweeps at replay time.
func TestSweepArchiveReplayUsesManifestTimestamps(t *testing.T) {
	base := t.TempDir()
	archive, err := NewSweepArchiveSink(base)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Unix(0, 0)
	clock := func() time.Time { return day }
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}

	recorder := New(WithThreshold(100), WithClock(clock)).AddSinks(archive)
	for i := 0; i < 2; i++ {
		if _, err := recorder.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
			t.Fatal(err)
		}
		day = day.Add(24 * time.Hour)
	}
	if archive.Written() != 2 {
		t.Fatalf("archived %d snapshots, want 2", archive.Written())
	}
	for _, sub := range []string{"sweep-0001", "sweep-0002"} {
		if _, err := os.Stat(filepath.Join(base, sub, gprofile.ManifestName)); err != nil {
			t.Fatalf("missing manifest: %v", err)
		}
	}

	// Replay much later: the fake replay clock is far from the recorded
	// days, so matching timestamps can only come from the manifests.
	tracker := &TrendTracker{MinObservations: 2}
	replayer := New(
		WithThreshold(100),
		WithClock(func() time.Time { return time.Unix(0, 0).Add(1000 * 24 * time.Hour) }),
	).AddSinks(&TrendSink{Tracker: tracker})
	sweeps, err := replayer.Replay(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 2 {
		t.Fatalf("replayed %d sweeps, want 2", len(sweeps))
	}
	for i, sweep := range sweeps {
		want := time.Unix(0, 0).Add(time.Duration(i) * 24 * time.Hour)
		if !sweep.At.Equal(want) {
			t.Errorf("sweep %d replayed at %v, want recorded %v", i, sweep.At, want)
		}
		if sweep.Profiles != 1 {
			t.Errorf("sweep %d profiles = %d", i, sweep.Profiles)
		}
	}
	// Identical totals one day apart: stable — a verdict only reachable
	// when both observations carry their recorded, distinct timestamps.
	key := (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()
	if v := tracker.Verdict(key); v != TrendStable {
		t.Errorf("replayed verdict = %v, want stable", v)
	}

	// A restarted recorder appends after the existing rotations instead
	// of overwriting them.
	archive2, err := NewSweepArchiveSink(base)
	if err != nil {
		t.Fatal(err)
	}
	recorder2 := New(WithThreshold(100), WithClock(clock)).AddSinks(archive2)
	if _, err := recorder2.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(base, "sweep-0003", gprofile.ManifestName)); err != nil {
		t.Errorf("restarted archive did not rotate to sweep-0003: %v", err)
	}
}

// TestStateStoreJournalSafety pins the journal's failure modes: corrupt
// and future-versioned journals refuse to load (silently dropping filed
// bugs would re-page every owner), and saves are atomic.
func TestStateStoreJournalSafety(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, StateFileName)

	if err := os.WriteFile(journal, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil {
		t.Error("corrupt journal must not load silently")
	}

	future, _ := json.Marshal(map[string]any{"format_version": StateVersion + 1})
	if err := os.WriteFile(journal, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("future journal error = %v", err)
	}

	if err := os.Remove(journal); err != nil {
		t.Fatal(err)
	}
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}
	// No staging temp files left behind, and the journal round-trips.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != StateFileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("state dir contents = %v, want only %s", names, StateFileName)
	}
	if _, err := OpenStateStore(dir); err != nil {
		t.Errorf("freshly saved journal failed to load: %v", err)
	}
}
