package leakprof

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// durableFleet serves a leaky service over HTTP plus a service whose
// every instance fails, returning the endpoints and a hit counter for
// the failing service.
func durableFleet(t *testing.T) (eps []Endpoint, flakyHits *atomic.Int64, shutdown func()) {
	t.Helper()
	leaky := make([]*stack.Goroutine, 300)
	for i := range leaky {
		leaky[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "pay.leak", File: "/pay/l.go", Line: 5}},
		}
	}
	pay := profileServer(leaky)
	flakyHits = &atomic.Int64{}
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flakyHits.Add(1)
		http.Error(w, "deploying", http.StatusServiceUnavailable)
	}))
	eps = []Endpoint{
		{Service: "pay", Instance: "i1", URL: pay.URL + "?debug=2"},
		{Service: "pay", Instance: "i2", URL: pay.URL + "?debug=2"},
		{Service: "flaky", Instance: "i1", URL: flaky.URL},
		{Service: "flaky", Instance: "i2", URL: flaky.URL},
		{Service: "flaky", Instance: "i3", URL: flaky.URL},
		{Service: "flaky", Instance: "i4", URL: flaky.URL},
	}
	return eps, flakyHits, func() { pay.Close(); flaky.Close() }
}

// durablePipeline builds a pipeline wired to the state dir the way a
// restart-safe monitor boots: sinks backed by the store's journal.
func durablePipeline(t *testing.T, dir string, day int) (*Pipeline, *ReportSink, *StateStore) {
	t.Helper()
	pipe := New(
		WithThreshold(100),
		WithParallelism(1), // deterministic budget accounting
		WithErrorBudget(3),
		WithStateDir(dir),
		WithClock(func() time.Time { return time.Unix(0, 0).Add(time.Duration(day) * 24 * time.Hour) }),
	)
	store, err := pipe.State()
	if err != nil {
		t.Fatal(err)
	}
	store.Tracker().MinObservations = 2
	reportSink := &ReportSink{Reporter: &Reporter{DB: store.BugDB(), TopN: 5}}
	pipe.AddSinks(reportSink, &TrendSink{Tracker: store.Tracker()})
	return pipe, reportSink, store
}

// TestStateStoreCrashRecovery is the restart integration test: run a
// sweep, throw the whole pipeline away, rebuild it from the same state
// dir, and require that bug dedup, trend history, and error-budget
// seeding all carry over through the journal.
func TestStateStoreCrashRecovery(t *testing.T) {
	eps, flakyHits, shutdown := durableFleet(t)
	defer shutdown()
	dir := t.TempDir()

	// Day one.
	pipe1, report1, _ := durablePipeline(t, dir, 1)
	sweep1, err := pipe1.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	if sweep1.Profiles != 2 || sweep1.Errors != 4 {
		t.Fatalf("sweep1 = %d profiles, %d errors", sweep1.Profiles, sweep1.Errors)
	}
	if len(report1.LastAlerts()) != 1 {
		t.Fatalf("day-one alerts = %d, want 1", len(report1.LastAlerts()))
	}
	// Budget 3: three real fetches fail, the fourth instance
	// short-circuits without touching the network.
	if got := flakyHits.Load(); got != 3 {
		t.Fatalf("day-one flaky fetches = %d, want 3 (budget)", got)
	}
	if sweep1.FailedByService["flaky"] != 4 {
		t.Fatalf("FailedByService = %+v", sweep1.FailedByService)
	}

	// "Crash": build everything anew from the journal alone.
	flakyHits.Store(0)
	pipe2, report2, store2 := durablePipeline(t, dir, 2)
	last := store2.LastSweep()
	if last == nil || last.Profiles != 2 || last.FailedByService["flaky"] != 4 {
		t.Fatalf("journaled last sweep = %+v", last)
	}

	sweep2, err := pipe2.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	// Dedup survives the restart: the same defect files as a re-sighting,
	// not a new alert.
	if got := len(report2.LastAlerts()); got != 0 {
		t.Errorf("post-restart alerts = %d, want 0 (deduplicated via journal)", got)
	}
	if bug, ok := store2.BugDB().Get((&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()); !ok || bug.Sightings != 2 {
		t.Errorf("journaled bug = %+v, ok=%v (want 2 sightings)", bug, ok)
	}
	// Trend history resumes with day one's observation: two observations
	// of an identical total classify as stable, not unknown.
	key := (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()
	if v := store2.Tracker().Verdict(key); v != TrendStable {
		t.Errorf("post-restart verdict = %v, want stable (history resumed)", v)
	}
	// Budget seeding: flaky burned its budget yesterday, so today it is
	// probed once (seed = budget-1 leaves a single probe) and the rest
	// short-circuit.
	if got := flakyHits.Load(); got != 1 {
		t.Errorf("post-restart flaky fetches = %d, want 1 (reduced probe budget)", got)
	}
	exhausted := 0
	for _, f := range sweep2.Failures {
		if errors.Is(f.Err, ErrBudgetExhausted) {
			exhausted++
		}
	}
	if exhausted != 3 {
		t.Errorf("short-circuited instances = %d, want 3", exhausted)
	}
}

// TestErrorBudgetSeeding pins the seeding rule: yesterday's failures
// pre-spend today's budget but always leave at least one probe.
func TestErrorBudgetSeeding(t *testing.T) {
	b := newErrorBudget(3, map[string]int{"down": 10, "blip": 1, "ok": 0})
	if b.exhausted("down") {
		t.Error("seeded service must keep at least one probe")
	}
	b.spend("down")
	if !b.exhausted("down") {
		t.Error("one failure after a heavy seed should exhaust the budget")
	}
	b.spend("blip")
	if b.exhausted("blip") { // 1 seeded + 1 new = 2 < 3
		t.Error("light seed exhausted too early")
	}
	if b.exhausted("ok") || b.exhausted("fresh") {
		t.Error("unseeded services must start with a full budget")
	}
	if seeded := newErrorBudget(1, map[string]int{"down": 5}); seeded.exhausted("down") {
		t.Error("budget of 1 cannot be pre-spent")
	}
}

// blockingSink stalls in SweepDone until released — the pathological
// slow sink (a hung metrics push) the concurrent fan-out must isolate.
type blockingSink struct {
	release chan struct{}
	done    atomic.Bool
}

func (s *blockingSink) Snapshot(*gprofile.Snapshot) {}
func (s *blockingSink) SweepDone(*Sweep) error {
	<-s.release
	s.done.Store(true)
	return errors.New("metrics push failed")
}

// TestSinkFanOutConcurrent proves the fan-out decouples sinks: the
// report sink files its alerts while another sink is stalled mid-
// SweepDone, and the stalled sink's error still joins the sweep result
// once the drain barrier completes.
func TestSinkFanOutConcurrent(t *testing.T) {
	leaky := &gprofile.Snapshot{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}
	stalled := &blockingSink{release: make(chan struct{})}
	reportSink := &ReportSink{Reporter: &Reporter{DB: report.NewDB(), TopN: 5}}
	pipe := New(WithThreshold(100)).AddSinks(stalled, reportSink)

	type result struct {
		sweep *Sweep
		err   error
	}
	sweepDone := make(chan result, 1)
	go func() {
		sweep, err := pipe.Sweep(context.Background(), FromSnapshots([]*gprofile.Snapshot{leaky}))
		sweepDone <- result{sweep, err}
	}()

	// The report sink must complete while the other sink is still
	// stalled: alerting does not wait for the slowest sink.
	deadline := time.Now().Add(5 * time.Second)
	for len(reportSink.LastAlerts()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("report sink did not complete while another sink was stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if stalled.done.Load() {
		t.Fatal("stalled sink finished first; test proves nothing")
	}
	select {
	case <-sweepDone:
		t.Fatal("Sweep returned before the drain barrier: stalled sink was not drained")
	default:
	}

	close(stalled.release)
	res := <-sweepDone
	if res.err == nil || !strings.Contains(res.err.Error(), "metrics push failed") {
		t.Errorf("sweep error = %v, want the stalled sink's error joined in", res.err)
	}
	if len(res.sweep.Findings) != 1 {
		t.Errorf("findings = %+v", res.sweep.Findings)
	}
}

// TestSweepArchiveReplayUsesManifestTimestamps drives the multi-sweep
// archive round trip: two sweeps recorded on different (fake) days
// rotate into manifested subdirectories, and a later replay reconstructs
// both sweeps at their recorded times — so the trend tracker sees the
// original two-day history, not two sweeps at replay time.
func TestSweepArchiveReplayUsesManifestTimestamps(t *testing.T) {
	base := t.TempDir()
	archive, err := NewSweepArchiveSink(base)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Unix(0, 0)
	clock := func() time.Time { return day }
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}

	recorder := New(WithThreshold(100), WithClock(clock)).AddSinks(archive)
	for i := 0; i < 2; i++ {
		if _, err := recorder.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
			t.Fatal(err)
		}
		day = day.Add(24 * time.Hour)
	}
	if archive.Written() != 2 {
		t.Fatalf("archived %d snapshots, want 2", archive.Written())
	}
	for _, sub := range []string{"sweep-0001", "sweep-0002"} {
		if _, err := os.Stat(filepath.Join(base, sub, gprofile.ManifestName)); err != nil {
			t.Fatalf("missing manifest: %v", err)
		}
	}

	// Replay much later: the fake replay clock is far from the recorded
	// days, so matching timestamps can only come from the manifests.
	tracker := &TrendTracker{MinObservations: 2}
	replayer := New(
		WithThreshold(100),
		WithClock(func() time.Time { return time.Unix(0, 0).Add(1000 * 24 * time.Hour) }),
	).AddSinks(&TrendSink{Tracker: tracker})
	sweeps, err := replayer.Replay(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 2 {
		t.Fatalf("replayed %d sweeps, want 2", len(sweeps))
	}
	for i, sweep := range sweeps {
		want := time.Unix(0, 0).Add(time.Duration(i) * 24 * time.Hour)
		if !sweep.At.Equal(want) {
			t.Errorf("sweep %d replayed at %v, want recorded %v", i, sweep.At, want)
		}
		if sweep.Profiles != 1 {
			t.Errorf("sweep %d profiles = %d", i, sweep.Profiles)
		}
	}
	// Identical totals one day apart: stable — a verdict only reachable
	// when both observations carry their recorded, distinct timestamps.
	key := (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()
	if v := tracker.Verdict(key); v != TrendStable {
		t.Errorf("replayed verdict = %v, want stable", v)
	}

	// A restarted recorder appends after the existing rotations instead
	// of overwriting them.
	archive2, err := NewSweepArchiveSink(base)
	if err != nil {
		t.Fatal(err)
	}
	recorder2 := New(WithThreshold(100), WithClock(clock)).AddSinks(archive2)
	if _, err := recorder2.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(base, "sweep-0003", gprofile.ManifestName)); err != nil {
		t.Errorf("restarted archive did not rotate to sweep-0003: %v", err)
	}
}

// TestStateStoreJournalSafety pins the journal's failure modes: corrupt
// and future-versioned manifests and legacy journals refuse to load
// (silently dropping filed bugs would re-page every owner), a manifest
// pointing at missing segments refuses, and saves leave no staging
// litter behind.
func TestStateStoreJournalSafety(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, StateFileName)
	manifest := filepath.Join(dir, StateManifestName)

	if err := os.WriteFile(legacy, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil {
		t.Error("corrupt v1 journal must not load silently")
	}
	futureV1, _ := json.Marshal(map[string]any{"format_version": StateVersion + 1})
	if err := os.WriteFile(legacy, futureV1, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("future v1 journal error = %v", err)
	}
	if err := os.Remove(legacy); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(manifest, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil {
		t.Error("corrupt manifest must not load silently")
	}
	future, _ := json.Marshal(map[string]any{"format_version": StateVersion + 1, "base_segment": 1})
	if err := os.WriteFile(manifest, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("future manifest error = %v", err)
	}
	// A manifest pointing at segments that do not exist means the state
	// was lost out from under the journal; refusing beats resurrecting
	// an empty store that re-alerts every owner.
	valid, _ := json.Marshal(map[string]any{"format_version": StateVersion, "base_segment": 3})
	if err := os.WriteFile(manifest, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("dangling manifest error = %v", err)
	}
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}

	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	// Exactly the snapshot segment and the manifest — no staging temp
	// files left behind — and the journal round-trips.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{StateManifestName, "segment-0001.log"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("state dir contents = %v, want %v", names, want)
	}
	if _, err := OpenStateStore(dir); err != nil {
		t.Errorf("freshly saved journal failed to load: %v", err)
	}
}

// --- segmented-journal test helpers -----------------------------------

// readJournalFrames decodes every frame in one segment file.
func readJournalFrames(t *testing.T, path string) []journalRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	remaining := fi.Size()
	br := bufio.NewReader(f)
	// Version-3 frames reference the segment's cumulative dictionary, so
	// reading a segment means threading one decoder across its frames —
	// exactly what replaySegment does.
	var dec segDecoder
	var out []journalRecord
	for {
		payload, n, err := readFrame(br, remaining)
		if err == io.EOF {
			return out
		}
		remaining -= n
		if err != nil {
			t.Fatalf("frame in %s: %v", path, err)
		}
		rec, err := dec.decodePayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil { // dictionary seed frame: no record
			continue
		}
		out = append(out, *rec)
	}
}

// svcKey is the finding key journalSweep files bugs and trend under.
func svcKey(loc string) string {
	return (&Finding{Service: "svc", Op: "send", Location: loc}).Key()
}

// journalSweep drives one synthetic sweep through a store: file the
// given bug keys, observe them as trend totals, and record the outcome.
func journalSweep(t *testing.T, store *StateStore, day int, keys map[string]int) {
	t.Helper()
	at := time.Unix(0, 0).Add(time.Duration(day) * 24 * time.Hour)
	var findings []*Finding
	for loc, total := range keys {
		f := &Finding{Service: "svc", Op: "send", Location: loc, TotalBlocked: total}
		store.BugDB().File(report.Bug{Key: f.Key(), Service: "svc", Op: "send", Location: loc, FiledAt: at})
		findings = append(findings, f)
	}
	store.Tracker().Observe(at, findings)
	if err := store.RecordSweep(&Sweep{At: at, Source: "test", Profiles: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestStateStoreDeltaAppend pins the tentpole property at the format
// level: each recorded sweep appends exactly one frame carrying only
// what the sweep changed, and recovery replays the frames back into the
// full state.
func TestStateStoreDeltaAppend(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100, "/b.go:2": 50})
	journalSweep(t, store, 2, map[string]int{"/a.go:1": 120}) // re-sighting: only /a.go:1 changed
	store.Close()

	frames := readJournalFrames(t, store.segmentPath(1))
	if len(frames) != 2 {
		t.Fatalf("journal has %d frames, want 2 (one per sweep)", len(frames))
	}
	if frames[0].Kind != recordDelta || len(frames[0].Bugs) != 2 {
		t.Errorf("frame 1 = %s with %d bugs, want delta with 2", frames[0].Kind, len(frames[0].Bugs))
	}
	// The second sweep touched one key; its frame must carry one bug —
	// the delta — not the whole database.
	if len(frames[1].Bugs) != 1 || frames[1].Bugs[0].Key != svcKey("/a.go:1") {
		t.Errorf("frame 2 bugs = %+v, want only the re-sighted key", frames[1].Bugs)
	}
	if frames[1].Bugs[0].Sightings != 2 {
		t.Errorf("re-sighted bug journaled with %d sightings, want 2", frames[1].Bugs[0].Sightings)
	}
	if len(frames[1].Trend) != 1 {
		t.Errorf("frame 2 trend keys = %d, want 1", len(frames[1].Trend))
	}

	// Recovery accumulates the deltas back into the full state.
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if bug, ok := re.BugDB().Get(svcKey("/a.go:1")); !ok || bug.Sightings != 2 {
		t.Errorf("recovered bug = %+v ok=%v, want 2 sightings", bug, ok)
	}
	if bug, ok := re.BugDB().Get(svcKey("/b.go:2")); !ok || bug.Sightings != 1 {
		t.Errorf("recovered bug = %+v ok=%v, want 1 sighting", bug, ok)
	}
	if last := re.LastSweep(); last == nil || !last.At.Equal(time.Unix(0, 0).Add(48*time.Hour)) {
		t.Errorf("recovered last sweep = %+v", last)
	}
	if got := len(re.Tracker().Export()[svcKey("/a.go:1")]); got != 2 {
		t.Errorf("recovered trend history length = %d, want 2", got)
	}
}

// TestStateStoreV1Migration proves a state dir written in the v1
// monolithic format opens seamlessly and is migrated to segments by the
// next recorded sweep, after which the v1 file is gone and a reopen sees
// the union of migrated and new state.
func TestStateStoreV1Migration(t *testing.T) {
	dir := t.TempDir()
	v1Key := svcKey("/old.go:1")
	v1 := stateJournalV1{
		FormatVersion: 1,
		SavedAt:       time.Unix(1000, 0),
		Bugs: []report.Bug{{
			Key: v1Key, Service: "svc", Op: "send",
			Location: "/old.go:1", Sightings: 3, Status: report.StatusAcknowledged,
		}},
		Trend: map[string][]TrendObservation{
			v1Key: {
				{At: time.Unix(0, 0), Total: 100},
				{At: time.Unix(0, 0).Add(24 * time.Hour), Total: 100},
			},
		},
		LastSweep: &SweepRecord{At: time.Unix(900, 0), Source: "v1", Profiles: 7,
			FailedByService: map[string]int{"flaky": 2}},
	}
	body, err := json.MarshalIndent(&v1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, StateFileName), body, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("v1 journal failed to open: %v", err)
	}
	if bug, ok := store.BugDB().Get(v1Key); !ok || bug.Sightings != 3 || bug.Status != report.StatusAcknowledged {
		t.Fatalf("migrated bug = %+v ok=%v", bug, ok)
	}
	if store.LastFailureCounts()["flaky"] != 2 {
		t.Fatalf("migrated budget seed = %+v", store.LastFailureCounts())
	}

	// The next sweep migrates: segments + manifest appear, state.json goes.
	journalSweep(t, store, 2, map[string]int{"/new.go:9": 40})
	store.Close()
	if _, err := os.Stat(filepath.Join(dir, StateFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("v1 state.json survived migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, StateManifestName)); err != nil {
		t.Errorf("migration wrote no manifest: %v", err)
	}
	frames := readJournalFrames(t, store.segmentPath(store.activeSeq))
	if len(frames) != 1 || frames[0].Kind != recordSnapshot {
		t.Fatalf("migration frames = %+v, want one snapshot", frames)
	}

	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if bug, ok := re.BugDB().Get(v1Key); !ok || bug.Sightings != 3 {
		t.Errorf("post-migration bug = %+v ok=%v", bug, ok)
	}
	if _, ok := re.BugDB().Get(svcKey("/new.go:9")); !ok {
		t.Error("post-migration sweep's bug lost")
	}
	if got := len(re.Tracker().Export()[v1Key]); got != 2 {
		t.Errorf("post-migration trend history = %d observations, want 2", got)
	}
}

// TestStateStoreTornTailRecovery proves recovery after a crash
// mid-append: whatever tears the tail of the active segment — a partial
// frame header, a frame cut short, an implausible length, a checksum
// flip — the store reopens with at most the in-flight sweep lost, and
// subsequent appends continue cleanly.
func TestStateStoreTornTailRecovery(t *testing.T) {
	tears := []struct {
		name string
		tear func(t *testing.T, path string)
		// lostLast reports whether the final recorded sweep is lost (the
		// tear damaged its frame) or only un-recorded garbage is lost.
		lostLast bool
	}{
		{"partial-header", func(t *testing.T, path string) { appendBytes(t, path, []byte{0x00, 0x00, 0x01}) }, false},
		{"truncated-payload", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0x00, 0x00, 0x00, 0x64, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'})
		}, false},
		{"implausible-length", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 'j', 'u', 'n', 'k'})
		}, false},
		{"checksum-flip", func(t *testing.T, path string) {
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			body[len(body)-2] ^= 0xff // corrupt the last frame's payload
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStateStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
			journalSweep(t, store, 2, map[string]int{"/b.go:2": 50})
			journalSweep(t, store, 3, map[string]int{"/c.go:3": 25})
			store.Close()
			tc.tear(t, store.segmentPath(1))

			re, err := OpenStateStore(dir)
			if err != nil {
				t.Fatalf("torn tail failed recovery: %v", err)
			}
			if _, ok := re.BugDB().Get(svcKey("/a.go:1")); !ok {
				t.Error("sweep 1 lost")
			}
			if _, ok := re.BugDB().Get(svcKey("/b.go:2")); !ok {
				t.Error("sweep 2 lost")
			}
			_, gotThird := re.BugDB().Get(svcKey("/c.go:3"))
			if gotThird == tc.lostLast {
				t.Errorf("sweep 3 present = %v, want %v", gotThird, !tc.lostLast)
			}
			wantDay := 3
			if tc.lostLast {
				wantDay = 2
			}
			wantAt := time.Unix(0, 0).Add(time.Duration(wantDay) * 24 * time.Hour)
			if last := re.LastSweep(); last == nil || !last.At.Equal(wantAt) {
				t.Errorf("recovered last sweep = %+v, want day %d", last, wantDay)
			}

			// The truncated journal accepts appends again.
			journalSweep(t, re, 4, map[string]int{"/d.go:4": 12})
			re.Close()
			re2, err := OpenStateStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if _, ok := re2.BugDB().Get(svcKey("/d.go:4")); !ok {
				t.Error("post-recovery sweep lost")
			}
		})
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStateStoreMidCompactionCrash drives both compaction crash windows:
// a crash before the manifest pointer swings (the half-written snapshot
// segment is a torn tail; the old segments are still live) and a crash
// after it (already-folded leftovers below the pointer are swept up).
// Either way recovery loses nothing that was recorded.
func TestStateStoreMidCompactionCrash(t *testing.T) {
	// segmentBytes=1 forces every sweep into its own segment, the
	// multi-segment layout compaction exists for.
	open := func(dir string) *StateStore {
		store, err := OpenStateStore(dir, StateCompaction(1, 100))
		if err != nil {
			t.Fatal(err)
		}
		return store
	}
	seed := func(dir string) *StateStore {
		store := open(dir)
		journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
		journalSweep(t, store, 2, map[string]int{"/b.go:2": 50})
		journalSweep(t, store, 3, map[string]int{"/c.go:3": 25})
		if store.SegmentCount() != 3 {
			t.Fatalf("seed segments = %d, want 3", store.SegmentCount())
		}
		return store
	}
	verify := func(t *testing.T, dir string) {
		re, err := OpenStateStore(dir)
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer re.Close()
		for _, key := range []string{"/a.go:1", "/b.go:2", "/c.go:3"} {
			if _, ok := re.BugDB().Get(svcKey(key)); !ok {
				t.Errorf("recorded sweep for %s lost", key)
			}
		}
		if last := re.LastSweep(); last == nil || !last.At.Equal(time.Unix(0, 0).Add(72*time.Hour)) {
			t.Errorf("recovered last sweep = %+v", last)
		}
	}

	t.Run("crash-before-pointer-swing", func(t *testing.T) {
		dir := t.TempDir()
		store := seed(dir)
		store.Close()
		// The snapshot segment was being written when the crash hit: a
		// torn frame in a fresh segment, manifest still pointing at the
		// old base.
		appendBytes(t, store.segmentPath(4), []byte{0x00, 0x01, 0x02})
		verify(t, dir)
	})

	t.Run("crash-after-pointer-swing", func(t *testing.T) {
		dir := t.TempDir()
		store := seed(dir)
		if err := store.Compact(); err != nil {
			t.Fatal(err)
		}
		if store.SegmentCount() != 1 {
			t.Fatalf("post-compaction segments = %d, want 1", store.SegmentCount())
		}
		store.Close()
		// The crash hit after the pointer swung but before the old
		// segments were deleted: recreate one as a leftover.
		appendBytes(t, store.segmentPath(2), []byte("stale pre-compaction garbage"))
		verify(t, dir)
		if _, err := os.Stat(store.segmentPath(2)); !errorsIsNotExist(err) {
			t.Errorf("pre-compaction leftover survived recovery: %v", err)
		}
	})
}

func errorsIsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// TestStateStoreTrendRetention pins the retention acceptance criterion:
// with retention N, no key holds more than N observations — in the live
// tracker, in the compacted journal, and after recovery.
func TestStateStoreTrendRetention(t *testing.T) {
	const retention = 3
	dir := t.TempDir()
	store, err := OpenStateStore(dir, StateTrendRetention(retention))
	if err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 7; day++ {
		journalSweep(t, store, day, map[string]int{"/hot.go:1": 100 * day})
	}
	if got := len(store.Tracker().Export()[svcKey("/hot.go:1")]); got != retention {
		t.Fatalf("live history = %d observations, want %d", got, retention)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	frames := readJournalFrames(t, store.segmentPath(store.activeSeq))
	if len(frames) != 1 || frames[0].Kind != recordSnapshot {
		t.Fatalf("compacted journal = %+v, want one snapshot frame", frames)
	}
	for key, obs := range frames[0].Trend {
		if len(obs) > retention {
			t.Errorf("compacted journal holds %d observations for %s, want <= %d", len(obs), key, retention)
		}
	}
	// The retained window is the *most recent* N: the last observation
	// must be day 7's total.
	obs := frames[0].Trend[svcKey("/hot.go:1")]
	if len(obs) == 0 || obs[len(obs)-1].Total != 700 {
		t.Errorf("retained window = %+v, want it to end at total 700", obs)
	}

	re, err := OpenStateStore(dir, StateTrendRetention(retention))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Tracker().Export()[svcKey("/hot.go:1")]); got != retention {
		t.Errorf("recovered history = %d observations, want %d", got, retention)
	}
}

// TestStateStoreCompactionThreshold proves the pipeline-visible loop:
// deltas roll segments, crossing the segment bound compacts back to one
// snapshot segment, and the fold loses nothing.
func TestStateStoreCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	// Every frame rolls (segmentBytes=1); more than 3 live segments
	// compacts.
	store, err := OpenStateStore(dir, StateCompaction(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 4; day++ {
		journalSweep(t, store, day, map[string]int{"/k.go:1": 10 * day})
	}
	// Sweep 4 pushed the journal past 3 segments and triggered the fold —
	// concurrently, so Flush provides the barrier a test needs.
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := store.SegmentCount(); got != 1 {
		t.Errorf("segments after threshold crossing = %d, want 1 (compacted)", got)
	}
	journalSweep(t, store, 5, map[string]int{"/k.go:1": 50})
	store.Close()

	re, err := OpenStateStore(dir, StateCompaction(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if bug, ok := re.BugDB().Get(svcKey("/k.go:1")); !ok || bug.Sightings != 5 {
		t.Errorf("recovered bug = %+v ok=%v, want 5 sightings", bug, ok)
	}
	if got := len(re.Tracker().Export()[svcKey("/k.go:1")]); got != 5 {
		t.Errorf("recovered history = %d observations, want 5", got)
	}
}

// TestStateJournalStampsPipelineClock pins the deterministic-timestamps
// satellite: a pipeline run under a fake clock journals frames whose
// SavedAt comes from that clock, not the wall clock.
func TestStateJournalStampsPipelineClock(t *testing.T) {
	dir := t.TempDir()
	fake := time.Unix(0, 0).Add(42 * 24 * time.Hour)
	pipe := New(
		WithThreshold(100),
		WithStateDir(dir),
		WithClock(func() time.Time { return fake }),
	)
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}
	if _, err := pipe.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
		t.Fatal(err)
	}
	store, err := pipe.State()
	if err != nil {
		t.Fatal(err)
	}
	frames := readJournalFrames(t, store.segmentPath(store.activeSeq))
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	if !frames[0].SavedAt.Equal(fake) {
		t.Errorf("journal SavedAt = %v, want the fake clock's %v", frames[0].SavedAt, fake)
	}
}

// TestSweepArchiveRetention drives the archive max-sweeps knob: with
// KeepSweeps(2), four recorded sweeps leave only the two newest
// manifested subdirectories, while an unmanifested (in-progress or torn)
// directory is never touched.
func TestSweepArchiveRetention(t *testing.T) {
	base := t.TempDir()
	archive, err := NewSweepArchiveSink(base, KeepSweeps(2))
	if err != nil {
		t.Fatal(err)
	}
	day := time.Unix(0, 0)
	pipe := New(WithThreshold(100), WithClock(func() time.Time { return day })).AddSinks(archive)
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}

	// An unfinalised sweep directory (profile members, no manifest):
	// pruning must never delete it.
	torn := filepath.Join(base, "sweep-0500")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, "pay_i9.txt"), []byte("goroutine 1 [running]:\nmain.m()\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		if _, err := pipe.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
			t.Fatal(err)
		}
		day = day.Add(24 * time.Hour)
	}

	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	// The torn directory appeared after the sink was constructed, so
	// rotation numbered the recorded sweeps 0001..0004; retention keeps
	// the newest two manifested sweeps and never touches the torn dir.
	want := []string{"sweep-0003", "sweep-0004", "sweep-0500"}
	if !reflect.DeepEqual(dirs, want) {
		t.Errorf("archive dirs after retention = %v, want %v", dirs, want)
	}
}

// TestStateStoreFailedAppendRequeuesDelta pins the durability repair
// contract: an append that never became durable hands its drained delta
// back, so the next successful persist journals it rather than losing
// the sweep's filings forever.
func TestStateStoreFailedAppendRequeuesDelta(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})

	// Sabotage the active handle: a read-only fd makes the next append's
	// write fail the way a yanked disk would.
	broken, err := os.Open(store.segmentPath(1))
	if err != nil {
		t.Fatal(err)
	}
	store.active.Close()
	store.active = broken

	at := time.Unix(0, 0).Add(48 * time.Hour)
	f := &Finding{Service: "svc", Op: "send", Location: "/b.go:2", TotalBlocked: 50}
	store.BugDB().File(report.Bug{Key: f.Key(), Service: "svc", Op: "send", Location: "/b.go:2", FiledAt: at})
	store.Tracker().Observe(at, []*Finding{f})
	if err := store.RecordSweep(&Sweep{At: at, Source: "test", Profiles: 10}); err == nil {
		t.Fatal("append through a read-only fd did not error")
	}
	// The failed frame's delta must be pending again.
	if store.BugDB().DirtyCount() != 1 {
		t.Fatalf("dirty keys after failed append = %d, want 1 (requeued)", store.BugDB().DirtyCount())
	}

	// Heal the handle; the next sweep journals the requeued delta too.
	broken.Close()
	store.active = nil
	journalSweep(t, store, 3, map[string]int{"/c.go:3": 25})
	store.Close()

	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, loc := range []string{"/a.go:1", "/b.go:2", "/c.go:3"} {
		if _, ok := re.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("bug for %s lost across the failed append", loc)
		}
	}
	if got := len(re.Tracker().Export()[svcKey("/b.go:2")]); got != 1 {
		t.Errorf("requeued trend observation journaled %d times, want 1", got)
	}
}

// TestStateStoreFailedCompactionKeepsState pins the failed-fold repair
// contract: a compaction that cannot swing the manifest removes its
// orphan snapshot segment (which would otherwise replay over later
// deltas) and leaves the un-folded delta pending.
func TestStateStoreFailedCompactionKeepsState(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})

	// A directory squatting on the manifest name makes the atomic rename
	// fail after the snapshot segment is fully written.
	blocker := filepath.Join(dir, StateManifestName)
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err == nil {
		t.Fatal("compaction renamed its manifest over a directory")
	}
	if _, serr := os.Stat(store.segmentPath(2)); !errors.Is(serr, os.ErrNotExist) {
		t.Error("failed compaction left its orphan snapshot segment behind")
	}

	// Unblock and record another sweep: both sweeps must survive a
	// reopen, proving no state was stranded in the failed fold.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 2, map[string]int{"/b.go:2": 50})
	store.Close()
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, loc := range []string{"/a.go:1", "/b.go:2"} {
		if _, ok := re.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("bug for %s lost across the failed compaction", loc)
		}
	}
}

// TestSweepReportsSalvagedProfiles pins the live-collection half of the
// resync satellite: a dump whose scan resynced past corrupt members is
// emitted (Profiles) *and* lands in the sweep's error accounting (Fail),
// matching the archive replay path's carve-out.
func TestSweepReportsSalvagedProfiles(t *testing.T) {
	torn := "goroutine 1 [chan send]:\npay.leak()\n\t/pay/l.go:5 +0x2b\n" +
		"goroutine 99 [chan send:\ntorn.member()\n" +
		"goroutine 2 [chan send]:\npay.leak()\n\t/pay/l.go:5 +0x2b\n"
	pipe := New(WithThreshold(1))
	sweep, err := pipe.Sweep(context.Background(), Dumps(Dump{Service: "pay", Instance: "i1", Body: strings.NewReader(torn)}))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Profiles != 1 || sweep.Errors != 1 {
		t.Fatalf("sweep = %d profiles, %d errors; want 1 and 1 (salvaged counts in both)", sweep.Profiles, sweep.Errors)
	}
	if len(sweep.Failures) != 1 || !strings.Contains(sweep.Failures[0].Err.Error(), "1 malformed") {
		t.Fatalf("failures = %+v, want one salvage report", sweep.Failures)
	}
	// The salvaged records still reached the aggregator.
	if len(sweep.Findings) != 1 || sweep.Findings[0].TotalBlocked != 2 {
		t.Fatalf("findings = %+v, want the 2 salvaged goroutines", sweep.Findings)
	}
}

// TestStateStoreMidSegmentCorruptionRefuses pins the other half of the
// torn-tail contract: a checksum failure with durable frames *after* it
// cannot be a torn append, so recovery refuses instead of silently
// truncating committed sweeps away.
func TestStateStoreMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
	firstFrameEnd, err := os.Stat(store.segmentPath(1))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 2, map[string]int{"/b.go:2": 50})
	store.Close()

	// Flip a byte inside the *first* frame: valid frame 2 follows it.
	body, err := os.ReadFile(store.segmentPath(1))
	if err != nil {
		t.Fatal(err)
	}
	body[firstFrameEnd.Size()-2] ^= 0xff
	if err := os.WriteFile(store.segmentPath(1), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStateStore(dir); err == nil || !strings.Contains(err.Error(), "corrupt journal frame") {
		t.Errorf("mid-segment corruption open = %v, want a corrupt-frame refusal", err)
	}
}

// TestSalvageDoesNotSeedErrorBudget pins the budget exemption: a sweep
// whose only failures are salvage reports journals no per-service
// failure counts, so the next sweep's error budget starts full.
func TestSalvageDoesNotSeedErrorBudget(t *testing.T) {
	torn := "goroutine 1 [chan send]:\npay.leak()\n\t/pay/l.go:5 +0x2b\n" +
		"goroutine 99 [chan send:\ntorn.member()\n"
	pipe := New(WithThreshold(1))
	sweep, err := pipe.Sweep(context.Background(), Dumps(Dump{Service: "pay", Instance: "i1", Body: strings.NewReader(torn)}))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Errors != 1 || len(sweep.Failures) != 1 {
		t.Fatalf("sweep = %d errors %d failures, want 1 and 1", sweep.Errors, len(sweep.Failures))
	}
	if !errors.Is(sweep.Failures[0].Err, gprofile.ErrSalvaged) {
		t.Errorf("salvage failure not marked: %v", sweep.Failures[0].Err)
	}
	if len(sweep.FailedByService) != 0 {
		t.Errorf("FailedByService = %+v, want empty (salvage is not downness)", sweep.FailedByService)
	}
}

// TestSweepArchiveRetentionKeepsNewestRecording pins prune ordering:
// recording *older* history (an archive replay) into a retained archive
// must not delete the just-finalised sweep, because retention orders by
// recording sequence, not manifested sweep time.
func TestSweepArchiveRetentionKeepsNewestRecording(t *testing.T) {
	base := t.TempDir()
	archive, err := NewSweepArchiveSink(base, KeepSweeps(2))
	if err != nil {
		t.Fatal(err)
	}
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}
	// Two sweeps recorded at day 100 and day 101, then a replayed sweep
	// whose manifested time is day 1 — far older than everything else.
	days := []time.Duration{100 * 24 * time.Hour, 101 * 24 * time.Hour, 24 * time.Hour}
	var now time.Duration
	pipe := New(WithThreshold(100), WithClock(func() time.Time { return time.Unix(0, 0).Add(now) })).AddSinks(archive)
	for _, d := range days {
		now = d
		if _, err := pipe.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		dirs = append(dirs, e.Name())
	}
	sort.Strings(dirs)
	// The day-1 recording is the newest rotation (sweep-0003): it and
	// sweep-0002 survive; by-time pruning would have deleted it instead.
	want := []string{"sweep-0002", "sweep-0003"}
	if !reflect.DeepEqual(dirs, want) {
		t.Errorf("retained dirs = %v, want %v (recording order)", dirs, want)
	}
}

// writeLegacySegment writes a segment of version-2 binary frames — the
// pre-dictionary, self-contained encoding existing journals on disk
// carry — so recovery's fallback decode path is exercised against real
// old-format bytes, not a simulation.
func writeLegacySegment(t *testing.T, path string, recs []journalRecord) {
	t.Helper()
	var buf bytes.Buffer
	for i := range recs {
		payload, err := encodeBinaryRecordLegacy(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame.New(payload))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStateStoreLegacyCodecRecovery proves codec-version compatibility
// both ways: a journal written entirely in the version-2 frame format
// recovers into the same state, and a store opened over it appends
// version-3 dictionary frames to the same segment — a mixed-codec
// journal — that replays cleanly on the next open.
func TestStateStoreLegacyCodecRecovery(t *testing.T) {
	dir := t.TempDir()
	day := func(d int) time.Time { return time.Unix(0, 0).Add(time.Duration(d) * 24 * time.Hour) }
	legacy := []journalRecord{
		{
			Kind: recordDelta, SavedAt: day(1),
			Bugs: []report.Bug{{Key: svcKey("/old.go:1"), Service: "svc", Op: "send",
				Location: "/old.go:1", Sightings: 1, FiledAt: day(1)}},
			Trend: map[string][]TrendObservation{svcKey("/old.go:1"): {{At: day(1), Total: 100}}},
			Sweep: &SweepRecord{At: day(1), Source: "test", Profiles: 10},
		},
		{
			Kind: recordDelta, SavedAt: day(2),
			Bugs: []report.Bug{{Key: svcKey("/old.go:2"), Service: "svc", Op: "send",
				Location: "/old.go:2", Sightings: 1, FiledAt: day(2)}},
			Sweep: &SweepRecord{At: day(2), Source: "test", Profiles: 10},
		},
	}
	writeLegacySegment(t, filepath.Join(dir, "segment-0001.log"), legacy)

	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("legacy journal failed recovery: %v", err)
	}
	for _, loc := range []string{"/old.go:1", "/old.go:2"} {
		if _, ok := store.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("legacy bug %s lost", loc)
		}
	}
	if last := store.LastSweep(); last == nil || !last.At.Equal(day(2)) {
		t.Fatalf("legacy last sweep = %+v", last)
	}
	// New sweeps append v3 dictionary frames behind the v2 frames in the
	// same segment: v2 frames are self-contained and consume no
	// dictionary slots, so the mixed segment stays in writer/reader
	// lockstep.
	journalSweep(t, store, 3, map[string]int{"/new.go:3": 25})
	journalSweep(t, store, 4, map[string]int{"/new.go:3": 30})
	store.Close()

	frames := readJournalFrames(t, store.segmentPath(1))
	if len(frames) != 4 {
		t.Fatalf("mixed segment has %d record frames, want 4", len(frames))
	}
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("mixed-codec journal failed recovery: %v", err)
	}
	defer re.Close()
	for _, loc := range []string{"/old.go:1", "/old.go:2", "/new.go:3"} {
		if _, ok := re.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("mixed-codec recovery lost %s", loc)
		}
	}
	if bug, _ := re.BugDB().Get(svcKey("/new.go:3")); bug.Sightings != 2 {
		t.Errorf("v3 re-sighting = %d sightings, want 2", bug.Sightings)
	}
	if last := re.LastSweep(); last == nil || !last.At.Equal(day(4)) {
		t.Errorf("mixed-codec last sweep = %+v", last)
	}
}

// TestStateStoreTornDictionaryFrame tears the active segment inside its
// head dictionary-seed frame: recovery must truncate the tail (the seed
// and everything after it in that segment), keep every prior segment's
// state, and keep appending — the rebuilt in-memory dictionary must
// stay in lockstep with what survived on disk.
func TestStateStoreTornDictionaryFrame(t *testing.T) {
	dir := t.TempDir()
	// segmentBytes=1 rolls every sweep into a fresh segment, each opening
	// with a dictionary seed carried from the previous segment.
	store, err := OpenStateStore(dir, StateCompaction(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
	journalSweep(t, store, 2, map[string]int{"/b.go:2": 50})
	journalSweep(t, store, 3, map[string]int{"/c.go:3": 25})
	if store.SegmentCount() != 3 {
		t.Fatalf("segments = %d, want 3", store.SegmentCount())
	}
	store.Close()

	// Tear the last segment mid-way through its first frame — the
	// dictionary seed. 11 bytes is past the 8-byte frame header but far
	// short of the seed payload.
	last := store.segmentPath(3)
	body, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, body[:11], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("torn dictionary frame failed recovery: %v", err)
	}
	if _, ok := re.BugDB().Get(svcKey("/a.go:1")); !ok {
		t.Error("sweep 1 lost")
	}
	if _, ok := re.BugDB().Get(svcKey("/b.go:2")); !ok {
		t.Error("sweep 2 lost")
	}
	if _, ok := re.BugDB().Get(svcKey("/c.go:3")); ok {
		t.Error("sweep 3 survived a tear that destroyed its segment head")
	}
	// The dictionary the torn seed would have carried is gone from disk;
	// appends must re-seed in lockstep and replay cleanly.
	journalSweep(t, re, 4, map[string]int{"/a.go:1": 120, "/d.go:4": 12})
	re.Close()
	re2, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("post-tear append failed recovery: %v", err)
	}
	defer re2.Close()
	for _, loc := range []string{"/a.go:1", "/b.go:2", "/d.go:4"} {
		if _, ok := re2.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("post-tear recovery lost %s", loc)
		}
	}
	if bug, _ := re2.BugDB().Get(svcKey("/a.go:1")); bug.Sightings != 2 {
		t.Errorf("re-sighted bug = %d sightings, want 2", bug.Sightings)
	}
}

// TestStateStoreDictionaryShrinksSteadyState pins the dictionary's
// point: at steady state (the same keys re-sighted sweep after sweep)
// a version-3 journal is substantially smaller than the same records
// in the self-contained version-2 encoding, because repeated strings
// are dictionary references instead of per-frame table copies.
func TestStateStoreDictionaryShrinksSteadyState(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]int{}
	for i := 0; i < 20; i++ {
		keys[fmt.Sprintf("/very/long/steady/state/path/services/payments/handler%02d.go:42", i)] = 100
	}
	const sweeps = 10
	for d := 1; d <= sweeps; d++ {
		journalSweep(t, store, d, keys)
	}
	store.Close()

	fi, err := os.Stat(store.segmentPath(1))
	if err != nil {
		t.Fatal(err)
	}
	v3Bytes := fi.Size()
	var legacyBytes int64
	for _, rec := range readJournalFrames(t, store.segmentPath(1)) {
		rec := rec
		payload, err := encodeBinaryRecordLegacy(&rec)
		if err != nil {
			t.Fatal(err)
		}
		legacyBytes += int64(len(frame.New(payload)))
	}
	if v3Bytes >= legacyBytes*2/3 {
		t.Errorf("steady-state journal = %d bytes with dictionary, %d without: want at least a third smaller",
			v3Bytes, legacyBytes)
	}
}
