package leakprof

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// frameEnds returns the cumulative end offset of every complete frame in
// a segment file — the boundaries a crash-simulation truncation cuts
// between.
func frameEnds(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	remaining := fi.Size()
	br := bufio.NewReader(f)
	var ends []int64
	var off int64
	for {
		_, n, err := readFrame(br, remaining)
		if err == io.EOF {
			return ends
		}
		if err != nil {
			t.Fatalf("frame in %s: %v", path, err)
		}
		off += n
		remaining -= n
		ends = append(ends, off)
	}
}

// TestStateStoreSyncPolicies pins the group-commit accounting: fsyncs per
// recorded sweep follow the policy, not the sweep count.
func TestStateStoreSyncPolicies(t *testing.T) {
	cases := []struct {
		name   string
		policy SyncPolicy
		sweeps int
		// syncs expected after the sweeps, and after Close.
		wantAfterSweeps int64
		wantAfterClose  int64
	}{
		{"every-sweep", SyncEverySweep, 6, 6, 6},
		{"group-commit-of-3", SyncEvery(3, 0), 6, 2, 2},
		{"group-commit-partial-window", SyncEvery(4, 0), 6, 1, 2}, // 2 unsynced at Close
		{"on-close", SyncOnClose, 6, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStateStore(dir, StateSync(tc.policy))
			if err != nil {
				t.Fatal(err)
			}
			for day := 1; day <= tc.sweeps; day++ {
				journalSweep(t, store, day, map[string]int{fmt.Sprintf("/d%d.go:1", day): 10 * day})
			}
			if got := store.journalSyncs(); got != tc.wantAfterSweeps {
				t.Errorf("syncs after %d sweeps = %d, want %d", tc.sweeps, got, tc.wantAfterSweeps)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			if got := store.journalSyncs(); got != tc.wantAfterClose {
				t.Errorf("syncs after Close = %d, want %d", got, tc.wantAfterClose)
			}
			// Whatever the policy, a clean Close left everything durable
			// and recoverable.
			re, err := OpenStateStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for day := 1; day <= tc.sweeps; day++ {
				if _, ok := re.BugDB().Get(svcKey(fmt.Sprintf("/d%d.go:1", day))); !ok {
					t.Errorf("sweep %d lost across clean Close under %s", day, tc.policy)
				}
			}
		})
	}
}

// TestStateStoreTimedGroupCommit pins the background committer: with a
// pure time window, an appended frame is synced shortly after the window
// elapses without any further store calls — the fsync rides the
// committer goroutine, not a sweep.
func TestStateStoreTimedGroupCommit(t *testing.T) {
	store, err := OpenStateStore(t.TempDir(), StateSync(SyncEvery(0, 20*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
	if got := store.journalSyncs(); got != 0 {
		t.Fatalf("append synced inline (%d syncs), want the committer to do it", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.journalSyncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("committer never synced the window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// One sync covered the window; a second window only opens with the
	// next append.
	if got := store.journalSyncs(); got != 1 {
		t.Errorf("syncs = %d, want 1 (one per window)", got)
	}
}

// TestStateStoreCrashRecoveryPerSyncPolicy is the satellite's "kill
// between append and sync" test: for each policy, simulate the crash as
// a truncation inside the unsynced window (all a fail-stop crash can
// lose) and require that recovery opens the journal, loses at most the
// unsynced window, and keeps everything synced before it.
func TestStateStoreCrashRecoveryPerSyncPolicy(t *testing.T) {
	policies := []struct {
		name   string
		policy SyncPolicy
		// syncedSweeps is how many of the 5 recorded sweeps the policy
		// guarantees durable (the rest are the unsynced window).
		syncedSweeps int
	}{
		{"every-sweep", SyncEverySweep, 5},
		{"group-commit-of-2", SyncEvery(2, 0), 4},
		{"on-close-without-close", SyncOnClose, 0},
	}
	const sweeps = 5
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStateStore(dir, StateSync(tc.policy))
			if err != nil {
				t.Fatal(err)
			}
			for day := 1; day <= sweeps; day++ {
				journalSweep(t, store, day, map[string]int{fmt.Sprintf("/d%d.go:1", day): 10 * day})
			}
			// Kill: no Flush, no Close. The file holds all appended
			// frames (the OS had them buffered); the crash may tear any
			// suffix of the unsynced window. Simulate the worst tear the
			// policy permits: truncate to the synced boundary plus half a
			// frame.
			ends := frameEnds(t, store.segmentPath(1))
			if len(ends) != sweeps {
				t.Fatalf("recorded %d frames, want %d", len(ends), sweeps)
			}
			var syncedEnd int64
			if tc.syncedSweeps > 0 {
				syncedEnd = ends[tc.syncedSweeps-1]
			}
			cut := syncedEnd
			if tc.syncedSweeps < sweeps {
				// Half of the first unsynced frame survived the crash: a
				// torn tail recovery must truncate away.
				cut = syncedEnd + (ends[tc.syncedSweeps]-syncedEnd)/2
			}
			store.active.Close() // drop the handle without syncing
			store.active = nil
			if err := os.Truncate(store.segmentPath(1), cut); err != nil {
				t.Fatal(err)
			}

			re, err := OpenStateStore(dir, StateSync(tc.policy))
			if err != nil {
				t.Fatalf("%s: crash recovery failed: %v", tc.name, err)
			}
			for day := 1; day <= tc.syncedSweeps; day++ {
				if _, ok := re.BugDB().Get(svcKey(fmt.Sprintf("/d%d.go:1", day))); !ok {
					t.Errorf("synced sweep %d lost — the policy's durability guarantee broke", day)
				}
			}
			for day := tc.syncedSweeps + 1; day <= sweeps; day++ {
				if _, ok := re.BugDB().Get(svcKey(fmt.Sprintf("/d%d.go:1", day))); ok {
					t.Errorf("unsynced sweep %d survived the simulated crash; the tear was not exercised", day)
				}
			}
			// The journal accepts appends again after the truncation.
			journalSweep(t, re, sweeps+1, map[string]int{"/post.go:1": 7})
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenStateStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if _, ok := re2.BugDB().Get(svcKey("/post.go:1")); !ok {
				t.Error("post-recovery sweep lost")
			}
		})
	}
}

// TestStateStoreMixedCodecJournal pins one-pass recovery of a journal
// whose frames span codecs: JSON deltas from a v2-era run with binary
// deltas appended behind them, in the same segment.
func TestStateStoreMixedCodecJournal(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir, StateFrameCodec(StateCodecJSON))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/json1.go:1": 100})
	journalSweep(t, store, 2, map[string]int{"/json2.go:1": 50})
	store.Close()

	// The same journal reopened with the binary codec appends binary
	// frames to the same segment.
	store2, err := OpenStateStore(dir, StateFrameCodec(StateCodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store2, 3, map[string]int{"/bin1.go:1": 25})
	journalSweep(t, store2, 4, map[string]int{"/bin2.go:1": 12})
	store2.Close()

	// The segment is literally mixed: JSON frames open with '{', binary
	// frames with the magic byte.
	f, err := os.Open(store.segmentPath(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, _ := f.Stat()
	br := bufio.NewReader(f)
	remaining := fi.Size()
	var kinds []byte
	for {
		payload, n, err := readFrame(br, remaining)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		remaining -= n
		kinds = append(kinds, payload[0])
	}
	want := []byte{'{', '{', binaryFrameMagic, binaryFrameMagic}
	if len(kinds) != len(want) {
		t.Fatalf("mixed segment holds %d frames (%v), want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("frame %d codec byte = 0x%02x, want 0x%02x", i, kinds[i], want[i])
		}
	}

	// One recovery pass replays all four.
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("mixed-codec journal failed recovery: %v", err)
	}
	defer re.Close()
	for _, loc := range []string{"/json1.go:1", "/json2.go:1", "/bin1.go:1", "/bin2.go:1"} {
		if _, ok := re.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("frame for %s lost in mixed-codec recovery", loc)
		}
	}
}

// TestStateStoreCodecNegotiation pins the manifest negotiation: a journal
// compacted under JSON keeps JSON on reopen (so v2-era readers stay
// compatible) until the caller explicitly switches, and a fresh store
// defaults to binary.
func TestStateStoreCodecNegotiation(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir, StateFrameCodec(StateCodecJSON))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/a.go:1": 100})
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	m, err := store.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Codec != StateCodecJSON || m.FormatVersion != stateVersionJSON {
		t.Errorf("JSON journal manifest = version %d codec %q, want %d/%q", m.FormatVersion, m.Codec, stateVersionJSON, StateCodecJSON)
	}

	// Reopen without pinning a codec: the store adopts the manifest's.
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.codec != StateCodecJSON {
		t.Errorf("reopened store negotiated codec %q, want the journal's json", re.codec)
	}
	re.Close()

	// A fresh store defaults to binary, and its compacted manifest
	// advertises the current version so old readers refuse cleanly.
	fresh, err := OpenStateStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.codec != StateCodecBinary {
		t.Errorf("fresh store codec = %q, want binary", fresh.codec)
	}
	journalSweep(t, fresh, 1, map[string]int{"/a.go:1": 1})
	if err := fresh.Compact(); err != nil {
		t.Fatal(err)
	}
	if m, err := fresh.readManifest(); err != nil || m.FormatVersion != StateVersion || m.Codec != StateCodecBinary {
		t.Errorf("binary journal manifest = %+v, %v; want version %d codec binary", m, err, StateVersion)
	}
	fresh.Close()
}

// TestStateStoreMidFoldSweepDurability pins the concurrent-compaction
// durability contract: a sweep recorded while a fold is in flight does
// not block on the fold, lands on disk immediately (in a segment past
// the snapshot's reserved slot, per the sync policy), and survives a
// crash that kills the fold before it completes.
func TestStateStoreMidFoldSweepDurability(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/pre.go:1": 100})

	// Hold a synthetic fold open, staged exactly as startFoldLocked
	// stages it: the snapshot slot reserved, appends rolled past it.
	store.mu.Lock()
	newSeq := store.activeSeq + 1
	if store.active != nil {
		store.active.Close()
		store.active = nil
	}
	store.activeSeq = newSeq + 1
	store.activeSize = 0
	store.segCount++
	store.rollDictLocked()
	store.folding = true
	store.foldDone = make(chan struct{})
	store.mu.Unlock()

	recorded := make(chan error, 1)
	go func() {
		at := time.Unix(0, 0).Add(48 * time.Hour)
		f := &Finding{Service: "svc", Op: "send", Location: "/mid.go:1", TotalBlocked: 50}
		store.BugDB().File(report.Bug{Key: f.Key(), Service: "svc", Op: "send", Location: "/mid.go:1", FiledAt: at})
		store.Tracker().Observe(at, []*Finding{f})
		recorded <- store.RecordSweep(&Sweep{At: at, Source: "test", Profiles: 10})
	}()
	select {
	case err := <-recorded:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecordSweep blocked on an in-flight fold")
	}
	// The mid-fold sweep is already on disk — in the segment after the
	// snapshot's slot — under the default sync-every-sweep policy.
	frames := readJournalFrames(t, store.segmentPath(newSeq+1))
	if len(frames) != 1 || len(frames[0].Bugs) != 1 || frames[0].Bugs[0].Key != svcKey("/mid.go:1") {
		t.Fatalf("mid-fold segment frames = %+v, want the sweep's delta", frames)
	}

	// Crash before the fold ever completes: the snapshot never landed,
	// and recovery must still hold both sweeps (old segment, then the
	// post-reservation delta segment across the gap).
	store.mu.Lock()
	if store.active != nil {
		store.active.Close()
		store.active = nil
	}
	store.mu.Unlock()
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatalf("mid-fold crash recovery failed: %v", err)
	}
	defer re.Close()
	for _, loc := range []string{"/pre.go:1", "/mid.go:1"} {
		if _, ok := re.BugDB().Get(svcKey(loc)); !ok {
			t.Errorf("sweep for %s lost to the mid-fold crash", loc)
		}
	}
}

// TestStateStoreConcurrentCompactionStress hammers the real concurrent
// fold: thresholds tuned so folds trigger every few sweeps while sweeps
// keep arriving, then a Flush barrier and a reopen must account for
// every sweep ever recorded.
func TestStateStoreConcurrentCompactionStress(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStateStore(dir, StateCompaction(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	const sweeps = 60
	for day := 1; day <= sweeps; day++ {
		journalSweep(t, store, day, map[string]int{fmt.Sprintf("/d%03d.go:1", day): day})
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for day := 1; day <= sweeps; day++ {
		if _, ok := re.BugDB().Get(svcKey(fmt.Sprintf("/d%03d.go:1", day))); !ok {
			t.Errorf("sweep %d lost under concurrent compaction", day)
		}
	}
	if last := re.LastSweep(); last == nil || !last.At.Equal(time.Unix(0, 0).Add(sweeps*24*time.Hour)) {
		t.Errorf("recovered last sweep = %+v, want day %d", last, sweeps)
	}
}

// TestStateStoreBugRetention pins the age-out satellite at the store
// level: closed bugs older than the window leave memory, delta frames,
// and compaction folds; open bugs and recently-seen closed bugs stay.
func TestStateStoreBugRetention(t *testing.T) {
	dir := t.TempDir()
	day := 1
	clock := func() time.Time { return time.Unix(0, 0).Add(time.Duration(day) * 24 * time.Hour) }
	store, err := OpenStateStore(dir, StateClock(clock), StateBugRetention(3*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	journalSweep(t, store, 1, map[string]int{"/open.go:1": 100, "/fixed.go:1": 50})
	if !store.BugDB().SetStatus(svcKey("/fixed.go:1"), report.StatusFixed) {
		t.Fatal("SetStatus failed")
	}

	// Day 10: the fixed bug's last sighting (day 1) is 9 days old, far
	// past the 3-day window; the open bug is just as old but immortal.
	day = 10
	journalSweep(t, store, 10, map[string]int{"/fresh.go:1": 25})
	if _, ok := store.BugDB().Get(svcKey("/fixed.go:1")); ok {
		t.Error("closed bug survived its age-out window in memory")
	}
	if _, ok := store.BugDB().Get(svcKey("/open.go:1")); !ok {
		t.Error("open bug aged out; retention must only drop closed bugs")
	}

	// The compaction fold excludes the aged bug from the snapshot.
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	frames := readJournalFrames(t, store.segmentPath(store.activeSeq))
	if len(frames) != 1 || frames[0].Kind != recordSnapshot {
		t.Fatalf("compacted journal = %+v, want one snapshot", frames)
	}
	for _, b := range frames[0].Bugs {
		if b.Key == svcKey("/fixed.go:1") {
			t.Error("aged-out bug journaled into the compaction fold")
		}
	}
	store.Close()

	// Recovery replays history that still names the aged bug; the window
	// re-applies at open.
	re, err := OpenStateStore(dir, StateClock(clock), StateBugRetention(3*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.BugDB().Get(svcKey("/fixed.go:1")); ok {
		t.Error("aged-out bug resurrected by recovery")
	}
	if _, ok := re.BugDB().Get(svcKey("/open.go:1")); !ok {
		t.Error("open bug lost in retention-aware recovery")
	}
}

// TestPipelineDetachedSinks proves the detached fan-out: Sweep returns
// while a sink is still stalled mid-SweepDone, the next sweep proceeds
// behind it, and the stalled sink's error surfaces at the Flush barrier
// instead of the sweep result.
func TestPipelineDetachedSinks(t *testing.T) {
	leaky := &gprofile.Snapshot{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}
	stalled := &blockingSink{release: make(chan struct{})}
	reportSink := &ReportSink{Reporter: &Reporter{DB: report.NewDB(), TopN: 5}}
	pipe := New(WithThreshold(100), WithDetachedSinks()).AddSinks(stalled, reportSink)

	// Sweep 1 returns while the stalled sink has not finished SweepDone.
	sweep1, err := pipe.Sweep(context.Background(), FromSnapshots([]*gprofile.Snapshot{leaky}))
	if err != nil {
		t.Fatalf("detached sweep error = %v, want nil (sink errors surface at Flush)", err)
	}
	if len(sweep1.Findings) != 1 {
		t.Fatalf("findings = %+v", sweep1.Findings)
	}
	if stalled.done.Load() {
		t.Fatal("stalled sink finished before Sweep returned; test proves nothing")
	}

	// Sweep 2 starts and completes while sweep 1's sink work is still
	// stalled: sink lag spans sweeps.
	if _, err := pipe.Sweep(context.Background(), FromSnapshots([]*gprofile.Snapshot{leaky})); err != nil {
		t.Fatal(err)
	}
	if stalled.done.Load() {
		t.Fatal("stalled sink caught up unexpectedly")
	}

	// Release the sink: both queued sweeps drain, and Flush returns the
	// accumulated errors (one per SweepDone).
	close(stalled.release)
	err = pipe.Flush()
	if err == nil || !strings.Contains(err.Error(), "metrics push failed") {
		t.Errorf("Flush error = %v, want the detached sink's errors", err)
	}
	if !stalled.done.Load() {
		t.Error("Flush returned before the detached sink drained")
	}
	// The barrier drained the errors; a second Flush is clean.
	if err := pipe.Flush(); err != nil {
		t.Errorf("second Flush = %v, want nil", err)
	}
	if err := pipe.Close(); err != nil {
		t.Errorf("Close = %v, want nil", err)
	}
}

// TestPipelineDetachedCloseJournalsLateState pins the drain-at-Close
// contract: trend observations a detached TrendSink records after the
// sweep was journaled still reach the state journal via Close's flush,
// so a restart resumes with them.
func TestPipelineDetachedCloseJournalsLateState(t *testing.T) {
	dir := t.TempDir()
	snaps := []*gprofile.Snapshot{{Service: "pay", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: 500}}}
	pipe := New(
		WithThreshold(100),
		WithDetachedSinks(),
		WithStateDir(dir),
		WithClock(func() time.Time { return time.Unix(0, 0) }),
	)
	store, err := pipe.State()
	if err != nil {
		t.Fatal(err)
	}
	pipe.AddSinks(&TrendSink{Tracker: store.Tracker()})
	if _, err := pipe.Sweep(context.Background(), FromSnapshots(snaps)); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	key := (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key()
	if got := len(re.Tracker().Export()[key]); got != 1 {
		t.Errorf("journaled trend history = %d observations, want 1 (Close drained the late delta)", got)
	}
}

// TestParseSyncPolicy covers the flag surface both cmds expose.
func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"", SyncEverySweep, false},
		{"sweep", SyncEverySweep, false},
		{"close", SyncOnClose, false},
		{"8", SyncEvery(8, 0), false},
		{"8/2s", SyncEvery(8, 2*time.Second), false},
		{"0/500ms", SyncEvery(0, 500*time.Millisecond), false},
		{"banana", SyncPolicy{}, true},
		{"8/xyz", SyncPolicy{}, true},
	}
	for _, tc := range cases {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseSyncPolicy(%q) error = %v, want error %v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
