package leakprof

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/gprofile"
)

// Endpoint identifies one profiled service instance.
type Endpoint struct {
	// Service is the owning service name.
	Service string
	// Instance is a unique instance identifier (host/task id).
	Instance string
	// URL is the full goroutine-profile URL, e.g.
	// "http://host:port/debug/pprof/goroutine?debug=2".
	URL string
}

// DefaultMaxProfileBytes bounds one profile body. The limit exists to cap
// a misbehaving endpoint, not memory: bodies stream through the scanner
// and are never buffered. A body exceeding the limit fails the fetch —
// a truncated profile would silently undercount exactly the instances
// LEAKPROF most needs to see.
const DefaultMaxProfileBytes = 256 << 20

// Collector fetches goroutine profiles from a fleet of instances. The
// production deployment sweeps ~200K instances once per day; most of the
// wall time is network transfer, so fetches run with bounded parallelism.
// Each response body streams directly into the stack scanner — a fetch
// holds one line buffer and a per-location count map, never the body.
type Collector struct {
	// Client is the HTTP client; nil means a client with Timeout.
	Client *http.Client
	// Timeout bounds each fetch; zero means 30 seconds.
	Timeout time.Duration
	// Parallelism bounds concurrent fetches; zero means 32.
	Parallelism int
	// Now supplies timestamps; nil means time.Now (simulations inject a
	// fake clock).
	Now func() time.Time
	// MaxProfileBytes bounds one profile body; a larger body fails the
	// fetch rather than truncating. Zero means DefaultMaxProfileBytes.
	MaxProfileBytes int64
}

// CollectResult pairs a snapshot with its per-endpoint error; a fleet
// sweep must tolerate unreachable instances (deploys, crashes) without
// aborting.
type CollectResult struct {
	Endpoint Endpoint
	Snapshot *gprofile.Snapshot
	Err      error
}

// setup resolves the collector's defaults.
func (c *Collector) setup() (client *http.Client, parallelism int, now func() time.Time) {
	client = c.Client
	if client == nil {
		timeout := c.Timeout
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	parallelism = c.Parallelism
	if parallelism <= 0 {
		parallelism = 32
	}
	now = c.Now
	if now == nil {
		now = time.Now
	}
	return client, parallelism, now
}

// sweep fans fetches out over the endpoints with bounded parallelism,
// delivering each outcome to sink (called concurrently).
func (c *Collector) sweep(ctx context.Context, endpoints []Endpoint, sink func(i int, snap *gprofile.Snapshot, err error)) {
	client, parallelism, now := c.setup()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep Endpoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			snap, err := c.fetchOne(ctx, client, ep, now())
			sink(i, snap, err)
		}(i, ep)
	}
	wg.Wait()
}

// Collect sweeps all endpoints and returns one result per endpoint, in
// input order. Snapshots are compact (per-location aggregates); sweeps
// that fold results into an Aggregator should prefer CollectInto, which
// retains nothing per endpoint but the error.
func (c *Collector) Collect(ctx context.Context, endpoints []Endpoint) []CollectResult {
	results := make([]CollectResult, len(endpoints))
	c.sweep(ctx, endpoints, func(i int, snap *gprofile.Snapshot, err error) {
		results[i] = CollectResult{Endpoint: endpoints[i], Snapshot: snap, Err: err}
	})
	return results
}

// CollectInto sweeps all endpoints, folding each instance's profile into
// agg as its fetch completes — collection and aggregation overlap, and no
// per-instance state survives the fetch. It returns one error slot per
// endpoint, nil for successes.
func (c *Collector) CollectInto(ctx context.Context, endpoints []Endpoint, agg *Aggregator) []error {
	errs := make([]error, len(endpoints))
	c.sweep(ctx, endpoints, func(i int, snap *gprofile.Snapshot, err error) {
		if err != nil {
			errs[i] = err
			return
		}
		agg.Add(snap)
	})
	return errs
}

// fetchOne streams one instance's profile body straight into the scanner;
// the body is never materialised.
func (c *Collector) fetchOne(ctx context.Context, client *http.Client, ep Endpoint, at time.Time) (*gprofile.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.URL, nil)
	if err != nil {
		return nil, fmt.Errorf("leakprof: building request for %s/%s: %w", ep.Service, ep.Instance, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("leakprof: fetching %s/%s: %w", ep.Service, ep.Instance, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leakprof: %s/%s returned %s", ep.Service, ep.Instance, resp.Status)
	}
	max := c.MaxProfileBytes
	if max <= 0 {
		max = DefaultMaxProfileBytes
	}
	// Read one byte past the limit: if it arrives, the profile is over
	// budget and must error rather than pass truncated counts downstream.
	lr := &io.LimitedReader{R: resp.Body, N: max + 1}
	snap, err := gprofile.ScanSnapshot(ep.Service, ep.Instance, at, lr)
	if err != nil {
		return nil, err
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("leakprof: %s/%s profile exceeds %d bytes", ep.Service, ep.Instance, max)
	}
	return snap, nil
}

// Snapshots extracts the successful snapshots from a sweep.
func Snapshots(results []CollectResult) []*gprofile.Snapshot {
	out := make([]*gprofile.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Snapshot != nil {
			out = append(out, r.Snapshot)
		}
	}
	return out
}
