package leakprof

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// Endpoint identifies one profiled service instance.
type Endpoint struct {
	// Service is the owning service name.
	Service string
	// Instance is a unique instance identifier (host/task id).
	Instance string
	// URL is the full goroutine-profile URL, e.g.
	// "http://host:port/debug/pprof/goroutine?debug=2".
	URL string
}

// DefaultMaxProfileBytes bounds one profile body. The limit exists to cap
// a misbehaving endpoint, not memory: bodies stream through the scanner
// and are never buffered. A body exceeding the limit fails the fetch —
// a truncated profile would silently undercount exactly the instances
// LEAKPROF most needs to see.
const DefaultMaxProfileBytes = 256 << 20

// Collector fetches goroutine profiles from a fleet of instances.
//
// Deprecated: Collector remains as a thin compatibility wrapper over the
// Pipeline engine. New code should build a Pipeline (leakprof.New) and
// sweep an Endpoints source; every Collector knob has a pipeline option
// (WithTimeout, WithParallelism, WithRetry, WithErrorBudget, ...).
type Collector struct {
	// Client is the HTTP client; nil means a client with Timeout.
	Client *http.Client
	// Timeout bounds each fetch; zero means 30 seconds.
	Timeout time.Duration
	// Parallelism bounds concurrent fetches; zero means 32.
	Parallelism int
	// Now supplies timestamps; nil means time.Now (simulations inject a
	// fake clock).
	Now func() time.Time
	// MaxProfileBytes bounds one profile body; a larger body fails the
	// fetch rather than truncating. Zero means DefaultMaxProfileBytes.
	MaxProfileBytes int64
	// Retry bounds per-endpoint retries; the zero value means one
	// attempt.
	Retry RetryPolicy
	// ErrorBudget short-circuits a service's remaining instances once
	// this many of its instances failed in one sweep; zero means
	// unlimited.
	ErrorBudget int
	// Intern optionally shares one bounded string pool across all of
	// the collector's profile scans.
	Intern *stack.InternPool
}

// config maps the collector's fields onto the engine configuration the
// Pipeline uses — Collector entry points and Pipeline sweeps run the
// identical fetch loop.
func (c *Collector) config() Config {
	return Config{
		Client:          c.Client,
		Timeout:         c.Timeout,
		Parallelism:     c.Parallelism,
		MaxProfileBytes: c.MaxProfileBytes,
		Now:             c.Now,
		Retry:           c.Retry,
		ErrorBudget:     c.ErrorBudget,
		Intern:          c.Intern,
	}
}

// CollectResult pairs a snapshot with its per-endpoint error; a fleet
// sweep must tolerate unreachable instances (deploys, crashes) without
// aborting.
type CollectResult struct {
	Endpoint Endpoint
	Snapshot *gprofile.Snapshot
	Err      error
}

// Collect sweeps all endpoints and returns one result per endpoint, in
// input order.
//
// Deprecated: sweeps that fold results into an aggregator should use a
// Pipeline over an Endpoints source, which retains nothing per endpoint.
func (c *Collector) Collect(ctx context.Context, endpoints []Endpoint) []CollectResult {
	cfg := c.config()
	results := make([]CollectResult, len(endpoints))
	fetchFleet(ctx, &cfg, nil, endpoints, func(i int, snap *gprofile.Snapshot, err error) {
		results[i] = CollectResult{Endpoint: endpoints[i], Snapshot: snap, Err: err}
	})
	return results
}

// CollectInto sweeps all endpoints, folding each instance's profile into
// agg as its fetch completes — collection and aggregation overlap, and no
// per-instance state survives the fetch. It returns one error slot per
// endpoint, nil for successes.
//
// Deprecated: use a Pipeline over an Endpoints source; Pipeline.Sweep
// owns the aggregator and reports failures in the Sweep result.
func (c *Collector) CollectInto(ctx context.Context, endpoints []Endpoint, agg *Aggregator) []error {
	cfg := c.config()
	errs := make([]error, len(endpoints))
	fetchFleet(ctx, &cfg, nil, endpoints, func(i int, snap *gprofile.Snapshot, err error) {
		if err != nil {
			errs[i] = err
			return
		}
		agg.Add(snap)
	})
	return errs
}

// fetchOne streams one instance's profile body straight into the scanner;
// the body is never materialised.
func fetchOne(ctx context.Context, cfg *Config, client *http.Client, ep Endpoint) (*gprofile.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.URL, nil)
	if err != nil {
		return nil, fmt.Errorf("leakprof: building request for %s/%s: %w", ep.Service, ep.Instance, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("leakprof: fetching %s/%s: %w", ep.Service, ep.Instance, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leakprof: %s/%s returned %s", ep.Service, ep.Instance, resp.Status)
	}
	max := cfg.MaxProfileBytes
	if max <= 0 {
		max = DefaultMaxProfileBytes
	}
	// Read one byte past the limit: if it arrives, the profile is over
	// budget and must error rather than pass truncated counts downstream.
	lr := &io.LimitedReader{R: resp.Body, N: max + 1}
	snap, err := gprofile.ScanSnapshotWith(ep.Service, ep.Instance, cfg.now(), lr, cfg.Intern)
	if err != nil {
		return nil, err
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("leakprof: %s/%s profile exceeds %d bytes", ep.Service, ep.Instance, max)
	}
	return snap, nil
}

// Snapshots extracts the successful snapshots from a sweep.
func Snapshots(results []CollectResult) []*gprofile.Snapshot {
	out := make([]*gprofile.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Snapshot != nil {
			out = append(out, r.Snapshot)
		}
	}
	return out
}
