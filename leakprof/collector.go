package leakprof

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/gprofile"
)

// Endpoint identifies one profiled service instance.
type Endpoint struct {
	// Service is the owning service name.
	Service string
	// Instance is a unique instance identifier (host/task id).
	Instance string
	// URL is the full goroutine-profile URL, e.g.
	// "http://host:port/debug/pprof/goroutine?debug=2".
	URL string
}

// Collector fetches goroutine profiles from a fleet of instances. The
// production deployment sweeps ~200K instances once per day; most of the
// wall time is network transfer, so fetches run with bounded parallelism.
type Collector struct {
	// Client is the HTTP client; nil means a client with Timeout.
	Client *http.Client
	// Timeout bounds each fetch; zero means 30 seconds.
	Timeout time.Duration
	// Parallelism bounds concurrent fetches; zero means 32.
	Parallelism int
	// Now supplies timestamps; nil means time.Now (simulations inject a
	// fake clock).
	Now func() time.Time
}

// CollectResult pairs a snapshot with its per-endpoint error; a fleet
// sweep must tolerate unreachable instances (deploys, crashes) without
// aborting.
type CollectResult struct {
	Endpoint Endpoint
	Snapshot *gprofile.Snapshot
	Err      error
}

// Collect sweeps all endpoints and returns one result per endpoint, in
// input order.
func (c *Collector) Collect(ctx context.Context, endpoints []Endpoint) []CollectResult {
	client := c.Client
	if client == nil {
		timeout := c.Timeout
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	par := c.Parallelism
	if par <= 0 {
		par = 32
	}
	now := c.Now
	if now == nil {
		now = time.Now
	}

	results := make([]CollectResult, len(endpoints))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep Endpoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			snap, err := c.fetchOne(ctx, client, ep, now())
			results[i] = CollectResult{Endpoint: ep, Snapshot: snap, Err: err}
		}(i, ep)
	}
	wg.Wait()
	return results
}

func (c *Collector) fetchOne(ctx context.Context, client *http.Client, ep Endpoint, at time.Time) (*gprofile.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.URL, nil)
	if err != nil {
		return nil, fmt.Errorf("leakprof: building request for %s/%s: %w", ep.Service, ep.Instance, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("leakprof: fetching %s/%s: %w", ep.Service, ep.Instance, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leakprof: %s/%s returned %s", ep.Service, ep.Instance, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading %s/%s: %w", ep.Service, ep.Instance, err)
	}
	return gprofile.ParseSnapshot(ep.Service, ep.Instance, at, string(body))
}

// Snapshots extracts the successful snapshots from a sweep.
func Snapshots(results []CollectResult) []*gprofile.Snapshot {
	out := make([]*gprofile.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Snapshot != nil {
			out = append(out, r.Snapshot)
		}
	}
	return out
}
