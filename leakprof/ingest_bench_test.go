package leakprof

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// BenchmarkStreamingIngest is the push-plane throughput claim: each
// iteration is one storm of 1000 concurrent posters POSTing four dumps
// apiece straight at the handler. Memory stays bounded by the admission
// queue (in-flight scans plus scanned-but-unfolded compact snapshots),
// never O(fleet x dump): the storm is 4000 dumps against a 4096-slot
// queue while the window loop folds concurrently. Reported alongside
// ns/op:
//
//	dumps/sec      admitted-and-folded throughput over storm wall time
//	p99-admit-us   99th-percentile handler latency (scan + enqueue)
//	window-pause-us  mean fold-loop pause per window close (sink
//	                 handoff + journal append; admission keeps running)
func BenchmarkStreamingIngest(b *testing.B) {
	const (
		posters   = 1000
		perPoster = 4
	)
	rng := rand.New(rand.NewSource(7))
	var bodies [][]byte
	for i := 0; i < 64; i++ {
		snap := randomSweep(rng)[0]
		// Re-stamp origin so the 64 bodies spread over a stable set of
		// services and instances regardless of what randomSweep chose.
		snap.Service = "svc" + strconv.Itoa(i%8)
		snap.Instance = "i" + strconv.Itoa(i)
		bodies = append(bodies, renderDump(b, snap))
	}

	pipe := New(WithThreshold(500), WithWindow(20*time.Millisecond), WithSharedIntern(1<<16))
	srv := NewIngestServer(pipe, IngestQueue(4096))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()

	latencies := make([]int64, 0, b.N*posters*perPoster)
	perPosterLat := make([][]int64, posters)
	b.ReportAllocs()
	b.ResetTimer()
	stormStart := time.Now()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for p := 0; p < posters; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				lats := perPosterLat[p][:0]
				for k := 0; k < perPoster; k++ {
					body := bodies[(p*perPoster+k)%len(bodies)]
					req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(body))
					req.Header.Set("X-Leakprof-Service", "svc"+strconv.Itoa(p%8))
					req.Header.Set("X-Leakprof-Instance", "p"+strconv.Itoa(p))
					rec := httptest.NewRecorder()
					start := time.Now()
					srv.ServeHTTP(rec, req)
					lats = append(lats, int64(time.Since(start)))
					if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
						b.Errorf("POST: got %d: %s", rec.Code, rec.Body)
						return
					}
				}
				perPosterLat[p] = lats
			}(p)
		}
		wg.Wait()
		for p := range perPosterLat {
			latencies = append(latencies, perPosterLat[p]...)
		}
	}
	stormWall := time.Since(stormStart)
	b.StopTimer()
	cancel()
	<-runDone

	st := srv.Stats()
	if st.Folded != st.Admitted {
		b.Fatalf("drain lost dumps: folded %d of %d admitted", st.Folded, st.Admitted)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(st.Folded)/stormWall.Seconds(), "dumps/sec")
	b.ReportMetric(float64(p99)/1e3, "p99-admit-us")
	if st.Windows > 0 {
		b.ReportMetric(float64(st.WindowPause)/float64(st.Windows)/1e3, "window-pause-us")
	}
	if st.Rejected > 0 {
		b.ReportMetric(float64(st.Rejected)/float64(st.Admitted+st.Rejected), "reject-frac")
	}
}
