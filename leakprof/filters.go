package leakprof

import (
	"time"

	"repro/internal/astcheck"
	"repro/internal/stack"
)

// FilterLocations builds an OpFilter dropping operations at the given
// "file:line" locations. It is the join point for criterion 2 of Section
// V-A: the locations typically come from the AST transient-select
// analysis over the service's source tree.
func FilterLocations(locations map[string]bool) OpFilter {
	return func(op stack.BlockedOp) bool {
		return locations[op.Location]
	}
}

// FilterTransientSelects runs the paper's AST filter over parsed source
// files and returns an OpFilter suppressing goroutines blocked at select
// statements whose every arm is provably transient (time.Tick,
// time.After, timer channels, context.Done).
func FilterTransientSelects(files []*astcheck.File) OpFilter {
	return FilterLocations(astcheck.TransientLocations(files))
}

// FilterTransientSource is FilterTransientSelects over a source tree on
// disk.
func FilterTransientSource(root string) (OpFilter, error) {
	files, err := astcheck.ParseDir(root)
	if err != nil {
		return nil, err
	}
	return FilterTransientSelects(files), nil
}

// FilterMinWait drops goroutines the runtime reports as blocked for less
// than d: an extension of the paper's criterion 2 exploiting the wait
// durations present in debug=2 profiles ("chan send, 5 minutes"). A
// goroutine blocked for days is a far stronger leak signal than one
// blocked for seconds. Operations whose profiles carry no wait
// information (WaitTime zero) are kept.
//
// Note: grouping in CountByLocation folds wait times away, so this
// filter only has effect through Analyzer.Filters, which run on the
// per-goroutine BlockedOp before aggregation.
func FilterMinWait(d time.Duration) OpFilter {
	return func(op stack.BlockedOp) bool {
		return op.WaitTime != 0 && time.Duration(op.WaitTime) < d
	}
}
