package leakprof

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
)

// foldAll folds snapshots into a fresh aggregator.
func foldAll(threshold int, snaps []*gprofile.Snapshot) *Aggregator {
	agg := NewAggregator(threshold)
	for _, s := range snaps {
		agg.Add(s)
	}
	return agg
}

// TestMergeMomentsMatchesSingleFold is the merge-correctness property
// test: for random sweeps and random snapshot splits,
// merge(fold(A), fold(B)) must equal fold(A ∪ B) exactly — moments,
// findings, and profile counts, byte for byte. Counts are integers, so
// the float sums of squares are exact and associativity holds without
// tolerance.
func TestMergeMomentsMatchesSingleFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		snaps := randomSweep(rng)
		threshold := 1 + rng.Intn(200)

		var a, b []*gprofile.Snapshot
		for _, s := range snaps {
			if rng.Intn(2) == 0 {
				a = append(a, s)
			} else {
				b = append(b, s)
			}
		}
		whole := foldAll(threshold, snaps)
		foldA, foldB := foldAll(threshold, a), foldAll(threshold, b)

		merged := NewAggregator(threshold)
		merged.MergeMoments(foldA.ServiceProfiles(), foldA.Profiles(), foldA.Moments())
		merged.MergeMoments(foldB.ServiceProfiles(), foldB.Profiles(), foldB.Moments())

		if got, want := merged.Profiles(), whole.Profiles(); got != want {
			t.Fatalf("trial %d: merged profiles %d, want %d", trial, got, want)
		}
		if got, want := merged.Moments(), whole.Moments(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged moments diverge\ngot  %+v\nwant %+v", trial, got, want)
		}
		gotF, wantF := merged.Findings(RankRMS), whole.Findings(RankRMS)
		if len(gotF) != len(wantF) {
			t.Fatalf("trial %d: %d findings, want %d", trial, len(gotF), len(wantF))
		}
		for i := range wantF {
			if !reflect.DeepEqual(gotF[i], wantF[i]) {
				t.Fatalf("trial %d finding %d:\ngot  %+v\nwant %+v", trial, i, gotF[i], wantF[i])
			}
		}
	}
}

// TestMomentMergeGroupwise checks the exported Moment.Merge combines two
// single-instance folds of one group into the union fold, including the
// tie-break (equal counts go to the lexicographically smaller instance).
func TestMomentMergeGroupwise(t *testing.T) {
	a := Moment{Service: "svc", Total: 7, Instances: 1, ServiceProfiles: 1,
		Suspicious: 1, SumSquares: 49, MaxCount: 7, MaxInstance: "i-b"}
	b := Moment{Service: "svc", Total: 7, Instances: 1, ServiceProfiles: 1,
		Suspicious: 1, SumSquares: 49, MaxCount: 7, MaxInstance: "i-a"}
	want := Moment{Service: "svc", Total: 14, Instances: 2, ServiceProfiles: 2,
		Suspicious: 2, SumSquares: 98, MaxCount: 7, MaxInstance: "i-a"}
	if got := a.Merge(b); !reflect.DeepEqual(got, want) {
		t.Fatalf("a.Merge(b) = %+v, want %+v", got, want)
	}
	if got := b.Merge(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("b.Merge(a) = %+v, want %+v", got, want)
	}
}

// TestShardReportWireRoundTrip pushes a fully populated report through
// the binary frame and back.
func TestShardReportWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	agg := foldAll(50, randomSweep(rng))
	rep := &ShardReport{
		Shard:           "shard-3",
		Seq:             7,
		At:              time.Unix(1000, 500).UTC(),
		Profiles:        agg.Profiles(),
		Errors:          2,
		Services:        agg.ServiceProfiles(),
		FailedByService: map[string]int{"pay": 2},
		Failures: []SweepFailure{
			{Service: "pay", Instance: "pay-01", Err: errors.New("connection refused")},
			{Service: "pay", Instance: "pay-02", Err: errors.New("timeout")},
		},
		Moments: agg.Moments(),
		Err:     "partial sweep",
	}
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip diverged\ngot  %+v\nwant %+v", got, rep)
	}
}

// TestShardReportWireRejectsCorruption flips a payload byte and expects
// the CRC to catch it.
func TestShardReportWireRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, &ShardReport{Shard: "s", Profiles: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40
	if _, err := ReadShardReport(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted frame decoded cleanly")
	}
}

// TestMergedReportsShardLoss loses one shard's report and checks the
// sweep still completes, with the loss in the global error accounting.
func TestMergedReportsShardLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	snaps := randomSweep(rng)
	shardAgg := foldAll(DefaultThreshold, snaps)

	okFetch := ShardFetch{Name: "shard-0", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		return &ShardReport{
			Shard:    "shard-0",
			Profiles: shardAgg.Profiles(),
			Services: shardAgg.ServiceProfiles(),
			Moments:  shardAgg.Moments(),
		}, nil
	}}
	lostFetch := ShardFetch{Name: "shard-1", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		return nil, errors.New("worker crashed")
	}}

	pipe := New()
	sweep, err := pipe.Sweep(context.Background(), MergedReports(okFetch, lostFetch))
	if err != nil {
		t.Fatalf("sweep error: %v", err)
	}
	if sweep.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", sweep.Errors)
	}
	if sweep.FailedByService["shard-1"] != 1 {
		t.Fatalf("FailedByService = %v, want shard-1:1", sweep.FailedByService)
	}
	if sweep.Profiles != shardAgg.Profiles() {
		t.Fatalf("Profiles = %d, want the surviving shard's %d", sweep.Profiles, shardAgg.Profiles())
	}
	if len(sweep.Moments()) != len(shardAgg.Moments()) {
		t.Fatalf("moments = %d, want %d", len(sweep.Moments()), len(shardAgg.Moments()))
	}
}

// TestShardInboxHTTP ships a report over a real HTTP hop — worker POST,
// coordinator inbox — and sweeps the coordinator off the inbox.
func TestShardInboxHTTP(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	snaps := randomSweep(rng)

	worker := New()
	rep, err := worker.ShardSweep(context.Background(), FromSnapshots(snaps), "shard-0", nil)
	if err != nil {
		t.Fatal(err)
	}

	inbox := NewShardInbox(1)
	srv := httptest.NewServer(inbox)
	defer srv.Close()
	if err := PostShardReport(context.Background(), nil, srv.URL, rep); err != nil {
		t.Fatal(err)
	}

	coord := New()
	sweep, err := coord.Sweep(context.Background(), MergedReports(inbox.Fetch("shard-0")))
	if err != nil {
		t.Fatal(err)
	}
	want := foldAll(DefaultThreshold, snaps)
	if sweep.Profiles != want.Profiles() {
		t.Fatalf("Profiles = %d, want %d", sweep.Profiles, want.Profiles())
	}
	if !reflect.DeepEqual(sweep.Moments(), want.Moments()) {
		t.Fatal("moments shipped over HTTP diverge from the direct fold")
	}
}

// TestShardSweepSeedsErrorBudget checks prevFailures reach the shard's
// budget enforcement: a service that burned the budget yesterday is
// short-circuited today inside the shard worker.
func TestShardSweepSeedsErrorBudget(t *testing.T) {
	pipe := New(WithErrorBudget(2))
	src := failingSource{service: "down", instances: 4}
	rep, err := pipe.ShardSweep(context.Background(), src, "shard-0", map[string]int{"down": 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedByService["down"] == 0 {
		t.Fatalf("FailedByService = %v, want down > 0", rep.FailedByService)
	}
	if rep.Errors != 4 {
		t.Fatalf("Errors = %d, want all 4 instances accounted", rep.Errors)
	}
}

// failingSource fails every instance of one service through the budget
// helper the endpoint source uses.
type failingSource struct {
	service   string
	instances int
}

func (failingSource) Name() string { return "failing" }

func (s failingSource) Sweep(ctx context.Context, env *SweepEnv) error {
	budget := newErrorBudget(env.Config.ErrorBudget, env.PrevFailures())
	for i := 0; i < s.instances; i++ {
		inst := string(rune('a' + i))
		if budget.exhausted(s.service) {
			env.Fail(s.service, inst, ErrBudgetExhausted)
			continue
		}
		budget.spend(s.service)
		env.Fail(s.service, inst, errors.New("unreachable"))
	}
	return nil
}

// TestSinkErrorFuncFiresBetweenBarriers registers the per-sink error
// callback on a detached pipeline and checks it observes a SweepDone
// failure without waiting for Flush — and that Flush still returns the
// accumulated error.
func TestSinkErrorFuncFiresBetweenBarriers(t *testing.T) {
	var calls atomic.Int32
	notified := make(chan error, 4)
	bad := &failingSink{}
	pipe := New(
		WithDetachedSinks(),
		WithSinkErrorFunc(func(s Sink, err error) {
			calls.Add(1)
			notified <- err
		}),
	)
	pipe.AddSinks(bad)
	if _, err := pipe.Sweep(context.Background(), FromSnapshots(nil)); err != nil {
		t.Fatalf("detached sweep returned sink error early: %v", err)
	}
	select {
	case err := <-notified:
		if err == nil {
			t.Fatal("callback delivered nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink error callback never fired")
	}
	if err := pipe.Close(); err == nil {
		t.Fatal("barrier lost the accumulated sink error")
	}
	if calls.Load() == 0 {
		t.Fatal("callback count = 0")
	}
}

type failingSink struct{}

func (failingSink) Snapshot(*gprofile.Snapshot) {}
func (failingSink) SweepDone(*Sweep) error      { return errors.New("sink broke") }

// TestSyncWindowFollowsStoreClock drives the group-commit window from a
// fake clock: appends inside the window stay unsynced; the first append
// after the fake clock crosses the window boundary commits the window
// inline, deterministically, with no real-time dependence.
func TestSyncWindowFollowsStoreClock(t *testing.T) {
	now := time.Unix(0, 0).UTC()
	clock := func() time.Time { return now }
	store, err := OpenStateStore(t.TempDir(),
		StateClock(clock),
		StateSync(SyncEvery(0, time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sweepAt := func(i int) *Sweep {
		return &Sweep{At: now, Source: "test", Profiles: i}
	}
	if err := store.RecordSweep(sweepAt(1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Minute)
	if err := store.RecordSweep(sweepAt(2)); err != nil {
		t.Fatal(err)
	}
	if got := store.journalSyncs(); got != 0 {
		t.Fatalf("syncs inside the window = %d, want 0", got)
	}
	now = now.Add(31 * time.Minute) // 61m since the window opened
	if err := store.RecordSweep(sweepAt(3)); err != nil {
		t.Fatal(err)
	}
	if got := store.journalSyncs(); got != 1 {
		t.Fatalf("syncs after the clock crossed the window = %d, want exactly 1", got)
	}
}

// TestShardInboxDedupsDuplicatePost retries a worker's POST after it
// already landed: the inbox must drop the duplicate (shard, sequence)
// with 409 so the coordinator never double-counts the shard's moments,
// while new sequences, other shards, and unsequenced legacy reports
// still flow.
func TestShardInboxDedupsDuplicatePost(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	snaps := randomSweep(rng)
	ctx := context.Background()

	worker := New()
	rep1, err := worker.ShardSweep(ctx, FromSnapshots(snaps), "shard-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Seq != 1 {
		t.Fatalf("first ShardSweep Seq = %d, want 1", rep1.Seq)
	}

	inbox := NewShardInbox(8)
	srv := httptest.NewServer(inbox)
	defer srv.Close()

	if err := PostShardReport(ctx, nil, srv.URL, rep1); err != nil {
		t.Fatalf("first POST: %v", err)
	}
	// The retry of a POST that actually landed: dropped with 409, which
	// PostShardReport surfaces so the worker knows to stop retrying.
	err = PostShardReport(ctx, nil, srv.URL, rep1)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate POST: err = %v, want a 409", err)
	}
	if got := len(inbox.ch); got != 1 {
		t.Fatalf("inbox holds %d reports after duplicate, want 1", got)
	}

	// The worker's next sweep (sequence 2) is new work, not a duplicate.
	rep2, err := worker.ShardSweep(ctx, FromSnapshots(snaps), "shard-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Seq != 2 {
		t.Fatalf("second ShardSweep Seq = %d, want 2", rep2.Seq)
	}
	if err := PostShardReport(ctx, nil, srv.URL, rep2); err != nil {
		t.Fatalf("sequence-2 POST: %v", err)
	}
	// A re-delivery of the now-stale sequence 1 is also a duplicate.
	if err := PostShardReport(ctx, nil, srv.URL, rep1); err == nil {
		t.Fatal("stale sequence-1 POST accepted after sequence 2")
	}

	// A different shard reuses sequence numbers freely.
	other := New()
	repB, err := other.ShardSweep(ctx, FromSnapshots(snaps), "shard-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := PostShardReport(ctx, nil, srv.URL, repB); err != nil {
		t.Fatalf("other shard's POST: %v", err)
	}

	// Unsequenced reports (v1 frames, hand-built) never deduplicate.
	legacy := &ShardReport{Shard: "legacy", Profiles: 1}
	for i := 0; i < 2; i++ {
		if err := PostShardReport(ctx, nil, srv.URL, legacy); err != nil {
			t.Fatalf("legacy POST %d: %v", i, err)
		}
	}
	if got := len(inbox.ch); got != 5 {
		t.Fatalf("inbox holds %d reports, want 5 (seq1, seq2, shard-1, 2x legacy)", got)
	}
}

// TestShardReportV1FrameDecodes pins backward compatibility: a frame
// written with the v1 layout (no sequence number) must decode with
// Seq 0, never an error. The v1 frame is derived from a v2 encoding of
// a report whose trailing fields are all empty: dropping the single
// zero Seq byte and stamping version 1 yields exactly what a v1 writer
// produced.
func TestShardReportV1FrameDecodes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, &ShardReport{Shard: "old", Profiles: 3}); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()
	payload := framed[frameHeaderSize:]
	if payload[len(payload)-5] != 0 {
		t.Fatal("layout drift: expected the Seq byte fifth from the end (before four empty section counts)")
	}
	v1 := append([]byte(nil), payload[:len(payload)-5]...)
	v1 = append(v1, payload[len(payload)-4:]...) // drop the Seq byte
	v1[1] = 1                                    // stamp the old version

	var reframed bytes.Buffer
	var header [frameHeaderSize]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(v1)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(v1))
	reframed.Write(header[:])
	reframed.Write(v1)

	got, err := ReadShardReport(&reframed)
	if err != nil {
		t.Fatalf("v1 frame failed to decode: %v", err)
	}
	if got.Shard != "old" || got.Profiles != 3 || got.Seq != 0 {
		t.Fatalf("v1 decode = %+v, want Shard=old Profiles=3 Seq=0", got)
	}
}

// TestMergedReportsStragglerDeadline checks the partial merge: a shard
// still sweeping when the deadline passes is written off as one failed
// instance, the arrived reports merge, and the sweep itself succeeds.
func TestMergedReportsStragglerDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	snaps := randomSweep(rng)
	agg := foldAll(DefaultThreshold, snaps)

	fast := ShardFetch{Name: "fast", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		return &ShardReport{
			Shard:    "fast",
			Profiles: agg.Profiles(),
			Services: agg.ServiceProfiles(),
			Moments:  agg.Moments(),
		}, nil
	}}
	slow := ShardFetch{Name: "slow", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		<-ctx.Done() // a hung worker: only the deadline frees the fetch
		return nil, ctx.Err()
	}}

	pipe := New()
	start := time.Now()
	sweep, err := pipe.Sweep(context.Background(), MergedReportsWithin(50*time.Millisecond, fast, slow))
	if err != nil {
		t.Fatalf("straggler failed the sweep: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("merge took %v, deadline never fired", elapsed)
	}
	if sweep.Errors != 1 || sweep.FailedByService["slow"] != 1 {
		t.Fatalf("Errors=%d FailedByService=%v, want the straggler as one failed instance",
			sweep.Errors, sweep.FailedByService)
	}
	if len(sweep.Failures) != 1 || !errors.Is(sweep.Failures[0].Err, context.DeadlineExceeded) {
		t.Fatalf("Failures = %+v, want one DeadlineExceeded", sweep.Failures)
	}
	if sweep.Profiles != agg.Profiles() {
		t.Fatalf("Profiles = %d, want the fast shard's %d", sweep.Profiles, agg.Profiles())
	}
	if !reflect.DeepEqual(sweep.Moments(), agg.Moments()) {
		t.Fatal("partial merge lost the arrived shard's moments")
	}
}
