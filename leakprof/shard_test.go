package leakprof

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
)

// foldAll folds snapshots into a fresh aggregator.
func foldAll(threshold int, snaps []*gprofile.Snapshot) *Aggregator {
	agg := NewAggregator(threshold)
	for _, s := range snaps {
		agg.Add(s)
	}
	return agg
}

// TestMergeMomentsMatchesSingleFold is the merge-correctness property
// test: for random sweeps and random snapshot splits,
// merge(fold(A), fold(B)) must equal fold(A ∪ B) exactly — moments,
// findings, and profile counts, byte for byte. Counts are integers, so
// the float sums of squares are exact and associativity holds without
// tolerance.
func TestMergeMomentsMatchesSingleFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		snaps := randomSweep(rng)
		threshold := 1 + rng.Intn(200)

		var a, b []*gprofile.Snapshot
		for _, s := range snaps {
			if rng.Intn(2) == 0 {
				a = append(a, s)
			} else {
				b = append(b, s)
			}
		}
		whole := foldAll(threshold, snaps)
		foldA, foldB := foldAll(threshold, a), foldAll(threshold, b)

		merged := NewAggregator(threshold)
		merged.MergeMoments(foldA.ServiceProfiles(), foldA.Profiles(), foldA.Moments())
		merged.MergeMoments(foldB.ServiceProfiles(), foldB.Profiles(), foldB.Moments())

		if got, want := merged.Profiles(), whole.Profiles(); got != want {
			t.Fatalf("trial %d: merged profiles %d, want %d", trial, got, want)
		}
		if got, want := merged.Moments(), whole.Moments(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged moments diverge\ngot  %+v\nwant %+v", trial, got, want)
		}
		gotF, wantF := merged.Findings(RankRMS), whole.Findings(RankRMS)
		if len(gotF) != len(wantF) {
			t.Fatalf("trial %d: %d findings, want %d", trial, len(gotF), len(wantF))
		}
		for i := range wantF {
			if !reflect.DeepEqual(gotF[i], wantF[i]) {
				t.Fatalf("trial %d finding %d:\ngot  %+v\nwant %+v", trial, i, gotF[i], wantF[i])
			}
		}
	}
}

// TestMomentMergeGroupwise checks the exported Moment.Merge combines two
// single-instance folds of one group into the union fold, including the
// tie-break (equal counts go to the lexicographically smaller instance).
func TestMomentMergeGroupwise(t *testing.T) {
	a := Moment{Service: "svc", Total: 7, Instances: 1, ServiceProfiles: 1,
		Suspicious: 1, SumSquares: 49, MaxCount: 7, MaxInstance: "i-b"}
	b := Moment{Service: "svc", Total: 7, Instances: 1, ServiceProfiles: 1,
		Suspicious: 1, SumSquares: 49, MaxCount: 7, MaxInstance: "i-a"}
	want := Moment{Service: "svc", Total: 14, Instances: 2, ServiceProfiles: 2,
		Suspicious: 2, SumSquares: 98, MaxCount: 7, MaxInstance: "i-a"}
	if got := a.Merge(b); !reflect.DeepEqual(got, want) {
		t.Fatalf("a.Merge(b) = %+v, want %+v", got, want)
	}
	if got := b.Merge(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("b.Merge(a) = %+v, want %+v", got, want)
	}
}

// TestShardReportWireRoundTrip pushes a fully populated report through
// the binary frame and back.
func TestShardReportWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	agg := foldAll(50, randomSweep(rng))
	rep := &ShardReport{
		Shard:           "shard-3",
		At:              time.Unix(1000, 500).UTC(),
		Profiles:        agg.Profiles(),
		Errors:          2,
		Services:        agg.ServiceProfiles(),
		FailedByService: map[string]int{"pay": 2},
		Failures: []SweepFailure{
			{Service: "pay", Instance: "pay-01", Err: errors.New("connection refused")},
			{Service: "pay", Instance: "pay-02", Err: errors.New("timeout")},
		},
		Moments: agg.Moments(),
		Err:     "partial sweep",
	}
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip diverged\ngot  %+v\nwant %+v", got, rep)
	}
}

// TestShardReportWireRejectsCorruption flips a payload byte and expects
// the CRC to catch it.
func TestShardReportWireRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, &ShardReport{Shard: "s", Profiles: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40
	if _, err := ReadShardReport(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted frame decoded cleanly")
	}
}

// TestMergedReportsShardLoss loses one shard's report and checks the
// sweep still completes, with the loss in the global error accounting.
func TestMergedReportsShardLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	snaps := randomSweep(rng)
	shardAgg := foldAll(DefaultThreshold, snaps)

	okFetch := ShardFetch{Name: "shard-0", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		return &ShardReport{
			Shard:    "shard-0",
			Profiles: shardAgg.Profiles(),
			Services: shardAgg.ServiceProfiles(),
			Moments:  shardAgg.Moments(),
		}, nil
	}}
	lostFetch := ShardFetch{Name: "shard-1", Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
		return nil, errors.New("worker crashed")
	}}

	pipe := New()
	sweep, err := pipe.Sweep(context.Background(), MergedReports(okFetch, lostFetch))
	if err != nil {
		t.Fatalf("sweep error: %v", err)
	}
	if sweep.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", sweep.Errors)
	}
	if sweep.FailedByService["shard-1"] != 1 {
		t.Fatalf("FailedByService = %v, want shard-1:1", sweep.FailedByService)
	}
	if sweep.Profiles != shardAgg.Profiles() {
		t.Fatalf("Profiles = %d, want the surviving shard's %d", sweep.Profiles, shardAgg.Profiles())
	}
	if len(sweep.Moments()) != len(shardAgg.Moments()) {
		t.Fatalf("moments = %d, want %d", len(sweep.Moments()), len(shardAgg.Moments()))
	}
}

// TestShardInboxHTTP ships a report over a real HTTP hop — worker POST,
// coordinator inbox — and sweeps the coordinator off the inbox.
func TestShardInboxHTTP(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	snaps := randomSweep(rng)

	worker := New()
	rep, err := worker.ShardSweep(context.Background(), FromSnapshots(snaps), "shard-0", nil)
	if err != nil {
		t.Fatal(err)
	}

	inbox := NewShardInbox(1)
	srv := httptest.NewServer(inbox)
	defer srv.Close()
	if err := PostShardReport(context.Background(), nil, srv.URL, rep); err != nil {
		t.Fatal(err)
	}

	coord := New()
	sweep, err := coord.Sweep(context.Background(), MergedReports(inbox.Fetch("shard-0")))
	if err != nil {
		t.Fatal(err)
	}
	want := foldAll(DefaultThreshold, snaps)
	if sweep.Profiles != want.Profiles() {
		t.Fatalf("Profiles = %d, want %d", sweep.Profiles, want.Profiles())
	}
	if !reflect.DeepEqual(sweep.Moments(), want.Moments()) {
		t.Fatal("moments shipped over HTTP diverge from the direct fold")
	}
}

// TestShardSweepSeedsErrorBudget checks prevFailures reach the shard's
// budget enforcement: a service that burned the budget yesterday is
// short-circuited today inside the shard worker.
func TestShardSweepSeedsErrorBudget(t *testing.T) {
	pipe := New(WithErrorBudget(2))
	src := failingSource{service: "down", instances: 4}
	rep, err := pipe.ShardSweep(context.Background(), src, "shard-0", map[string]int{"down": 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedByService["down"] == 0 {
		t.Fatalf("FailedByService = %v, want down > 0", rep.FailedByService)
	}
	if rep.Errors != 4 {
		t.Fatalf("Errors = %d, want all 4 instances accounted", rep.Errors)
	}
}

// failingSource fails every instance of one service through the budget
// helper the endpoint source uses.
type failingSource struct {
	service   string
	instances int
}

func (failingSource) Name() string { return "failing" }

func (s failingSource) Sweep(ctx context.Context, env *SweepEnv) error {
	budget := newErrorBudget(env.Config.ErrorBudget, env.PrevFailures())
	for i := 0; i < s.instances; i++ {
		inst := string(rune('a' + i))
		if budget.exhausted(s.service) {
			env.Fail(s.service, inst, ErrBudgetExhausted)
			continue
		}
		budget.spend(s.service)
		env.Fail(s.service, inst, errors.New("unreachable"))
	}
	return nil
}

// TestSinkErrorFuncFiresBetweenBarriers registers the per-sink error
// callback on a detached pipeline and checks it observes a SweepDone
// failure without waiting for Flush — and that Flush still returns the
// accumulated error.
func TestSinkErrorFuncFiresBetweenBarriers(t *testing.T) {
	var calls atomic.Int32
	notified := make(chan error, 4)
	bad := &failingSink{}
	pipe := New(
		WithDetachedSinks(),
		WithSinkErrorFunc(func(s Sink, err error) {
			calls.Add(1)
			notified <- err
		}),
	)
	pipe.AddSinks(bad)
	if _, err := pipe.Sweep(context.Background(), FromSnapshots(nil)); err != nil {
		t.Fatalf("detached sweep returned sink error early: %v", err)
	}
	select {
	case err := <-notified:
		if err == nil {
			t.Fatal("callback delivered nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink error callback never fired")
	}
	if err := pipe.Close(); err == nil {
		t.Fatal("barrier lost the accumulated sink error")
	}
	if calls.Load() == 0 {
		t.Fatal("callback count = 0")
	}
}

type failingSink struct{}

func (failingSink) Snapshot(*gprofile.Snapshot) {}
func (failingSink) SweepDone(*Sweep) error      { return errors.New("sink broke") }

// TestSyncWindowFollowsStoreClock drives the group-commit window from a
// fake clock: appends inside the window stay unsynced; the first append
// after the fake clock crosses the window boundary commits the window
// inline, deterministically, with no real-time dependence.
func TestSyncWindowFollowsStoreClock(t *testing.T) {
	now := time.Unix(0, 0).UTC()
	clock := func() time.Time { return now }
	store, err := OpenStateStore(t.TempDir(),
		StateClock(clock),
		StateSync(SyncEvery(0, time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sweepAt := func(i int) *Sweep {
		return &Sweep{At: now, Source: "test", Profiles: i}
	}
	if err := store.RecordSweep(sweepAt(1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Minute)
	if err := store.RecordSweep(sweepAt(2)); err != nil {
		t.Fatal(err)
	}
	if got := store.journalSyncs(); got != 0 {
		t.Fatalf("syncs inside the window = %d, want 0", got)
	}
	now = now.Add(31 * time.Minute) // 61m since the window opened
	if err := store.RecordSweep(sweepAt(3)); err != nil {
		t.Fatal(err)
	}
	if got := store.journalSyncs(); got != 1 {
		t.Fatalf("syncs after the clock crossed the window = %d, want exactly 1", got)
	}
}
