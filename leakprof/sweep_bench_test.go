package leakprof

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// BenchmarkSweepCriticalPath measures what this package ultimately sells:
// the wall-clock cost of one Pipeline.Sweep at a 100K-key steady state
// with the production sink set attached — report (bug filing against the
// durable DB), trend, and a write-through archive — and the state journal
// recording every sweep.
//
// Two configurations bracket the durability critical path:
//
//   - attached-sync-every-sweep is the PR-4 baseline: JSON frames, one
//     fsync inside every RecordSweep, and the sweep blocked at the sink
//     drain barrier until the slowest sink (the archive disk) finishes.
//   - detached-group-commit is the current fast path: binary frames,
//     group commit (one fsync per 16-sweep window, off the critical
//     path), and detached sinks whose lag spans sweeps.
//
// The fsyncs/op metric is the group-commit acceptance probe (one per
// window, not one per sweep); journal-KB/op tracks the codec's frame
// size on the same run, and archive-KB/sweep the write-through archive's
// on-disk cost per sweep — with pre-aggregated clusters written as
// count-annotated records (one record per cluster instead of thousands
// of expanded blocks), both this metric and the sweep's allocs/op fall
// by orders of magnitude at bench fleet scale.
func BenchmarkSweepCriticalPath(b *testing.B) {
	const (
		trackedKeys = 100_000
		sweepKeys   = 10
		instances   = 8
	)
	baseTime := time.Unix(0, 0)

	// seedState builds the steady state: a journal already tracking 100K
	// keys, compacted to one snapshot segment.
	seedState := func(b *testing.B, dir string, codec StateCodec) {
		b.Helper()
		store, err := OpenStateStore(dir, StateFrameCodec(codec), StateTrendRetention(30))
		if err != nil {
			b.Fatal(err)
		}
		findings := make([]*Finding, trackedKeys)
		for i := range findings {
			findings[i] = &Finding{
				Service: "svc", Op: "send",
				Location:     fmt.Sprintf("/svc/f%05d.go:1", i),
				TotalBlocked: 1000,
			}
			store.BugDB().File(report.Bug{
				Key: findings[i].Key(), Service: "svc", Op: "send",
				Location: findings[i].Location, FiledAt: baseTime,
				BlockedGoroutines: 1000,
			})
		}
		store.Tracker().Observe(baseTime, findings)
		if err := store.Save(); err != nil {
			b.Fatal(err)
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}

	// The sweep's input: a small fleet whose instances all report the
	// same ten hot locations — the delta a quiet production day writes.
	snaps := make([]*gprofile.Snapshot, instances)
	for i := range snaps {
		pre := make(map[stack.BlockedOp]int, sweepKeys)
		for k := 0; k < sweepKeys; k++ {
			pre[stack.BlockedOp{Op: "send", Function: "svc.leak", Location: fmt.Sprintf("/svc/f%05d.go:1", k)}] = 2000
		}
		snaps[i] = &gprofile.Snapshot{Service: "svc", Instance: fmt.Sprintf("i%02d", i), PreAggregated: pre}
	}

	run := func(b *testing.B, codec StateCodec, opts ...Option) {
		stateDir, archiveDir := b.TempDir(), b.TempDir()
		seedState(b, stateDir, codec)
		day := 0
		opts = append(opts,
			WithThreshold(1000),
			WithStateDir(stateDir),
			WithStateCodec(codec),
			WithTrendRetention(30),
			WithClock(func() time.Time { return baseTime.Add(time.Duration(day) * 24 * time.Hour) }),
		)
		pipe := New(opts...)
		store, err := pipe.State()
		if err != nil {
			b.Fatal(err)
		}
		archive, err := NewSweepArchiveSink(archiveDir, KeepSweeps(4))
		if err != nil {
			b.Fatal(err)
		}
		pipe.AddSinks(
			&ReportSink{Reporter: &Reporter{DB: store.BugDB(), TopN: 10}},
			&TrendSink{Tracker: store.Tracker()},
			archive,
		)
		src := FromSnapshots(snaps)
		startBytes, startSyncs := store.journalBytesAppended(), store.journalSyncs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			day = i + 1
			if _, err := pipe.Sweep(context.Background(), src); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := pipe.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(store.journalSyncs()-startSyncs)/float64(b.N), "fsyncs/op")
		b.ReportMetric(float64(store.journalBytesAppended()-startBytes)/float64(b.N)/1024, "journal-KB/op")
		// The compaction pause: wall time sweeps spent inside the fold's
		// under-lock stage (key capture + reservation). The fold itself
		// (value fetch, snapshot encode, segment write) runs off-lock.
		if folds, pause := store.journalFoldPause(); folds > 0 {
			b.ReportMetric(float64(pause.Microseconds())/float64(folds), "fold-pause-us/fold")
			b.ReportMetric(float64(folds)/float64(b.N), "folds/op")
		}
		// The archive keeps the last KeepSweeps sweep directories; the
		// per-sweep metric averages over whatever is retained.
		var archiveBytes int64
		sweepDirs := 0
		if entries, err := os.ReadDir(archiveDir); err == nil {
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				sweepDirs++
				members, err := os.ReadDir(filepath.Join(archiveDir, e.Name()))
				if err != nil {
					continue
				}
				for _, m := range members {
					if info, err := m.Info(); err == nil {
						archiveBytes += info.Size()
					}
				}
			}
		}
		if sweepDirs > 0 {
			b.ReportMetric(float64(archiveBytes)/float64(sweepDirs)/1024, "archive-KB/sweep")
		}
	}

	b.Run("attached-sync-every-sweep", func(b *testing.B) {
		run(b, StateCodecJSON, WithStateSync(SyncEverySweep))
	})
	b.Run("detached-group-commit", func(b *testing.B) {
		run(b, StateCodecBinary, WithStateSync(SyncEvery(16, 0)), WithDetachedSinks())
	})
	// fold-pause forces the journal to roll and fold continuously
	// (1-byte segment budget, 2-segment cap at a 100K-key state) so
	// fold-pause-us/fold measures the incremental export's under-lock
	// capture — the pause the full-copy fold design spent copying the
	// whole DB and trend history.
	b.Run("fold-pause", func(b *testing.B) {
		run(b, StateCodecBinary, WithStateSync(SyncEvery(16, 0)), WithDetachedSinks(),
			WithStateCompaction(1, 2))
	})
}
