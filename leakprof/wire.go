package leakprof

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/frame"
)

// ShardReport is one shard worker's folded contribution to a distributed
// sweep: the mergeable moments for the endpoint partition it swept, plus
// the bookkeeping a coordinator needs to reassemble the exact single-
// process sweep — per-service profiled-instance counts (the RMS/mean
// denominators), per-service failure tallies (so global error budgets
// can be enforced from shard-local enforcement), and the capped failure
// detail. A report is O(services x locations), independent of fleet and
// profile size, which is the point: shards ship statistics, not dumps.
type ShardReport struct {
	// Shard names the worker (stable across sweeps; used in failure
	// attribution when a whole shard is lost).
	Shard string
	// Seq is the worker's sweep sequence number, monotonically increasing
	// per worker pipeline (assigned by ShardSweep). A coordinator inbox
	// uses (Shard, Seq) to drop a report the worker POSTed twice — a
	// retried POST whose first attempt actually landed — instead of
	// double-counting its moments. Zero means unsequenced (a v1 report,
	// or a hand-built one) and is never deduplicated.
	Seq uint64
	// At is the shard's sweep start time.
	At time.Time
	// Profiles and Errors count the shard's folded and failed instances.
	Profiles int
	Errors   int
	// Services maps service name to profiled-instance count for the
	// shard's partition — Aggregator.MergeMoments' denominator input.
	Services map[string]int
	// FailedByService tallies the shard's failed instances per service,
	// uncapped. The coordinator sums these across shards and journals the
	// sum, so the next sweep's global error budget sees every failure.
	FailedByService map[string]int
	// Failures details failed instances, capped at maxSweepFailures.
	Failures []SweepFailure
	// Moments are the shard's per-group streaming moments, sorted by key.
	Moments []Moment
	// Err carries the shard's source-level sweep error, if any.
	Err string
}

// Shard-report frame layout. The outer framing is the journal's: a
// 4-byte big-endian payload length and a 4-byte CRC-32 (IEEE) of the
// payload, so a torn or bit-flipped report is detected before decoding.
// The payload is:
//
//	byte 0: wireFrameMagic (0xB2 — distinct from journal frames' 0xB1)
//	byte 1: wireFrameVersion
//	byte 2: flags (binaryFlagFlate: the body is a flate stream)
//	rest:   body
//
// The body reuses the journal codec's primitives — varints (zigzag for
// signed), 8-byte little-endian IEEE floats, presence-byte timestamps —
// and opens with ONE string table shared by every section and record in
// the report: service names, locations, and functions repeat across the
// moments of a shard, so the dictionary amortises them once per report
// rather than once per record.
// Version history: v1 had no sequence number; v2 appends Seq after the
// Err ref. Decoding accepts both — a v1 frame reads back with Seq 0.
const (
	wireFrameMagic   = 0xB2
	wireFrameVersion = 2
)

// WriteShardReport frames and writes one report.
func WriteShardReport(w io.Writer, rep *ShardReport) error {
	payload, err := encodeShardReport(rep)
	if err != nil {
		return err
	}
	var header [frameHeaderSize]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("leakprof: writing shard report: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("leakprof: writing shard report: %w", err)
	}
	return nil
}

// ReadShardReport reads and decodes one framed report.
func ReadShardReport(r io.Reader) (*ShardReport, error) {
	var header [frameHeaderSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("leakprof: reading shard report: %w", err)
	}
	length := binary.BigEndian.Uint32(header[0:4])
	sum := binary.BigEndian.Uint32(header[4:8])
	if length == 0 || length > maxFrameBytes {
		return nil, fmt.Errorf("leakprof: shard report claims implausible length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("leakprof: reading shard report: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("leakprof: shard report checksum mismatch")
	}
	return decodeShardReport(payload)
}

// wireFlateMin is the body size below which a report ships uncompressed:
// a flate writer costs several hundred KB of allocation, which dwarfs a
// small report — compression pays only once the string-heavy moment
// sections grow past it. The flag byte keeps decoding unambiguous.
const wireFlateMin = 4 << 10

// encodeShardReport renders the frame payload (magic through body).
func encodeShardReport(rep *ShardReport) ([]byte, error) {
	var tbl frame.StringTable
	body := encodeShardBody(rep, &tbl)
	full := tbl.AppendTo(make([]byte, 0, len(body)+64))
	full = append(full, body...)

	if len(full) < wireFlateMin {
		return append([]byte{wireFrameMagic, wireFrameVersion, 0}, full...), nil
	}
	payload := []byte{wireFrameMagic, wireFrameVersion, binaryFlagFlate}
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, fmt.Errorf("leakprof: shard report codec: %w", err)
	}
	if _, err := zw.Write(full); err != nil {
		return nil, fmt.Errorf("leakprof: shard report codec: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("leakprof: shard report codec: %w", err)
	}
	return append(payload, buf.Bytes()...), nil
}

func encodeShardBody(rep *ShardReport, tbl *frame.StringTable) []byte {
	b := make([]byte, 0, 256)
	b = binary.AppendUvarint(b, tbl.Ref(rep.Shard))
	b = frame.AppendTime(b, rep.At)
	b = binary.AppendVarint(b, int64(rep.Profiles))
	b = binary.AppendVarint(b, int64(rep.Errors))
	b = binary.AppendUvarint(b, tbl.Ref(rep.Err))
	b = binary.AppendUvarint(b, rep.Seq)

	b = binary.AppendUvarint(b, uint64(len(rep.Services)))
	for svc, n := range rep.Services {
		b = binary.AppendUvarint(b, tbl.Ref(svc))
		b = binary.AppendVarint(b, int64(n))
	}
	b = binary.AppendUvarint(b, uint64(len(rep.FailedByService)))
	for svc, n := range rep.FailedByService {
		b = binary.AppendUvarint(b, tbl.Ref(svc))
		b = binary.AppendVarint(b, int64(n))
	}
	b = binary.AppendUvarint(b, uint64(len(rep.Failures)))
	for _, f := range rep.Failures {
		b = binary.AppendUvarint(b, tbl.Ref(f.Service))
		b = binary.AppendUvarint(b, tbl.Ref(f.Instance))
		msg := ""
		if f.Err != nil {
			msg = f.Err.Error()
		}
		b = binary.AppendUvarint(b, tbl.Ref(msg))
	}
	b = binary.AppendUvarint(b, uint64(len(rep.Moments)))
	for i := range rep.Moments {
		m := &rep.Moments[i]
		b = binary.AppendUvarint(b, tbl.Ref(m.Service))
		b = binary.AppendUvarint(b, tbl.Ref(m.Op.Op))
		b = binary.AppendUvarint(b, tbl.Ref(m.Op.Location))
		b = binary.AppendUvarint(b, tbl.Ref(m.Op.Function))
		nilCh := byte(0)
		if m.Op.NilChannel {
			nilCh = 1
		}
		b = append(b, nilCh)
		b = binary.AppendVarint(b, int64(m.Op.WaitTime))
		b = binary.AppendVarint(b, int64(m.Total))
		b = binary.AppendVarint(b, int64(m.Instances))
		b = binary.AppendVarint(b, int64(m.ServiceProfiles))
		b = binary.AppendVarint(b, int64(m.Suspicious))
		b = frame.AppendFloat(b, m.SumSquares)
		b = binary.AppendVarint(b, int64(m.MaxCount))
		b = binary.AppendUvarint(b, tbl.Ref(m.MaxInstance))
	}
	return b
}

func decodeShardReport(payload []byte) (*ShardReport, error) {
	if len(payload) < 3 {
		return nil, errBinaryTruncated
	}
	if payload[0] != wireFrameMagic {
		return nil, fmt.Errorf("leakprof: not a shard report (leading byte 0x%02x)", payload[0])
	}
	if payload[1] > wireFrameVersion {
		return nil, fmt.Errorf("leakprof: shard report version %d, newer than supported %d", payload[1], wireFrameVersion)
	}
	flags, body := payload[2], payload[3:]
	if flags&binaryFlagFlate != 0 {
		var err error
		if body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body))); err != nil {
			return nil, fmt.Errorf("leakprof: inflating shard report: %w", err)
		}
	}
	r := frame.NewReader(body)

	tbl, err := r.StringTable()
	if err != nil {
		return nil, err
	}

	rep := &ShardReport{}
	if rep.Shard, err = r.Str(tbl); err != nil {
		return nil, err
	}
	if rep.At, err = r.Time(); err != nil {
		return nil, err
	}
	var v int64
	if v, err = r.Varint(); err != nil {
		return nil, err
	}
	rep.Profiles = int(v)
	if v, err = r.Varint(); err != nil {
		return nil, err
	}
	rep.Errors = int(v)
	if rep.Err, err = r.Str(tbl); err != nil {
		return nil, err
	}
	if payload[1] >= 2 {
		if rep.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}

	for _, dst := range []*map[string]int{&rep.Services, &rep.FailedByService} {
		n, err := r.Count(2)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			*dst = make(map[string]int, n)
		}
		for i := 0; i < n; i++ {
			svc, err := r.Str(tbl)
			if err != nil {
				return nil, err
			}
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			(*dst)[svc] = int(v)
		}
	}

	nFail, err := r.Count(3)
	if err != nil {
		return nil, err
	}
	if nFail > 0 {
		rep.Failures = make([]SweepFailure, nFail)
	}
	for i := range rep.Failures {
		f := &rep.Failures[i]
		if f.Service, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if f.Instance, err = r.Str(tbl); err != nil {
			return nil, err
		}
		msg, err := r.Str(tbl)
		if err != nil {
			return nil, err
		}
		if msg != "" {
			f.Err = errors.New(msg)
		}
	}

	nMom, err := r.Count(16)
	if err != nil {
		return nil, err
	}
	if nMom > 0 {
		rep.Moments = make([]Moment, nMom)
	}
	for i := range rep.Moments {
		m := &rep.Moments[i]
		if m.Service, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if m.Op.Op, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if m.Op.Location, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if m.Op.Function, err = r.Str(tbl); err != nil {
			return nil, err
		}
		nilCh, err := r.Take(1)
		if err != nil {
			return nil, err
		}
		m.Op.NilChannel = nilCh[0] != 0
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.Op.WaitTime = v
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.Total = int(v)
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.Instances = int(v)
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.ServiceProfiles = int(v)
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.Suspicious = int(v)
		if m.SumSquares, err = r.Float64(); err != nil {
			return nil, err
		}
		if v, err = r.Varint(); err != nil {
			return nil, err
		}
		m.MaxCount = int(v)
		if m.MaxInstance, err = r.Str(tbl); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
