package leakprof

import (
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

func mkFinding(service, fn, loc string, impact float64) *Finding {
	return &Finding{
		Service: service, Op: "send", Location: loc, Function: fn,
		TotalBlocked: int(impact), MaxInstance: "i1", MaxCount: int(impact),
		Impact: impact,
	}
}

func TestReporterFilesTopNOnly(t *testing.T) {
	db := report.NewDB()
	r := &Reporter{DB: db, TopN: 2, Now: func() time.Time { return time.Unix(7, 0) }}
	findings := []*Finding{
		mkFinding("s", "a.f", "/a.go:1", 300),
		mkFinding("s", "b.f", "/b.go:2", 200),
		mkFinding("s", "c.f", "/c.go:3", 100),
	}
	alerts := r.Report(findings)
	if len(alerts) != 2 {
		t.Fatalf("got %d alerts, want 2", len(alerts))
	}
	if alerts[0].Bug.Function != "a.f" || alerts[1].Bug.Function != "b.f" {
		t.Errorf("alert order: %s, %s", alerts[0].Bug.Function, alerts[1].Bug.Function)
	}
	if len(db.All()) != 2 {
		t.Errorf("db has %d bugs, want 2", len(db.All()))
	}
}

func TestReporterDeduplicatesAcrossSweeps(t *testing.T) {
	db := report.NewDB()
	r := &Reporter{DB: db, TopN: 10}
	f := mkFinding("s", "a.f", "/a.go:1", 300)

	if alerts := r.Report([]*Finding{f}); len(alerts) != 1 {
		t.Fatalf("first sweep: %d alerts", len(alerts))
	}
	// Second daily sweep re-observes the same defect: no new alert, but
	// the sighting counter advances.
	if alerts := r.Report([]*Finding{f}); len(alerts) != 0 {
		t.Fatalf("second sweep re-alerted")
	}
	bug, ok := db.Get(f.Key())
	if !ok || bug.Sightings != 2 {
		t.Errorf("bug = %+v, ok = %v", bug, ok)
	}
}

func TestReporterRoutesOwnership(t *testing.T) {
	db := report.NewDB()
	owners := report.NewOwnership(map[string]string{
		"/svc/payments/": "payments-team",
		"/svc/":          "platform-team",
	})
	r := &Reporter{DB: db, Owners: owners}
	alerts := r.Report([]*Finding{
		mkFinding("pay", "p.f", "/svc/payments/x.go:9", 100),
		mkFinding("gen", "g.f", "/svc/other/y.go:3", 90),
		mkFinding("ext", "e.f", "/vendor/z.go:1", 80),
	})
	if alerts[0].Bug.Owner != "payments-team" {
		t.Errorf("longest prefix lost: %s", alerts[0].Bug.Owner)
	}
	if alerts[1].Bug.Owner != "platform-team" {
		t.Errorf("fallback prefix: %s", alerts[1].Bug.Owner)
	}
	if alerts[2].Bug.Owner != "unowned" {
		t.Errorf("unmatched path: %s", alerts[2].Bug.Owner)
	}
}

func TestAlertRenderCarriesPaperFields(t *testing.T) {
	db := report.NewDB()
	r := &Reporter{DB: db}
	f := mkFinding("svc", "svc.leak", "/svc/l.go:5", 16000)
	alerts := r.Report([]*Finding{f})
	text := alerts[0].Render()
	for _, want := range []string{"chan send", "/svc/l.go:5", "16000", "i1"} {
		if !strings.Contains(text, want) {
			t.Errorf("alert missing %q:\n%s", want, text)
		}
	}
}
