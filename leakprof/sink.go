package leakprof

import (
	"sync"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
)

// maxSweepFailures caps the per-failure detail a Sweep retains; Errors
// keeps the true total. A fleet-wide outage over 200K instances must not
// turn the sweep result into a 200K-element error slice.
const maxSweepFailures = 1000

// SweepFailure is one instance whose collection failed.
type SweepFailure struct {
	Service  string
	Instance string
	Err      error
}

// Sweep is one completed collection pass: what the engine hands every
// sink and returns from Pipeline.Sweep.
type Sweep struct {
	// At is the sweep's start timestamp.
	At time.Time
	// Source names the profile origin that fed the sweep.
	Source string
	// Profiles is the number of instance profiles folded in.
	Profiles int
	// Errors is the number of instances whose collection failed
	// (including instances short-circuited by an exhausted error
	// budget).
	Errors int
	// Failures details the failed instances, capped at maxSweepFailures
	// entries; Errors carries the uncapped count.
	Failures []SweepFailure
	// Findings are the suspicious operations, ranked by impact.
	Findings []*Finding
	// Err is the source-level failure of the sweep as a whole (an
	// unlistable archive directory, a cancelled context); per-instance
	// failures are in Failures, and sink errors are joined into
	// Pipeline.Sweep's return value.
	Err error

	agg         *Aggregator
	momentsOnce sync.Once
	moments     []Moment
}

// Instances is the number of instances the sweep attempted.
func (s *Sweep) Instances() int { return s.Profiles + s.Errors }

// Moments returns the aggregator's raw per-group streaming moments —
// every observed (service, operation, location) group, suspicious or
// not — for consumers that want pre-threshold signal (trend tracking,
// metrics). Computed lazily on first call: sinkless sweeps (the
// deprecated Analyze wrapper, benchmarks) never pay for the export.
func (s *Sweep) Moments() []Moment {
	s.momentsOnce.Do(func() {
		if s.agg != nil {
			s.moments = s.agg.Moments()
		}
	})
	return s.moments
}

// Sink consumes a pipeline's output. Implementations receive streaming
// per-snapshot events during collection and the completed Sweep after.
type Sink interface {
	// Snapshot observes one collected instance snapshot as it is
	// scanned, before it is folded into the aggregator. It is called
	// concurrently from collection workers and must not retain snap
	// past the call unless it owns the memory cost.
	Snapshot(snap *gprofile.Snapshot)
	// SweepDone observes the completed sweep. Errors are joined into
	// Pipeline.Sweep's return value.
	SweepDone(sweep *Sweep) error
}

// ReportSink files sweep findings through a Reporter: ownership routing,
// bug-DB dedup, top-N alerting — the paper's reporting tail as a
// pipeline sink.
type ReportSink struct {
	// Reporter files and routes alerts; required.
	Reporter *Reporter

	mu   sync.Mutex
	last []*report.Alert
}

// Snapshot implements Sink; reporting consumes only sweep results.
func (s *ReportSink) Snapshot(*gprofile.Snapshot) {}

// SweepDone files the sweep's findings.
func (s *ReportSink) SweepDone(sweep *Sweep) error {
	alerts := s.Reporter.Report(sweep.Findings)
	s.mu.Lock()
	s.last = alerts
	s.mu.Unlock()
	return nil
}

// LastAlerts returns the alerts for newly discovered defects from the
// most recent sweep.
func (s *ReportSink) LastAlerts() []*report.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// TrendSink feeds the aggregator's streaming moments into a TrendTracker
// after every sweep, giving cross-sweep verdicts the per-instance
// variance the old findings-total feed lacked.
type TrendSink struct {
	// Tracker accumulates cross-sweep history; required.
	Tracker *TrendTracker
}

// Snapshot implements Sink; trend tracking consumes only sweep results.
func (s *TrendSink) Snapshot(*gprofile.Snapshot) {}

// SweepDone records the sweep's moments.
func (s *TrendSink) SweepDone(sweep *Sweep) error {
	s.Tracker.ObserveMoments(sweep.At, sweep.Moments())
	return nil
}

// MetricsSink accumulates sweep telemetry — a lightweight stand-in for a
// metrics backend, and the hook operational dashboards attach to.
type MetricsSink struct {
	mu sync.Mutex
	t  MetricsTotals
}

// MetricsTotals is a MetricsSink's running state.
type MetricsTotals struct {
	// Sweeps is the number of completed sweeps.
	Sweeps int
	// Profiles and Goroutines count collected instance profiles and the
	// goroutines scanned inside them, across all sweeps.
	Profiles   int
	Goroutines int
	// Errors counts failed instances across all sweeps.
	Errors int
	// Findings counts reported suspicious operations across all sweeps;
	// LastFindings holds the most recent sweep's count.
	Findings     int
	LastFindings int
}

// Snapshot tallies one collected profile.
func (m *MetricsSink) Snapshot(snap *gprofile.Snapshot) {
	m.mu.Lock()
	m.t.Profiles++
	m.t.Goroutines += snap.NumGoroutines()
	m.mu.Unlock()
}

// SweepDone tallies the sweep result.
func (m *MetricsSink) SweepDone(sweep *Sweep) error {
	m.mu.Lock()
	m.t.Sweeps++
	m.t.Errors += sweep.Errors
	m.t.Findings += len(sweep.Findings)
	m.t.LastFindings = len(sweep.Findings)
	m.mu.Unlock()
	return nil
}

// Totals returns a copy of the running counters.
func (m *MetricsSink) Totals() MetricsTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// ArchiveSink records the sweep as it happens: every collected snapshot
// is written through to a debug=2 archive directory the moment it is
// scanned, so a production-scale sweep archives itself without ever
// materialising the dump slice. The resulting directory replays through
// the Archive source.
type ArchiveSink struct {
	w *gprofile.DirWriter

	mu       sync.Mutex
	writeErr error
	written  int
}

// NewArchiveSink creates dir and returns a write-through sink into it.
func NewArchiveSink(dir string) (*ArchiveSink, error) {
	w, err := gprofile.NewDirWriter(dir)
	if err != nil {
		return nil, err
	}
	return &ArchiveSink{w: w}, nil
}

// Dir returns the archive directory.
func (s *ArchiveSink) Dir() string { return s.w.Dir() }

// Written returns the number of snapshots archived so far.
func (s *ArchiveSink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Snapshot writes one snapshot through to disk.
func (s *ArchiveSink) Snapshot(snap *gprofile.Snapshot) {
	err := s.w.Write(snap)
	s.mu.Lock()
	if err != nil && s.writeErr == nil {
		s.writeErr = err
	}
	if err == nil {
		s.written++
	}
	s.mu.Unlock()
}

// SweepDone surfaces the first write error of the sweep, if any.
func (s *ArchiveSink) SweepDone(*Sweep) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.writeErr
	s.writeErr = nil
	return err
}
