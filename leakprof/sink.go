package leakprof

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
)

// maxSweepFailures caps the per-failure detail a Sweep retains; Errors
// keeps the true total. A fleet-wide outage over 200K instances must not
// turn the sweep result into a 200K-element error slice.
const maxSweepFailures = 1000

// SweepFailure is one instance whose collection failed.
type SweepFailure struct {
	Service  string
	Instance string
	Err      error
}

// Sweep is one completed collection pass: what the engine hands every
// sink and returns from Pipeline.Sweep.
type Sweep struct {
	// At is the sweep's start timestamp.
	At time.Time
	// Source names the profile origin that fed the sweep.
	Source string
	// Profiles is the number of instance profiles folded in.
	Profiles int
	// Errors is the number of instances whose collection failed
	// (including instances short-circuited by an exhausted error
	// budget, and archive members that were salvaged only partially —
	// those also count toward Profiles; see SweepEnv.Fail).
	Errors int
	// Failures details the failed instances, capped at maxSweepFailures
	// entries; Errors carries the uncapped count.
	Failures []SweepFailure
	// FailedByService tallies failed instances per service, uncapped
	// (bounded by the number of services, not instances). It is what the
	// state journal records so the next sweep can seed its error budget.
	FailedByService map[string]int
	// Findings are the suspicious operations, ranked by impact.
	Findings []*Finding
	// Err is the source-level failure of the sweep as a whole (an
	// unlistable archive directory, a cancelled context); per-instance
	// failures are in Failures, and sink errors are joined into
	// Pipeline.Sweep's return value.
	Err error

	agg         *Aggregator
	momentsOnce sync.Once
	moments     []Moment
}

// Instances is the number of instances the sweep attempted.
func (s *Sweep) Instances() int { return s.Profiles + s.Errors }

// Moments returns the aggregator's raw per-group streaming moments —
// every observed (service, operation, location) group, suspicious or
// not — for consumers that want pre-threshold signal (trend tracking,
// metrics). Computed lazily on first call: sinkless sweeps (the
// deprecated Analyze wrapper, benchmarks) never pay for the export.
func (s *Sweep) Moments() []Moment {
	s.momentsOnce.Do(func() {
		if s.agg != nil {
			s.moments = s.agg.Moments()
		}
	})
	return s.moments
}

// Sink consumes a pipeline's output. Implementations receive streaming
// per-snapshot events during collection and the completed Sweep after.
//
// The pipeline runs every sink on its own goroutine over a bounded
// event queue: one sink's calls are serialised in event order, distinct
// sinks run concurrently, and a sink that falls further behind than its
// queue backpressures collection rather than buffering without bound.
// Implementations must still lock any state they expose to other
// goroutines (accessors like LastAlerts are called from outside the
// sink's worker).
type Sink interface {
	// Snapshot observes one collected instance snapshot as it is
	// scanned, before it is folded into the aggregator. It must not
	// retain snap past the call unless it owns the memory cost.
	Snapshot(snap *gprofile.Snapshot)
	// SweepDone observes the completed sweep. Errors are joined into
	// Pipeline.Sweep's return value.
	SweepDone(sweep *Sweep) error
}

// ReportSink files sweep findings through a Reporter: ownership routing,
// bug-DB dedup, top-N alerting — the paper's reporting tail as a
// pipeline sink.
type ReportSink struct {
	// Reporter files and routes alerts; required.
	Reporter *Reporter

	mu   sync.Mutex
	last []*report.Alert
	all  []*report.Alert
}

// Snapshot implements Sink; reporting consumes only sweep results.
func (s *ReportSink) Snapshot(*gprofile.Snapshot) {}

// SweepDone files the sweep's findings.
func (s *ReportSink) SweepDone(sweep *Sweep) error {
	alerts := s.Reporter.Report(sweep.Findings)
	s.mu.Lock()
	s.last = alerts
	s.all = append(s.all, alerts...)
	s.mu.Unlock()
	return nil
}

// LastAlerts returns the alerts for newly discovered defects from the
// most recent sweep.
func (s *ReportSink) LastAlerts() []*report.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Alerts returns every new-defect alert filed since the sink was
// created, across sweeps. Dedup bounds it: a defect alerts once per
// bug-DB lifetime, not once per sweep. It is the accumulator a
// multi-sweep replay (or a detached-sink run, where OnSweep fires
// before the sink processed the sweep) reads after the drain barrier.
func (s *ReportSink) Alerts() []*report.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*report.Alert(nil), s.all...)
}

// TrendSink feeds the aggregator's streaming moments into a TrendTracker
// after every sweep, giving cross-sweep verdicts the per-instance
// variance the old findings-total feed lacked.
type TrendSink struct {
	// Tracker accumulates cross-sweep history; required.
	Tracker *TrendTracker
}

// Snapshot implements Sink; trend tracking consumes only sweep results.
func (s *TrendSink) Snapshot(*gprofile.Snapshot) {}

// SweepDone records the sweep's moments.
func (s *TrendSink) SweepDone(sweep *Sweep) error {
	s.Tracker.ObserveMoments(sweep.At, sweep.Moments())
	return nil
}

// MetricsSink accumulates sweep telemetry — a lightweight stand-in for a
// metrics backend, and the hook operational dashboards attach to.
type MetricsSink struct {
	mu sync.Mutex
	t  MetricsTotals
}

// MetricsTotals is a MetricsSink's running state.
type MetricsTotals struct {
	// Sweeps is the number of completed sweeps.
	Sweeps int
	// Profiles and Goroutines count collected instance profiles and the
	// goroutines scanned inside them, across all sweeps.
	Profiles   int
	Goroutines int
	// Errors counts failed instances across all sweeps.
	Errors int
	// Findings counts reported suspicious operations across all sweeps;
	// LastFindings holds the most recent sweep's count.
	Findings     int
	LastFindings int
}

// Snapshot tallies one collected profile.
func (m *MetricsSink) Snapshot(snap *gprofile.Snapshot) {
	m.mu.Lock()
	m.t.Profiles++
	m.t.Goroutines += snap.NumGoroutines()
	m.mu.Unlock()
}

// SweepDone tallies the sweep result.
func (m *MetricsSink) SweepDone(sweep *Sweep) error {
	m.mu.Lock()
	m.t.Sweeps++
	m.t.Errors += sweep.Errors
	m.t.Findings += len(sweep.Findings)
	m.t.LastFindings = len(sweep.Findings)
	m.mu.Unlock()
	return nil
}

// Totals returns a copy of the running counters.
func (m *MetricsSink) Totals() MetricsTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// ArchiveSink records the sweep as it happens: every collected snapshot
// is written through to a debug=2 archive directory the moment it is
// scanned, so a production-scale sweep archives itself without ever
// materialising the dump slice. When the sweep completes, the sink
// finalises the directory with a manifest (sweep timestamp, snapshot
// index, format version), so replaying the archive reconstructs the
// sweep at its recorded time instead of the replay time.
//
// NewArchiveSink records one sweep per directory (a repeated sweep
// overwrites); NewSweepArchiveSink rotates a fresh timestamp-manifested
// subdirectory per sweep, the multi-sweep layout Pipeline.Replay walks
// in recorded order — the durable form of the paper's daily cadence.
type ArchiveSink struct {
	base string // multi-sweep base dir; empty in single-sweep mode
	keep int    // multi-sweep retention: max finalised sweeps kept (0 = unlimited)

	mu       sync.Mutex
	w        *gprofile.DirWriter
	seq      int
	writeErr error
	written  int
}

// ArchiveOption tunes a multi-sweep archive sink.
type ArchiveOption func(*ArchiveSink)

// KeepSweeps bounds the archive to the n most recently recorded
// finalised sweeps: after each sweep's manifest is written, the
// lowest-numbered sweep-NNNN subdirectories beyond n are pruned
// (rotation order, so a replay of old history recorded today still
// counts as today's sweep). Retention is manifest-aware — only
// finalised sweeps count toward (or are removed by) the bound, so an
// in-progress or torn sweep directory is never deleted. Zero keeps
// every sweep.
func KeepSweeps(n int) ArchiveOption {
	return func(s *ArchiveSink) {
		if n > 0 {
			s.keep = n
		}
	}
}

// NewArchiveSink creates dir and returns a write-through sink recording
// one sweep into it.
func NewArchiveSink(dir string) (*ArchiveSink, error) {
	w, err := gprofile.NewDirWriter(dir)
	if err != nil {
		return nil, err
	}
	return &ArchiveSink{w: w}, nil
}

// NewSweepArchiveSink creates base and returns a rotating sink: each
// sweep lands in its own sweep-NNNN subdirectory with its own manifest.
// Rotation resumes after any sweeps already archived under base, so a
// restarted daily loop appends instead of overwriting history. With
// KeepSweeps the history is bounded: the oldest finalised sweeps are
// pruned so a multi-month daily archive stops growing monotonically.
func NewSweepArchiveSink(base string, opts ...ArchiveOption) (*ArchiveSink, error) {
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, fmt.Errorf("leakprof: creating archive base %s: %w", base, err)
	}
	s := &ArchiveSink{base: base}
	for _, opt := range opts {
		opt(s)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading archive base %s: %w", base, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "sweep-")
		if !ok {
			continue // unrelated subdirectory, not a rotation
		}
		if n, err := strconv.Atoi(rest); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// Dir returns the archive directory: the base directory in multi-sweep
// mode, the sweep directory otherwise.
func (s *ArchiveSink) Dir() string {
	if s.base != "" {
		return s.base
	}
	return s.w.Dir()
}

// Written returns the number of snapshots archived so far, across all
// sweeps.
func (s *ArchiveSink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// writer returns the current sweep's directory writer, opening the next
// rotation subdirectory on demand in multi-sweep mode.
func (s *ArchiveSink) writer() (*gprofile.DirWriter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		return s.w, nil
	}
	s.seq++
	w, err := gprofile.NewDirWriter(filepath.Join(s.base, fmt.Sprintf("sweep-%04d", s.seq)))
	if err != nil {
		return nil, err
	}
	s.w = w
	return w, nil
}

// Snapshot writes one snapshot through to disk.
func (s *ArchiveSink) Snapshot(snap *gprofile.Snapshot) {
	w, err := s.writer()
	if err == nil {
		err = w.Write(snap)
	}
	s.mu.Lock()
	if err != nil && s.writeErr == nil {
		s.writeErr = err
	}
	if err == nil {
		s.written++
	}
	s.mu.Unlock()
}

// SweepDone finalises the sweep's directory with its manifest — stamped
// with the sweep's recorded time — rotates in multi-sweep mode, prunes
// sweeps beyond the retention bound, and surfaces the first write error
// of the sweep, if any.
func (s *ArchiveSink) SweepDone(sweep *Sweep) error {
	s.mu.Lock()
	w, err := s.w, s.writeErr
	s.writeErr = nil
	if s.base != "" {
		s.w = nil // next sweep rotates into a fresh subdirectory
	}
	s.mu.Unlock()
	if w == nil {
		return err // multi-sweep mode, empty sweep: nothing archived
	}
	if merr := w.WriteManifest(sweep.At, sweep.Source); err == nil {
		err = merr
	}
	if perr := s.prune(); err == nil {
		err = perr
	}
	return err
}

// prune deletes the lowest-numbered finalised sweep subdirectories
// beyond the retention bound. Only directories with a readable manifest
// are candidates — a directory still being written (no manifest yet) or
// torn (corrupt manifest) is left alone. Ordering is by rotation
// sequence, i.e. recording order, not by the manifested sweep time: a
// replay of old history recorded into a retained archive is still the
// newest recording and must survive its own finalisation.
func (s *ArchiveSink) prune() error {
	if s.base == "" || s.keep <= 0 {
		return nil
	}
	entries, err := os.ReadDir(s.base)
	if err != nil {
		return fmt.Errorf("leakprof: pruning archive %s: %w", s.base, err)
	}
	type rotation struct {
		seq int
		dir string
	}
	var finalised []rotation
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "sweep-")
		if !ok {
			continue
		}
		seq, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		sub := filepath.Join(s.base, e.Name())
		if m, merr := gprofile.ReadManifest(sub); merr != nil || m == nil {
			continue // in-progress or torn: never a prune candidate
		}
		finalised = append(finalised, rotation{seq: seq, dir: sub})
	}
	sort.Slice(finalised, func(i, j int) bool { return finalised[i].seq < finalised[j].seq })
	for _, r := range finalised[:max(0, len(finalised)-s.keep)] {
		if err := os.RemoveAll(r.dir); err != nil {
			return fmt.Errorf("leakprof: pruning archived sweep %s: %w", r.dir, err)
		}
	}
	return nil
}
