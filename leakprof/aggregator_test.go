package leakprof

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// refAnalyze is the pre-streaming analyzer: per-instance count maps per
// group, statistics computed at the end. The aggregator must reproduce
// its output exactly.
func refAnalyze(threshold int, ranking Ranking, filters []OpFilter, snaps []*gprofile.Snapshot) []*Finding {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	type group struct {
		op      stack.BlockedOp
		perInst map[string]int
	}
	serviceInstances := map[string]int{}
	groups := map[string]map[stack.BlockedOp]*group{}
	for _, snap := range snaps {
		serviceInstances[snap.Service]++
		svc := groups[snap.Service]
		if svc == nil {
			svc = map[stack.BlockedOp]*group{}
			groups[snap.Service] = svc
		}
		for op, n := range filteredCounts(filters, snap) {
			g := svc[op]
			if g == nil {
				g = &group{op: op, perInst: map[string]int{}}
				svc[op] = g
			}
			g.perInst[snap.Instance] += n
		}
	}
	var findings []*Finding
	for service, svc := range groups {
		for _, g := range svc {
			f := &Finding{
				Service: service, Op: g.op.Op, Location: g.op.Location,
				Function: g.op.Function, NilChannel: g.op.NilChannel,
			}
			for inst, n := range g.perInst {
				f.TotalBlocked += n
				f.Instances++
				if n >= threshold {
					f.SuspiciousInstances++
				}
				if n > f.MaxCount || (n == f.MaxCount && inst < f.MaxInstance) {
					f.MaxCount, f.MaxInstance = n, inst
				}
			}
			if f.SuspiciousInstances == 0 {
				continue
			}
			f.Impact = impact(ranking, g.perInst, serviceInstances[service])
			findings = append(findings, f)
		}
	}
	sortFindings(findings)
	return findings
}

func sortFindings(findings []*Finding) {
	for i := 1; i < len(findings); i++ {
		for j := i; j > 0; j-- {
			a, b := findings[j-1], findings[j]
			if a.Impact > b.Impact || (a.Impact == b.Impact && a.Key() < b.Key()) {
				break
			}
			findings[j-1], findings[j] = b, a
		}
	}
}

// randomSweep synthesises a fleet sweep: several services, per-instance
// pre-aggregated counts at a handful of locations, occasional zeros.
func randomSweep(rng *rand.Rand) []*gprofile.Snapshot {
	var snaps []*gprofile.Snapshot
	for s := 0; s < 1+rng.Intn(4); s++ {
		service := fmt.Sprintf("svc%d", s)
		locs := 1 + rng.Intn(3)
		for i := 0; i < 1+rng.Intn(6); i++ {
			snap := &gprofile.Snapshot{
				Service:  service,
				Instance: fmt.Sprintf("%s-i%d", service, i),
				TakenAt:  time.Unix(0, 0),
			}
			for l := 0; l < locs; l++ {
				if rng.Intn(4) == 0 {
					continue // this instance is clean at this location
				}
				op := stack.BlockedOp{
					Op:       []string{"send", "receive", "select"}[l%3],
					Location: fmt.Sprintf("/%s/f%d.go:%d", service, l, 10+l),
					Function: fmt.Sprintf("%s.fn%d", service, l),
					WaitTime: int64(rng.Intn(3)) * int64(time.Minute),
				}
				if snap.PreAggregated == nil {
					snap.PreAggregated = map[stack.BlockedOp]int{}
				}
				snap.PreAggregated[op] = rng.Intn(300)
			}
			snaps = append(snaps, snap)
		}
	}
	return snaps
}

// TestAggregatorMatchesReference drives random sweeps through both the
// streaming aggregator and the per-instance-map reference across every
// ranking, asserting identical findings.
func TestAggregatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		snaps := randomSweep(rng)
		threshold := 1 + rng.Intn(200)
		for _, ranking := range []Ranking{RankRMS, RankMean, RankMax, RankTotal} {
			a := &Analyzer{Threshold: threshold, Ranking: ranking}
			got := a.Analyze(snaps)
			want := refAnalyze(threshold, ranking, nil, snaps)
			if len(got) != len(want) {
				t.Fatalf("trial %d ranking %s: %d findings, want %d", trial, ranking, len(got), len(want))
			}
			for i := range want {
				if !findingsEqual(got[i], want[i]) {
					t.Fatalf("trial %d ranking %s finding %d:\ngot  %+v\nwant %+v",
						trial, ranking, i, got[i], want[i])
				}
			}
		}
	}
}

func findingsEqual(a, b *Finding) bool {
	const eps = 1e-9
	if math.Abs(a.Impact-b.Impact) > eps*math.Max(1, math.Abs(b.Impact)) {
		return false
	}
	ac, bc := *a, *b
	ac.Impact, bc.Impact = 0, 0
	return reflect.DeepEqual(ac, bc)
}

// TestAggregatorConcurrentAdds folds a sweep from many goroutines at
// once — the collector's actual usage — and checks the result is
// identical to a serial fold.
func TestAggregatorConcurrentAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var snaps []*gprofile.Snapshot
	for i := 0; i < 8; i++ {
		snaps = append(snaps, randomSweep(rng)...)
	}
	// Deduplicate (service, instance): each instance is added once.
	seen := map[string]bool{}
	uniq := snaps[:0]
	for _, s := range snaps {
		k := s.Service + "/" + s.Instance
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, s)
		}
	}

	analyzer := &Analyzer{Threshold: 50}
	serial := analyzer.NewAggregator()
	for _, s := range uniq {
		serial.Add(s)
	}

	concurrent := analyzer.NewAggregator()
	var wg sync.WaitGroup
	for _, s := range uniq {
		wg.Add(1)
		go func(s *gprofile.Snapshot) {
			defer wg.Done()
			concurrent.Add(s)
		}(s)
	}
	wg.Wait()

	if concurrent.Profiles() != serial.Profiles() {
		t.Fatalf("profiles = %d, want %d", concurrent.Profiles(), serial.Profiles())
	}
	got, want := concurrent.Findings(RankRMS), serial.Findings(RankRMS)
	if len(got) != len(want) {
		t.Fatalf("%d findings, want %d", len(got), len(want))
	}
	for i := range want {
		if !findingsEqual(got[i], want[i]) {
			t.Fatalf("finding %d:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestAggregatorAppliesFilters checks criterion-2 filters run before wait
// durations are folded away.
func TestAggregatorAppliesFilters(t *testing.T) {
	fresh := stack.BlockedOp{Op: "send", Location: "/svc/l.go:5", Function: "svc.leak", WaitTime: int64(2 * time.Second)}
	stuck := stack.BlockedOp{Op: "send", Location: "/svc/l.go:5", Function: "svc.leak", WaitTime: int64(3 * time.Hour)}
	snap := &gprofile.Snapshot{
		Service: "svc", Instance: "i1",
		PreAggregated: map[stack.BlockedOp]int{fresh: 500, stuck: 700},
	}
	agg := NewAggregator(100, FilterMinWait(10*time.Minute))
	agg.Add(snap)
	findings := agg.Findings(RankRMS)
	if len(findings) != 1 || findings[0].TotalBlocked != 700 {
		t.Fatalf("findings = %+v, want one with 700 blocked (fresh filtered)", findings)
	}
}

// TestAggregatorZeroInstancesCountTowardDenominator mirrors the paper's
// RMS rationale: profiled-but-clean instances lower the statistic.
func TestAggregatorZeroInstancesCountTowardDenominator(t *testing.T) {
	op := stack.BlockedOp{Op: "send", Location: "/svc/l.go:5", Function: "svc.leak"}
	mkSnap := func(inst string, n int) *gprofile.Snapshot {
		s := &gprofile.Snapshot{Service: "svc", Instance: inst}
		if n > 0 {
			s.PreAggregated = map[stack.BlockedOp]int{op: n}
		}
		return s
	}
	small := NewAggregator(100)
	small.Add(mkSnap("i1", 400))
	large := NewAggregator(100)
	large.Add(mkSnap("i1", 400))
	for i := 0; i < 3; i++ {
		large.Add(mkSnap(fmt.Sprintf("clean%d", i), 0))
	}
	si, li := small.Findings(RankRMS)[0].Impact, large.Findings(RankRMS)[0].Impact
	if li >= si {
		t.Errorf("RMS with clean instances = %f, want below %f", li, si)
	}
	// sqrt(400^2 / 4) = 200 with three zero-padded instances.
	if math.Abs(li-200) > 1e-9 {
		t.Errorf("RMS over 4 instances = %f, want 200", li)
	}
}
