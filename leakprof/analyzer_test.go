package leakprof

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// snap builds a snapshot with n goroutines blocked at the given op/location
// plus some benign background goroutines.
func snap(service, instance string, blocked map[stack.BlockedOp]int) *gprofile.Snapshot {
	s := &gprofile.Snapshot{Service: service, Instance: instance, TakenAt: time.Unix(0, 0)}
	id := int64(1)
	for op, n := range blocked {
		state := map[string]string{"send": "chan send", "receive": "chan receive", "select": "select"}[op.Op]
		for i := 0; i < n; i++ {
			s.Goroutines = append(s.Goroutines, &stack.Goroutine{
				ID:    id,
				State: state,
				Frames: []stack.Frame{{
					Function: op.Function,
					File:     op.Location[:len(op.Location)-2], // strip ":N"
					Line:     atoiTail(op.Location),
				}},
			})
			id++
		}
	}
	// Background noise: a running goroutine and an IO-wait goroutine.
	s.Goroutines = append(s.Goroutines,
		&stack.Goroutine{ID: id, State: "running", Frames: []stack.Frame{{Function: "svc.handler", File: "/svc/h.go", Line: 1}}},
		&stack.Goroutine{ID: id + 1, State: "IO wait", Frames: []stack.Frame{{Function: "svc.read", File: "/svc/r.go", Line: 2}}},
	)
	return s
}

func atoiTail(loc string) int {
	var n int
	fmt.Sscanf(loc[len(loc)-1:], "%d", &n)
	return n
}

func op(kind, fn, loc string) stack.BlockedOp {
	return stack.BlockedOp{Op: kind, Function: fn, Location: loc}
}

func TestAnalyzeThreshold(t *testing.T) {
	leaky := op("send", "svc.leak", "/svc/l.go:5")
	benign := op("receive", "svc.poll", "/svc/p.go:9")
	snaps := []*gprofile.Snapshot{
		snap("svc", "i1", map[stack.BlockedOp]int{leaky: 150, benign: 3}),
		snap("svc", "i2", map[stack.BlockedOp]int{leaky: 80, benign: 2}),
	}
	a := &Analyzer{Threshold: 100}
	findings := a.Analyze(snaps)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Location != "/svc/l.go:5" || f.Op != "send" {
		t.Errorf("finding = %+v", f)
	}
	if f.TotalBlocked != 230 {
		t.Errorf("total = %d, want 230", f.TotalBlocked)
	}
	if f.Instances != 2 || f.SuspiciousInstances != 1 {
		t.Errorf("instances = %d suspicious = %d", f.Instances, f.SuspiciousInstances)
	}
	if f.MaxInstance != "i1" || f.MaxCount != 150 {
		t.Errorf("representative = %s/%d", f.MaxInstance, f.MaxCount)
	}
	wantRMS := math.Sqrt((150.0*150 + 80*80) / 2)
	if math.Abs(f.Impact-wantRMS) > 1e-9 {
		t.Errorf("impact = %f, want %f", f.Impact, wantRMS)
	}
}

func TestAnalyzeBelowThresholdEverywhere(t *testing.T) {
	leaky := op("send", "svc.leak", "/svc/l.go:5")
	snaps := []*gprofile.Snapshot{
		snap("svc", "i1", map[stack.BlockedOp]int{leaky: 99}),
		snap("svc", "i2", map[stack.BlockedOp]int{leaky: 99}),
	}
	a := &Analyzer{Threshold: 100}
	if findings := a.Analyze(snaps); len(findings) != 0 {
		t.Errorf("sub-threshold location reported: %+v", findings)
	}
}

func TestAnalyzeDefaultThreshold(t *testing.T) {
	leaky := op("select", "svc.w", "/svc/w.go:3")
	snaps := []*gprofile.Snapshot{
		snap("svc", "i1", map[stack.BlockedOp]int{leaky: DefaultThreshold}),
	}
	a := &Analyzer{}
	if findings := a.Analyze(snaps); len(findings) != 1 {
		t.Errorf("10K cluster not reported with default threshold")
	}
	snaps = []*gprofile.Snapshot{
		snap("svc", "i1", map[stack.BlockedOp]int{leaky: DefaultThreshold - 1}),
	}
	if findings := a.Analyze(snaps); len(findings) != 0 {
		t.Errorf("9999 cluster reported with default threshold")
	}
}

func TestAnalyzeOpFilter(t *testing.T) {
	tick := op("select", "svc.ticker", "/svc/t.go:7")
	leak := op("send", "svc.leak", "/svc/l.go:5")
	snaps := []*gprofile.Snapshot{
		snap("svc", "i1", map[stack.BlockedOp]int{tick: 500, leak: 500}),
	}
	a := &Analyzer{
		Threshold: 100,
		Filters: []OpFilter{func(o stack.BlockedOp) bool {
			return o.Function == "svc.ticker" // criterion 2: provably transient
		}},
	}
	findings := a.Analyze(snaps)
	if len(findings) != 1 || findings[0].Function != "svc.leak" {
		t.Errorf("findings = %+v", findings)
	}
}

func TestAnalyzeSeparatesServices(t *testing.T) {
	loc := op("send", "lib.leak", "/lib/l.go:5")
	snaps := []*gprofile.Snapshot{
		snap("svcA", "a1", map[stack.BlockedOp]int{loc: 200}),
		snap("svcB", "b1", map[stack.BlockedOp]int{loc: 300}),
	}
	a := &Analyzer{Threshold: 100}
	findings := a.Analyze(snaps)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (one per service)", len(findings))
	}
	// Ordered by impact: svcB's 300 outranks svcA's 200.
	if findings[0].Service != "svcB" || findings[1].Service != "svcA" {
		t.Errorf("order = %s, %s", findings[0].Service, findings[1].Service)
	}
}

func TestRMSHighlightsConcentration(t *testing.T) {
	// The paper's rationale for RMS: one instance with a huge cluster
	// must outrank many instances with small clusters, even when the
	// totals are equal.
	concentrated := op("send", "a.leak", "/a/l.go:1")
	diffuse := op("send", "b.leak", "/b/l.go:2")

	var snaps []*gprofile.Snapshot
	snaps = append(snaps, snap("svcA", "a1", map[stack.BlockedOp]int{concentrated: 16000}))
	for i := 0; i < 15; i++ {
		snaps = append(snaps, snap("svcA", fmt.Sprintf("a%d", i+2), nil))
	}
	for i := 0; i < 16; i++ {
		snaps = append(snaps, snap("svcB", fmt.Sprintf("b%d", i+1), map[stack.BlockedOp]int{diffuse: 1000}))
	}

	a := &Analyzer{Threshold: 1000}
	findings := a.Analyze(snaps)
	if len(findings) != 2 {
		t.Fatalf("got %d findings: %+v", len(findings), findings)
	}
	if findings[0].Function != "a.leak" {
		t.Errorf("RMS should rank the concentrated cluster first; got %s", findings[0].Function)
	}
	if findings[0].TotalBlocked != findings[1].TotalBlocked {
		t.Fatalf("test setup broken: totals differ (%d vs %d)",
			findings[0].TotalBlocked, findings[1].TotalBlocked)
	}

	// Under RankTotal the two tie; under RankMax concentrated still wins.
	at := &Analyzer{Threshold: 1000, Ranking: RankTotal}
	ft := at.Analyze(snaps)
	if ft[0].Impact != ft[1].Impact {
		t.Errorf("totals should tie: %f vs %f", ft[0].Impact, ft[1].Impact)
	}
}

func TestImpactStatistics(t *testing.T) {
	perInst := map[string]int{"a": 3, "b": 4}
	if got := impact(RankMean, perInst, 2); got != 3.5 {
		t.Errorf("mean = %f", got)
	}
	if got := impact(RankMax, perInst, 2); got != 4 {
		t.Errorf("max = %f", got)
	}
	if got := impact(RankTotal, perInst, 2); got != 7 {
		t.Errorf("total = %f", got)
	}
	want := math.Sqrt((9.0 + 16.0) / 2.0)
	if got := impact(RankRMS, perInst, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("rms = %f, want %f", got, want)
	}
	// Zero-padded instances lower RMS and mean.
	if impact(RankRMS, perInst, 4) >= impact(RankRMS, perInst, 2) {
		t.Error("RMS should shrink with more profiled instances")
	}
}

func TestImpactProperties(t *testing.T) {
	// Properties: max >= rms >= mean for non-negative counts (by the
	// power-mean inequality), and all are non-negative.
	f := func(counts []uint16) bool {
		if len(counts) == 0 {
			return true
		}
		perInst := map[string]int{}
		for i, c := range counts {
			perInst[fmt.Sprintf("i%d", i)] = int(c)
		}
		n := len(perInst)
		mean := impact(RankMean, perInst, n)
		rms := impact(RankRMS, perInst, n)
		max := impact(RankMax, perInst, n)
		const eps = 1e-9
		return mean >= -eps && rms+eps >= mean && max+eps >= rms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankingString(t *testing.T) {
	for r, want := range map[Ranking]string{
		RankRMS: "rms", RankMean: "mean", RankMax: "max", RankTotal: "total",
		Ranking(99): "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("Ranking(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestFindingKeyUniqueness(t *testing.T) {
	a := &Finding{Service: "s", Op: "send", Location: "/a.go:1"}
	b := &Finding{Service: "s", Op: "receive", Location: "/a.go:1"}
	c := &Finding{Service: "s2", Op: "send", Location: "/a.go:1"}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Error("keys collide across distinct findings")
	}
}
