package leakprof

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/gprofile"
)

// RetryPolicy bounds how collection retries a failing endpoint. A fleet
// sweep historically gave each instance one shot; production collection
// wants a bounded number of attempts with jittered exponential backoff so
// a deploying instance gets a second chance without a retry storm
// hammering a struggling one.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per endpoint, including
	// the first; values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt, doubling per
	// subsequent attempt. Zero means 100ms.
	BaseDelay time.Duration
	// MaxDelay is the backoff ceiling, applied after jitter — no sleep
	// ever exceeds it. Zero means 5s.
	MaxDelay time.Duration
	// Jitter is the random fraction added to each delay: a delay d
	// becomes d * (1 + Jitter*u) for uniform u in [0, 1). Negative means
	// none; zero means the default 0.5.
	Jitter float64
}

// DefaultRetryPolicy is the production collection default: three tries
// with 100ms/200ms backoff, half-width jitter, capped at 5s.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the jittered backoff before attempt (1-based count of
// failures so far); rnd supplies uniform [0, 1) randomness.
func (p RetryPolicy) delay(attempt int, rnd func() float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > max { // shift overflow or past the ceiling
		d = max
	}
	jitter := p.Jitter
	switch {
	case jitter < 0:
		jitter = 0
	case jitter == 0:
		jitter = 0.5
	}
	d += time.Duration(float64(d) * jitter * rnd())
	if d > max {
		d = max
	}
	return d
}

// ErrBudgetExhausted marks instances skipped because their service
// already burned its per-sweep error budget.
var ErrBudgetExhausted = errors.New("leakprof: service error budget exhausted")

// errorBudget tracks post-retry fetch failures per service during one
// sweep. Once a service accumulates `budget` failed instances, its
// remaining instances short-circuit: a service that is down fleet-wide
// (or mid-deploy) should cost the sweep `budget` timeouts, not one
// timeout per instance times retries.
type errorBudget struct {
	budget int
	mu     sync.Mutex
	failed map[string]int
}

// newErrorBudget builds the sweep's budget, optionally seeded with the
// previous sweep's per-service failure counts (the state journal's
// FailedByService): a service that burned budget yesterday starts today
// already partially spent — a reduced probe budget — but always keeps at
// least one probe, so a recovered service re-enters the sweep instead of
// being short-circuited forever.
func newErrorBudget(budget int, prevFailures map[string]int) *errorBudget {
	if budget <= 0 {
		return nil // unlimited
	}
	b := &errorBudget{budget: budget, failed: make(map[string]int)}
	for service, failed := range prevFailures {
		if failed <= 0 {
			continue
		}
		seed := failed
		if seed > budget-1 {
			seed = budget - 1
		}
		if seed > 0 {
			b.failed[service] = seed
		}
	}
	return b
}

// exhausted reports whether the service's budget is spent.
func (b *errorBudget) exhausted(service string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failed[service] >= b.budget
}

// spend records one failed instance against the service.
func (b *errorBudget) spend(service string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failed[service]++
	b.mu.Unlock()
}

// fetchFleet is the engine's HTTP collection loop, shared by the Pipeline
// EndpointSource and the deprecated Collector entry points: bounded
// parallelism, bounded retry with jittered backoff, per-service error
// budgets (optionally pre-seeded with prevFailures, the previous sweep's
// journaled per-service failure counts), and each response body streaming
// straight through the stack scanner. deliver is called exactly once per
// endpoint, concurrently.
func fetchFleet(ctx context.Context, cfg *Config, prevFailures map[string]int, endpoints []Endpoint, deliver func(i int, snap *gprofile.Snapshot, err error)) {
	client := cfg.httpClient()
	budget := newErrorBudget(cfg.ErrorBudget, prevFailures)
	sem := make(chan struct{}, cfg.parallelism())
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep Endpoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if budget.exhausted(ep.Service) {
				deliver(i, nil, fmt.Errorf("leakprof: skipping %s/%s: %w", ep.Service, ep.Instance, ErrBudgetExhausted))
				return
			}
			snap, err := fetchWithRetry(ctx, cfg, client, ep)
			if err != nil {
				budget.spend(ep.Service)
			}
			deliver(i, snap, err)
		}(i, ep)
	}
	wg.Wait()
}

// fetchWithRetry runs one endpoint's fetch under the retry policy,
// giving up when attempts are exhausted or the context dies.
func fetchWithRetry(ctx context.Context, cfg *Config, client *http.Client, ep Endpoint) (*gprofile.Snapshot, error) {
	policy := cfg.Retry
	for attempts := 1; ; attempts++ {
		snap, err := fetchOne(ctx, cfg, client, ep)
		if err == nil {
			return snap, nil
		}
		stop := attempts >= policy.attempts() || ctx.Err() != nil
		if !stop {
			stop = cfg.sleepFn()(ctx, policy.delay(attempts, cfg.randFn())) != nil
		}
		if stop {
			if attempts > 1 {
				err = fmt.Errorf("%w (after %d attempts)", err, attempts)
			}
			return nil, err
		}
	}
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
