package leakprof

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/report"
)

// StateFileName is the v1 monolithic journal file: one JSON document
// rewritten after every sweep. Opening a state dir that still carries one
// loads it seamlessly; the next persisted sweep migrates it into the
// segmented journal and removes it.
const StateFileName = "state.json"

// StateManifestName is the segmented journal's manifest: a tiny pointer
// document naming the first live segment and the codec new frames are
// written with. Compaction makes its fold atomic by writing the new
// snapshot segment first and then swinging this pointer; only segments at
// or after the pointer are live.
const StateManifestName = "journal.json"

// StateVersion is the current journal format version: 3 is the segmented
// log carrying binary-codec frames (negotiated via the manifest's codec
// field); 2 was the same segment layout with JSON-only frames, and 1 the
// monolithic state.json. A store refuses to load a journal from the
// future rather than silently misreading it, reads versions 1–3, and
// keeps writing version-2 manifests while the journal stays JSON so a
// v2-era reader can still open it.
const StateVersion = 3

// stateVersionJSON is the manifest version written while every frame in
// the journal is JSON: the compatibility dialect older readers accept.
const stateVersionJSON = 2

// Compaction defaults: the active segment rolls over past
// DefaultStateSegmentBytes, and once more than DefaultStateMaxSegments
// segments are live the store folds them into one snapshot segment.
const (
	DefaultStateSegmentBytes = int64(4 << 20)
	DefaultStateMaxSegments  = 8
)

// maxFrameBytes bounds one journal frame; a length prefix beyond it is
// treated as corruption rather than an allocation request. It, the
// frame header, and the torn/corrupt distinction live in internal/frame,
// which the shard-report wire format and the static findings index
// share.
const maxFrameBytes = frame.MaxPayload

// frameHeaderSize is the per-frame framing overhead: a 4-byte big-endian
// payload length followed by a 4-byte CRC-32 (IEEE) of the payload.
const frameHeaderSize = frame.HeaderSize

// journalRecord is one frame's payload. A "delta" frame carries what one
// sweep changed — the dirty bugs, the new trend observations, the sweep
// outcome — and replays by accumulation; a "snapshot" frame carries the
// whole state and replays by replacement, which is what makes compaction
// (and its crash windows) safe: replaying old deltas and then a snapshot
// yields exactly the snapshot's state.
type journalRecord struct {
	Kind    string                        `json:"kind"` // "delta" or "snapshot"
	SavedAt time.Time                     `json:"saved_at"`
	Bugs    []report.Bug                  `json:"bugs,omitempty"`
	Trend   map[string][]TrendObservation `json:"trend,omitempty"`
	Sweep   *SweepRecord                  `json:"sweep,omitempty"`
}

const (
	recordDelta    = "delta"
	recordSnapshot = "snapshot"
)

// stateManifest is the on-disk form of StateManifestName.
type stateManifest struct {
	FormatVersion int `json:"format_version"`
	// BaseSegment is the first live segment. Segments below it are
	// pre-compaction leftovers, deleted on open.
	BaseSegment int `json:"base_segment"`
	// Codec names the encoding new frames are appended with ("json" or
	// "binary"). Reading never needs it — frames self-describe — but a
	// reopened store adopts it so a journal keeps one dialect unless the
	// caller explicitly switches, and a v2-era reader is version-gated
	// away from binary frames it cannot decode.
	Codec StateCodec `json:"codec,omitempty"`
}

// stateJournalV1 is the legacy monolithic journal, kept for migration.
type stateJournalV1 struct {
	FormatVersion int                           `json:"format_version"`
	SavedAt       time.Time                     `json:"saved_at"`
	Bugs          []report.Bug                  `json:"bugs,omitempty"`
	Trend         map[string][]TrendObservation `json:"trend,omitempty"`
	LastSweep     *SweepRecord                  `json:"last_sweep,omitempty"`
}

// SweepRecord is the journaled outcome of one sweep: the operational
// facts the next sweep needs (its error-budget seed) plus the headline
// numbers a dashboard wants across restarts.
type SweepRecord struct {
	// At is the sweep's start timestamp.
	At time.Time `json:"at"`
	// Source names the profile origin that fed the sweep.
	Source string `json:"source,omitempty"`
	// Profiles, Errors, and Findings are the sweep's headline counts.
	Profiles int `json:"profiles"`
	Errors   int `json:"errors"`
	Findings int `json:"findings"`
	// FailedByService is the uncapped per-service count of failed
	// instances — the seed for the next sweep's error budget.
	FailedByService map[string]int `json:"failed_by_service,omitempty"`
}

// SyncPolicy decides when appended journal frames are fsynced durable.
// The default, SyncEverySweep, syncs inside every RecordSweep: no
// recorded sweep is ever lost to a crash, at the cost of one fsync on
// the sweep's critical path. SyncEvery(n, d) is group commit: appends
// return after the buffered write, and one Sync covers every frame
// appended in the window (n frames or d elapsed, whichever first) —
// the policy for sub-daily cadences where per-sweep fsync dominates.
// SyncOnClose defers every sync to Flush/Close: the benchmark-and-test
// policy, or fleets where losing the tail of an interrupted run is
// acceptable.
//
// The loss window follows the policy: on a crash (process kill), frames
// appended since the last sync may be torn from the tail of the active
// segment, and recovery truncates back to the last complete frame — up
// to the unsynced window is lost, never anything before it. (That bound
// assumes fail-stop: on power loss, a disk that reorders unflushed pages
// could corrupt a mid-window frame, which recovery refuses to silently
// truncate because durable frames follow it.)
type SyncPolicy struct {
	mode   syncMode
	every  int
	window time.Duration
}

type syncMode int

const (
	syncModeEverySweep syncMode = iota
	syncModeWindow
	syncModeOnClose
)

// SyncEverySweep syncs every appended frame before RecordSweep returns:
// the strictest policy and the default.
var SyncEverySweep = SyncPolicy{mode: syncModeEverySweep}

// SyncOnClose defers all syncing to Flush/Close.
var SyncOnClose = SyncPolicy{mode: syncModeOnClose}

// SyncEvery returns a group-commit policy: one Sync per window of up to n
// appended frames or d elapsed since the window's first unsynced append,
// whichever comes first. n <= 0 disables the count trigger, d <= 0 the
// timer; both disabled is SyncOnClose in effect. The window is measured
// on the store's clock (StateClock — the pipeline's WithClock clock
// flows through), so simulations drive the timed sync deterministically
// by advancing their fake clock; the background committer goroutine only
// schedules the off-critical-path sync, it does not define the window.
func SyncEvery(n int, d time.Duration) SyncPolicy {
	return SyncPolicy{mode: syncModeWindow, every: n, window: d}
}

// String names the policy for flag and log surfaces.
func (p SyncPolicy) String() string {
	switch p.mode {
	case syncModeWindow:
		return fmt.Sprintf("every(%d,%s)", p.every, p.window)
	case syncModeOnClose:
		return "close"
	default:
		return "sweep"
	}
}

// ParseSyncPolicy decodes a policy from its flag form: "sweep", "close",
// or "N" / "N/duration" for group commit (e.g. "8", "8/2s", "0/500ms").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "sweep":
		return SyncEverySweep, nil
	case "close":
		return SyncOnClose, nil
	}
	countPart, durPart, hasDur := strings.Cut(s, "/")
	n, err := strconv.Atoi(countPart)
	if err != nil {
		return SyncPolicy{}, fmt.Errorf("leakprof: fsync policy %q: want sweep, close, N, or N/duration", s)
	}
	var d time.Duration
	if hasDur {
		if d, err = time.ParseDuration(durPart); err != nil {
			return SyncPolicy{}, fmt.Errorf("leakprof: fsync policy %q: %w", s, err)
		}
	}
	return SyncEvery(n, d), nil
}

// StateStore is the pipeline's durable memory: the bug database (filed
// findings), the cross-sweep trend history (with the aggregator moments
// behind variance-aware verdicts), and the previous sweep's outcome. The
// paper's workflow is a daily fleet sweep whose value is history — bugs
// filed once, trends across days, budgets informed by yesterday — so the
// journal is what makes a restarted pipeline resume rather than start
// blind.
//
// On disk the store is a segmented append-only log. Every recorded sweep
// appends one length-prefixed, CRC-checksummed frame — the sweep's
// delta — to the active segment-NNNN.log, so the per-sweep write cost is
// proportional to what the sweep changed, not to every key ever tracked.
// Frames are encoded with the negotiated StateCodec (binary by default,
// JSON as the v2-compatible fallback; frames self-describe, so
// mixed-codec journals replay). Durability follows the SyncPolicy:
// by default every append is fsynced before RecordSweep returns, and
// under group commit one fsync covers a whole window of sweeps.
// Recovery replays segments in order; a torn tail frame (a crash mid-
// append) is truncated rather than failing the open, losing at most the
// unsynced window. When the active segment outgrows its size bound the
// store rolls to the next segment, and once more than a bounded number
// of segments are live it compacts concurrently: the full state is
// folded from a copy while sweeps keep appending — onto a segment past
// the snapshot's reserved slot, so they stay durable and replay behind
// it — and the journal.json manifest pointer swings to the snapshot
// segment atomically. No sweep ever blocks on the fold. A state dir still holding the v1 monolithic
// state.json opens seamlessly and is migrated to segments by the next
// persisted sweep.
//
// Open a store, wire its BugDB and Tracker into the sinks, and attach it
// to the pipeline:
//
//	store, err := leakprof.OpenStateStore(dir)
//	pipe := leakprof.New(leakprof.WithStateDir(dir), ...)
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB()}},
//		&leakprof.TrendSink{Tracker: store.Tracker()},
//	)
//
// (Pipeline.State returns the same store the pipeline opened — with the
// pipeline's clock, compaction thresholds, sync policy, codec, and
// retention windows wired in — so the explicit OpenStateStore call is
// optional.)
type StateStore struct {
	dir string
	now func() time.Time

	segmentBytes  int64 // roll the active segment beyond this size
	maxSegments   int   // compact once more than this many segments are live
	syncPolicy    SyncPolicy
	codec         StateCodec
	codecExplicit bool          // caller pinned the codec; manifest does not override
	bugRetention  time.Duration // age-out window for closed bugs (0 = keep forever)

	mu      sync.Mutex
	db      *report.DB
	tracker *TrendTracker
	last    *SweepRecord

	base        int      // first live segment (manifest pointer; 0 = none)
	activeSeq   int      // highest live segment, where appends go (0 = none yet)
	active      *os.File // open append handle for the active segment
	activeSize  int64
	segCount    int       // live segments on disk
	legacy      bool      // a v1 state.json is loaded/stale; next persist compacts it away
	appended    int64     // total frame bytes appended since open (telemetry)
	syncs       int64     // total fsyncs issued since open (telemetry)
	unsynced    int       // frames appended to the active segment since its last sync
	windowStart time.Time // store-clock time of the window's first unsynced append
	foldPauses  int64     // concurrent-fold input captures since open (telemetry)
	foldPauseNS int64     // cumulative store-lock pause of those captures

	// Segment string dictionary (binary codec): the cumulative table the
	// active segment's version-3 frames reference and append to. A roll
	// resets it, carrying a bounded seed over via a dictionary frame at
	// the new segment's head; recovery rebuilds it by replaying the
	// active segment. Appended strings commit only after their frame's
	// write succeeds, so the dictionary never references strings the
	// on-disk segment does not declare.
	segDict     *frame.Dict
	pendingSeed []string // dictionary seed owed to the head of a fresh segment

	// Group-commit committer: a background goroutine issuing the
	// time-window sync so it never rides a sweep's critical path.
	committerWake chan struct{}
	committerQuit chan struct{}
	committerDone chan struct{}

	// Concurrent compaction: while folding, appends continue normally —
	// into segments numbered after the snapshot's reserved slot, so they
	// are durable per policy and replay behind the snapshot — and only
	// the next fold trigger is suppressed.
	folding  bool
	foldDone chan struct{}
	asyncErr error // background fold/committer errors, surfaced on the next store call
}

// StateOption tunes a StateStore at open time.
type StateOption func(*StateStore)

// StateClock injects the store's timestamp source, used to stamp every
// journal frame's SavedAt. The pipeline passes its own clock through, so
// a run under a fake WithClock clock produces deterministic journal
// timestamps.
func StateClock(now func() time.Time) StateOption {
	return func(s *StateStore) {
		if now != nil {
			s.now = now
		}
	}
}

// StateCompaction sets the journal's compaction thresholds: the active
// segment rolls over once it exceeds segmentBytes, and a fold into one
// snapshot segment runs once more than maxSegments segments are live.
// Non-positive values keep the defaults.
func StateCompaction(segmentBytes int64, maxSegments int) StateOption {
	return func(s *StateStore) {
		if segmentBytes > 0 {
			s.segmentBytes = segmentBytes
		}
		if maxSegments > 0 {
			s.maxSegments = maxSegments
		}
	}
}

// StateTrendRetention bounds the trend history to the last n observations
// per key. The window is honored everywhere: verdicts and exports see at
// most n observations, restores trim longer histories, and compaction
// rewrites the journal without the trimmed past, so the state dir stops
// growing with the age of the deployment. Zero keeps unlimited history.
func StateTrendRetention(n int) StateOption {
	return func(s *StateStore) {
		if n > 0 {
			s.tracker.Retention = n
		}
	}
}

// StateSync sets the store's fsync policy (default SyncEverySweep).
func StateSync(p SyncPolicy) StateOption {
	return func(s *StateStore) { s.syncPolicy = p }
}

// StateFrameCodec pins the codec new frames are written with, overriding
// what the journal's manifest negotiated. Reading is codec-agnostic
// either way.
func StateFrameCodec(c StateCodec) StateOption {
	return func(s *StateStore) {
		if c.valid() {
			s.codec = c
			s.codecExplicit = true
		}
	}
}

// StateBugRetention ages closed (fixed or rejected) bugs out of the
// store once their last sighting is older than age: they leave the
// in-memory database, stop riding delta frames, and are excluded from
// compaction folds, so neither memory nor the journal grows with every
// defect ever resolved. Open bugs never age out — dedup against a
// still-open report must hold however old it is. Zero keeps everything.
func StateBugRetention(age time.Duration) StateOption {
	return func(s *StateStore) {
		if age > 0 {
			s.bugRetention = age
		}
	}
}

// OpenStateStore creates dir if needed and recovers its journal. The
// returned store's BugDB and Tracker are pre-seeded with everything the
// journal recorded; a missing journal yields an empty store, and a v1
// state.json is loaded for migration. A corrupt or future-versioned
// journal is an error — silently discarding filed bugs would re-alert
// every owner on the next sweep — with one deliberate exception: a torn
// tail frame in the active segment (a crash mid-append) is truncated, so
// recovery loses at most the frames the sync policy had not yet made
// durable.
func OpenStateStore(dir string, opts ...StateOption) (*StateStore, error) {
	if dir == "" {
		return nil, errors.New("leakprof: state dir must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("leakprof: creating state dir %s: %w", dir, err)
	}
	s := &StateStore{
		dir:          dir,
		now:          time.Now,
		segmentBytes: DefaultStateSegmentBytes,
		maxSegments:  DefaultStateMaxSegments,
		syncPolicy:   SyncEverySweep,
		codec:        StateCodecBinary,
		db:           report.NewDB(),
		tracker:      &TrendTracker{},
	}
	for _, opt := range opts {
		opt(s)
	}
	// Arm the tracker's delta export before any observation is recorded:
	// this store is the journal that drains it.
	s.tracker.TakeNew()
	if err := s.recover(); err != nil {
		return nil, err
	}
	if s.bugRetention > 0 {
		// Replayed deltas resurrect aged-out closed bugs; re-apply the
		// window so recovery and a live store agree on what exists.
		s.db.DropAged(s.now().Add(-s.bugRetention))
	}
	return s, nil
}

// recover loads the on-disk journal into the store: manifest, leftover
// deletion, segment replay (with tail truncation), and the v1 fallback.
func (s *StateStore) recover() error {
	manifest, err := s.readManifest()
	if err != nil {
		return err
	}
	if manifest != nil {
		s.base = manifest.BaseSegment
		// Codec negotiation: keep writing the journal's dialect unless
		// the caller explicitly switched it.
		if !s.codecExplicit && manifest.Codec.valid() {
			s.codec = manifest.Codec
		} else if !s.codecExplicit && manifest.FormatVersion <= stateVersionJSON {
			// A v2 manifest predates the codec field: its journal is JSON.
			s.codec = StateCodecJSON
		}
	}
	seqs, err := s.listSegments()
	if err != nil {
		return err
	}
	// A fold that crashed mid-stage leaves its snapshot as a .segment-*
	// temp file (the rename never happened); it was never referenced, so
	// sweep it up.
	if entries, derr := os.ReadDir(s.dir); derr == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), ".segment-") {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	// Segments below the manifest pointer are pre-compaction leftovers —
	// the fold completed (the pointer only swings after the snapshot
	// segment is durable) but the crash hit before their deletion.
	var live []int
	for _, seq := range seqs {
		if seq < s.base {
			os.Remove(s.segmentPath(seq))
			continue
		}
		live = append(live, seq)
	}
	if s.base == 0 && len(live) > 0 {
		s.base = live[0]
	}
	if len(live) == 0 {
		if manifest != nil {
			return fmt.Errorf("leakprof: state manifest %s points at segment %d but its segments are missing",
				filepath.Join(s.dir, StateManifestName), s.base)
		}
		return s.loadV1()
	}
	for i, seq := range live {
		if err := s.replaySegment(seq, i == len(live)-1); err != nil {
			return err
		}
	}
	s.activeSeq = live[len(live)-1]
	s.segCount = len(live)
	if fi, err := os.Stat(s.segmentPath(s.activeSeq)); err == nil {
		s.activeSize = fi.Size()
	}
	// A v1 state.json alongside segments is a migration interrupted
	// after the fold became durable; the segments win, and the stale
	// file goes with the next compaction.
	if _, err := os.Stat(filepath.Join(s.dir, StateFileName)); err == nil {
		s.legacy = true
	}
	return nil
}

// loadV1 loads the legacy monolithic state.json, marking the store for
// migration: the next persisted sweep compacts the whole state into the
// first snapshot segment and removes the file.
func (s *StateStore) loadV1() error {
	path := filepath.Join(s.dir, StateFileName)
	body, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("leakprof: reading state journal: %w", err)
	}
	var j stateJournalV1
	if err := json.Unmarshal(body, &j); err != nil {
		return fmt.Errorf("leakprof: decoding state journal %s: %w", path, err)
	}
	if j.FormatVersion > 1 {
		return fmt.Errorf("leakprof: state journal %s has format version %d; monolithic journals end at version 1 (current format %d is segmented)",
			path, j.FormatVersion, StateVersion)
	}
	s.db.Restore(j.Bugs)
	s.tracker.Restore(j.Trend)
	s.last = j.LastSweep
	s.legacy = true
	return nil
}

func (s *StateStore) readManifest() (*stateManifest, error) {
	path := filepath.Join(s.dir, StateManifestName)
	body, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading state manifest: %w", err)
	}
	var m stateManifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("leakprof: decoding state manifest %s: %w", path, err)
	}
	if m.FormatVersion > StateVersion {
		return nil, fmt.Errorf("leakprof: state manifest %s has format version %d, newer than supported %d",
			path, m.FormatVersion, StateVersion)
	}
	if m.BaseSegment <= 0 {
		return nil, fmt.Errorf("leakprof: state manifest %s has invalid base segment %d", path, m.BaseSegment)
	}
	return &m, nil
}

func (s *StateStore) writeManifest(base int) error {
	version := StateVersion
	if s.codec == StateCodecJSON {
		// While the journal speaks pure JSON, keep the manifest at the
		// v2 dialect so older readers are not locked out needlessly.
		version = stateVersionJSON
	}
	body, err := json.Marshal(&stateManifest{FormatVersion: version, BaseSegment: base, Codec: s.codec})
	if err != nil {
		return fmt.Errorf("leakprof: encoding state manifest: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("leakprof: staging state manifest: %w", err)
	}
	_, werr := tmp.Write(append(body, '\n'))
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(s.dir, StateManifestName))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("leakprof: writing state manifest: %w", werr)
	}
	return nil
}

func (s *StateStore) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("segment-%04d.log", seq))
}

// listSegments returns the sequence numbers of every segment file in the
// state dir, ascending.
func (s *StateStore) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading state dir %s: %w", s.dir, err)
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "segment-")
		if !ok {
			continue
		}
		rest, ok = strings.CutSuffix(rest, ".log")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(rest); err == nil && n > 0 {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// errTornFrame marks a frame consistent with a crash mid-append: it
// ends at (or claims to extend past) the end of the segment.
var errTornFrame = frame.ErrTorn

// errCorruptFrame marks a frame that fails its checksum while complete
// frames follow it: that cannot be a torn append (the store is a single
// O_APPEND writer, so only the final frame can be half-written) — it is
// bit rot over durable data, and truncating it would silently discard
// the valid frames behind it.
var errCorruptFrame = frame.ErrCorrupt

// replaySegment replays one segment's frames into the in-memory state.
// In the final (active) segment a torn tail frame — one that stops at
// end-of-file — is truncated away, everything before it already
// replayed. A checksum-failed frame with data after it, or any bad
// frame in an earlier segment, is corruption and fails the open:
// compaction is the only path that removes old segments, and it never
// leaves a torn one behind the manifest pointer.
func (s *StateStore) replaySegment(seq int, isLast bool) error {
	path := s.segmentPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("leakprof: opening journal segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("leakprof: sizing journal segment: %w", err)
	}
	size := fi.Size()
	br := bufio.NewReader(f)
	// Each segment owns a fresh string dictionary; version-3 frames
	// extend it as they decode (a seed frame at the segment head carries
	// strings rolled over from the previous segment), while JSON and
	// version-1/2 frames are self-contained and leave it untouched.
	var dec segDecoder
	var off int64
	for {
		payload, n, err := readFrame(br, size-off)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornFrame) {
			if !isLast {
				return fmt.Errorf("leakprof: journal segment %s: %w at offset %d (not the active segment; refusing to guess)", path, err, off)
			}
			if terr := os.Truncate(path, off); terr != nil {
				return fmt.Errorf("leakprof: truncating torn journal tail in %s: %w", path, terr)
			}
			break
		}
		if err != nil {
			return fmt.Errorf("leakprof: journal segment %s at offset %d: %w", path, off, err)
		}
		rec, derr := dec.decodePayload(payload)
		if derr != nil {
			// The checksum matched, so this is not torn — it is a frame
			// this version cannot understand.
			return fmt.Errorf("leakprof: journal segment %s: decoding frame at offset %d: %w", path, off, derr)
		}
		if rec != nil { // nil: a dictionary seed frame, no record to apply
			if aerr := s.applyRecord(rec); aerr != nil {
				return fmt.Errorf("leakprof: journal segment %s: %w", path, aerr)
			}
		}
		off += n
	}
	if isLast {
		// The recovered writer resumes this segment, so its dictionary
		// must be exactly what any future reader will rebuild from the
		// frames replayed above (a torn tail was truncated before its
		// appends were committed, keeping the two in lockstep).
		s.segDict = dec.dict
		s.pendingSeed = nil
	}
	return nil
}

// applyRecord folds one replayed frame into the in-memory state.
func (s *StateStore) applyRecord(rec *journalRecord) error {
	switch rec.Kind {
	case recordSnapshot:
		// Replacement semantics: a snapshot resets state before applying,
		// which makes replaying "old deltas, then the snapshot that folded
		// them" idempotent — the property mid-compaction crash recovery
		// leans on.
		s.db = report.NewDB()
		s.db.Restore(rec.Bugs)
		s.tracker.reset()
		s.tracker.Restore(rec.Trend)
		s.last = rec.Sweep
	case recordDelta:
		s.db.Restore(rec.Bugs)
		s.tracker.restoreDelta(rec.Trend)
		if rec.Sweep != nil {
			s.last = rec.Sweep
		}
	default:
		return fmt.Errorf("unknown journal record kind %q", rec.Kind)
	}
	return nil
}

// readFrame decodes one frame from br, with remaining the bytes left in
// the segment from the frame's start. It returns (payload, total frame
// length, error): io.EOF means a clean segment end, errTornFrame a frame
// that stops at end-of-file (a crash mid-append), and errCorruptFrame a
// checksum failure with data following it (bit rot, not a torn tail).
// A frame whose claimed length extends past the end of the segment is
// torn by construction, so no allocation is made for it — a corrupt
// length prefix must not become a gigabyte allocation during recovery.
func readFrame(br *bufio.Reader, remaining int64) ([]byte, int64, error) {
	return frame.Read(br, remaining)
}

// encodeFrame renders one record as a framed, checksummed byte slice in
// the given codec.
func encodeFrame(rec *journalRecord, codec StateCodec) ([]byte, error) {
	payload, err := encodePayload(rec, codec)
	if err != nil {
		return nil, fmt.Errorf("leakprof: encoding journal record: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("leakprof: journal record of %d bytes exceeds frame bound", len(payload))
	}
	return frame.New(payload), nil
}

// maxDictSeedStrings bounds the dictionary seed a roll carries into a
// fresh segment. Small steady-state dictionaries (hot stack locations a
// few deltas keep naming) are worth re-declaring once per segment; a
// huge dictionary — a snapshot segment's full key space — is not, so
// past the bound the new segment starts empty and frames re-append
// strings on demand.
const maxDictSeedStrings = 4096

// rollDictLocked resets the segment dictionary for a freshly reserved
// segment, carrying the outgoing dictionary's strings over as the seed
// a dictionary frame will declare at the segment's head.
func (s *StateStore) rollDictLocked() {
	if s.codec != StateCodecBinary {
		s.segDict, s.pendingSeed = nil, nil
		return
	}
	var seed []string
	if s.segDict != nil && s.segDict.Len() > 0 && s.segDict.Len() <= maxDictSeedStrings {
		seed = s.segDict.Strings()
	}
	s.segDict = frame.NewDictFrom(seed)
	s.pendingSeed = seed
}

// encodeActiveFrame renders one record as a framed byte slice destined
// for the active segment. Under the binary codec the frame references
// the segment dictionary; the returned commit publishes the frame's
// appended strings into it, and must run only after the frame's write
// succeeded so the dictionary never references strings the on-disk
// segment does not declare.
func (s *StateStore) encodeActiveFrame(rec *journalRecord) ([]byte, func(), error) {
	if s.codec != StateCodecBinary {
		buf, err := encodeFrame(rec, s.codec)
		return buf, func() {}, err
	}
	if s.segDict == nil {
		s.segDict = frame.NewDict()
	}
	dt := frame.NewDictTable(s.segDict)
	payload, err := encodeBinaryRecordDict(rec, dt)
	if err != nil {
		return nil, nil, fmt.Errorf("leakprof: encoding journal record: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return nil, nil, fmt.Errorf("leakprof: journal record of %d bytes exceeds frame bound", len(payload))
	}
	return frame.New(payload), dt.Commit, nil
}

// writePendingSeedLocked frames the dictionary seed owed at the head of
// a freshly created segment, before its first data frame. The seed's
// strings are already in the in-memory dictionary (the roll put them
// there); this writes the declaration a replaying reader rebuilds it
// from. The seed rides the same sync as the data frame that triggered
// it, so it does not advance the group-commit frame count.
func (s *StateStore) writePendingSeedLocked() error {
	if len(s.pendingSeed) == 0 {
		return nil
	}
	payload, err := encodeDictSeedPayload(s.pendingSeed)
	if err != nil {
		return fmt.Errorf("leakprof: encoding dictionary seed: %w", err)
	}
	buf := frame.New(payload)
	if _, err := s.active.Write(buf); err != nil {
		return fmt.Errorf("leakprof: appending dictionary seed frame: %w", err)
	}
	s.pendingSeed = nil
	s.activeSize += int64(len(buf))
	s.appended += int64(len(buf))
	return nil
}

// openActive ensures the active segment is open for appending, rolling to
// a fresh segment when the current one has outgrown its size bound. A
// roll syncs the outgoing segment first when frames in it are still
// unsynced: the sync-policy loss window must never silently extend to a
// segment the store can no longer reach through its active handle. It
// reports whether a roll happened, because a roll resets the segment
// dictionary and invalidates any frame encoded against the outgoing one.
func (s *StateStore) openActive(incoming int64) (bool, error) {
	rolled := false
	// Roll on size whether or not the handle is open: after a restart the
	// recovered active segment may already be at its bound.
	if s.activeSeq > 0 && s.activeSize > 0 && s.activeSize+incoming > s.segmentBytes {
		if s.unsynced > 0 && s.active != nil {
			if err := s.syncActiveLocked(); err != nil {
				return false, err
			}
		}
		if s.active != nil {
			s.active.Close()
			s.active = nil
		}
		s.activeSeq++
		s.activeSize = 0
		s.segCount++
		s.rollDictLocked()
		rolled = true
	}
	if s.active != nil {
		return rolled, nil
	}
	if s.activeSeq == 0 {
		s.activeSeq = 1
		s.segCount = 1
		if s.base == 0 {
			s.base = 1
		}
	}
	f, err := os.OpenFile(s.segmentPath(s.activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return rolled, fmt.Errorf("leakprof: opening journal segment: %w", err)
	}
	if fi, err := f.Stat(); err == nil {
		s.activeSize = fi.Size()
	}
	s.active = f
	return rolled, nil
}

// syncActiveLocked fsyncs the active segment and resets the group-commit
// window.
func (s *StateStore) syncActiveLocked() error {
	if s.active == nil {
		s.unsynced = 0
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("leakprof: syncing journal segment: %w", err)
	}
	s.syncs++
	s.unsynced = 0
	s.windowStart = time.Time{}
	return nil
}

// appendRecord appends one framed record to the active segment and makes
// it durable per the store's sync policy: immediately (SyncEverySweep),
// when the group-commit window fills or its timer fires (SyncEvery), or
// not until Flush/Close (SyncOnClose).
func (s *StateStore) appendRecord(rec *journalRecord) error {
	buf, commit, err := s.encodeActiveFrame(rec)
	if err != nil {
		return err
	}
	rolled, err := s.openActive(int64(len(buf)))
	if err != nil {
		return err
	}
	if rolled {
		// The roll reset the segment dictionary, so the frame's string
		// references point into the outgoing segment's table; re-encode
		// against the fresh (seeded) dictionary.
		if buf, commit, err = s.encodeActiveFrame(rec); err != nil {
			return err
		}
	}
	if err := s.writePendingSeedLocked(); err != nil {
		return err
	}
	if _, err := s.active.Write(buf); err != nil {
		return fmt.Errorf("leakprof: appending journal frame: %w", err)
	}
	commit()
	s.activeSize += int64(len(buf))
	s.appended += int64(len(buf))
	s.unsynced++
	switch s.syncPolicy.mode {
	case syncModeEverySweep:
		return s.syncActiveLocked()
	case syncModeWindow:
		if s.unsynced == 1 {
			s.windowStart = s.now()
		}
		if s.syncPolicy.every > 0 && s.unsynced >= s.syncPolicy.every {
			return s.syncActiveLocked()
		}
		if s.syncPolicy.window > 0 {
			// The window is measured on the store clock, so a fake-clock
			// run syncs deterministically: an append past the window's
			// store-clock deadline commits the window inline, and the
			// committer only covers the real-time case where no later
			// append arrives to observe the elapsed clock.
			if s.now().Sub(s.windowStart) >= s.syncPolicy.window {
				return s.syncActiveLocked()
			}
			s.wakeCommitterLocked()
		}
	}
	return nil
}

// wakeCommitterLocked starts the background committer on first use and
// nudges it that unsynced frames exist; the committer issues one Sync
// per time window off the critical path.
func (s *StateStore) wakeCommitterLocked() {
	if s.committerQuit == nil {
		s.committerWake = make(chan struct{}, 1)
		s.committerQuit = make(chan struct{})
		s.committerDone = make(chan struct{})
		go s.committer(s.committerWake, s.committerQuit, s.committerDone, s.syncPolicy.window)
	}
	select {
	case s.committerWake <- struct{}{}:
	default:
	}
}

// committer is the group-commit background goroutine: woken by the first
// unsynced append of a window, it waits the window out and issues one
// Sync for everything appended meanwhile. The window itself is defined
// by the store clock: when the real-time timer fires but the store clock
// (a simulation's fake clock) says the window has not elapsed, the
// committer re-arms instead of syncing early, so fake-clock runs see
// timed syncs only when their clock crosses the deadline.
func (s *StateStore) committer(wake, quit, done chan struct{}, window time.Duration) {
	defer close(done)
	timer := time.NewTimer(window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-quit:
			return
		case <-wake:
		}
		for armed := true; armed; {
			timer.Reset(window)
			select {
			case <-quit:
				timer.Stop()
				return
			case <-timer.C:
			}
			s.mu.Lock()
			switch {
			case s.unsynced == 0:
				armed = false
			case s.now().Sub(s.windowStart) < window:
				// Store clock behind the deadline (fake clock not yet
				// advanced, or a fresh window started meanwhile): re-arm.
			default:
				if err := s.syncActiveLocked(); err != nil {
					s.asyncErr = errors.Join(s.asyncErr, err)
				}
				armed = false
			}
			s.mu.Unlock()
		}
	}
}

// stopCommitter shuts the background committer down, outside the store
// lock (the committer takes it to sync).
func (s *StateStore) stopCommitter() {
	s.mu.Lock()
	quit, done := s.committerQuit, s.committerDone
	s.committerQuit, s.committerDone, s.committerWake = nil, nil, nil
	s.mu.Unlock()
	if quit != nil {
		close(quit)
		<-done
	}
}

// takeAsyncErrLocked surfaces and clears errors recorded by background
// work (the committer's sync, a concurrent fold).
func (s *StateStore) takeAsyncErrLocked() error {
	err := s.asyncErr
	s.asyncErr = nil
	return err
}

// waitFoldLocked blocks until no fold is in flight, releasing the lock
// while waiting.
func (s *StateStore) waitFoldLocked() {
	for s.folding {
		done := s.foldDone
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
}

// Dir returns the store's directory.
func (s *StateStore) Dir() string { return s.dir }

// BugDB returns the journal-backed bug database. Wire it into the
// ReportSink's Reporter so filing dedups against every bug ever filed
// from this state dir, not just this process's lifetime.
func (s *StateStore) BugDB() *report.DB { return s.db }

// Tracker returns the journal-backed trend tracker. Wire it into a
// TrendSink so cross-sweep verdicts resume with the prior sweeps'
// moments after a restart. Tune MinObservations/StableBand on the
// returned tracker before the first sweep.
func (s *StateStore) Tracker() *TrendTracker { return s.tracker }

// Flush makes the journal current and durable: it waits out any in-
// flight compaction, appends a delta frame for state mutated since the
// last recorded sweep (status transitions from an embedder, trend
// observations a detached sink delivered late), fsyncs the unsynced
// group-commit window, and surfaces any background errors. Tests and
// shutdown paths call it to assert "everything I did is on disk" under
// every sync policy.
func (s *StateStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitFoldLocked()
	var errs []error
	errs = append(errs, s.appendPendingLocked())
	if s.unsynced > 0 {
		errs = append(errs, s.syncActiveLocked())
	}
	errs = append(errs, s.takeAsyncErrLocked())
	return errors.Join(errs...)
}

// appendPendingLocked journals un-recorded state as a sweep-less delta
// frame, if any exists. A store still carrying a v1 journal compacts
// instead: a bare delta behind an unmigrated state.json would be lost to
// recovery, which ignores v1 content once segments exist.
func (s *StateStore) appendPendingLocked() error {
	if s.db.DirtyCount() == 0 && !s.tracker.hasPending() {
		return nil
	}
	if s.legacy {
		return s.compactLocked()
	}
	rec := &journalRecord{
		Kind:    recordDelta,
		SavedAt: s.now(),
		Bugs:    s.db.TakeDirty(),
		Trend:   s.tracker.TakeNew(),
	}
	if err := s.appendRecord(rec); err != nil {
		s.requeueDeltaLocked(rec)
		return err
	}
	return nil
}

// requeueDeltaLocked hands a drained delta back to the DB and tracker
// after a failed append, so a later persist still journals it.
func (s *StateStore) requeueDeltaLocked(rec *journalRecord) {
	keys := make([]string, len(rec.Bugs))
	for i, b := range rec.Bugs {
		keys[i] = b.Key
	}
	s.db.MarkDirty(keys...)
	s.tracker.requeueNew(rec.Trend)
}

// Close flushes and releases the store: any in-flight fold completes,
// pending deltas and the unsynced window are made durable (SyncOnClose's
// contract), the committer stops, and the active segment handle closes.
// The flush runs before the committer stops — a flush-time append may
// wake (or spawn) the committer, and stopping afterwards guarantees no
// goroutine outlives Close. Skipping Close under a relaxed sync policy
// forfeits the unsynced window if the process dies before the OS writes
// it back.
func (s *StateStore) Close() error {
	err := s.Flush()
	s.stopCommitter()
	s.mu.Lock()
	defer s.mu.Unlock()
	var cerr error
	if s.active != nil {
		cerr = s.active.Close()
		s.active = nil
	}
	return errors.Join(err, cerr)
}

// LastSweep returns a copy of the journaled previous sweep outcome, or
// nil when no sweep has been recorded.
func (s *StateStore) LastSweep() *SweepRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	rec := *s.last
	rec.FailedByService = copyCounts(s.last.FailedByService)
	return &rec
}

// LastFailureCounts returns the previous sweep's per-service failure
// counts: the error-budget seed. Nil when no sweep is on record.
func (s *StateStore) LastFailureCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	return copyCounts(s.last.FailedByService)
}

// RecordSweep journals one completed sweep by appending a single delta
// frame: the bugs the sweep filed or re-sighted (report.DB.TakeDirty),
// the trend observations it added (TrendTracker.TakeNew), and the sweep
// outcome. The write cost is O(the sweep's findings), not O(every key
// ever tracked), and the frame is made durable per the sync policy —
// under group commit the append returns without an fsync and one Sync
// later covers the window. A concurrent compaction never blocks or
// weakens this: while a fold is in flight, deltas append to a segment
// numbered after the snapshot's slot, as durable as any other append
// and replaying behind the snapshot on recovery. Crossing the
// segment-count threshold starts that concurrent fold; a pending v1
// migration compacts synchronously (one-time).
func (s *StateStore) RecordSweep(sweep *Sweep) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = &SweepRecord{
		At:              sweep.At,
		Source:          sweep.Source,
		Profiles:        sweep.Profiles,
		Errors:          sweep.Errors,
		Findings:        len(sweep.Findings),
		FailedByService: copyCounts(sweep.FailedByService),
	}
	if s.legacy {
		// First persist after a v1 load: fold everything — the migrated
		// state plus this sweep — into the first snapshot segment and
		// retire state.json. One-time, then deltas take over.
		return s.compactLocked()
	}
	rec := &journalRecord{
		Kind:    recordDelta,
		SavedAt: s.now(),
		Bugs:    s.db.TakeDirty(),
		Trend:   s.tracker.TakeNew(),
		Sweep:   s.last,
	}
	if err := s.appendRecord(rec); err != nil {
		// The frame never became durable; hand the drained delta back so
		// a later append (or compaction) still journals it — otherwise a
		// transient disk error would silently drop this sweep's filings
		// from the journal forever.
		s.requeueDeltaLocked(rec)
		return errors.Join(err, s.takeAsyncErrLocked())
	}
	if s.bugRetention > 0 {
		// Age out after the append: a closing status transition must hit
		// the journal before its bug leaves memory, or replay would
		// resurrect the bug with its last journaled (open) status.
		s.db.DropAged(s.now().Add(-s.bugRetention))
	}
	if !s.folding && s.segCount > s.maxSegments {
		s.startFoldLocked()
	}
	return s.takeAsyncErrLocked()
}

// Save persists the full state as a snapshot, compacting the journal to
// a single segment. The per-sweep path is RecordSweep, which appends only
// the sweep's delta; Save is the explicit checkpoint for embedders that
// mutate the BugDB or Tracker outside a sweep (status transitions from a
// bug-tracker webhook, say) and want the journal caught up now.
func (s *StateStore) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitFoldLocked()
	return s.compactLocked()
}

// Compact folds the live segments into one snapshot segment: the full
// state is appended as a single snapshot frame to a fresh segment, the
// manifest pointer swings to it atomically, and the old segments (and any
// migrated v1 state.json) are deleted. A crash before the pointer swing
// leaves the old segments live and the half-written snapshot as a torn
// tail to truncate; a crash after it leaves only already-folded leftovers
// to sweep up — either way, recovery loses at most the unsynced window.
// Compact runs the fold synchronously; the threshold-triggered folds
// inside RecordSweep run the same steps on a background goroutine with
// sweeps buffering aside (see StateStore's doc).
func (s *StateStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitFoldLocked()
	return s.compactLocked()
}

// startFoldLocked launches the concurrent compaction. The fold inputs
// are copied under the lock; the expensive encode and write happen off
// it. Crucially, sweeps recorded during the fold stay exactly as durable
// as the sync policy promises: the store reserves the next segment
// number for the snapshot and rolls its appends onto the segment after
// it, so mid-fold deltas hit disk through the normal append path and
// replay behind the snapshot whether or not the fold survives. The
// snapshot itself lands by atomic rename, so on disk it is either absent
// or complete — never a torn middle segment.
func (s *StateStore) startFoldLocked() {
	if s.folding {
		return
	}
	start := time.Now()
	if s.bugRetention > 0 {
		s.db.DropAged(s.now().Add(-s.bugRetention))
	}
	// Roll appends past the snapshot's reserved slot. The outgoing
	// segment is synced first when needed, preserving the invariant
	// that only the final segment can ever hold a torn frame. A sync
	// failure abandons the fold before anything is drained or moved.
	if s.unsynced > 0 && s.active != nil {
		if err := s.syncActiveLocked(); err != nil {
			s.asyncErr = errors.Join(s.asyncErr, err)
			return
		}
	}
	// Drain un-taken deltas into the fold: the snapshot view subsumes
	// them. A failed fold requeues them; without the drain they would
	// ride the next delta frame too and replay twice.
	pending := &journalRecord{Bugs: s.db.TakeDirty(), Trend: s.tracker.TakeNew()}
	// Capture only the key sets under the lock; the fold goroutine
	// fetches the values in bounded chunks off it, so the under-lock
	// pause costs O(keys) pointer copies instead of a full DB and trend
	// history copy. Mutations that land between this capture and the
	// fetch are safe either way: a changed or newly filed bug is dirty
	// and rides a delta frame appended after the snapshot (Restore is
	// an absolute overwrite), a deleted key is skipped by the fetch,
	// and trend observations still pending at fetch time are excluded
	// from the export precisely because their own delta replays behind
	// the snapshot.
	rec := &journalRecord{
		Kind:    recordSnapshot,
		SavedAt: s.now(),
		Sweep:   s.last,
	}
	bugKeys := s.db.Keys()
	trendKeys := s.tracker.Keys()
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	oldBase, oldCount, newSeq := s.base, s.segCount, s.activeSeq+1
	if newSeq <= 1 {
		newSeq = 1
	}
	s.activeSeq = newSeq + 1
	s.activeSize = 0
	s.segCount++ // the delta segment appends land in during/after the fold
	s.rollDictLocked()
	s.folding = true
	s.foldDone = make(chan struct{})
	s.foldPauses++
	s.foldPauseNS += time.Since(start).Nanoseconds()
	go s.fold(rec, pending, bugKeys, trendKeys, oldBase, oldCount, newSeq)
}

// fold is the background half of concurrent compaction: fetch the
// snapshot's values (chunked, off the store lock), encode, stage, and
// swing the manifest pointer.
func (s *StateStore) fold(rec, pending *journalRecord, bugKeys, trendKeys []string, oldBase, oldCount, newSeq int) {
	rec.Bugs = s.db.SnapshotKeys(bugKeys)
	rec.Trend = s.tracker.ExportStable(trendKeys)
	buf, snapDict, err := s.encodeSnapshotFrame(rec)
	if err == nil {
		err = s.writeSnapshotSegment(newSeq, buf)
	}
	if err == nil {
		err = s.writeManifest(newSeq)
		if err != nil {
			// The pointer never swung. The snapshot is safe to replay
			// (mid-fold deltas live after it), but keeping it would pin
			// the pre-fold segments forever; remove it and retry on the
			// next threshold crossing.
			os.Remove(s.segmentPath(newSeq))
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer close(s.foldDone)
	s.folding = false
	if err != nil {
		s.requeueDeltaLocked(pending)
		s.asyncErr = errors.Join(s.asyncErr, err)
		return
	}
	// The fold is durable: retire the pre-fold segments. Appends rolled
	// past the snapshot at fold start, so the active handle and the
	// deltas recorded meanwhile are untouched.
	for seq := oldBase; seq < newSeq; seq++ {
		if seq > 0 {
			os.Remove(s.segmentPath(seq))
		}
	}
	if s.legacy {
		os.Remove(filepath.Join(s.dir, StateFileName))
		s.legacy = false
	}
	s.base = newSeq
	s.segCount -= oldCount
	s.segCount++ // the snapshot segment itself
	s.appended += int64(len(buf))
	s.syncs++
	if s.active == nil && s.activeSize == 0 && s.activeSeq == newSeq+1 {
		// Nothing was recorded during the fold: collapse onto the
		// snapshot segment instead of leaving an empty reservation, so
		// a quiet fold ends at exactly one live segment. Appends resume
		// in the snapshot frame's dictionary, which its own table
		// declares, so the reservation's pending seed is obsolete.
		s.activeSeq = newSeq
		s.segCount--
		if fi, serr := os.Stat(s.segmentPath(newSeq)); serr == nil {
			s.activeSize = fi.Size()
		}
		s.segDict = snapDict
		s.pendingSeed = nil
	}
}

// encodeSnapshotFrame renders a snapshot record as a framed byte slice
// with its own fresh dictionary — snapshot segments are single-frame,
// so the frame's appended-strings table carries everything it
// references. It returns the committed dictionary so a store that
// resumes appending onto the snapshot segment keeps writing in its
// dialect. Safe off the store lock: it touches only the immutable codec
// and its own locals.
func (s *StateStore) encodeSnapshotFrame(rec *journalRecord) ([]byte, *frame.Dict, error) {
	if s.codec != StateCodecBinary {
		buf, err := encodeFrame(rec, s.codec)
		return buf, nil, err
	}
	dict := frame.NewDict()
	dt := frame.NewDictTable(dict)
	payload, err := encodeBinaryRecordDict(rec, dt)
	if err != nil {
		return nil, nil, fmt.Errorf("leakprof: encoding journal record: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return nil, nil, fmt.Errorf("leakprof: journal record of %d bytes exceeds frame bound", len(payload))
	}
	dt.Commit()
	return frame.New(payload), dict, nil
}

// writeSnapshotSegment stages one snapshot frame to a temp file, syncs
// it, and renames it into place as segment seq: on disk the segment is
// either absent or complete. It touches no store state (callers bump the
// sync telemetry under their own locking), so the concurrent fold runs
// it off the lock.
func (s *StateStore) writeSnapshotSegment(seq int, frame []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".segment-*")
	if err != nil {
		return fmt.Errorf("leakprof: staging snapshot segment: %w", err)
	}
	_, werr := tmp.Write(frame)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.segmentPath(seq))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("leakprof: writing snapshot segment: %w", werr)
	}
	return nil
}

// compactLocked is the synchronous fold used by Compact, Save, and the
// one-time v1 migration. The concurrent path (startFoldLocked) runs the
// same sequence off the lock.
func (s *StateStore) compactLocked() error {
	if s.bugRetention > 0 {
		s.db.DropAged(s.now().Add(-s.bugRetention))
	}
	rec := &journalRecord{
		Kind:    recordSnapshot,
		SavedAt: s.now(),
		Bugs:    s.db.All(),
		Trend:   s.tracker.Export(),
		Sweep:   s.last,
	}
	buf, snapDict, err := s.encodeSnapshotFrame(rec)
	if err != nil {
		return err
	}
	oldBase, newSeq := s.base, s.activeSeq+1
	if newSeq <= 0 {
		newSeq = 1
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	if err := s.writeSnapshotSegment(newSeq, buf); err != nil {
		return err
	}
	// The snapshot is durable; swing the manifest pointer. Everything
	// before this line crashing leaves the previous segments live (the
	// complete snapshot replays harmlessly by replacement, and is
	// removed here so it cannot pin the old segments forever).
	if err := s.writeManifest(newSeq); err != nil {
		os.Remove(s.segmentPath(newSeq))
		return err
	}
	// The fold is durable. The snapshot subsumes any un-taken deltas;
	// drain them now (and only now — a failed fold must leave them
	// pending for the next persist) so RecordSweep does not journal them
	// twice.
	s.db.TakeDirty()
	s.tracker.TakeNew()
	for seq := oldBase; seq < newSeq; seq++ {
		if seq > 0 {
			os.Remove(s.segmentPath(seq))
		}
	}
	if s.legacy {
		os.Remove(filepath.Join(s.dir, StateFileName))
		s.legacy = false
	}
	s.base, s.activeSeq = newSeq, newSeq
	s.activeSize = int64(len(buf))
	s.segCount = 1
	s.appended += int64(len(buf))
	s.syncs++
	s.unsynced = 0
	// Appends resume onto the snapshot segment, whose frame already
	// declares its whole dictionary.
	s.segDict = snapDict
	s.pendingSeed = nil
	return nil
}

// journalBytesAppended returns the total frame bytes this store has
// appended since open — the benchmark's per-sweep persistence cost probe.
func (s *StateStore) journalBytesAppended() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// journalSyncs returns the number of fsyncs issued since open — the
// group-commit acceptance probe: one per sweep under SyncEverySweep, one
// per window under SyncEvery.
func (s *StateStore) journalSyncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// journalFoldPause returns how many concurrent folds have captured
// their inputs since open and the cumulative store-lock pause those
// captures cost — the bench probe proving the compaction pause no
// longer scales with tracked-key count.
func (s *StateStore) journalFoldPause() (int64, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.foldPauses, time.Duration(s.foldPauseNS)
}

// SegmentCount returns the number of live journal segments.
func (s *StateStore) SegmentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segCount
}

func copyCounts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
