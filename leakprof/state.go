package leakprof

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/report"
)

// StateFileName is the journal file a StateStore keeps inside its
// directory.
const StateFileName = "state.json"

// StateVersion is the current journal format version. A store refuses to
// load a journal from the future rather than silently misreading it.
const StateVersion = 1

// stateJournal is the on-disk form of a StateStore: one versioned JSON
// document, written atomically after every sweep.
type stateJournal struct {
	FormatVersion int                           `json:"format_version"`
	SavedAt       time.Time                     `json:"saved_at"`
	Bugs          []report.Bug                  `json:"bugs,omitempty"`
	Trend         map[string][]TrendObservation `json:"trend,omitempty"`
	LastSweep     *SweepRecord                  `json:"last_sweep,omitempty"`
}

// SweepRecord is the journaled outcome of one sweep: the operational
// facts the next sweep needs (its error-budget seed) plus the headline
// numbers a dashboard wants across restarts.
type SweepRecord struct {
	// At is the sweep's start timestamp.
	At time.Time `json:"at"`
	// Source names the profile origin that fed the sweep.
	Source string `json:"source,omitempty"`
	// Profiles, Errors, and Findings are the sweep's headline counts.
	Profiles int `json:"profiles"`
	Errors   int `json:"errors"`
	Findings int `json:"findings"`
	// FailedByService is the uncapped per-service count of failed
	// instances — the seed for the next sweep's error budget.
	FailedByService map[string]int `json:"failed_by_service,omitempty"`
}

// StateStore is the pipeline's durable memory: a versioned journal of the
// bug database (filed findings), the cross-sweep trend history (with the
// aggregator moments behind variance-aware verdicts), and the previous
// sweep's outcome. The paper's workflow is a daily fleet sweep whose
// value is history — bugs filed once, trends across days, budgets
// informed by yesterday — so the journal is what makes a restarted
// pipeline resume rather than start blind.
//
// Open a store, wire its BugDB and Tracker into the sinks, and attach it
// to the pipeline:
//
//	store, err := leakprof.OpenStateStore(dir)
//	pipe := leakprof.New(leakprof.WithStateDir(dir), ...)
//	pipe.AddSinks(
//		&leakprof.ReportSink{Reporter: &leakprof.Reporter{DB: store.BugDB()}},
//		&leakprof.TrendSink{Tracker: store.Tracker()},
//	)
//
// (Pipeline.State returns the same store the pipeline opened, so the
// explicit OpenStateStore call is optional.) After every sweep the
// pipeline records the outcome and rewrites the journal atomically —
// temp file plus rename — so a crash mid-save leaves the previous
// journal intact, never a torn one.
type StateStore struct {
	dir string

	mu      sync.Mutex
	db      *report.DB
	tracker *TrendTracker
	last    *SweepRecord
}

// OpenStateStore creates dir if needed and loads its journal. The
// returned store's BugDB and Tracker are pre-seeded with everything the
// journal recorded; a missing journal yields an empty store. A corrupt
// or future-versioned journal is an error — silently discarding filed
// bugs would re-alert every owner on the next sweep.
func OpenStateStore(dir string) (*StateStore, error) {
	if dir == "" {
		return nil, errors.New("leakprof: state dir must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("leakprof: creating state dir %s: %w", dir, err)
	}
	s := &StateStore{dir: dir, db: report.NewDB(), tracker: &TrendTracker{}}
	body, err := os.ReadFile(s.path())
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading state journal: %w", err)
	}
	var j stateJournal
	if err := json.Unmarshal(body, &j); err != nil {
		return nil, fmt.Errorf("leakprof: decoding state journal %s: %w", s.path(), err)
	}
	if j.FormatVersion > StateVersion {
		return nil, fmt.Errorf("leakprof: state journal %s has format version %d, newer than supported %d",
			s.path(), j.FormatVersion, StateVersion)
	}
	s.db.Restore(j.Bugs)
	s.tracker.Restore(j.Trend)
	s.last = j.LastSweep
	return s, nil
}

func (s *StateStore) path() string { return filepath.Join(s.dir, StateFileName) }

// Dir returns the store's directory.
func (s *StateStore) Dir() string { return s.dir }

// BugDB returns the journal-backed bug database. Wire it into the
// ReportSink's Reporter so filing dedups against every bug ever filed
// from this state dir, not just this process's lifetime.
func (s *StateStore) BugDB() *report.DB { return s.db }

// Tracker returns the journal-backed trend tracker. Wire it into a
// TrendSink so cross-sweep verdicts resume with the prior sweeps'
// moments after a restart. Tune MinObservations/StableBand on the
// returned tracker before the first sweep.
func (s *StateStore) Tracker() *TrendTracker { return s.tracker }

// LastSweep returns a copy of the journaled previous sweep outcome, or
// nil when no sweep has been recorded.
func (s *StateStore) LastSweep() *SweepRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	rec := *s.last
	rec.FailedByService = copyCounts(s.last.FailedByService)
	return &rec
}

// LastFailureCounts returns the previous sweep's per-service failure
// counts: the error-budget seed. Nil when no sweep is on record.
func (s *StateStore) LastFailureCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	return copyCounts(s.last.FailedByService)
}

// RecordSweep journals one completed sweep — outcome record, bug DB, and
// trend history — and persists atomically. The pipeline calls it after
// the sweep's sinks have drained, so the journal always reflects what
// the sinks saw.
func (s *StateStore) RecordSweep(sweep *Sweep) error {
	s.mu.Lock()
	s.last = &SweepRecord{
		At:              sweep.At,
		Source:          sweep.Source,
		Profiles:        sweep.Profiles,
		Errors:          sweep.Errors,
		Findings:        len(sweep.Findings),
		FailedByService: copyCounts(sweep.FailedByService),
	}
	s.mu.Unlock()
	return s.Save()
}

// Save rewrites the journal atomically: the new journal is staged as a
// temp file in the state dir and renamed over the old one, so a reader
// (or a crash) never observes a torn journal.
func (s *StateStore) Save() error {
	s.mu.Lock()
	j := stateJournal{
		FormatVersion: StateVersion,
		SavedAt:       time.Now(),
		Bugs:          s.db.All(),
		Trend:         s.tracker.Export(),
		LastSweep:     s.last,
	}
	s.mu.Unlock()
	body, err := json.MarshalIndent(&j, "", "  ")
	if err != nil {
		return fmt.Errorf("leakprof: encoding state journal: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".state-*")
	if err != nil {
		return fmt.Errorf("leakprof: staging state journal: %w", err)
	}
	_, werr := tmp.Write(append(body, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path())
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("leakprof: writing state journal: %w", werr)
	}
	return nil
}

func copyCounts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
