package leakprof

import (
	"math"
	"sort"
	"sync"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// defaultShards stripes the fleet-wide aggregation state. Locations hash
// across shards, so concurrent fetch workers folding different locations
// rarely contend; 32 comfortably exceeds the collector's default
// parallelism while keeping idle-shard overhead negligible.
const defaultShards = 32

// Aggregator folds per-instance blocked-operation counts into fleet-wide
// per-location statistics online, as profiles arrive. It is the streaming
// replacement for buffering a whole sweep as []*gprofile.Snapshot: peak
// state is O(services x suspicious locations), independent of fleet size
// and profile size, and Add is safe to call from every fetch goroutine
// concurrently.
//
// For each (service, operation, location) group it maintains exactly the
// moments the impact statistics need — total, instance count, count of
// instances at or above the threshold, sum of squared counts, and the
// max-count representative instance — so Findings can produce the same
// ranked output Analyzer.Analyze produces from materialised snapshots.
type Aggregator struct {
	threshold int
	filters   []OpFilter
	shards    []aggShard

	mu       sync.Mutex
	services map[string]int // profiled instances per service (RMS/mean denominator)
	profiles int
}

type aggShard struct {
	mu     sync.Mutex
	groups map[locKey]*locStats
}

// locKey identifies one fleet-wide aggregation group. The embedded op has
// its wait time folded away: grouping is by operation and location only.
type locKey struct {
	service string
	op      stack.BlockedOp
}

// locStats are the streaming moments for one group.
type locStats struct {
	total       int
	instances   int
	suspicious  int
	sumSquares  float64
	maxCount    int
	maxInstance string
}

// NewAggregator returns an empty aggregator. A non-positive threshold
// means DefaultThreshold. Filters are applied to each instance's
// operations — before wait times are folded away, so duration-sensitive
// filters see them — exactly as Analyzer applies them.
func NewAggregator(threshold int, filters ...OpFilter) *Aggregator {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	a := &Aggregator{
		threshold: threshold,
		filters:   filters,
		shards:    make([]aggShard, defaultShards),
		services:  make(map[string]int),
	}
	for i := range a.shards {
		a.shards[i].groups = make(map[locKey]*locStats)
	}
	return a
}

// Add folds one instance's profile into the fleet statistics. Each
// profiled instance must be added exactly once per sweep (instances with
// no blocked goroutines still count toward their service's denominator).
// Add is safe for concurrent use: the collector's parallel fetchers and
// IngestServer's parallel window-fold workers both fold snapshots in
// concurrently, and the sharded counters make the result independent of
// arrival order (reduction sorts deterministically at close).
func (a *Aggregator) Add(snap *gprofile.Snapshot) {
	counts := filteredCounts(a.filters, snap)
	a.mu.Lock()
	a.services[snap.Service]++
	a.profiles++
	a.mu.Unlock()
	for op, n := range counts {
		a.addCount(snap.Service, snap.Instance, op, n)
	}
}

func (a *Aggregator) addCount(service, instance string, op stack.BlockedOp, n int) {
	k := locKey{service: service, op: op}
	sh := &a.shards[shardOf(k, len(a.shards))]
	sh.mu.Lock()
	g := sh.groups[k]
	if g == nil {
		g = &locStats{}
		sh.groups[k] = g
	}
	g.total += n
	g.instances++
	if n >= a.threshold {
		g.suspicious++
	}
	g.sumSquares += float64(n) * float64(n)
	if n > g.maxCount || (n == g.maxCount && instance < g.maxInstance) {
		g.maxCount, g.maxInstance = n, instance
	}
	sh.mu.Unlock()
}

// Profiles returns the number of instance profiles folded in so far.
func (a *Aggregator) Profiles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.profiles
}

// Findings materialises the detection result: every group with at least
// one instance at or above the threshold (criterion 1), ranked by the
// given impact statistic in descending order. It may be called while
// adds are still in flight (a monitoring peek), but the canonical sweep
// result is the call after collection completes.
func (a *Aggregator) Findings(r Ranking) []*Finding {
	a.mu.Lock()
	services := make(map[string]int, len(a.services))
	for s, n := range a.services {
		services[s] = n
	}
	a.mu.Unlock()

	var findings []*Finding
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for k, g := range sh.groups {
			if g.suspicious == 0 {
				continue // criterion 1: below threshold everywhere
			}
			findings = append(findings, &Finding{
				Service:             k.service,
				Op:                  k.op.Op,
				Location:            k.op.Location,
				Function:            k.op.Function,
				NilChannel:          k.op.NilChannel,
				TotalBlocked:        g.total,
				Instances:           g.instances,
				SuspiciousInstances: g.suspicious,
				MaxCount:            g.maxCount,
				MaxInstance:         g.maxInstance,
				Impact:              impactFromStats(r, g, services[k.service]),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Impact != findings[j].Impact {
			return findings[i].Impact > findings[j].Impact
		}
		return findings[i].Key() < findings[j].Key()
	})
	return findings
}

// Moment is the exported form of one group's streaming moments: the raw
// per-(service, operation, location) statistics the aggregator maintains
// online, for consumers that want pre-threshold signal — trend tracking
// feeds on these directly instead of on thresholded finding totals.
type Moment struct {
	// Service is the owning service.
	Service string
	// Op identifies the blocked operation and location (wait time folded
	// away, as in the grouping key).
	Op stack.BlockedOp
	// Total is the fleet-wide blocked-goroutine count for the group.
	Total int
	// Instances is the number of instances with at least one blocked
	// goroutine here; ServiceProfiles is the number of profiled
	// instances of the service (the RMS/mean denominator).
	Instances       int
	ServiceProfiles int
	// Suspicious is the number of instances at or above the threshold.
	Suspicious int
	// SumSquares is the sum of squared per-instance counts.
	SumSquares float64
	// MaxCount and MaxInstance identify the largest single-instance
	// cluster.
	MaxCount    int
	MaxInstance string
}

// Key returns the group's dedup key, identical to Finding.Key for the
// same group.
func (m Moment) Key() string {
	return m.Service + "\x00" + m.Op.Op + "\x00" + m.Op.Location
}

// Mean is the fleet-wide mean per-instance count (zeros included).
func (m Moment) Mean() float64 {
	if m.ServiceProfiles <= 0 {
		return 0
	}
	return float64(m.Total) / float64(m.ServiceProfiles)
}

// Variance is the per-instance count variance across all profiled
// instances of the service (zeros included): the dispersion a
// variance-aware trend verdict scales its noise band by.
func (m Moment) Variance() float64 {
	n := float64(m.ServiceProfiles)
	if n <= 0 {
		return 0
	}
	mean := float64(m.Total) / n
	v := m.SumSquares/n - mean*mean
	if v < 0 { // floating-point cancellation on near-constant counts
		return 0
	}
	return v
}

// Moments exports every group's raw streaming moments — suspicious or
// not — sorted by key for determinism. Like Findings it may be called
// mid-sweep, but the canonical result is the call after collection
// completes.
func (a *Aggregator) Moments() []Moment {
	a.mu.Lock()
	services := make(map[string]int, len(a.services))
	for s, n := range a.services {
		services[s] = n
	}
	a.mu.Unlock()

	var out []Moment
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for k, g := range sh.groups {
			out = append(out, Moment{
				Service:         k.service,
				Op:              k.op,
				Total:           g.total,
				Instances:       g.instances,
				ServiceProfiles: services[k.service],
				Suspicious:      g.suspicious,
				SumSquares:      g.sumSquares,
				MaxCount:        g.maxCount,
				MaxInstance:     g.maxInstance,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Merge combines two independently folded moment sets for the same group
// key — two shards' statistics over disjoint instance populations — into
// the moments a single fold over the union would have produced: totals,
// instance counts, suspicious counts, sums of squares, and profiled-
// instance denominators add, and the max representative is re-decided
// under the single-fold tie-break (higher count wins; equal counts go to
// the lexicographically smaller instance). Both folds must have used the
// same suspicion threshold, or the merged Suspicious count is
// meaningless. Merging is groupwise: ServiceProfiles adds, which is only
// the union denominator when the group was observed in both folds — the
// Aggregator.MergeMoments path recomputes denominators from per-service
// profile counts instead, which is correct for any split.
func (m Moment) Merge(o Moment) Moment {
	m.Total += o.Total
	m.Instances += o.Instances
	m.ServiceProfiles += o.ServiceProfiles
	m.Suspicious += o.Suspicious
	m.SumSquares += o.SumSquares
	if o.MaxCount > m.MaxCount || (o.MaxCount == m.MaxCount && o.MaxInstance < m.MaxInstance) {
		m.MaxCount, m.MaxInstance = o.MaxCount, o.MaxInstance
	}
	return m
}

// ServiceProfiles returns the aggregator's per-service profiled-instance
// counts (the RMS/mean denominators) — the second half of a shard's
// mergeable state: a group's moments alone cannot say how many instances
// of its service were profiled but showed nothing at the location.
func (a *Aggregator) ServiceProfiles() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.services))
	for s, n := range a.services {
		out[s] = n
	}
	return out
}

// MergeMoments folds another aggregator's exported state — its per-group
// moments plus its per-service profiled-instance counts and total profile
// count — into this one, as if every instance the other aggregator folded
// had been added here directly: Findings and Moments on the merged
// aggregator reproduce a single-process fold over the union, including
// RMS/mean denominators (services' profile counts add, so an instance
// profiled by exactly one shard is counted exactly once). The moments'
// own ServiceProfiles fields are ignored; denominators come from
// services. Both aggregators must use the same threshold for the merged
// Suspicious counts to mean anything; filters do not apply (they already
// ran during the shard's fold). Safe for concurrent use.
func (a *Aggregator) MergeMoments(services map[string]int, profiles int, moments []Moment) {
	a.mu.Lock()
	for svc, n := range services {
		a.services[svc] += n
	}
	a.profiles += profiles
	a.mu.Unlock()
	for i := range moments {
		m := &moments[i]
		k := locKey{service: m.Service, op: m.Op}
		sh := &a.shards[shardOf(k, len(a.shards))]
		sh.mu.Lock()
		g := sh.groups[k]
		if g == nil {
			g = &locStats{}
			sh.groups[k] = g
		}
		g.total += m.Total
		g.instances += m.Instances
		g.suspicious += m.Suspicious
		g.sumSquares += m.SumSquares
		// Same tie-break as addCount; a fresh group (maxCount 0) is taken
		// over because every observed moment has MaxCount >= 1.
		if m.MaxCount > g.maxCount || (m.MaxCount == g.maxCount && m.MaxInstance < g.maxInstance) {
			g.maxCount, g.maxInstance = m.MaxCount, m.MaxInstance
		}
		sh.mu.Unlock()
	}
}

// impactFromStats computes the ranking statistic from streaming moments.
// The denominator for RMS and mean is the number of profiled instances of
// the service (instances with zero blocked goroutines at this location
// contribute zeros), which is what makes RMS highlight concentrated
// clusters: a single instance with 16K blocked goroutines outranks 800
// instances with 20 each.
func impactFromStats(r Ranking, g *locStats, serviceInstances int) float64 {
	if serviceInstances <= 0 {
		serviceInstances = g.instances
	}
	switch r {
	case RankMean:
		return float64(g.total) / float64(serviceInstances)
	case RankMax:
		return float64(g.maxCount)
	case RankTotal:
		return float64(g.total)
	default: // RankRMS
		return math.Sqrt(g.sumSquares / float64(serviceInstances))
	}
}

// filteredCounts groups one snapshot's channel-blocked goroutines by
// (operation, location), applying criterion-2 filters per operation —
// before aggregation folds wait durations away, so filters can see them.
// Full goroutine records and pre-aggregated counts (the streaming
// collector and large-scale simulator paths) pass through the same
// filters and merge.
func filteredCounts(filters []OpFilter, snap *gprofile.Snapshot) map[stack.BlockedOp]int {
	dropped := func(op stack.BlockedOp) bool {
		for _, f := range filters {
			if f(op) {
				return true
			}
		}
		return false
	}
	counts := make(map[stack.BlockedOp]int, len(snap.PreAggregated))
	for op, n := range snap.PreAggregated {
		if dropped(op) {
			continue
		}
		op.WaitTime = 0
		counts[op] += n
	}
	for _, g := range snap.Goroutines {
		op, ok := g.BlockedChannelOp()
		if !ok || dropped(op) {
			continue
		}
		op.WaitTime = 0
		counts[op] += g.Multiplicity()
	}
	return counts
}

// shardOf hashes the group key (FNV-1a) onto a shard.
func shardOf(k locKey, shards int) int {
	h := uint32(2166136261)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
		h *= 16777619
	}
	mix(k.service)
	mix(k.op.Op)
	mix(k.op.Location)
	mix(k.op.Function)
	if k.op.NilChannel {
		h ^= 1
		h *= 16777619
	}
	return int(h % uint32(shards))
}
