package leakprof

import (
	"time"

	"repro/internal/report"
)

// Reporter turns analyzer findings into owner alerts: it orders findings
// by perceived impact, takes the top N, resolves ownership, and files them
// into the bug database with dedup (Fig 3: "Deduplication" against the
// bug DB before alerting).
type Reporter struct {
	// DB is the bug database; required.
	DB *report.DB
	// Owners routes source locations to teams; nil routes everything to
	// "unowned".
	Owners *report.Ownership
	// TopN bounds alerts per sweep; zero means 10 (the paper alerts the
	// owners of the top N-most impactful locations).
	TopN int
	// Now supplies filing timestamps; nil means time.Now.
	Now func() time.Time
	// StaticAlarm, when set, annotates each filed bug with the static-
	// analysis verdict for its site: it receives the finding's function
	// and location ("file:line") and returns the alarm summary, or ""
	// when no detector flagged the site. staticindex.Index.AlarmFunc is
	// the standard implementation.
	StaticAlarm func(function, location string) string
}

// Report files the findings and returns the alerts for newly discovered
// defects. Findings must already be impact-ordered (Analyzer.Analyze
// guarantees this); re-sighted defects update the DB but do not re-alert.
func (r *Reporter) Report(findings []*Finding) []*report.Alert {
	topN := r.TopN
	if topN == 0 {
		topN = 10
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	var alerts []*report.Alert
	for _, f := range findings {
		if len(alerts) >= topN {
			break
		}
		owner := "unowned"
		if r.Owners != nil {
			owner = r.Owners.OwnerOf(f.Location)
		}
		alarm := ""
		if r.StaticAlarm != nil {
			alarm = r.StaticAlarm(f.Function, f.Location)
		}
		bug, isNew := r.DB.File(report.Bug{
			Key:               f.Key(),
			Service:           f.Service,
			Op:                f.Op,
			Location:          f.Location,
			Function:          f.Function,
			Owner:             owner,
			BlockedGoroutines: f.TotalBlocked,
			Impact:            f.Impact,
			FiledAt:           now(),
			StaticAlarm:       alarm,
		})
		if !isNew {
			continue
		}
		alerts = append(alerts, &report.Alert{
			Bug:                    *bug,
			RepresentativeInstance: f.MaxInstance,
			RepresentativeCount:    f.MaxCount,
		})
	}
	return alerts
}
