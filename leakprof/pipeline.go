package leakprof

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// Config is the resolved option set a Pipeline runs with. Callers build
// it through New and the With* options; Sources receive it (via SweepEnv)
// so every profile origin honours the same collection knobs.
type Config struct {
	// Client is the HTTP client endpoint sources fetch with; nil means a
	// client bounded by Timeout.
	Client *http.Client
	// Timeout bounds each fetch when Client is nil; zero means 30s.
	Timeout time.Duration
	// Parallelism bounds concurrent collection; zero means 32.
	Parallelism int
	// MaxProfileBytes bounds one profile body; a larger body fails the
	// fetch rather than truncating. Zero means DefaultMaxProfileBytes.
	MaxProfileBytes int64
	// Threshold is the per-instance suspicious-concentration bound;
	// zero means DefaultThreshold.
	Threshold int
	// Ranking picks the impact statistic; default RankRMS.
	Ranking Ranking
	// Filters mark operations as harmless (criterion 2).
	Filters []OpFilter
	// Retry bounds per-endpoint fetch retries; the zero value means one
	// attempt (no retry).
	Retry RetryPolicy
	// ErrorBudget is the number of failed instances per service per
	// sweep before that service's remaining instances short-circuit
	// with ErrBudgetExhausted; zero means unlimited.
	ErrorBudget int
	// Interval separates periodic sweeps in Run; zero means 24h.
	Interval time.Duration
	// Now supplies timestamps; nil means time.Now.
	Now func() time.Time
	// Intern, when non-nil, is a bounded string pool shared across all
	// of the pipeline's profile scans (see WithSharedIntern).
	Intern *stack.InternPool
	// OnSweep observes each completed sweep (after sinks ran).
	OnSweep func(*Sweep)
	// StateDir, when non-empty, roots the pipeline's durable state: a
	// StateStore is opened there on first use, each sweep's error budget
	// is seeded from the previous sweep's journaled failures, and each
	// sweep appends its delta frame to the segmented journal. See
	// WithStateDir.
	StateDir string
	// StateSegmentBytes and StateMaxSegments tune the state journal's
	// compaction thresholds (see WithStateCompaction); zero means the
	// StateStore defaults.
	StateSegmentBytes int64
	StateMaxSegments  int
	// TrendRetention bounds the trend history kept (and journaled) per
	// key to the last N observations (see WithTrendRetention); zero
	// means unlimited.
	TrendRetention int
	// SinkQueue bounds each sink's event queue in the concurrent sink
	// fan-out; zero means DefaultSinkQueue. A sink that falls further
	// behind than its queue backpressures collection rather than
	// buffering a sweep's worth of snapshots.
	SinkQueue int
	// DetachedSinks lets sink lag span sweeps: Sweep returns after
	// handing the completed sweep to every sink's queue instead of
	// draining them, so Run starts sweep N+1 while a slow sink finishes
	// sweep N. Lag is bounded by each sink's queue depth; Pipeline.Flush
	// is the drain barrier and Pipeline.Close the final one. See
	// WithDetachedSinks.
	DetachedSinks bool
	// StateSync is the state journal's fsync policy (see WithStateSync);
	// the zero value is SyncEverySweep.
	StateSync SyncPolicy
	// StateCodec pins the journal frame codec (see WithStateCodec);
	// empty negotiates via the journal manifest, defaulting to binary.
	StateCodec StateCodec
	// SinkErr observes each sink error as the sink's worker hits it (see
	// WithSinkErrorFunc); nil drops nothing — errors still accumulate for
	// the barriers.
	SinkErr func(Sink, error)
	// BugRetention ages closed bugs out of the durable bug database (see
	// WithBugRetention); zero keeps every bug ever filed.
	BugRetention time.Duration
	// Window is the streaming-ingest tumbling-window duration (see
	// WithWindow); zero means DefaultWindow. Only the push-ingestion
	// plane (IngestServer) consumes it — pull sweeps are paced by
	// Interval instead.
	Window time.Duration

	// sleep and randFloat are test seams for the backoff path.
	sleep     func(context.Context, time.Duration) error
	randFloat func() float64
}

// DefaultSinkQueue is the per-sink event queue capacity when SinkQueue
// is unset.
const DefaultSinkQueue = 1024

// DefaultWindow is the streaming-ingest tumbling-window duration when
// WithWindow is unset.
const DefaultWindow = time.Minute

func (c *Config) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

func (c *Config) parallelism() int {
	if c.Parallelism <= 0 {
		return 32
	}
	return c.Parallelism
}

func (c *Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Config) sleepFn() func(context.Context, time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return sleepCtx
}

func (c *Config) randFn() func() float64 {
	if c.randFloat != nil {
		return c.randFloat
	}
	return rand.Float64
}

func (c *Config) sinkQueue() int {
	if c.SinkQueue <= 0 {
		return DefaultSinkQueue
	}
	return c.SinkQueue
}

func (c *Config) window() time.Duration {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

// Option configures a Pipeline.
type Option func(*Config)

// WithHTTPClient sets the HTTP client endpoint sources fetch with.
func WithHTTPClient(client *http.Client) Option {
	return func(c *Config) { c.Client = client }
}

// WithTimeout bounds each profile fetch.
func WithTimeout(d time.Duration) Option {
	return func(c *Config) { c.Timeout = d }
}

// WithParallelism bounds concurrent collection.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithMaxProfileBytes bounds one profile body.
func WithMaxProfileBytes(n int64) Option {
	return func(c *Config) { c.MaxProfileBytes = n }
}

// WithThreshold sets the per-instance suspicious-concentration bound
// (the paper's 10K).
func WithThreshold(n int) Option {
	return func(c *Config) { c.Threshold = n }
}

// WithRanking picks the fleet-wide impact statistic.
func WithRanking(r Ranking) Option {
	return func(c *Config) { c.Ranking = r }
}

// WithFilters appends criterion-2 harmless-operation filters.
func WithFilters(filters ...OpFilter) Option {
	return func(c *Config) { c.Filters = append(c.Filters, filters...) }
}

// WithRetry sets the per-endpoint retry policy for production
// collection.
func WithRetry(policy RetryPolicy) Option {
	return func(c *Config) { c.Retry = policy }
}

// WithErrorBudget short-circuits a service's remaining instances once
// perService of its instances have failed (post-retry) in one sweep.
func WithErrorBudget(perService int) Option {
	return func(c *Config) { c.ErrorBudget = perService }
}

// WithInterval separates periodic sweeps in Run.
func WithInterval(d time.Duration) Option {
	return func(c *Config) { c.Interval = d }
}

// WithClock injects the timestamp source (simulations use a fake clock).
func WithClock(now func() time.Time) Option {
	return func(c *Config) { c.Now = now }
}

// WithSharedIntern attaches a bounded intern pool (maxEntries distinct
// strings; <= 0 means the stack package default) shared across every
// profile scan the pipeline runs, across sweeps: daily sweeps of the same
// fleet stop re-interning identical function and file strings per fetch.
func WithSharedIntern(maxEntries int) Option {
	return func(c *Config) { c.Intern = stack.NewInternPool(maxEntries) }
}

// WithOnSweep registers an observer called after each sweep's sinks ran.
func WithOnSweep(fn func(*Sweep)) Option {
	return func(c *Config) { c.OnSweep = fn }
}

// WithStateDir makes the pipeline durable: a StateStore journal under
// dir is recovered at startup (Pipeline.State returns it, with its
// pre-seeded BugDB and Tracker for sink wiring), each sweep seeds its
// error budget from the previous sweep's journaled failures — a service
// down yesterday gets a reduced probe budget today — and each sweep
// appends one checksummed delta frame to the segmented journal, so
// dedup, trend verdicts, and budgets survive a restart at a per-sweep
// write cost proportional to what the sweep changed.
func WithStateDir(dir string) Option {
	return func(c *Config) { c.StateDir = dir }
}

// WithStateCompaction tunes the state journal: the active segment rolls
// over once it exceeds segmentBytes, and once more than maxSegments
// segments are live they are folded into one snapshot segment (the old
// ones deleted), keeping the state dir bounded. Non-positive values keep
// the StateStore defaults.
func WithStateCompaction(segmentBytes int64, maxSegments int) Option {
	return func(c *Config) {
		c.StateSegmentBytes = segmentBytes
		c.StateMaxSegments = maxSegments
	}
}

// WithTrendRetention keeps only the last n trend observations per finding
// key — in the tracker's verdicts and exports, in every journaled
// snapshot, and across restores — so cross-sweep history (and the state
// journal) stops growing with the age of the deployment. Zero retains
// unlimited history.
func WithTrendRetention(n int) Option {
	return func(c *Config) { c.TrendRetention = n }
}

// WithSinkQueue bounds each sink's event queue in the concurrent sink
// fan-out (default DefaultSinkQueue).
func WithSinkQueue(n int) Option {
	return func(c *Config) { c.SinkQueue = n }
}

// WithDetachedSinks detaches sink draining from the sweep: Sweep returns
// once the completed sweep is on every sink's queue, without waiting for
// the slowest sink to process it, so a periodic Run starts sweep N+1
// while a cold archive disk is still writing sweep N. Sink lag is
// bounded: each queue holds at most SinkQueue events, and a sink further
// behind backpressures the next sweep's collection instead of buffering
// without bound. Sink errors surface at the explicit barriers —
// Pipeline.Flush (drain now, keep running) and Pipeline.Close (drain and
// shut down) — instead of joining each Sweep's return value, and the
// state journal records a sweep when it completes, not when its sinks
// finish (a detached TrendSink's late observations ride the next frame,
// or the Flush/Close delta). Without this option every Sweep drains all
// queues before returning, the strict default.
func WithDetachedSinks() Option {
	return func(c *Config) { c.DetachedSinks = true }
}

// WithStateSync sets the state journal's fsync policy: SyncEverySweep
// (default) syncs each recorded sweep before RecordSweep returns;
// SyncEvery(n, d) group-commits — one fsync per window of n sweeps or d
// elapsed, off the critical path; SyncOnClose defers to Flush/Close. The
// loss window on a crash equals the unsynced window. See SyncPolicy.
func WithStateSync(p SyncPolicy) Option {
	return func(c *Config) { c.StateSync = p }
}

// WithStateCodec pins the journal frame encoding (StateCodecBinary or
// StateCodecJSON). Unset, the store keeps the dialect its journal
// already speaks (negotiated via the manifest) and defaults new journals
// to binary. Reading always accepts both, so mixed-codec journals
// recover in one pass.
func WithStateCodec(c StateCodec) Option {
	return func(cfg *Config) { cfg.StateCodec = c }
}

// WithSinkErrorFunc registers a per-sink error callback invoked from the
// sink's worker goroutine the moment SweepDone fails. Under
// WithDetachedSinks errors otherwise surface only at the Flush/Close
// barriers — which a long periodic Run may not reach for days — so an
// operator alerting on archive-disk failures observes them here, between
// barriers, while the errors still accumulate for the barrier to return.
// The callback must be safe for concurrent use: each sink's worker calls
// it independently.
func WithSinkErrorFunc(fn func(Sink, error)) Option {
	return func(c *Config) { c.SinkErr = fn }
}

// WithWindow sets the streaming-ingest tumbling-window duration: an
// IngestServer folding pushed dumps closes one window — and emits one
// normal Sweep through the pipeline's sinks and state journal — every d
// on the pipeline clock. Dumps arriving while a window closes are
// credited to the next window. Pull sweeps ignore it (their cadence is
// WithInterval). Default DefaultWindow.
func WithWindow(d time.Duration) Option {
	return func(c *Config) { c.Window = d }
}

// WithBugRetention ages closed (fixed or rejected) bugs out of the
// durable bug database once their last sighting is older than age — from
// memory, from delta frames, and from compaction folds. Open bugs never
// age out, so dedup against a still-open report is unaffected. Zero
// keeps every bug ever filed.
func WithBugRetention(age time.Duration) Option {
	return func(c *Config) { c.BugRetention = age }
}

// Pipeline is the single entry point to LEAKPROF's collect → detect →
// report loop: one Engine pulling snapshots from a Source, folding them
// through the streaming sharded Aggregator, and fanning per-snapshot
// events plus end-of-sweep results out to Sinks.
//
//	pipe := leakprof.New(
//		leakprof.WithThreshold(10000),
//		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
//		leakprof.WithErrorBudget(3),
//	)
//	pipe.AddSinks(&leakprof.ReportSink{Reporter: rep}, &leakprof.TrendSink{Tracker: tr})
//	sweep, err := pipe.Sweep(ctx, leakprof.Endpoints(enumerate))
//
// The same pipeline sweeps HTTP fleets (Endpoints), on-disk archives
// (Archive), simulated fleets (fleet.(*Fleet).Source), materialised
// snapshots (FromSnapshots), and raw dump bodies (Dumps). Sweeps are
// serialised per Pipeline; the collection inside one sweep is
// concurrent, and so is the sink fan-out: every sink consumes its own
// bounded event queue on its own goroutine, so a slow sink (a remote
// metrics push, a cold archive disk) cannot delay another sink's
// alerting. The sweep drains all queues before returning (the
// drain-on-close barrier), so sink errors still join the sweep's
// result.
type Pipeline struct {
	cfg   Config
	mu    sync.Mutex // serialises sweeps (and Flush/Close)
	sinks []Sink

	// workers are the persistent per-sink goroutines of detached mode,
	// created lazily on first sweep; in the default synchronous mode
	// workers live for one sweep only and this stays nil.
	workers []*sinkWorker

	stateOnce sync.Once
	store     *StateStore
	stateErr  error

	// shardSeq numbers this pipeline's ShardSweep reports so a
	// coordinator inbox can drop a report the worker shipped twice.
	shardSeq atomic.Uint64
}

// New builds a Pipeline from functional options.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{}
	for _, opt := range opts {
		opt(&p.cfg)
	}
	return p
}

// AddSinks registers sinks receiving per-snapshot events and end-of-sweep
// results. Not safe to call concurrently with Sweep or Run.
func (p *Pipeline) AddSinks(sinks ...Sink) *Pipeline {
	p.sinks = append(p.sinks, sinks...)
	return p
}

// Config returns the pipeline's resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// State returns the pipeline's durable state store, opening it (and
// loading its journal) on first call. It returns (nil, nil) when the
// pipeline has no StateDir configured. The store's BugDB and Tracker
// are what restart-safe sinks should be wired to.
func (p *Pipeline) State() (*StateStore, error) {
	if p.cfg.StateDir == "" {
		return nil, nil
	}
	p.stateOnce.Do(func() {
		// The store inherits the pipeline's clock so journal frames are
		// stamped with the same (possibly fake) time the sweeps use.
		opts := []StateOption{
			StateClock(p.cfg.now),
			StateCompaction(p.cfg.StateSegmentBytes, p.cfg.StateMaxSegments),
			StateTrendRetention(p.cfg.TrendRetention),
			StateSync(p.cfg.StateSync),
			StateBugRetention(p.cfg.BugRetention),
		}
		if p.cfg.StateCodec.valid() {
			opts = append(opts, StateFrameCodec(p.cfg.StateCodec))
		}
		p.store, p.stateErr = OpenStateStore(p.cfg.StateDir, opts...)
	})
	return p.store, p.stateErr
}

// sinkEvent is one unit of a sink's queue: a streamed snapshot, the
// end-of-sweep delivery (sweep set), or a flush sentinel (flush set) —
// the detached-mode barrier, answered with the worker's accumulated
// errors once everything queued ahead of it has been processed.
type sinkEvent struct {
	snap  *gprofile.Snapshot
	sweep *Sweep
	flush chan<- error
}

// sinkWorker runs one sink on its own goroutine over a bounded queue.
// Events for one sink stay ordered (snapshots, then the sweep), but
// sinks no longer wait on each other: a stalled archive disk cannot
// delay the report sink's alerting. In detached mode the worker outlives
// individual sweeps, so its error accumulation is mutex-guarded and
// drained by flush sentinels instead of the per-sweep barrier.
type sinkWorker struct {
	sink Sink
	ch   chan sinkEvent
	done chan struct{}

	mu  sync.Mutex
	err error // accumulated SweepDone errors since the last drain
}

func startSinkWorker(sink Sink, queue int, onErr func(Sink, error)) *sinkWorker {
	w := &sinkWorker{sink: sink, ch: make(chan sinkEvent, queue), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		for ev := range w.ch {
			switch {
			case ev.flush != nil:
				ev.flush <- w.takeErr()
			case ev.sweep != nil:
				if err := w.sink.SweepDone(ev.sweep); err != nil {
					w.mu.Lock()
					w.err = errors.Join(w.err, err)
					w.mu.Unlock()
					// The callback fires between barriers; the
					// accumulated error still reaches the next one.
					if onErr != nil {
						onErr(w.sink, err)
					}
				}
			default:
				w.sink.Snapshot(ev.snap)
			}
		}
	}()
	return w
}

// takeErr returns and clears the worker's accumulated errors.
func (w *sinkWorker) takeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}

// Sweep runs one collection pass over the source: every snapshot the
// source emits streams into a fresh aggregator and onto each sink's
// bounded queue, failures are tallied, and the completed Sweep (findings
// plus the aggregator's raw moments) is delivered to every sink. Sinks
// consume their queues concurrently with collection and with each other.
// By default Sweep drains every queue before returning, so the returned
// error joins the source error with any sink and state-persistence
// errors; under WithDetachedSinks it returns once the sweep is enqueued
// everywhere, and sink errors surface at the Flush/Close barriers
// instead. A Sweep is returned even when collection partially failed.
func (p *Pipeline) Sweep(ctx context.Context, src Source) (*Sweep, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	store, stateErr := p.State()
	var prevFailures map[string]int
	if store != nil {
		prevFailures = store.LastFailureCounts()
	}

	agg := NewAggregator(p.cfg.Threshold, p.cfg.Filters...)
	sweep := &Sweep{At: p.cfg.now(), Source: src.Name()}
	var workers []*sinkWorker
	if p.cfg.DetachedSinks {
		workers = p.detachedWorkersLocked()
	} else {
		workers = make([]*sinkWorker, len(p.sinks))
		for i, s := range p.sinks {
			workers[i] = startSinkWorker(s, p.cfg.sinkQueue(), p.cfg.SinkErr)
		}
	}
	var mu sync.Mutex
	env := &SweepEnv{
		Config: &p.cfg,
		Emit: func(snap *gprofile.Snapshot) {
			agg.Add(snap)
			for _, w := range workers {
				w.ch <- sinkEvent{snap: snap}
			}
		},
		Fail: func(service, instance string, err error) {
			mu.Lock()
			sweep.Errors++
			// Salvage reports (a profile decoded by skipping corrupt
			// members) are diagnostics, not downness: they count in
			// Errors and Failures but must not seed the next sweep's
			// error budget against a reachable service.
			if !errors.Is(err, gprofile.ErrSalvaged) {
				if sweep.FailedByService == nil {
					sweep.FailedByService = make(map[string]int)
				}
				sweep.FailedByService[service]++
			}
			if len(sweep.Failures) < maxSweepFailures {
				sweep.Failures = append(sweep.Failures, SweepFailure{Service: service, Instance: instance, Err: err})
			}
			mu.Unlock()
		},
		SetTime: func(at time.Time) { sweep.At = at },
		MergeReport: func(rep *ShardReport) {
			agg.MergeMoments(rep.Services, rep.Profiles, rep.Moments)
			mu.Lock()
			sweep.Errors += rep.Errors
			for svc, n := range rep.FailedByService {
				if sweep.FailedByService == nil {
					sweep.FailedByService = make(map[string]int)
				}
				sweep.FailedByService[svc] += n
			}
			for _, f := range rep.Failures {
				if len(sweep.Failures) >= maxSweepFailures {
					break
				}
				sweep.Failures = append(sweep.Failures, f)
			}
			mu.Unlock()
		},
		prevFailures: prevFailures,
	}
	err := src.Sweep(ctx, env)
	sweep.Err = err
	sweep.Profiles = agg.Profiles()
	sweep.Findings = agg.Findings(p.cfg.Ranking)
	sweep.agg = agg

	errs := []error{err, stateErr}
	// Hand the completed sweep to every sink. In the default mode each
	// queue is closed behind its sweep event and the barrier waits for
	// every worker to finish; fast sinks complete on their own schedule —
	// the barrier only bounds when Sweep itself returns. Detached
	// workers persist instead: their lag may span sweeps (bounded by
	// queue depth), and Flush/Close are the barriers.
	for _, w := range workers {
		w.ch <- sinkEvent{sweep: sweep}
		if !p.cfg.DetachedSinks {
			close(w.ch)
		}
	}
	if !p.cfg.DetachedSinks {
		for _, w := range workers {
			<-w.done
			errs = append(errs, w.takeErr())
		}
	}
	if store != nil {
		errs = append(errs, store.RecordSweep(sweep))
	}
	if p.cfg.OnSweep != nil {
		p.cfg.OnSweep(sweep)
	}
	return sweep, errors.Join(errs...)
}

// detachedWorkersLocked returns the persistent sink workers, starting
// one for any sink that does not have its own yet.
func (p *Pipeline) detachedWorkersLocked() []*sinkWorker {
	for i := len(p.workers); i < len(p.sinks); i++ {
		p.workers = append(p.workers, startSinkWorker(p.sinks[i], p.cfg.sinkQueue(), p.cfg.SinkErr))
	}
	return p.workers
}

// Flush is the detached-mode drain barrier: it blocks until every sink
// has consumed everything enqueued so far — snapshots and sweeps alike —
// returns the sink errors accumulated since the previous barrier, and
// brings the state journal current and durable (late-arriving trend
// observations are appended, the unsynced group-commit window fsynced).
// With synchronous sinks it only flushes the journal: every Sweep was
// its own barrier. Flush excludes sweeps while it runs; the pipeline
// keeps working afterwards.
func (p *Pipeline) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pipeline) flushLocked() error {
	var errs []error
	acks := make([]chan error, len(p.workers))
	for i, w := range p.workers {
		ack := make(chan error, 1)
		acks[i] = ack
		w.ch <- sinkEvent{flush: ack}
	}
	for _, ack := range acks {
		errs = append(errs, <-ack)
	}
	if p.store != nil {
		errs = append(errs, p.store.Flush())
	}
	return errors.Join(errs...)
}

// Close drains and shuts the pipeline down: detached sink workers finish
// their queues and exit, their remaining errors are returned, and the
// state store is flushed and closed (pending deltas journaled, the
// unsynced window fsynced — SyncOnClose's moment). A pipeline without
// detached workers or a state store closes trivially. Sweeping after
// Close restarts workers, but the idiomatic lifecycle is one Close at
// the end of Run.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for _, w := range p.workers {
		close(w.ch)
	}
	for _, w := range p.workers {
		<-w.done
		errs = append(errs, w.takeErr())
	}
	p.workers = nil
	if p.store != nil {
		errs = append(errs, p.store.Close())
	}
	return errors.Join(errs...)
}

// Replay sweeps an on-disk archive through the pipeline, honouring
// recorded manifests. A multi-sweep archive (one subdirectory per sweep,
// as NewSweepArchiveSink writes) replays one Sweep per recorded sweep in
// recorded-time order — so trend verdicts see the original cadence — and
// a single-sweep archive replays as one Sweep. Per-sweep errors, and
// sweep subdirectories skipped for a torn or missing manifest, are
// joined into the returned error; replay continues past a failed sweep
// the way Run does.
func (p *Pipeline) Replay(ctx context.Context, dir string) ([]*Sweep, error) {
	var errs []error
	subs, err := gprofile.SweepDirs(dir, func(name string, err error) {
		errs = append(errs, fmt.Errorf("leakprof: replay skipping %s: %w", name, err))
	})
	if err != nil {
		return nil, err
	}
	if len(subs) == 0 {
		sweep, err := p.Sweep(ctx, Archive(dir))
		errs = append(errs, err)
		return []*Sweep{sweep}, errors.Join(errs...)
	}
	var sweeps []*Sweep
	for _, sub := range subs {
		if ctx.Err() != nil {
			errs = append(errs, ctx.Err())
			break
		}
		sweep, err := p.Sweep(ctx, Archive(sub.Dir))
		sweeps = append(sweeps, sweep)
		errs = append(errs, err)
	}
	return sweeps, errors.Join(errs...)
}

// Run sweeps the source periodically — the paper's daily cadence — until
// the context is cancelled. The first sweep happens immediately;
// subsequent sweeps follow the configured interval. Sweep-level errors
// flow to sinks and OnSweep, not out of Run: an unreachable fleet today
// must not stop tomorrow's sweep.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	interval := p.cfg.Interval
	if interval <= 0 {
		interval = 24 * time.Hour
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		p.Sweep(ctx, src)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
