package leakprof

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// Config is the resolved option set a Pipeline runs with. Callers build
// it through New and the With* options; Sources receive it (via SweepEnv)
// so every profile origin honours the same collection knobs.
type Config struct {
	// Client is the HTTP client endpoint sources fetch with; nil means a
	// client bounded by Timeout.
	Client *http.Client
	// Timeout bounds each fetch when Client is nil; zero means 30s.
	Timeout time.Duration
	// Parallelism bounds concurrent collection; zero means 32.
	Parallelism int
	// MaxProfileBytes bounds one profile body; a larger body fails the
	// fetch rather than truncating. Zero means DefaultMaxProfileBytes.
	MaxProfileBytes int64
	// Threshold is the per-instance suspicious-concentration bound;
	// zero means DefaultThreshold.
	Threshold int
	// Ranking picks the impact statistic; default RankRMS.
	Ranking Ranking
	// Filters mark operations as harmless (criterion 2).
	Filters []OpFilter
	// Retry bounds per-endpoint fetch retries; the zero value means one
	// attempt (no retry).
	Retry RetryPolicy
	// ErrorBudget is the number of failed instances per service per
	// sweep before that service's remaining instances short-circuit
	// with ErrBudgetExhausted; zero means unlimited.
	ErrorBudget int
	// Interval separates periodic sweeps in Run; zero means 24h.
	Interval time.Duration
	// Now supplies timestamps; nil means time.Now.
	Now func() time.Time
	// Intern, when non-nil, is a bounded string pool shared across all
	// of the pipeline's profile scans (see WithSharedIntern).
	Intern *stack.InternPool
	// OnSweep observes each completed sweep (after sinks ran).
	OnSweep func(*Sweep)

	// sleep and randFloat are test seams for the backoff path.
	sleep     func(context.Context, time.Duration) error
	randFloat func() float64
}

func (c *Config) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

func (c *Config) parallelism() int {
	if c.Parallelism <= 0 {
		return 32
	}
	return c.Parallelism
}

func (c *Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Config) sleepFn() func(context.Context, time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return sleepCtx
}

func (c *Config) randFn() func() float64 {
	if c.randFloat != nil {
		return c.randFloat
	}
	return rand.Float64
}

// Option configures a Pipeline.
type Option func(*Config)

// WithHTTPClient sets the HTTP client endpoint sources fetch with.
func WithHTTPClient(client *http.Client) Option {
	return func(c *Config) { c.Client = client }
}

// WithTimeout bounds each profile fetch.
func WithTimeout(d time.Duration) Option {
	return func(c *Config) { c.Timeout = d }
}

// WithParallelism bounds concurrent collection.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithMaxProfileBytes bounds one profile body.
func WithMaxProfileBytes(n int64) Option {
	return func(c *Config) { c.MaxProfileBytes = n }
}

// WithThreshold sets the per-instance suspicious-concentration bound
// (the paper's 10K).
func WithThreshold(n int) Option {
	return func(c *Config) { c.Threshold = n }
}

// WithRanking picks the fleet-wide impact statistic.
func WithRanking(r Ranking) Option {
	return func(c *Config) { c.Ranking = r }
}

// WithFilters appends criterion-2 harmless-operation filters.
func WithFilters(filters ...OpFilter) Option {
	return func(c *Config) { c.Filters = append(c.Filters, filters...) }
}

// WithRetry sets the per-endpoint retry policy for production
// collection.
func WithRetry(policy RetryPolicy) Option {
	return func(c *Config) { c.Retry = policy }
}

// WithErrorBudget short-circuits a service's remaining instances once
// perService of its instances have failed (post-retry) in one sweep.
func WithErrorBudget(perService int) Option {
	return func(c *Config) { c.ErrorBudget = perService }
}

// WithInterval separates periodic sweeps in Run.
func WithInterval(d time.Duration) Option {
	return func(c *Config) { c.Interval = d }
}

// WithClock injects the timestamp source (simulations use a fake clock).
func WithClock(now func() time.Time) Option {
	return func(c *Config) { c.Now = now }
}

// WithSharedIntern attaches a bounded intern pool (maxEntries distinct
// strings; <= 0 means the stack package default) shared across every
// profile scan the pipeline runs, across sweeps: daily sweeps of the same
// fleet stop re-interning identical function and file strings per fetch.
func WithSharedIntern(maxEntries int) Option {
	return func(c *Config) { c.Intern = stack.NewInternPool(maxEntries) }
}

// WithOnSweep registers an observer called after each sweep's sinks ran.
func WithOnSweep(fn func(*Sweep)) Option {
	return func(c *Config) { c.OnSweep = fn }
}

// Pipeline is the single entry point to LEAKPROF's collect → detect →
// report loop: one Engine pulling snapshots from a Source, folding them
// through the streaming sharded Aggregator, and fanning per-snapshot
// events plus end-of-sweep results out to Sinks.
//
//	pipe := leakprof.New(
//		leakprof.WithThreshold(10000),
//		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
//		leakprof.WithErrorBudget(3),
//	)
//	pipe.AddSinks(&leakprof.ReportSink{Reporter: rep}, &leakprof.TrendSink{Tracker: tr})
//	sweep, err := pipe.Sweep(ctx, leakprof.Endpoints(enumerate))
//
// The same pipeline sweeps HTTP fleets (Endpoints), on-disk archives
// (Archive), simulated fleets (fleet.(*Fleet).Source), materialised
// snapshots (FromSnapshots), and raw dump bodies (Dumps). Sweeps are
// serialised per Pipeline; the collection inside one sweep is
// concurrent.
type Pipeline struct {
	cfg   Config
	mu    sync.Mutex // serialises sweeps
	sinks []Sink
}

// New builds a Pipeline from functional options.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{}
	for _, opt := range opts {
		opt(&p.cfg)
	}
	return p
}

// AddSinks registers sinks receiving per-snapshot events and end-of-sweep
// results. Not safe to call concurrently with Sweep or Run.
func (p *Pipeline) AddSinks(sinks ...Sink) *Pipeline {
	p.sinks = append(p.sinks, sinks...)
	return p
}

// Config returns the pipeline's resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Sweep runs one collection pass over the source: every snapshot the
// source emits streams through the sinks and into a fresh aggregator,
// failures are tallied, and the completed Sweep (findings plus the
// aggregator's raw moments) is delivered to every sink. The returned
// error joins the source error with any sink errors; a Sweep is returned
// even when collection partially failed.
func (p *Pipeline) Sweep(ctx context.Context, src Source) (*Sweep, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	agg := NewAggregator(p.cfg.Threshold, p.cfg.Filters...)
	sweep := &Sweep{At: p.cfg.now(), Source: src.Name()}
	var mu sync.Mutex
	env := &SweepEnv{
		Config: &p.cfg,
		Emit: func(snap *gprofile.Snapshot) {
			agg.Add(snap)
			for _, s := range p.sinks {
				s.Snapshot(snap)
			}
		},
		Fail: func(service, instance string, err error) {
			mu.Lock()
			sweep.Errors++
			if len(sweep.Failures) < maxSweepFailures {
				sweep.Failures = append(sweep.Failures, SweepFailure{Service: service, Instance: instance, Err: err})
			}
			mu.Unlock()
		},
	}
	err := src.Sweep(ctx, env)
	sweep.Err = err
	sweep.Profiles = agg.Profiles()
	sweep.Findings = agg.Findings(p.cfg.Ranking)
	sweep.agg = agg

	errs := []error{err}
	for _, s := range p.sinks {
		errs = append(errs, s.SweepDone(sweep))
	}
	if p.cfg.OnSweep != nil {
		p.cfg.OnSweep(sweep)
	}
	return sweep, errors.Join(errs...)
}

// Run sweeps the source periodically — the paper's daily cadence — until
// the context is cancelled. The first sweep happens immediately;
// subsequent sweeps follow the configured interval. Sweep-level errors
// flow to sinks and OnSweep, not out of Run: an unreachable fleet today
// must not stop tomorrow's sweep.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	interval := p.cfg.Interval
	if interval <= 0 {
		interval = 24 * time.Hour
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		p.Sweep(ctx, src)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
