package leakprof

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

func profileServer(gs []*stack.Goroutine) *httptest.Server {
	return httptest.NewServer(gprofile.Handler{Stacks: func() []*stack.Goroutine { return gs }})
}

func TestCollectFetchesAndScans(t *testing.T) {
	gs := []*stack.Goroutine{
		{ID: 1, State: "chan send", Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}}},
		{ID: 2, State: "IO wait", Frames: []stack.Frame{{Function: "svc.read", File: "/svc/r.go", Line: 9}}},
	}
	srv := profileServer(gs)
	defer srv.Close()

	c := &Collector{Now: func() time.Time { return time.Unix(42, 0) }}
	results := c.Collect(context.Background(), []Endpoint{
		{Service: "svc", Instance: "i1", URL: srv.URL + "?debug=2"},
	})
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Snapshot.Service != "svc" || r.Snapshot.Instance != "i1" {
		t.Errorf("snapshot meta = %+v", r.Snapshot)
	}
	if !r.Snapshot.TakenAt.Equal(time.Unix(42, 0)) {
		t.Errorf("timestamp = %v", r.Snapshot.TakenAt)
	}
	// The body streamed through the scanner: the snapshot is compact,
	// carrying aggregates rather than goroutine records.
	if len(r.Snapshot.Goroutines) != 0 {
		t.Errorf("snapshot retained %d goroutine records", len(r.Snapshot.Goroutines))
	}
	if r.Snapshot.NumGoroutines() != 2 {
		t.Errorf("total goroutines = %d, want 2", r.Snapshot.NumGoroutines())
	}
	want := stack.BlockedOp{Op: "send", Location: "/svc/l.go:5", Function: "svc.leak"}
	if n := r.Snapshot.PreAggregated[want]; n != 1 {
		t.Errorf("aggregates = %+v, want %+v -> 1", r.Snapshot.PreAggregated, want)
	}
}

func TestCollectIntoStreamsAggregates(t *testing.T) {
	gs := make([]*stack.Goroutine, 300)
	for i := range gs {
		gs[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}},
		}
	}
	srv := profileServer(gs)
	defer srv.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()

	analyzer := &Analyzer{Threshold: 100}
	agg := analyzer.NewAggregator()
	c := &Collector{}
	errs := c.CollectInto(context.Background(), []Endpoint{
		{Service: "svc", Instance: "i1", URL: srv.URL + "?debug=2"},
		{Service: "svc", Instance: "i2", URL: srv.URL + "?debug=2"},
		{Service: "svc", Instance: "down", URL: bad.URL},
	}, agg)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("good endpoints errored: %v, %v", errs[0], errs[1])
	}
	if errs[2] == nil {
		t.Error("failing endpoint did not error")
	}
	if agg.Profiles() != 2 {
		t.Errorf("profiles = %d, want 2", agg.Profiles())
	}
	findings := agg.Findings(RankRMS)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	f := findings[0]
	if f.Location != "/svc/l.go:5" || f.TotalBlocked != 600 || f.Instances != 2 || f.SuspiciousInstances != 2 {
		t.Errorf("finding = %+v", f)
	}
}

func TestCollectToleratesFailures(t *testing.T) {
	good := profileServer(nil)
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()

	c := &Collector{}
	results := c.Collect(context.Background(), []Endpoint{
		{Service: "a", Instance: "a1", URL: good.URL + "?debug=2"},
		{Service: "b", Instance: "b1", URL: bad.URL},
		{Service: "c", Instance: "c1", URL: "http://127.0.0.1:1/unreachable"},
	})
	if results[0].Err != nil {
		t.Errorf("good endpoint failed: %v", results[0].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Error("failing endpoints did not error")
	}
	snaps := Snapshots(results)
	if len(snaps) != 1 || snaps[0].Service != "a" {
		t.Errorf("Snapshots = %+v", snaps)
	}
}

func TestCollectBoundedParallelism(t *testing.T) {
	var inFlight, maxInFlight atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := maxInFlight.Load()
			if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		_, _ = w.Write([]byte("goroutine 1 [running]:\nmain.main()\n\t/a.go:1 +0x1\n"))
	}))
	defer srv.Close()

	c := &Collector{Parallelism: 3}
	endpoints := make([]Endpoint, 12)
	for i := range endpoints {
		endpoints[i] = Endpoint{Service: "s", Instance: string(rune('a' + i)), URL: srv.URL}
	}
	results := c.Collect(context.Background(), endpoints)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := maxInFlight.Load(); got > 3 {
		t.Errorf("max in-flight = %d, want <= 3", got)
	}
}

func TestCollectRejectsOversizedProfile(t *testing.T) {
	gs := make([]*stack.Goroutine, 50)
	for i := range gs {
		gs[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}},
		}
	}
	body := stack.Format(gs)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(body))
	}))
	defer srv.Close()

	// A body over the cap must fail the fetch — truncating would
	// silently undercount the leakiest instances.
	c := &Collector{MaxProfileBytes: int64(len(body) - 1)}
	results := c.Collect(context.Background(), []Endpoint{{Service: "s", Instance: "i", URL: srv.URL}})
	if results[0].Err == nil {
		t.Fatal("oversized profile did not error")
	}
	if !strings.Contains(results[0].Err.Error(), "exceeds") {
		t.Errorf("error = %v, want size-limit error", results[0].Err)
	}

	// At exactly the cap the profile is complete and must succeed.
	c = &Collector{MaxProfileBytes: int64(len(body))}
	results = c.Collect(context.Background(), []Endpoint{{Service: "s", Instance: "i", URL: srv.URL}})
	if results[0].Err != nil {
		t.Fatalf("at-limit profile errored: %v", results[0].Err)
	}
	if results[0].Snapshot.NumGoroutines() != 50 {
		t.Errorf("goroutines = %d, want 50", results[0].Snapshot.NumGoroutines())
	}
}

func TestCollectHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &Collector{}
	results := c.Collect(ctx, []Endpoint{{Service: "s", Instance: "i", URL: srv.URL}})
	if results[0].Err == nil {
		t.Error("cancelled fetch should error")
	}
}
