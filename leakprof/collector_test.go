package leakprof

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

func profileServer(gs []*stack.Goroutine) *httptest.Server {
	return httptest.NewServer(gprofile.Handler{Stacks: func() []*stack.Goroutine { return gs }})
}

func TestCollectFetchesAndParses(t *testing.T) {
	gs := []*stack.Goroutine{
		{ID: 1, State: "chan send", Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}}},
	}
	srv := profileServer(gs)
	defer srv.Close()

	c := &Collector{Now: func() time.Time { return time.Unix(42, 0) }}
	results := c.Collect(context.Background(), []Endpoint{
		{Service: "svc", Instance: "i1", URL: srv.URL + "?debug=2"},
	})
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Snapshot.Service != "svc" || r.Snapshot.Instance != "i1" {
		t.Errorf("snapshot meta = %+v", r.Snapshot)
	}
	if !r.Snapshot.TakenAt.Equal(time.Unix(42, 0)) {
		t.Errorf("timestamp = %v", r.Snapshot.TakenAt)
	}
	if len(r.Snapshot.Goroutines) != 1 || r.Snapshot.Goroutines[0].State != "chan send" {
		t.Errorf("goroutines = %+v", r.Snapshot.Goroutines)
	}
}

func TestCollectToleratesFailures(t *testing.T) {
	good := profileServer(nil)
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()

	c := &Collector{}
	results := c.Collect(context.Background(), []Endpoint{
		{Service: "a", Instance: "a1", URL: good.URL + "?debug=2"},
		{Service: "b", Instance: "b1", URL: bad.URL},
		{Service: "c", Instance: "c1", URL: "http://127.0.0.1:1/unreachable"},
	})
	if results[0].Err != nil {
		t.Errorf("good endpoint failed: %v", results[0].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Error("failing endpoints did not error")
	}
	snaps := Snapshots(results)
	if len(snaps) != 1 || snaps[0].Service != "a" {
		t.Errorf("Snapshots = %+v", snaps)
	}
}

func TestCollectBoundedParallelism(t *testing.T) {
	var inFlight, maxInFlight atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := maxInFlight.Load()
			if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		_, _ = w.Write([]byte("goroutine 1 [running]:\nmain.main()\n\t/a.go:1 +0x1\n"))
	}))
	defer srv.Close()

	c := &Collector{Parallelism: 3}
	endpoints := make([]Endpoint, 12)
	for i := range endpoints {
		endpoints[i] = Endpoint{Service: "s", Instance: string(rune('a' + i)), URL: srv.URL}
	}
	results := c.Collect(context.Background(), endpoints)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := maxInFlight.Load(); got > 3 {
		t.Errorf("max in-flight = %d, want <= 3", got)
	}
}

func TestCollectHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &Collector{}
	results := c.Collect(ctx, []Endpoint{{Service: "s", Instance: "i", URL: srv.URL}})
	if results[0].Err == nil {
		t.Error("cancelled fetch should error")
	}
}
