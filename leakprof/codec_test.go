package leakprof

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/report"
)

// codecSampleRecord builds a record exercising every field the codec
// carries: zero and non-zero times, variance-bearing observations, a
// sweep outcome with failure counts.
func codecSampleRecord(kind string) *journalRecord {
	at := time.Unix(1000, 42).UTC()
	return &journalRecord{
		Kind:    kind,
		SavedAt: at,
		Bugs: []report.Bug{
			{
				Key: "svc|send|/a.go:1", Service: "svc", Op: "send",
				Location: "/a.go:1", Function: "svc.leak", Owner: "team-a",
				BlockedGoroutines: 12345, Impact: 321.5,
				FiledAt: at, LastSeen: at.Add(24 * time.Hour),
				Status: report.StatusAcknowledged, Sightings: 7,
			},
			{Key: "svc|recv|/b.go:9", Service: "svc", Op: "recv", Location: "/b.go:9"},
		},
		Trend: map[string][]TrendObservation{
			"svc|send|/a.go:1": {
				{At: at, Total: 100, Profiles: 8, SumSquares: 1250.25},
				{At: at.Add(24 * time.Hour), Total: 140},
			},
		},
		Sweep: &SweepRecord{
			At: at, Source: "fleet", Profiles: 100, Errors: 3, Findings: 2,
			FailedByService: map[string]int{"flaky": 3},
		},
	}
}

// TestCodecRoundTrip pins both codecs: a record survives encode/decode
// exactly, including the zero-time fields JSON handles implicitly.
func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range []StateCodec{StateCodecJSON, StateCodecBinary} {
		for _, kind := range []string{recordDelta, recordSnapshot} {
			t.Run(string(codec)+"/"+kind, func(t *testing.T) {
				rec := codecSampleRecord(kind)
				payload, err := encodePayload(rec, codec)
				if err != nil {
					t.Fatal(err)
				}
				got, err := decodePayload(payload)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rec, got) {
					t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", rec, got)
				}
			})
		}
	}
}

// TestCodecFramesSelfDescribe pins the mixed-journal property: the
// decoder needs no out-of-band codec hint, because binary payloads open
// with the magic byte and JSON payloads with '{'.
func TestCodecFramesSelfDescribe(t *testing.T) {
	rec := codecSampleRecord(recordDelta)
	jsonPayload, err := encodePayload(rec, StateCodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	binPayload, err := encodePayload(rec, StateCodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if jsonPayload[0] == binaryFrameMagic {
		t.Fatal("JSON payload collides with the binary magic byte")
	}
	if binPayload[0] != binaryFrameMagic {
		t.Fatalf("binary payload opens with 0x%02x, want the magic", binPayload[0])
	}
	for _, payload := range [][]byte{jsonPayload, binPayload} {
		if got, err := decodePayload(payload); err != nil || got.Kind != recordDelta {
			t.Errorf("self-describing decode = %+v, %v", got, err)
		}
	}
}

// TestCodecTruncationRobustness feeds the binary decoder every prefix of
// a valid payload: each must error cleanly — never panic, never succeed
// with garbage, and never allocate absurdly (the count bounds).
func TestCodecTruncationRobustness(t *testing.T) {
	for _, kind := range []string{recordDelta, recordSnapshot} {
		payload, err := encodePayload(codecSampleRecord(kind), StateCodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(payload); n++ {
			if _, err := decodePayload(payload[:n]); err == nil {
				t.Errorf("%s payload truncated to %d bytes decoded without error", kind, n)
			}
		}
		// Flipping the version byte forward must refuse, not misread.
		bad := append([]byte(nil), payload...)
		bad[1] = binaryFrameVersion + 1
		if _, err := decodePayload(bad); err == nil {
			t.Error("future binary record version decoded silently")
		}
	}
}

// TestBinarySnapshotSmallerThanJSON pins the acceptance criterion: at a
// 100K-key steady state the binary snapshot payload is at least 3x
// smaller than the JSON payload for the same record.
func TestBinarySnapshotSmallerThanJSON(t *testing.T) {
	const keys = 100_000
	at := time.Unix(0, 0).UTC()
	rec := &journalRecord{Kind: recordSnapshot, SavedAt: at, Trend: make(map[string][]TrendObservation, keys)}
	rec.Bugs = make([]report.Bug, keys)
	for i := range rec.Bugs {
		key := fmt.Sprintf("svc|send|/svc/f%05d.go:1", i)
		rec.Bugs[i] = report.Bug{
			Key: key, Service: "svc", Op: "send",
			Location: fmt.Sprintf("/svc/f%05d.go:1", i), Function: "svc.leak",
			Owner: "team-a", BlockedGoroutines: 1000 + i, Impact: float64(i),
			FiledAt: at, LastSeen: at, Sightings: 3,
		}
		rec.Trend[key] = []TrendObservation{
			{At: at, Total: 1000 + i, Profiles: 8, SumSquares: float64(i) * 1.5},
			{At: at.Add(24 * time.Hour), Total: 1100 + i, Profiles: 8, SumSquares: float64(i) * 1.6},
		}
	}
	jsonPayload, err := encodePayload(rec, StateCodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	binPayload, err := encodePayload(rec, StateCodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(jsonPayload)) / float64(len(binPayload))
	t.Logf("snapshot payload at %d keys: JSON %d bytes, binary %d bytes (%.1fx)", keys, len(jsonPayload), len(binPayload), ratio)
	if ratio < 3 {
		t.Errorf("binary snapshot only %.2fx smaller than JSON, want >= 3x", ratio)
	}
	// And it still round-trips at scale.
	got, err := decodePayload(binPayload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bugs) != keys || len(got.Trend) != keys {
		t.Errorf("scale round trip lost records: %d bugs, %d trend keys", len(got.Bugs), len(got.Trend))
	}
}

// TestCodecDeltaAllocsBelowJSON pins the alloc half of the codec win:
// encoding a production-shaped delta frame (ten touched keys, the
// BenchmarkStateJournal sweep shape) binary must allocate less than
// json.Marshal does.
func TestCodecDeltaAllocsBelowJSON(t *testing.T) {
	rec := codecSampleRecord(recordDelta)
	at := rec.SavedAt
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("svc|send|/svc/f%05d.go:1", i)
		rec.Bugs = append(rec.Bugs, report.Bug{
			Key: key, Service: "svc", Op: "send",
			Location: fmt.Sprintf("/svc/f%05d.go:1", i), FiledAt: at, LastSeen: at,
			BlockedGoroutines: 1000 + i, Sightings: 2,
		})
		rec.Trend[key] = []TrendObservation{{At: at, Total: 1000 + i}}
	}
	binAllocs := testing.AllocsPerRun(50, func() {
		if _, err := encodeBinaryRecord(rec); err != nil {
			t.Fatal(err)
		}
	})
	jsonAllocs := testing.AllocsPerRun(50, func() {
		if _, err := json.Marshal(rec); err != nil {
			t.Fatal(err)
		}
	})
	if binAllocs >= jsonAllocs {
		t.Errorf("binary encode allocs/op = %.0f, want below JSON's %.0f", binAllocs, jsonAllocs)
	}
	t.Logf("delta encode allocs/op: binary %.0f vs JSON %.0f", binAllocs, jsonAllocs)
}
