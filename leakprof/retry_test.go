package leakprof

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stack"
)

// flakyServer fails the first failures requests with 503, then serves a
// one-goroutine profile.
func flakyServer(failures int) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	body := stack.Format([]*stack.Goroutine{{
		ID: 1, State: "chan send",
		Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}},
	}})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(failures) {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(body))
	}))
	return srv, &hits
}

// recordingSleeper captures backoff delays instead of sleeping.
func recordingSleeper(mu *sync.Mutex, delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		mu.Lock()
		*delays = append(*delays, d)
		mu.Unlock()
		return nil
	}
}

func TestRetrySucceedsAfterFlakes(t *testing.T) {
	srv, hits := flakyServer(2)
	defer srv.Close()

	var mu sync.Mutex
	var delays []time.Duration
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 15 * time.Millisecond}
	p := New(WithThreshold(1), WithRetry(policy))
	p.cfg.sleep = recordingSleeper(&mu, &delays)
	p.cfg.randFloat = func() float64 { return 0.999 } // worst-case jitter

	sweep, err := p.Sweep(context.Background(), StaticEndpoints(
		Endpoint{Service: "svc", Instance: "i1", URL: srv.URL},
	))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Profiles != 1 || sweep.Errors != 0 {
		t.Fatalf("profiles=%d errors=%d, want 1/0", sweep.Profiles, sweep.Errors)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 failures + success)", got)
	}
	if len(delays) != 2 {
		t.Fatalf("backoff slept %d times, want 2: %v", len(delays), delays)
	}
	// Jitter ceiling: even at worst-case jitter no delay passes MaxDelay,
	// and every delay is at least the base.
	for _, d := range delays {
		if d > policy.MaxDelay {
			t.Errorf("delay %v exceeds MaxDelay %v", d, policy.MaxDelay)
		}
		if d < policy.BaseDelay {
			t.Errorf("delay %v below BaseDelay %v", d, policy.BaseDelay)
		}
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	srv, hits := flakyServer(1 << 30) // never succeeds
	defer srv.Close()

	var mu sync.Mutex
	var delays []time.Duration
	p := New(WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	p.cfg.sleep = recordingSleeper(&mu, &delays)

	sweep, err := p.Sweep(context.Background(), StaticEndpoints(
		Endpoint{Service: "svc", Instance: "i1", URL: srv.URL},
	))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Errors != 1 || sweep.Profiles != 0 {
		t.Fatalf("errors=%d profiles=%d, want 1/0", sweep.Errors, sweep.Profiles)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d requests, want exactly MaxAttempts=4", got)
	}
	if len(delays) != 3 {
		t.Errorf("backoff slept %d times, want 3", len(delays))
	}
	if len(sweep.Failures) != 1 || !strings.Contains(sweep.Failures[0].Err.Error(), "after 4 attempts") {
		t.Errorf("failure detail = %+v", sweep.Failures)
	}
}

func TestErrorBudgetShortCircuitsService(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer down.Close()
	up, _ := flakyServer(0)
	defer up.Close()

	// A fleet where every "broken" instance fails and "healthy" serves;
	// serial collection makes the short-circuit deterministic.
	const brokenInstances = 6
	eps := []Endpoint{{Service: "healthy", Instance: "h1", URL: up.URL}}
	for i := 0; i < brokenInstances; i++ {
		eps = append(eps, Endpoint{Service: "broken", Instance: "b" + string(rune('0'+i)), URL: down.URL})
	}
	p := New(WithParallelism(1), WithErrorBudget(2))
	sweep, err := p.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Profiles != 1 {
		t.Errorf("healthy service profiles = %d, want 1", sweep.Profiles)
	}
	if sweep.Errors != brokenInstances {
		t.Errorf("errors = %d, want %d (budget skips still count)", sweep.Errors, brokenInstances)
	}
	var fetched, skipped int
	for _, f := range sweep.Failures {
		if f.Service != "broken" {
			t.Errorf("unexpected failure for %s/%s: %v", f.Service, f.Instance, f.Err)
			continue
		}
		if errors.Is(f.Err, ErrBudgetExhausted) {
			skipped++
		} else {
			fetched++
		}
	}
	if fetched != 2 || skipped != brokenInstances-2 {
		t.Errorf("fetched=%d skipped=%d, want 2/%d", fetched, skipped, brokenInstances-2)
	}
}

func TestRetryPolicyDelayCeilingAndGrowth(t *testing.T) {
	policy := RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	maxRnd := func() float64 { return 0.999999 }
	prev := time.Duration(0)
	for attempt := 1; attempt < 12; attempt++ {
		d := policy.delay(attempt, maxRnd)
		if d > policy.MaxDelay {
			t.Fatalf("attempt %d: delay %v exceeds ceiling %v", attempt, d, policy.MaxDelay)
		}
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank below %v", attempt, d, prev)
		}
		prev = d
	}
	// Without jitter the schedule is plain doubling capped at the max.
	noRnd := func() float64 { return 0 }
	if d := policy.delay(1, noRnd); d != 100*time.Millisecond {
		t.Errorf("first delay = %v", d)
	}
	if d := policy.delay(2, noRnd); d != 200*time.Millisecond {
		t.Errorf("second delay = %v", d)
	}
	if d := policy.delay(9, noRnd); d != time.Second {
		t.Errorf("late delay = %v, want capped at 1s", d)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	srv, hits := flakyServer(1 << 30)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	p := New(WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond}))
	p.cfg.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel() // first backoff: the operator hits Ctrl-C
		return ctx.Err()
	}
	sweep, _ := p.Sweep(ctx, StaticEndpoints(
		Endpoint{Service: "svc", Instance: "i1", URL: srv.URL},
	))
	if sweep.Errors != 1 {
		t.Fatalf("errors = %d", sweep.Errors)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests after cancel, want 1", got)
	}
}
