package leakprof

import (
	"context"
	"math"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// DefaultThreshold is the per-instance blocked-goroutine concentration
// above which a location is marked suspicious. The paper arrived at 10K
// empirically by lowering from a larger value while precision stayed high.
const DefaultThreshold = 10000

// Ranking selects the fleet-wide impact statistic used to order findings.
type Ranking int

const (
	// RankRMS is the paper's choice: root mean square of per-instance
	// counts, highlighting single instances with large clusters.
	RankRMS Ranking = iota
	// RankMean orders by the fleet-wide mean count (ablation).
	RankMean
	// RankMax orders by the single largest instance count (ablation).
	RankMax
	// RankTotal orders by the fleet-wide total (ablation).
	RankTotal
)

// String names the ranking for reports and benchmarks.
func (r Ranking) String() string {
	switch r {
	case RankRMS:
		return "rms"
	case RankMean:
		return "mean"
	case RankMax:
		return "max"
	case RankTotal:
		return "total"
	}
	return "unknown"
}

// OpFilter inspects a blocked operation and reports whether it is known to
// be harmless (criterion 2 in Section V-A): e.g. a select arm listening on
// time.Tick or ctx.Done is transiently blocked by design. Filters are
// typically backed by the AST analyses in internal/astcheck.
type OpFilter func(op stack.BlockedOp) bool

// Analyzer implements the detection stage.
//
// Deprecated: Analyzer remains as a thin compatibility wrapper over the
// Pipeline engine; its three fields are the WithThreshold, WithFilters,
// and WithRanking pipeline options.
type Analyzer struct {
	// Threshold is the per-instance suspicious-concentration bound;
	// zero means DefaultThreshold.
	Threshold int
	// Filters mark operations as harmless; an operation dropped by any
	// filter is never reported regardless of concentration.
	Filters []OpFilter
	// Ranking picks the impact statistic; default RankRMS.
	Ranking Ranking
}

// Finding is one suspicious blocked operation aggregated fleet-wide.
type Finding struct {
	// Service is the owning service.
	Service string
	// Op is the operation family: "send", "receive", or "select".
	Op string
	// Location is the source file:line of the blocking operation.
	Location string
	// Function is the function containing the operation.
	Function string
	// NilChannel marks guaranteed partial deadlocks on nil channels.
	NilChannel bool

	// TotalBlocked is the number of blocked goroutines across the fleet.
	TotalBlocked int
	// Instances is the number of instances with at least one blocked
	// goroutine at this location.
	Instances int
	// SuspiciousInstances is the number of instances at or above the
	// threshold.
	SuspiciousInstances int
	// MaxCount and MaxInstance identify the representative profile: the
	// instance with the most blocked goroutines (its profile accompanies
	// the alert per Section V-A).
	MaxCount    int
	MaxInstance string
	// Impact is the ranking statistic (RMS by default) over per-instance
	// counts of all profiled instances of the service.
	Impact float64
}

// Key returns the dedup key used by the bug DB: one defect per
// service+operation+location.
func (f *Finding) Key() string {
	return f.Service + "\x00" + f.Op + "\x00" + f.Location
}

// NewAggregator returns an empty streaming Aggregator configured with
// this analyzer's threshold and filters. Feed it per-instance snapshots
// (from any goroutine) as they are collected, then call Findings: the
// streaming pipeline's equivalent of buffering a sweep and calling
// Analyze.
func (a *Analyzer) NewAggregator() *Aggregator {
	return NewAggregator(a.Threshold, a.Filters...)
}

// Analyze runs detection over one fully collected sweep. Snapshots from
// the same Service are aggregated together; the returned findings are
// ordered by descending impact.
//
// Deprecated: Analyze is a thin wrapper driving a sinkless Pipeline over
// a FromSnapshots source; collection paths that can stream should sweep
// a Pipeline directly and skip materialising the slice.
func (a *Analyzer) Analyze(snaps []*gprofile.Snapshot) []*Finding {
	p := New(WithThreshold(a.Threshold), WithRanking(a.Ranking), WithFilters(a.Filters...))
	sweep, _ := p.Sweep(context.Background(), FromSnapshots(snaps))
	return sweep.Findings
}

// impact computes the ranking statistic over per-instance counts. The
// denominator for RMS and mean is the number of *profiled* instances of
// the service (instances with zero blocked goroutines at this location
// contribute zeros), which is what makes RMS highlight concentrated
// clusters: a single instance with 16K blocked goroutines outranks 800
// instances with 20 each.
func impact(r Ranking, perInst map[string]int, serviceInstances int) float64 {
	if serviceInstances <= 0 {
		serviceInstances = len(perInst)
	}
	switch r {
	case RankMean:
		var sum float64
		for _, n := range perInst {
			sum += float64(n)
		}
		return sum / float64(serviceInstances)
	case RankMax:
		var max float64
		for _, n := range perInst {
			if float64(n) > max {
				max = float64(n)
			}
		}
		return max
	case RankTotal:
		var sum float64
		for _, n := range perInst {
			sum += float64(n)
		}
		return sum
	default: // RankRMS
		var sumsq float64
		for _, n := range perInst {
			sumsq += float64(n) * float64(n)
		}
		return math.Sqrt(sumsq / float64(serviceInstances))
	}
}
