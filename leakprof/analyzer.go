// Package leakprof analyzes goroutine profiles collected from production
// service instances to pinpoint goroutine leaks, reproducing the LEAKPROF
// tool from "Unveiling and Vanquishing Goroutine Leaks in Enterprise
// Microservices" (CGO 2024), Section V.
//
// The pipeline has three stages mirroring the paper:
//
//  1. Collection: fetch a goroutine profile (pprof debug=2) from every
//     instance of every service (Collector).
//  2. Detection: within each profile, group goroutines blocked on channel
//     operations by (operation, source location); locations where the
//     blocked count reaches a threshold (10K in the paper) are suspicious,
//     unless a lightweight static analysis proves the operation trivially
//     non-blocking (Analyzer).
//  3. Reporting: rank suspicious locations fleet-wide by the root mean
//     square of per-instance blocked counts, and alert the owners of the
//     top N (Reporter, package internal/report).
package leakprof

import (
	"math"
	"sort"

	"repro/internal/gprofile"
	"repro/internal/stack"
)

// DefaultThreshold is the per-instance blocked-goroutine concentration
// above which a location is marked suspicious. The paper arrived at 10K
// empirically by lowering from a larger value while precision stayed high.
const DefaultThreshold = 10000

// Ranking selects the fleet-wide impact statistic used to order findings.
type Ranking int

const (
	// RankRMS is the paper's choice: root mean square of per-instance
	// counts, highlighting single instances with large clusters.
	RankRMS Ranking = iota
	// RankMean orders by the fleet-wide mean count (ablation).
	RankMean
	// RankMax orders by the single largest instance count (ablation).
	RankMax
	// RankTotal orders by the fleet-wide total (ablation).
	RankTotal
)

// String names the ranking for reports and benchmarks.
func (r Ranking) String() string {
	switch r {
	case RankRMS:
		return "rms"
	case RankMean:
		return "mean"
	case RankMax:
		return "max"
	case RankTotal:
		return "total"
	}
	return "unknown"
}

// OpFilter inspects a blocked operation and reports whether it is known to
// be harmless (criterion 2 in Section V-A): e.g. a select arm listening on
// time.Tick or ctx.Done is transiently blocked by design. Filters are
// typically backed by the AST analyses in internal/astcheck.
type OpFilter func(op stack.BlockedOp) bool

// Analyzer implements the detection stage.
type Analyzer struct {
	// Threshold is the per-instance suspicious-concentration bound;
	// zero means DefaultThreshold.
	Threshold int
	// Filters mark operations as harmless; an operation dropped by any
	// filter is never reported regardless of concentration.
	Filters []OpFilter
	// Ranking picks the impact statistic; default RankRMS.
	Ranking Ranking
}

// Finding is one suspicious blocked operation aggregated fleet-wide.
type Finding struct {
	// Service is the owning service.
	Service string
	// Op is the operation family: "send", "receive", or "select".
	Op string
	// Location is the source file:line of the blocking operation.
	Location string
	// Function is the function containing the operation.
	Function string
	// NilChannel marks guaranteed partial deadlocks on nil channels.
	NilChannel bool

	// TotalBlocked is the number of blocked goroutines across the fleet.
	TotalBlocked int
	// Instances is the number of instances with at least one blocked
	// goroutine at this location.
	Instances int
	// SuspiciousInstances is the number of instances at or above the
	// threshold.
	SuspiciousInstances int
	// MaxCount and MaxInstance identify the representative profile: the
	// instance with the most blocked goroutines (its profile accompanies
	// the alert per Section V-A).
	MaxCount    int
	MaxInstance string
	// Impact is the ranking statistic (RMS by default) over per-instance
	// counts of all profiled instances of the service.
	Impact float64
}

// Key returns the dedup key used by the bug DB: one defect per
// service+operation+location.
func (f *Finding) Key() string {
	return f.Service + "\x00" + f.Op + "\x00" + f.Location
}

// Analyze runs detection over one collection sweep. Snapshots from the
// same Service are aggregated together; the returned findings are ordered
// by descending impact.
func (a *Analyzer) Analyze(snaps []*gprofile.Snapshot) []*Finding {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}

	// Per service: instance count and per-location per-instance counts.
	type agg struct {
		op        stack.BlockedOp
		service   string
		perInst   map[string]int
		suspicous int
	}
	serviceInstances := map[string]int{}
	groups := map[string]map[stack.BlockedOp]*agg{}

	for _, snap := range snaps {
		serviceInstances[snap.Service]++
		byLoc := a.countFiltered(snap)
		svcGroups := groups[snap.Service]
		if svcGroups == nil {
			svcGroups = map[stack.BlockedOp]*agg{}
			groups[snap.Service] = svcGroups
		}
		for op, n := range byLoc {
			g := svcGroups[op]
			if g == nil {
				g = &agg{op: op, service: snap.Service, perInst: map[string]int{}}
				svcGroups[op] = g
			}
			g.perInst[snap.Instance] += n
		}
	}

	var findings []*Finding
	for service, svcGroups := range groups {
		for _, g := range svcGroups {
			f := &Finding{
				Service:    service,
				Op:         g.op.Op,
				Location:   g.op.Location,
				Function:   g.op.Function,
				NilChannel: g.op.NilChannel,
			}
			for inst, n := range g.perInst {
				f.TotalBlocked += n
				f.Instances++
				if n >= threshold {
					f.SuspiciousInstances++
				}
				if n > f.MaxCount || (n == f.MaxCount && inst < f.MaxInstance) {
					f.MaxCount, f.MaxInstance = n, inst
				}
			}
			if f.SuspiciousInstances == 0 {
				continue // criterion 1: below threshold everywhere
			}
			f.Impact = impact(a.Ranking, g.perInst, serviceInstances[service])
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Impact != findings[j].Impact {
			return findings[i].Impact > findings[j].Impact
		}
		return findings[i].Key() < findings[j].Key()
	})
	return findings
}

func (a *Analyzer) filtered(op stack.BlockedOp) bool {
	for _, f := range a.Filters {
		if f(op) {
			return true
		}
	}
	return false
}

// countFiltered groups one snapshot's channel-blocked goroutines by
// (operation, location), applying criterion-2 filters per goroutine —
// before aggregation, so filters can see wait durations — and folding
// wait times away for the grouping key. Pre-aggregated counts (the
// large-scale simulator fast path) pass through the same filters.
func (a *Analyzer) countFiltered(snap *gprofile.Snapshot) map[stack.BlockedOp]int {
	counts := make(map[stack.BlockedOp]int, len(snap.PreAggregated))
	for op, n := range snap.PreAggregated {
		if a.filtered(op) {
			continue
		}
		op.WaitTime = 0
		counts[op] += n
	}
	for _, g := range snap.Goroutines {
		op, ok := g.BlockedChannelOp()
		if !ok || a.filtered(op) {
			continue
		}
		op.WaitTime = 0
		counts[op]++
	}
	return counts
}

// impact computes the ranking statistic over per-instance counts. The
// denominator for RMS and mean is the number of *profiled* instances of
// the service (instances with zero blocked goroutines at this location
// contribute zeros), which is what makes RMS highlight concentrated
// clusters: a single instance with 16K blocked goroutines outranks 800
// instances with 20 each.
func impact(r Ranking, perInst map[string]int, serviceInstances int) float64 {
	if serviceInstances <= 0 {
		serviceInstances = len(perInst)
	}
	switch r {
	case RankMean:
		var sum float64
		for _, n := range perInst {
			sum += float64(n)
		}
		return sum / float64(serviceInstances)
	case RankMax:
		var max float64
		for _, n := range perInst {
			if float64(n) > max {
				max = float64(n)
			}
		}
		return max
	case RankTotal:
		var sum float64
		for _, n := range perInst {
			sum += float64(n)
		}
		return sum
	default: // RankRMS
		var sumsq float64
		for _, n := range perInst {
			sumsq += float64(n) * float64(n)
		}
		return math.Sqrt(sumsq / float64(serviceInstances))
	}
}
