package leakprof

import (
	"bytes"
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gprofile"
)

// Distributed sweeps. One process sweeping a 10K-instance fleet is
// bounded by its own fetch parallelism and NIC; the distributed plane
// splits the fleet across shard workers that each sweep their endpoint
// partition and ship a ShardReport — folded moments, not profiles — to a
// coordinator that merges them and runs the normal sink fan-out and
// state journal. Partitioning is by service (ShardOfService), which is
// what makes the merge exact: every instance of a service lands in one
// shard, so per-group statistics never split across reports, per-shard
// error-budget enforcement is globally correct, and the merged moments
// are byte-for-byte the single-process fold (see TestTopologyParity in
// internal/fleet, and TestMergeMomentsMatchesSingleFold here).

// ShardOfService maps a service onto one of n shards by FNV-1a hash.
// Sharding by service — never by instance — keeps each aggregation
// group, and each service's error budget, entirely within one shard.
func ShardOfService(service string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(service); i++ {
		h ^= uint32(service[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// PartitionEndpoints splits a fleet enumeration into the per-shard
// endpoint partitions, preserving enumeration order within each shard.
func PartitionEndpoints(eps []Endpoint, shards int) [][]Endpoint {
	if shards < 1 {
		shards = 1
	}
	parts := make([][]Endpoint, shards)
	for _, ep := range eps {
		i := ShardOfService(ep.Service, shards)
		parts[i] = append(parts[i], ep)
	}
	return parts
}

// ShardSweep runs one shard worker's collection pass: the source's
// partition streams through a fresh aggregator exactly as Pipeline.Sweep
// would fold it — same threshold, filters, retry policy, parallelism —
// but instead of findings, sinks, and journal frames the result is the
// shard's mergeable state, a ShardReport for a coordinator. prevFailures
// seeds the shard's error budget; a coordinator passes the globally
// journaled counts from SweepEnv.PrevFailures so a service that burned
// its budget yesterday is probed gently today regardless of which worker
// owns it. The returned report is non-nil even on error (partial
// collection still merges; the error is also recorded in report.Err).
func (p *Pipeline) ShardSweep(ctx context.Context, src Source, shard string, prevFailures map[string]int) (*ShardReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	agg := NewAggregator(p.cfg.Threshold, p.cfg.Filters...)
	rep := &ShardReport{Shard: shard, At: p.cfg.now(), Seq: p.shardSeq.Add(1)}
	var mu sync.Mutex
	fail := func(service, instance string, err error) {
		mu.Lock()
		rep.Errors++
		if !errors.Is(err, gprofile.ErrSalvaged) {
			if rep.FailedByService == nil {
				rep.FailedByService = make(map[string]int)
			}
			rep.FailedByService[service]++
		}
		if len(rep.Failures) < maxSweepFailures {
			rep.Failures = append(rep.Failures, SweepFailure{Service: service, Instance: instance, Err: err})
		}
		mu.Unlock()
	}
	env := &SweepEnv{
		Config:  &p.cfg,
		Emit:    func(snap *gprofile.Snapshot) { agg.Add(snap) },
		Fail:    fail,
		SetTime: func(at time.Time) { rep.At = at },
		// Nested topologies (a shard fronting its own sub-shards) fold
		// sub-reports the same way a coordinator does.
		MergeReport: func(sub *ShardReport) {
			agg.MergeMoments(sub.Services, sub.Profiles, sub.Moments)
			mu.Lock()
			rep.Errors += sub.Errors
			for svc, n := range sub.FailedByService {
				if rep.FailedByService == nil {
					rep.FailedByService = make(map[string]int)
				}
				rep.FailedByService[svc] += n
			}
			for _, f := range sub.Failures {
				if len(rep.Failures) >= maxSweepFailures {
					break
				}
				rep.Failures = append(rep.Failures, f)
			}
			mu.Unlock()
		},
		prevFailures: prevFailures,
	}
	err := src.Sweep(ctx, env)
	if err != nil {
		rep.Err = err.Error()
	}
	rep.Profiles = agg.Profiles()
	rep.Services = agg.ServiceProfiles()
	rep.Moments = agg.Moments()
	return rep, err
}

// ShardFetch is one shard's report retrieval as the coordinator sees it:
// a name for failure attribution and a fetch that produces the report —
// from a file a worker handed off, an inbox a worker POSTed to, or an
// in-process worker pipeline.
type ShardFetch struct {
	// Name identifies the shard in failure accounting: a lost shard
	// shows up as one failed instance of "service" Name, so error
	// budgets and operators see the loss without a new mechanism.
	Name string
	// Fetch retrieves the shard's report. The SweepEnv carries the
	// coordinator's config and journaled failure history
	// (SweepEnv.PrevFailures) for fetches that drive in-process workers.
	Fetch func(ctx context.Context, env *SweepEnv) (*ShardReport, error)
}

// MergedReports returns the coordinator's Source: one sweep fetches
// every shard's report concurrently and folds each into the sweep as it
// arrives — moments into the aggregator, failure tallies into the global
// error accounting — so the downstream pipeline (findings, ReportSink,
// TrendSink, StateStore) runs unchanged on the merged sweep. A shard
// whose fetch fails costs exactly that shard's contribution: the sweep
// completes, with the loss recorded as a failed instance named after the
// shard. A report that arrives carrying a shard-level sweep error merges
// its partial moments and surfaces the error the same way.
func MergedReports(shards ...ShardFetch) Source {
	return mergedSource{shards: shards}
}

// MergedReportsWithin is MergedReports with a straggler deadline: the
// merge closes after wait, and a shard that has not reported by then is
// written off as one failed instance (named after the shard) while the
// reports that did arrive merge normally. Without it a single hung
// worker holds the coordinator's sweep open until the sweep context
// itself expires — the partial merge trades that shard's contribution
// for a bounded sweep. A non-positive wait means no deadline.
func MergedReportsWithin(wait time.Duration, shards ...ShardFetch) Source {
	return mergedSource{shards: shards, wait: wait}
}

type mergedSource struct {
	shards []ShardFetch
	wait   time.Duration
}

func (mergedSource) Name() string { return "shards" }

func (s mergedSource) Sweep(ctx context.Context, env *SweepEnv) error {
	fctx := ctx
	if s.wait > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, s.wait)
		defer cancel()
	}
	var wg sync.WaitGroup
	for _, sf := range s.shards {
		wg.Add(1)
		go func(sf ShardFetch) {
			defer wg.Done()
			rep, err := sf.Fetch(fctx, env)
			if err != nil {
				env.Fail(sf.Name, sf.Name, fmt.Errorf("leakprof: shard report lost: %w", err))
				return
			}
			if rep.Err != "" {
				env.Fail(rep.Shard, rep.Shard, fmt.Errorf("leakprof: shard sweep: %s", rep.Err))
			}
			env.MergeReport(rep)
		}(sf)
	}
	wg.Wait()
	// The straggler deadline expiring is a per-shard loss (already
	// recorded above), not a sweep failure; only the caller's context
	// fails the sweep.
	return ctx.Err()
}

// WriteShardReportFile atomically writes one framed report — the file
// handoff transport for workers and coordinator sharing a filesystem.
func WriteShardReportFile(path string, rep *ShardReport) error {
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, rep); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("leakprof: writing shard report: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("leakprof: writing shard report: %w", err)
	}
	return nil
}

// ReadShardReportFile reads one framed report from a handoff file.
func ReadShardReportFile(path string) (*ShardReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("leakprof: reading shard report: %w", err)
	}
	defer f.Close()
	return ReadShardReport(f)
}

// ShardReportFromFile is the ShardFetch over a handoff file, named after
// the file when name is empty.
func ShardReportFromFile(name, path string) ShardFetch {
	if name == "" {
		name = filepath.Base(path)
	}
	return ShardFetch{
		Name: name,
		Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
			return ReadShardReportFile(path)
		},
	}
}

// PostShardReport ships one report to a coordinator's ShardInbox over
// HTTP — the push transport a worker uses when it shares no filesystem
// with the coordinator. A nil client uses http.DefaultClient.
func PostShardReport(ctx context.Context, client *http.Client, url string, rep *ShardReport) error {
	return PostShardReportAuth(ctx, client, url, "", rep)
}

// PostShardReportAuth is PostShardReport carrying a shared-secret token
// in X-Leakprof-Token, for inboxes configured with ShardInbox.Token.
// An empty token sends no header.
func PostShardReportAuth(ctx context.Context, client *http.Client, url, token string, rep *ShardReport) error {
	var buf bytes.Buffer
	if err := WriteShardReport(&buf, rep); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &buf)
	if err != nil {
		return fmt.Errorf("leakprof: posting shard report: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if token != "" {
		req.Header.Set("X-Leakprof-Token", token)
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("leakprof: posting shard report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("leakprof: posting shard report: coordinator returned %s", resp.Status)
	}
	return nil
}

// ShardInbox is the coordinator's HTTP receiver for pushed reports: an
// http.Handler accepting POSTed shard-report frames. Each accepted
// report is buffered (up to the construction capacity; workers beyond it
// block in their POST, a natural backpressure) until a Fetch consumes
// it. Reports are consumed in arrival order, not shard order — merging
// is commutative, so order does not matter; the fetch name only labels a
// timeout or cancellation.
//
// The inbox deduplicates on (Shard, Seq): a worker whose POST succeeded
// but whose response was lost will retry, and without dedup the retry
// would double-count the shard's moments. A sequenced report (Seq != 0,
// as ShardSweep assigns) at or below the highest sequence already
// accepted from its shard is dropped with 409 Conflict — the worker
// learns its report landed and stops retrying. Unsequenced or unnamed
// reports (v1 frames, hand-built reports) are never deduplicated.
type ShardInbox struct {
	// Token, when non-empty, is the shared secret every POST must carry
	// in X-Leakprof-Token (constant-time compared; mismatches are 401s
	// counted by AuthRejected). Set it before the inbox starts serving —
	// a shard report folds straight into the coordinator's sweep, so an
	// unauthenticated inbox lets anyone on the network inject moments.
	Token string

	ch chan *ShardReport

	authRejects atomic.Uint64

	mu      sync.Mutex
	lastSeq map[string]uint64
}

// NewShardInbox returns an inbox buffering up to capacity reports.
func NewShardInbox(capacity int) *ShardInbox {
	if capacity < 1 {
		capacity = 1
	}
	return &ShardInbox{
		ch:      make(chan *ShardReport, capacity),
		lastSeq: make(map[string]uint64),
	}
}

// ServeHTTP accepts one POSTed report frame, dropping a duplicate
// (shard, sequence) delivery with 409.
func (in *ShardInbox) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a shard report frame", http.StatusMethodNotAllowed)
		return
	}
	if in.Token != "" &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get("X-Leakprof-Token")), []byte(in.Token)) != 1 {
		in.authRejects.Add(1)
		http.Error(w, "missing or invalid X-Leakprof-Token", http.StatusUnauthorized)
		return
	}
	rep, err := ReadShardReport(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rep.Shard != "" && rep.Seq != 0 {
		in.mu.Lock()
		last, seen := in.lastSeq[rep.Shard]
		dup := seen && rep.Seq <= last
		if !dup {
			in.lastSeq[rep.Shard] = rep.Seq
		}
		in.mu.Unlock()
		if dup {
			http.Error(w, fmt.Sprintf("leakprof: duplicate report: shard %q sweep %d already accepted", rep.Shard, rep.Seq), http.StatusConflict)
			return
		}
	}
	in.ch <- rep
	w.WriteHeader(http.StatusNoContent)
}

// AuthRejected counts POSTs refused with 401 for a missing or wrong
// token since the inbox was built.
func (in *ShardInbox) AuthRejected() uint64 { return in.authRejects.Load() }

// Fetch returns a ShardFetch consuming the next report POSTed to the
// inbox (or failing when the sweep's context expires — the crash window:
// a worker that never reports costs its shard's contribution and one
// attributed failure, never the sweep). A coordinator expecting n shards
// passes n of these to MergedReports.
func (in *ShardInbox) Fetch(name string) ShardFetch {
	return ShardFetch{
		Name: name,
		Fetch: func(ctx context.Context, env *SweepEnv) (*ShardReport, error) {
			select {
			case rep := <-in.ch:
				return rep, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}
