package leakprof

import (
	"testing"
	"time"
)

func observeSeries(t *testing.T, tr *TrendTracker, key string, counts []int) {
	t.Helper()
	at := time.Unix(0, 0)
	for _, c := range counts {
		tr.Observe(at, []*Finding{{Service: "s", Op: "send", Location: key, TotalBlocked: c}})
		at = at.Add(24 * time.Hour)
	}
}

func keyFor(loc string) string {
	return (&Finding{Service: "s", Op: "send", Location: loc}).Key()
}

func TestTrendVerdicts(t *testing.T) {
	tr := &TrendTracker{}
	observeSeries(t, tr, "/leak.go:1", []int{100, 250, 600, 1400})
	observeSeries(t, tr, "/busy.go:2", []int{900, 300, 1100, 200})
	observeSeries(t, tr, "/pool.go:3", []int{500, 520, 490, 505})
	observeSeries(t, tr, "/new.go:4", []int{100})

	cases := map[string]TrendVerdict{
		"/leak.go:1": TrendGrowing,
		"/busy.go:2": TrendOscillating,
		"/pool.go:3": TrendStable,
		"/new.go:4":  TrendUnknown,
	}
	for loc, want := range cases {
		if got := tr.Verdict(keyFor(loc)); got != want {
			t.Errorf("%s: verdict = %v, want %v", loc, got, want)
		}
	}
	growing := tr.Growing()
	if len(growing) != 1 || growing[0] != keyFor("/leak.go:1") {
		t.Errorf("growing = %v", growing)
	}
}

func TestTrendVerdictStrings(t *testing.T) {
	for v, want := range map[TrendVerdict]string{
		TrendUnknown: "unknown", TrendGrowing: "growing",
		TrendOscillating: "oscillating", TrendStable: "stable",
	} {
		if got := v.String(); got != want {
			t.Errorf("verdict %d = %q, want %q", v, got, want)
		}
	}
}

// The fleet-driven trend test lives in integration_test.go at the module
// root (importing internal/fleet here would create an import cycle in
// the test binary).

// TestTrendTakeNew pins the delta-export contract: TakeNew returns
// exactly the observations recorded since the last TakeNew, restores are
// never pending, and the full history stays exportable.
func TestTrendTakeNew(t *testing.T) {
	tr := &TrendTracker{}
	if got := tr.TakeNew(); got != nil {
		t.Fatalf("fresh tracker TakeNew = %+v, want nil", got)
	}
	observeSeries(t, tr, "/a.go:1", []int{100, 200})
	delta := tr.TakeNew()
	if got := len(delta[keyFor("/a.go:1")]); got != 2 {
		t.Fatalf("first delta = %d observations, want 2", got)
	}
	if got := tr.TakeNew(); got != nil {
		t.Fatalf("second TakeNew = %+v, want nil (drained)", got)
	}

	tr.Observe(time.Unix(0, 0).Add(48*time.Hour), []*Finding{{Service: "s", Op: "send", Location: "/a.go:1", TotalBlocked: 400}})
	delta = tr.TakeNew()
	if got := delta[keyFor("/a.go:1")]; len(got) != 1 || got[0].Total != 400 {
		t.Fatalf("incremental delta = %+v, want only the new observation", got)
	}
	// Full history is unaffected by the delta drain.
	if got := len(tr.Export()[keyFor("/a.go:1")]); got != 3 {
		t.Fatalf("history after TakeNew = %d observations, want 3", got)
	}

	// Restored history is not a delta: it came from the journal.
	tr2 := &TrendTracker{}
	tr2.Restore(tr.Export())
	if got := tr2.TakeNew(); got != nil {
		t.Fatalf("TakeNew after Restore = %+v, want nil", got)
	}
}

// TestTrendRetention pins the retention window: appends, restores, and
// exports all hold at most Retention observations per key, keeping the
// most recent ones, and verdicts run on the retained window.
func TestTrendRetention(t *testing.T) {
	tr := &TrendTracker{Retention: 3, MinObservations: 2}
	observeSeries(t, tr, "/leak.go:1", []int{10, 20, 40, 80, 160, 320})
	hist := tr.Export()[keyFor("/leak.go:1")]
	if len(hist) != 3 {
		t.Fatalf("retained history = %d observations, want 3", len(hist))
	}
	if hist[0].Total != 80 || hist[2].Total != 320 {
		t.Fatalf("retained window = %+v, want the most recent [80 160 320]", hist)
	}
	// Verdicts still work on the window.
	if v := tr.Verdict(keyFor("/leak.go:1")); v != TrendGrowing {
		t.Errorf("verdict on retained window = %v, want growing", v)
	}

	// Restore trims long histories too.
	long := map[string][]TrendObservation{"k": make([]TrendObservation, 10)}
	for i := range long["k"] {
		long["k"][i] = TrendObservation{At: time.Unix(int64(i), 0), Total: i}
	}
	tr2 := &TrendTracker{Retention: 4}
	tr2.Restore(long)
	if got := len(tr2.Export()["k"]); got != 4 {
		t.Fatalf("restored history = %d observations, want 4", got)
	}
	if first := tr2.Export()["k"][0].Total; first != 6 {
		t.Fatalf("restored window starts at total %d, want 6 (most recent 4)", first)
	}
}
