package leakprof

import (
	"testing"
	"time"
)

func observeSeries(t *testing.T, tr *TrendTracker, key string, counts []int) {
	t.Helper()
	at := time.Unix(0, 0)
	for _, c := range counts {
		tr.Observe(at, []*Finding{{Service: "s", Op: "send", Location: key, TotalBlocked: c}})
		at = at.Add(24 * time.Hour)
	}
}

func keyFor(loc string) string {
	return (&Finding{Service: "s", Op: "send", Location: loc}).Key()
}

func TestTrendVerdicts(t *testing.T) {
	tr := &TrendTracker{}
	observeSeries(t, tr, "/leak.go:1", []int{100, 250, 600, 1400})
	observeSeries(t, tr, "/busy.go:2", []int{900, 300, 1100, 200})
	observeSeries(t, tr, "/pool.go:3", []int{500, 520, 490, 505})
	observeSeries(t, tr, "/new.go:4", []int{100})

	cases := map[string]TrendVerdict{
		"/leak.go:1": TrendGrowing,
		"/busy.go:2": TrendOscillating,
		"/pool.go:3": TrendStable,
		"/new.go:4":  TrendUnknown,
	}
	for loc, want := range cases {
		if got := tr.Verdict(keyFor(loc)); got != want {
			t.Errorf("%s: verdict = %v, want %v", loc, got, want)
		}
	}
	growing := tr.Growing()
	if len(growing) != 1 || growing[0] != keyFor("/leak.go:1") {
		t.Errorf("growing = %v", growing)
	}
}

func TestTrendVerdictStrings(t *testing.T) {
	for v, want := range map[TrendVerdict]string{
		TrendUnknown: "unknown", TrendGrowing: "growing",
		TrendOscillating: "oscillating", TrendStable: "stable",
	} {
		if got := v.String(); got != want {
			t.Errorf("verdict %d = %q, want %q", v, got, want)
		}
	}
}

// The fleet-driven trend test lives in integration_test.go at the module
// root (importing internal/fleet here would create an import cycle in
// the test binary).
