package leakprof

import (
	"context"
	"time"

	"repro/internal/report"
)

// Scheduler drives the periodic sweep the paper runs daily.
//
// Deprecated: Scheduler remains as a thin compatibility wrapper over the
// Pipeline engine. New code should build a Pipeline with ReportSink (and
// TrendSink) and call Pipeline.Run over an Endpoints source.
type Scheduler struct {
	// Collector fetches profiles; required.
	Collector *Collector
	// Analyzer detects suspicious operations; required.
	Analyzer *Analyzer
	// Reporter files and routes alerts; required.
	Reporter *Reporter
	// Endpoints enumerates the fleet at each sweep; required. It is a
	// function because deployments churn between sweeps.
	Endpoints func() []Endpoint
	// Interval between sweeps; default 24h.
	Interval time.Duration
	// Trend optionally classifies cross-sweep behaviour; alerts for
	// locations it calls oscillating are annotated, not suppressed
	// (precision work stays with the human, as in the paper).
	Trend *TrendTracker
	// OnSweep observes each sweep's outcome (metrics, logging).
	OnSweep func(SweepStats)
	// now overrides the clock in tests.
	now func() time.Time
}

// SweepStats summarises one sweep.
type SweepStats struct {
	At        time.Time
	Endpoints int
	Profiles  int
	Errors    int
	Findings  int
	NewAlerts []*report.Alert
}

// pipeline assembles the equivalent Pipeline: the scheduler's collector,
// analyzer, reporter, and trend tracker become engine options and sinks.
func (s *Scheduler) pipeline() (*Pipeline, *ReportSink) {
	clock := s.now
	if clock == nil {
		clock = s.Collector.Now
	}
	p := New(
		WithHTTPClient(s.Collector.Client),
		WithTimeout(s.Collector.Timeout),
		WithParallelism(s.Collector.Parallelism),
		WithMaxProfileBytes(s.Collector.MaxProfileBytes),
		WithRetry(s.Collector.Retry),
		WithErrorBudget(s.Collector.ErrorBudget),
		WithThreshold(s.Analyzer.Threshold),
		WithRanking(s.Analyzer.Ranking),
		WithFilters(s.Analyzer.Filters...),
		WithInterval(s.Interval),
		WithClock(clock),
	)
	p.cfg.Intern = s.Collector.Intern
	rs := &ReportSink{Reporter: s.Reporter}
	if s.Trend != nil {
		p.AddSinks(&TrendSink{Tracker: s.Trend})
	}
	p.AddSinks(rs)
	return p, rs
}

// stats converts a pipeline sweep into the legacy summary.
func (s *Scheduler) stats(sweep *Sweep, rs *ReportSink) SweepStats {
	return SweepStats{
		At:        sweep.At,
		Endpoints: sweep.Instances(),
		Profiles:  sweep.Profiles,
		Errors:    sweep.Errors,
		Findings:  len(sweep.Findings),
		NewAlerts: rs.LastAlerts(),
	}
}

// Run sweeps until the context is cancelled. The first sweep happens
// immediately; subsequent sweeps follow the interval.
//
// Deprecated: use Pipeline.Run.
func (s *Scheduler) Run(ctx context.Context) error {
	p, rs := s.pipeline()
	p.cfg.OnSweep = func(sweep *Sweep) {
		if s.OnSweep != nil {
			s.OnSweep(s.stats(sweep, rs))
		}
	}
	return p.Run(ctx, Endpoints(s.Endpoints))
}

// Sweep performs one collection/analysis/reporting pass. Profiles stream
// from the fetch workers straight into a sharded aggregator; the sweep
// never holds per-instance snapshots, so its memory footprint is set by
// the number of distinct blocked locations, not the fleet size.
//
// Deprecated: use Pipeline.Sweep.
func (s *Scheduler) Sweep(ctx context.Context) SweepStats {
	p, rs := s.pipeline()
	sweep, _ := p.Sweep(ctx, Endpoints(s.Endpoints))
	stats := s.stats(sweep, rs)
	if s.OnSweep != nil {
		s.OnSweep(stats)
	}
	return stats
}
