package leakprof

import (
	"context"
	"time"

	"repro/internal/report"
)

// Scheduler drives the periodic sweep the paper runs daily: collect a
// profile from every instance, analyze, and report, forever. It is the
// operational shell around Collector/Analyzer/Reporter.
type Scheduler struct {
	// Collector fetches profiles; required.
	Collector *Collector
	// Analyzer detects suspicious operations; required.
	Analyzer *Analyzer
	// Reporter files and routes alerts; required.
	Reporter *Reporter
	// Endpoints enumerates the fleet at each sweep; required. It is a
	// function because deployments churn between sweeps.
	Endpoints func() []Endpoint
	// Interval between sweeps; default 24h.
	Interval time.Duration
	// Trend optionally classifies cross-sweep behaviour; alerts for
	// locations it calls oscillating are annotated, not suppressed
	// (precision work stays with the human, as in the paper).
	Trend *TrendTracker
	// OnSweep observes each sweep's outcome (metrics, logging).
	OnSweep func(SweepStats)
	// now overrides the clock in tests.
	now func() time.Time
}

// SweepStats summarises one sweep.
type SweepStats struct {
	At        time.Time
	Endpoints int
	Profiles  int
	Errors    int
	Findings  int
	NewAlerts []*report.Alert
}

// Run sweeps until the context is cancelled. The first sweep happens
// immediately; subsequent sweeps follow the interval.
func (s *Scheduler) Run(ctx context.Context) error {
	interval := s.Interval
	if interval <= 0 {
		interval = 24 * time.Hour
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		s.Sweep(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Sweep performs one collection/analysis/reporting pass. Profiles stream
// from the fetch workers straight into a sharded aggregator; the sweep
// never holds per-instance snapshots, so its memory footprint is set by
// the number of distinct blocked locations, not the fleet size.
func (s *Scheduler) Sweep(ctx context.Context) SweepStats {
	now := s.now
	if now == nil {
		now = time.Now
	}
	stats := SweepStats{At: now()}
	endpoints := s.Endpoints()
	stats.Endpoints = len(endpoints)

	agg := s.Analyzer.NewAggregator()
	for _, err := range s.Collector.CollectInto(ctx, endpoints, agg) {
		if err != nil {
			stats.Errors++
		}
	}
	stats.Profiles = agg.Profiles()

	findings := agg.Findings(s.Analyzer.Ranking)
	stats.Findings = len(findings)
	if s.Trend != nil {
		s.Trend.Observe(stats.At, findings)
	}
	stats.NewAlerts = s.Reporter.Report(findings)
	if s.OnSweep != nil {
		s.OnSweep(stats)
	}
	return stats
}
