package leakprof

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// leakFleet serves a two-service fleet over HTTP: "pay" leaks 300
// senders per instance at one location, "idle" is healthy.
func leakFleet(t *testing.T) ([]Endpoint, func()) {
	t.Helper()
	leaky := make([]*stack.Goroutine, 300)
	for i := range leaky {
		leaky[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "pay.leak", File: "/pay/l.go", Line: 5}},
		}
	}
	idle := []*stack.Goroutine{{
		ID: 1, State: "IO wait",
		Frames: []stack.Frame{{Function: "idle.read", File: "/idle/r.go", Line: 9}},
	}}
	s1 := profileServer(leaky)
	s2 := profileServer(leaky)
	s3 := profileServer(idle)
	eps := []Endpoint{
		{Service: "pay", Instance: "i1", URL: s1.URL + "?debug=2"},
		{Service: "pay", Instance: "i2", URL: s2.URL + "?debug=2"},
		{Service: "idle", Instance: "i1", URL: s3.URL + "?debug=2"},
	}
	return eps, func() { s1.Close(); s2.Close(); s3.Close() }
}

// TestPipelineUnifiesSources drives the same engine over three origins —
// live HTTP endpoints, the write-through archive that sweep recorded,
// and raw dump bodies — with two concurrent sinks attached, and requires
// identical findings from all of them.
func TestPipelineUnifiesSources(t *testing.T) {
	eps, shutdown := leakFleet(t)
	defer shutdown()

	dir := t.TempDir()
	archiveSink, err := NewArchiveSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	trend := &TrendTracker{}
	reportSink := &ReportSink{Reporter: &Reporter{DB: report.NewDB(), TopN: 5}}
	pipe := New(
		WithThreshold(100),
		WithParallelism(4),
		WithSharedIntern(0),
		WithClock(func() time.Time { return time.Unix(1000, 0) }),
	).AddSinks(reportSink, &TrendSink{Tracker: trend}, archiveSink)

	httpSweep, err := pipe.Sweep(context.Background(), StaticEndpoints(eps...))
	if err != nil {
		t.Fatal(err)
	}
	if httpSweep.Source != "endpoints" || httpSweep.Profiles != 3 || httpSweep.Errors != 0 {
		t.Fatalf("http sweep = %+v", httpSweep)
	}
	if len(httpSweep.Findings) != 1 {
		t.Fatalf("findings = %+v", httpSweep.Findings)
	}
	f := httpSweep.Findings[0]
	if f.Service != "pay" || f.TotalBlocked != 600 || f.Instances != 2 {
		t.Errorf("finding = %+v", f)
	}
	// Both sinks observed the sweep concurrently with collection.
	if alerts := reportSink.LastAlerts(); len(alerts) != 1 {
		t.Errorf("report sink alerts = %d", len(alerts))
	}
	if archiveSink.Written() != 3 {
		t.Errorf("archive sink wrote %d snapshots", archiveSink.Written())
	}

	// Origin 2: the archive the first sweep wrote through, replayed by
	// a fresh pipeline with the same detection options.
	replayPipe := New(WithThreshold(100))
	archSweep, err := replayPipe.Sweep(context.Background(), Archive(dir))
	if err != nil {
		t.Fatal(err)
	}
	if archSweep.Source != "archive" || archSweep.Profiles != 3 {
		t.Fatalf("archive sweep = %+v", archSweep)
	}
	assertSameFindings(t, "archive", httpSweep.Findings, archSweep.Findings)

	// Origin 3: raw dump bodies through the Dumps source.
	var dumps []Dump
	for _, snap := range []struct {
		service, instance string
		blocked           int
	}{{"pay", "i1", 300}, {"pay", "i2", 300}, {"idle", "i1", 0}} {
		var b strings.Builder
		err := gprofile.WriteSnapshot(&b, &gprofile.Snapshot{
			Service: snap.service, Instance: snap.instance,
			PreAggregated: preAgg(snap.blocked),
		})
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, Dump{Service: snap.service, Instance: snap.instance, Body: strings.NewReader(b.String())})
	}
	dumpSweep, err := New(WithThreshold(100)).Sweep(context.Background(), Dumps(dumps...))
	if err != nil {
		t.Fatal(err)
	}
	if dumpSweep.Source != "dumps" || dumpSweep.Profiles != 3 {
		t.Fatalf("dump sweep = %+v", dumpSweep)
	}
	assertSameFindings(t, "dumps", httpSweep.Findings, dumpSweep.Findings)

	// The trend sink received the aggregator's moments, keyed like
	// findings.
	if v := trend.Verdict(f.Key()); v != TrendUnknown {
		t.Errorf("one-observation verdict = %v", v)
	}
	if len(trend.history[f.Key()]) != 1 {
		t.Errorf("trend history = %+v", trend.history)
	}
}

func preAgg(blocked int) map[stack.BlockedOp]int {
	if blocked == 0 {
		return nil
	}
	return map[stack.BlockedOp]int{
		{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}: blocked,
	}
}

// assertSameFindings compares the detection-relevant fields (the
// representative instance may differ between origins with equal max
// counts).
func assertSameFindings(t *testing.T, origin string, want, got []*Finding) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d findings, want %d", origin, len(got), len(want))
	}
	for i := range want {
		w, g := *want[i], *got[i]
		w.MaxInstance, g.MaxInstance = "", ""
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s finding %d = %+v, want %+v", origin, i, g, w)
		}
	}
}

func TestPipelineRunHonoursInterval(t *testing.T) {
	eps, shutdown := leakFleet(t)
	defer shutdown()

	sweeps := 0
	pipe := New(
		WithThreshold(100),
		WithInterval(5*time.Millisecond),
		WithOnSweep(func(*Sweep) { sweeps++ }),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if err := pipe.Run(ctx, StaticEndpoints(eps...)); err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}
	if sweeps < 2 {
		t.Errorf("Run swept %d times, want >= 2", sweeps)
	}
}

func TestAggregatorMoments(t *testing.T) {
	agg := NewAggregator(100)
	op := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}
	for i, n := range []int{200, 100, 0} { // third instance: no blocked ops
		snap := &gprofile.Snapshot{Service: "pay", Instance: string(rune('a' + i))}
		if n > 0 {
			snap.PreAggregated = map[stack.BlockedOp]int{op: n}
		}
		agg.Add(snap)
	}
	moments := agg.Moments()
	if len(moments) != 1 {
		t.Fatalf("moments = %+v", moments)
	}
	m := moments[0]
	if m.Total != 300 || m.Instances != 2 || m.ServiceProfiles != 3 || m.Suspicious != 2 {
		t.Errorf("moment = %+v", m)
	}
	if m.SumSquares != 200*200+100*100 {
		t.Errorf("sum of squares = %v", m.SumSquares)
	}
	if m.MaxCount != 200 {
		t.Errorf("max = %d@%s", m.MaxCount, m.MaxInstance)
	}
	if want := 100.0; m.Mean() != want {
		t.Errorf("mean = %v, want %v", m.Mean(), want)
	}
	// Variance across {200, 100, 0} is 2e4/3*... E[x^2]-mean^2 =
	// 50000/3*... compute: (40000+10000)/3 - 10000 = 6666.67.
	if v := m.Variance(); v < 6666 || v > 6667 {
		t.Errorf("variance = %v", v)
	}
	if m.Key() != (&Finding{Service: "pay", Op: "send", Location: "/pay/l.go:5"}).Key() {
		t.Errorf("moment key %q diverges from finding key", m.Key())
	}
}

// TestTrendVarianceAwareBand: the same relative step reads as growth for
// a uniform fleet but as noise for a fleet whose instances wildly
// disagree.
func TestTrendVarianceAwareBand(t *testing.T) {
	uniform := &TrendTracker{}
	noisy := &TrendTracker{}
	at := time.Unix(0, 0)
	for i, total := range []int{1000, 1300, 1690} { // +30% per sweep
		// Uniform: 10 instances at total/10 each.
		perInst := float64(total) / 10
		uniform.ObserveMoments(at, []Moment{{
			Service: "s", Op: stack.BlockedOp{Op: "send", Location: "l"},
			Total: total, Instances: 10, ServiceProfiles: 10,
			SumSquares: 10 * perInst * perInst,
		}})
		// Noisy: one instance carries everything, nine are idle — huge
		// cross-instance dispersion, so a 30% swing is within noise.
		noisy.ObserveMoments(at, []Moment{{
			Service: "s", Op: stack.BlockedOp{Op: "send", Location: "l"},
			Total: total, Instances: 1, ServiceProfiles: 10,
			SumSquares: float64(total) * float64(total),
		}})
		at = at.Add(24 * time.Hour)
		_ = i
	}
	key := Moment{Service: "s", Op: stack.BlockedOp{Op: "send", Location: "l"}}.Key()
	if v := uniform.Verdict(key); v != TrendGrowing {
		t.Errorf("uniform fleet verdict = %v, want growing", v)
	}
	if v := noisy.Verdict(key); v != TrendStable {
		t.Errorf("noisy fleet verdict = %v, want stable (within sampling noise)", v)
	}
}

// TestDeprecatedWrappersMatchPipeline pins the compatibility contract:
// Analyzer.Analyze over materialised snapshots returns exactly what the
// pipeline returns over the same data.
func TestDeprecatedWrappersMatchPipeline(t *testing.T) {
	op := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:5"}
	snaps := []*gprofile.Snapshot{
		{Service: "pay", Instance: "i1", PreAggregated: map[stack.BlockedOp]int{op: 250}},
		{Service: "pay", Instance: "i2", PreAggregated: map[stack.BlockedOp]int{op: 120}},
	}
	analyzer := &Analyzer{Threshold: 100, Ranking: RankRMS}
	old := analyzer.Analyze(snaps)
	sweep, err := New(WithThreshold(100), WithRanking(RankRMS)).
		Sweep(context.Background(), FromSnapshots(snaps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, sweep.Findings) {
		t.Errorf("Analyze = %+v, pipeline = %+v", old[0], sweep.Findings[0])
	}
}

// TestObserveMomentsMergesSameKey: aggregation groups by the full
// operation while trend keys fold Function/NilChannel away, so one sweep
// can yield several moments per key — they must merge into a single
// observation, not a bogus same-timestamp transition.
func TestObserveMomentsMergesSameKey(t *testing.T) {
	tr := &TrendTracker{}
	at := time.Unix(0, 0)
	tr.ObserveMoments(at, []Moment{
		{Service: "s", Op: stack.BlockedOp{Op: "receive", Location: "l", NilChannel: false},
			Total: 100, ServiceProfiles: 4, SumSquares: 100 * 100},
		{Service: "s", Op: stack.BlockedOp{Op: "receive", Location: "l", NilChannel: true},
			Total: 50, ServiceProfiles: 4, SumSquares: 50 * 50},
	})
	key := Moment{Service: "s", Op: stack.BlockedOp{Op: "receive", Location: "l"}}.Key()
	obs := tr.history[key]
	if len(obs) != 1 {
		t.Fatalf("one sweep produced %d observations", len(obs))
	}
	if obs[0].total != 150 || obs[0].profiles != 4 || obs[0].sumSquares != 100*100+50*50 {
		t.Errorf("merged observation = %+v", obs[0])
	}
}
