package leakprof

import (
	"testing"
	"time"

	"repro/internal/astcheck"
	"repro/internal/gprofile"
	"repro/internal/stack"
)

func TestFilterLocations(t *testing.T) {
	f := FilterLocations(map[string]bool{"/svc/t.go:7": true})
	if !f(stack.BlockedOp{Location: "/svc/t.go:7"}) {
		t.Error("listed location not filtered")
	}
	if f(stack.BlockedOp{Location: "/svc/t.go:8"}) {
		t.Error("unlisted location filtered")
	}
}

func TestFilterTransientSelectsEndToEnd(t *testing.T) {
	// Service source with one transient select (timer heartbeat) and
	// one genuinely blocking select.
	src := `package svc
import ("time"; "context")
func heartbeat(ctx context.Context) {
	for {
		select {
		case <-time.Tick(time.Second):
		case <-ctx.Done():
			return
		}
	}
}
func handler(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}
`
	file, err := astcheck.ParseSource("svc/worker.go", src)
	if err != nil {
		t.Fatal(err)
	}
	filter := FilterTransientSelects([]*astcheck.File{file})

	// Profiles show big clusters at both selects; only the ordinary
	// one must survive.
	mk := func(fn, loc string, line, n int) *gprofile.Snapshot {
		s := &gprofile.Snapshot{Service: "svc", Instance: "i1"}
		for i := 0; i < n; i++ {
			s.Goroutines = append(s.Goroutines, &stack.Goroutine{
				ID: int64(i), State: "select",
				Frames: []stack.Frame{{Function: fn, File: "svc/worker.go", Line: line}},
			})
		}
		return s
	}
	snapTransient := mk("svc.heartbeat", "svc/worker.go:5", 5, 500)
	snapBlocking := mk("svc.handler", "svc/worker.go:13", 13, 500)

	a := &Analyzer{Threshold: 100, Filters: []OpFilter{filter}}
	findings := a.Analyze([]*gprofile.Snapshot{snapTransient, snapBlocking})
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (transient select suppressed): %+v", len(findings), findings)
	}
	if findings[0].Function != "svc.handler" {
		t.Errorf("surviving finding = %+v", findings[0])
	}
}

func TestFilterMinWait(t *testing.T) {
	longBlocked := &stack.Goroutine{
		ID: 1, State: "chan send", WaitTime: 30 * time.Minute,
		Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}},
	}
	justBlocked := &stack.Goroutine{
		ID: 2, State: "chan send", WaitTime: 2 * time.Second,
		Frames: []stack.Frame{{Function: "svc.busy", File: "/svc/b.go", Line: 9}},
	}
	noWaitInfo := &stack.Goroutine{
		ID: 3, State: "chan send",
		Frames: []stack.Frame{{Function: "svc.opaque", File: "/svc/o.go", Line: 2}},
	}
	snap := &gprofile.Snapshot{Service: "svc", Instance: "i1",
		Goroutines: []*stack.Goroutine{longBlocked, justBlocked, noWaitInfo}}

	a := &Analyzer{Threshold: 1, Filters: []OpFilter{FilterMinWait(time.Minute)}}
	findings := a.Analyze([]*gprofile.Snapshot{snap})
	got := map[string]bool{}
	for _, f := range findings {
		got[f.Function] = true
	}
	if !got["svc.leak"] {
		t.Error("long-blocked goroutine dropped")
	}
	if got["svc.busy"] {
		t.Error("freshly blocked goroutine not filtered")
	}
	if !got["svc.opaque"] {
		t.Error("goroutine without wait info must be kept")
	}
}

func TestFilterTransientSource(t *testing.T) {
	if _, err := FilterTransientSource("/nonexistent/path"); err == nil {
		t.Error("missing source tree should error")
	}
}
