package leakprof

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/report"
	"repro/internal/stack"
)

// ingestClock is a mutex-guarded fake pipeline clock: POST handlers and
// the window loop read it concurrently while tests advance it.
type ingestClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *ingestClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *ingestClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// renderDump renders snap as the debug=2 text body its instance would
// POST to the ingest endpoint.
func renderDump(t testing.TB, snap *gprofile.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gprofile.WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func gzipBytes(t testing.TB, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return buf.Bytes()
}

// postDump POSTs one dump body straight at the handler (no network) and
// returns the recorded response.
func postDump(srv http.Handler, service, instance string, body []byte, gz bool) *httptest.ResponseRecorder {
	target := "/?service=" + url.QueryEscape(service)
	if instance != "" {
		target += "&instance=" + url.QueryEscape(instance)
	}
	req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if gz {
		req.Header.Set("Content-Encoding", "gzip")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// waitIngest polls cond until it holds or the deadline passes.
func waitIngest(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// onePager is a minimal single-location snapshot for handler-level tests.
func onePager(service, instance string, count int) *gprofile.Snapshot {
	return &gprofile.Snapshot{
		Service:  service,
		Instance: instance,
		PreAggregated: map[stack.BlockedOp]int{
			{Op: "send", Location: "/" + service + "/f.go:10", Function: service + ".fn"}: count,
		},
	}
}

// TestIngestWindowParityWithBatchSweep is the acceptance parity check:
// the same fleet of dump bodies, pushed through a windowed ingest run
// (some gzipped), must produce the same findings, moments, and bug-DB
// verdicts as one batch sweep over the identical bodies.
func TestIngestWindowParityWithBatchSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	snaps := randomSweep(rng)
	t0 := time.Unix(1_700_000_000, 0)

	type rendered struct {
		service, instance string
		body              []byte
	}
	var dumps []rendered
	for _, s := range snaps {
		dumps = append(dumps, rendered{s.Service, s.Instance, renderDump(t, s)})
	}

	// Batch side: one pull-style sweep over the raw bodies.
	batchDB := report.NewDB()
	batchSink := &ReportSink{Reporter: &Reporter{DB: batchDB, Now: func() time.Time { return t0 }}}
	batch := New(WithThreshold(40), WithClock(func() time.Time { return t0 }))
	batch.AddSinks(batchSink)
	var batchDumps []Dump
	for _, d := range dumps {
		batchDumps = append(batchDumps, Dump{Service: d.service, Instance: d.instance, Body: bytes.NewReader(d.body)})
	}
	batchSweep, err := batch.Sweep(context.Background(), Dumps(batchDumps...))
	if err != nil {
		t.Fatalf("batch sweep: %v", err)
	}

	// Ingest side: the same bodies POSTed, folded into one window.
	clock := &ingestClock{t: t0}
	ingestDB := report.NewDB()
	ingestSink := &ReportSink{Reporter: &Reporter{DB: ingestDB, Now: func() time.Time { return t0 }}}
	sweeps := make(chan *Sweep, 4)
	pipe := New(
		WithThreshold(40),
		WithClock(clock.Now),
		WithWindow(time.Minute),
		WithOnSweep(func(s *Sweep) { sweeps <- s }),
	)
	pipe.AddSinks(ingestSink)
	ticks := make(chan time.Time)
	srv := NewIngestServer(pipe, IngestTicks(ticks))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()

	for i, d := range dumps {
		body, gz := d.body, false
		if i%3 == 0 {
			body, gz = gzipBytes(t, d.body), true
		}
		if rec := postDump(srv, d.service, d.instance, body, gz); rec.Code != http.StatusAccepted {
			t.Fatalf("POST %s/%s: got %d, want 202: %s", d.service, d.instance, rec.Code, rec.Body)
		}
	}
	waitIngest(t, "all dumps folded", func() bool { return srv.Stats().Folded == uint64(len(dumps)) })
	clock.Advance(2 * time.Minute)
	ticks <- time.Time{}
	var winSweep *Sweep
	select {
	case winSweep = <-sweeps:
	case <-time.After(10 * time.Second):
		t.Fatal("window never closed")
	}
	cancel()
	<-runDone

	if winSweep.Profiles != batchSweep.Profiles {
		t.Fatalf("profiles: ingest %d, batch %d", winSweep.Profiles, batchSweep.Profiles)
	}
	if winSweep.Errors != 0 || batchSweep.Errors != 0 {
		t.Fatalf("unexpected errors: ingest %d, batch %d", winSweep.Errors, batchSweep.Errors)
	}
	if !reflect.DeepEqual(winSweep.Findings, batchSweep.Findings) {
		t.Errorf("findings diverge:\ningest: %+v\nbatch:  %+v", winSweep.Findings, batchSweep.Findings)
	}
	if !reflect.DeepEqual(winSweep.Moments(), batchSweep.Moments()) {
		t.Errorf("moments diverge:\ningest: %+v\nbatch:  %+v", winSweep.Moments(), batchSweep.Moments())
	}
	ingestBugs, batchBugs := ingestDB.All(), batchDB.All()
	sort.Slice(ingestBugs, func(i, j int) bool { return ingestBugs[i].Key < ingestBugs[j].Key })
	sort.Slice(batchBugs, func(i, j int) bool { return batchBugs[i].Key < batchBugs[j].Key })
	if !reflect.DeepEqual(ingestBugs, batchBugs) {
		t.Errorf("bug DB verdicts diverge:\ningest: %+v\nbatch:  %+v", ingestBugs, batchBugs)
	}
	if len(batchBugs) == 0 {
		t.Fatal("parity vacuous: batch sweep filed no bugs")
	}
}

// TestIngestParallelFoldParity is the parallel-fold acceptance check:
// the same dump bodies pushed through a serial window (one fold worker)
// and a parallel window (eight workers) must close with identical
// findings, moments, profile counts, and bug-DB verdicts. The sharded
// aggregator is order-independent and sorts deterministically at close,
// so worker count may change only throughput, never results.
func TestIngestParallelFoldParity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	snaps := randomSweep(rng)
	t0 := time.Unix(1_700_000_000, 0)
	type rendered struct {
		service, instance string
		body              []byte
	}
	var dumps []rendered
	for _, s := range snaps {
		dumps = append(dumps, rendered{s.Service, s.Instance, renderDump(t, s)})
	}

	run := func(workers int) (*Sweep, []report.Bug) {
		clock := &ingestClock{t: t0}
		db := report.NewDB()
		sink := &ReportSink{Reporter: &Reporter{DB: db, Now: func() time.Time { return t0 }}}
		sweeps := make(chan *Sweep, 4)
		pipe := New(
			WithThreshold(40),
			WithClock(clock.Now),
			WithWindow(time.Minute),
			WithOnSweep(func(s *Sweep) { sweeps <- s }),
		)
		pipe.AddSinks(sink)
		ticks := make(chan time.Time)
		srv := NewIngestServer(pipe, IngestTicks(ticks), IngestFoldWorkers(workers))
		ctx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { runDone <- srv.Run(ctx) }()
		for _, d := range dumps {
			if rec := postDump(srv, d.service, d.instance, d.body, false); rec.Code != http.StatusAccepted {
				t.Fatalf("workers=%d POST %s/%s: got %d, want 202", workers, d.service, d.instance, rec.Code)
			}
		}
		waitIngest(t, "all dumps folded", func() bool { return srv.Stats().Folded == uint64(len(dumps)) })
		clock.Advance(2 * time.Minute)
		ticks <- time.Time{}
		var sweep *Sweep
		select {
		case sweep = <-sweeps:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: window never closed", workers)
		}
		cancel()
		<-runDone
		bugs := db.All()
		sort.Slice(bugs, func(i, j int) bool { return bugs[i].Key < bugs[j].Key })
		return sweep, bugs
	}

	serial, serialBugs := run(1)
	parallel, parallelBugs := run(8)
	if serial.Profiles != parallel.Profiles {
		t.Fatalf("profiles: serial %d, parallel %d", serial.Profiles, parallel.Profiles)
	}
	if !reflect.DeepEqual(serial.Findings, parallel.Findings) {
		t.Errorf("findings diverge:\nserial:   %+v\nparallel: %+v", serial.Findings, parallel.Findings)
	}
	if !reflect.DeepEqual(serial.Moments(), parallel.Moments()) {
		t.Errorf("moments diverge:\nserial:   %+v\nparallel: %+v", serial.Moments(), parallel.Moments())
	}
	if !reflect.DeepEqual(serialBugs, parallelBugs) {
		t.Errorf("bug DB verdicts diverge:\nserial:   %+v\nparallel: %+v", serialBugs, parallelBugs)
	}
	if len(serial.Findings) == 0 || len(serialBugs) == 0 {
		t.Fatalf("parity vacuous: serial run produced %d findings, %d bugs", len(serial.Findings), len(serialBugs))
	}
}

// TestIngestServiceQuota checks per-service admission quotas: a service
// at its quota is shed with 429 while other services (and the shared
// queue) stay open, the rejection is charged as ErrIngestQuota in the
// closing window, and folding releases the quota.
func TestIngestServiceQuota(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	clock := &ingestClock{t: t0}
	sweeps := make(chan *Sweep, 4)
	pipe := New(
		WithThreshold(1000),
		WithClock(clock.Now),
		WithWindow(time.Minute),
		WithOnSweep(func(s *Sweep) { sweeps <- s }),
	)
	ticks := make(chan time.Time)
	srv := NewIngestServer(pipe, IngestQueue(8), IngestServiceQuota(2), IngestTicks(ticks))
	body := renderDump(t, onePager("pay", "i0", 120))

	// Run is not started: admitted dumps hold their slots and quota.
	for i := 0; i < 2; i++ {
		if rec := postDump(srv, "pay", "i"+strconv.Itoa(i), body, false); rec.Code != http.StatusAccepted {
			t.Fatalf("POST %d: got %d, want 202", i, rec.Code)
		}
	}
	rec := postDump(srv, "pay", "i2", body, false)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota POST: got %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("quota Retry-After = %q, want \"30\"", got)
	}
	// The queue has six free slots: another service is unaffected.
	if rec := postDump(srv, "web", "i0", body, false); rec.Code != http.StatusAccepted {
		t.Fatalf("other-service POST: got %d, want 202", rec.Code)
	}
	if st := srv.Stats(); st.QuotaRejected != 1 || st.Rejected != 0 || st.Admitted != 3 {
		t.Fatalf("stats after quota shed: %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()
	waitIngest(t, "admitted dumps folded", func() bool { return srv.Stats().Folded == 3 })
	// Folding released pay's quota: the service admits again.
	if rec := postDump(srv, "pay", "i3", body, false); rec.Code != http.StatusAccepted {
		t.Fatalf("post-fold POST: got %d, want 202 (quota released on fold)", rec.Code)
	}
	waitIngest(t, "fourth dump folded", func() bool { return srv.Stats().Folded == 4 })
	clock.Advance(2 * time.Minute)
	ticks <- time.Time{}
	var sweep *Sweep
	select {
	case sweep = <-sweeps:
	case <-time.After(10 * time.Second):
		t.Fatal("window never closed")
	}
	cancel()
	<-runDone

	if sweep.Profiles != 4 {
		t.Errorf("Profiles = %d, want 4", sweep.Profiles)
	}
	if sweep.Errors != 1 || sweep.FailedByService["pay"] != 1 {
		t.Errorf("Errors = %d, FailedByService = %v, want the one quota rejection against pay",
			sweep.Errors, sweep.FailedByService)
	}
	quotaFails := 0
	for _, f := range sweep.Failures {
		if errors.Is(f.Err, ErrIngestQuota) {
			quotaFails++
		}
	}
	if quotaFails != 1 {
		t.Errorf("ErrIngestQuota failures = %d, want 1", quotaFails)
	}
	if st := srv.Stats(); st.FoldTail <= 0 {
		t.Errorf("FoldTail = %v, want > 0 after a closed window with folds", st.FoldTail)
	}
}

// TestAdaptiveDrainGrace pins the drain-grace policy: default with no
// fold samples, proportional to tail latency and outstanding work per
// worker, clamped at both ends.
func TestAdaptiveDrainGrace(t *testing.T) {
	cases := []struct {
		name        string
		tail        time.Duration
		outstanding int
		workers     int
		want        time.Duration
	}{
		{"no-samples-default", 0, 100, 4, defaultDrainGrace},
		{"idle-floor", time.Microsecond, 0, 1, minDrainGrace},
		{"proportional", 10 * time.Millisecond, 100, 4, 520 * time.Millisecond},
		{"nothing-outstanding-floor", 10 * time.Millisecond, 0, 4, minDrainGrace},
		{"ceiling", time.Second, 100, 1, maxDrainGrace},
		{"zero-workers-treated-as-one", 10 * time.Millisecond, 10, 0, 220 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := adaptiveDrainGrace(tc.tail, tc.outstanding, tc.workers); got != tc.want {
				t.Errorf("adaptiveDrainGrace(%v, %d, %d) = %v, want %v",
					tc.tail, tc.outstanding, tc.workers, got, tc.want)
			}
		})
	}
}

// TestIngestBackpressure fills the admission queue and checks that
// overflow is shed with 429 + Retry-After while every admitted dump
// still folds, and that the rejections are charged to their services in
// the closing window's accounting.
func TestIngestBackpressure(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	clock := &ingestClock{t: t0}
	sweeps := make(chan *Sweep, 4)
	pipe := New(
		WithThreshold(1000),
		WithClock(clock.Now),
		WithWindow(time.Minute),
		WithOnSweep(func(s *Sweep) { sweeps <- s }),
	)
	ticks := make(chan time.Time)
	srv := NewIngestServer(pipe, IngestQueue(2), IngestTicks(ticks))
	body := renderDump(t, onePager("pay", "i0", 120))

	// Run is not started yet, so the two admitted dumps pin the queue.
	for i := 0; i < 2; i++ {
		if rec := postDump(srv, "pay", "i"+strconv.Itoa(i), body, false); rec.Code != http.StatusAccepted {
			t.Fatalf("POST %d: got %d, want 202", i, rec.Code)
		}
	}
	rec := postDump(srv, "pay", "i2", body, false)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: got %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want \"30\" (half a 1m window)", got)
	}
	if rec := postDump(srv, "web", "i0", body, false); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second overflow POST: got %d, want 429", rec.Code)
	}
	if st := srv.Stats(); st.Rejected != 2 || st.Admitted != 2 {
		t.Fatalf("stats after overflow: %+v", st)
	}

	// Starting the window loop folds the admitted dumps: overflow must
	// not have stalled them.
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()
	waitIngest(t, "admitted dumps folded", func() bool { return srv.Stats().Folded == 2 })
	clock.Advance(2 * time.Minute)
	ticks <- time.Time{}
	var sweep *Sweep
	select {
	case sweep = <-sweeps:
	case <-time.After(10 * time.Second):
		t.Fatal("window never closed")
	}
	cancel()
	<-runDone

	if sweep.Profiles != 2 {
		t.Errorf("Profiles = %d, want 2", sweep.Profiles)
	}
	if sweep.Errors != 2 {
		t.Errorf("Errors = %d, want 2 rejections", sweep.Errors)
	}
	if sweep.FailedByService["pay"] != 1 || sweep.FailedByService["web"] != 1 {
		t.Errorf("FailedByService = %v, want pay:1 web:1", sweep.FailedByService)
	}
	for _, f := range sweep.Failures {
		if !errors.Is(f.Err, ErrIngestOverflow) {
			t.Errorf("failure %s/%s: %v, want ErrIngestOverflow", f.Service, f.Instance, f.Err)
		}
	}
	if len(sweep.Failures) != 2 {
		t.Errorf("Failures = %d entries, want 2", len(sweep.Failures))
	}
}

// TestIngestRequestValidation covers the handler's rejection paths —
// and that each rejection releases its admission slot (the queue is one
// deep, so a leaked slot would turn the final POST into a 429).
func TestIngestRequestValidation(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	pipe := New(WithClock(func() time.Time { return t0 }), WithMaxProfileBytes(128))
	srv := NewIngestServer(pipe, IngestQueue(1), IngestTicks(make(chan time.Time)))
	small := renderDump(t, onePager("pay", "i0", 7))
	if len(small) >= 128 {
		t.Fatalf("small body is %d bytes, want < 128", len(small))
	}

	req := httptest.NewRequest(http.MethodGet, "/?service=pay", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: got %d, want 405", rec.Code)
	}
	if rec := postDump(srv, "", "i0", small, false); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing service: got %d, want 400", rec.Code)
	}
	if rec := postDump(srv, "pay", "i0", []byte("definitely not gzip"), true); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad gzip: got %d, want 400", rec.Code)
	}
	big := &gprofile.Snapshot{Service: "pay", Instance: "i1", PreAggregated: map[stack.BlockedOp]int{}}
	for i := 0; i < 5; i++ {
		big.PreAggregated[stack.BlockedOp{
			Op: "send", Location: "/pay/file" + strconv.Itoa(i) + ".go:10", Function: "pay.fn" + strconv.Itoa(i),
		}] = 100
	}
	if rec := postDump(srv, "pay", "i1", renderDump(t, big), false); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body: got %d, want 413", rec.Code)
	}
	if st := srv.Stats(); st.ScanErrors != 2 {
		t.Fatalf("ScanErrors = %d, want 2 (bad gzip + over-limit)", st.ScanErrors)
	}
	// Every failed admission above released its slot: this fills the
	// one-deep queue, and only the next POST overflows.
	if rec := postDump(srv, "pay", "i2", small, false); rec.Code != http.StatusAccepted {
		t.Fatalf("valid POST after failures: got %d, want 202: %s", rec.Code, rec.Body)
	}
	if rec := postDump(srv, "pay", "i3", small, false); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST: got %d, want 429", rec.Code)
	}
}

// TestIngestLateArrivalNextWindow checks tumbling-window semantics: a
// dump arriving after a window closed is credited to the next window's
// sweep, not lost and not folded retroactively.
func TestIngestLateArrivalNextWindow(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	clock := &ingestClock{t: t0}
	sweeps := make(chan *Sweep, 4)
	pipe := New(
		WithThreshold(1000),
		WithClock(clock.Now),
		WithWindow(time.Minute),
		WithOnSweep(func(s *Sweep) { sweeps <- s }),
	)
	ticks := make(chan time.Time)
	srv := NewIngestServer(pipe, IngestTicks(ticks))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()

	body := renderDump(t, onePager("pay", "i0", 50))
	if rec := postDump(srv, "pay", "i0", body, false); rec.Code != http.StatusAccepted {
		t.Fatalf("first POST: got %d", rec.Code)
	}
	waitIngest(t, "first dump folded", func() bool { return srv.Stats().Folded == 1 })
	clock.Advance(2 * time.Minute)
	ticks <- time.Time{}
	first := <-sweeps
	if first.Profiles != 1 {
		t.Fatalf("window 1 Profiles = %d, want 1", first.Profiles)
	}

	// The late arrival: window 1 is closed, window 2 is open.
	waitIngest(t, "window 2 open", func() bool { return srv.Stats().Windows == 1 })
	if rec := postDump(srv, "pay", "i1", body, false); rec.Code != http.StatusAccepted {
		t.Fatalf("late POST: got %d", rec.Code)
	}
	waitIngest(t, "late dump folded", func() bool { return srv.Stats().Folded == 2 })
	clock.Advance(2 * time.Minute)
	ticks <- time.Time{}
	second := <-sweeps
	if second.Profiles != 1 {
		t.Fatalf("window 2 Profiles = %d, want 1 (the late arrival)", second.Profiles)
	}
	cancel()
	<-runDone
	if st := srv.Stats(); st.WindowPause <= 0 {
		t.Errorf("WindowPause = %v, want > 0 after two closes", st.WindowPause)
	}
}

// TestIngestDrainOnClose checks the shutdown barrier: cancelling Run
// folds everything already admitted into one final partial-window sweep
// before returning, and the handler refuses new work afterwards.
func TestIngestDrainOnClose(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	sweeps := make(chan *Sweep, 4)
	pipe := New(
		WithThreshold(1000),
		WithClock(func() time.Time { return t0 }),
		WithWindow(time.Minute),
		WithOnSweep(func(s *Sweep) { sweeps <- s }),
	)
	srv := NewIngestServer(pipe, IngestTicks(make(chan time.Time)))
	body := renderDump(t, onePager("pay", "i0", 50))
	for i := 0; i < 3; i++ {
		if rec := postDump(srv, "pay", "i"+strconv.Itoa(i), body, false); rec.Code != http.StatusAccepted {
			t.Fatalf("POST %d: got %d", i, rec.Code)
		}
	}
	// Run with a cancelled context is pure drain: the three queued dumps
	// fold into one final sweep, synchronously.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run: %v, want context.Canceled", err)
	}
	sweep := <-sweeps
	if sweep.Profiles != 3 {
		t.Fatalf("final sweep Profiles = %d, want 3", sweep.Profiles)
	}
	if st := srv.Stats(); st.Folded != 3 || st.Windows != 1 {
		t.Fatalf("stats after drain: %+v", st)
	}
	if rec := postDump(srv, "pay", "late", body, false); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST after close: got %d, want 503", rec.Code)
	}
}

// TestIngestLoad hammers a real HTTP listener with concurrent posters —
// the race-job shape of the fleetsim load generator. Every request must
// be accounted (admitted, rejected, or scan-failed), and after the
// shutdown drain every admitted dump must have folded into some window.
// INGEST_LOAD_POSTERS scales the poster count up in CI.
func TestIngestLoad(t *testing.T) {
	posters := 32
	if s := os.Getenv("INGEST_LOAD_POSTERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad INGEST_LOAD_POSTERS=%q", s)
		}
		posters = n
	}
	const perPoster = 8

	var foldedProfiles atomic.Int64
	pipe := New(
		WithThreshold(100),
		WithWindow(20*time.Millisecond),
		WithOnSweep(func(s *Sweep) { foldedProfiles.Add(int64(s.Profiles)) }),
	)
	srv := NewIngestServer(pipe, IngestQueue(64))
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx) }()

	var bodies [][]byte
	for i := 0; i < 8; i++ {
		bodies = append(bodies, renderDump(t, onePager("svc"+strconv.Itoa(i%4), "seed", 60+i)))
	}
	var accepted, rejected, other atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := hs.Client()
			for k := 0; k < perPoster; k++ {
				body := bodies[(p+k)%len(bodies)]
				req, err := http.NewRequest(http.MethodPost, hs.URL, bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Leakprof-Service", "svc"+strconv.Itoa(p%4))
				req.Header.Set("X-Leakprof-Instance", "p"+strconv.Itoa(p)+"-"+strconv.Itoa(k))
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					other.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	cancel()
	<-runDone

	total := int64(posters * perPoster)
	st := srv.Stats()
	if other.Load() != 0 {
		t.Fatalf("%d requests got unexpected statuses", other.Load())
	}
	if got := accepted.Load() + rejected.Load(); got != total {
		t.Fatalf("accounted %d of %d requests", got, total)
	}
	if st.Admitted != uint64(accepted.Load()) || st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("server stats %+v disagree with client counts (202=%d 429=%d)", st, accepted.Load(), rejected.Load())
	}
	if st.Folded != st.Admitted {
		t.Fatalf("Folded = %d, Admitted = %d: drain lost dumps", st.Folded, st.Admitted)
	}
	if got := foldedProfiles.Load(); got != int64(st.Folded) {
		t.Fatalf("sweeps delivered %d profiles, server folded %d", got, st.Folded)
	}
}
