package leakprof

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/stack"
)

// leakEndpoint serves a debug=2 profile with n goroutines blocked at one
// location.
func leakEndpoint(t *testing.T, n int) *httptest.Server {
	t.Helper()
	gs := make([]*stack.Goroutine, n)
	for i := range gs {
		gs[i] = &stack.Goroutine{
			ID: int64(i + 1), State: "chan send",
			Frames: []stack.Frame{{Function: "svc.leak", File: "/svc/l.go", Line: 5}},
		}
	}
	body := stack.Format(gs)
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(body))
	}))
}

func TestSchedulerSweep(t *testing.T) {
	srv := leakEndpoint(t, 500)
	defer srv.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer bad.Close()

	var observed []SweepStats
	sched := &Scheduler{
		Collector: &Collector{},
		Analyzer:  &Analyzer{Threshold: 100},
		Reporter:  &Reporter{DB: report.NewDB(), TopN: 5},
		Trend:     &TrendTracker{},
		Endpoints: func() []Endpoint {
			return []Endpoint{
				{Service: "svc", Instance: "i1", URL: srv.URL},
				{Service: "svc", Instance: "i2", URL: bad.URL},
			}
		},
		OnSweep: func(s SweepStats) { observed = append(observed, s) },
		now:     func() time.Time { return time.Unix(77, 0) },
	}
	stats := sched.Sweep(context.Background())
	if stats.Endpoints != 2 || stats.Profiles != 1 || stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Findings != 1 || len(stats.NewAlerts) != 1 {
		t.Fatalf("findings/alerts = %d/%d", stats.Findings, len(stats.NewAlerts))
	}
	if len(observed) != 1 {
		t.Errorf("OnSweep called %d times", len(observed))
	}
	// Second sweep: same defect, deduplicated, trend accumulates.
	stats = sched.Sweep(context.Background())
	if len(stats.NewAlerts) != 0 {
		t.Errorf("re-alerted on sweep 2: %+v", stats.NewAlerts)
	}
}

func TestSchedulerRunHonoursContext(t *testing.T) {
	srv := leakEndpoint(t, 1)
	defer srv.Close()
	sched := &Scheduler{
		Collector: &Collector{},
		Analyzer:  &Analyzer{},
		Reporter:  &Reporter{DB: report.NewDB()},
		Endpoints: func() []Endpoint {
			return []Endpoint{{Service: "s", Instance: "i", URL: srv.URL}}
		},
		Interval: time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := sched.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Errorf("Run returned %v", err)
	}
}
