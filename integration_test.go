package repro

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/goleak"
	"repro/internal/astcheck"
	"repro/internal/fleet"
	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/internal/report"
	"repro/internal/stack"
	"repro/leakprof"
)

// TestFig3WorkflowEndToEnd walks the paper's Fig-3 loop across both
// tools: a leaky change is caught by GOLEAK in CI; a second defect with
// no test coverage escapes to production, grows in the fleet, is caught
// by LEAKPROF over real HTTP, gets fixed, and the next sweep comes back
// clean.
func TestFig3WorkflowEndToEnd(t *testing.T) {
	// --- CI side: the PR's unit tests leak; GOLEAK blocks the merge.
	baseline := goleak.IgnoreCurrent()
	inst := patterns.DoubleSend.Trigger(2)
	if err := patterns.AwaitKind(stack.KindChanSend, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	leaks, err := goleak.Find(baseline, goleak.MaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	var caught int
	for _, l := range leaks {
		if strings.Contains(l.CodeContext().Function, "doubleSender") {
			caught++
		}
	}
	if caught != 2 {
		t.Fatalf("CI gate caught %d/2 leaks", caught)
	}
	inst.Release() // "the author fixes the leak before merging"

	// --- Production side: an uncovered timeout leak ships.
	cfg := fleet.ServiceConfig{
		Name: "orders", Instances: 3,
		Pattern:  patterns.TimeoutLeak,
		LeakFile: "services/orders/checkout.go", LeakLine: 77,
		LeakPerDay: 1500, LeakStartDay: 1, FixDay: -1,
		DeployEveryDays: 1000, BenignGoroutines: 20, Seed: 9,
	}
	prod := fleet.New(time.Unix(0, 0).UTC(), []fleet.ServiceConfig{cfg})
	prod.AdvanceDay()
	prod.AdvanceDay()

	endpoints, shutdown := prod.Serve()
	defer shutdown()

	collector := &leakprof.Collector{Parallelism: 4}
	snaps := leakprof.Snapshots(collector.Collect(context.Background(), endpoints))
	if len(snaps) != 3 {
		t.Fatalf("collected %d/3 profiles", len(snaps))
	}

	// Criterion-2 filter from the service's (synthetic) source: a timer
	// heartbeat select that must never be reported.
	src := `package orders
import ("time"; "context")
func heartbeat(ctx context.Context) {
	select {
	case <-time.After(time.Minute):
	case <-ctx.Done():
	}
}
`
	file, err := astcheck.ParseSource("services/orders/heartbeat.go", src)
	if err != nil {
		t.Fatal(err)
	}
	analyzer := &leakprof.Analyzer{
		Threshold: 2000,
		Filters:   []leakprof.OpFilter{leakprof.FilterTransientSelects([]*astcheck.File{file})},
	}
	findings := analyzer.Analyze(snaps)
	if len(findings) != 1 {
		t.Fatalf("production findings = %d, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Location != "services/orders/checkout.go:77" || f.Op != "send" {
		t.Fatalf("finding = %+v", f)
	}

	// --- Reporting: routed to the owning team, filed once.
	owners := report.NewOwnership(map[string]string{"services/orders/": "orders-team"})
	db := report.NewDB()
	reporter := &leakprof.Reporter{DB: db, Owners: owners, TopN: 5}
	alerts := reporter.Report(findings)
	if len(alerts) != 1 || alerts[0].Bug.Owner != "orders-team" {
		t.Fatalf("alerts = %+v", alerts)
	}

	// --- The fix deploys; the backlog clears; the next sweep is clean.
	prod.Services[0].Cfg.FixDay = prod.Day
	prod.Services[0].Cfg.DeployEveryDays = 1
	prod.AdvanceDay()
	snaps = leakprof.Snapshots(collector.Collect(context.Background(), endpoints))
	if post := analyzer.Analyze(snaps); len(post) != 0 {
		t.Fatalf("post-fix findings: %+v", post)
	}
	db.SetStatus(alerts[0].Bug.Key, report.StatusFixed)
	if got := db.CountByStatus()[report.StatusFixed]; got != 1 {
		t.Fatalf("bug DB fixed count = %d", got)
	}
}

// TestGoleakCatchesEveryReleasablePattern verifies the CI detector
// against the full live pattern catalogue: each pattern's leak is found
// with the correct classification, and after release the detector comes
// back clean.
func TestGoleakCatchesEveryReleasablePattern(t *testing.T) {
	for _, p := range patterns.All() {
		if !p.Releasable {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			before := countOfKind(t, p.Kind)
			baseline := goleak.IgnoreCurrent()
			inst := p.Trigger(2)
			if err := patterns.AwaitKind(p.Kind, before+2, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			leaks, err := goleak.Find(baseline, goleak.MaxRetries(0))
			if err != nil {
				t.Fatal(err)
			}
			var matched int
			for _, l := range leaks {
				if l.Kind == p.Kind && strings.Contains(l.CodeContext().Function, "repro/internal/patterns") {
					matched++
				}
			}
			if matched < 2 {
				t.Errorf("goleak found %d/2 leaks of kind %v", matched, p.Kind)
			}
			inst.Release()
			leaks, err = goleak.Find(baseline)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range leaks {
				if strings.Contains(l.CodeContext().Function, "repro/internal/patterns") && l.Kind == p.Kind {
					t.Errorf("post-release leak remains: %s", l)
				}
			}
		})
	}
}

// TestTrendOnLeakyFleet replays a Fig-6-style incident through the trend
// tracker: the leak's location must classify as growing within a few
// sweeps, while the congested-but-healthy service's location oscillates.
func TestTrendOnLeakyFleet(t *testing.T) {
	configs := []fleet.ServiceConfig{
		{
			Name: "leaky", Instances: 10,
			Pattern:  patterns.TimeoutLeak,
			LeakFile: "services/leaky/h.go", LeakLine: 3,
			LeakPerDay: 2000, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 10, Seed: 4,
		},
		{
			Name: "bursty", Instances: 10,
			Pattern:  patterns.ContractOutsideLoop,
			LeakFile: "services/bursty/pool.go", LeakLine: 8,
			LeakPerDay: 4000, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays:  2, // frequent deploys make the count sawtooth
			BenignGoroutines: 10, Seed: 5,
		},
	}
	f := fleet.New(time.Unix(0, 0).UTC(), configs)
	analyzer := &leakprof.Analyzer{Threshold: 1000}
	tr := &leakprof.TrendTracker{}
	at := time.Unix(0, 0)
	for day := 0; day < 6; day++ {
		f.AdvanceDay()
		tr.Observe(at, analyzer.Analyze(f.SnapshotsAggregated()))
		at = at.Add(24 * time.Hour)
	}
	growing := tr.Growing()
	if len(growing) != 1 || !strings.Contains(growing[0], "services/leaky/h.go:3") {
		t.Fatalf("growing keys = %v", growing)
	}
}

// countOfKind counts live goroutines of one blocking kind.
func countOfKind(t *testing.T, k stack.Kind) int {
	t.Helper()
	gs, err := stack.Current()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, g := range gs {
		if g.Kind() == k {
			n++
		}
	}
	return n
}

// TestSuppressionListLifecycleAcrossTools mirrors the deployment
// workflow: a pre-existing leak rides the suppression list through CI
// while LEAKPROF still sees it in production profiles — the tools are
// complementary, not redundant.
func TestSuppressionListLifecycleAcrossTools(t *testing.T) {
	sup := goleak.NewSuppressionList(goleak.Suppression{
		Function: "repro/internal/patterns.orphanSender",
		Reason:   "legacy, JIRA-1",
	})

	baseline := goleak.IgnoreCurrent()
	inst := patterns.MissingReceiver.Trigger(2)
	defer inst.Release()
	if err := patterns.AwaitKind(stack.KindChanSend, 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// CI: suppressed, PR passes.
	leaks, err := goleak.Find(baseline, goleak.MaxRetries(0), goleak.WithSuppressions(sup))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaks {
		if strings.Contains(l.CodeContext().Function, "orphanSender") {
			t.Fatalf("suppressed leak still reported in CI: %s", l)
		}
	}

	// Production: LEAKPROF has no suppression concept; the same code
	// path, grown to a cluster, is reported.
	gs := patterns.MissingReceiver.Stacks(1, 12000)
	patterns.Relocate(gs, "services/legacy/send.go", 5)
	analyzer := &leakprof.Analyzer{}
	findings := analyzer.Analyze([]*gprofile.Snapshot{{
		Service: "legacy", Instance: "i1", Goroutines: gs,
	}})
	if len(findings) != 1 {
		t.Fatalf("production findings = %d, want 1", len(findings))
	}
	if findings[0].Location != "services/legacy/send.go:5" {
		t.Errorf("finding = %+v", findings[0])
	}
}

// TestPipelineDrivesAllSourceKinds is the unified-API acceptance check:
// one Pipeline configuration drives all three production source kinds —
// live HTTP endpoints, the write-through archive that sweep records, and
// the simulated fleet directly — through the same engine with two
// concurrent sinks (report + trend), and every origin agrees on the
// findings.
func TestPipelineDrivesAllSourceKinds(t *testing.T) {
	cfg := fleet.ServiceConfig{
		Name: "billing", Instances: 3,
		Pattern:  patterns.TimeoutLeak,
		LeakFile: "services/billing/worker.go", LeakLine: 33,
		LeakPerDay: 2000, LeakStartDay: 1, FixDay: -1,
		DeployEveryDays: 1000, BenignGoroutines: 15, Seed: 4,
	}
	f := fleet.New(time.Unix(0, 0).UTC(), []fleet.ServiceConfig{cfg})
	f.AdvanceDay()
	f.AdvanceDay()

	endpoints, shutdown := f.Serve()
	defer shutdown()
	archiveDir := t.TempDir()
	archiveSink, err := leakprof.NewArchiveSink(archiveDir)
	if err != nil {
		t.Fatal(err)
	}

	sweepFindings := make(map[string][]*leakprof.Finding)
	for _, src := range []leakprof.Source{
		leakprof.StaticEndpoints(endpoints...),
		f.Source(),
	} {
		trend := &leakprof.TrendTracker{}
		reportSink := &leakprof.ReportSink{
			Reporter: &leakprof.Reporter{DB: report.NewDB(), TopN: 3},
		}
		pipe := leakprof.New(
			leakprof.WithThreshold(1000),
			leakprof.WithParallelism(4),
			leakprof.WithRetry(leakprof.DefaultRetryPolicy),
			leakprof.WithSharedIntern(0),
		).AddSinks(reportSink, &leakprof.TrendSink{Tracker: trend})
		if src.Name() == "endpoints" {
			pipe.AddSinks(archiveSink)
		}
		sweep, err := pipe.Sweep(context.Background(), src)
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		if sweep.Profiles != 3 || sweep.Errors != 0 {
			t.Fatalf("%s sweep = %+v", src.Name(), sweep)
		}
		if len(sweep.Findings) != 1 {
			t.Fatalf("%s findings = %+v", src.Name(), sweep.Findings)
		}
		if got := sweep.Findings[0].Location; got != "services/billing/worker.go:33" {
			t.Errorf("%s located leak at %q", src.Name(), got)
		}
		if alerts := reportSink.LastAlerts(); len(alerts) != 1 {
			t.Errorf("%s report sink alerts = %d", src.Name(), len(alerts))
		}
		sweepFindings[src.Name()] = sweep.Findings
	}

	// Third kind: the archive the endpoint sweep wrote through.
	sweep, err := leakprof.New(leakprof.WithThreshold(1000)).
		Sweep(context.Background(), leakprof.Archive(archiveDir))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Profiles != 3 || len(sweep.Findings) != 1 {
		t.Fatalf("archive sweep = %+v", sweep)
	}
	sweepFindings["archive"] = sweep.Findings

	want := sweepFindings["endpoints"][0]
	for origin, fs := range sweepFindings {
		got := fs[0]
		if got.TotalBlocked != want.TotalBlocked || got.Instances != want.Instances ||
			got.Location != want.Location || got.Op != want.Op || got.Impact != want.Impact {
			t.Errorf("%s finding %+v diverges from endpoints finding %+v", origin, got, want)
		}
	}
}
