// Watchdog: in-process leak monitoring, the runtime-monitoring direction
// the paper's conclusions point to.
//
// The program embeds a leakwatch.Watcher into a "service", then ships a
// defect: request handlers that strand sender goroutines when requests
// time out (Listing 8). The watchdog observes the blocked-goroutine
// concentration at the offending source location growing across samples
// and raises a report from inside the process — no fleet infrastructure
// required. A healthy burst of short-lived blocking, by contrast, never
// satisfies the persistence gate.
//
// Run:
//
//	go run ./examples/watchdog
package main

import (
	"fmt"
	"time"

	"repro/internal/patterns"
	"repro/internal/stack"
	"repro/leakwatch"
)

func main() {
	reports := make(chan leakwatch.Report, 16)
	w := leakwatch.New(leakwatch.Config{
		Interval:    20 * time.Millisecond,
		Threshold:   50,
		Persistence: 3,
		OnLeak:      func(r leakwatch.Report) { reports <- r },
	})
	defer w.Stop()
	fmt.Println("watchdog armed: threshold 50 blocked goroutines, persistence 3 samples")

	// A transient burst: many goroutines block briefly and then get
	// released — congestion, not a leak.
	burst := patterns.ContractOutsideLoop.Trigger(80)
	fmt.Println("transient burst of 80 blocked goroutines...")
	time.Sleep(40 * time.Millisecond) // one or two samples see it
	burst.Release()
	fmt.Println("burst released; the persistence gate kept the watchdog quiet")

	// The real defect: leaked senders accumulate sample after sample.
	fmt.Println("\nshipping the timeout-leak defect...")
	inst := patterns.TimeoutLeak.Trigger(120)
	defer inst.Release()
	if err := patterns.AwaitKind(stack.KindChanSend, 120, 5*time.Second); err != nil {
		panic(err)
	}

	select {
	case r := <-reports:
		fmt.Println("\nwatchdog report:")
		fmt.Println(" ", r)
		fmt.Println("  (operation kind and source location identify the defect, as in LEAKPROF alerts)")
	case <-time.After(5 * time.Second):
		fmt.Println("no report within 5s — unexpected")
	}
}
