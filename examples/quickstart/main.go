// Quickstart: detect a goroutine leak with the goleak library.
//
// This program reproduces the paper's motivating example (Listing 1): a
// cost computation that spawns a discount lookup on an unbuffered channel
// and returns early on an error path, stranding the sender forever. It
// then uses goleak.Find — the same API the CI instrumentation invokes at
// the end of every test target — to surface the leak, and shows how the
// buffered-channel fix makes the detector come back clean.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"time"

	"repro/goleak"
)

type item struct{ name string }

// computeCost is Listing 1: getDiscount runs concurrently; when
// getBaseCost errors, the function returns without receiving, and the
// discount goroutine blocks on its send forever.
func computeCost(it *item, failBaseCost bool, buffered bool) (int, error) {
	size := 0
	if buffered {
		size = 1 // the paper's simplest fix: a rescue buffer
	}
	ch := make(chan int, size)
	go func() {
		ch <- getDiscount(it)
	}()
	base, err := getBaseCost(it, failBaseCost)
	if err != nil {
		return 0, err // premature return: with size 0 the sender leaks
	}
	return base - <-ch, nil
}

func getDiscount(*item) int { return 5 }

func getBaseCost(_ *item, fail bool) (int, error) {
	if fail {
		return 0, errors.New("base cost lookup failed")
	}
	return 100, nil
}

func main() {
	fmt.Println("== leaky version ==")
	if _, err := computeCost(&item{name: "widget"}, true, false); err != nil {
		fmt.Println("computeCost returned error:", err)
	}
	time.Sleep(50 * time.Millisecond) // let the stranded goroutine park

	leaks, err := goleak.Find(goleak.MaxRetries(0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("goleak found %d leaked goroutine(s):\n", len(leaks))
	for _, l := range leaks {
		fmt.Print(l)
	}

	fmt.Println("\n== fixed version (buffered channel) ==")
	snapshot := goleak.IgnoreCurrent() // ignore the leak we already made
	if _, err := computeCost(&item{name: "widget"}, true, true); err != nil {
		fmt.Println("computeCost returned error:", err)
	}
	leaks, err = goleak.Find(snapshot)
	if err != nil {
		panic(err)
	}
	fmt.Printf("goleak found %d new leaked goroutine(s)\n", len(leaks))
	if len(leaks) == 0 {
		fmt.Println("the buffered channel lets the sender complete: no leak")
	}
}
