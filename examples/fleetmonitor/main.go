// Fleetmonitor: the full LEAKPROF pipeline end to end, over real HTTP.
//
// The program stands up a small simulated fleet — three services, a few
// instances each, one carrying a timeout-leak defect and one a congested-
// but-healthy worker pool — and then runs the production pipeline exactly
// as Section V describes: collect goroutine profiles from every instance
// over the network, group blocked goroutines by operation and source
// location, apply the concentration threshold, rank the survivors by RMS
// impact across the fleet, and alert the routed code owners.
//
// Run:
//
//	go run ./examples/fleetmonitor
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/patterns"
	"repro/internal/report"
	"repro/leakprof"
)

func main() {
	configs := []fleet.ServiceConfig{
		{
			// The defective service: a handler leaks senders when
			// request contexts expire (Listing 8).
			Name: "payments", Instances: 4,
			Pattern:  patterns.TimeoutLeak,
			LeakFile: "services/payments/handler.go", LeakLine: 58,
			LeakPerDay: 900, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 1,
		},
		{
			// A busy but healthy service: its blocked population stays
			// under the threshold, so no alert fires.
			Name: "search", Instances: 3,
			Pattern:  patterns.ContractOutsideLoop,
			LeakFile: "services/search/pool.go", LeakLine: 12,
			LeakPerDay: 40, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 2,
		},
		{
			// A clean service.
			Name: "profiles", Instances: 3,
			BenignGoroutines: 25, Seed: 3,
		},
	}
	f := fleet.New(time.Now(), configs)
	for day := 0; day < 3; day++ {
		f.AdvanceDay()
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()
	fmt.Printf("fleet live: %d instances across %d services\n", len(endpoints), len(configs))

	// Stage 1 — collection (Section V-A: fetch a profile per instance).
	collector := &leakprof.Collector{Parallelism: 8}
	results := collector.Collect(context.Background(), endpoints)
	snaps := leakprof.Snapshots(results)
	fmt.Printf("collected %d goroutine profiles over HTTP\n", len(snaps))

	// Stage 2 — detection: threshold tuned to the example's scale (the
	// production default is 10K).
	analyzer := &leakprof.Analyzer{Threshold: 2000}
	findings := analyzer.Analyze(snaps)
	fmt.Printf("suspicious blocked operations: %d\n", len(findings))

	// Stage 3 — reporting with ownership routing and dedup.
	owners := report.NewOwnership(map[string]string{
		"services/payments/": "payments-oncall",
		"services/search/":   "search-oncall",
	})
	reporter := &leakprof.Reporter{DB: report.NewDB(), Owners: owners, TopN: 5}
	for _, alert := range reporter.Report(findings) {
		fmt.Println()
		fmt.Print(alert.Render())
	}

	// A second sweep the next day deduplicates against the bug DB.
	f.AdvanceDay()
	results = collector.Collect(context.Background(), endpoints)
	again := reporter.Report(analyzer.Analyze(leakprof.Snapshots(results)))
	fmt.Printf("\nnext-day sweep: %d new alerts (existing defect deduplicated)\n", len(again))
}
