// Fleetmonitor: the full LEAKPROF pipeline end to end, over real HTTP —
// including the durability layer a production daily sweep depends on.
//
// The program stands up a small simulated fleet — three services, a few
// instances each, one carrying a timeout-leak defect and one a congested-
// but-healthy worker pool — and then runs the production pipeline exactly
// as Section V describes, through the unified Pipeline API: collect
// goroutine profiles from every instance over the network (with bounded
// retry), group blocked goroutines by operation and source location,
// apply the concentration threshold, rank the survivors by RMS impact
// across the fleet, and fan the sweep out to concurrent sinks — the
// alerting reporter, the cross-sweep trend tracker, and a timestamped
// archive.
//
// The sweeps run against a durable StateStore: after the first sweep the
// program rebuilds the pipeline from the same state directory — a
// simulated process restart — and the next-day sweep still deduplicates
// against the bug DB and resumes the trend history, because both were
// journaled to disk rather than held in memory.
//
// Run:
//
//	go run ./examples/fleetmonitor
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/patterns"
	"repro/internal/report"
	"repro/leakprof"
)

func main() {
	configs := []fleet.ServiceConfig{
		{
			// The defective service: a handler leaks senders when
			// request contexts expire (Listing 8).
			Name: "payments", Instances: 4,
			Pattern:  patterns.TimeoutLeak,
			LeakFile: "services/payments/handler.go", LeakLine: 58,
			LeakPerDay: 900, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 1,
		},
		{
			// A busy but healthy service: its blocked population stays
			// under the threshold, so no alert fires.
			Name: "search", Instances: 3,
			Pattern:  patterns.ContractOutsideLoop,
			LeakFile: "services/search/pool.go", LeakLine: 12,
			LeakPerDay: 40, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 2,
		},
		{
			// A clean service.
			Name: "profiles", Instances: 3,
			BenignGoroutines: 25, Seed: 3,
		},
	}
	f := fleet.New(time.Now(), configs)
	for day := 0; day < 3; day++ {
		f.AdvanceDay()
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()
	fmt.Printf("fleet live: %d instances across %d services\n", len(endpoints), len(configs))

	stateDir, err := os.MkdirTemp("", "fleetmonitor-state-")
	if err != nil {
		fmt.Println("state dir:", err)
		return
	}
	defer os.RemoveAll(stateDir)

	// Day one: a fresh pipeline wired to the durable state store. The
	// report and trend sinks share the store's journal-backed bug DB and
	// tracker, so everything they learn survives this process.
	src := leakprof.StaticEndpoints(endpoints...)
	pipe, reportSink, err := buildPipeline(stateDir)
	if err != nil {
		fmt.Println("pipeline:", err)
		return
	}
	sweep, err := pipe.Sweep(context.Background(), src)
	if err != nil {
		fmt.Println("sweep error:", err)
	}
	fmt.Printf("collected %d goroutine profiles over HTTP\n", sweep.Profiles)
	fmt.Printf("suspicious blocked operations: %d\n", len(sweep.Findings))
	for _, alert := range reportSink.LastAlerts() {
		fmt.Println()
		fmt.Print(alert.Render())
	}

	// "Restart": throw the pipeline away and rebuild everything from the
	// state directory, exactly as a redeployed monitor would at startup.
	pipe, reportSink, err = buildPipeline(stateDir)
	if err != nil {
		fmt.Println("pipeline:", err)
		return
	}
	store, _ := pipe.State()
	if last := store.LastSweep(); last != nil {
		fmt.Printf("\nrestarted from %s: journal records a %s sweep of %d profiles\n",
			stateDir, last.Source, last.Profiles)
	}

	// Day two, post-restart: the defect deduplicates against the
	// journaled bug DB instead of re-alerting, and the trend tracker —
	// resumed with day one's moments — now has enough history to call
	// the growing leak.
	f.AdvanceDay()
	if _, err := pipe.Sweep(context.Background(), src); err != nil {
		fmt.Println("sweep error:", err)
	}
	fmt.Printf("next-day sweep after restart: %d new alerts (existing defect deduplicated via journal)\n",
		len(reportSink.LastAlerts()))
	for _, key := range store.Tracker().Growing() {
		fmt.Printf("trend: growing across sweeps (history spans the restart): %q\n", key)
	}
}

// buildPipeline constructs the monitor's pipeline from the durable state
// directory: the startup path, shared by first boot and restart.
func buildPipeline(stateDir string) (*leakprof.Pipeline, *leakprof.ReportSink, error) {
	pipe := leakprof.New(
		leakprof.WithThreshold(2000),
		leakprof.WithParallelism(8),
		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
		leakprof.WithSharedIntern(0),
		leakprof.WithStateDir(stateDir),
	)
	store, err := pipe.State()
	if err != nil {
		return nil, nil, err
	}
	owners := report.NewOwnership(map[string]string{
		"services/payments/": "payments-oncall",
		"services/search/":   "search-oncall",
	})
	store.Tracker().MinObservations = 2
	reportSink := &leakprof.ReportSink{
		Reporter: &leakprof.Reporter{DB: store.BugDB(), Owners: owners, TopN: 5},
	}
	pipe.AddSinks(reportSink, &leakprof.TrendSink{Tracker: store.Tracker()})
	return pipe, reportSink, nil
}
