// Fleetmonitor: the full LEAKPROF pipeline end to end, over real HTTP.
//
// The program stands up a small simulated fleet — three services, a few
// instances each, one carrying a timeout-leak defect and one a congested-
// but-healthy worker pool — and then runs the production pipeline exactly
// as Section V describes, through the unified Pipeline API: collect
// goroutine profiles from every instance over the network (with bounded
// retry), group blocked goroutines by operation and source location,
// apply the concentration threshold, rank the survivors by RMS impact
// across the fleet, and fan the sweep out to two concurrent sinks — the
// alerting reporter and the cross-sweep trend tracker.
//
// Run:
//
//	go run ./examples/fleetmonitor
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/patterns"
	"repro/internal/report"
	"repro/leakprof"
)

func main() {
	configs := []fleet.ServiceConfig{
		{
			// The defective service: a handler leaks senders when
			// request contexts expire (Listing 8).
			Name: "payments", Instances: 4,
			Pattern:  patterns.TimeoutLeak,
			LeakFile: "services/payments/handler.go", LeakLine: 58,
			LeakPerDay: 900, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 1,
		},
		{
			// A busy but healthy service: its blocked population stays
			// under the threshold, so no alert fires.
			Name: "search", Instances: 3,
			Pattern:  patterns.ContractOutsideLoop,
			LeakFile: "services/search/pool.go", LeakLine: 12,
			LeakPerDay: 40, LeakStartDay: 1, FixDay: -1,
			DeployEveryDays: 1000, BenignGoroutines: 25, Seed: 2,
		},
		{
			// A clean service.
			Name: "profiles", Instances: 3,
			BenignGoroutines: 25, Seed: 3,
		},
	}
	f := fleet.New(time.Now(), configs)
	for day := 0; day < 3; day++ {
		f.AdvanceDay()
	}

	endpoints, shutdown := f.Serve()
	defer shutdown()
	fmt.Printf("fleet live: %d instances across %d services\n", len(endpoints), len(configs))

	// One pipeline, two concurrent sinks: reporting with ownership
	// routing and dedup, plus cross-sweep trend tracking fed by the
	// aggregator's streaming moments. Threshold tuned to the example's
	// scale (the production default is 10K).
	owners := report.NewOwnership(map[string]string{
		"services/payments/": "payments-oncall",
		"services/search/":   "search-oncall",
	})
	reportSink := &leakprof.ReportSink{
		Reporter: &leakprof.Reporter{DB: report.NewDB(), Owners: owners, TopN: 5},
	}
	trend := &leakprof.TrendTracker{MinObservations: 2}
	pipe := leakprof.New(
		leakprof.WithThreshold(2000),
		leakprof.WithParallelism(8),
		leakprof.WithRetry(leakprof.DefaultRetryPolicy),
		leakprof.WithSharedIntern(0),
	).AddSinks(reportSink, &leakprof.TrendSink{Tracker: trend})

	src := leakprof.StaticEndpoints(endpoints...)
	sweep, err := pipe.Sweep(context.Background(), src)
	if err != nil {
		fmt.Println("sweep error:", err)
	}
	fmt.Printf("collected %d goroutine profiles over HTTP\n", sweep.Profiles)
	fmt.Printf("suspicious blocked operations: %d\n", len(sweep.Findings))
	for _, alert := range reportSink.LastAlerts() {
		fmt.Println()
		fmt.Print(alert.Render())
	}

	// A second sweep the next day deduplicates against the bug DB, and
	// the trend tracker — fed raw moments from both sweeps — now has
	// enough history to call the growing leak.
	f.AdvanceDay()
	if _, err := pipe.Sweep(context.Background(), src); err != nil {
		fmt.Println("sweep error:", err)
	}
	fmt.Printf("\nnext-day sweep: %d new alerts (existing defect deduplicated)\n", len(reportSink.LastAlerts()))
	for _, key := range trend.Growing() {
		fmt.Printf("trend: growing across sweeps: %q\n", key)
	}
}
