// CICD: the Fig-3 development-side workflow.
//
// This program walks a stream of pull requests through the paper's CI
// gate: each PR's unit tests run with GOLEAK instrumentation
// (VerifyTestMain semantics); PRs introducing new goroutine leaks are
// rejected; pre-existing leaks ride the suppression list, which owners
// burn down over time.
//
// Run:
//
//	go run ./examples/cicd
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/goleak"
	"repro/internal/patterns"
)

// pullRequest models one code change and the behaviour its tests exhibit.
type pullRequest struct {
	id      string
	pattern *patterns.Pattern // nil: clean change
	legacy  bool              // leak pre-exists (suppressed), not newly introduced
}

func main() {
	// The suppression list seeded by the offline trial run (Section
	// IV-A): the legacy billing worker is a known leaker.
	suppressions := goleak.NewSuppressionList(goleak.Suppression{
		Function: "repro/internal/patterns.worker.listen",
		Reason:   "legacy billing worker — JIRA-4711",
	})

	prs := []pullRequest{
		{id: "PR-101 (clean refactor)"},
		{id: "PR-102 (adds timeout handling — leaks!)", pattern: patterns.TimeoutLeak},
		{id: "PR-103 (touches legacy billing worker)", pattern: patterns.ContractDone, legacy: true},
		{id: "PR-104 (new consumer pool — leaks!)", pattern: patterns.UnclosedRange},
		{id: "PR-105 (clean feature)"},
	}

	for _, pr := range prs {
		fmt.Printf("\n== %s ==\n", pr.id)
		verdict := runCI(pr, suppressions)
		fmt.Println(verdict)
	}

	// The owner of the legacy worker fixes it and removes the entry;
	// from now on the gate protects that code path too.
	fmt.Println("\n== owner fixes the legacy worker, removes suppression ==")
	suppressions.Remove("repro/internal/patterns.worker.listen")
	fmt.Println(runCI(pullRequest{id: "PR-106 (regresses billing worker)", pattern: patterns.ContractDone}, suppressions))
}

// runCI exercises the PR's tests and applies the GOLEAK gate.
func runCI(pr pullRequest, suppressions *goleak.SuppressionList) string {
	baseline := goleak.IgnoreCurrent()

	// "Run the unit tests": a leaky PR's tests strand goroutines.
	var inst *patterns.Instance
	if pr.pattern != nil {
		inst = pr.pattern.Trigger(2)
		if err := patterns.AwaitKind(pr.pattern.Kind, 2, 5*time.Second); err != nil {
			return "CI error: " + err.Error()
		}
		defer inst.Release()
	}

	// The instrumented TestMain: goleak sweeps the address space.
	leaks, err := goleak.Find(baseline, goleak.MaxRetries(2),
		goleak.RetryInterval(time.Millisecond),
		goleak.WithSuppressions(suppressions))
	if err != nil {
		return "CI error: " + err.Error()
	}
	var ours []*goleak.Leak
	for _, l := range leaks {
		if strings.Contains(l.CodeContext().Function, "repro/internal/patterns") {
			ours = append(ours, l)
		}
	}
	if len(ours) == 0 {
		if pr.legacy {
			return "MERGED (lingering goroutines matched the suppression list)"
		}
		return "MERGED (no lingering goroutines)"
	}
	b := &strings.Builder{}
	fmt.Fprintf(b, "REJECTED: %d new leaked goroutine(s):\n", len(ours))
	for _, l := range ours {
		fmt.Fprintf(b, "  [%s] %s\n", l.Kind, l.CodeContext().Function)
	}
	b.WriteString("fix the leak before merging")
	return b.String()
}
