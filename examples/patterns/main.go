// Patterns: every leak pattern from the paper, triggered live.
//
// For each releasable pattern in the catalogue (Listings 1 and 3–9 plus
// the Section VI/VII taxonomies), this program leaks a handful of real
// goroutines, captures the process with the goleak detector, prints the
// blocking classification and stack signature the paper's Fig 4
// describes, and then releases the leak before moving on.
//
// Run:
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/goleak"
	"repro/internal/patterns"
	"repro/internal/stack"
)

func main() {
	fmt.Println("pattern catalogue:", len(patterns.All()), "patterns")
	for _, p := range patterns.All() {
		fmt.Printf("\n== %s (%s) ==\n%s\n", p.Name, p.Category, p.Doc)
		if !p.Releasable {
			fmt.Println("unreleasable by construction (guaranteed partial deadlock); skipping live trigger")
			showSynthetic(p)
			continue
		}

		baseline := goleak.IgnoreCurrent()
		inst := p.Trigger(2)
		if err := patterns.AwaitKind(p.Kind, 2, 5*time.Second); err != nil {
			fmt.Println("warn:", err)
		}
		leaks, err := goleak.Find(baseline, goleak.MaxRetries(0))
		if err != nil {
			panic(err)
		}
		shown := 0
		for _, l := range leaks {
			if !strings.Contains(l.CodeContext().Function, "repro/internal/patterns") || l.Kind != p.Kind {
				continue
			}
			if shown == 0 {
				fmt.Printf("goleak classification: %s\n", l.Kind)
				fmt.Printf("  code context: %s\n", l.CodeContext().Function)
				fmt.Printf("  created by:   %s\n", l.CreationContext().Function)
			}
			shown++
		}
		fmt.Printf("live goroutines leaked and detected: %d\n", shown)

		inst.Release()
		fmt.Println("released: goroutines unblocked and exited")
	}

	// Verify the process ends clean (the unreleasable patterns were
	// never triggered live).
	leaks, err := goleak.Find()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfinal sweep: %d lingering goroutines\n", len(leaks))
}

// showSynthetic prints the stack signature for patterns that cannot be
// safely triggered in-process.
func showSynthetic(p *patterns.Pattern) {
	gs := p.Stacks(1, 1)
	fmt.Printf("synthetic stack signature (state %q):\n", gs[0].State)
	fmt.Print(indent(stack.Format(gs)))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
