package synth

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Packages = 60
	// Inflate concurrency fractions so a small corpus still contains
	// every paradigm.
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.25, 0.25, 0.15
	cfg.Seed = seed
	return cfg
}

func TestGeneratedSourceParses(t *testing.T) {
	c := Generate(smallConfig(1))
	fset := token.NewFileSet()
	files := c.Files()
	if len(files) == 0 {
		t.Fatal("no files generated")
	}
	for _, f := range files {
		if _, err := parser.ParseFile(fset, f.Path, f.Content, 0); err != nil {
			t.Fatalf("generated file %s does not parse: %v\n%s", f.Path, err, f.Content)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	fa, fb := a.Files(), b.Files()
	if len(fa) != len(fb) {
		t.Fatalf("file counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("file %d differs between equal-seed runs", i)
		}
	}
	c := Generate(smallConfig(8))
	if len(c.Files()) == len(fa) && c.Files()[0].Content == fa[0].Content {
		t.Error("different seeds produced identical output")
	}
}

func TestParadigmMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packages = 3000
	c := Generate(cfg)
	counts := map[Paradigm]int{}
	for _, p := range c.Packages {
		counts[p.Paradigm]++
	}
	total := float64(cfg.Packages)
	approx := func(got int, want float64) bool {
		f := float64(got) / total
		return f > want*0.5 && f < want*1.8
	}
	if !approx(counts[ParadigmMP], cfg.FracMP) {
		t.Errorf("MP fraction = %d/%d, want ~%f", counts[ParadigmMP], cfg.Packages, cfg.FracMP)
	}
	if !approx(counts[ParadigmSM], cfg.FracSM) {
		t.Errorf("SM fraction = %d/%d, want ~%f", counts[ParadigmSM], cfg.Packages, cfg.FracSM)
	}
	if !approx(counts[ParadigmBoth], cfg.FracBoth) {
		t.Errorf("Both fraction = %d/%d, want ~%f", counts[ParadigmBoth], cfg.Packages, cfg.FracBoth)
	}
	if counts[ParadigmNone] == 0 {
		t.Error("no concurrency-free packages")
	}
}

func TestSeedsOnlyInMessagePassingPackages(t *testing.T) {
	c := Generate(smallConfig(3))
	seen := 0
	for _, p := range c.Packages {
		if len(p.Seeds) == 0 {
			continue
		}
		seen += len(p.Seeds)
		if p.Paradigm != ParadigmMP && p.Paradigm != ParadigmBoth {
			t.Errorf("package %s (%v) has seeds", p.Name, p.Paradigm)
		}
		for _, s := range p.Seeds {
			if s.Pattern == "" || s.Function == "" || s.File == "" {
				t.Errorf("incomplete seed %+v", s)
			}
			// The planted function must exist in the named file.
			var found bool
			for _, f := range p.Files {
				if f.Path == s.File && strings.Contains(f.Content, s.Function+"(") {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %s/%s not present in source", s.File, s.Function)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no seeds generated")
	}
	if got := len(c.Seeds()); got != seen {
		t.Errorf("Corpus.Seeds() = %d, want %d", got, seen)
	}
}

func TestSeedGroundTruthMix(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Packages = 300
	c := Generate(cfg)
	var leaks, safes int
	for _, s := range c.Seeds() {
		if s.IsLeak {
			leaks++
		} else {
			safes++
		}
	}
	if leaks == 0 || safes == 0 {
		t.Fatalf("degenerate ground truth: %d leaks, %d safes", leaks, safes)
	}
	// Config asks for ~1.2 leaks and ~1.0 negatives per MP package.
	if ratio := float64(leaks) / float64(safes); ratio < 0.8 || ratio > 2.0 {
		t.Errorf("leak/safe ratio = %.2f, expected near 1.2", ratio)
	}
}

func TestELoCCounted(t *testing.T) {
	c := Generate(smallConfig(2))
	for _, p := range c.Packages {
		if p.ELoC <= 0 {
			t.Errorf("package %s has ELoC %d", p.Name, p.ELoC)
		}
	}
	if countELoC("\n// only a comment\n\n") != 0 {
		t.Error("comments counted as effective lines")
	}
	if countELoC("a := 1 // trailing comment\n") != 1 {
		t.Error("code line with trailing comment not counted")
	}
}

func TestTestFilesMarked(t *testing.T) {
	c := Generate(smallConfig(4))
	var tests, sources int
	for _, f := range c.Files() {
		if f.Test {
			tests++
			if !strings.HasSuffix(f.Path, "_test.go") {
				t.Errorf("test file with wrong suffix: %s", f.Path)
			}
		} else {
			sources++
		}
	}
	if tests == 0 {
		t.Error("no test files generated")
	}
	if sources == 0 {
		t.Error("no source files generated")
	}
}

func TestParadigmString(t *testing.T) {
	for p, want := range map[Paradigm]string{
		ParadigmNone: "none", ParadigmMP: "message-passing",
		ParadigmSM: "shared-memory", ParadigmBoth: "both",
		Paradigm(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("Paradigm(%d) = %q, want %q", p, got, want)
		}
	}
}
