package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/patterns"
)

// fileGen accumulates per-package generation state.
type fileGen struct {
	r       *rand.Rand
	pkg     string
	fnCount int
	wrapper bool // whether the asyncRun wrapper was emitted yet
}

func (g *fileGen) nextFn(prefix string) string {
	g.fnCount++
	return fmt.Sprintf("%s%d", prefix, g.fnCount)
}

func (g *fileGen) writeImports(b *strings.Builder, p Paradigm) {
	switch p {
	case ParadigmMP:
		b.WriteString("import (\n\t\"context\"\n\t\"time\"\n)\n\n")
	case ParadigmSM:
		b.WriteString("import \"sync\"\n\n")
	case ParadigmBoth:
		b.WriteString("import (\n\t\"context\"\n\t\"sync\"\n\t\"time\"\n)\n\n")
	}
	// Silence unused-import issues in sparse packages with anchor uses.
	switch p {
	case ParadigmMP:
		b.WriteString("var _ = context.Background\nvar _ = time.Now\n\n")
	case ParadigmSM:
		b.WriteString("var _ sync.Mutex\n\n")
	case ParadigmBoth:
		b.WriteString("var _ = context.Background\nvar _ = time.Now\nvar _ sync.Mutex\n\n")
	}
}

// plainFunc emits concurrency-free business logic.
func (g *fileGen) plainFunc(b *strings.Builder) {
	name := g.nextFn("compute")
	fmt.Fprintf(b, `func %s(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i * %d
	}
	return total
}

`, name, 1+g.r.Intn(9))
}

// chanAlloc emits a channel allocation drawn from Table II's buffer-class
// mix: unbuffered 45%%, size-1 19%%, constant >1 5%%, dynamic 30%%.
func (g *fileGen) chanAlloc(varName string) string {
	switch x := g.r.Float64(); {
	case x < 0.45:
		return fmt.Sprintf("%s := make(chan int)", varName)
	case x < 0.64:
		return fmt.Sprintf("%s := make(chan int, 1)", varName)
	case x < 0.69:
		return fmt.Sprintf("%s := make(chan int, %d)", varName, 2+g.r.Intn(14))
	default:
		return fmt.Sprintf("%s := make(chan int, n)", varName)
	}
}

// selectCases samples a blocking-select case count with Table II's shape:
// P50 = 2, P90 = 3, mode = 2, max 11.
func (g *fileGen) selectCases() int {
	switch x := g.r.Float64(); {
	case x < 0.62:
		return 2
	case x < 0.92:
		return 3
	case x < 0.97:
		return 4
	default:
		return 5 + g.r.Intn(7) // 5..11
	}
}

// mpFuncs emits message-passing functions carrying Table II's feature mix.
func (g *fileGen) mpFuncs(b *strings.Builder, n int) {
	if !g.wrapper {
		// The package-local goroutine wrapper: Table II shows ~32% of
		// goroutine creation goes through wrappers rather than bare go.
		fmt.Fprintf(b, "// asyncRun is this package's goroutine wrapper.\nfunc asyncRun(f func()) {\n\tgo f()\n}\n\n")
		g.wrapper = true
	}
	for i := 0; i < n; i++ {
		switch g.r.Intn(5) {
		case 0:
			g.pipelineFunc(b)
		case 1:
			g.fanInFunc(b)
		case 2:
			g.selectWorker(b)
		case 3:
			g.chanSignatureFunc(b)
		case 4:
			// Ping-pong protocols are realistic but rarer than plain
			// pipelines; the emission rate calibrates the static
			// analyzers' false-positive mass to Table III's band.
			if g.r.Float64() < 0.5 {
				g.pingPongFunc(b)
			} else {
				g.pipelineFunc(b)
			}
		}
	}
}

// pingPongFunc: a correct lock-step protocol (producer waits for an ack
// after every item). Safe, but its pairing depends on loop-carried
// induction that none of the paper's static designs can establish — the
// canonical false-positive generator for Table III.
func (g *fileGen) pingPongFunc(b *strings.Builder) {
	name := g.nextFn("relay")
	fmt.Fprintf(b, `func %s(n int) int {
	ch := make(chan int)
	ack := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
			<-ack
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
		ack <- 1
	}
	return total
}

`, name)
}

// pipelineFunc: producer/consumer with a correctly closed channel.
func (g *fileGen) pipelineFunc(b *strings.Builder) {
	name := g.nextFn("pipeline")
	spawn := "go func() {"
	endSpawn := "}()"
	if g.r.Float64() < 0.32 {
		spawn = "asyncRun(func() {"
		endSpawn = "})"
	}
	fmt.Fprintf(b, `func %s(n int) int {
	%s
	%s
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	%s
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

`, name, g.chanAlloc("ch"), spawn, endSpawn)
}

// fanInFunc: multiple producers, a counting receiver, channel closed.
func (g *fileGen) fanInFunc(b *strings.Builder) {
	name := g.nextFn("fanIn")
	fmt.Fprintf(b, `func %s(n int) int {
	%s
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(v int) {
			ch <- v
		}(i)
	}
	go func() {
		total := 0
		for i := 0; i < n; i++ {
			total += <-ch
		}
		done <- total
	}()
	return <-done
}

`, name, "ch := make(chan int, n)")
}

// selectWorker: a worker with a blocking select (Table II's dominant
// select form) and sometimes a non-blocking one.
func (g *fileGen) selectWorker(b *strings.Builder) {
	name := g.nextFn("worker")
	cases := g.selectCases()
	var chans, decls, arms []string
	for c := 0; c < cases-1; c++ {
		cn := fmt.Sprintf("c%d", c)
		chans = append(chans, cn)
		decls = append(decls, fmt.Sprintf("\t%s := make(chan int, 1)", cn))
		arms = append(arms, fmt.Sprintf("\t\tcase v := <-%s:\n\t\t\ttotal += v", cn))
	}
	nonBlocking := ""
	if g.r.Float64() < 0.26 { // Table II: ~26% of selects are non-blocking
		nonBlocking = "\n\t\tdefault:\n\t\t\treturn total"
	}
	fmt.Fprintf(b, `func %s(done chan int) int {
%s
	for _, c := range []chan int{%s} {
		c <- 1
	}
	total := 0
	for i := 0; i < %d; i++ {
		select {
%s
		case v := <-done:
			return total + v%s
		}
	}
	return total
}

`, name, strings.Join(decls, "\n"), strings.Join(chans, ", "), cases, strings.Join(arms, "\n"), nonBlocking)
}

// chanSignatureFunc: functions with channel parameters/returns (Table II
// counts 2,410 / 1,387 of these).
func (g *fileGen) chanSignatureFunc(b *strings.Builder) {
	name := g.nextFn("stream")
	spawn, endSpawn := "go func() {", "}()"
	if g.r.Float64() < 0.5 {
		spawn, endSpawn = "asyncRun(func() {", "})"
	}
	fmt.Fprintf(b, `func %s(in chan int) chan int {
	out := make(chan int, 1)
	%s
		v, ok := <-in
		if ok {
			out <- v * 2
		}
		close(out)
	%s
	return out
}

`, name, spawn, endSpawn)
}

// smFuncs emits shared-memory functions (mutexes, wait groups).
func (g *fileGen) smFuncs(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		name := g.nextFn("locked")
		fmt.Fprintf(b, `type state%s struct {
	mu sync.Mutex
	n  int
}

func (s *state%s) %s(delta int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += delta
	return s.n
}

`, name, name, name)
	}
}

// testChannelFixtures emits channel-driven test helpers: tests
// synchronise with the code under test over channels and timeouts, which
// is where Table II's test-column channel traffic comes from.
func (g *fileGen) testChannelFixtures(b *strings.Builder, pkg string, n int) {
	for i := 0; i < n; i++ {
		name := g.nextFn("TestAsync" + strings.Title(pkg))
		alloc := "done := make(chan int)"
		if g.r.Float64() < 0.45 {
			alloc = "done := make(chan int, 1)"
		}
		nonBlocking := ""
		if g.r.Float64() < 0.3 {
			nonBlocking = "\n\tselect {\n\tcase extra := <-done:\n\t\tt.Fatalf(\"unexpected extra result %d\", extra)\n\tdefault:\n\t}"
		}
		fmt.Fprintf(b, `func %s(t *testing.T) {
	%s
	go func() {
		done <- compute0(%d)
	}()
	got := <-done
	if got < 0 {
		t.Fatalf("got %%d", got)
	}%s
}

`, name, alloc, 2+i, nonBlocking)
	}
}

// ---- Seed templates: leaky and safe variants of the paper's patterns ----

// seedTemplate renders the source of a planted function; safe variants
// are the "hard negatives" that trip imprecise static analyses.
type seedTemplate struct {
	pattern string
	leaky   func(fn string) string
	safe    func(fn string) string
}

var seedTemplates = []seedTemplate{
	{
		pattern: patterns.PrematureReturn.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s(fail bool) int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	if fail {
		return -1 // premature return: sender leaks
	}
	return <-ch
}

`, fn)
		},
		safe: func(fn string) string {
			// Buffered channel: the send can never block. Analyzers
			// that ignore capacity flag this (false positive).
			return fmt.Sprintf(`func %s(fail bool) int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	if fail {
		return -1
	}
	return <-ch
}

`, fn)
		},
	},
	{
		pattern: patterns.TimeoutLeak.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0 // handler returns; sender leaks
	}
}

`, fn)
		},
		safe: func(fn string) string {
			return fmt.Sprintf(`func %s(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

`, fn)
		},
	},
	{
		pattern: patterns.NCast.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s(items []int) int {
	ch := make(chan int)
	for _, item := range items {
		go func(v int) {
			ch <- v
		}(item)
	}
	return <-ch // n-1 senders leak
}

`, fn)
		},
		safe: func(fn string) string {
			// Capacity len(items): every send unblocks. Requires
			// evaluating a dynamic buffer size to prove safe.
			return fmt.Sprintf(`func %s(items []int) int {
	ch := make(chan int, len(items))
	for _, item := range items {
		go func(v int) {
			ch <- v
		}(item)
	}
	return <-ch
}

`, fn)
		},
	},
	{
		pattern: patterns.DoubleSend.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s(bad bool, ch chan int) {
	if bad {
		ch <- -1 // missing return: falls through to the second send
	}
	ch <- 1
}

`, fn)
		},
		safe: func(fn string) string {
			return fmt.Sprintf(`func %s(bad bool, ch chan int) {
	if bad {
		ch <- -1
		return
	}
	ch <- 1
}

`, fn)
		},
	},
	{
		pattern: patterns.UnclosedRange.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s(items []int, workers int) {
	ch := make(chan int)
	for i := 0; i < workers; i++ {
		go func() {
			for item := range ch {
				_ = item
			}
		}()
	}
	for _, item := range items {
		ch <- item
	}
} // missing close(ch): consumers leak

`, fn)
		},
		safe: func(fn string) string {
			// The close happens inside a helper invoked through a
			// function value: aliasing-blind analyzers miss it.
			return fmt.Sprintf(`func %s(items []int, workers int) {
	ch := make(chan int)
	finish := func() { close(ch) }
	for i := 0; i < workers; i++ {
		go func() {
			for item := range ch {
				_ = item
			}
		}()
	}
	for _, item := range items {
		ch <- item
	}
	finish()
}

`, fn)
		},
	},
	{
		pattern: patterns.TimerLoop.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`func %s() {
	go func() {
		for {
			<-time.After(time.Minute)
		}
	}()
}

`, fn)
		},
		safe: func(fn string) string {
			return fmt.Sprintf(`func %s(done chan int) {
	go func() {
		for {
			select {
			case <-time.After(time.Minute):
			case <-done:
				return
			}
		}
	}()
}

`, fn)
		},
	},
	{
		pattern: patterns.ContractDone.Name,
		leaky: func(fn string) string {
			return fmt.Sprintf(`type worker%s struct {
	ch   chan int
	done chan int
}

func (w worker%s) Start() {
	go func() {
		for {
			select {
			case <-w.ch:
			case <-w.done:
				return
			}
		}
	}()
}

func (w worker%s) Stop() { close(w.done) }

func %s() {
	w := worker%s{ch: make(chan int), done: make(chan int)}
	w.Start()
	// returns without calling Stop: listener leaks
}

`, fn, fn, fn, fn, fn)
		},
		safe: func(fn string) string {
			// Stop is invoked, but through a deferred method value:
			// analyzers without dynamic-dispatch reasoning miss it.
			return fmt.Sprintf(`type worker%s struct {
	ch   chan int
	done chan int
}

func (w worker%s) Start() {
	go func() {
		for {
			select {
			case <-w.ch:
			case <-w.done:
				return
			}
		}
	}()
}

func (w worker%s) Stop() { close(w.done) }

func %s() {
	w := worker%s{ch: make(chan int), done: make(chan int)}
	stop := w.Stop
	defer stop()
	w.Start()
}

`, fn, fn, fn, fn, fn)
		},
	},
}

// plantSeeds appends leak seeds and hard negatives to the file body and
// records their ground truth.
func (g *fileGen) plantSeeds(b *strings.Builder, path string, cfg Config, dist *patterns.Distribution) []Seed {
	var out []Seed
	nLeaks := poissonish(g.r, cfg.LeakSeedsPerMPPackage)
	nSafe := poissonish(g.r, cfg.HardNegativesPerMPPackage)
	for i := 0; i < nLeaks; i++ {
		tmpl := g.templateFor(dist.Sample(g.r))
		fn := g.nextFn("leaky")
		b.WriteString(tmpl.leaky(fn))
		out = append(out, Seed{Pattern: tmpl.pattern, File: path, Function: fn, IsLeak: true})
	}
	for i := 0; i < nSafe; i++ {
		tmpl := seedTemplates[g.r.Intn(len(seedTemplates))]
		fn := g.nextFn("tricky")
		b.WriteString(tmpl.safe(fn))
		out = append(out, Seed{Pattern: tmpl.pattern, File: path, Function: fn, IsLeak: false})
	}
	return out
}

// templateFor maps a sampled runtime pattern onto the closest source
// template (a few runtime-only patterns share a source shape).
func (g *fileGen) templateFor(p *patterns.Pattern) seedTemplate {
	name := p.Name
	switch name {
	case patterns.MissingReceiver.Name, patterns.ComplexState.Name, patterns.NilSend.Name:
		name = patterns.PrematureReturn.Name
	case patterns.NilReceive.Name:
		name = patterns.UnclosedRange.Name
	case patterns.ContractContext.Name, patterns.ContractOutsideLoop.Name,
		patterns.LoopNoEscape.Name, patterns.EmptySelect.Name:
		name = patterns.ContractDone.Name
	}
	for _, t := range seedTemplates {
		if t.pattern == name {
			return t
		}
	}
	return seedTemplates[0]
}

// poissonish draws a small non-negative count with the given mean using a
// geometric-ish scheme adequate for seeding.
func poissonish(r *rand.Rand, mean float64) int {
	n := int(mean)
	frac := mean - float64(n)
	if r.Float64() < frac {
		n++
	}
	return n
}
