package synth

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// TestGeneratedSourceTypeChecks goes beyond parsing: a sample of
// generated packages must pass the Go type checker, proving the corpus
// is semantically valid Go (channel element types line up, imports are
// used, planted functions compile). This is what makes the static-
// analyzer precision numbers meaningful — the analyzers see real
// programs, not pseudo-code.
func TestGeneratedSourceTypeChecks(t *testing.T) {
	cfg := smallConfig(21)
	cfg.Packages = 30
	corpus := Generate(cfg)

	checked := 0
	for _, pkg := range corpus.Packages {
		// Prioritise MP packages (they carry the interesting code) but
		// check a few of each paradigm.
		if checked >= 12 && pkg.Paradigm == ParadigmNone {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, f := range pkg.Files {
			if f.Test {
				continue // test files need the testing package; checked below
			}
			parsed, err := parser.ParseFile(fset, f.Path, f.Content, 0)
			if err != nil {
				t.Fatalf("%s: parse: %v", f.Path, err)
			}
			files = append(files, parsed)
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		if _, err := conf.Check(pkg.Name, fset, files, nil); err != nil {
			t.Errorf("package %s fails type check: %v", pkg.Name, err)
		}
		checked++
		if checked >= 20 {
			break
		}
	}
	if checked < 5 {
		t.Fatalf("only %d packages type-checked", checked)
	}
}

func TestWriteTree(t *testing.T) {
	cfg := smallConfig(22)
	cfg.Packages = 10
	corpus := Generate(cfg)
	dir := t.TempDir()
	n, err := corpus.WriteTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(corpus.Files()) {
		t.Errorf("wrote %d files, corpus has %d", n, len(corpus.Files()))
	}
	// Spot-check one file landed with its content.
	f := corpus.Files()[0]
	body, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(f.Path)))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != f.Content {
		t.Error("content mismatch on disk")
	}
}
