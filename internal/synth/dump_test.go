package synth

import (
	"strings"
	"testing"

	"repro/internal/stack"
)

func TestDumpRoundTripsThroughScanner(t *testing.T) {
	cfg := DumpConfig{Benign: 37, LeakClusters: 3, ClusterSize: 50, Seed: 7}
	dump := Dump(cfg)

	sc := stack.NewScanner(strings.NewReader(dump))
	blockedByLoc := map[string]int{}
	total := 0
	for sc.Scan() {
		total++
		if op, ok := sc.Goroutine().BlockedChannelOp(); ok {
			blockedByLoc[op.Location]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if total != cfg.Goroutines() {
		t.Fatalf("scanned %d goroutines, want %d", total, cfg.Goroutines())
	}
	if len(blockedByLoc) != cfg.LeakClusters {
		t.Fatalf("blocked locations = %v, want %d clusters", blockedByLoc, cfg.LeakClusters)
	}
	for loc, n := range blockedByLoc {
		if n != cfg.ClusterSize {
			t.Errorf("cluster at %s has %d goroutines, want %d", loc, n, cfg.ClusterSize)
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	cfg := DumpConfig{Benign: 10, LeakClusters: 2, ClusterSize: 5, Seed: 3}
	if Dump(cfg) != Dump(cfg) {
		t.Error("Dump is not deterministic under a fixed seed")
	}
}
