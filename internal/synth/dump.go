package synth

import (
	"math/rand"
	"strings"

	"repro/internal/patterns"
	"repro/internal/stack"
)

// DumpConfig sizes a synthetic debug=2 goroutine dump: the profile a
// large leaking production instance would serve. The shape mirrors what
// LEAKPROF collects — a benign background population drawn from the
// Table-IV state mix plus a few massive clusters of identical blocked
// stacks, one per injected leak site.
type DumpConfig struct {
	// Benign is the healthy background goroutine count.
	Benign int
	// LeakClusters is the number of distinct leak sites.
	LeakClusters int
	// ClusterSize is the blocked-goroutine count per site.
	ClusterSize int
	// Seed drives the benign-state mix.
	Seed int64
}

// Goroutines returns the total goroutine count the dump will contain.
func (c DumpConfig) Goroutines() int {
	return c.Benign + c.LeakClusters*c.ClusterSize
}

// Dump renders the synthetic profile in the runtime's debug=2 text
// encoding, for exercising the parse/scan/aggregate pipeline on
// production-shaped input.
func Dump(cfg DumpConfig) string {
	pats := []*patterns.Pattern{
		patterns.TimeoutLeak, patterns.NCast, patterns.PrematureReturn,
		patterns.ContractDone, patterns.UnclosedRange,
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	b.WriteString(stack.Format(patterns.BenignStacks(r, 1, cfg.Benign)))
	id := int64(cfg.Benign + 1)
	for c := 0; c < cfg.LeakClusters; c++ {
		gs := pats[c%len(pats)].Stacks(id, cfg.ClusterSize)
		patterns.Relocate(gs, dumpLeakFile(c), 40+c)
		id += int64(cfg.ClusterSize)
		b.WriteByte('\n')
		b.WriteString(stack.Format(gs))
	}
	return b.String()
}

// dumpLeakFile names cluster c's source file, the location LEAKPROF
// groups on.
func dumpLeakFile(c int) string {
	return "services/svc" + string(rune('a'+c%26)) + "/handler.go"
}
