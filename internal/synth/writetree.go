package synth

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteTree materialises the corpus on disk under root, one directory
// per package: the layout cmd/gofeatures, cmd/rangelint and external
// tools consume. Returns the number of files written.
func (c *Corpus) WriteTree(root string) (int, error) {
	n := 0
	for _, pkg := range c.Packages {
		for _, f := range pkg.Files {
			path := filepath.Join(root, filepath.FromSlash(f.Path))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return n, fmt.Errorf("synth: creating %s: %w", filepath.Dir(path), err)
			}
			if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
				return n, fmt.Errorf("synth: writing %s: %w", path, err)
			}
			n++
		}
	}
	return n, nil
}
