// Package synth generates a synthetic Go monorepo: real, parseable Go
// source organised into packages whose concurrency-feature mix matches the
// distributions Uber reports for its monorepo (Tables I and II of the
// paper), with labelled goroutine-leak seeds drawn from the paper's
// taxonomy (Section VI).
//
// The generator substitutes for the proprietary 75-MLoC monorepo: every
// consumer of the corpus — the feature scanner (Table I/II), the static
// baseline analyzers (Table III), the retroactive GOLEAK study (Fig 5) —
// operates on syntax or on executed leak patterns, so a corpus with the
// same feature distributions and genuine leaky/non-leaky channel protocols
// exercises identical code paths.
//
// Generation is deterministic under a seed.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/patterns"
)

// Paradigm classifies a package's concurrency style (Table I).
type Paradigm int

const (
	// ParadigmNone uses no concurrency.
	ParadigmNone Paradigm = iota
	// ParadigmMP uses message passing only.
	ParadigmMP
	// ParadigmSM uses shared memory only.
	ParadigmSM
	// ParadigmBoth uses both.
	ParadigmBoth
)

// String names the paradigm.
func (p Paradigm) String() string {
	switch p {
	case ParadigmNone:
		return "none"
	case ParadigmMP:
		return "message-passing"
	case ParadigmSM:
		return "shared-memory"
	case ParadigmBoth:
		return "both"
	}
	return "unknown"
}

// File is one generated source file.
type File struct {
	// Path is the repo-relative path, e.g. "svc/pay042/worker.go".
	Path string
	// Content is the complete Go source.
	Content string
	// Test marks _test.go files.
	Test bool
}

// Seed is one planted defect (or hard negative) with ground truth.
type Seed struct {
	// Pattern is the planted pattern's registry name.
	Pattern string
	// File is the repo-relative path of the planted function.
	File string
	// Function is the planted function's name.
	Function string
	// IsLeak is the ground truth: true for a real leak, false for a
	// "hard negative" — code that resembles the leak but is safe, the
	// fodder on which imprecise static analyses produce false positives.
	IsLeak bool
}

// Package is one generated package with its metadata.
type Package struct {
	// Name is the package name (also its directory).
	Name string
	// Paradigm is the concurrency classification.
	Paradigm Paradigm
	// Files are the sources.
	Files []File
	// Seeds are the planted defects and hard negatives.
	Seeds []Seed
	// ELoC is the effective (non-blank, non-comment) line count.
	ELoC int
}

// Corpus is a generated monorepo.
type Corpus struct {
	// Packages in generation order.
	Packages []Package
}

// Seeds returns all planted seeds across the corpus.
func (c *Corpus) Seeds() []Seed {
	var out []Seed
	for _, p := range c.Packages {
		out = append(out, p.Seeds...)
	}
	return out
}

// Files returns all files across the corpus.
func (c *Corpus) Files() []File {
	var out []File
	for _, p := range c.Packages {
		out = append(out, p.Files...)
	}
	return out
}

// Config controls generation. The zero value is unusable; use
// DefaultConfig and override.
type Config struct {
	// Packages is the total number of packages. Uber has 119,816; the
	// default scales 1:600 to ~200.
	Packages int
	// Paradigm fractions (Table I): of all packages, which fraction is
	// MP-only, SM-only, both. The remainder has no concurrency.
	FracMP, FracSM, FracBoth float64
	// LeakSeedsPerMPPackage is the expected number of planted leaks per
	// message-passing package.
	LeakSeedsPerMPPackage float64
	// HardNegativesPerMPPackage is the expected number of planted safe
	// look-alikes per message-passing package.
	HardNegativesPerMPPackage float64
	// Seed is the PRNG seed.
	Seed int64
}

// DefaultConfig mirrors Table I's package-paradigm fractions:
// MP-only (4,699-2,416)/119,816 ≈ 1.9%, SM-only (6,627-2,416)/119,816 ≈
// 3.5%, both 2,416/119,816 ≈ 2.0%.
func DefaultConfig() Config {
	return Config{
		Packages:                  200,
		FracMP:                    0.019,
		FracSM:                    0.035,
		FracBoth:                  0.020,
		LeakSeedsPerMPPackage:     1.2,
		HardNegativesPerMPPackage: 1.0,
		Seed:                      1,
	}
}

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	r := rand.New(rand.NewSource(cfg.Seed))
	leakDist := patterns.GoleakTaxonomy()
	c := &Corpus{}
	for i := 0; i < cfg.Packages; i++ {
		name := fmt.Sprintf("svc%03d", i)
		paradigm := pickParadigm(r, cfg)
		pkg := genPackage(r, name, paradigm, cfg, leakDist)
		c.Packages = append(c.Packages, pkg)
	}
	return c
}

func pickParadigm(r *rand.Rand, cfg Config) Paradigm {
	x := r.Float64()
	switch {
	case x < cfg.FracMP:
		return ParadigmMP
	case x < cfg.FracMP+cfg.FracSM:
		return ParadigmSM
	case x < cfg.FracMP+cfg.FracSM+cfg.FracBoth:
		return ParadigmBoth
	default:
		return ParadigmNone
	}
}

func genPackage(r *rand.Rand, name string, paradigm Paradigm, cfg Config, leakDist *patterns.Distribution) Package {
	pkg := Package{Name: name, Paradigm: paradigm}
	g := &fileGen{r: r, pkg: name}

	nSource := 1 + r.Intn(3)
	for fi := 0; fi < nSource; fi++ {
		var b strings.Builder
		fmt.Fprintf(&b, "// Code generated by repro/internal/synth; package %s.\npackage %s\n\n", name, name)
		g.writeImports(&b, paradigm)
		// Plain business-logic functions pad every package.
		for fn := 0; fn < 2+r.Intn(4); fn++ {
			g.plainFunc(&b)
		}
		switch paradigm {
		case ParadigmMP, ParadigmBoth:
			g.mpFuncs(&b, 2+r.Intn(3))
			if paradigm == ParadigmBoth {
				g.smFuncs(&b, 1+r.Intn(2))
			}
		case ParadigmSM:
			g.smFuncs(&b, 2+r.Intn(3))
		}
		path := fmt.Sprintf("%s/file%d.go", name, fi)
		// Plant seeds only in MP-capable packages, on the last file.
		if fi == nSource-1 && (paradigm == ParadigmMP || paradigm == ParadigmBoth) {
			for _, s := range g.plantSeeds(&b, path, cfg, leakDist) {
				pkg.Seeds = append(pkg.Seeds, s)
			}
		}
		pkg.Files = append(pkg.Files, File{Path: path, Content: b.String()})
	}
	// A test file per package, probabilistically (142K test files vs 260K
	// source files in Table I ≈ 0.55 per source file). Table II shows
	// tests use channels heavily themselves (sends 3,440; receives
	// 6,586; selects 1,395), so MP-package tests exercise channel
	// fixtures, not just plain assertions.
	if r.Float64() < 0.55 {
		var b strings.Builder
		fmt.Fprintf(&b, "package %s\n\nimport \"testing\"\n\n", name)
		for ti := 0; ti < 1+r.Intn(3); ti++ {
			fmt.Fprintf(&b, "func Test%s%d(t *testing.T) {\n\tif compute%d(%d) < 0 {\n\t\tt.Fatal(\"negative\")\n\t}\n}\n\n",
				strings.Title(name), ti, ti%2, ti)
		}
		if paradigm == ParadigmMP || paradigm == ParadigmBoth {
			g.testChannelFixtures(&b, name, 1+r.Intn(2))
		}
		pkg.Files = append(pkg.Files, File{Path: fmt.Sprintf("%s/file0_test.go", name), Content: b.String(), Test: true})
	}
	for i := range pkg.Files {
		pkg.ELoC += countELoC(pkg.Files[i].Content)
	}
	return pkg
}

// countELoC counts effective lines: non-blank, non-comment-only.
func countELoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}
