package gprofile

import (
	"net/http"
	"runtime"
	"strconv"

	"repro/internal/stack"
)

// Handler serves goroutine profiles for the current process in the pprof
// text encodings. Mount it at /debug/pprof/goroutine:
//
//	mux.Handle("/debug/pprof/goroutine", gprofile.Handler{})
//
// ?debug=2 (the LEAKPROF input) returns the full stack dump; ?debug=1
// returns the aggregated form. As the paper notes (Section V-A), merely
// enabling the endpoint costs nothing: work happens only when a profile is
// requested.
type Handler struct {
	// Stacks overrides the stack source; nil means the live process.
	// The fleet simulator injects each simulated instance's synthetic
	// goroutine population here.
	Stacks func() []*stack.Goroutine
}

// ServeHTTP implements http.Handler.
func (h Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	debug, _ := strconv.Atoi(r.URL.Query().Get("debug"))
	gs, err := h.snapshot()
	if err != nil {
		http.Error(w, "capturing stacks: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch debug {
	case 2:
		_, _ = w.Write([]byte(stack.Format(gs)))
	default:
		_, _ = w.Write([]byte(Aggregate(gs).Format()))
	}
}

func (h Handler) snapshot() ([]*stack.Goroutine, error) {
	if h.Stacks != nil {
		return h.Stacks(), nil
	}
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return stack.Parse(string(buf[:n]))
		}
		buf = make([]byte, 2*len(buf))
	}
}
