package gprofile

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/stack"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snaps := []*Snapshot{
		{
			Service: "pay", Instance: "i1",
			Goroutines: []*stack.Goroutine{
				mkGoroutine(1, "running", "pay.handler", "/pay/h.go", 4),
			},
			PreAggregated: map[stack.BlockedOp]int{
				{Op: "send", Function: "pay.leak", Location: "/pay/l.go:9"}:      3,
				{Op: "select", Function: "pay.worker", Location: "/pay/w.go:22"}: 2,
			},
		},
		{
			Service: "search", Instance: "host/02", // slash sanitised in filename
			Goroutines: []*stack.Goroutine{
				mkGoroutine(5, "IO wait", "search.read", "/s/r.go", 7),
			},
		},
	}
	if err := SaveDir(dir, snaps); err != nil {
		t.Fatal(err)
	}

	loaded, errs, err := LoadDir(dir, time.Unix(50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("member errors: %v", errs)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d snapshots", len(loaded))
	}
	byService := map[string]*Snapshot{}
	for _, s := range loaded {
		byService[s.Service] = s
		if !s.TakenAt.Equal(time.Unix(50, 0)) {
			t.Errorf("timestamp = %v", s.TakenAt)
		}
	}
	pay := byService["pay"]
	if pay == nil {
		t.Fatal("pay snapshot missing")
	}
	// The pre-aggregated clusters come back as count-annotated records —
	// one physical record per cluster — and the counts must survive
	// through CountByLocation via Goroutine.Multiplicity.
	counts := pay.CountByLocation()
	send := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:9"}
	sel := stack.BlockedOp{Op: "select", Function: "pay.worker", Location: "/pay/w.go:22"}
	if counts[send] != 3 || counts[sel] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if len(pay.Goroutines) != 1+1+1 {
		t.Errorf("pay goroutines = %d", len(pay.Goroutines))
	}
	total := 0
	for _, g := range pay.Goroutines {
		total += g.Multiplicity()
	}
	if total != 1+3+2 {
		t.Errorf("total multiplicity = %d", total)
	}
}

func TestLoadDirToleratesCorruptMember(t *testing.T) {
	dir := t.TempDir()
	good := "goroutine 1 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	// A file the parser rejects outright is hard to construct (the
	// parser is lenient); an unreadable file exercises the error path.
	bad := filepath.Join(dir, "svc_i2.txt")
	if err := os.WriteFile(bad, []byte(good), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.ReadFile(bad); err == nil {
		t.Skip("running as a user that ignores file modes")
	}
	snaps, errs, err := LoadDir(dir, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(errs) != 1 {
		t.Errorf("snaps = %d, errs = %v", len(snaps), errs)
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, _, err := LoadDir("/does/not/exist", time.Now()); err == nil {
		t.Error("missing directory should error")
	}
}
