package gprofile

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/stack"
)

func clusterDump(t *testing.T) (string, int) {
	t.Helper()
	var gs []*stack.Goroutine
	id := int64(1)
	add := func(state, fn, file string, line int, wait time.Duration, n int) {
		for i := 0; i < n; i++ {
			gs = append(gs, &stack.Goroutine{
				ID: id, State: state, WaitTime: wait,
				Frames: []stack.Frame{{Function: fn, File: file, Line: line, Offset: 0x2b}},
			})
			id++
		}
	}
	add("chan send", "svc.leak", "/svc/l.go", 5, 5*time.Minute, 40)
	add("chan receive (nil chan)", "svc.dead", "/svc/d.go", 9, 0, 7)
	add("select", "svc.fan", "/svc/f.go", 12, 2*time.Hour, 13)
	add("IO wait", "net.poll", "/net/fd.go", 100, 0, 25) // not channel-blocked
	add("running", "svc.h", "/svc/h.go", 1, 0, 5)
	return stack.Format(gs), len(gs)
}

// TestScanSnapshotMatchesParsePath asserts the streaming aggregation is
// observationally identical to parse-then-count: same CountByLocation,
// same per-op pre-aggregates including wait durations.
func TestScanSnapshotMatchesParsePath(t *testing.T) {
	dump, total := clusterDump(t)
	at := time.Unix(7, 0)

	parsed, err := ParseSnapshot("svc", "i1", at, dump)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := ScanSnapshot("svc", "i1", at, strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}

	if scanned.Service != "svc" || scanned.Instance != "i1" || !scanned.TakenAt.Equal(at) {
		t.Errorf("metadata = %+v", scanned)
	}
	if len(scanned.Goroutines) != 0 {
		t.Errorf("ScanSnapshot retained %d goroutine records", len(scanned.Goroutines))
	}
	if scanned.TotalGoroutines != total || scanned.NumGoroutines() != total {
		t.Errorf("total = %d (NumGoroutines %d), want %d",
			scanned.TotalGoroutines, scanned.NumGoroutines(), total)
	}

	if got, want := scanned.CountByLocation(), parsed.CountByLocation(); !reflect.DeepEqual(got, want) {
		t.Errorf("CountByLocation diverges:\nscan:  %+v\nparse: %+v", got, want)
	}

	// Wait durations must be preserved in the pre-aggregated keys so
	// duration filters see them.
	var sawWait bool
	for op := range scanned.PreAggregated {
		if op.WaitTime == int64(5*time.Minute) && op.Location == "/svc/l.go:5" {
			sawWait = true
		}
	}
	if !sawWait {
		t.Errorf("wait durations lost in pre-aggregates: %+v", scanned.PreAggregated)
	}
}

func TestScanSnapshotEmptyBody(t *testing.T) {
	snap, err := ScanSnapshot("svc", "i1", time.Unix(0, 0), strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if snap.TotalGoroutines != 0 || len(snap.PreAggregated) != 0 {
		t.Errorf("empty body produced %+v", snap)
	}
}

func TestScanSnapshotResyncsPastMalformedMembers(t *testing.T) {
	// A header with brackets missing the closing ']' is the one malformed
	// member shape; the scan resyncs at the next well-formed header and
	// reports the loss on the snapshot instead of erroring.
	dump := "goroutine 8 [chan send:\nmain.torn()\n\t/t/t.go:1 +0x1\n" +
		"goroutine 9 [chan send]:\nmain.ok()\n\t/ok/ok.go:2 +0x2\n"
	snap, err := ScanSnapshot("svc", "i1", time.Unix(0, 0), strings.NewReader(dump))
	if err != nil {
		t.Fatalf("resynced dump errored: %v", err)
	}
	if snap.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", snap.Malformed)
	}
	if snap.TotalGoroutines != 1 {
		t.Errorf("TotalGoroutines = %d, want 1 (the salvaged member)", snap.TotalGoroutines)
	}
	var salvaged bool
	for op, n := range snap.CountByLocation() {
		if op.Location == "/ok/ok.go:2" && n == 1 {
			salvaged = true
		}
	}
	if !salvaged {
		t.Errorf("post-corruption member not salvaged: %+v", snap.PreAggregated)
	}
}

func TestScanSnapshotPropagatesReadError(t *testing.T) {
	// Reader failures (a truncated transfer) still error, with the
	// instance named for the sweep's failure report.
	_, err := ScanSnapshot("svc", "i1", time.Unix(0, 0), failingReader{})
	if err == nil {
		t.Fatal("reader failure did not error")
	}
	if !strings.Contains(err.Error(), "svc/i1") {
		t.Errorf("error lacks instance context: %v", err)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) {
	return 0, errors.New("synthetic read failure")
}
