// Package gprofile implements the goroutine-profile formats served by the
// Go pprof endpoint and a self-contained HTTP handler equivalent to
// net/http/pprof's /debug/pprof/goroutine, built directly on the runtime
// Stacks API.
//
// LEAKPROF (Section V of the paper) consumes these profiles: every service
// instance exposes the endpoint, the collector fetches a snapshot per
// instance per day, and the analyzer inspects the parsed goroutines.
//
// Two text encodings exist:
//
//   - debug=2: the full stack dump, identical to runtime.Stack output with
//     per-goroutine state headers. This is the LEAKPROF input because it
//     carries the blocking state ("chan send", "select", ...).
//   - debug=1: the aggregated form, one record per unique stack with an
//     occurrence count ("N @ pc1 pc2 ..." followed by symbolised frames).
//     It is cheaper to transfer but drops the state string.
package gprofile

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stack"
)

// Record is one aggregated stack in a debug=1 profile: Count goroutines
// share the identical call stack.
type Record struct {
	// Count is the number of goroutines with this stack.
	Count int
	// Frames is the shared call stack, leaf first.
	Frames []stack.Frame
}

// Profile is a parsed debug=1 goroutine profile.
type Profile struct {
	// Total is the process-wide goroutine count from the header line.
	Total int
	// Records are the aggregated stacks, in file order.
	Records []Record
}

// Snapshot is one instance's goroutine profile as LEAKPROF consumes it:
// collection metadata plus the goroutine population in one of two forms —
// fully parsed records (Goroutines) or compact blocked-operation counts
// (PreAggregated). ScanSnapshot, the streaming collection path, produces
// only the compact form.
type Snapshot struct {
	// Service is the owning service name.
	Service string
	// Instance identifies the program instance (host, task id, or URL).
	Instance string
	// TakenAt is the collection timestamp.
	TakenAt time.Time
	// Goroutines are all goroutines in the instance at collection time.
	// Empty for snapshots built by ScanSnapshot, which aggregates while
	// scanning instead of retaining records.
	Goroutines []*stack.Goroutine
	// PreAggregated carries blocked-operation counts aggregated at the
	// source: ScanSnapshot builds them while streaming the profile body,
	// and large-scale simulators use them instead of materialising
	// millions of identical records. Wait durations are preserved in the
	// key so duration-sensitive filters still apply; CountByLocation and
	// the analyzer fold them away when grouping. Both representations
	// may coexist and are merged by every consumer.
	PreAggregated map[stack.BlockedOp]int
	// TotalGoroutines is the number of goroutines scanned, including
	// unblocked ones, when the snapshot was built by ScanSnapshot; zero
	// for snapshots carrying full records (use len(Goroutines)).
	TotalGoroutines int
	// Malformed counts goroutine members the scan dropped while
	// resyncing past corrupt headers (stack.Scanner.Malformed): the
	// per-dump diagnostic that a profile was salvaged rather than
	// decoded cleanly. Zero for a clean scan.
	Malformed int
}

// NumGoroutines returns the instance's goroutine population size in
// either representation.
func (s *Snapshot) NumGoroutines() int {
	if s.TotalGoroutines > 0 {
		return s.TotalGoroutines
	}
	n := len(s.Goroutines)
	for _, c := range s.PreAggregated {
		n += c
	}
	return n
}

// Aggregate folds full goroutine records into debug=1 form, grouping by
// identical frame sequences. Record order is deterministic: descending
// count, then lexicographic leaf function.
func Aggregate(gs []*stack.Goroutine) *Profile {
	type key string
	counts := make(map[key]*Record)
	for _, g := range gs {
		var sb strings.Builder
		for _, f := range g.Frames {
			sb.WriteString(f.Function)
			sb.WriteByte('|')
			sb.WriteString(f.File)
			sb.WriteByte('|')
			sb.WriteString(strconv.Itoa(f.Line))
			sb.WriteByte(';')
		}
		k := key(sb.String())
		if r, ok := counts[k]; ok {
			r.Count++
			continue
		}
		frames := make([]stack.Frame, len(g.Frames))
		copy(frames, g.Frames)
		counts[k] = &Record{Count: 1, Frames: frames}
	}
	p := &Profile{Total: len(gs)}
	for _, r := range counts {
		p.Records = append(p.Records, *r)
	}
	sort.Slice(p.Records, func(i, j int) bool {
		a, b := p.Records[i], p.Records[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return leafFn(a) < leafFn(b)
	})
	return p
}

func leafFn(r Record) string {
	if len(r.Frames) == 0 {
		return ""
	}
	return r.Frames[0].Function
}

// Format renders the profile in the debug=1 text encoding. Synthetic
// program counters are assigned per unique (function, line) pair since the
// structured form does not carry real addresses.
func (p *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goroutine profile: total %d\n", p.Total)
	pcs := map[string]uint64{}
	nextPC := uint64(0x400000)
	pcOf := func(f stack.Frame) uint64 {
		k := f.Function + "|" + f.File + "|" + strconv.Itoa(f.Line)
		if pc, ok := pcs[k]; ok {
			return pc
		}
		nextPC += 0x40
		pcs[k] = nextPC
		return nextPC
	}
	for _, r := range p.Records {
		fmt.Fprintf(&b, "%d @", r.Count)
		for _, f := range r.Frames {
			fmt.Fprintf(&b, " %#x", pcOf(f))
		}
		b.WriteByte('\n')
		for _, f := range r.Frames {
			fmt.Fprintf(&b, "#\t%#x\t%s+%#x\t%s:%d\n",
				pcOf(f), f.Function, f.Offset, f.File, f.Line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseProfile1 decodes the debug=1 text encoding produced by Format or by
// the real pprof endpoint.
func ParseProfile1(text string) (*Profile, error) {
	p := &Profile{}
	lines := strings.Split(text, "\n")
	var cur *Record
	for i, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		switch {
		case strings.HasPrefix(line, "goroutine profile: total "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "goroutine profile: total "))
			if err != nil {
				return nil, fmt.Errorf("gprofile: bad total on line %d: %w", i+1, err)
			}
			p.Total = n
		case line == "":
			if cur != nil {
				p.Records = append(p.Records, *cur)
				cur = nil
			}
		case strings.HasPrefix(line, "#"):
			if cur == nil {
				return nil, fmt.Errorf("gprofile: frame line %d outside record", i+1)
			}
			f, err := parseFrameLine(line)
			if err != nil {
				return nil, fmt.Errorf("gprofile: line %d: %w", i+1, err)
			}
			cur.Frames = append(cur.Frames, f)
		default:
			// "N @ pc pc pc"
			at := strings.Index(line, " @")
			if at < 0 {
				continue // tolerate unknown annotations
			}
			n, err := strconv.Atoi(line[:at])
			if err != nil {
				return nil, fmt.Errorf("gprofile: bad count on line %d: %w", i+1, err)
			}
			if cur != nil {
				p.Records = append(p.Records, *cur)
			}
			cur = &Record{Count: n}
		}
	}
	if cur != nil {
		p.Records = append(p.Records, *cur)
	}
	return p, nil
}

// parseFrameLine parses "#\t0x4004c0\tmain.leak.func1+0x28\t/src/main.go:12".
func parseFrameLine(line string) (stack.Frame, error) {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	if len(fields) < 3 {
		return stack.Frame{}, fmt.Errorf("malformed frame line %q", line)
	}
	var f stack.Frame
	fn := fields[1]
	if plus := strings.LastIndexByte(fn, '+'); plus > 0 {
		if off, err := strconv.ParseUint(strings.TrimPrefix(fn[plus+1:], "0x"), 16, 64); err == nil {
			f.Offset = off
			fn = fn[:plus]
		}
	}
	f.Function = fn
	loc := fields[2]
	colon := strings.LastIndexByte(loc, ':')
	if colon <= 0 {
		return stack.Frame{}, fmt.Errorf("malformed location in %q", line)
	}
	n, err := strconv.Atoi(loc[colon+1:])
	if err != nil {
		return stack.Frame{}, fmt.Errorf("malformed line number in %q", line)
	}
	f.File, f.Line = loc[:colon], n
	return f, nil
}

// ParseSnapshot decodes a debug=2 profile body into a Snapshot with fully
// parsed goroutine records. Collection paths that only need blocked-count
// aggregates should use ScanSnapshot, which streams the body instead of
// materialising it.
func ParseSnapshot(service, instance string, takenAt time.Time, body string) (*Snapshot, error) {
	gs, err := stack.Parse(body)
	if err != nil {
		return nil, fmt.Errorf("gprofile: parsing %s/%s: %w", service, instance, err)
	}
	return &Snapshot{Service: service, Instance: instance, TakenAt: takenAt, Goroutines: gs}, nil
}

// ScanSnapshot streams a debug=2 profile body and returns a compact
// snapshot: per-(operation, location) blocked counts plus the total
// goroutine count, built one goroutine at a time without ever holding the
// body or the parsed records in memory. Wait durations stay in the
// aggregation key (they are coarse, so cardinality is low) so criterion-2
// filters that inspect blocking durations behave exactly as on full
// records. This is the LEAKPROF collection path: peak memory per profile
// is O(distinct blocked locations), not O(goroutines).
func ScanSnapshot(service, instance string, takenAt time.Time, r io.Reader) (*Snapshot, error) {
	return ScanSnapshotWith(service, instance, takenAt, r, nil)
}

// ScanSnapshotWith is ScanSnapshot with a shared intern pool: strings the
// scan interns (function names, file paths, state annotations) are drawn
// from pool when non-nil, so a sweep's many fetches stop re-interning the
// fleet's identical strings once per Scanner.
func ScanSnapshotWith(service, instance string, takenAt time.Time, r io.Reader, pool *stack.InternPool) (*Snapshot, error) {
	snap, err := scanSnapshotPartial(service, instance, takenAt, r, pool)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// scannerPool recycles stack.Scanners (a 64KiB line buffer plus warm
// intern/header/location caches each) across profile scans. The ingest
// hot path runs one scan per POSTed dump; without pooling every dump
// pays the buffer allocation and re-interns the fleet's identical
// strings from scratch.
var scannerPool sync.Pool

// scanSnapshotPartial is the shared scan-and-aggregate loop behind
// ScanSnapshotWith and the archive replay path. Unlike the exported
// entry point it keeps what it scanned: on a mid-body error the partial
// snapshot (records decoded before the corruption) is returned alongside
// the error — nil only when nothing was salvaged — so archive replay can
// keep a torn member's valid prefix. Callers that keep the partial are
// responsible for saying so in any surfaced error; the error here makes
// no salvage claim, since ScanSnapshotWith discards the partial.
func scanSnapshotPartial(service, instance string, takenAt time.Time, r io.Reader, pool *stack.InternPool) (*Snapshot, error) {
	sc, ok := scannerPool.Get().(*stack.Scanner)
	if ok {
		sc.Reset(r)
	} else {
		sc = stack.NewScanner(r)
	}
	// Always (re)attach: a pooled scanner may carry a previous caller's
	// pool, and nil must restore private interning.
	sc.SetInternPool(pool)
	defer scannerPool.Put(sc)
	snap := &Snapshot{Service: service, Instance: instance, TakenAt: takenAt}
	for sc.Scan() {
		g := sc.Goroutine()
		// A count-annotated record (a pre-aggregated cluster written by
		// WriteSnapshot) stands for Multiplicity identical goroutines.
		n := g.Multiplicity()
		snap.TotalGoroutines += n
		op, ok := g.BlockedChannelOp()
		if !ok {
			continue
		}
		if snap.PreAggregated == nil {
			snap.PreAggregated = make(map[stack.BlockedOp]int)
		}
		snap.PreAggregated[op] += n
	}
	snap.Malformed = sc.Malformed()
	if err := sc.Err(); err != nil {
		err = fmt.Errorf("gprofile: scanning %s/%s: %w", service, instance, err)
		if snap.TotalGoroutines == 0 {
			return nil, err
		}
		return snap, err
	}
	return snap, nil
}

// CountByLocation groups the snapshot's channel-blocked goroutines by
// (operation, source location) — the LEAKPROF per-profile aggregation of
// Section V-A.
func (s *Snapshot) CountByLocation() map[stack.BlockedOp]int {
	counts := make(map[stack.BlockedOp]int, len(s.PreAggregated))
	for op, n := range s.PreAggregated {
		op.WaitTime = 0
		counts[op] += n
	}
	for _, g := range s.Goroutines {
		op, ok := g.BlockedChannelOp()
		if !ok {
			continue
		}
		op.WaitTime = 0 // group irrespective of individual wait times
		counts[op] += g.Multiplicity()
	}
	return counts
}
