package gprofile

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/stack"
)

// SaveDir writes snapshots as debug=2 profile files named
// <service>_<instance>.txt, the on-disk layout LoadDir reads back. It is
// how sweeps are archived for offline re-analysis.
func SaveDir(dir string, snaps []*Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gprofile: creating %s: %w", dir, err)
	}
	for _, s := range snaps {
		name := fmt.Sprintf("%s_%s.txt", sanitize(s.Service), sanitize(s.Instance))
		body := formatSnapshot(s)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return fmt.Errorf("gprofile: writing %s: %w", name, err)
		}
	}
	return nil
}

// formatSnapshot renders the snapshot's goroutines, expanding any
// pre-aggregated clusters into representative records so the saved file
// is a plain debug=2 dump.
func formatSnapshot(s *Snapshot) string {
	var b strings.Builder
	b.WriteString(stack.Format(s.Goroutines))
	id := int64(1 << 20)
	for op, n := range s.PreAggregated {
		state := "chan " + op.Op
		if op.Op == "select" {
			state = "select"
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "\ngoroutine %d [%s]:\n%s()\n\t%s +0x1\n",
				id, state, op.Function, op.Location)
			id++
		}
	}
	return b.String()
}

// LoadDir reads every <service>_<instance>.txt profile in dir. Files
// that fail to parse are skipped with their error reported in errs; a
// sweep archive must tolerate a corrupt member.
func LoadDir(dir string, takenAt time.Time) (snaps []*Snapshot, errs []error, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("gprofile: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		body, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			errs = append(errs, rerr)
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".txt")
		service, instance, ok := strings.Cut(base, "_")
		if !ok {
			service, instance = base, base
		}
		snap, perr := ParseSnapshot(service, instance, takenAt, string(body))
		if perr != nil {
			errs = append(errs, perr)
			continue
		}
		snaps = append(snaps, snap)
	}
	return snaps, errs, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}
