package gprofile

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/stack"
)

// ErrSalvaged marks failure reports about profiles that were decoded by
// skipping corrupt goroutine members rather than lost outright: the
// snapshot was still emitted and its instance was reachable. Consumers
// that treat failures as service-health signals (error budgets) should
// test for it with errors.Is and exempt these — a service serving noisy
// dumps is not a service that is down.
var ErrSalvaged = errors.New("profile salvaged")

// DirWriter streams snapshots into a directory archive one at a time, the
// write-through path production sweeps use to record themselves: each
// snapshot is written as its fetch completes, so archiving a sweep never
// holds more than one snapshot — and within a snapshot, pre-aggregated
// leak clusters are expanded straight to the file record by record rather
// than materialised as one giant string. Files are named
// <service>_<instance>.txt in the debug=2 encoding LoadDir and ScanDir
// read back. Write is safe for concurrent use.
type DirWriter struct {
	dir     string
	mu      sync.Mutex             // guards names and entries
	names   map[string]*sync.Mutex // per-file locks
	entries map[string]dirEntry    // manifest index of written members
}

// dirEntry is the manifest metadata for one written member.
type dirEntry struct {
	service, instance string
}

// NewDirWriter creates dir (and parents) and returns a writer into it.
func NewDirWriter(dir string) (*DirWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gprofile: creating %s: %w", dir, err)
	}
	return &DirWriter{dir: dir, names: make(map[string]*sync.Mutex), entries: make(map[string]dirEntry)}, nil
}

// Dir returns the archive directory.
func (w *DirWriter) Dir() string { return w.dir }

// nameLock returns the lock for one archive file: writers of distinct
// files proceed in parallel (the collection workers all write through
// here mid-sweep); only a repeated (service, instance) pair serialises,
// so its overwrite is atomic rather than interleaved.
func (w *DirWriter) nameLock(name string) *sync.Mutex {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.names[name]
	if m == nil {
		m = &sync.Mutex{}
		w.names[name] = m
	}
	return m
}

// Write archives one snapshot. Distinct (service, instance) pairs land
// in distinct files and write concurrently; a repeated pair within one
// archive overwrites (last complete snapshot wins).
func (w *DirWriter) Write(s *Snapshot) error {
	name := fmt.Sprintf("%s_%s.txt", sanitize(s.Service), sanitize(s.Instance))
	lock := w.nameLock(name)
	lock.Lock()
	defer lock.Unlock()
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("gprofile: creating %s: %w", name, err)
	}
	bw := bufio.NewWriter(f)
	werr := WriteSnapshot(bw, s)
	if ferr := bw.Flush(); werr == nil {
		werr = ferr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("gprofile: writing %s: %w", name, werr)
	}
	w.mu.Lock()
	w.entries[name] = dirEntry{service: s.Service, instance: s.Instance}
	w.mu.Unlock()
	return nil
}

// WriteSnapshot renders the snapshot to w as a plain debug=2 dump. A
// pre-aggregated cluster is written as one count-annotated record —
// "goroutine N [chan send, 2000 times]:" — instead of being expanded
// into 2000 identical blocks: a 100K-goroutine cluster costs one record
// on disk and one record's worth of allocation to write and to scan
// back (the scanner recovers the count via stack.Goroutine.Count). A
// reader without count support still sees a well-formed record standing
// for the cluster's location.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if _, err := io.WriteString(w, stack.Format(s.Goroutines)); err != nil {
		return err
	}
	id := int64(1 << 20)
	for op, n := range s.PreAggregated {
		state := "chan " + op.Op
		if op.Op == "select" {
			state = "select"
		}
		if op.NilChannel {
			state += " (nil chan)"
		}
		ann := ""
		if n > 1 {
			ann = fmt.Sprintf(", %d times", n)
		}
		if _, err := fmt.Fprintf(w, "\ngoroutine %d [%s%s]:\n%s()\n\t%s +0x1\n",
			id, state, ann, op.Function, op.Location); err != nil {
			return err
		}
		id++
	}
	return nil
}

// SaveDir writes snapshots as debug=2 profile files named
// <service>_<instance>.txt, the on-disk layout LoadDir reads back. It is
// a convenience over DirWriter for already-materialised sweeps; streaming
// collection paths should write through a DirWriter (or the leakprof
// ArchiveSink) instead of building the slice.
func SaveDir(dir string, snaps []*Snapshot) error {
	w, err := NewDirWriter(dir)
	if err != nil {
		return err
	}
	for _, s := range snaps {
		if err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// ScanDir streams every <service>_<instance>.txt profile in dir through
// the incremental scanner, one file at a time: emit receives each decoded
// compact snapshot, and fail (optional) each corrupt or unreadable
// member. When the directory carries a manifest (WriteManifest), the
// recorded sweep time overrides takenAt, so replays of archived sweeps
// keep their original cadence. Corrupt or truncated members are skipped
// and reported rather than aborting the replay — and the records scanned
// before the corruption are salvaged: the partial snapshot is still
// emitted (with its error reported through fail) so one torn tail does
// not erase an instance from the sweep. Members with corrupt goroutine
// headers mid-dump are salvaged even further: the scanner resyncs at the
// next well-formed header, the whole remainder is kept, and the
// malformed-member count is reported through fail. Unlike LoadDir it never
// materialises goroutine records or more than one open file, so archives
// recorded at production scale replay in O(locations) memory. Cancelling
// ctx stops the replay between files.
func ScanDir(ctx context.Context, dir string, takenAt time.Time, emit func(*Snapshot), fail func(name string, err error)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("gprofile: reading %s: %w", dir, err)
	}
	switch m, merr := ReadManifest(dir); {
	case merr != nil:
		// A torn manifest must not take the member files with it: replay
		// with the caller's timestamp and report the manifest as corrupt.
		if fail != nil {
			fail(ManifestName, merr)
		}
	case m != nil && !m.SweepAt.IsZero():
		takenAt = m.SweepAt
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		service, instance := splitArchiveName(e.Name())
		snap, serr := scanFile(filepath.Join(dir, e.Name()), service, instance, takenAt)
		if serr != nil {
			if fail != nil {
				fail(e.Name(), serr)
			}
			if snap == nil {
				continue
			}
			// Fall through: emit what was scanned before the corruption.
		} else if snap.Malformed > 0 && fail != nil {
			// The scan completed by resyncing past corrupt members;
			// the snapshot is emitted, but the loss must not be silent.
			fail(e.Name(), fmt.Errorf("gprofile: %w: %s skipped %d malformed goroutine members", ErrSalvaged, e.Name(), snap.Malformed))
		}
		emit(snap)
	}
	return nil
}

// scanFile streams one archive member through the shared scan loop,
// salvaging the prefix of a corrupt or truncated file: on a mid-file
// scan error the records decoded so far are returned as a partial
// snapshot alongside the error (nil when nothing was salvaged — an
// unopenable or immediately-corrupt member).
func scanFile(path, service, instance string, takenAt time.Time) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := scanSnapshotPartial(service, instance, takenAt, f, nil)
	if err != nil && snap != nil {
		err = fmt.Errorf("%w (salvaged %d records)", err, snap.TotalGoroutines)
	}
	return snap, err
}

// splitArchiveName recovers (service, instance) from an archive file
// name, mirroring how LoadDir names were produced.
func splitArchiveName(name string) (service, instance string) {
	base := strings.TrimSuffix(name, ".txt")
	service, instance, ok := strings.Cut(base, "_")
	if !ok {
		return base, base
	}
	return service, instance
}

// LoadDir reads every <service>_<instance>.txt profile in dir into fully
// parsed snapshots. Files that fail to parse are skipped with their error
// reported in errs; a sweep archive must tolerate a corrupt member.
// Replays that only need blocked-count aggregates should use ScanDir,
// which streams instead of materialising records.
func LoadDir(dir string, takenAt time.Time) (snaps []*Snapshot, errs []error, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("gprofile: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		body, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			errs = append(errs, rerr)
			continue
		}
		service, instance := splitArchiveName(e.Name())
		snap, perr := ParseSnapshot(service, instance, takenAt, string(body))
		if perr != nil {
			errs = append(errs, perr)
			continue
		}
		snaps = append(snaps, snap)
	}
	return snaps, errs, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}
