package gprofile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ManifestName is the file name a sweep archive's manifest is stored
// under, alongside the <service>_<instance>.txt profile members.
const ManifestName = "manifest.json"

// ManifestVersion is the current manifest format version. Readers reject
// manifests from the future; the version lets the format evolve without
// silently misreading old archives.
const ManifestVersion = 1

// Manifest records what a sweep archive directory contains: when the
// sweep ran, which snapshots it archived, and the format version. With a
// manifest present, replay uses the recorded sweep time instead of a
// caller-supplied timestamp, so trend verdicts over multi-sweep archives
// see the original cadence rather than a flat replay time.
type Manifest struct {
	// FormatVersion is ManifestVersion at write time.
	FormatVersion int `json:"format_version"`
	// SweepAt is the sweep's start timestamp.
	SweepAt time.Time `json:"sweep_at"`
	// Source names the profile origin that fed the sweep, when known.
	Source string `json:"source,omitempty"`
	// Snapshots indexes the archived members in write order.
	Snapshots []ManifestEntry `json:"snapshots"`
}

// ManifestEntry is one archived snapshot in the manifest's index.
type ManifestEntry struct {
	// File is the member file name within the archive directory.
	File string `json:"file"`
	// Service and Instance identify the profiled instance.
	Service  string `json:"service"`
	Instance string `json:"instance"`
}

// WriteManifest finalises the archive: it writes a manifest.json indexing
// every snapshot written through this writer, stamped with the sweep
// time. The write is atomic (temp file + rename), so a reader never sees
// a torn manifest; call it once, after the sweep's last snapshot.
func (w *DirWriter) WriteManifest(at time.Time, source string) error {
	w.mu.Lock()
	entries := make([]ManifestEntry, 0, len(w.entries))
	for name, e := range w.entries {
		entries = append(entries, ManifestEntry{File: name, Service: e.service, Instance: e.instance})
	}
	w.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].File < entries[j].File })
	m := &Manifest{FormatVersion: ManifestVersion, SweepAt: at, Source: source, Snapshots: entries}
	return WriteManifestFile(w.dir, m)
}

// WriteManifestFile atomically writes m as dir's manifest.json.
func WriteManifestFile(dir string, m *Manifest) error {
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("gprofile: encoding manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("gprofile: staging manifest: %w", err)
	}
	_, werr := tmp.Write(append(body, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(dir, ManifestName))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("gprofile: writing manifest: %w", werr)
	}
	return nil
}

// ReadManifest loads dir's manifest.json. A missing manifest returns
// (nil, nil) — legacy archives predate manifests — while a corrupt or
// future-versioned manifest returns an error.
func ReadManifest(dir string) (*Manifest, error) {
	body, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("gprofile: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("gprofile: decoding manifest in %s: %w", dir, err)
	}
	if m.FormatVersion > ManifestVersion {
		return nil, fmt.Errorf("gprofile: manifest in %s has format version %d, newer than supported %d",
			dir, m.FormatVersion, ManifestVersion)
	}
	return &m, nil
}

// SweepDirs lists dir's sweep subdirectories — the layout a rotating
// multi-sweep archive writes, one subdirectory per sweep, each with its
// own manifest — ordered by recorded sweep time (subdirectory name as the
// tiebreak). Subdirectories with a corrupt manifest, or with profile
// members but no manifest at all (a sweep torn by a crash before
// finalisation), are skipped and reported via fail (optional) — silently
// dropping a recorded sweep would make archived history vanish without a
// diagnostic. An empty result means dir is not a multi-sweep archive.
func SweepDirs(dir string, fail func(name string, err error)) ([]SweepDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gprofile: reading %s: %w", dir, err)
	}
	var out []SweepDir
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		m, merr := ReadManifest(sub)
		if merr != nil {
			if fail != nil {
				fail(e.Name(), merr)
			}
			continue
		}
		if m == nil {
			if fail != nil && hasProfileMembers(sub) {
				fail(e.Name(), fmt.Errorf("gprofile: %s holds profile members but no %s (sweep torn before finalisation?); replay it directly to salvage", sub, ManifestName))
			}
			continue // not a sweep archive
		}
		out = append(out, SweepDir{Dir: sub, Manifest: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Manifest.SweepAt.Equal(out[j].Manifest.SweepAt) {
			return out[i].Manifest.SweepAt.Before(out[j].Manifest.SweepAt)
		}
		return out[i].Dir < out[j].Dir
	})
	return out, nil
}

// hasProfileMembers reports whether dir contains archive member files.
func hasProfileMembers(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			return true
		}
	}
	return false
}

// SweepDir is one sweep of a multi-sweep archive.
type SweepDir struct {
	// Dir is the sweep's archive directory.
	Dir string
	// Manifest is the sweep's recorded manifest.
	Manifest *Manifest
}
