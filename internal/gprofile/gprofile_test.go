package gprofile

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stack"
)

func mkGoroutine(id int64, state string, fn, file string, line int) *stack.Goroutine {
	return &stack.Goroutine{
		ID:    id,
		State: state,
		Frames: []stack.Frame{
			{Function: fn, File: file, Line: line, Offset: 0x10},
		},
	}
}

func TestAggregateGroupsIdenticalStacks(t *testing.T) {
	gs := []*stack.Goroutine{
		mkGoroutine(1, "chan send", "a.f", "/s/a.go", 5),
		mkGoroutine(2, "chan send", "a.f", "/s/a.go", 5),
		mkGoroutine(3, "chan send", "a.f", "/s/a.go", 5),
		mkGoroutine(4, "select", "b.g", "/s/b.go", 9),
	}
	p := Aggregate(gs)
	if p.Total != 4 {
		t.Errorf("total = %d", p.Total)
	}
	if len(p.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(p.Records))
	}
	if p.Records[0].Count != 3 || p.Records[0].Frames[0].Function != "a.f" {
		t.Errorf("first record = %+v", p.Records[0])
	}
	if p.Records[1].Count != 1 {
		t.Errorf("second record = %+v", p.Records[1])
	}
}

func TestAggregateDeterministicOrder(t *testing.T) {
	// Equal-count records sort by leaf function name.
	gs := []*stack.Goroutine{
		mkGoroutine(1, "select", "z.f", "/s/z.go", 1),
		mkGoroutine(2, "select", "a.f", "/s/a.go", 1),
	}
	p := Aggregate(gs)
	if p.Records[0].Frames[0].Function != "a.f" {
		t.Errorf("order = %q then %q", p.Records[0].Frames[0].Function, p.Records[1].Frames[0].Function)
	}
}

func TestProfile1FormatParseRoundTrip(t *testing.T) {
	fns := []string{"main.main", "a/b.f", "x.(*T).m"}
	files := []string{"/s/a.go", "/s/b.go"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var gs []*stack.Goroutine
		for i := 0; i < int(n)%20+1; i++ {
			g := &stack.Goroutine{ID: int64(i), State: "select"}
			depth := 1 + r.Intn(4)
			for d := 0; d < depth; d++ {
				g.Frames = append(g.Frames, stack.Frame{
					Function: fns[r.Intn(len(fns))],
					File:     files[r.Intn(len(files))],
					Line:     1 + r.Intn(200),
					Offset:   uint64(1 + r.Intn(255)),
				})
			}
			gs = append(gs, g)
		}
		in := Aggregate(gs)
		out, err := ParseProfile1(in.Format())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if out.Total != in.Total || len(out.Records) != len(in.Records) {
			return false
		}
		for i := range in.Records {
			if out.Records[i].Count != in.Records[i].Count {
				return false
			}
			if !reflect.DeepEqual(out.Records[i].Frames, in.Records[i].Frames) {
				t.Logf("record %d frames:\n in %+v\nout %+v", i, in.Records[i].Frames, out.Records[i].Frames)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseProfile1RejectsBadInput(t *testing.T) {
	if _, err := ParseProfile1("goroutine profile: total x\n"); err == nil {
		t.Error("bad total accepted")
	}
	if _, err := ParseProfile1("#\t0x1\tf+0x0\t/a.go:1\n"); err == nil {
		t.Error("orphan frame line accepted")
	}
	if _, err := ParseProfile1("zz @ 0x1\n"); err == nil {
		t.Error("bad count accepted")
	}
}

func TestSnapshotCountByLocation(t *testing.T) {
	body := `goroutine 1 [chan send]:
svc.producer()
	/svc/p.go:10 +0x1

goroutine 2 [chan send]:
svc.producer()
	/svc/p.go:10 +0x1

goroutine 3 [chan receive]:
svc.consumer()
	/svc/c.go:20 +0x1

goroutine 4 [running]:
svc.handler()
	/svc/h.go:1 +0x1
`
	snap, err := ParseSnapshot("svc", "inst-1", time.Unix(100, 0), body)
	if err != nil {
		t.Fatal(err)
	}
	counts := snap.CountByLocation()
	if len(counts) != 2 {
		t.Fatalf("got %d locations, want 2: %v", len(counts), counts)
	}
	send := stack.BlockedOp{Op: "send", Location: "/svc/p.go:10", Function: "svc.producer"}
	if counts[send] != 2 {
		t.Errorf("send count = %d, want 2", counts[send])
	}
	recv := stack.BlockedOp{Op: "receive", Location: "/svc/c.go:20", Function: "svc.consumer"}
	if counts[recv] != 1 {
		t.Errorf("recv count = %d, want 1", counts[recv])
	}
}

func TestHandlerDebug2ServesParseableDump(t *testing.T) {
	synthetic := []*stack.Goroutine{
		mkGoroutine(11, "chan send", "svc.leak", "/svc/l.go", 7),
	}
	srv := httptest.NewServer(Handler{Stacks: func() []*stack.Goroutine { return synthetic }})
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?debug=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	gs, err := stack.Parse(string(body))
	if err != nil {
		t.Fatalf("unparseable body: %v\n%s", err, body)
	}
	if len(gs) != 1 || gs[0].ID != 11 || gs[0].State != "chan send" {
		t.Errorf("round-tripped goroutines = %+v", gs)
	}
}

func TestHandlerDebug1ServesAggregated(t *testing.T) {
	synthetic := []*stack.Goroutine{
		mkGoroutine(1, "select", "svc.w", "/svc/w.go", 3),
		mkGoroutine(2, "select", "svc.w", "/svc/w.go", 3),
	}
	srv := httptest.NewServer(Handler{Stacks: func() []*stack.Goroutine { return synthetic }})
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	p, err := ParseProfile1(string(body))
	if err != nil {
		t.Fatalf("unparseable: %v\n%s", err, body)
	}
	if p.Total != 2 || len(p.Records) != 1 || p.Records[0].Count != 2 {
		t.Errorf("profile = %+v", p)
	}
}

func TestHandlerLiveProcess(t *testing.T) {
	// With no stack source the handler profiles the real process; the
	// response must parse and contain this test's goroutine.
	srv := httptest.NewServer(Handler{})
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?debug=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	gs, err := stack.Parse(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) == 0 {
		t.Fatal("live profile is empty")
	}
	var sawServer bool
	for _, g := range gs {
		for _, f := range g.Frames {
			if strings.Contains(f.Function, "net/http") {
				sawServer = true
			}
		}
	}
	if !sawServer {
		t.Error("live profile does not show the HTTP server goroutines")
	}
}
