package gprofile

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stack"
)

// TestDirWriterScanDirRoundTrip drives the streaming archive path both
// ways: snapshots written through one at a time (from concurrent
// writers, as ArchiveSink does during a sweep) and replayed one file at a
// time, preserving the blocked-operation counts.
func TestDirWriterScanDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	send := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:9"}
	snaps := []*Snapshot{
		{Service: "pay", Instance: "i1", PreAggregated: map[stack.BlockedOp]int{send: 3}},
		{Service: "pay", Instance: "i2", PreAggregated: map[stack.BlockedOp]int{send: 5}},
		{Service: "search", Instance: "h/1", Goroutines: []*stack.Goroutine{
			mkGoroutine(1, "IO wait", "search.read", "/s/r.go", 7),
		}},
	}
	var wg sync.WaitGroup
	for _, s := range snaps {
		wg.Add(1)
		go func(s *Snapshot) {
			defer wg.Done()
			if err := w.Write(s); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()

	var got []*Snapshot
	err = ScanDir(context.Background(), dir, time.Unix(9, 0), func(s *Snapshot) { got = append(got, s) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d snapshots, want 3", len(got))
	}
	total := 0
	for _, s := range got {
		if !s.TakenAt.Equal(time.Unix(9, 0)) {
			t.Errorf("timestamp = %v", s.TakenAt)
		}
		for op, n := range s.CountByLocation() {
			if op.Op == "send" && op.Location == "/pay/l.go:9" {
				total += n
			}
		}
	}
	if total != 8 {
		t.Errorf("replayed blocked total = %d, want 8", total)
	}
}

func TestScanDirReportsCorruptMembers(t *testing.T) {
	dir := t.TempDir()
	good := "goroutine 1 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "svc_i2.txt")
	if err := os.WriteFile(bad, []byte(good), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.ReadFile(bad); err == nil {
		t.Skip("running as a user that ignores file modes")
	}
	var emitted, failed int
	err := ScanDir(context.Background(), dir, time.Now(),
		func(*Snapshot) { emitted++ },
		func(name string, err error) {
			failed++
			if name != "svc_i2.txt" || err == nil {
				t.Errorf("fail(%q, %v)", name, err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || failed != 1 {
		t.Errorf("emitted=%d failed=%d", emitted, failed)
	}
}

// TestScanDirSalvagesResyncedMembers pins the archive contract for a
// member torn mid-dump: records before and after the corrupt header are
// both kept, and the member is reported through fail so the sweep's
// error accounting still sees the damage.
func TestScanDirSalvagesResyncedMembers(t *testing.T) {
	dir := t.TempDir()
	torn := "goroutine 1 [chan send]:\nsvc.before()\n\t/s/b.go:2 +0x1\n" +
		"goroutine 99 [chan send:\nsvc.torn()\n" +
		"goroutine 2 [chan send]:\nsvc.after()\n\t/s/a.go:3 +0x1\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	var failures []string
	err := ScanDir(context.Background(), dir, time.Now(),
		func(s *Snapshot) { snaps = append(snaps, s) },
		func(name string, err error) { failures = append(failures, name+": "+err.Error()) })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("emitted %d snapshots, want 1", len(snaps))
	}
	if snaps[0].TotalGoroutines != 2 || snaps[0].Malformed != 1 {
		t.Errorf("salvaged %d goroutines (%d malformed), want 2 (1)",
			snaps[0].TotalGoroutines, snaps[0].Malformed)
	}
	counts := snaps[0].CountByLocation()
	for _, loc := range []string{"/s/b.go:2", "/s/a.go:3"} {
		found := false
		for op := range counts {
			if op.Location == loc {
				found = true
			}
		}
		if !found {
			t.Errorf("location %s lost in salvage: %+v", loc, counts)
		}
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "1 malformed") {
		t.Errorf("failures = %v, want one malformed-member report", failures)
	}
}

func TestScanDirMissing(t *testing.T) {
	if err := ScanDir(context.Background(), "/does/not/exist", time.Now(), func(*Snapshot) {}, nil); err == nil {
		t.Error("missing directory should error")
	}
}
