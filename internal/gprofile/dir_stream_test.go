package gprofile

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/stack"
)

// TestDirWriterScanDirRoundTrip drives the streaming archive path both
// ways: snapshots written through one at a time (from concurrent
// writers, as ArchiveSink does during a sweep) and replayed one file at a
// time, preserving the blocked-operation counts.
func TestDirWriterScanDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	send := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:9"}
	snaps := []*Snapshot{
		{Service: "pay", Instance: "i1", PreAggregated: map[stack.BlockedOp]int{send: 3}},
		{Service: "pay", Instance: "i2", PreAggregated: map[stack.BlockedOp]int{send: 5}},
		{Service: "search", Instance: "h/1", Goroutines: []*stack.Goroutine{
			mkGoroutine(1, "IO wait", "search.read", "/s/r.go", 7),
		}},
	}
	var wg sync.WaitGroup
	for _, s := range snaps {
		wg.Add(1)
		go func(s *Snapshot) {
			defer wg.Done()
			if err := w.Write(s); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()

	var got []*Snapshot
	err = ScanDir(context.Background(), dir, time.Unix(9, 0), func(s *Snapshot) { got = append(got, s) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d snapshots, want 3", len(got))
	}
	total := 0
	for _, s := range got {
		if !s.TakenAt.Equal(time.Unix(9, 0)) {
			t.Errorf("timestamp = %v", s.TakenAt)
		}
		for op, n := range s.CountByLocation() {
			if op.Op == "send" && op.Location == "/pay/l.go:9" {
				total += n
			}
		}
	}
	if total != 8 {
		t.Errorf("replayed blocked total = %d, want 8", total)
	}
}

func TestScanDirReportsCorruptMembers(t *testing.T) {
	dir := t.TempDir()
	good := "goroutine 1 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "svc_i2.txt")
	if err := os.WriteFile(bad, []byte(good), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.ReadFile(bad); err == nil {
		t.Skip("running as a user that ignores file modes")
	}
	var emitted, failed int
	err := ScanDir(context.Background(), dir, time.Now(),
		func(*Snapshot) { emitted++ },
		func(name string, err error) {
			failed++
			if name != "svc_i2.txt" || err == nil {
				t.Errorf("fail(%q, %v)", name, err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || failed != 1 {
		t.Errorf("emitted=%d failed=%d", emitted, failed)
	}
}

func TestScanDirMissing(t *testing.T) {
	if err := ScanDir(context.Background(), "/does/not/exist", time.Now(), func(*Snapshot) {}, nil); err == nil {
		t.Error("missing directory should error")
	}
}
