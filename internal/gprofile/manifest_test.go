package gprofile

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/stack"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	send := stack.BlockedOp{Op: "send", Function: "pay.leak", Location: "/pay/l.go:9"}
	for _, s := range []*Snapshot{
		{Service: "pay", Instance: "i1", PreAggregated: map[stack.BlockedOp]int{send: 3}},
		{Service: "pay", Instance: "i2", PreAggregated: map[stack.BlockedOp]int{send: 5}},
	} {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Unix(1234, 0).UTC()
	if err := w.WriteManifest(at, "endpoints"); err != nil {
		t.Fatal(err)
	}

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.FormatVersion != ManifestVersion || !m.SweepAt.Equal(at) || m.Source != "endpoints" {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Snapshots) != 2 || m.Snapshots[0].File != "pay_i1.txt" || m.Snapshots[0].Service != "pay" {
		t.Fatalf("manifest index = %+v", m.Snapshots)
	}

	// Replay uses the manifested sweep time, not the caller's.
	var got []*Snapshot
	if err := ScanDir(context.Background(), dir, time.Unix(999999, 0), func(s *Snapshot) { got = append(got, s) }, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d snapshots", len(got))
	}
	for _, s := range got {
		if !s.TakenAt.Equal(at) {
			t.Errorf("replayed TakenAt = %v, want manifested %v", s.TakenAt, at)
		}
	}
}

func TestReadManifestMissingAndFuture(t *testing.T) {
	dir := t.TempDir()
	if m, err := ReadManifest(dir); err != nil || m != nil {
		t.Errorf("missing manifest = (%+v, %v), want (nil, nil)", m, err)
	}
	body := []byte(`{"format_version": ` + "99" + `, "sweep_at": "2026-01-01T00:00:00Z"}`)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("future manifest error = %v", err)
	}
}

// TestScanDirTornManifest: a corrupt manifest is reported through fail
// but must not take the member files with it.
func TestScanDirTornManifest(t *testing.T) {
	dir := t.TempDir()
	good := "goroutine 1 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var emitted int
	var failedNames []string
	err := ScanDir(context.Background(), dir, time.Unix(7, 0),
		func(s *Snapshot) {
			emitted++
			if !s.TakenAt.Equal(time.Unix(7, 0)) {
				t.Errorf("fallback timestamp = %v", s.TakenAt)
			}
		},
		func(name string, err error) { failedNames = append(failedNames, name) })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || len(failedNames) != 1 || failedNames[0] != ManifestName {
		t.Errorf("emitted=%d failed=%v", emitted, failedNames)
	}
}

func TestSweepDirsOrdersByRecordedTime(t *testing.T) {
	base := t.TempDir()
	mk := func(name string, at time.Time) {
		dir := filepath.Join(base, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteManifestFile(dir, &Manifest{FormatVersion: ManifestVersion, SweepAt: at}); err != nil {
			t.Fatal(err)
		}
	}
	// Written out of lexical order to prove ordering is by time.
	mk("sweep-0002", time.Unix(100, 0))
	mk("sweep-0001", time.Unix(200, 0))
	// A stray non-sweep subdirectory is ignored.
	if err := os.MkdirAll(filepath.Join(base, "scratch"), 0o755); err != nil {
		t.Fatal(err)
	}
	subs, err := SweepDirs(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("sweep dirs = %d", len(subs))
	}
	if filepath.Base(subs[0].Dir) != "sweep-0002" || filepath.Base(subs[1].Dir) != "sweep-0001" {
		t.Errorf("order = %s, %s (want recorded-time order)", subs[0].Dir, subs[1].Dir)
	}
}

// TestScanDirSalvagesCorruptTail: a member whose tail is corrupt still
// contributes the records scanned before the corruption, with the error
// reported per file.
func TestScanDirSalvagesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	// Two valid records, then a header that parses as a goroutine header
	// but carries torn state brackets — a mid-file scan error.
	body := "goroutine 1 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n\n" +
		"goroutine 2 [chan send]:\nsvc.f()\n\t/s/f.go:2 +0x1\n\n" +
		"goroutine 3 ]torn[\n"
	if err := os.WriteFile(filepath.Join(dir, "svc_i1.txt"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var got *Snapshot
	var failed int
	err := ScanDir(context.Background(), dir, time.Unix(1, 0),
		func(s *Snapshot) { got = s },
		func(name string, err error) {
			failed++
			if name != "svc_i1.txt" || !strings.Contains(err.Error(), "salvaged") {
				t.Errorf("fail(%q, %v)", name, err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if got == nil || got.TotalGoroutines != 2 {
		t.Fatalf("salvaged snapshot = %+v, want the 2 pre-corruption records", got)
	}
	counts := got.CountByLocation()
	if len(counts) != 1 {
		t.Errorf("salvaged counts = %+v", counts)
	}
	for _, n := range counts {
		if n != 2 {
			t.Errorf("salvaged blocked count = %d, want 2", n)
		}
	}
}
