package staticbase

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func analyze(t *testing.T, cfg Config, src string) []Finding {
	t.Helper()
	a := &Analyzer{Cfg: cfg}
	fs, err := a.AnalyzeSource("t.go", "package p\n\nimport (\"context\"; \"time\")\nvar _ = context.Background\nvar _ = time.Now\n\n"+src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

const leakyPremature = `
func leaky(fail bool) int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	if fail {
		return -1
	}
	return <-ch
}
`

const safePrematureBuffered = `
func safe(fail bool) int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	if fail {
		return -1
	}
	return <-ch
}
`

func TestPrematureReturnDetection(t *testing.T) {
	for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
		fs := analyze(t, cfg, leakyPremature)
		if len(fs) != 1 {
			t.Errorf("%s: leaky premature return: %d findings, want 1: %v", cfg.Name, len(fs), fs)
		}
	}
	// Capacity-aware analyzers prove the buffered variant safe; the
	// abstract interpreter (no constant-capacity modelling) flags it.
	if fs := analyze(t, GCatchLike(), safePrematureBuffered); len(fs) != 0 {
		t.Errorf("gcatch-like flagged buffered premature return: %v", fs)
	}
	if fs := analyze(t, GomelaLike(), safePrematureBuffered); len(fs) != 0 {
		t.Errorf("gomela-like flagged buffered premature return: %v", fs)
	}
	if fs := analyze(t, GoatLike(), safePrematureBuffered); len(fs) != 1 {
		t.Errorf("goat-like should false-positive on buffered premature return: %v", fs)
	}
}

func TestNCastSharedBlindSpot(t *testing.T) {
	leaky := `
func ncast(items []int) int {
	ch := make(chan int)
	for _, item := range items {
		go func(v int) {
			ch <- v
		}(item)
	}
	return <-ch
}
`
	safe := `
func ncastSafe(items []int) int {
	ch := make(chan int, len(items))
	for _, item := range items {
		go func(v int) {
			ch <- v
		}(item)
	}
	return <-ch
}
`
	for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
		if fs := analyze(t, cfg, leaky); len(fs) != 1 {
			t.Errorf("%s: leaky ncast: %v", cfg.Name, fs)
		}
		// Dynamically sized capacity: every design flags the safe
		// variant (shared blind spot).
		if fs := analyze(t, cfg, safe); len(fs) != 1 {
			t.Errorf("%s: safe ncast should be a false positive: %v", cfg.Name, fs)
		}
	}
}

func TestUnclosedRangeAndAliasing(t *testing.T) {
	leaky := `
func pool(items []int, workers int) {
	ch := make(chan int)
	for i := 0; i < workers; i++ {
		go func() {
			for item := range ch {
				_ = item
			}
		}()
	}
	for _, item := range items {
		ch <- item
	}
}
`
	safeAliased := `
func poolSafe(items []int, workers int) {
	ch := make(chan int)
	finish := func() { close(ch) }
	for i := 0; i < workers; i++ {
		go func() {
			for item := range ch {
				_ = item
			}
		}()
	}
	for _, item := range items {
		ch <- item
	}
	finish()
}
`
	for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
		if fs := analyze(t, cfg, leaky); len(fs) != 1 {
			t.Errorf("%s: leaky unclosed range: %v", cfg.Name, fs)
		}
	}
	// Points-to-capable analyzers follow the close through the function
	// value; the AST-only analyzer does not.
	if fs := analyze(t, GCatchLike(), safeAliased); len(fs) != 0 {
		t.Errorf("gcatch-like flagged aliased close: %v", fs)
	}
	if fs := analyze(t, GoatLike(), safeAliased); len(fs) != 0 {
		t.Errorf("goat-like flagged aliased close: %v", fs)
	}
	if fs := analyze(t, GomelaLike(), safeAliased); len(fs) != 1 {
		t.Errorf("gomela-like should false-positive on aliased close: %v", fs)
	}
}

const contractSrc = `
type worker struct {
	ch   chan int
	done chan int
}

func (w worker) Start() {
	go func() {
		for {
			select {
			case <-w.ch:
			case <-w.done:
				return
			}
		}
	}()
}

func (w worker) Stop() { close(w.done) }
`

func TestContractViolationAndDynamicDispatch(t *testing.T) {
	leaky := contractSrc + `
func use() {
	w := worker{ch: make(chan int), done: make(chan int)}
	w.Start()
}
`
	safeDirect := contractSrc + `
func useSafe() {
	w := worker{ch: make(chan int), done: make(chan int)}
	w.Start()
	w.Stop()
}
`
	safeMethodValue := contractSrc + `
func useValue() {
	w := worker{ch: make(chan int), done: make(chan int)}
	stop := w.Stop
	defer stop()
	w.Start()
}
`
	onUse := func(fs []Finding) int {
		n := 0
		for _, f := range fs {
			if strings.HasPrefix(f.Function, "use") {
				n++
			}
		}
		return n
	}
	if n := onUse(analyze(t, GCatchLike(), leaky)); n != 1 {
		t.Errorf("gcatch-like: leaky contract findings = %d, want 1", n)
	}
	if n := onUse(analyze(t, GoatLike(), leaky)); n != 1 {
		t.Errorf("goat-like: leaky contract findings = %d, want 1", n)
	}
	// No dynamic dispatch: the model extractor cannot see the leak.
	if n := onUse(analyze(t, GomelaLike(), leaky)); n != 0 {
		t.Errorf("gomela-like should miss the contract leak (FN), got %d findings", n)
	}
	if n := onUse(analyze(t, GCatchLike(), safeDirect)); n != 0 {
		t.Errorf("gcatch-like flagged honoured contract: %d", n)
	}
	// Method value: only the strongest aliasing reasoning proves it.
	if n := onUse(analyze(t, GCatchLike(), safeMethodValue)); n != 0 {
		t.Errorf("gcatch-like flagged method-value Stop: %d", n)
	}
	if n := onUse(analyze(t, GoatLike(), safeMethodValue)); n != 1 {
		t.Errorf("goat-like should false-positive on method-value Stop, got %d", n)
	}
}

func TestPingPongSharedOverApproximation(t *testing.T) {
	src := `
func relay(n int) int {
	ch := make(chan int)
	ack := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
			<-ack
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
		ack <- 1
	}
	return total
}
`
	for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
		fs := analyze(t, cfg, src)
		if len(fs) != 1 {
			t.Errorf("%s: ping-pong findings = %d, want exactly 1 (the ack send): %v", cfg.Name, len(fs), fs)
			continue
		}
		if !strings.Contains(fs[0].Reason, "loop abstraction") {
			t.Errorf("%s: wrong reason %q", cfg.Name, fs[0].Reason)
		}
	}
}

func TestWrapperBlindness(t *testing.T) {
	src := `
func asyncRun(f func()) { go f() }

func viaWrapper(n int) int {
	ch := make(chan int)
	asyncRun(func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	})
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
`
	// Wrapper-aware analyzers see the close and stay silent; the AST-only
	// analyzer loses the whole closure and reports the range as unclosed —
	// the paper's "wrappers blindside such tools" observation.
	if fs := analyze(t, GCatchLike(), src); len(fs) != 0 {
		t.Errorf("gcatch-like flagged wrapper pipeline: %v", fs)
	}
	if fs := analyze(t, GomelaLike(), src); len(fs) != 1 {
		t.Errorf("gomela-like should false-positive on wrapper pipeline: %v", fs)
	}
}

func TestDoubleSendAllTools(t *testing.T) {
	leaky := `
func ds(bad bool, ch chan int) {
	if bad {
		ch <- -1
	}
	ch <- 1
}
`
	safe := `
func dsSafe(bad bool, ch chan int) {
	if bad {
		ch <- -1
		return
	}
	ch <- 1
}
`
	for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
		if fs := analyze(t, cfg, leaky); len(fs) != 1 {
			t.Errorf("%s: double send missed: %v", cfg.Name, fs)
		}
		if fs := analyze(t, cfg, safe); len(fs) != 0 {
			t.Errorf("%s: safe double send flagged: %v", cfg.Name, fs)
		}
	}
}

func TestSelectBound(t *testing.T) {
	src := `
func big(a, b, c, d chan int) int {
	select {
	case <-a:
	case <-b:
	case <-c:
	case <-d:
	}
	return 0
}
`
	if fs := analyze(t, GomelaLike(), src); len(fs) != 1 {
		t.Errorf("gomela-like should report 4-arm select: %v", fs)
	}
	if fs := analyze(t, GCatchLike(), src); len(fs) != 0 {
		t.Errorf("gcatch-like flagged 4-arm select: %v", fs)
	}
}

func TestHealthyCorpusShapesStaySilent(t *testing.T) {
	// The generator's healthy function shapes (pipeline, fan-in, select
	// worker, stream) must not trip the strongest analyzer.
	src := `
func pipeline(n int) int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func fanIn(n int) int {
	ch := make(chan int, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(v int) {
			ch <- v
		}(i)
	}
	go func() {
		total := 0
		for i := 0; i < n; i++ {
			total += <-ch
		}
		done <- total
	}()
	return <-done
}

func stream(in chan int) chan int {
	out := make(chan int, 1)
	go func() {
		v, ok := <-in
		if ok {
			out <- v * 2
		}
		close(out)
	}()
	return out
}
`
	if fs := analyze(t, GCatchLike(), src); len(fs) != 0 {
		t.Errorf("healthy shapes flagged by gcatch-like: %v", fs)
	}
}

// TestTableIIIPrecisionBands is the headline check: on a labelled corpus
// the three static designs land in the paper's precision band (roughly a
// third to a half), ordered gcatch >= goat >= gomela.
func TestTableIIIPrecisionBands(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Packages = 600
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.20, 0.10, 0.10
	corpus := synth.Generate(cfg)
	outcomes := EvaluateAll(corpus)
	if len(outcomes) != 3 {
		t.Fatal("expected 3 outcomes")
	}
	byName := map[string]Outcome{}
	for _, o := range outcomes {
		byName[o.Tool] = o
		t.Logf("%s", o)
		if o.Reports < 20 {
			t.Errorf("%s produced only %d reports; corpus too quiet", o.Tool, o.Reports)
		}
	}
	gc, gt, gm := byName["gcatch-like"], byName["goat-like"], byName["gomela-like"]
	check := func(name string, p, lo, hi float64) {
		if p < lo || p > hi {
			t.Errorf("%s precision = %.1f%%, want in [%.0f%%, %.0f%%]", name, 100*p, 100*lo, 100*hi)
		}
	}
	// Paper: 51%, 47%, 34%. Accept generous bands around those points.
	check("gcatch-like", gc.Precision(), 0.35, 0.70)
	check("goat-like", gt.Precision(), 0.30, 0.65)
	check("gomela-like", gm.Precision(), 0.15, 0.50)
	if !(gc.Precision() >= gt.Precision() && gt.Precision() >= gm.Precision()) {
		t.Errorf("precision ordering violated: gcatch %.2f, goat %.2f, gomela %.2f",
			gc.Precision(), gt.Precision(), gm.Precision())
	}
	// The model extractor misses contract leaks: strictly lower recall.
	if !(gm.Recall() < gc.Recall()) {
		t.Errorf("gomela recall %.2f should be below gcatch recall %.2f", gm.Recall(), gc.Recall())
	}
	if s := FormatTable(outcomes); !strings.Contains(s, "gcatch-like") {
		t.Errorf("FormatTable output malformed:\n%s", s)
	}
}
