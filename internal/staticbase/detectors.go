package staticbase

import "go/token"

// detect runs the detector suite over one function summary. The returned
// findings carry only pos and Reason; the caller decorates them with tool,
// file and function.
func (a *Analyzer) detect(s *funcSummary, file *fileInfo) []Finding {
	cfg := a.Cfg
	var out []Finding
	report := func(pos token.Pos, reason string) {
		out = append(out, Finding{pos: pos, Reason: reason})
	}

	for _, c := range sortedChans(s) {
		if c.escapes {
			// The LCA heuristic both real tools use: channels leaving
			// the function are out of scope.
			continue
		}
		switch {
		// D2 — NCast: loop-spawned senders against a single receive.
		case c.sendInLoopSpawn && !c.rangedByParent && !c.rangedBySpawn &&
			c.recvSites > 0 && !c.recvInLoop && !capSafe(c, cfg):
			report(c.firstSendPos, "more sends than receives: loop-spawned senders with a single receive")

		// D1 — orphan/premature send from a spawned goroutine.
		case c.sendsSpawned > 0 && !c.sendInLoopSpawn && !capSafe(c, cfg):
			switch {
			case c.recvSites == 0:
				report(c.firstSendPos, "spawned sender with no receive in scope")
			case !c.recvPlain && c.recvInSelect:
				report(c.firstSendPos, "spawned sender; receive only under a multi-arm select (timeout shape)")
			case c.guardBeforeRecv:
				report(c.firstSendPos, "spawned sender; an early-return guard precedes the receive")
			}
		}

		// D3 — range over a never-closed local channel.
		if (c.rangedByParent || c.rangedBySpawn) && !c.closedDirect {
			report(c.rangePos, "range over local channel with no reachable close")
		}

		// D5 — ping-pong over-approximation: a send interleaved inside a
		// channel-consumption loop cannot be proven to pair under the
		// loop abstraction any of the three designs uses.
		if c.sendInRangeBody && !capSafe(c, cfg) {
			report(c.firstSendPos, "send inside channel-consumption loop: pairing not provable under loop abstraction")
		}
	}

	// D4 — Start/Stop contract violation (needs dynamic-dispatch vision).
	if cfg.DynamicDispatch {
		for _, st := range s.starts {
			if !file.spawningMethods["Start"] {
				continue
			}
			if st.stopDirect {
				continue
			}
			if st.stopMethodValue && cfg.MethodValueAware {
				continue
			}
			report(st.pos, "Start spawns a listener; no Stop on any path")
		}
	}

	// D6 — double send (Listing 5), visible to all three designs.
	for _, pos := range s.doubleSends {
		report(pos, "conditional send falls through to a second send on the same channel")
	}

	// D7 — bounded-model blowup: selects too large to model precisely
	// are conservatively reported.
	if cfg.SelectBound > 0 {
		for _, sel := range s.selects {
			if sel.arms > cfg.SelectBound {
				report(sel.pos, "blocking select exceeds model bound; conservatively reported")
			}
		}
	}
	return out
}

// capSafe reports whether the channel's capacity provably absorbs the
// sends under the analyzer's value reasoning. No analyzer evaluates
// dynamically sized capacities (len(items)), faithfully reproducing the
// shared blind spot.
func capSafe(c *chanSummary, cfg Config) bool {
	switch c.cap {
	case capConst1:
		return cfg.ConstCapAware && c.sendsParent+c.sendsSpawned <= 1 && !c.sendInLoopSpawn
	case capConstN:
		return cfg.ConstCapAware && !c.sendInLoopSpawn
	default:
		return false
	}
}

// sortedChans returns the function's channels in source order for
// deterministic reports.
func sortedChans(s *funcSummary) []*chanSummary {
	out := make([]*chanSummary, 0, len(s.chans))
	for _, c := range s.chans {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].makePos < out[j-1].makePos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
