package staticbase

import (
	"fmt"
	"strings"

	"repro/internal/synth"
)

// Outcome is one analyzer's Table III row measured on a labelled corpus.
type Outcome struct {
	// Tool names the analyzer.
	Tool string
	// Reports is the total number of findings (deduplicated per
	// function, matching the paper's unique-location counting).
	Reports int
	// TP are reports on functions with a planted leak.
	TP int
	// FP are reports on safe functions (hard negatives or ordinary
	// corpus code, which is leak-free by construction).
	FP int
	// FN are planted leaks with no report.
	FN int
}

// Precision is TP/(TP+FP); zero when no reports.
func (o Outcome) Precision() float64 {
	if o.TP+o.FP == 0 {
		return 0
	}
	return float64(o.TP) / float64(o.TP+o.FP)
}

// Recall is TP/(TP+FN); zero when no leaks.
func (o Outcome) Recall() float64 {
	if o.TP+o.FN == 0 {
		return 0
	}
	return float64(o.TP) / float64(o.TP+o.FN)
}

// String renders the outcome as a Table III row.
func (o Outcome) String() string {
	return fmt.Sprintf("%-14s reports=%4d precision=%5.1f%% recall=%5.1f%% (TP=%d FP=%d FN=%d)",
		o.Tool, o.Reports, 100*o.Precision(), 100*o.Recall(), o.TP, o.FP, o.FN)
}

// Evaluate runs the configured analyzer over the corpus and scores it
// against the generator's ground truth. A finding counts once per
// (file, function); any finding on a function without a planted leak is a
// false positive, since generated non-seed code is leak-free by
// construction.
func Evaluate(corpus *synth.Corpus, cfg Config) Outcome {
	a := &Analyzer{Cfg: cfg}
	files := map[string]string{}
	for _, f := range corpus.Files() {
		if !f.Test {
			files[f.Path] = f.Content
		}
	}
	findings := a.AnalyzeFiles(files)

	leaky := map[string]bool{}
	for _, s := range corpus.Seeds() {
		if s.IsLeak {
			leaky[s.File+"\x00"+seedOwner(s)] = true
		}
	}

	reported := map[string]bool{}
	var o Outcome
	o.Tool = cfg.Name
	for _, f := range findings {
		key := f.File + "\x00" + f.Function
		if reported[key] {
			continue
		}
		reported[key] = true
		o.Reports++
		if leaky[key] {
			o.TP++
		} else {
			o.FP++
		}
	}
	for key := range leaky {
		if !reported[key] {
			o.FN++
		}
	}
	return o
}

// seedOwner maps a seed to the function name the analyzers attribute
// findings to. Contract seeds plant a type plus methods plus a caller; the
// caller carries the leak.
func seedOwner(s synth.Seed) string { return s.Function }

// PatternRecall breaks recall down by planted pattern: which leak
// classes each analyzer catches and which blindside it. The paper makes
// this point qualitatively (wrappers and dynamic dispatch "blindside"
// GOMELA-style tools); the breakdown quantifies it on the corpus.
func PatternRecall(corpus *synth.Corpus, cfg Config) map[string][2]int {
	a := &Analyzer{Cfg: cfg}
	files := map[string]string{}
	for _, f := range corpus.Files() {
		if !f.Test {
			files[f.Path] = f.Content
		}
	}
	reported := map[string]bool{}
	for _, f := range a.AnalyzeFiles(files) {
		reported[f.File+"\x00"+f.Function] = true
	}
	// out[pattern] = {caught, total}
	out := map[string][2]int{}
	for _, s := range corpus.Seeds() {
		if !s.IsLeak {
			continue
		}
		entry := out[s.Pattern]
		entry[1]++
		if reported[s.File+"\x00"+s.Function] {
			entry[0]++
		}
		out[s.Pattern] = entry
	}
	return out
}

// EvaluateAll scores the three baseline configurations on one corpus.
func EvaluateAll(corpus *synth.Corpus) []Outcome {
	return []Outcome{
		Evaluate(corpus, GCatchLike()),
		Evaluate(corpus, GoatLike()),
		Evaluate(corpus, GomelaLike()),
	}
}

// FormatTable renders outcomes in the paper's Table III layout, with the
// dynamic-tool rows appended by the caller.
func FormatTable(outcomes []Outcome) string {
	var b strings.Builder
	b.WriteString("Tool            Reports   Precision   Recall\n")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-15s %7d   %8.1f%%  %6.1f%%\n", o.Tool, o.Reports, 100*o.Precision(), 100*o.Recall())
	}
	return b.String()
}
