package staticbase

import "testing"

// Regression: function-value inlining must terminate on recursive
// closures. The repo's own detect.go uses the `var walk func(); walk =
// func(){ ...; walk() }` shape, and before the inlined-set bound the
// points-to-capable configs re-entered the literal's body on every call
// they found inside it — including the recursive one — and overflowed
// the stack when leakrank self-scanned the repo.
func TestAnalyzeSourceRecursiveClosureTerminates(t *testing.T) {
	cases := map[string]string{
		"self-recursive": `package p

func f() {
	ch := make(chan int)
	done := func() { close(ch) }
	var rec func(n int)
	rec = func(n int) {
		if n > 0 {
			rec(n - 1)
			return
		}
		done()
	}
	rec(3)
	<-ch
}
`,
		"mutually-recursive": `package p

func g() {
	ch := make(chan int)
	var even, odd func(n int)
	even = func(n int) {
		if n > 0 {
			odd(n - 1)
		}
	}
	odd = func(n int) {
		if n > 0 {
			even(n - 1)
		}
		close(ch)
	}
	even(4)
	<-ch
}
`,
	}
	for name, src := range cases {
		for _, cfg := range []Config{GCatchLike(), GoatLike(), GomelaLike()} {
			if _, err := (&Analyzer{Cfg: cfg}).AnalyzeSource(name+".go", src); err != nil {
				t.Fatalf("%s under %s: %v", name, cfg.Name, err)
			}
		}
	}
}
