package staticbase

import (
	"testing"

	"repro/internal/patterns"
	"repro/internal/synth"
)

func TestPatternRecallBreakdown(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Packages = 300
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.3, 0.1, 0.1
	corpus := synth.Generate(cfg)

	gc := PatternRecall(corpus, GCatchLike())
	gm := PatternRecall(corpus, GomelaLike())

	recall := func(m map[string][2]int, pattern string) (float64, int) {
		e := m[pattern]
		if e[1] == 0 {
			return -1, 0
		}
		return float64(e[0]) / float64(e[1]), e[1]
	}

	// Contract-violation leaks: caught by the dynamic-dispatch-capable
	// analyzer, invisible to the model extractor.
	if r, n := recall(gc, patterns.ContractDone.Name); n > 0 && r < 0.9 {
		t.Errorf("gcatch-like contract recall = %.2f over %d", r, n)
	}
	if r, n := recall(gm, patterns.ContractDone.Name); n > 0 && r > 0 {
		t.Errorf("gomela-like should miss all contract leaks; recall = %.2f over %d", r, n)
	}
	// Timer loops: no local channel, invisible to all static designs.
	if r, n := recall(gc, patterns.TimerLoop.Name); n > 0 && r > 0 {
		t.Errorf("timer loops should blindside static analysis; recall = %.2f over %d", r, n)
	}
	// Unclosed ranges: everyone sees the missing close.
	if r, n := recall(gc, patterns.UnclosedRange.Name); n > 0 && r < 0.9 {
		t.Errorf("gcatch-like unclosed-range recall = %.2f over %d", r, n)
	}
	if r, n := recall(gm, patterns.UnclosedRange.Name); n > 0 && r < 0.9 {
		t.Errorf("gomela-like unclosed-range recall = %.2f over %d", r, n)
	}
	// Totals must be consistent with Evaluate's confusion matrix.
	o := Evaluate(corpus, GCatchLike())
	caught, total := 0, 0
	for _, e := range gc {
		caught += e[0]
		total += e[1]
	}
	if caught != o.TP || total != o.TP+o.FN {
		t.Errorf("breakdown (%d/%d) disagrees with outcome (TP %d, TP+FN %d)",
			caught, total, o.TP, o.TP+o.FN)
	}
}
