package staticbase

import (
	"testing"

	"repro/internal/astcheck"
)

// FuzzAnalyzeSource fuzzes the full detector suite — the three
// staticbase configurations plus the astcheck lints, i.e. everything the
// staticindex driver runs — over arbitrary source. The invariants: no
// detector panics on any input, unparseable source surfaces as an error
// (staticbase) or is tolerated (astcheck), and every finding carries the
// file path it was produced from. The seeds cover the planted-pattern
// shapes plus deliberately torn and garbled Go.
func FuzzAnalyzeSource(f *testing.F) {
	seeds := []string{
		"package p\n",
		"package p\n\nfunc leak(ch chan int) {\n\tgo func() { ch <- 1 }()\n}\n",
		"package p\n\nfunc safe() {\n\tch := make(chan int, 1)\n\tch <- 1\n}\n",
		"package p\n\nfunc r(ch chan int) {\n\tfor v := range ch {\n\t\t_ = v\n\t}\n}\n",
		"package p\n\nimport \"time\"\n\nfunc t() {\n\tfor {\n\t\tselect {\n\t\tcase <-time.After(time.Second):\n\t\t}\n\t}\n}\n",
		"package p\n\nfunc d(ch chan int) {\n\tch <- 1\n\tch <- 2\n}\n",
		"package p\n\nfunc c() {\n\tvar rec func(int)\n\trec = func(n int) {\n\t\tif n > 0 {\n\t\t\trec(n - 1)\n\t\t}\n\t}\n\trec(3)\n}\n", // recursive closure
		"package p\n\nfunc broken( {\n",       // parse error
		"package p\n\nfunc f() { select {} }", // empty select
		"packag",                              // torn keyword
		"package p\n//" + "\x00\xff",          // garbage bytes in a comment
	}
	for _, s := range seeds {
		f.Add(s)
	}
	configs := []Config{GCatchLike(), GoatLike(), GomelaLike()}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<18 {
			t.Skip("bounded corpus")
		}
		for _, cfg := range configs {
			a := &Analyzer{Cfg: cfg}
			findings, err := a.AnalyzeSource("fuzz.go", src)
			if err != nil {
				continue // unparseable input is a legitimate outcome
			}
			for _, fd := range findings {
				if fd.File != "fuzz.go" {
					t.Fatalf("%s finding carries file %q, want fuzz.go", cfg.Name, fd.File)
				}
				if fd.Reason == "" {
					t.Fatalf("%s finding has no reason: %+v", cfg.Name, fd)
				}
			}
		}
		// The astcheck half of the staticindex driver must hold the same
		// no-panic bar on the same input.
		af, err := astcheck.ParseSource("fuzz.go", src)
		if err != nil {
			return
		}
		var lints []astcheck.Finding
		lints = append(lints, astcheck.RangeLint(af)...)
		lints = append(lints, astcheck.DoubleSendLint(af)...)
		lints = append(lints, astcheck.TimerLoopLint(af)...)
		lints = append(lints, astcheck.TransientSelects(af)...)
		for _, lf := range lints {
			if lf.Check == "" || lf.Message == "" {
				t.Fatalf("astcheck finding missing check/message: %+v", lf)
			}
		}
	})
}
