package staticbase

import (
	"testing"
	"testing/quick"

	"repro/internal/synth"
)

// TestEvaluateInvariants: on any generated corpus, every analyzer's
// outcome satisfies the confusion-matrix identities — TP + FN equals the
// number of planted leaks, reports = TP + FP, and precision/recall stay
// in [0, 1].
func TestEvaluateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		cfg := synth.DefaultConfig()
		cfg.Packages = 40
		cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.3, 0.1, 0.1
		cfg.Seed = seed
		corpus := synth.Generate(cfg)
		leaks := 0
		for _, s := range corpus.Seeds() {
			if s.IsLeak {
				leaks++
			}
		}
		for _, o := range EvaluateAll(corpus) {
			if o.TP+o.FN != leaks {
				t.Logf("seed %d %s: TP %d + FN %d != leaks %d", seed, o.Tool, o.TP, o.FN, leaks)
				return false
			}
			if o.Reports != o.TP+o.FP {
				t.Logf("seed %d %s: reports %d != TP+FP %d", seed, o.Tool, o.Reports, o.TP+o.FP)
				return false
			}
			for _, v := range []float64{o.Precision(), o.Recall()} {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzersTotalOnArbitrarySource: the analyzers must never panic on
// arbitrary (even non-Go) input; parse errors are reported, crashes are
// not acceptable for a CI tool.
func TestAnalyzersTotalOnArbitrarySource(t *testing.T) {
	a := &Analyzer{Cfg: GCatchLike()}
	f := func(src string) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on %q: %v", src, p)
			}
		}()
		_, _ = a.AnalyzeSource("x.go", src)
		_, _ = a.AnalyzeSource("x.go", "package p\nfunc f() {\n"+src+"\n}\n")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
