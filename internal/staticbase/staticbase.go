// Package staticbase implements three static partial-deadlock analyzers
// occupying the design points of the tools the paper compares against in
// Table III: GCatch (bounded path enumeration with channel-semantics
// constraints), GOAT (abstract interpretation with points-to reasoning)
// and GOMELA (syntax-directed model extraction with bounded exploration).
//
// The goal is not to reimplement those systems — they depend on Z3, SPIN
// and whole-program SSA — but to reproduce their *failure geometry*: each
// analyzer here performs a genuine intraprocedural analysis over go/ast
// and inherits, by construction, the blind spots the paper attributes to
// its counterpart:
//
//   - none of them evaluates dynamically sized channel capacities
//     (make(chan T, len(items))), so provably-safe NCast code is flagged;
//   - only the points-to-capable analyzers see a close() reached through
//     a local function value, and only the strongest follows method
//     values (stop := w.Stop; defer stop());
//   - the model-extraction analyzer cannot follow dynamic dispatch, so
//     it both misses method-contract leaks (false negatives) and
//     over-approximates large selects (false positives);
//   - all of them over-approximate cross-goroutine orderings in
//     ping-pong protocols, reporting sends that are in fact paired.
//
// Run on the labelled synthetic corpus, these produce Table III's
// precision band (roughly one half to one third), against GOLEAK's ~100%.
package staticbase

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
)

// Config encodes an analyzer's reasoning capabilities.
type Config struct {
	// Name labels the analyzer in reports.
	Name string
	// ConstCapAware models constant channel capacities exactly; without
	// it, buffered channels are treated as unbuffered.
	ConstCapAware bool
	// FuncValueCloseAware follows close() calls through local function
	// values (requires points-to reasoning).
	FuncValueCloseAware bool
	// MethodValueAware follows method values (stop := w.Stop) and
	// deferred calls through them.
	MethodValueAware bool
	// DynamicDispatch can analyze goroutines spawned inside methods
	// reached by dynamic dispatch (the Start/Stop contract pattern);
	// without it the contract leak is invisible.
	DynamicDispatch bool
	// SelectBound is the largest blocking-select arm count the analyzer
	// can model precisely; larger selects are conservatively reported.
	// Zero means unbounded.
	SelectBound int
	// WrapperAware recognises goroutine creation through local wrapper
	// functions (asyncRun etc.); without it those goroutines are
	// invisible.
	WrapperAware bool
}

// GCatchLike configures the path-enumeration analyzer (strongest
// capacity and aliasing reasoning; Table III precision ~51%).
func GCatchLike() Config {
	return Config{
		Name:                "gcatch-like",
		ConstCapAware:       true,
		FuncValueCloseAware: true,
		MethodValueAware:    true,
		DynamicDispatch:     true,
		WrapperAware:        true,
	}
}

// GoatLike configures the abstract-interpretation analyzer (points-to
// capable but weaker value reasoning; ~47%).
func GoatLike() Config {
	return Config{
		Name:                "goat-like",
		ConstCapAware:       false,
		FuncValueCloseAware: true,
		MethodValueAware:    false,
		DynamicDispatch:     true,
		WrapperAware:        true,
	}
}

// GomelaLike configures the model-extraction analyzer (AST-only, no
// points-to, bounded models; ~34%).
func GomelaLike() Config {
	return Config{
		Name:                "gomela-like",
		ConstCapAware:       true,
		FuncValueCloseAware: false,
		MethodValueAware:    false,
		DynamicDispatch:     false,
		SelectBound:         3,
		WrapperAware:        false,
	}
}

// Finding is one static report.
type Finding struct {
	// Tool names the producing analyzer.
	Tool string
	// File and Function locate the flagged code.
	File     string
	Function string
	// Pos is the flagged operation's position.
	Pos token.Position
	// Reason explains the report.
	Reason string

	// pos is the raw position before FileSet resolution.
	pos token.Pos
}

// String renders the finding as a diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s:%d: %s: %s", f.Tool, f.File, f.Pos.Line, f.Function, f.Reason)
}

// Analyzer runs one configured static analysis.
type Analyzer struct {
	Cfg Config
}

// AnalyzeSource parses and analyzes one file's source.
func (a *Analyzer) AnalyzeSource(path, src string) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, fmt.Errorf("staticbase: parsing %s: %w", path, err)
	}
	return a.analyzeFile(fset, path, file), nil
}

// AnalyzeFiles analyzes a whole corpus of (path, source) pairs, skipping
// files that fail to parse; findings are sorted by file and line.
func (a *Analyzer) AnalyzeFiles(files map[string]string) []Finding {
	var out []Finding
	for path, src := range files {
		fs, err := a.AnalyzeSource(path, src)
		if err != nil {
			continue
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

func (a *Analyzer) analyzeFile(fset *token.FileSet, path string, file *ast.File) []Finding {
	fileInfo := collectFileInfo(file)
	var out []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		sum := summarize(fn, a.Cfg)
		for _, d := range a.detect(sum, fileInfo) {
			d.Tool = a.Cfg.Name
			d.File = path
			d.Function = fn.Name.Name
			d.Pos = fset.Position(d.pos)
			out = append(out, d)
		}
	}
	return out
}
