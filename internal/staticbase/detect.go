package staticbase

import (
	"go/ast"
	"go/token"
)

// chanCap classifies a local channel's capacity as the analyzers model it.
type chanCap int

const (
	capZero chanCap = iota
	capConst1
	capConstN
	capDynamic
)

// chanSummary is the analyzer-facing protocol summary of one local channel.
type chanSummary struct {
	name    string
	makePos token.Pos
	cap     chanCap

	escapes bool // passed to calls, returned, address taken, reassigned

	sendsParent     int
	sendsSpawned    int
	sendInLoopSpawn bool // sent from goroutines spawned inside a loop
	firstSendPos    token.Pos

	recvSites      int
	recvInLoop     bool
	recvInSelect   bool // receive appears only under a multi-arm select
	recvPlain      bool // at least one unconditional, non-select receive
	firstRecvPos   token.Pos
	rangedByParent bool
	rangedBySpawn  bool
	rangePos       token.Pos

	closedDirect    bool
	closedFuncValue bool // close reached through a local function value

	sendInRangeBody bool // parent sends on this chan inside a range over another chan
	guardBeforeRecv bool // an if{...return} guard precedes the first receive
}

// selectInfo records one blocking select.
type selectInfo struct {
	pos  token.Pos
	arms int
}

// startCall records a `<var>.Start()` invocation and how Stop is handled.
type startCall struct {
	pos             token.Pos
	recv            string
	stopDirect      bool
	stopMethodValue bool
}

type funcSummary struct {
	chans       map[string]*chanSummary
	selects     []selectInfo
	starts      []startCall
	doubleSends []token.Pos

	// inlined bounds function-value inlining: each stored literal is
	// followed at most once per summary, so self- and mutually-recursive
	// closures (`var f func(); f = func(){ ...; f() }`) terminate.
	inlined map[*ast.FuncLit]bool
}

// fileInfo carries cross-declaration facts within one file.
type fileInfo struct {
	// spawningMethods holds method names whose bodies contain a go
	// statement (e.g. the contract pattern's Start).
	spawningMethods map[string]bool
}

func collectFileInfo(file *ast.File) *fileInfo {
	info := &fileInfo{spawningMethods: map[string]bool{}}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Body == nil {
			continue
		}
		spawns := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				spawns = true
			}
			return true
		})
		if spawns {
			info.spawningMethods[fn.Name.Name] = true
		}
	}
	return info
}

// summarize extracts the channel-protocol summary for one function under
// the analyzer's visibility rules (wrapper awareness etc.).
func summarize(fn *ast.FuncDecl, cfg Config) *funcSummary {
	s := &funcSummary{chans: map[string]*chanSummary{}, inlined: map[*ast.FuncLit]bool{}}
	// funcValues maps local identifiers bound to function literals, for
	// close-through-alias detection.
	funcValues := map[string]*ast.FuncLit{}
	stopValues := map[string]bool{} // idents bound to .Stop method values

	var walk func(n ast.Node, inSpawn bool, loopDepth int, rangeChan string, selectArms int)
	walk = func(n ast.Node, inSpawn bool, loopDepth int, rangeChan string, selectArms int) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.AssignStmt:
			s.scanAssign(x, funcValues, stopValues)
			for _, rhs := range x.Rhs {
				if _, isLit := rhs.(*ast.FuncLit); isLit {
					// A stored closure runs only when invoked; its body
					// is analyzed at the call site (and only by
					// points-to-capable configurations).
					continue
				}
				walk(rhs, inSpawn, loopDepth, rangeChan, selectArms)
			}
			return
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				walk(lit.Body, true, loopDepth, rangeChan, selectArms)
			}
			// go someFn(ch): the channel escapes into the callee.
			for _, arg := range x.Call.Args {
				s.markEscape(arg)
			}
			return
		case *ast.CallExpr:
			s.scanCall(x, cfg, funcValues, stopValues, inSpawn, loopDepth, rangeChan, selectArms, walk)
			return
		case *ast.SendStmt:
			s.scanSend(x, inSpawn, loopDepth, rangeChan)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.scanRecv(x, loopDepth, selectArms)
			} else if x.Op == token.AND {
				s.markEscape(x.X)
			}
		case *ast.RangeStmt:
			if name, ok := identName(x.X); ok {
				if c := s.chans[name]; c != nil {
					if inSpawn {
						c.rangedBySpawn = true
					} else {
						c.rangedByParent = true
					}
					if c.rangePos == 0 {
						c.rangePos = x.Range
					}
					c.recvSites++
					c.recvInLoop = true
					c.recvPlain = true
					walk(x.Body, inSpawn, loopDepth+1, name, selectArms)
					return
				}
			}
			walk(x.X, inSpawn, loopDepth, rangeChan, selectArms)
			walk(x.Body, inSpawn, loopDepth+1, rangeChan, selectArms)
			return
		case *ast.ForStmt:
			walk(x.Body, inSpawn, loopDepth+1, rangeChan, selectArms)
			return
		case *ast.SelectStmt:
			arms, hasDefault := 0, false
			for _, cl := range x.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok {
					if comm.Comm == nil {
						hasDefault = true
					} else {
						arms++
					}
				}
			}
			if !hasDefault {
				s.selects = append(s.selects, selectInfo{pos: x.Pos(), arms: arms})
			}
			for _, cl := range x.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				armCount := arms
				if hasDefault {
					armCount = 0 // non-blocking: treated as conditional anyway
				}
				if comm.Comm != nil {
					walk(comm.Comm, inSpawn, loopDepth, rangeChan, max(armCount, 2))
				}
				for _, stmt := range comm.Body {
					walk(stmt, inSpawn, loopDepth, rangeChan, selectArms)
				}
			}
			return
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				s.markEscape(res)
				walk(res, inSpawn, loopDepth, rangeChan, selectArms)
			}
			return
		case *ast.IfStmt:
			if containsReturn(x.Body) {
				s.markGuard(x.Pos())
			}
		case *ast.BlockStmt:
			s.scanDoubleSend(x)
		}
		// Generic descent.
		children(n, func(c ast.Node) {
			walk(c, inSpawn, loopDepth, rangeChan, selectArms)
		})
	}
	walk(fn.Body, false, 0, "", 0)
	s.resolveStops(stopValues)
	return s
}

// scanAssign records channel creations, function values and method values.
func (s *funcSummary) scanAssign(x *ast.AssignStmt, funcValues map[string]*ast.FuncLit, stopValues map[string]bool) {
	for i, rhs := range x.Rhs {
		if i >= len(x.Lhs) {
			break
		}
		lhsName, lhsOK := identName(x.Lhs[i])
		switch rv := rhs.(type) {
		case *ast.CallExpr:
			if cls, ok := classifyMakeChan(rv); ok && lhsOK {
				if x.Tok == token.DEFINE {
					s.chans[lhsName] = &chanSummary{name: lhsName, makePos: rv.Pos(), cap: cls}
				} else if c := s.chans[lhsName]; c != nil {
					c.escapes = true // reassignment muddies identity
				}
				continue
			}
		case *ast.FuncLit:
			if lhsOK {
				funcValues[lhsName] = rv
			}
			continue
		case *ast.SelectorExpr:
			if lhsOK && rv.Sel.Name == "Stop" {
				stopValues[lhsName] = true
				continue
			}
		}
		// The channel flowing into another variable escapes.
		if name, ok := identName(rhs); ok {
			if c := s.chans[name]; c != nil && x.Tok != token.DEFINE {
				c.escapes = true
			} else if c != nil {
				c.escapes = true
			}
		}
	}
}

// scanCall handles close(), wrappers, function-value invocations, method
// calls and escape marking.
func (s *funcSummary) scanCall(x *ast.CallExpr, cfg Config, funcValues map[string]*ast.FuncLit,
	stopValues map[string]bool, inSpawn bool, loopDepth int, rangeChan string, selectArms int,
	walk func(ast.Node, bool, int, string, int)) {

	switch fun := x.Fun.(type) {
	case *ast.Ident:
		switch {
		case fun.Name == "close" && len(x.Args) == 1:
			if name, ok := identName(x.Args[0]); ok {
				if c := s.chans[name]; c != nil {
					c.closedDirect = true
				}
			}
			return
		case fun.Name == "asyncRun" && len(x.Args) == 1:
			// The package goroutine wrapper. Visible only to
			// wrapper-aware analyzers; others skip the closure, so
			// its operations are invisible to them.
			if lit, ok := x.Args[0].(*ast.FuncLit); ok {
				if cfg.WrapperAware {
					walk(lit.Body, true, loopDepth, rangeChan, selectArms)
				}
				return
			}
		case funcValues[fun.Name] != nil:
			// Invocation of a local function value: follow the body
			// but attribute closes to the alias channel only for
			// points-to-capable analyzers. Each literal is inlined at
			// most once — a recursive closure calls itself (or a
			// partner) from inside its own body, and re-entering there
			// would never terminate.
			lit := funcValues[fun.Name]
			if cfg.FuncValueCloseAware && !s.inlined[lit] {
				s.inlined[lit] = true
				walk(lit.Body, inSpawn, loopDepth, rangeChan, selectArms)
			}
			return
		case stopValues[fun.Name]:
			// Handled by resolveStops.
			return
		}
	case *ast.SelectorExpr:
		if recv, ok := identName(fun.X); ok {
			switch fun.Sel.Name {
			case "Start":
				s.starts = append(s.starts, startCall{pos: x.Pos(), recv: recv})
				return
			case "Stop":
				s.markStop(recv, false)
				return
			}
		}
	}
	// Channels passed as arguments escape; other arguments descend.
	for _, arg := range x.Args {
		if name, ok := identName(arg); ok {
			if c := s.chans[name]; c != nil {
				c.escapes = true
				continue
			}
		}
		walk(arg, inSpawn, loopDepth, rangeChan, selectArms)
	}
}

func (s *funcSummary) scanSend(x *ast.SendStmt, inSpawn bool, loopDepth int, rangeChan string) {
	name, ok := identName(x.Chan)
	if !ok {
		return
	}
	c := s.chans[name]
	if c == nil {
		return
	}
	if c.firstSendPos == 0 {
		c.firstSendPos = x.Pos()
	}
	if inSpawn {
		c.sendsSpawned++
		if loopDepth > 0 {
			c.sendInLoopSpawn = true
		}
	} else {
		c.sendsParent++
		if rangeChan != "" && rangeChan != name {
			c.sendInRangeBody = true
		}
	}
}

func (s *funcSummary) scanRecv(x *ast.UnaryExpr, loopDepth int, selectArms int) {
	name, ok := identName(x.X)
	if !ok {
		return
	}
	c := s.chans[name]
	if c == nil {
		return
	}
	c.recvSites++
	if c.firstRecvPos == 0 {
		c.firstRecvPos = x.Pos()
	}
	if loopDepth > 0 {
		c.recvInLoop = true
	}
	if selectArms >= 2 {
		c.recvInSelect = true
	} else {
		c.recvPlain = true
	}
}

func (s *funcSummary) markEscape(e ast.Expr) {
	if name, ok := identName(e); ok {
		if c := s.chans[name]; c != nil {
			c.escapes = true
		}
	}
}

// markGuard records an if{...return} guard; channels whose first receive
// comes after the guard are conditionally received.
func (s *funcSummary) markGuard(pos token.Pos) {
	for _, c := range s.chans {
		if c.makePos < pos && (c.firstRecvPos == 0 || c.firstRecvPos > pos) {
			c.guardBeforeRecv = true
		}
	}
}

// markStop marks direct or method-value Stop on a receiver.
func (s *funcSummary) markStop(recv string, viaValue bool) {
	for i := range s.starts {
		if s.starts[i].recv == recv {
			if viaValue {
				s.starts[i].stopMethodValue = true
			} else {
				s.starts[i].stopDirect = true
			}
		}
	}
}

// resolveStops credits method-value stops: any `x := w.Stop` binding in a
// function containing `w.Start()` counts as a (method-value) stop.
func (s *funcSummary) resolveStops(stopValues map[string]bool) {
	if len(stopValues) == 0 {
		return
	}
	for i := range s.starts {
		s.starts[i].stopMethodValue = true
	}
}

// scanDoubleSend flags the Listing-5 shape inside a block.
func (s *funcSummary) scanDoubleSend(block *ast.BlockStmt) {
	for i, stmt := range block.List {
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil || len(ifStmt.Body.List) == 0 {
			continue
		}
		send, ok := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.SendStmt)
		if !ok {
			continue
		}
		chName, ok := identName(send.Chan)
		if !ok {
			continue
		}
		for _, later := range block.List[i+1:] {
			if _, isRet := later.(*ast.ReturnStmt); isRet {
				break
			}
			if s2, ok := later.(*ast.SendStmt); ok {
				if n2, ok := identName(s2.Chan); ok && n2 == chName {
					s.doubleSends = append(s.doubleSends, send.Pos())
				}
				break
			}
		}
	}
}

func identName(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func classifyMakeChan(call *ast.CallExpr) (chanCap, bool) {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" || len(call.Args) == 0 {
		return 0, false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return 0, false
	}
	if len(call.Args) == 1 {
		return capZero, true
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.INT {
		switch lit.Value {
		case "0":
			return capZero, true
		case "1":
			return capConst1, true
		default:
			return capConstN, true
		}
	}
	return capDynamic, true
}

func containsReturn(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// children invokes f on the direct AST children of n; a minimal generic
// descent for node kinds the walker has no special case for.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		f(c)
		return false // f recurses via walk
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
