package patterns

import (
	"math/rand"
	"sort"
)

// The paper's leak taxonomies as sampling distributions. Section VI gives
// the category split among GOLEAK's 857 pre-existing leaks (send 15%,
// receive 40%, select 45%) and sub-splits within each category; Section
// VII gives the production mix among LEAKPROF's reports. These weights
// drive the synthetic corpus and fleet so the reproduced taxonomy tables
// inherit the paper's shape.

// Weight pairs a pattern with a relative frequency.
type Weight struct {
	Pattern *Pattern
	Weight  float64
}

// Distribution is a weighted set of patterns supporting reproducible
// sampling.
type Distribution struct {
	weights []Weight
	cum     []float64
	total   float64
}

// NewDistribution builds a distribution; weights must be positive.
func NewDistribution(weights []Weight) *Distribution {
	d := &Distribution{weights: append([]Weight(nil), weights...)}
	sort.SliceStable(d.weights, func(i, j int) bool {
		return d.weights[i].Pattern.Name < d.weights[j].Pattern.Name
	})
	for _, w := range d.weights {
		d.total += w.Weight
		d.cum = append(d.cum, d.total)
	}
	return d
}

// Sample draws one pattern.
func (d *Distribution) Sample(r *rand.Rand) *Pattern {
	x := r.Float64() * d.total
	i := sort.SearchFloat64s(d.cum, x)
	if i >= len(d.weights) {
		i = len(d.weights) - 1
	}
	return d.weights[i].Pattern
}

// Weights returns a copy of the weight table.
func (d *Distribution) Weights() []Weight {
	return append([]Weight(nil), d.weights...)
}

// GoleakTaxonomy reproduces the Section VI split of pre-existing leaks
// found by GOLEAK, grouped by unique source location:
//
//	send 15%:    premature receiver return 57%, missing receiver 11%,
//	             complex state machines 29% (folded into the two above),
//	             double send 3%
//	receive 40%: non-terminating timers 44%, unclosed range loops 42%,
//	             other 14% (folded)
//	select 45%:  contract violations 86.16% (done 58.47% / context
//	             16.93% / outside-loop 10.76%), loops with no escape
//	             7.7%, empty select 6.16%
func GoleakTaxonomy() *Distribution {
	return NewDistribution([]Weight{
		// Send: 15 points split by §VI-B.
		{PrematureReturn, 15 * 0.30}, // premature return (plain)
		{TimeoutLeak, 15 * 0.27},     // premature return via timeout (57% combined)
		{MissingReceiver, 15 * 0.11},
		{ComplexState, 15 * 0.29},
		{DoubleSend, 15 * 0.03},
		// Receive: 40 points split by §VI-A.
		{TimerLoop, 40 * 0.44},
		{UnclosedRange, 40 * 0.42},
		{NilReceive, 40 * 0.14}, // "other" receive causes
		// Select: 45 points split by §VI-C.
		{ContractDone, 45 * 0.5847},
		{ContractContext, 45 * 0.1693},
		{ContractOutsideLoop, 45 * 0.1076},
		{LoopNoEscape, 45 * 0.077},
		{EmptySelect, 45 * 0.0616},
	})
}

// LeakprofTaxonomy reproduces the Section VII-A mix of production defects
// reported by LEAKPROF: timeout 5, premature return 4, NCast 4, double
// send 2, channel iteration without close 2, contract violation 1, and 6
// others (spread over the remaining patterns).
func LeakprofTaxonomy() *Distribution {
	return NewDistribution([]Weight{
		{TimeoutLeak, 5},
		{PrematureReturn, 4},
		{NCast, 4},
		{DoubleSend, 2},
		{UnclosedRange, 2},
		{ContractDone, 1},
		// The 6 uncategorised reports: spread across remaining shapes.
		{MissingReceiver, 2},
		{ComplexState, 2},
		{LoopNoEscape, 1},
		{ContractContext, 1},
	})
}
