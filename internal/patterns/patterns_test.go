package patterns

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/stack"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"complex-state", "contract-context", "contract-done",
		"contract-outside-loop", "double-send", "empty-select",
		"loop-no-escape", "missing-receiver", "ncast-leak", "nil-receive",
		"nil-send", "premature-return", "timeout-leak", "timer-loop",
		"unclosed-range",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d patterns, want %d", len(all), len(want))
	}
	for i, p := range all {
		if p.Name != want[i] {
			t.Errorf("pattern %d = %q, want %q", i, p.Name, want[i])
		}
		if p.Doc == "" || p.Trigger == nil || p.Fixed == nil || p.Stacks == nil {
			t.Errorf("pattern %q incomplete", p.Name)
		}
	}
	if _, err := Lookup("ncast-leak"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("no-such"); err == nil {
		t.Error("Lookup of unknown pattern succeeded")
	}
}

func TestByCategory(t *testing.T) {
	sends := ByCategory(CatSend)
	if len(sends) != 7 {
		t.Errorf("send patterns = %d, want 7", len(sends))
	}
	for _, p := range sends {
		if p.Category != CatSend {
			t.Errorf("%q misfiled", p.Name)
		}
	}
	if got := len(ByCategory(CatSelect)); got != 5 {
		t.Errorf("select patterns = %d, want 5", got)
	}
	if got := len(ByCategory(CatReceive)); got != 3 {
		t.Errorf("receive patterns = %d, want 3", got)
	}
}

// TestLiveTriggerAndRelease runs every releasable pattern end to end:
// trigger a few leaks, confirm goroutines park in the declared blocking
// kind with the declared stack signature, release, and confirm they exit.
func TestLiveTriggerAndRelease(t *testing.T) {
	for _, p := range All() {
		if !p.Releasable {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			before := countKind(t, p.Kind)
			inst := p.Trigger(3)
			if inst.N != 3 {
				t.Fatalf("instance N = %d", inst.N)
			}
			if err := AwaitKind(p.Kind, before+3, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			// The blocked goroutines carry this pattern's signature.
			gs, err := stack.Current()
			if err != nil {
				t.Fatal(err)
			}
			var matched int
			for _, g := range gs {
				if g.Kind() != p.Kind {
					continue
				}
				leaf := g.Leaf().Function
				if strings.Contains(leaf, "repro/internal/patterns.") {
					matched++
				}
			}
			if matched < 3 {
				t.Errorf("only %d/3 leaked goroutines carry a patterns signature", matched)
			}
			inst.Release()
			deadline := time.Now().Add(5 * time.Second)
			for countKind(t, p.Kind) > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := countKind(t, p.Kind); got > before {
				t.Errorf("after release: %d goroutines of kind %v remain (baseline %d)", got, p.Kind, before)
			}
		})
	}
}

// TestFixedVariantsLeakNothing runs each Fixed protocol and confirms no
// pattern goroutines linger.
func TestFixedVariantsLeakNothing(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.Fixed(4) // returns only when all goroutines finished
			gs, err := stack.Current()
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range gs {
				leaf := g.Leaf().Function
				if strings.Contains(leaf, "repro/internal/patterns.") && g.Kind() == p.Kind {
					t.Errorf("fixed variant leaked: %s", g)
				}
			}
		})
	}
}

func countKind(t *testing.T, k stack.Kind) int {
	t.Helper()
	gs, err := stack.Current()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, g := range gs {
		if g.Kind() == k {
			n++
		}
	}
	return n
}

func TestSyntheticStacksMatchDeclaredKind(t *testing.T) {
	for _, p := range All() {
		gs := p.Stacks(100, 5)
		if len(gs) != 5 {
			t.Errorf("%s: got %d stacks", p.Name, len(gs))
			continue
		}
		for i, g := range gs {
			if g.ID != 100+int64(i) {
				t.Errorf("%s: id sequence broken: %d", p.Name, g.ID)
			}
			if g.Kind() != p.Kind {
				t.Errorf("%s: synthetic kind = %v, want %v", p.Name, g.Kind(), p.Kind)
			}
			if g.Leaf().Function == "" || g.CreatedBy.Function == "" {
				t.Errorf("%s: synthetic stack lacks context: %+v", p.Name, g)
			}
		}
		// Synthetic stacks round-trip through the dump format.
		parsed, err := stack.Parse(stack.Format(gs))
		if err != nil {
			t.Errorf("%s: synthetic dump unparseable: %v", p.Name, err)
		} else if len(parsed) != 5 {
			t.Errorf("%s: round trip lost goroutines", p.Name)
		}
	}
}

func TestRelocate(t *testing.T) {
	gs := PrematureReturn.Stacks(1, 2)
	Relocate(gs, "/services/payments/worker.go", 77)
	for _, g := range gs {
		if g.Leaf().File != "/services/payments/worker.go" || g.Leaf().Line != 77 {
			t.Errorf("relocation failed: %+v", g.Leaf())
		}
		if g.CreatedBy.Line != 73 {
			t.Errorf("creator line = %d", g.CreatedBy.Line)
		}
		if g.Kind() != stack.KindChanSend {
			t.Error("relocation changed the kind")
		}
	}
}

func TestBenignStacksAreNotChannelBlocked(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gs := BenignStacks(r, 1, 500)
	if len(gs) != 500 {
		t.Fatalf("got %d", len(gs))
	}
	states := map[string]int{}
	for _, g := range gs {
		if g.BlockedOnChannel() {
			t.Fatalf("benign stack is channel-blocked: %s", g.State)
		}
		states[g.State]++
	}
	// The weighted mix must produce at least the three dominant states.
	for _, s := range []string{"IO wait", "syscall", "sleep"} {
		if states[s] == 0 {
			t.Errorf("state %q never sampled: %v", s, states)
		}
	}
	if states["IO wait"] <= states["running"] {
		t.Errorf("weighting off: IO wait %d should dominate running %d", states["IO wait"], states["running"])
	}
}

func TestDistributionSampling(t *testing.T) {
	d := GoleakTaxonomy()
	r := rand.New(rand.NewSource(7))
	counts := map[Category]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[d.Sample(r).Category]++
	}
	// Section VI: send 15%, receive 40%, select 45% (±3 points of noise).
	checks := []struct {
		cat  Category
		want float64
	}{{CatSend, 0.15}, {CatReceive, 0.40}, {CatSelect, 0.45}}
	for _, c := range checks {
		got := float64(counts[c.cat]) / n
		if got < c.want-0.03 || got > c.want+0.03 {
			t.Errorf("category %v frequency = %.3f, want ~%.2f", c.cat, got, c.want)
		}
	}
}

func TestLeakprofTaxonomyShape(t *testing.T) {
	d := LeakprofTaxonomy()
	r := rand.New(rand.NewSource(11))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[d.Sample(r).Name]++
	}
	// Timeout (5/24) must be the most frequent single pattern.
	max, maxName := 0, ""
	for name, c := range counts {
		if c > max {
			max, maxName = c, name
		}
	}
	if maxName != "timeout-leak" {
		t.Errorf("most frequent = %s, want timeout-leak (counts %v)", maxName, counts)
	}
}

func TestDistributionDeterminism(t *testing.T) {
	d := GoleakTaxonomy()
	a := rand.New(rand.NewSource(3))
	b := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if d.Sample(a).Name != d.Sample(b).Name {
			t.Fatal("sampling is not deterministic under equal seeds")
		}
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		CatSend: "send", CatReceive: "receive", CatSelect: "select",
		CatRunaway: "runaway", Category(42): "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Category(%d) = %q, want %q", c, got, want)
		}
	}
}
