package patterns

import (
	"context"
	"sync"
)

// Select-statement leak patterns (§VI-C): method contract violations in
// three variations, the loop with no escape hatch, and the empty select.

// worker is the Listing-6 type: Start spawns a listener bounded by Stop.
type worker struct {
	ch   chan any
	done chan any
}

func (w worker) listen(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-w.ch: // normal workflow
		case <-w.done:
			return // shut down
		}
	}
}

// Start launches the listener goroutine; the implicit contract is that
// Stop is eventually invoked.
func (w worker) Start(wg *sync.WaitGroup) {
	wg.Add(1)
	go w.listen(wg)
}

// Stop closes done, releasing the listener.
func (w worker) Stop() { close(w.done) }

// ContractDone is the canonical method-contract violation: callers invoke
// Start and forget Stop, so the done-channel select blocks forever.
var ContractDone = register(&Pattern{
	Name:       "contract-done",
	Doc:        "Listing 6: Start without Stop; listener leaks in select on done channel",
	Category:   CatSelect,
	Kind:       kindSelect,
	Releasable: true,
	Trigger: func(n int) *Instance {
		workers := make([]worker, n)
		var wg sync.WaitGroup
		for i := range workers {
			w := worker{ch: make(chan any), done: make(chan any)}
			workers[i] = w
			w.Start(&wg)
			// foo() exits without calling w.Stop().
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, w := range workers {
					w.Stop()
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			w := worker{ch: make(chan any), done: make(chan any)}
			w.Start(&wg)
			w.Stop() // the contract honoured
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("select",
		"repro/internal/patterns.worker.listen", "internal/patterns/select.go", 19,
		"repro/internal/patterns.worker.Start"),
})

// ctxWorker replaces the done channel with context cancellation, the
// 16.93% variation of the contract pattern.
type ctxWorker struct {
	ch  chan any
	ctx context.Context
}

func (w ctxWorker) listen(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-w.ch:
		case <-w.ctx.Done():
			return
		}
	}
}

// ContractContext is the contract violation with context.Context instead
// of a done channel: the caller never cancels.
var ContractContext = register(&Pattern{
	Name:       "contract-context",
	Doc:        "§VI-C: contract violation with context.Context; caller never cancels",
	Category:   CatSelect,
	Kind:       kindSelect,
	Releasable: true,
	Trigger: func(n int) *Instance {
		cancels := make([]context.CancelFunc, n)
		var wg sync.WaitGroup
		for i := range cancels {
			ctx, cancel := context.WithCancel(context.Background())
			cancels[i] = cancel
			w := ctxWorker{ch: make(chan any), ctx: ctx}
			wg.Add(1)
			go w.listen(&wg)
			// Caller drops the cancel func.
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, cancel := range cancels {
					cancel()
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			w := ctxWorker{ch: make(chan any), ctx: ctx}
			wg.Add(1)
			go w.listen(&wg)
			cancel()
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("select",
		"repro/internal/patterns.ctxWorker.listen", "internal/patterns/select.go", 93,
		"repro/internal/patterns.ContractContext.Trigger"),
})

func selectOnce(ch chan any, done chan any, wg *sync.WaitGroup) {
	defer wg.Done()
	select { // blocks at a select outside any loop
	case <-ch:
	case <-done:
	}
}

// ContractOutsideLoop is the 27.7% variation: the worker blocks at a
// select statement outside a for loop, waiting for a first message or a
// shutdown that never arrives.
var ContractOutsideLoop = register(&Pattern{
	Name:       "contract-outside-loop",
	Doc:        "§VI-C: blocking at a select outside a for loop; neither arm is ever ready",
	Category:   CatSelect,
	Kind:       kindSelect,
	Releasable: true,
	Trigger: func(n int) *Instance {
		dones := make([]chan any, n)
		var wg sync.WaitGroup
		for i := range dones {
			done := make(chan any)
			dones[i] = done
			wg.Add(1)
			go selectOnce(make(chan any), done, &wg)
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, done := range dones {
					close(done)
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			done := make(chan any)
			wg.Add(1)
			go selectOnce(make(chan any), done, &wg)
			close(done)
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("select",
		"repro/internal/patterns.selectOnce", "internal/patterns/select.go", 147,
		"repro/internal/patterns.ContractOutsideLoop.Trigger"),
})

func loopNoEscape(data chan int, escape chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case v := <-data:
			_ = v // process and loop: no path leads to return or break
		case <-escape:
			return // harness-only escape hatch, never ready while leaked
		}
	}
}

// LoopNoEscape is the 7.7% select category: an infinite for/select whose
// arms never lead to a return or break, so the goroutine can never
// terminate even when arms fire.
var LoopNoEscape = register(&Pattern{
	Name:       "loop-no-escape",
	Doc:        "§VI-C: infinite for/select with no execution path to return or break",
	Category:   CatSelect,
	Kind:       kindSelect,
	Releasable: true,
	Trigger: func(n int) *Instance {
		escapes := make([]chan struct{}, n)
		var wg sync.WaitGroup
		for i := range escapes {
			escape := make(chan struct{})
			escapes[i] = escape
			wg.Add(1)
			go loopNoEscape(make(chan int), escape, &wg)
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, escape := range escapes {
					close(escape)
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			escape := make(chan struct{})
			wg.Add(1)
			go loopNoEscape(make(chan int), escape, &wg)
			close(escape) // a termination path exists and is exercised
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("select",
		"repro/internal/patterns.loopNoEscape", "internal/patterns/select.go", 196,
		"repro/internal/patterns.LoopNoEscape.Trigger"),
})

func emptySelect(wg *sync.WaitGroup) {
	defer wg.Done()
	select {} // blocks forever by construction
}

// EmptySelect is "select {}": a guaranteed partial deadlock with no
// possible release. Triggered goroutines leak until process exit.
var EmptySelect = register(&Pattern{
	Name:       "empty-select",
	Doc:        "§VI-C: select with no cases; 6.16% of select leaks; unreleasable",
	Category:   CatSelect,
	Kind:       kindSelectNoCases,
	Releasable: false,
	Trigger: func(n int) *Instance {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go emptySelect(&wg)
		}
		return &Instance{N: n, Releasable: false}
	},
	Fixed: func(n int) {
		// The only fix is not writing select{}; the corrected variant
		// performs a select with a ready arm.
		var wg sync.WaitGroup
		done := make(chan struct{})
		close(done)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case <-done:
				}
			}()
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("select (no cases)",
		"repro/internal/patterns.emptySelect", "internal/patterns/select.go", 252,
		"repro/internal/patterns.EmptySelect.Trigger"),
})

func nilSend(wg *sync.WaitGroup) {
	defer wg.Done()
	var ch chan int
	ch <- 1 // send on nil channel: blocks forever
}

// NilSend sends on a nil channel: a guaranteed, unreleasable leak.
var NilSend = register(&Pattern{
	Name:       "nil-send",
	Doc:        "Table IV: chan send (nil chan); guaranteed partial deadlock; unreleasable",
	Category:   CatSend,
	Kind:       kindChanSendNil,
	Releasable: false,
	Trigger: func(n int) *Instance {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go nilSend(&wg)
		}
		return &Instance{N: n, Releasable: false}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int, 1) // properly allocated channel
			wg.Add(1)
			go func() {
				defer wg.Done()
				ch <- 1
			}()
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send (nil chan)",
		"repro/internal/patterns.nilSend", "internal/patterns/select.go", 296,
		"repro/internal/patterns.NilSend.Trigger"),
})

func nilReceive(wg *sync.WaitGroup) {
	defer wg.Done()
	var ch chan int
	<-ch // receive on nil channel: blocks forever
}

// NilReceive receives from a nil channel: a guaranteed, unreleasable leak.
var NilReceive = register(&Pattern{
	Name:       "nil-receive",
	Doc:        "Table IV: chan receive (nil chan); guaranteed partial deadlock; unreleasable",
	Category:   CatReceive,
	Kind:       kindChanReceiveNil,
	Releasable: false,
	Trigger: func(n int) *Instance {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go nilReceive(&wg)
		}
		return &Instance{N: n, Releasable: false}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int, 1)
			ch <- 1
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-ch
			}()
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan receive (nil chan)",
		"repro/internal/patterns.nilReceive", "internal/patterns/select.go", 332,
		"repro/internal/patterns.NilReceive.Trigger"),
})
