package patterns

import (
	"math/rand"

	"repro/internal/stack"
)

// stacksTemplate returns a Stacks generator producing dump records with
// the given runtime state, blocking function (leaf frame) and creator.
// Line numbers are indicative of this package's sources; large-scale
// simulations relabel File/Line via Relocate to model distinct services.
func stacksTemplate(state, leafFn, file string, line int, createdBy string) func(int64, int) []*stack.Goroutine {
	return func(firstID int64, n int) []*stack.Goroutine {
		out := make([]*stack.Goroutine, n)
		for i := range out {
			out[i] = &stack.Goroutine{
				ID:    firstID + int64(i),
				State: state,
				Frames: []stack.Frame{
					{Function: leafFn, File: file, Line: line, Offset: 0x2b},
				},
				CreatedBy: stack.Frame{Function: createdBy, File: file, Line: line - 4, Offset: 0x5c},
				CreatorID: 1,
			}
		}
		return out
	}
}

// Relocate rewrites the source coordinates of synthesised goroutines so a
// simulated service exhibits the pattern at its own code location; the
// function names keep the pattern recognisable while File/Line provide the
// grouping key LEAKPROF aggregates on.
func Relocate(gs []*stack.Goroutine, file string, line int) []*stack.Goroutine {
	for _, g := range gs {
		for i := range g.Frames {
			g.Frames[i].File = file
			g.Frames[i].Line = line
		}
		g.CreatedBy.File = file
		g.CreatedBy.Line = line - 4
	}
	return gs
}

// BenignStacks synthesises the background population of a healthy service
// instance: running handlers, IO waits, syscalls, sleeps, sync waits —
// the non-channel rows of Table IV. The mix follows the table's relative
// frequencies among non-channel states.
func BenignStacks(r *rand.Rand, firstID int64, n int) []*stack.Goroutine {
	type tmpl struct {
		state  string
		fn     string
		file   string
		line   int
		weight int
	}
	// Weights are proportional to Table IV's non-channel rows:
	// IO wait 9K, syscall 6.4K, sleep 5.5K, running 407, cond 46, sema 138.
	templates := []tmpl{
		{"IO wait", "net/http.(*conn).serve", "net/http/server.go", 1995, 9000},
		{"syscall", "os/signal.signal_recv", "runtime/sigqueue.go", 152, 6400},
		{"sleep", "svc/poller.tick", "svc/poller/tick.go", 33, 5500},
		{"running", "svc/handler.Serve", "svc/handler/serve.go", 12, 407},
		{"sync.Cond.Wait", "svc/queue.(*Q).Pop", "svc/queue/q.go", 61, 46},
		{"semacquire", "svc/cache.(*C).Get", "svc/cache/c.go", 88, 138},
	}
	total := 0
	for _, t := range templates {
		total += t.weight
	}
	out := make([]*stack.Goroutine, n)
	for i := range out {
		pick := r.Intn(total)
		var chosen tmpl
		for _, t := range templates {
			if pick < t.weight {
				chosen = t
				break
			}
			pick -= t.weight
		}
		out[i] = &stack.Goroutine{
			ID:    firstID + int64(i),
			State: chosen.state,
			Frames: []stack.Frame{
				{Function: chosen.fn, File: chosen.file, Line: chosen.line, Offset: 0x11},
			},
			CreatedBy: stack.Frame{Function: "svc/server.Start", File: "svc/server/start.go", Line: 20},
			CreatorID: 1,
		}
	}
	return out
}
