package patterns

import "sync"

// ComplexState models the §VI-B "other causes involving complex state
// machine" bucket (29% of send leaks): a two-stage pipeline where stage
// two aborts on a validation error, leaving stage one blocked sending into
// the middle channel. The blocking operation is several calls away from
// the broken state transition, which is what makes these leaks hard to
// spot statically.

func stageOne(in <-chan int, mid chan<- int, wg *sync.WaitGroup) {
	defer wg.Done()
	for v := range in {
		mid <- v * 2 // leaks here once stage two has aborted
	}
}

func stageTwo(mid <-chan int, out chan<- int, abortOn int, wg *sync.WaitGroup) {
	defer wg.Done()
	for v := range mid {
		if v == abortOn {
			return // state machine enters an error state and gives up
		}
		out <- v
	}
}

// ComplexState is the pipeline leak with a multi-hop cause.
var ComplexState = register(&Pattern{
	Name:       "complex-state",
	Doc:        "§VI-B: state-machine pipeline; downstream stage aborts, upstream send leaks",
	Category:   CatSend,
	Kind:       kindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		mids := make([]chan int, n)
		ins := make([]chan int, n)
		var wg sync.WaitGroup
		for i := range mids {
			in := make(chan int)
			mid := make(chan int)
			out := make(chan int, 8)
			ins[i] = in
			mids[i] = mid
			wg.Add(2)
			go stageOne(in, mid, &wg)
			go stageTwo(mid, out, 2, &wg) // aborts on the first value (1*2)
			in <- 1                       // consumed, triggers the abort
			in <- 2                       // stage one picks it up and blocks on mid
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for i := range mids {
					<-mids[i]     // unblock stage one's pending send
					close(ins[i]) // let stage one's range loop end
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			in := make(chan int)
			mid := make(chan int, 8) // buffered: the abort cannot strand the sender
			out := make(chan int, 8)
			wg.Add(2)
			go stageOne(in, mid, &wg)
			go stageTwo(mid, out, 2, &wg)
			in <- 1
			in <- 2
			close(in)
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.stageOne", "internal/patterns/complexstate.go", 15,
		"repro/internal/patterns.ComplexState.Trigger"),
})
