package patterns

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stack"
)

// The blocking bodies below are deliberately named top-level functions so
// that each pattern produces a distinct, recognisable stack signature —
// exactly what GOLEAK and LEAKPROF key on.

// AwaitKind polls the live goroutine dump until at least n goroutines of
// the given blocking kind exist, or the timeout elapses. Trigger returns
// as soon as the goroutines are spawned; callers that measure blocking
// state must await the park.
func AwaitKind(kind stack.Kind, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		gs, err := stack.Current()
		if err != nil {
			return err
		}
		count := 0
		for _, g := range gs {
			if g.Kind() == kind {
				count++
			}
		}
		if count >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("patterns: only %d/%d goroutines reached %v within %v", count, n, kind, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- Premature function return (Listing 1 / Listing 7; §VII-A1) ----

func prematureSender(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	ch <- 1 // blocks forever: the parent returned without receiving
}

// PrematureReturn is the motivating example: the parent spawns a sender on
// an unbuffered channel and returns on an error path without receiving.
var PrematureReturn = register(&Pattern{
	Name:       "premature-return",
	Doc:        "Listings 1 and 7: parent returns early; sender on unbuffered channel leaks",
	Category:   CatSend,
	Kind:       stack.KindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		chans := make([]chan int, n)
		var wg sync.WaitGroup
		for i := range chans {
			ch := make(chan int)
			chans[i] = ch
			wg.Add(1)
			go prematureSender(ch, &wg)
			// The parent's error path: return without <-ch.
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, ch := range chans {
					<-ch
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		// The paper's simplest fix: give the channel a buffer of one,
		// unblocking the send unconditionally.
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int, 1)
			wg.Add(1)
			go prematureSender(ch, &wg)
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.prematureSender", "internal/patterns/live.go", 52,
		"repro/internal/patterns.PrematureReturn.Trigger"),
})

// ---- The timeout leak (Listing 8; §VII-A2) ----

func timeoutSender(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	ch <- 1 // no receiver: the handler's select took ctx.Done()
}

// TimeoutLeak is the context-cancellation variant of premature return:
// a handler selects between the worker channel and ctx.Done(), and the
// context wins.
var TimeoutLeak = register(&Pattern{
	Name:       "timeout-leak",
	Doc:        "Listing 8: handler returns on ctx.Done() before receiving from the worker",
	Category:   CatSend,
	Kind:       stack.KindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		chans := make([]chan int, n)
		var wg sync.WaitGroup
		for i := range chans {
			ch := make(chan int)
			chans[i] = ch
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // the request deadline has already fired
			wg.Add(1)
			go timeoutSender(ch, &wg)
			select {
			case <-ch:
			case <-ctx.Done():
				// Handler returns; sender leaks.
			}
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, ch := range chans {
					<-ch
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int, 1) // capacity 1: send cannot block
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			wg.Add(1)
			go timeoutSender(ch, &wg)
			select {
			case <-ch:
			case <-ctx.Done():
			}
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.timeoutSender", "internal/patterns/live.go", 101,
		"repro/internal/patterns.TimeoutLeak.Trigger"),
})

// ---- The NCast leak (Listing 9; §VII-A3) ----

func ncastSender(ch chan int, v int, wg *sync.WaitGroup) {
	defer wg.Done()
	ch <- v // only the first sender finds the single receiver
}

// NCast spawns one sender per item on an unbuffered channel but receives
// only once; all senders but the first leak.
var NCast = register(&Pattern{
	Name:       "ncast-leak",
	Doc:        "Listing 9: len(items) sends, one receive; n-1 senders leak",
	Category:   CatSend,
	Kind:       stack.KindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		ch := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < n+1; i++ {
			wg.Add(1)
			go ncastSender(ch, i, &wg)
		}
		<-ch // wait for the first result, ignore the rest
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for i := 0; i < n; i++ {
					<-ch
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		// Capacity len(items) guarantees every send unblocks.
		ch := make(chan int, n+1)
		var wg sync.WaitGroup
		for i := 0; i < n+1; i++ {
			wg.Add(1)
			go ncastSender(ch, i, &wg)
		}
		<-ch
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.ncastSender", "internal/patterns/live.go", 148,
		"repro/internal/patterns.NCast.Trigger"),
})

// ---- The double send (Listing 5; §VI-B1) ----

func doubleSender(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	fail := true
	if fail {
		ch <- 0 // error path: send nil... and forget to return
	}
	ch <- 1 // second send: no receiver remains
}

// DoubleSend reproduces the missing-return bug: the error path sends, falls
// through, and sends again to a receiver that only reads once.
var DoubleSend = register(&Pattern{
	Name:       "double-send",
	Doc:        "Listing 5: missing return after the error send; second send leaks",
	Category:   CatSend,
	Kind:       stack.KindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		chans := make([]chan int, n)
		var wg sync.WaitGroup
		for i := range chans {
			ch := make(chan int)
			chans[i] = ch
			wg.Add(1)
			go doubleSender(ch, &wg)
			<-ch // the receiver accepts exactly one message
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, ch := range chans {
					<-ch // accept the stray second message
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int, 2) // room for both sends
			wg.Add(1)
			go doubleSender(ch, &wg)
			<-ch
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.doubleSender", "internal/patterns/live.go", 190,
		"repro/internal/patterns.DoubleSend.Trigger"),
})

// ---- Missing receiver (§VI-B: API caller never creates the receiver) ----

func orphanSender(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	ch <- 1
}

// MissingReceiver models a library API that spawns a sender while the
// caller never wires up the receiving side.
var MissingReceiver = register(&Pattern{
	Name:       "missing-receiver",
	Doc:        "§VI-B: library creates the sender; caller never creates the receiver",
	Category:   CatSend,
	Kind:       stack.KindChanSend,
	Releasable: true,
	Trigger: func(n int) *Instance {
		chans := make([]chan int, n)
		var wg sync.WaitGroup
		for i := range chans {
			ch := make(chan int)
			chans[i] = ch
			wg.Add(1)
			go orphanSender(ch, &wg)
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				for _, ch := range chans {
					<-ch
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			ch := make(chan int)
			wg.Add(1)
			go orphanSender(ch, &wg)
			<-ch // the caller correctly consumes the result
		}
		wg.Wait()
	},
	Stacks: stacksTemplate("chan send",
		"repro/internal/patterns.orphanSender", "internal/patterns/live.go", 233,
		"repro/internal/patterns.MissingReceiver.Trigger"),
})

// ---- Unclosed range loop (Listing 3; §VI-A1) ----

func rangeConsumer(ch chan int, wg *sync.WaitGroup) {
	defer wg.Done()
	for range ch { // exits only when ch is closed — which never happens
	}
}

// UnclosedRange is the producer/consumer pool whose producer forgets
// close(ch): after the last item, every consumer blocks in channel
// receive.
var UnclosedRange = register(&Pattern{
	Name:       "unclosed-range",
	Doc:        "Listing 3: consumers range over a channel the producer never closes",
	Category:   CatReceive,
	Kind:       stack.KindChanReceive,
	Releasable: true,
	Trigger: func(n int) *Instance {
		ch := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go rangeConsumer(ch, &wg)
		}
		for i := 0; i < 3; i++ { // the producer inserts a few items
			ch <- i
		}
		// ... and returns without close(ch).
		return &Instance{
			N: n, Releasable: true,
			release: func() { close(ch) },
			wait:    wg.Wait,
		}
	},
	Fixed: func(n int) {
		ch := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go rangeConsumer(ch, &wg)
		}
		for i := 0; i < 3; i++ {
			ch <- i
		}
		close(ch) // the missing statement
		wg.Wait()
	},
	Stacks: stacksTemplate("chan receive",
		"repro/internal/patterns.rangeConsumer", "internal/patterns/live.go", 279,
		"repro/internal/patterns.UnclosedRange.Trigger"),
})

// ---- Infinite receive loop with timers (Listing 4; §VI-A2) ----

func timerLoop(t *time.Timer, stopped *atomic.Bool, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		<-t.C // idiomatic heartbeat stall: blocks in chan receive
		if stopped.Load() {
			return
		}
		t.Reset(time.Hour)
	}
}

// TimerLoop is the stats-reporter anti-pattern: a goroutine whose lifetime
// nothing controls, periodically waking on a timer channel. The paper
// counts these under channel-receive leaks (44% of them).
var TimerLoop = register(&Pattern{
	Name:       "timer-loop",
	Doc:        "Listing 4: infinite <-timer.C heartbeat loop with no termination arm",
	Category:   CatReceive,
	Kind:       stack.KindChanReceive,
	Releasable: true,
	Trigger: func(n int) *Instance {
		timers := make([]*time.Timer, n)
		var stopped atomic.Bool
		var wg sync.WaitGroup
		for i := range timers {
			t := time.NewTimer(time.Hour)
			timers[i] = t
			wg.Add(1)
			go timerLoop(t, &stopped, &wg)
		}
		return &Instance{
			N: n, Releasable: true,
			release: func() {
				stopped.Store(true)
				for _, t := range timers {
					t.Reset(0) // fire immediately; the loop observes stopped
				}
			},
			wait: wg.Wait,
		}
	},
	Fixed: func(n int) {
		// The paper's recommendation: a select with a termination arm.
		done := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			t := time.NewTimer(time.Hour)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer t.Stop()
				for {
					select {
					case <-t.C:
						t.Reset(time.Hour)
					case <-done:
						return
					}
				}
			}()
		}
		close(done)
		wg.Wait()
	},
	Stacks: stacksTemplate("chan receive",
		"repro/internal/patterns.timerLoop", "internal/patterns/live.go", 327,
		"repro/internal/patterns.TimerLoop.Trigger"),
})
