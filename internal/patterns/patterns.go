// Package patterns implements, as executable Go code, every goroutine-leak
// pattern the paper catalogues: the motivating example (Listing 1), the
// test-time taxonomies of Section VI (unclosed range loops, timer receive
// loops, double send, method contract violations, empty selects, nil
// channels) and the production patterns of Section VII (premature function
// return, the timeout leak, the NCast leak).
//
// Each Pattern supports three uses:
//
//   - Trigger leaks real goroutines, genuinely blocked on genuine channel
//     operations, so GOLEAK's live detection path is exercised end to end.
//     Where possible the Instance retains an escape hatch (a rescue
//     receiver, a close, a timer reset) so harness code can unblock the
//     goroutines afterwards; a few patterns (nil channels, empty select)
//     are unreleasable by construction and are flagged as such.
//   - Stacks synthesises the stack-dump records such a leak produces, for
//     fleet-scale simulation where spawning millions of real goroutines
//     would be impractical.
//   - Fixed runs the corrected variant of the same protocol, which leaks
//     nothing; before/after experiments diff the two.
package patterns

import (
	"fmt"
	"sort"

	"repro/internal/stack"
)

// Category is the coarse leak classification of Section VI: which channel
// operation the leaked goroutine blocks on.
type Category int

const (
	// CatSend blocks on a channel send.
	CatSend Category = iota
	// CatReceive blocks on a channel receive.
	CatReceive
	// CatSelect blocks in a select statement.
	CatSelect
	// CatRunaway is a lingering-but-cycling goroutine (the timer loop of
	// Listing 4): an anti-pattern GOLEAK reports even though it is not a
	// partial deadlock in the strict sense.
	CatRunaway
)

// String names the category as in Section VI.
func (c Category) String() string {
	switch c {
	case CatSend:
		return "send"
	case CatReceive:
		return "receive"
	case CatSelect:
		return "select"
	case CatRunaway:
		return "runaway"
	}
	return "unknown"
}

// Instance is one triggered leak: n goroutines blocked by a pattern.
type Instance struct {
	// N is the number of goroutines leaked.
	N int
	// Releasable reports whether Release can unblock them.
	Releasable bool

	release func()
	wait    func()
}

// Release unblocks the leaked goroutines (no-op when !Releasable) and
// waits for them to exit, so subsequent measurements see a clean address
// space.
func (in *Instance) Release() {
	if in.release != nil {
		in.release()
	}
	if in.wait != nil {
		in.wait()
	}
}

// Pattern is one leak pattern from the paper.
type Pattern struct {
	// Name is the registry key, e.g. "premature-return".
	Name string
	// Doc cites the paper construct this reproduces.
	Doc string
	// Category is the blocking family of the leaked goroutines.
	Category Category
	// Kind is the exact runtime blocking kind the leak exhibits.
	Kind stack.Kind
	// Releasable reports whether triggered instances can be unblocked.
	Releasable bool

	// Trigger leaks n real goroutines and returns the instance handle.
	Trigger func(n int) *Instance
	// Fixed runs the corrected protocol with n goroutines; it returns
	// once all of them have finished (leaking none).
	Fixed func(n int)
	// Stacks synthesises the dump records of n goroutines leaked by this
	// pattern, with ids starting at firstID. The records carry the same
	// state strings and frame shapes the live leak produces.
	Stacks func(firstID int64, n int) []*stack.Goroutine
}

var registry = map[string]*Pattern{}

func register(p *Pattern) *Pattern {
	if _, dup := registry[p.Name]; dup {
		panic("patterns: duplicate registration of " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// Lookup returns the named pattern.
func Lookup(name string) (*Pattern, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("patterns: unknown pattern %q", name)
	}
	return p, nil
}

// All returns every registered pattern sorted by name.
func All() []*Pattern {
	out := make([]*Pattern, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Simulatable returns every registered pattern usable by the fleet
// simulator's pre-aggregated path: the pattern can synthesise dump
// records and those records classify as a blocked channel operation
// (the LEAKPROF grouping key). Runaway patterns like the timer loop
// synthesise records that are running, not blocked — a daily profile
// sweep cannot distinguish them from healthy churn, so they are
// excluded here exactly as they would be invisible in production.
func Simulatable() []*Pattern {
	var out []*Pattern
	for _, p := range All() {
		if p.Stacks == nil {
			continue
		}
		rep := p.Stacks(1, 1)
		if len(rep) == 0 {
			continue
		}
		if _, ok := rep[0].BlockedChannelOp(); !ok {
			continue
		}
		out = append(out, p)
	}
	return out
}

// ByCategory returns the registered patterns in the given category, sorted
// by name.
func ByCategory(c Category) []*Pattern {
	var out []*Pattern
	for _, p := range All() {
		if p.Category == c {
			out = append(out, p)
		}
	}
	return out
}

// Kind aliases keep the pattern literals compact.
const (
	kindChanSend       = stack.KindChanSend
	kindChanReceive    = stack.KindChanReceive
	kindChanSendNil    = stack.KindChanSendNil
	kindChanReceiveNil = stack.KindChanReceiveNil
	kindSelect         = stack.KindSelect
	kindSelectNoCases  = stack.KindSelectNoCases
)
