package textplot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasicShape(t *testing.T) {
	out := Chart{Rows: 5, Cols: 20, YLabel: "GiB"}.Render(
		Series{Label: "leaking", Values: []float64{0, 1, 2, 3, 4}},
		Series{Label: "fixed", Values: []float64{0, 1, 0, 1, 0}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5+2 { // rows + axis + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "leaking") || !strings.Contains(out, "fixed") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "GiB") {
		t.Errorf("y label missing:\n%s", out)
	}
	// The max value appears on the top row, the min on the bottom.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("peak not on top row:\n%s", out)
	}
	// Both series hit zero at column 0; overlapping points take the
	// later series' glyph, so the bottom row shows 'o'.
	if !strings.ContainsAny(lines[4], "*o") {
		t.Errorf("zero not on bottom row:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := (Chart{}).Render(); !strings.Contains(out, "empty") {
		t.Errorf("empty chart = %q", out)
	}
	if out := (Chart{}).Render(Series{Label: "flat", Values: []float64{0, 0}}); out == "" {
		t.Error("all-zero series should still render")
	}
}

func TestRenderNeverPanics(t *testing.T) {
	f := func(vals []float64, rows, cols uint8) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic: %v (vals=%v rows=%d cols=%d)", p, vals, rows, cols)
			}
		}()
		for i, v := range vals {
			// Sanitize NaN/Inf from quick's float generator: the chart
			// contract is finite inputs, but panics are never OK.
			if v != v || v > 1e300 || v < -1e300 {
				vals[i] = 0
			}
			if vals[i] < 0 {
				vals[i] = -vals[i]
			}
		}
		c := Chart{Rows: int(rows % 40), Cols: int(cols % 100)}
		_ = c.Render(Series{Label: "s", Values: vals})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"w1", "w2", "w3"}, []int{5, 47, 0}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero bar should be empty: %q", lines[2])
	}
	if !strings.Contains(lines[0], " 5") || !strings.Contains(lines[1], " 47") {
		t.Errorf("values missing:\n%s", out)
	}
}
