// Package textplot renders time series as ASCII charts for the
// experiment harness's figure output: the paper's figures are plots, and
// a terminal rendering makes the reproduced shape inspectable without
// leaving the shell.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled line of a chart.
type Series struct {
	Label  string
	Values []float64
}

// Chart renders one or more series into a rows×cols character grid with
// a y-axis scale. Series are drawn with distinct glyphs in order:
// '*', 'o', '+', 'x'.
type Chart struct {
	// Rows is the plot height in lines; default 12.
	Rows int
	// Cols is the plot width in characters; default 64.
	Cols int
	// YLabel annotates the axis (e.g. "GiB").
	YLabel string
}

var glyphs = []byte{'*', 'o', '+', 'x'}

// Render draws the chart.
func (c Chart) Render(series ...Series) string {
	rows, cols := c.Rows, c.Cols
	if rows <= 0 {
		rows = 12
	}
	if cols <= 0 {
		cols = 64
	}
	maxV, maxN := 0.0, 0
	for _, s := range series {
		if len(s.Values) > maxN {
			maxN = len(s.Values)
		}
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxN == 0 {
		return "(empty chart)\n"
	}
	if maxV == 0 {
		maxV = 1
	}

	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for i, v := range s.Values {
			col := 0
			if maxN > 1 {
				col = i * (cols - 1) / (maxN - 1)
			}
			row := rows - 1 - int(math.Round(v/maxV*float64(rows-1)))
			if row < 0 {
				row = 0
			}
			if row >= rows {
				row = rows - 1
			}
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	for i, line := range grid {
		yVal := maxV * float64(rows-1-i) / float64(rows-1)
		fmt.Fprintf(&b, "%10s |%s\n", formatTick(yVal), string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", cols))
	if c.YLabel != "" || len(series) > 0 {
		var legend []string
		for si, s := range series {
			legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Label))
		}
		fmt.Fprintf(&b, "%10s  y: %s   %s\n", "", c.YLabel, strings.Join(legend, "   "))
	}
	return b.String()
}

// formatTick renders a y-axis value compactly.
func formatTick(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Table renders rows as an aligned plain-text table with a separator
// under the header (used for the chaos scenario matrix's pass/fail
// table). Every row is padded to the widest cell of its column; short
// rows are padded with empty cells.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range width {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders labelled integer quantities as a horizontal bar chart
// (used for Fig 5's weekly histogram).
func Bars(labels []string, values []int, width int) string {
	if width <= 0 {
		width = 50
	}
	max := 1
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := v * width / max
		fmt.Fprintf(&b, "%8s |%s %d\n", label, strings.Repeat("#", n), v)
	}
	return b.String()
}
