package stack

import (
	"strings"
	"testing"
	"time"
)

const sampleDump = `goroutine 1 [running]:
main.main()
	/src/app/main.go:10 +0x1a

goroutine 18 [chan send, 5 minutes]:
repro/internal/patterns.PrematureReturn.func1()
	/src/app/patterns/premature.go:21 +0x2b
created by repro/internal/patterns.PrematureReturn in goroutine 1
	/src/app/patterns/premature.go:20 +0x5c

goroutine 19 [chan receive (nil chan)]:
main.recvNil()
	/src/app/main.go:30 +0x11
main.main()
	/src/app/main.go:12 +0x40

goroutine 20 [select, 2 hours, locked to thread]:
main.worker()
	/src/app/worker.go:44 +0x99
created by main.Start
	/src/app/worker.go:12 +0x31
`

func TestParseSampleDump(t *testing.T) {
	gs, err := Parse(sampleDump)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d goroutines, want 4", len(gs))
	}

	g := gs[0]
	if g.ID != 1 || g.State != "running" {
		t.Errorf("g0 = id %d state %q, want 1 running", g.ID, g.State)
	}
	if len(g.Frames) != 1 || g.Frames[0].Function != "main.main" {
		t.Errorf("g0 frames = %+v", g.Frames)
	}
	if g.Frames[0].File != "/src/app/main.go" || g.Frames[0].Line != 10 {
		t.Errorf("g0 frame location = %s:%d", g.Frames[0].File, g.Frames[0].Line)
	}
	if g.Frames[0].Offset != 0x1a {
		t.Errorf("g0 frame offset = %#x, want 0x1a", g.Frames[0].Offset)
	}

	g = gs[1]
	if g.ID != 18 || g.State != "chan send" {
		t.Errorf("g1 = id %d state %q", g.ID, g.State)
	}
	if g.WaitTime != 5*time.Minute {
		t.Errorf("g1 wait = %v, want 5m", g.WaitTime)
	}
	if g.CreatedBy.Function != "repro/internal/patterns.PrematureReturn" {
		t.Errorf("g1 created by %q", g.CreatedBy.Function)
	}
	if g.CreatorID != 1 {
		t.Errorf("g1 creator id = %d, want 1", g.CreatorID)
	}
	if g.CreatedBy.Line != 20 {
		t.Errorf("g1 created-by line = %d, want 20", g.CreatedBy.Line)
	}

	g = gs[2]
	if g.State != "chan receive (nil chan)" {
		t.Errorf("g2 state = %q", g.State)
	}
	if len(g.Frames) != 2 {
		t.Errorf("g2 has %d frames, want 2", len(g.Frames))
	}

	g = gs[3]
	if !g.Locked {
		t.Error("g3 should be locked to thread")
	}
	if g.WaitTime != 2*time.Hour {
		t.Errorf("g3 wait = %v, want 2h", g.WaitTime)
	}
	if g.CreatorID != 0 {
		t.Errorf("g3 creator id = %d, want 0 (absent)", g.CreatorID)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	gs, err := Parse("")
	if err != nil || len(gs) != 0 {
		t.Fatalf("empty: %v, %d goroutines", err, len(gs))
	}
	// Preamble lines outside a block are skipped.
	gs, err = Parse("goroutine profile: total 3\n\ngoroutine 7 [running]:\nmain.main()\n\t/a/b.go:1 +0x1\n")
	if err != nil {
		t.Fatalf("preamble: %v", err)
	}
	if len(gs) != 1 || gs[0].ID != 7 {
		t.Fatalf("preamble: got %+v", gs)
	}
}

func TestParseMalformedHeader(t *testing.T) {
	// Lines that merely resemble headers are preamble and skipped; a
	// robust consumer of live runtime output must not reject the dump.
	for _, bad := range []string{
		"goroutine x [running]:\n",
		"goroutine 5\n",
		"goroutine 5 running:\n",
		"goroutine profile: total 99\n",
	} {
		gs, err := Parse(bad)
		if err != nil {
			t.Errorf("Parse(%q) errored: %v", bad, err)
		}
		if len(gs) != 0 {
			t.Errorf("Parse(%q) produced %d goroutines, want 0", bad, len(gs))
		}
	}
}

func TestParseFrameWithoutLocation(t *testing.T) {
	dump := "goroutine 3 [select]:\nsome.pkg.fn()\nother.pkg.fn2()\n\t/x/y.go:9\n"
	gs, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || len(gs[0].Frames) != 2 {
		t.Fatalf("got %+v", gs)
	}
	if gs[0].Frames[0].File != "" {
		t.Errorf("frame 0 should have no file, got %q", gs[0].Frames[0].File)
	}
	if gs[0].Frames[1].Line != 9 {
		t.Errorf("frame 1 line = %d", gs[0].Frames[1].Line)
	}
}

func TestLeafSkipsRuntimeFrames(t *testing.T) {
	dump := `goroutine 9 [chan send]:
runtime.gopark()
	/go/src/runtime/proc.go:382 +0xc6
runtime.chansend()
	/go/src/runtime/chan.go:259 +0x42e
runtime.chansend1()
	/go/src/runtime/chan.go:145 +0x1d
main.sender()
	/src/app/send.go:8 +0x2e
`
	gs, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	leaf := gs[0].Leaf()
	if leaf.Function != "main.sender" {
		t.Errorf("leaf = %q, want main.sender", leaf.Function)
	}
	if leaf.SourceLocation() != "/src/app/send.go:8" {
		t.Errorf("leaf location = %q", leaf.SourceLocation())
	}
	if top := gs[0].Top(); top.Function != "runtime.gopark" {
		t.Errorf("top = %q", top.Function)
	}
}

func TestCurrentCapturesBlockedGoroutine(t *testing.T) {
	ch := make(chan int)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() { // blocks on send until released
		defer close(done)
		select {
		case ch <- 1:
		case <-release:
		}
	}()
	// Wait for the goroutine to park.
	waitForState(t, "select")

	gs, err := Current()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, g := range gs {
		if g.Kind() == KindSelect && strings.Contains(g.CreatedBy.Function, "TestCurrentCapturesBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Errorf("no select-blocked goroutine created by this test found among %d goroutines", len(gs))
	}
	close(release)
	<-done
}

func TestCurrentExcludesSelf(t *testing.T) {
	gs, self, err := CurrentWithSelf()
	if err != nil {
		t.Fatal(err)
	}
	if self == 0 {
		t.Fatal("self id is 0")
	}
	var sawSelf bool
	for _, g := range gs {
		if g.ID == self {
			sawSelf = true
		}
	}
	if !sawSelf {
		t.Error("CurrentWithSelf should include the caller")
	}
	excl, err := Current()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range excl {
		if g.ID == self {
			t.Error("Current should exclude the caller")
		}
	}
}

// waitForState polls the live dump until some goroutine created by the
// calling test reaches the given state, or the test times out.
func waitForState(t *testing.T, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		gs, err := Current()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gs {
			if strings.HasPrefix(g.State, state) {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no goroutine reached state %q", state)
}
