package stack

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"
)

// Scanner decodes a stack dump incrementally from an io.Reader, yielding
// one goroutine at a time:
//
//	sc := stack.NewScanner(r)
//	for sc.Scan() {
//		g := sc.Goroutine()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// It accepts exactly the format Parse accepts (runtime.Stack output /
// pprof goroutine profiles at debug=2) and produces identical records,
// but never materialises the whole dump: the line buffer is reused across
// lines, and strings that repeat across goroutines — function names, file
// paths, state annotations — are interned so a profile with thousands of
// identical leaked stacks costs a handful of allocations per goroutine
// instead of a copy of the body. This is the collection hot path LEAKPROF
// pays per instance per sweep, where a single profile can run to hundreds
// of megabytes.
//
// Each call to Scan invalidates nothing: yielded Goroutines are freshly
// allocated and owned by the caller (their strings are shared via the
// intern table, which is immutable once published).
type Scanner struct {
	lines *bufio.Scanner
	buf   []byte // initial line buffer, reused across Reset
	line  int    // 1-based number of the last line read

	cur        *Goroutine // block being accumulated
	g          *Goroutine // last yielded goroutine
	pendingLoc *Frame     // frame awaiting a possible location line
	err        error
	done       bool

	// skipping is the resync state: after a malformed goroutine header
	// the scanner discards lines until the next well-formed header
	// instead of aborting the dump; malformed counts the members lost
	// that way.
	skipping  bool
	malformed int

	// held defers a blank-terminated member's yield by one content line:
	// if the next content is a frame pair instead of a header, the blank
	// was a torn frame line inside the member, and the scanner resyncs by
	// reattaching the orphaned frames instead of silently dropping the
	// member's remaining frames (counted in malformed). probeFrame holds
	// the tentative continuation frame while its location line is awaited.
	held         *Goroutine
	probing      bool
	probeFrame   Frame
	probeCreated bool
	probeCreator int64

	// intern maps string content to its single shared copy.
	intern map[string]string
	// pool, when set, is a bounded intern table shared across Scanners;
	// the private table above becomes a lock-free cache in front of it.
	pool *InternPool
	// headers caches parsed bracket regions ("chan send, 5 minutes") —
	// the per-goroutine text that repeats across a leaked cluster.
	headers map[string]headerInfo
	// locs caches parsed location lines ("/src/a.go:12 +0x2b").
	locs map[string]Frame
}

type headerInfo struct {
	state  string
	wait   time.Duration
	locked bool
	count  int
}

// maxLineBytes bounds a single dump line. Real dump lines are far
// shorter; the limit only guards against unbounded buffering on
// pathological input.
const maxLineBytes = 16 << 20

// maxCacheEntries bounds each of the retained caches (intern, headers,
// locations) across Reset: a scanner cycling through a pool must not
// accumulate every string a pathological fleet ever produced. Real
// fleets repeat the same few hundred functions, paths, and states, so
// the bound is effectively never hit in steady state.
const maxCacheEntries = 8192

// NewScanner returns a Scanner reading a dump from r.
func NewScanner(r io.Reader) *Scanner {
	lines := bufio.NewScanner(r)
	buf := make([]byte, 64<<10)
	lines.Buffer(buf, maxLineBytes)
	return &Scanner{
		lines:   lines,
		buf:     buf,
		intern:  make(map[string]string),
		headers: make(map[string]headerInfo),
		locs:    make(map[string]Frame),
	}
}

// Reset rearms the scanner to read a new dump from r, reusing the line
// buffer and — bounded by maxCacheEntries — the intern, header, and
// location caches. This is the pooling seam for high-rate ingestion:
// a pooled Scanner costs one bufio.Scanner shell per dump instead of a
// 64KiB line buffer plus three warm caches. All per-dump state (yield
// position, resync and probe state, malformed count, error) is cleared;
// the shared intern pool attachment is kept.
func (s *Scanner) Reset(r io.Reader) {
	lines := bufio.NewScanner(r)
	lines.Buffer(s.buf, maxLineBytes)
	s.lines = lines
	s.line = 0
	s.cur, s.g, s.pendingLoc = nil, nil, nil
	s.err = nil
	s.done = false
	s.skipping = false
	s.malformed = 0
	s.held = nil
	s.probing = false
	s.probeFrame = Frame{}
	s.probeCreated = false
	s.probeCreator = 0
	if len(s.intern) > maxCacheEntries {
		s.intern = make(map[string]string)
	}
	if len(s.headers) > maxCacheEntries {
		s.headers = make(map[string]headerInfo)
	}
	if len(s.locs) > maxCacheEntries {
		s.locs = make(map[string]Frame)
	}
}

// SetInternPool attaches a shared intern pool: strings the scanner would
// intern privately are interned through p instead, so repeated scans (a
// fleet sweep fetching thousands of instances of the same services) stop
// re-allocating identical function and file strings per Scanner. Call it
// before the first Scan. A nil pool restores private interning.
func (s *Scanner) SetInternPool(p *InternPool) { s.pool = p }

// Scan advances to the next goroutine block. It returns false at the end
// of the dump or on a reader failure; Err distinguishes the two. A
// malformed goroutine header does not stop the scan: the scanner drops
// that member, resyncs at the next well-formed header, and counts the
// loss in Malformed.
func (s *Scanner) Scan() bool {
	if s.err != nil || s.done {
		return false
	}
	for s.lines.Scan() {
		s.line++
		line := s.lines.Bytes()
		for len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if s.process(line) {
			return true
		}
		if s.err != nil {
			return false
		}
	}
	s.done = true
	if err := s.lines.Err(); err != nil {
		s.err = fmt.Errorf("stack: line %d: %w", s.line+1, err)
		// A held member completed (blank-terminated) before the reader
		// failed; only the in-flight member is torn by the failure.
		if s.held != nil {
			s.g, s.held = s.held, nil
			return true
		}
		return false
	}
	if s.held != nil {
		s.g, s.held = s.held, nil
		return true
	}
	if s.cur != nil {
		s.g, s.cur = s.cur, nil
		return true
	}
	return false
}

// Goroutine returns the goroutine yielded by the last successful Scan.
func (s *Scanner) Goroutine() *Goroutine { return s.g }

// Err returns the first error encountered, if any. io.EOF is not an
// error: a dump simply ends. Malformed content is not an error either —
// the scanner resyncs at the next goroutine header and counts the loss
// in Malformed — so Err reports only reader-level failures (a truncated
// transfer, a line beyond the buffer bound).
func (s *Scanner) Err() error { return s.err }

// Malformed returns the number of goroutine members dropped by resync:
// blocks whose header looked like a goroutine header but failed to
// parse, whose lines were skipped up to the next well-formed header. A
// production sweep must salvage the rest of a multi-hundred-megabyte
// profile rather than discard it for one corrupt record; this count is
// the per-dump diagnostic that the salvage happened.
func (s *Scanner) Malformed() int { return s.malformed }

var createdByPrefix = []byte("created by ")

// process consumes one line and reports whether a goroutine was yielded
// into s.g.
func (s *Scanner) process(line []byte) bool {
	// A frame or created-by line may be followed by its source location;
	// anything else falls through to normal classification, exactly as
	// the batch parser's one-line lookahead behaves.
	if target := s.pendingLoc; target != nil {
		s.pendingLoc = nil
		if s.attachLocation(line, target) {
			return false
		}
	}
	if s.probing {
		// The previous line looked like member content right after a
		// blank. It is a continuation only if this line is its source
		// location — a full frame pair; a lone function-shaped line is
		// indistinguishable from preamble junk and stays dropped.
		s.probing = false
		if s.attachLocation(line, &s.probeFrame) {
			s.malformed++
			s.cur, s.held = s.held, nil
			if s.probeCreated {
				s.cur.CreatedBy = s.probeFrame
				s.cur.CreatorID = s.probeCreator
			} else {
				s.cur.Frames = append(s.cur.Frames, s.probeFrame)
			}
			return false
		}
		// Not a pair: the probe line was stray junk. Dispose of the held
		// member against this line like any other.
	}
	if s.held != nil {
		if len(line) == 0 {
			return false // still between members
		}
		if !s.isHeader(line) {
			if fn, created, creator, ok := s.memberContent(line); ok {
				// Frame-shaped content where a header should be: the
				// blank that ended the held member may have been a torn
				// frame line. Probe for the location that completes the
				// pair before committing to the resync.
				s.probing = true
				s.probeFrame = Frame{Function: fn}
				s.probeCreated, s.probeCreator = created, creator
				return false
			}
		}
		// A header or plain preamble: the blank really did end the
		// member. Yield it and classify the line as usual (a header
		// opens the next member; anything else is preamble).
		s.g, s.held = s.held, nil
		s.classify(line)
		return true
	}
	return s.classify(line)
}

// memberContent reports whether a line is frame-shaped member content — a
// function line or a created-by line — returning the (interned) function
// name and creator details for the probe.
func (s *Scanner) memberContent(line []byte) (fn string, created bool, creator int64, ok bool) {
	if rest, isCreated := bytes.CutPrefix(line, createdByPrefix); isCreated {
		if j := bytes.Index(rest, []byte(" in goroutine ")); j >= 0 {
			if id, idOK := parseInt64Bytes(rest[j+len(" in goroutine "):]); idOK {
				creator = id
			}
			rest = rest[:j]
		}
		return s.internBytes(rest), true, creator, true
	}
	if p := bytes.LastIndexByte(line, '('); p > 0 {
		return s.internBytes(line[:p]), false, 0, true
	}
	return "", false, 0, false
}

// classify consumes one line outside any held-member disposition and
// reports whether a goroutine was yielded into s.g.
func (s *Scanner) classify(line []byte) bool {
	switch {
	case s.isHeader(line):
		g, err := s.parseHeader(line)
		if err != nil {
			// Resync instead of aborting: drop the block this header
			// opened (its lines are skipped up to the next well-formed
			// header), count the loss, and salvage whatever preceded it.
			s.malformed++
			s.skipping = true
			prev := s.cur
			s.cur = nil
			if prev != nil {
				s.g = prev
				return true
			}
			return false
		}
		s.skipping = false
		prev := s.cur
		s.cur = g
		if prev != nil {
			s.g = prev
			return true
		}
		return false
	case s.skipping:
		// Mid-resync: this line belongs to the malformed member.
		return false
	case len(line) == 0:
		if s.cur != nil {
			// Hold the completed member for one content line instead of
			// yielding now: if frame-pair content follows, the blank was
			// a torn frame line and the member continues (see process).
			s.held, s.cur = s.cur, nil
		}
		return false
	case s.cur == nil:
		// Preamble outside any goroutine block (e.g. pprof's
		// "goroutine profile: total N" header).
		return false
	case bytes.HasPrefix(line, createdByPrefix):
		s.parseCreatedBy(line)
		return false
	default:
		s.parseFrameLine(line)
		return false
	}
}

// isHeader reports whether the line opens a goroutine block: the byte
// twin of isHeader in parse.go.
func (s *Scanner) isHeader(line []byte) bool {
	rest, ok := bytes.CutPrefix(line, []byte("goroutine "))
	if !ok {
		return false
	}
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return false
	}
	if _, ok := parseInt64Bytes(rest[:sp]); !ok {
		return false
	}
	return bytes.IndexByte(rest[sp:], '[') >= 0
}

// parseHeader parses "goroutine 18 [chan send, 5 minutes, locked to
// thread]:". The bracket region is cached: a leaked cluster repeats the
// identical state text thousands of times.
func (s *Scanner) parseHeader(line []byte) (*Goroutine, error) {
	rest := line[len("goroutine "):]
	sp := bytes.IndexByte(rest, ' ')
	id, _ := parseInt64Bytes(rest[:sp]) // isHeader verified it parses
	rest = rest[sp+1:]
	open := bytes.IndexByte(rest, '[')
	close := bytes.LastIndexByte(rest, ']')
	if open < 0 || close < open {
		return nil, fmt.Errorf("missing state brackets in %q", string(line))
	}
	content := rest[open+1 : close]
	info, ok := s.headers[string(content)]
	if !ok {
		state, wait, locked, count := parseStateAnnotations(string(content))
		info = headerInfo{state: s.internString(state), wait: wait, locked: locked, count: count}
		s.headers[string(content)] = info
	}
	return &Goroutine{ID: id, State: info.state, WaitTime: info.wait, Locked: info.locked, Count: info.count}, nil
}

// parseFrameLine parses a function line ("svc.leak(0x12, 0x34)") and arms
// the location lookahead for the next line.
func (s *Scanner) parseFrameLine(line []byte) {
	p := bytes.LastIndexByte(line, '(')
	if p <= 0 {
		return
	}
	s.cur.Frames = append(s.cur.Frames, Frame{Function: s.internBytes(line[:p])})
	s.pendingLoc = &s.cur.Frames[len(s.cur.Frames)-1]
}

// parseCreatedBy parses "created by pkg.Fn in goroutine 7" and arms the
// location lookahead for the creation site.
func (s *Scanner) parseCreatedBy(line []byte) {
	rest := line[len("created by "):]
	var creator int64
	if j := bytes.Index(rest, []byte(" in goroutine ")); j >= 0 {
		if id, ok := parseInt64Bytes(rest[j+len(" in goroutine "):]); ok {
			creator = id
		}
		rest = rest[:j]
	}
	s.cur.CreatedBy = Frame{Function: s.internBytes(rest)}
	s.cur.CreatorID = creator
	s.pendingLoc = &s.cur.CreatedBy
}

// attachLocation parses a location line ("\t/src/a.go:12 +0x2b") into
// target, reporting whether the line was a location. Parsed locations are
// cached by content; repeats across a leaked cluster hit the cache.
func (s *Scanner) attachLocation(line []byte, target *Frame) bool {
	trimmed := bytes.TrimSpace(line)
	if f, ok := s.locs[string(trimmed)]; ok {
		target.File, target.Line, target.Offset = f.File, f.Line, f.Offset
		return true
	}
	file, ln, off, ok := parseLocationBytes(trimmed)
	if !ok {
		return false
	}
	f := Frame{File: s.internBytes(file), Line: ln, Offset: off}
	s.locs[string(trimmed)] = f
	target.File, target.Line, target.Offset = f.File, f.Line, f.Offset
	return true
}

// parseLocationBytes is the byte twin of parseLocation in parse.go.
func parseLocationBytes(s []byte) (file []byte, line int, off uint64, ok bool) {
	if len(s) == 0 {
		return nil, 0, 0, false
	}
	loc := s
	if sp := bytes.IndexByte(s, ' '); sp >= 0 {
		loc = s[:sp]
		offStr := bytes.TrimSpace(s[sp+1:])
		if bytes.HasPrefix(offStr, []byte("+0x")) {
			if v, ok := parseHexBytes(offStr[3:]); ok {
				off = v
			}
		}
	}
	colon := bytes.LastIndexByte(loc, ':')
	if colon <= 0 {
		return nil, 0, 0, false
	}
	n, numOK := parseInt64Bytes(loc[colon+1:])
	if !numOK {
		return nil, 0, 0, false
	}
	if !bytes.HasSuffix(loc[:colon], []byte(".go")) && bytes.IndexByte(loc[:colon], '/') < 0 {
		return nil, 0, 0, false
	}
	return loc[:colon], int(n), off, true
}

// internBytes returns the shared string for the byte content, allocating
// only on first sight. The private table is consulted first — a hit costs
// no lock — and misses fall through to the shared pool when one is set.
func (s *Scanner) internBytes(b []byte) string {
	if v, ok := s.intern[string(b)]; ok {
		return v
	}
	var v string
	if s.pool != nil {
		v = s.pool.internBytes(b)
	} else {
		v = string(b)
	}
	s.intern[v] = v
	return v
}

func (s *Scanner) internString(v string) string {
	if got, ok := s.intern[v]; ok {
		return got
	}
	if s.pool != nil {
		v = s.pool.internString(v)
	}
	s.intern[v] = v
	return v
}

// parseInt64Bytes mirrors strconv.ParseInt(string(b), 10, 64): optional
// sign, decimal digits only, overflow rejected.
func parseInt64Bytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<63-1)/10 {
			return 0, false
		}
		n = n*10 + d
		if !neg && n > 1<<63-1 || neg && n > 1<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// parseHexBytes mirrors strconv.ParseUint(string(b), 16, 64).
func parseHexBytes(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if n > (1<<64-1)/16 {
			return 0, false
		}
		n = n*16 + d
	}
	return n, true
}
