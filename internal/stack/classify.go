package stack

import "strings"

// Kind is the blocking taxonomy of Table IV in the paper: every lingering
// goroutine observed at the end of the monorepo test run is classified into
// one of these buckets.
type Kind int

const (
	// KindUnknown marks states the classifier does not recognise.
	KindUnknown Kind = iota
	// KindRunning covers running and runnable goroutines.
	KindRunning
	// KindChanSend is a blocking send on a non-nil channel.
	KindChanSend
	// KindChanSendNil is a send on a nil channel (a guaranteed partial
	// deadlock).
	KindChanSendNil
	// KindChanReceive is a blocking receive on a non-nil channel.
	KindChanReceive
	// KindChanReceiveNil is a receive on a nil channel (a guaranteed
	// partial deadlock).
	KindChanReceiveNil
	// KindSelect is a blocking select with at least one case.
	KindSelect
	// KindSelectNoCases is "select {}": blocks forever by construction.
	KindSelectNoCases
	// KindIOWait is network or file IO.
	KindIOWait
	// KindSyscall is a goroutine inside a system call.
	KindSyscall
	// KindSleep is time.Sleep.
	KindSleep
	// KindCondWait is sync.Cond.Wait.
	KindCondWait
	// KindSemacquire is a semaphore acquisition: sync.Mutex.Lock,
	// sync.WaitGroup.Wait, sync.RWMutex, and raw semaphores.
	KindSemacquire
	// KindTimer covers goroutines parked on timer internals
	// (time.Sleep is KindSleep; this is chan-receive on a timer managed
	// by the classifier's frame inspection).
	KindTimer
	// KindGC covers garbage-collector helper states (GC assist wait,
	// GC sweep wait, force gc (idle), ...).
	KindGC
	// KindFinalizer is the runtime finalizer/cleanup goroutine.
	KindFinalizer

	numKinds
)

var kindNames = [...]string{
	KindUnknown:        "unknown",
	KindRunning:        "running/runnable",
	KindChanSend:       "chan send (non-nil chan)",
	KindChanSendNil:    "chan send (nil chan)",
	KindChanReceive:    "chan receive (non-nil chan)",
	KindChanReceiveNil: "chan receive (nil chan)",
	KindSelect:         "select (>0 cases)",
	KindSelectNoCases:  "select (0 cases)",
	KindIOWait:         "IO wait",
	KindSyscall:        "system call",
	KindSleep:          "sleep",
	KindCondWait:       "condition wait",
	KindSemacquire:     "semaphore acquire",
	KindTimer:          "timer",
	KindGC:             "garbage collection",
	KindFinalizer:      "finalizer",
}

// String returns the Table-IV row label for the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "invalid"
	}
	return kindNames[k]
}

// Kinds returns all classifiable kinds in declaration order, for iteration
// when building Table IV.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// ChannelOp returns the channel-operation family for the kind as used by
// LEAKPROF grouping: "send", "receive", "select", or "" for non-channel
// kinds.
func (k Kind) ChannelOp() string {
	switch k {
	case KindChanSend, KindChanSendNil:
		return "send"
	case KindChanReceive, KindChanReceiveNil:
		return "receive"
	case KindSelect, KindSelectNoCases:
		return "select"
	}
	return ""
}

// GuaranteedLeak reports whether the kind alone proves a partial deadlock:
// operations on nil channels and empty selects can never unblock.
func (k Kind) GuaranteedLeak() bool {
	switch k {
	case KindChanSendNil, KindChanReceiveNil, KindSelectNoCases:
		return true
	}
	return false
}

// Kind classifies the goroutine by its runtime state string, refined by the
// leaf runtime frames exactly as Fig 4 of the paper describes: a blocked
// goroutine parks in runtime.gopark and the frame beneath it
// (runtime.chansend, runtime.chanrecv, runtime.selectgo, ...) names the
// operation.
func (g *Goroutine) Kind() Kind {
	state := g.State
	// Strip parentheticals for the switch, but remember them.
	nilChan := strings.Contains(state, "(nil chan)")
	noCases := strings.Contains(state, "(no cases)")
	if i := strings.IndexByte(state, '('); i > 0 {
		state = strings.TrimSpace(state[:i])
	}
	switch state {
	case "running", "runnable":
		return KindRunning
	case "chan send":
		if nilChan {
			return KindChanSendNil
		}
		return KindChanSend
	case "chan receive":
		if nilChan {
			return KindChanReceiveNil
		}
		return KindChanReceive
	case "select":
		if noCases {
			return KindSelectNoCases
		}
		return KindSelect
	case "IO wait":
		return KindIOWait
	case "syscall":
		return KindSyscall
	case "sleep":
		return KindSleep
	case "sync.Cond.Wait":
		return KindCondWait
	case "semacquire", "sync.Mutex.Lock", "sync.RWMutex.RLock",
		"sync.RWMutex.Lock", "sync.WaitGroup.Wait":
		return KindSemacquire
	case "timer goroutine":
		return KindTimer
	case "GC assist wait", "GC sweep wait", "GC scavenge wait",
		"force gc", "GC worker", "GC assist marking":
		return KindGC
	case "finalizer wait":
		return KindFinalizer
	}
	// Fall back to frame inspection for states the header did not settle:
	// a goroutine captured between state transitions can report "waiting"
	// with the operation only visible in the stack.
	return classifyByFrames(g.Frames)
}

// classifyByFrames inspects the runtime frames under runtime.gopark, the
// stack signature described in Section V-A / Fig 4 of the paper.
func classifyByFrames(frames []Frame) Kind {
	for _, f := range frames {
		if !isRuntimeFrame(f.Function) {
			break
		}
		switch f.Function {
		case "runtime.chansend", "runtime.chansend1":
			return KindChanSend
		case "runtime.chanrecv", "runtime.chanrecv1", "runtime.chanrecv2":
			return KindChanReceive
		case "runtime.selectgo":
			return KindSelect
		case "runtime.block":
			return KindSelectNoCases
		case "runtime.netpollblock":
			return KindIOWait
		case "runtime.timeSleep":
			return KindSleep
		case "runtime.semacquire", "runtime.semacquire1":
			return KindSemacquire
		}
	}
	return KindUnknown
}

// BlockedOp describes a channel operation a goroutine is blocked on, in the
// form LEAKPROF aggregates: the operation family plus the source location of
// the first non-runtime frame (the frame that invoked runtime.chansend1 and
// friends).
type BlockedOp struct {
	// Op is "send", "receive", or "select".
	Op string
	// Location is the file:line of the blocked operation.
	Location string
	// Function is the fully qualified name of the blocking function.
	Function string
	// NilChannel marks operations on nil channels.
	NilChannel bool
	// WaitTime is the runtime-reported blocking duration, if any.
	WaitTime int64 // nanoseconds; avoids importing time here twice
}

// BlockedChannelOp extracts the blocked channel operation from the
// goroutine, or ok=false when the goroutine is not blocked on a channel.
func (g *Goroutine) BlockedChannelOp() (BlockedOp, bool) {
	k := g.Kind()
	op := k.ChannelOp()
	if op == "" {
		return BlockedOp{}, false
	}
	leaf := g.Leaf()
	return BlockedOp{
		Op:         op,
		Location:   leaf.SourceLocation(),
		Function:   leaf.Function,
		NilChannel: k == KindChanSendNil || k == KindChanReceiveNil,
		WaitTime:   int64(g.WaitTime),
	}, true
}
