package stack

// Diff computes the goroutine-set difference between two captures of the
// same process: which goroutines appeared, which disappeared, and which
// persisted (matched by goroutine id). GOLEAK's IgnoreCurrent option and
// leak-trend analyses are both set-difference problems over captures.
type Diff struct {
	// Added are goroutines present only in the newer capture.
	Added []*Goroutine
	// Removed are goroutines present only in the older capture.
	Removed []*Goroutine
	// Persisted are goroutines present in both, from the newer capture.
	// For a leak, these are the interesting ones: a goroutine blocked at
	// the same operation across two distant captures is almost certainly
	// stuck (Fact 1 of the paper: a partially deadlocked goroutine stays
	// until process death).
	Persisted []*Goroutine
}

// Compare diffs two captures by goroutine id.
func Compare(before, after []*Goroutine) Diff {
	old := make(map[int64]*Goroutine, len(before))
	for _, g := range before {
		old[g.ID] = g
	}
	var d Diff
	seen := make(map[int64]bool, len(after))
	for _, g := range after {
		seen[g.ID] = true
		if _, ok := old[g.ID]; ok {
			d.Persisted = append(d.Persisted, g)
		} else {
			d.Added = append(d.Added, g)
		}
	}
	for _, g := range before {
		if !seen[g.ID] {
			d.Removed = append(d.Removed, g)
		}
	}
	return d
}

// StuckCandidates returns the persisted goroutines that are blocked on a
// channel operation at the same source location in both captures: the
// strongest dynamic leak signal two samples can give.
func StuckCandidates(before, after []*Goroutine) []*Goroutine {
	old := make(map[int64]*Goroutine, len(before))
	for _, g := range before {
		old[g.ID] = g
	}
	var out []*Goroutine
	for _, g := range after {
		prev, ok := old[g.ID]
		if !ok {
			continue
		}
		opNow, ok1 := g.BlockedChannelOp()
		opThen, ok2 := prev.BlockedChannelOp()
		if ok1 && ok2 && opNow.Location == opThen.Location && opNow.Op == opThen.Op {
			out = append(out, g)
		}
	}
	return out
}
