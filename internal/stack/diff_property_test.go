package stack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestComparePartitionProperty: for any two captures, Compare partitions
// the inputs exactly — |Persisted| + |Added| = |after| and
// |Persisted| + |Removed| = |before| when ids are unique.
func TestComparePartitionProperty(t *testing.T) {
	gen := func(r *rand.Rand, ids []int64) []*Goroutine {
		out := make([]*Goroutine, len(ids))
		for i, id := range ids {
			out[i] = mk(id, "chan send", "f", "/f.go", 1+r.Intn(9))
		}
		return out
	}
	f := func(seed int64, nBefore, nAfter uint8) bool {
		r := rand.New(rand.NewSource(seed))
		// Unique id pools with deliberate overlap.
		pool := r.Perm(64)
		before := gen(r, toIDs(pool[:int(nBefore)%32]))
		after := gen(r, toIDs(pool[16:16+int(nAfter)%32]))
		d := Compare(before, after)
		if len(d.Persisted)+len(d.Added) != len(after) {
			return false
		}
		if len(d.Persisted)+len(d.Removed) != len(before) {
			return false
		}
		// Every persisted goroutine must exist in both inputs.
		beforeIDs := map[int64]bool{}
		for _, g := range before {
			beforeIDs[g.ID] = true
		}
		for _, g := range d.Persisted {
			if !beforeIDs[g.ID] {
				return false
			}
		}
		// Stuck candidates are a subset of persisted.
		stuck := StuckCandidates(before, after)
		if len(stuck) > len(d.Persisted) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func toIDs(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}
