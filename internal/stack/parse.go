package stack

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse decodes a full stack dump (the output of runtime.Stack(buf, true) or
// a pprof goroutine profile at debug=2) into structured goroutine records.
// Unrecognised lines inside a block are skipped rather than rejected: the
// runtime occasionally adds annotations (frame pointers, register dumps on
// fatal errors) that a robust consumer must tolerate.
//
// Parse is a thin compatibility wrapper over Scanner, which callers on the
// collection hot path should prefer: the scanner consumes an io.Reader
// incrementally and never requires the dump to be materialised as one
// string.
func Parse(dump string) ([]*Goroutine, error) {
	sc := NewScanner(strings.NewReader(dump))
	var out []*Goroutine
	for sc.Scan() {
		out = append(out, sc.Goroutine())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseStateAnnotations splits the bracket region of a goroutine header —
// "state[, wait duration][, locked to thread][, N times]" — into its
// parts. The state itself may contain a comma-free parenthetical such as
// "chan receive (nil chan)" or "select (no cases)"; unknown annotations
// are folded back into the state so information is never silently
// dropped. The "N times" count annotation is not a runtime annotation:
// archive writers emit it to carry a pre-aggregated cluster as one
// counted record (see Goroutine.Count).
func parseStateAnnotations(content string) (state string, wait time.Duration, locked bool, count int) {
	parts := strings.Split(content, ", ")
	state = parts[0]
	for _, p := range parts[1:] {
		switch {
		case p == "locked to thread":
			locked = true
		case isWaitDuration(p):
			wait = parseWaitDuration(p)
		case isCountAnnotation(p):
			count = parseCountAnnotation(p)
		default:
			state += ", " + p
		}
	}
	return state, wait, locked, count
}

// isCountAnnotation recognises "N times" with a positive integer N.
func isCountAnnotation(s string) bool {
	return parseCountAnnotation(s) > 0
}

func parseCountAnnotation(s string) int {
	rest, ok := strings.CutSuffix(s, " times")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

func isWaitDuration(s string) bool {
	return strings.HasSuffix(s, " minutes") || strings.HasSuffix(s, " minute") ||
		strings.HasSuffix(s, " hours") || strings.HasSuffix(s, " hour") ||
		strings.HasSuffix(s, " seconds") || strings.HasSuffix(s, " second") ||
		strings.HasSuffix(s, " days") || strings.HasSuffix(s, " day")
}

func parseWaitDuration(s string) time.Duration {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	switch strings.TrimSuffix(fields[1], "s") {
	case "second":
		return time.Duration(n) * time.Second
	case "minute":
		return time.Duration(n) * time.Minute
	case "hour":
		return time.Duration(n) * time.Hour
	case "day":
		return time.Duration(n) * 24 * time.Hour
	}
	return 0
}

// Format renders goroutines back into the runtime dump format. Parse(Format(gs))
// is the identity on the structured fields (a property the test suite checks
// with testing/quick).
func Format(gs []*Goroutine) string {
	var b strings.Builder
	for i, g := range gs {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeGoroutine(&b, g)
	}
	return b.String()
}

func writeGoroutine(b *strings.Builder, g *Goroutine) {
	b.WriteString("goroutine ")
	b.WriteString(strconv.FormatInt(g.ID, 10))
	b.WriteString(" [")
	b.WriteString(g.State)
	if g.WaitTime != 0 {
		fmt.Fprintf(b, ", %s", formatWait(g.WaitTime))
	}
	if g.Locked {
		b.WriteString(", locked to thread")
	}
	if g.Count > 1 {
		fmt.Fprintf(b, ", %d times", g.Count)
	}
	b.WriteString("]:\n")
	for _, f := range g.Frames {
		writeFrame(b, f)
	}
	if g.CreatedBy.Function != "" {
		b.WriteString("created by ")
		b.WriteString(g.CreatedBy.Function)
		if g.CreatorID != 0 {
			b.WriteString(" in goroutine ")
			b.WriteString(strconv.FormatInt(g.CreatorID, 10))
		}
		b.WriteByte('\n')
		if g.CreatedBy.File != "" {
			writeLocation(b, g.CreatedBy)
		}
	}
}

func writeFrame(b *strings.Builder, f Frame) {
	b.WriteString(f.Function)
	b.WriteString("()\n")
	if f.File != "" {
		writeLocation(b, f)
	}
}

func writeLocation(b *strings.Builder, f Frame) {
	b.WriteByte('\t')
	b.WriteString(f.File)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(f.Line))
	if f.Offset != 0 {
		fmt.Fprintf(b, " +0x%x", f.Offset)
	}
	b.WriteByte('\n')
}

// formatWait renders a wait duration in the runtime's coarse style
// ("5 minutes"). The largest unit that divides the duration evenly is used
// so that parseWaitDuration(formatWait(d)) == d for whole-second values.
func formatWait(d time.Duration) string {
	switch {
	case d >= 24*time.Hour && d%(24*time.Hour) == 0:
		return plural(int(d/(24*time.Hour)), "day")
	case d >= time.Hour && d%time.Hour == 0:
		return plural(int(d/time.Hour), "hour")
	case d >= time.Minute && d%time.Minute == 0:
		return plural(int(d/time.Minute), "minute")
	default:
		return plural(int(d/time.Second), "second")
	}
}

func plural(n int, unit string) string {
	if n == 1 {
		return "1 " + unit
	}
	return strconv.Itoa(n) + " " + unit + "s"
}
