package stack

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse decodes a full stack dump (the output of runtime.Stack(buf, true) or
// a pprof goroutine profile at debug=2) into structured goroutine records.
// Unrecognised lines inside a block are skipped rather than rejected: the
// runtime occasionally adds annotations (frame pointers, register dumps on
// fatal errors) that a robust consumer must tolerate.
func Parse(dump string) ([]*Goroutine, error) {
	lines := strings.Split(dump, "\n")
	var (
		out []*Goroutine
		cur *Goroutine
		i   int
	)
	flush := func() {
		if cur != nil {
			out = append(out, cur)
			cur = nil
		}
	}
	for i < len(lines) {
		line := strings.TrimRight(lines[i], "\r")
		switch {
		case strings.HasPrefix(line, "goroutine ") && isHeader(line):
			flush()
			g, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("stack: line %d: %w", i+1, err)
			}
			cur = g
			i++
		case line == "":
			flush()
			i++
		case cur == nil:
			// Preamble outside any goroutine block (e.g. pprof's
			// "goroutine profile: total N" header handled by caller).
			i++
		case strings.HasPrefix(line, "created by "):
			frame, creator, consumed := parseCreatedBy(lines, i)
			cur.CreatedBy = frame
			cur.CreatorID = creator
			i += consumed
		default:
			frame, consumed, ok := parseFrame(lines, i)
			if ok {
				cur.Frames = append(cur.Frames, frame)
			}
			i += consumed
		}
	}
	flush()
	return out, nil
}

// isHeader distinguishes a real goroutine block header ("goroutine 18 [...]")
// from preamble lines that merely start with the word, such as pprof's
// "goroutine profile: total 3".
func isHeader(line string) bool {
	rest := strings.TrimPrefix(line, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return false
	}
	if _, err := strconv.ParseInt(rest[:sp], 10, 64); err != nil {
		return false
	}
	return strings.Contains(rest[sp:], "[")
}

// parseHeader parses "goroutine 18 [chan send, 5 minutes, locked to thread]:".
func parseHeader(line string) (*Goroutine, error) {
	rest := strings.TrimPrefix(line, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed goroutine header %q", line)
	}
	id, err := strconv.ParseInt(rest[:sp], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed goroutine id in %q: %w", line, err)
	}
	rest = rest[sp+1:]
	open := strings.IndexByte(rest, '[')
	close := strings.LastIndexByte(rest, ']')
	if open < 0 || close < open {
		return nil, fmt.Errorf("missing state brackets in %q", line)
	}
	g := &Goroutine{ID: id}
	state := rest[open+1 : close]
	// The bracketed region is "state[, wait duration][, locked to thread]".
	// The state itself may contain a comma-free parenthetical such as
	// "chan receive (nil chan)" or "select (no cases)".
	parts := strings.Split(state, ", ")
	g.State = parts[0]
	for _, p := range parts[1:] {
		switch {
		case p == "locked to thread":
			g.Locked = true
		case isWaitDuration(p):
			g.WaitTime = parseWaitDuration(p)
		default:
			// Unknown annotation: fold it back into the state so we
			// never silently drop information.
			g.State += ", " + p
		}
	}
	return g, nil
}

func isWaitDuration(s string) bool {
	return strings.HasSuffix(s, " minutes") || strings.HasSuffix(s, " minute") ||
		strings.HasSuffix(s, " hours") || strings.HasSuffix(s, " hour") ||
		strings.HasSuffix(s, " seconds") || strings.HasSuffix(s, " second") ||
		strings.HasSuffix(s, " days") || strings.HasSuffix(s, " day")
}

func parseWaitDuration(s string) time.Duration {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	switch strings.TrimSuffix(fields[1], "s") {
	case "second":
		return time.Duration(n) * time.Second
	case "minute":
		return time.Duration(n) * time.Minute
	case "hour":
		return time.Duration(n) * time.Hour
	case "day":
		return time.Duration(n) * 24 * time.Hour
	}
	return 0
}

// parseFrame parses a two-line frame entry:
//
//	repro/internal/patterns.NCast.func1()
//		/root/repo/internal/patterns/ncast.go:17 +0x2b
//
// It returns the number of lines consumed (1 or 2) and whether a frame was
// recognised.
func parseFrame(lines []string, i int) (Frame, int, bool) {
	fn := strings.TrimRight(lines[i], "\r")
	// A function line ends with an argument list; strip it. Arguments may
	// contain nested parens only in rare cases (method values); find the
	// last '(' to be safe.
	p := strings.LastIndexByte(fn, '(')
	if p <= 0 {
		return Frame{}, 1, false
	}
	frame := Frame{Function: fn[:p]}
	if i+1 < len(lines) {
		loc := strings.TrimSpace(strings.TrimRight(lines[i+1], "\r"))
		if file, line, off, ok := parseLocation(loc); ok {
			frame.File, frame.Line, frame.Offset = file, line, off
			return frame, 2, true
		}
	}
	return frame, 1, true
}

// parseCreatedBy parses the trailing creation record:
//
//	created by repro/internal/patterns.NCast in goroutine 1
//		/root/repo/internal/patterns/ncast.go:15 +0x5c
func parseCreatedBy(lines []string, i int) (Frame, int64, int) {
	rest := strings.TrimPrefix(strings.TrimRight(lines[i], "\r"), "created by ")
	var creator int64
	if j := strings.Index(rest, " in goroutine "); j >= 0 {
		id, err := strconv.ParseInt(rest[j+len(" in goroutine "):], 10, 64)
		if err == nil {
			creator = id
		}
		rest = rest[:j]
	}
	frame := Frame{Function: rest}
	consumed := 1
	if i+1 < len(lines) {
		loc := strings.TrimSpace(strings.TrimRight(lines[i+1], "\r"))
		if file, line, off, ok := parseLocation(loc); ok {
			frame.File, frame.Line, frame.Offset = file, line, off
			consumed = 2
		}
	}
	return frame, creator, consumed
}

// parseLocation parses "/path/file.go:123 +0x4f" (offset optional).
func parseLocation(s string) (file string, line int, off uint64, ok bool) {
	if s == "" {
		return "", 0, 0, false
	}
	loc := s
	if sp := strings.IndexByte(s, ' '); sp >= 0 {
		loc = s[:sp]
		offStr := strings.TrimSpace(s[sp+1:])
		if strings.HasPrefix(offStr, "+0x") {
			v, err := strconv.ParseUint(offStr[3:], 16, 64)
			if err == nil {
				off = v
			}
		}
	}
	colon := strings.LastIndexByte(loc, ':')
	if colon <= 0 {
		return "", 0, 0, false
	}
	n, err := strconv.Atoi(loc[colon+1:])
	if err != nil {
		return "", 0, 0, false
	}
	if !strings.HasSuffix(loc[:colon], ".go") && !strings.Contains(loc[:colon], "/") {
		return "", 0, 0, false
	}
	return loc[:colon], n, off, true
}

// Format renders goroutines back into the runtime dump format. Parse(Format(gs))
// is the identity on the structured fields (a property the test suite checks
// with testing/quick).
func Format(gs []*Goroutine) string {
	var b strings.Builder
	for i, g := range gs {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeGoroutine(&b, g)
	}
	return b.String()
}

func writeGoroutine(b *strings.Builder, g *Goroutine) {
	b.WriteString("goroutine ")
	b.WriteString(strconv.FormatInt(g.ID, 10))
	b.WriteString(" [")
	b.WriteString(g.State)
	if g.WaitTime != 0 {
		fmt.Fprintf(b, ", %s", formatWait(g.WaitTime))
	}
	if g.Locked {
		b.WriteString(", locked to thread")
	}
	b.WriteString("]:\n")
	for _, f := range g.Frames {
		writeFrame(b, f)
	}
	if g.CreatedBy.Function != "" {
		b.WriteString("created by ")
		b.WriteString(g.CreatedBy.Function)
		if g.CreatorID != 0 {
			b.WriteString(" in goroutine ")
			b.WriteString(strconv.FormatInt(g.CreatorID, 10))
		}
		b.WriteByte('\n')
		if g.CreatedBy.File != "" {
			writeLocation(b, g.CreatedBy)
		}
	}
}

func writeFrame(b *strings.Builder, f Frame) {
	b.WriteString(f.Function)
	b.WriteString("()\n")
	if f.File != "" {
		writeLocation(b, f)
	}
}

func writeLocation(b *strings.Builder, f Frame) {
	b.WriteByte('\t')
	b.WriteString(f.File)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(f.Line))
	if f.Offset != 0 {
		fmt.Fprintf(b, " +0x%x", f.Offset)
	}
	b.WriteByte('\n')
}

// formatWait renders a wait duration in the runtime's coarse style
// ("5 minutes"). The largest unit that divides the duration evenly is used
// so that parseWaitDuration(formatWait(d)) == d for whole-second values.
func formatWait(d time.Duration) string {
	switch {
	case d >= 24*time.Hour && d%(24*time.Hour) == 0:
		return plural(int(d/(24*time.Hour)), "day")
	case d >= time.Hour && d%time.Hour == 0:
		return plural(int(d/time.Hour), "hour")
	case d >= time.Minute && d%time.Minute == 0:
		return plural(int(d/time.Minute), "minute")
	default:
		return plural(int(d/time.Second), "second")
	}
}

func plural(n int, unit string) string {
	if n == 1 {
		return "1 " + unit
	}
	return strconv.Itoa(n) + " " + unit + "s"
}
