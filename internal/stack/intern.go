package stack

import "sync"

// DefaultInternPoolEntries bounds a shared intern pool that does not set
// its own limit. A fleet's distinct function names and file paths number
// in the tens of thousands; 256K entries comfortably covers a large
// monorepo while capping a pool fed adversarial profiles.
const DefaultInternPoolEntries = 256 << 10

// InternPool is a bounded, concurrency-safe string intern table shared
// across Scanners. A Scanner's own intern table lives only as long as one
// profile scan, so a daily sweep over the same fleet re-interns the same
// function names and file paths once per instance; attaching a pool with
// Scanner.SetInternPool makes those strings allocate once per sweep (and
// once per pool lifetime when the pool is reused across sweeps).
//
// The pool is insert-only and bounded: once Max entries are resident, new
// strings are returned un-pooled (each scanner falls back to its private
// table) rather than evicting — eviction would un-share exactly the hot
// strings the pool exists for. Interned strings are immutable and safe to
// share between goroutines.
type InternPool struct {
	mu  sync.RWMutex
	max int
	m   map[string]string
}

// NewInternPool returns an empty pool bounded to maxEntries distinct
// strings; maxEntries <= 0 means DefaultInternPoolEntries.
func NewInternPool(maxEntries int) *InternPool {
	if maxEntries <= 0 {
		maxEntries = DefaultInternPoolEntries
	}
	return &InternPool{max: maxEntries, m: make(map[string]string)}
}

// Len returns the number of resident entries.
func (p *InternPool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.m)
}

// internBytes returns the shared string for b, inserting it if the pool
// has room. The compiler elides the []byte->string conversion in the map
// lookups, so a hit costs no allocation.
func (p *InternPool) internBytes(b []byte) string {
	p.mu.RLock()
	v, ok := p.m[string(b)]
	p.mu.RUnlock()
	if ok {
		return v
	}
	return p.insert(string(b))
}

// internString is internBytes for an already-materialised string.
func (p *InternPool) internString(s string) string {
	p.mu.RLock()
	v, ok := p.m[s]
	p.mu.RUnlock()
	if ok {
		return v
	}
	return p.insert(s)
}

func (p *InternPool) insert(s string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.m[s]; ok { // raced with another inserter
		return v
	}
	if len(p.m) >= p.max {
		return s // full: hand back the private copy, never evict
	}
	p.m[s] = s
	return s
}
