// Package stack parses Go runtime stack dumps into structured goroutine
// records and classifies the blocking state of each goroutine.
//
// Both GOLEAK (test-time leak detection) and LEAKPROF (production profile
// analysis) consume the same representation: a Goroutine carries its runtime
// state ("chan send", "select", ...), its call stack, and the site that
// created it. The classifier maps the raw runtime state string, together
// with the leaf frames, onto the blocking taxonomy used throughout the
// paper (Table IV): channel send/receive on nil and non-nil channels,
// select with and without cases, IO wait, syscall, sleep, and so on.
//
// The input format is the text produced by runtime.Stack(buf, true) and by
// the pprof goroutine endpoint at debug=2. A dump is a sequence of blocks:
//
//	goroutine 18 [chan send, 5 minutes]:
//	repro/internal/patterns.PrematureReturn.func1()
//		/root/repo/internal/patterns/premature.go:21 +0x2b
//	created by repro/internal/patterns.PrematureReturn in goroutine 1
//		/root/repo/internal/patterns/premature.go:20 +0x5c
//
// separated by blank lines.
package stack

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Frame is a single call-stack entry: a function and its source position.
type Frame struct {
	// Function is the fully qualified function name, e.g.
	// "repro/internal/patterns.NCast.func1".
	Function string
	// File is the absolute source file path. Empty if unknown.
	File string
	// Line is the source line number. Zero if unknown.
	Line int
	// Offset is the instruction offset within the function ("+0x2b"),
	// retained for round-tripping; zero when absent.
	Offset uint64
}

// SourceLocation renders the frame's file:line, the grouping key LEAKPROF
// uses for blocked-operation aggregation. Returns the function name when no
// source position is available.
func (f Frame) SourceLocation() string {
	if f.File == "" {
		return f.Function
	}
	return f.File + ":" + strconv.Itoa(f.Line)
}

// String renders the frame in the runtime's two-line dump format.
func (f Frame) String() string {
	var b strings.Builder
	b.WriteString(f.Function)
	b.WriteString("()\n\t")
	b.WriteString(f.File)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(f.Line))
	if f.Offset != 0 {
		fmt.Fprintf(&b, " +0x%x", f.Offset)
	}
	return b.String()
}

// Goroutine is one parsed goroutine block from a stack dump.
type Goroutine struct {
	// ID is the runtime goroutine id.
	ID int64
	// State is the raw runtime wait-reason string, e.g. "chan receive",
	// "select", "IO wait", "running".
	State string
	// WaitTime is how long the goroutine has been blocked, when the
	// runtime reports it ("chan send, 7 minutes"); zero otherwise.
	WaitTime time.Duration
	// Frames is the call stack, leaf first.
	Frames []Frame
	// CreatedBy names the function that spawned this goroutine; empty for
	// the main goroutine.
	CreatedBy Frame
	// CreatorID is the goroutine id of the creator when the runtime
	// reports it ("created by X in goroutine 7"); zero otherwise.
	CreatorID int64
	// Locked reports whether the goroutine is locked to an OS thread.
	Locked bool
	// Count is the number of identical goroutines this record stands
	// for, carried as a "N times" header annotation ("goroutine 7 [chan
	// send, 2000 times]:"). The runtime never emits it; archive writers
	// use it to record a pre-aggregated leak cluster as one counted
	// record instead of expanding it into N identical blocks. Zero or
	// one both mean a single goroutine (see Multiplicity).
	Count int
}

// Multiplicity returns how many goroutines the record represents: Count
// when a count annotation was present, else one.
func (g *Goroutine) Multiplicity() int {
	if g.Count > 1 {
		return g.Count
	}
	return 1
}

// Leaf returns the innermost non-runtime frame: the frame GOLEAK reports as
// the goroutine's code context and the frame whose file:line LEAKPROF uses
// as the blocked-operation source location. Runtime frames (runtime.gopark,
// runtime.chansend, ...) are skipped. Returns the zero Frame when the stack
// is empty or entirely inside the runtime.
func (g *Goroutine) Leaf() Frame {
	for _, f := range g.Frames {
		if !isRuntimeFrame(f.Function) {
			return f
		}
	}
	return Frame{}
}

// Top returns the topmost frame of the stack (usually a runtime frame for a
// blocked goroutine), or the zero Frame for an empty stack.
func (g *Goroutine) Top() Frame {
	if len(g.Frames) == 0 {
		return Frame{}
	}
	return g.Frames[0]
}

// BlockedOnChannel reports whether the goroutine is blocked on a channel
// operation (send, receive, or select), i.e. whether it is a partial-
// deadlock candidate in the paper's sense.
func (g *Goroutine) BlockedOnChannel() bool {
	switch g.Kind() {
	case KindChanSend, KindChanSendNil, KindChanReceive, KindChanReceiveNil,
		KindSelect, KindSelectNoCases:
		return true
	}
	return false
}

// String renders the goroutine in the runtime's dump format; Parse(g.String())
// round-trips.
func (g *Goroutine) String() string {
	var b strings.Builder
	writeGoroutine(&b, g)
	return b.String()
}

func isRuntimeFrame(fn string) bool {
	if !strings.HasPrefix(fn, "runtime.") {
		return false
	}
	// runtime.* test helpers in user packages would carry a slash before
	// "runtime."; a true runtime frame has none.
	return !strings.Contains(fn, "/")
}

// Current captures all goroutines in the process, excluding the calling
// goroutine itself, by parsing the output of runtime.Stack(buf, true). It is
// the capture primitive behind goleak.Find.
func Current() ([]*Goroutine, error) {
	all, self, err := CurrentWithSelf()
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, g := range all {
		if g.ID != self {
			out = append(out, g)
		}
	}
	return out, nil
}

// CurrentWithSelf captures all goroutines in the process and returns the id
// of the calling goroutine alongside. The capture buffer is scanned in
// place — the dump, which can run to megabytes on a large test process,
// is never copied into a string.
func CurrentWithSelf() (all []*Goroutine, self int64, err error) {
	buf, n := dumpAll()
	sc := NewScanner(bytes.NewReader((*buf)[:n]))
	var gs []*Goroutine
	for sc.Scan() {
		gs = append(gs, sc.Goroutine())
	}
	perr := sc.Err()
	captureBufPool.Put(buf)
	if perr != nil {
		return nil, 0, perr
	}
	return gs, currentID(), nil
}

// captureBufPool recycles the runtime.Stack capture buffer across calls.
// goleak's retry loop captures the address space up to ~20 times per
// verification, and a large test process needs a multi-megabyte buffer
// grown by doubling each time — pooling keeps the grown buffer (and skips
// the doubling walk) for every capture after the first.
var captureBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 1<<16)
		return &buf
	},
}

// dumpAll grows the buffer until runtime.Stack fits the complete dump.
// The returned buffer belongs to captureBufPool; callers return it after
// copying out the dump.
func dumpAll() (*[]byte, int) {
	buf := captureBufPool.Get().(*[]byte)
	for {
		n := runtime.Stack(*buf, true)
		if n < len(*buf) {
			return buf, n
		}
		*buf = make([]byte, 2*len(*buf))
	}
}

// currentID parses the calling goroutine's id out of its own stack header.
func currentID() int64 {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		id, err := strconv.ParseInt(s[:i], 10, 64)
		if err == nil {
			return id
		}
	}
	return 0
}
