package stack

import "testing"

func mk(id int64, state, fn, file string, line int) *Goroutine {
	return &Goroutine{ID: id, State: state,
		Frames: []Frame{{Function: fn, File: file, Line: line}}}
}

func TestCompare(t *testing.T) {
	before := []*Goroutine{
		mk(1, "running", "main.main", "/m.go", 1),
		mk(2, "chan send", "a.leak", "/a.go", 5),
		mk(3, "sleep", "b.tick", "/b.go", 9),
	}
	after := []*Goroutine{
		mk(2, "chan send", "a.leak", "/a.go", 5),
		mk(4, "select", "c.worker", "/c.go", 2),
	}
	d := Compare(before, after)
	if len(d.Added) != 1 || d.Added[0].ID != 4 {
		t.Errorf("added = %+v", d.Added)
	}
	if len(d.Removed) != 2 {
		t.Errorf("removed = %+v", d.Removed)
	}
	if len(d.Persisted) != 1 || d.Persisted[0].ID != 2 {
		t.Errorf("persisted = %+v", d.Persisted)
	}
}

func TestCompareEmpty(t *testing.T) {
	d := Compare(nil, nil)
	if len(d.Added)+len(d.Removed)+len(d.Persisted) != 0 {
		t.Errorf("diff of nothing = %+v", d)
	}
}

func TestStuckCandidates(t *testing.T) {
	before := []*Goroutine{
		mk(1, "chan send", "a.leak", "/a.go", 5),    // stuck at same spot
		mk(2, "chan receive", "b.poll", "/b.go", 9), // moves on
		mk(3, "running", "c.fn", "/c.go", 1),        // never blocked
	}
	after := []*Goroutine{
		mk(1, "chan send", "a.leak", "/a.go", 5),
		mk(2, "chan receive", "b.other", "/b2.go", 14), // different location
		mk(3, "running", "c.fn", "/c.go", 2),
	}
	stuck := StuckCandidates(before, after)
	if len(stuck) != 1 || stuck[0].ID != 1 {
		t.Errorf("stuck = %+v", stuck)
	}
}
