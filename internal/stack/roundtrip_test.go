package stack

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// genGoroutine builds a random but well-formed Goroutine for the round-trip
// property. Fields are drawn from alphabets that the dump format can carry
// (function names without parentheses or newlines, files with slashes).
func genGoroutine(r *rand.Rand) *Goroutine {
	states := []string{
		"running", "runnable", "chan send", "chan receive",
		"chan send (nil chan)", "chan receive (nil chan)",
		"select", "select (no cases)", "IO wait", "syscall", "sleep",
		"sync.Cond.Wait", "semacquire", "GC assist wait", "finalizer wait",
	}
	idents := []string{"main.main", "pkg/sub.Fn", "a/b/c.Type.Method",
		"repro/internal/patterns.NCast.func1", "x.y"}
	files := []string{"/src/a.go", "/src/pkg/b.go", "/root/repo/c.go"}

	g := &Goroutine{
		ID:    r.Int63n(1 << 40),
		State: states[r.Intn(len(states))],
	}
	// The runtime reports waits at whole-minute granularity and only for
	// waits >= 1 minute; mirror that so formatting is lossless.
	if r.Intn(2) == 0 {
		g.WaitTime = time.Duration(1+r.Intn(500)) * time.Minute
	}
	g.Locked = r.Intn(4) == 0
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		g.Frames = append(g.Frames, Frame{
			Function: idents[r.Intn(len(idents))],
			File:     files[r.Intn(len(files))],
			Line:     1 + r.Intn(9999),
			Offset:   uint64(r.Intn(1 << 16)),
		})
	}
	if r.Intn(3) > 0 {
		g.CreatedBy = Frame{
			Function: idents[r.Intn(len(idents))],
			File:     files[r.Intn(len(files))],
			Line:     1 + r.Intn(9999),
			Offset:   uint64(r.Intn(1 << 16)),
		}
		if r.Intn(2) == 0 {
			g.CreatorID = 1 + r.Int63n(1000)
		}
	}
	return g
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(count)%8
		in := make([]*Goroutine, n)
		for i := range in {
			in[i] = genGoroutine(r)
		}
		out, err := Parse(Format(in))
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		if len(out) != len(in) {
			t.Logf("got %d goroutines, want %d", len(out), len(in))
			return false
		}
		for i := range in {
			if !reflect.DeepEqual(in[i], out[i]) {
				t.Logf("mismatch at %d:\n in: %+v\nout: %+v", i, in[i], out[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleGoroutineStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		g := genGoroutine(r)
		out, err := Parse(g.String())
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(out) != 1 || !reflect.DeepEqual(out[0], g) {
			t.Fatalf("iteration %d: round trip failed:\n in: %+v\nout: %+v", i, g, out)
		}
	}
}

func TestParseIsTotalOnRandomText(t *testing.T) {
	// Parse must never panic regardless of input; errors are acceptable,
	// crashes are not.
	f := func(s string) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Parse panicked on %q: %v", s, p)
			}
		}()
		_, _ = Parse(s)
		_, _ = Parse("goroutine 1 [running]:\n" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatWait(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Second, "1 second"},
		{30 * time.Second, "30 seconds"},
		{time.Minute, "1 minute"},
		{5 * time.Minute, "5 minutes"},
		{2 * time.Hour, "2 hours"},
		{48 * time.Hour, "2 days"},
		{25 * time.Hour, "25 hours"},
		{250 * time.Minute, "250 minutes"},
		{90 * time.Second, "90 seconds"},
	}
	for _, c := range cases {
		if got := formatWait(c.d); got != c.want {
			t.Errorf("formatWait(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestWaitDurationParsing(t *testing.T) {
	hdr := "goroutine 4 [chan receive, 3 days]:\n"
	gs, err := Parse(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].WaitTime != 72*time.Hour {
		t.Errorf("wait = %v, want 72h", gs[0].WaitTime)
	}
	if !strings.Contains(gs[0].String(), "3 days") {
		t.Errorf("String() lost the wait: %q", gs[0].String())
	}
}
