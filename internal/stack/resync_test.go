package stack

import (
	"strings"
	"testing"
)

// good builds one well-formed goroutine block.
func goodBlock(id string, fn string) string {
	return "goroutine " + id + " [chan send]:\n" + fn + "()\n\t/src/" + fn + ".go:5 +0x2b\n"
}

// TestScannerResync drives the salvage contract on dumps corrupted
// mid-stream: records before the torn member are yielded, records after
// it are recovered at the next well-formed header, and the loss is
// counted per dump instead of aborting the member.
func TestScannerResync(t *testing.T) {
	a := goodBlock("1", "svc.a")
	b := goodBlock("2", "svc.b")
	c := goodBlock("3", "svc.c")
	cases := []struct {
		name      string
		dump      string
		wantIDs   []int64
		malformed int
	}{
		{
			name:      "torn-member-mid-dump",
			dump:      a + "goroutine 99 [chan send:\nsvc.torn()\n\t/src/torn.go:9 +0x1\n" + b + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 1,
		},
		{
			name:      "torn-member-first",
			dump:      "goroutine 99 [select:\nsvc.torn()\n" + a + b,
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name:      "torn-member-last",
			dump:      a + b + "goroutine 99 [chan receive:\nsvc.torn()\n",
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name: "two-torn-members",
			dump: a + "goroutine 98 [chan send:\nx()\n" + b +
				"goroutine 99 [select:\ny()\n" + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 2,
		},
		{
			name: "consecutive-torn-headers",
			dump: a + "goroutine 98 [chan send:\ngoroutine 99 [select:\n" + b,
			// The second torn header is its own member: each counts.
			wantIDs:   []int64{1, 2},
			malformed: 2,
		},
		{
			name:      "garbage-between-members",
			dump:      a + "goroutine 99 [oops:\n\x00\xff binary junk\nmore junk()\n\tnot/a/location\n" + b,
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name:      "clean-dump-counts-zero",
			dump:      a + b + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gs, malformed, err := scanAllCounting(tc.dump)
			if err != nil {
				t.Fatalf("scanner error: %v", err)
			}
			ids := make([]int64, len(gs))
			for i, g := range gs {
				ids[i] = g.ID
			}
			if len(ids) != len(tc.wantIDs) {
				t.Fatalf("salvaged ids = %v, want %v", ids, tc.wantIDs)
			}
			for i := range ids {
				if ids[i] != tc.wantIDs[i] {
					t.Fatalf("salvaged ids = %v, want %v", ids, tc.wantIDs)
				}
			}
			if malformed != tc.malformed {
				t.Errorf("malformed = %d, want %d", malformed, tc.malformed)
			}
		})
	}
}

// TestScannerResyncSkipsTornMemberLines verifies the torn member's own
// frames are dropped, not glued onto a neighbouring record.
func TestScannerResyncSkipsTornMemberLines(t *testing.T) {
	dump := goodBlock("1", "svc.a") +
		"goroutine 99 [chan send:\nsvc.torn()\n\t/src/torn.go:9 +0x1\n" +
		goodBlock("2", "svc.b")
	gs, _, err := scanAllCounting(dump)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		for _, f := range g.Frames {
			if strings.Contains(f.Function, "torn") || strings.Contains(f.File, "torn") {
				t.Fatalf("torn member's frame leaked into goroutine %d: %+v", g.ID, f)
			}
		}
	}
}

// TestScannerFrameSalvage drives the frame-level salvage contract: a torn
// frame line inside a member (manifesting as a blank that splits the
// member) no longer drops the member's remaining frames — the scanner
// resyncs at the next frame pair and reattaches them, counting the tear
// in Malformed. Content after the blank that is not a frame pair still
// disposes the member normally.
func TestScannerFrameSalvage(t *testing.T) {
	cases := []struct {
		name       string
		dump       string
		wantIDs    []int64
		wantFrames []int // frames per yielded member
		malformed  int
	}{
		{
			name: "torn-blank-inside-member",
			dump: "goroutine 1 [chan send]:\nsvc.a()\n\t/src/a.go:5 +0x2b\n\n" +
				"svc.rest()\n\t/src/rest.go:9 +0x1\n\n" + goodBlock("2", "svc.b"),
			wantIDs:    []int64{1, 2},
			wantFrames: []int{2, 1}, // svc.rest reattaches to goroutine 1
			malformed:  1,
		},
		{
			name: "torn-blank-then-created-by",
			dump: "goroutine 1 [chan send]:\nsvc.a()\n\t/src/a.go:5 +0x2b\n\n" +
				"created by svc.spawn in goroutine 7\n\t/src/sp.go:3 +0x1\n",
			wantIDs:    []int64{1},
			wantFrames: []int{1},
			malformed:  1,
		},
		{
			name: "lone-function-line-stays-dropped",
			dump: goodBlock("1", "svc.a") + "\n" +
				"orphan.fn()\n" + goodBlock("2", "svc.b"),
			wantIDs:    []int64{1, 2},
			wantFrames: []int{1, 1},
			malformed:  0,
		},
		{
			name:       "preamble-after-blank-not-salvaged",
			dump:       goodBlock("1", "svc.a") + "\ngoroutine profile: total 9\n" + goodBlock("2", "svc.b"),
			wantIDs:    []int64{1, 2},
			wantFrames: []int{1, 1},
			malformed:  0,
		},
		{
			name: "salvage-at-end-of-dump",
			dump: "goroutine 1 [chan send]:\nsvc.a()\n\t/src/a.go:5 +0x2b\n\n" +
				"svc.tail()\n\t/src/t.go:2 +0x4\n",
			wantIDs:    []int64{1},
			wantFrames: []int{2},
			malformed:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gs, malformed, err := scanAllCounting(tc.dump)
			if err != nil {
				t.Fatalf("scanner error: %v", err)
			}
			if len(gs) != len(tc.wantIDs) {
				t.Fatalf("yielded %d members, want %d: %+v", len(gs), len(tc.wantIDs), gs)
			}
			for i, g := range gs {
				if g.ID != tc.wantIDs[i] {
					t.Errorf("member %d id = %d, want %d", i, g.ID, tc.wantIDs[i])
				}
				if len(g.Frames) != tc.wantFrames[i] {
					t.Errorf("member %d frames = %d (%+v), want %d", i, len(g.Frames), g.Frames, tc.wantFrames[i])
				}
			}
			if malformed != tc.malformed {
				t.Errorf("malformed = %d, want %d", malformed, tc.malformed)
			}
			if msg := checkScannerBehaviour(tc.dump); msg != "" {
				t.Errorf("parity contract: %s", msg)
			}
		})
	}
	// The created-by salvage attaches as the creation site, not a frame.
	gs, _, err := scanAllCounting(cases[1].dump)
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].CreatedBy.Function != "svc.spawn" || gs[0].CreatorID != 7 {
		t.Errorf("salvaged creation site = %+v creator %d, want svc.spawn by 7", gs[0].CreatedBy, gs[0].CreatorID)
	}
}

// FuzzScan fuzzes the scanner with truncated and garbled dumps. The
// invariants are the resync contract: in-memory input never surfaces an
// error, the scanner agrees exactly with the frozen legacy parser on
// inputs the legacy parser accepts cleanly, resyncs are counted whenever
// the legacy parser would have rejected the dump, and frame-level salvage
// (orphaned frame pairs behind a torn blank) preserves member identity
// while never losing frames.
func FuzzScan(f *testing.F) {
	for _, dump := range goldenDumps() {
		f.Add(dump)
	}
	base := syntheticDump(2, 3)
	f.Add(base[:len(base)/2])                              // truncated mid-record
	f.Add(strings.Replace(base, "[chan send", "[chan", 1)) // garbled header region
	f.Add("goroutine 8 [chan send:\nmain.f()\n")           // torn header
	f.Add("goroutine 1 [x]:\n\tgoroutine 2 [y]:\n")
	// Frame-salvage shapes: a blank torn into a member, orphaned frame
	// pairs and created-by pairs behind it, and a bare orphan pair.
	f.Add("goroutine 1 [chan send]:\nsvc.a()\n\t/src/a.go:5 +0x2b\n\nsvc.rest()\n\t/src/r.go:9 +0x1\n")
	f.Add(goodBlock("1", "svc.a") + "\ncreated by svc.spawn in goroutine 7\n\t/src/sp.go:3 +0x1\n" + goodBlock("2", "svc.b"))
	f.Add("orphan.fn()\n\t/src/o.go:1 +0x1\n")
	f.Fuzz(func(t *testing.T, dump string) {
		if len(dump) > 1<<20 {
			t.Skip("bounded corpus")
		}
		if msg := checkScannerBehaviour(dump); msg != "" {
			t.Fatal(msg)
		}
	})
}
