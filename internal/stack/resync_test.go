package stack

import (
	"strings"
	"testing"
)

// good builds one well-formed goroutine block.
func goodBlock(id string, fn string) string {
	return "goroutine " + id + " [chan send]:\n" + fn + "()\n\t/src/" + fn + ".go:5 +0x2b\n"
}

// TestScannerResync drives the salvage contract on dumps corrupted
// mid-stream: records before the torn member are yielded, records after
// it are recovered at the next well-formed header, and the loss is
// counted per dump instead of aborting the member.
func TestScannerResync(t *testing.T) {
	a := goodBlock("1", "svc.a")
	b := goodBlock("2", "svc.b")
	c := goodBlock("3", "svc.c")
	cases := []struct {
		name      string
		dump      string
		wantIDs   []int64
		malformed int
	}{
		{
			name:      "torn-member-mid-dump",
			dump:      a + "goroutine 99 [chan send:\nsvc.torn()\n\t/src/torn.go:9 +0x1\n" + b + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 1,
		},
		{
			name:      "torn-member-first",
			dump:      "goroutine 99 [select:\nsvc.torn()\n" + a + b,
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name:      "torn-member-last",
			dump:      a + b + "goroutine 99 [chan receive:\nsvc.torn()\n",
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name: "two-torn-members",
			dump: a + "goroutine 98 [chan send:\nx()\n" + b +
				"goroutine 99 [select:\ny()\n" + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 2,
		},
		{
			name: "consecutive-torn-headers",
			dump: a + "goroutine 98 [chan send:\ngoroutine 99 [select:\n" + b,
			// The second torn header is its own member: each counts.
			wantIDs:   []int64{1, 2},
			malformed: 2,
		},
		{
			name:      "garbage-between-members",
			dump:      a + "goroutine 99 [oops:\n\x00\xff binary junk\nmore junk()\n\tnot/a/location\n" + b,
			wantIDs:   []int64{1, 2},
			malformed: 1,
		},
		{
			name:      "clean-dump-counts-zero",
			dump:      a + b + c,
			wantIDs:   []int64{1, 2, 3},
			malformed: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gs, malformed, err := scanAllCounting(tc.dump)
			if err != nil {
				t.Fatalf("scanner error: %v", err)
			}
			ids := make([]int64, len(gs))
			for i, g := range gs {
				ids[i] = g.ID
			}
			if len(ids) != len(tc.wantIDs) {
				t.Fatalf("salvaged ids = %v, want %v", ids, tc.wantIDs)
			}
			for i := range ids {
				if ids[i] != tc.wantIDs[i] {
					t.Fatalf("salvaged ids = %v, want %v", ids, tc.wantIDs)
				}
			}
			if malformed != tc.malformed {
				t.Errorf("malformed = %d, want %d", malformed, tc.malformed)
			}
		})
	}
}

// TestScannerResyncSkipsTornMemberLines verifies the torn member's own
// frames are dropped, not glued onto a neighbouring record.
func TestScannerResyncSkipsTornMemberLines(t *testing.T) {
	dump := goodBlock("1", "svc.a") +
		"goroutine 99 [chan send:\nsvc.torn()\n\t/src/torn.go:9 +0x1\n" +
		goodBlock("2", "svc.b")
	gs, _, err := scanAllCounting(dump)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		for _, f := range g.Frames {
			if strings.Contains(f.Function, "torn") || strings.Contains(f.File, "torn") {
				t.Fatalf("torn member's frame leaked into goroutine %d: %+v", g.ID, f)
			}
		}
	}
}

// FuzzScan fuzzes the scanner with truncated and garbled dumps. The
// invariants are the resync contract: in-memory input never surfaces an
// error, the scanner agrees exactly with the frozen legacy parser on
// inputs the legacy parser accepts, and resyncs are counted whenever the
// legacy parser would have rejected the dump.
func FuzzScan(f *testing.F) {
	for _, dump := range goldenDumps() {
		f.Add(dump)
	}
	base := syntheticDump(2, 3)
	f.Add(base[:len(base)/2])                              // truncated mid-record
	f.Add(strings.Replace(base, "[chan send", "[chan", 1)) // garbled header region
	f.Add("goroutine 8 [chan send:\nmain.f()\n")           // torn header
	f.Add("goroutine 1 [x]:\n\tgoroutine 2 [y]:\n")
	f.Fuzz(func(t *testing.T, dump string) {
		if len(dump) > 1<<20 {
			t.Skip("bounded corpus")
		}
		if msg := checkScannerBehaviour(dump); msg != "" {
			t.Fatal(msg)
		}
	})
}
