package stack

import (
	"testing"
	"testing/quick"
)

func g(state string, frames ...Frame) *Goroutine {
	return &Goroutine{ID: 1, State: state, Frames: frames}
}

func TestKindFromState(t *testing.T) {
	cases := []struct {
		state string
		want  Kind
	}{
		{"running", KindRunning},
		{"runnable", KindRunning},
		{"chan send", KindChanSend},
		{"chan send (nil chan)", KindChanSendNil},
		{"chan receive", KindChanReceive},
		{"chan receive (nil chan)", KindChanReceiveNil},
		{"select", KindSelect},
		{"select (no cases)", KindSelectNoCases},
		{"IO wait", KindIOWait},
		{"syscall", KindSyscall},
		{"sleep", KindSleep},
		{"sync.Cond.Wait", KindCondWait},
		{"semacquire", KindSemacquire},
		{"sync.Mutex.Lock", KindSemacquire},
		{"sync.WaitGroup.Wait", KindSemacquire},
		{"GC assist wait", KindGC},
		{"force gc", KindGC},
		{"finalizer wait", KindFinalizer},
		{"some novel state", KindUnknown},
	}
	for _, c := range cases {
		if got := g(c.state).Kind(); got != c.want {
			t.Errorf("Kind(%q) = %v, want %v", c.state, got, c.want)
		}
	}
}

func TestKindFallsBackToFrames(t *testing.T) {
	cases := []struct {
		fn   string
		want Kind
	}{
		{"runtime.chansend1", KindChanSend},
		{"runtime.chanrecv2", KindChanReceive},
		{"runtime.selectgo", KindSelect},
		{"runtime.block", KindSelectNoCases},
		{"runtime.netpollblock", KindIOWait},
		{"runtime.semacquire1", KindSemacquire},
	}
	for _, c := range cases {
		gr := g("waiting",
			Frame{Function: "runtime.gopark"},
			Frame{Function: c.fn},
			Frame{Function: "main.user"},
		)
		if got := gr.Kind(); got != c.want {
			t.Errorf("frame %q: Kind = %v, want %v", c.fn, got, c.want)
		}
	}
	// Non-runtime frame ends the scan.
	gr := g("waiting", Frame{Function: "main.user"}, Frame{Function: "runtime.chansend1"})
	if got := gr.Kind(); got != KindUnknown {
		t.Errorf("scan should stop at user frame; got %v", got)
	}
}

func TestChannelOpAndGuaranteedLeak(t *testing.T) {
	if op := KindChanSend.ChannelOp(); op != "send" {
		t.Errorf("send op = %q", op)
	}
	if op := KindChanReceiveNil.ChannelOp(); op != "receive" {
		t.Errorf("recv-nil op = %q", op)
	}
	if op := KindSelectNoCases.ChannelOp(); op != "select" {
		t.Errorf("empty select op = %q", op)
	}
	if op := KindIOWait.ChannelOp(); op != "" {
		t.Errorf("IO wait op = %q, want empty", op)
	}
	for _, k := range []Kind{KindChanSendNil, KindChanReceiveNil, KindSelectNoCases} {
		if !k.GuaranteedLeak() {
			t.Errorf("%v should be a guaranteed leak", k)
		}
	}
	for _, k := range []Kind{KindChanSend, KindSelect, KindRunning, KindIOWait} {
		if k.GuaranteedLeak() {
			t.Errorf("%v should not be a guaranteed leak", k)
		}
	}
}

func TestBlockedChannelOp(t *testing.T) {
	gr := g("chan send",
		Frame{Function: "runtime.gopark", File: "/go/runtime/proc.go", Line: 1},
		Frame{Function: "runtime.chansend", File: "/go/runtime/chan.go", Line: 2},
		Frame{Function: "main.producer", File: "/src/p.go", Line: 42},
	)
	op, ok := gr.BlockedChannelOp()
	if !ok {
		t.Fatal("expected a blocked channel op")
	}
	if op.Op != "send" || op.Location != "/src/p.go:42" || op.Function != "main.producer" {
		t.Errorf("op = %+v", op)
	}
	if op.NilChannel {
		t.Error("non-nil chan misreported as nil")
	}

	if _, ok := g("IO wait").BlockedChannelOp(); ok {
		t.Error("IO wait should not yield a channel op")
	}

	nilOp, ok := g("chan receive (nil chan)", Frame{Function: "main.r", File: "/s.go", Line: 7}).BlockedChannelOp()
	if !ok || !nilOp.NilChannel {
		t.Errorf("nil-chan receive: ok=%v op=%+v", ok, nilOp)
	}
}

func TestBlockedOnChannel(t *testing.T) {
	if !g("select").BlockedOnChannel() {
		t.Error("select should count as channel-blocked")
	}
	if g("sleep").BlockedOnChannel() {
		t.Error("sleep should not count as channel-blocked")
	}
}

func TestKindStringTotal(t *testing.T) {
	// Property: every kind has a distinct, non-empty, non-"invalid" label.
	seen := map[string]Kind{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || s == "invalid" {
			t.Errorf("kind %d has bad label %q", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %v and %v share label %q", prev, k, s)
		}
		seen[s] = k
	}
	if Kind(-1).String() != "invalid" || Kind(999).String() != "invalid" {
		t.Error("out-of-range kinds must stringify as invalid")
	}
}

func TestClassifierTotalOnRandomStates(t *testing.T) {
	// Property: Kind never panics and ChannelOp is consistent with
	// BlockedOnChannel for arbitrary state strings.
	f := func(state string) bool {
		gr := g(state)
		k := gr.Kind()
		if gr.BlockedOnChannel() != (k.ChannelOp() != "") {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
